// Google-benchmark coverage of the colocation-service event loop: one
// ServiceEngine::step() per iteration (arrival admission, interval
// completion or departure, each with a partial-occupancy RM invocation).
// The steady-state loop is required to be allocation-free - after one full
// warm pass every buffer (queue ring, histogram, snapshots, RM workspaces)
// has reached capacity and reset()+step() must never touch the heap again.
//
// Besides ns/op every benchmark reports allocs/op through the same global
// operator-new hook as bench_rm_invoke; CI runs this binary briefly and
// uploads the JSON (BENCH_service.json) so the perf trajectory is tracked
// across PRs.
//
// The simulation database honours QOSRM_DB_CACHE_DIR (same protocol as the
// slow test suites): set it to restore the characterization from a binary
// snapshot instead of paying the multi-second build per run.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <new>
#include <string>

#include "arch/system_config.hh"
#include "common/simd.hh"
#include "power/power_model.hh"
#include "rmsim/service.hh"
#include "workload/arrival_gen.hh"
#include "workload/db_io.hh"
#include "workload/sim_db.hh"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

// Counting operator-new hooks (all variants funnel here). Kept outside any
// namespace so they replace the global versions for the whole binary.
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align), size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace qosrm;

/// One shared database per (core count, bandwidth-share count) - the build
/// is seconds-expensive, and a partitioned-bandwidth table is a genuinely
/// different (wider) evaluation grid with its own cache file.
const workload::SimDb& bench_db(int cores, int bw_shares = 1) {
  static std::map<std::pair<int, int>, std::unique_ptr<workload::SimDb>> dbs;
  const std::pair<int, int> key{cores, bw_shares};
  auto it = dbs.find(key);
  if (it == dbs.end()) {
    arch::SystemConfig system;
    system.cores = cores;
    system.bw = arch::bw_config_for_shares(bw_shares);
    const char* cache_dir = std::getenv("QOSRM_DB_CACHE_DIR");
    const std::string cache_path =
        cache_dir != nullptr
            ? workload::db_cache_path(cache_dir, cores, bw_shares)
            : std::string();
    it = dbs.emplace(key, std::make_unique<workload::SimDb>(workload::warm_simdb(
                              workload::spec_suite(), system,
                              power::PowerModel{}, {}, cache_path)))
             .first;
  }
  return *it->second;
}

void report_allocs(benchmark::State& state, std::uint64_t before) {
  const std::uint64_t allocs =
      g_allocations.load(std::memory_order_relaxed) - before;
  state.counters["allocs_per_op"] = benchmark::Counter(
      static_cast<double>(allocs), benchmark::Counter::kAvgIterations);
}

/// ServiceEngine::step() at a given (policy, core count, bandwidth-share
/// count, admission policy). One full trace pass warms every buffer to
/// capacity before measurement; the measured loop wraps around via reset(),
/// which is itself allocation-free after the warm pass, so a long
/// measurement stays in the steady state throughout. bw_shares>1 drives the
/// 2-D (ways x shares) RM path; sdf/qos-aware admission drives the queue
/// scans and the rejection predicate - all required allocation-free.
void BM_ServiceStep(benchmark::State& state) {
  const auto policy = static_cast<rm::RmPolicy>(state.range(0));
  const int cores = static_cast<int>(state.range(1));
  const int bw_shares = static_cast<int>(state.range(2));
  const auto admission = static_cast<rmsim::AdmissionPolicy>(state.range(3));
  const workload::SimDb& db = bench_db(cores, bw_shares);

  rmsim::ServiceConfig config;
  config.arrivals = 512;
  rmsim::ServicePoint point;
  point.policy = policy;
  point.admission = admission;
  if (admission != rmsim::AdmissionPolicy::Fifo) {
    point.load = 2.0;  // overload so the non-FIFO queue disciplines engage
  }
  rmsim::ServiceEngine engine(db, config, point);
  (void)engine.run();  // warm pass: every buffer grows to capacity
  engine.reset();

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (auto _ : state) {
    if (!engine.step()) engine.reset();
  }
  report_allocs(state, before);
}
BENCHMARK(BM_ServiceStep)
    ->ArgsProduct({{static_cast<long>(rm::RmPolicy::Idle),
                    static_cast<long>(rm::RmPolicy::Rm3)},
                   {4, 8, 16},
                   {1},
                   {static_cast<long>(rmsim::AdmissionPolicy::Fifo)}})
    // The 2-D configuration: 4 cores x 4 bandwidth shares per core.
    ->ArgsProduct({{static_cast<long>(rm::RmPolicy::Rm3)},
                   {4},
                   {4},
                   {static_cast<long>(rmsim::AdmissionPolicy::Fifo)}})
    // The admission axis under overload (where its queue scans actually run).
    ->ArgsProduct({{static_cast<long>(rm::RmPolicy::Rm3)},
                   {4},
                   {1},
                   {static_cast<long>(rmsim::AdmissionPolicy::Sdf),
                    static_cast<long>(rmsim::AdmissionPolicy::QosAware)}})
    ->ArgNames({"policy", "cores", "bw_shares", "admission"});

/// Arrival-trace synthesis into reused storage (the per-grid-point setup
/// cost; allocation-free once the trace vector is at capacity).
void BM_ArrivalGenReuse(benchmark::State& state) {
  const auto pattern = static_cast<workload::ArrivalPattern>(state.range(0));
  workload::ArrivalGenOptions options;
  options.pattern = pattern;
  options.count = 4096;
  workload::ArrivalTrace trace;
  workload::generate_arrivals_into(options, &trace);

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (auto _ : state) {
    workload::generate_arrivals_into(options, &trace);
    benchmark::DoNotOptimize(trace.events.data());
  }
  report_allocs(state, before);
}
BENCHMARK(BM_ArrivalGenReuse)
    ->Arg(static_cast<long>(workload::ArrivalPattern::Poisson))
    ->Arg(static_cast<long>(workload::ArrivalPattern::Bursty))
    ->Arg(static_cast<long>(workload::ArrivalPattern::Diurnal))
    ->ArgNames({"pattern"});

}  // namespace

// Custom main (instead of BENCHMARK_MAIN) so the JSON context records which
// SIMD kernel the optimizer hot path actually dispatched to (see
// bench_rm_invoke.cc).
int main(int argc, char** argv) {
  benchmark::AddCustomContext(
      "simd", qosrm::simd::level_name(qosrm::simd::active_level()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
