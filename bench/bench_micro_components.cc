// Google-benchmark microbenchmarks for the hot paths of the library: the
// structures the paper argues are cheap enough for hardware/runtime use.
//
//   * ATD observe            - per-LLC-access monitoring work
//   * MLP-ATD observe        - the proposed 48-counter extension
//   * oracle leading misses  - offline ground-truth analysis
//   * trace synthesis        - workload generation throughput
//   * local optimization     - one per-core RM invocation piece
//   * global optimization    - min-plus reduction, 2..16 cores
#include <benchmark/benchmark.h>

#include "cache/atd.hh"
#include "cache/mlp_atd.hh"
#include "cache/mlp_oracle.hh"
#include "cache/recency.hh"
#include "common/rng.hh"
#include "rm/global_opt.hh"
#include "rm/local_opt.hh"
#include "rm/resource_manager.hh"
#include "rmsim/snapshot.hh"
#include "workload/sim_db.hh"
#include "workload/trace_synth.hh"

namespace {

using namespace qosrm;

std::vector<cache::LlcAccess> make_trace(std::size_t n) {
  Rng rng(1234);
  std::vector<cache::LlcAccess> trace;
  trace.reserve(n);
  std::uint64_t inst = 0;
  for (std::size_t i = 0; i < n; ++i) {
    inst += 1 + rng.geometric(1.0 / 40.0);
    trace.push_back({inst, static_cast<std::uint32_t>(rng.uniform_u64(64)),
                     rng.uniform_u64(4000), rng.bernoulli(0.3)});
  }
  return trace;
}

void BM_AtdObserve(benchmark::State& state) {
  const auto trace = make_trace(1 << 14);
  cache::AtdConfig cfg;
  cfg.sets = 64;
  cache::Atd atd(cfg);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(atd.observe(trace[i]));
    i = (i + 1) & (trace.size() - 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AtdObserve);

void BM_MlpAtdObserve(benchmark::State& state) {
  const auto trace = make_trace(1 << 14);
  cache::MlpAtdConfig cfg;
  cfg.sets = 64;
  cfg.min_ways = 1;
  cache::MlpAtd atd(cfg);
  std::size_t i = 0;
  for (auto _ : state) {
    atd.observe(trace[i]);
    i = (i + 1) & (trace.size() - 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MlpAtdObserve);

void BM_OracleLeadingMisses(benchmark::State& state) {
  const auto trace = make_trace(1 << 14);
  cache::RecencyProfiler prof(64, 16);
  const auto recency = prof.annotate(trace);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache::MlpOracle::leading_misses(
        trace, recency, arch::CoreSize::M, 8));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_OracleLeadingMisses);

void BM_TraceSynthesis(benchmark::State& state) {
  workload::PhaseParams phase;
  phase.lpki = 8.0;
  phase.reuse = workload::make_stack_profile(0.4, 0.4, 8.0, 2.0, 0.2);
  phase.burst_size = 10.0;
  workload::TraceSynthConfig cfg;
  cfg.represented_instructions = 1e6;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload::synthesize_trace(phase, cfg, seed++));
  }
}
BENCHMARK(BM_TraceSynthesis);

const workload::SimDb& bench_db() {
  static const workload::SimDb db = [] {
    arch::SystemConfig system;
    system.cores = 2;
    return workload::SimDb(workload::spec_suite(), system, power::PowerModel{});
  }();
  return db;
}

void BM_LocalOptimization(benchmark::State& state) {
  const workload::SimDb& db = bench_db();
  const rm::CounterSnapshot snap = rmsim::make_snapshot(
      db, db.suite().index_of("mcf"), 0, workload::baseline_setting(db.system()));
  const rm::PerfModel perf(rm::PerfModelKind::Model3, db.system());
  const rm::OnlineEnergyModel energy(db.power());
  const rm::LocalOptimizer optimizer(perf, energy, {true, true});
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimizer.optimize(snap));
  }
}
BENCHMARK(BM_LocalOptimization);

void BM_GlobalOptimization(benchmark::State& state) {
  const auto cores = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  std::vector<rm::EnergyCurve> curves;
  for (std::size_t c = 0; c < cores; ++c) {
    rm::EnergyCurve curve;
    curve.min_ways = 2;
    for (int w = 2; w <= 16; ++w) curve.energy.push_back(rng.uniform(1.0, 100.0));
    curves.push_back(std::move(curve));
  }
  const int budget = 8 * static_cast<int>(cores);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rm::GlobalOptimizer::optimize(curves, budget));
  }
}
BENCHMARK(BM_GlobalOptimization)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_RmInvocationEndToEnd(benchmark::State& state) {
  const workload::SimDb& db = bench_db();
  rm::RmConfig cfg;
  cfg.policy = rm::RmPolicy::Rm3;
  cfg.model = rm::PerfModelKind::Model3;
  rm::ResourceManager manager(cfg, db.system(), db.power());
  std::vector<rm::CounterSnapshot> snaps;
  snaps.push_back(rmsim::make_snapshot(db, db.suite().index_of("mcf"), 0,
                                       workload::baseline_setting(db.system())));
  snaps.push_back(rmsim::make_snapshot(db, db.suite().index_of("libquantum"), 0,
                                       workload::baseline_setting(db.system())));
  int core = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(manager.invoke(core, snaps));
    core ^= 1;
  }
}
BENCHMARK(BM_RmInvocationEndToEnd);

}  // namespace

BENCHMARK_MAIN();
