// Reproduces paper Table I: the baseline system configuration, printed from
// the live library constants (so the table can never drift from the code).
#include <cstdio>

#include "arch/core_config.hh"
#include "arch/dvfs.hh"
#include "arch/system_config.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "power/power_model.hh"

using namespace qosrm;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int cores = static_cast<int>(args.get_int("cores", 4));
  arch::SystemConfig system;
  system.cores = cores;

  std::printf("=== Table I: baseline configuration (%d cores) ===\n\n", cores);

  AsciiTable core({"Core", "L", "M", "S"});
  auto row = [&](const char* name, auto getter) {
    core.add_row({name,
                  std::to_string(getter(arch::core_params(arch::CoreSize::L))),
                  std::to_string(getter(arch::core_params(arch::CoreSize::M))),
                  std::to_string(getter(arch::core_params(arch::CoreSize::S)))});
  };
  row("issue width", [](const arch::CoreParams& p) { return p.issue_width; });
  row("ROB", [](const arch::CoreParams& p) { return p.rob; });
  row("RS", [](const arch::CoreParams& p) { return p.rs; });
  row("LSQ", [](const arch::CoreParams& p) { return p.lsq; });
  core.print();

  std::printf("\nCache (64B blocks, LRU replacement):\n");
  AsciiTable cache({"Level", "Scope", "Size", "Assoc", "DVFS domain"});
  cache.add_row({"L1-I/L1-D", "private", "32 KB", "4", "core"});
  cache.add_row({"L2", "private", "256 KB", "8", "core"});
  cache.add_row({"L3 (LLC)", "shared",
                 std::to_string(2 * cores) + " MB",
                 std::to_string(8 * cores), "global"});
  cache.print();
  std::printf("LLC allocation range per core: %d - %d ways (256 KB per way); "
              "baseline %d ways; total budget %d ways\n",
              system.llc.min_ways, system.llc.max_ways,
              system.llc.ways_per_core_baseline, system.total_ways());

  std::printf("\nDRAM: %.0f ns base latency, %.0f nJ per access\n",
              system.mem_latency_s * 1e9,
              power::PowerParams{}.mem_energy_joule * 1e9);

  std::printf("\nDVFS (per core):\n");
  AsciiTable dvfs({"Parameter", "Value"});
  dvfs.add_row({"frequency range",
                AsciiTable::num(arch::VfTable::frequency_hz(0) / 1e9, 2) +
                    " - " +
                    AsciiTable::num(
                        arch::VfTable::frequency_hz(arch::VfTable::kNumPoints - 1) /
                            1e9,
                        2) +
                    " GHz (" + std::to_string(arch::VfTable::kNumPoints) +
                    " points)"});
  dvfs.add_row({"voltage range",
                AsciiTable::num(arch::VfTable::voltage(0), 2) + " - " +
                    AsciiTable::num(
                        arch::VfTable::voltage(arch::VfTable::kNumPoints - 1), 2) +
                    " V"});
  dvfs.add_row({"baseline point",
                AsciiTable::num(arch::VfTable::baseline().freq_hz / 1e9, 2) +
                    " GHz / " +
                    AsciiTable::num(arch::VfTable::baseline().voltage, 2) + " V"});
  dvfs.add_row({"transition cost", "15 us / 3 uJ"});
  dvfs.print();

  std::printf("\nRM interval: %.0fM instructions; QoS alpha = %.2f\n",
              system.interval_instructions / 1e6, system.qos_alpha);
  return 0;
}
