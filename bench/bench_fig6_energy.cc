// Reproduces paper Fig. 6: energy savings of RM1 / RM2 / RM3 (all with the
// proposed Model3 and full overhead modelling) on six generated workloads
// per scenario, for 4-core and 8-core systems, relative to the idle RM.
// Also prints the per-scenario means and the probability-weighted average
// (weights 47 / 22.1 / 22.1 / 8.8 % as in Section V-A).
//
// Flags: --cores=4,8  --per-scenario=6  --seed=2020  --csv=fig6.csv
//        --no-overheads  --model=1|2|3  --db-cache=DIR (snapshot directory:
//        reuse the simulation database across runs, see workload/db_io.hh)
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/csv.hh"
#include "rmsim/experiment.hh"
#include "rmsim/report.hh"
#include "workload/db_io.hh"

using namespace qosrm;

namespace {

rm::PerfModelKind model_from(int id) {
  switch (id) {
    case 1:
      return rm::PerfModelKind::Model1;
    case 2:
      return rm::PerfModelKind::Model2;
    default:
      return rm::PerfModelKind::Model3;
  }
}

std::vector<int> parse_core_list(const std::string& spec) {
  std::vector<int> cores;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) cores.push_back(std::stoi(item));
  return cores;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const std::vector<int> core_counts =
      parse_core_list(args.get("cores", "4,8"));
  const int per_scenario = static_cast<int>(args.get_int("per-scenario", 6));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2020));
  const rm::PerfModelKind model =
      model_from(static_cast<int>(args.get_int("model", 3)));

  rmsim::SimOptions sim_options;
  sim_options.model_overheads = !args.get_bool("no-overheads", false);

  std::unique_ptr<CsvWriter> csv;
  if (args.has("csv")) {
    csv = std::make_unique<CsvWriter>(
        args.get("csv", "fig6.csv"),
        std::vector<std::string>{"workload", "cores", "scenario", "policy",
                                 "model", "savings", "violation_rate"});
  }

  const auto weights = rmsim::scenario_weights(workload::spec_suite());
  const std::vector<rm::RmPolicy> policies = {
      rm::RmPolicy::Rm1, rm::RmPolicy::Rm2, rm::RmPolicy::Rm3};

  for (const int cores : core_counts) {
    std::printf("=== Fig. 6 (%d-core workloads, %s, overheads %s) ===\n", cores,
                rm::perf_model_name(model),
                sim_options.model_overheads ? "on" : "off");

    arch::SystemConfig system;
    system.cores = cores;
    const power::PowerModel power;
    const workload::SimDb db = workload::warm_simdb(
        workload::spec_suite(), system, power, {},
        args.has("db-cache")
            ? workload::db_cache_path(args.get("db-cache", ""), cores)
            : std::string());
    rmsim::ExperimentRunner runner(db, sim_options);

    workload::WorkloadGenOptions gen;
    gen.cores = cores;
    gen.per_scenario = per_scenario;
    gen.seed = seed;
    const auto mixes = generate_workloads(workload::spec_suite(), gen);

    std::vector<rmsim::SavingsGridRow> rows;
    std::vector<workload::Scenario> scenario_of_row;
    std::array<std::vector<double>, 3> all_savings;  // per policy

    for (const auto& mix : mixes) {
      rmsim::SavingsGridRow row;
      row.workload = mix.name;
      row.scenario = mix.scenario;
      for (std::size_t p = 0; p < policies.size(); ++p) {
        rm::RmConfig cfg;
        cfg.policy = policies[p];
        cfg.model = model;
        const rmsim::SavingsResult r = runner.run(mix, cfg);
        row.savings.push_back(r.savings);
        all_savings[p].push_back(r.savings);
        if (csv) {
          csv->add_row({mix.name, std::to_string(cores),
                        rmsim::scenario_label(mix.scenario),
                        rm::rm_policy_name(policies[p]),
                        rm::perf_model_name(model), std::to_string(r.savings),
                        std::to_string(r.run.violation_rate())});
        }
      }
      scenario_of_row.push_back(mix.scenario);
      rows.push_back(std::move(row));
    }

    rmsim::savings_grid(rows, {"RM1", "RM2", "RM3"}).print();

    // Per-scenario means plus the weighted and plain averages (paper V-A).
    AsciiTable summary({"Aggregate", "RM1", "RM2", "RM3"});
    for (const workload::Scenario s : workload::kAllScenarios) {
      std::vector<std::string> row = {rmsim::scenario_label(s) + " mean"};
      for (std::size_t p = 0; p < policies.size(); ++p) {
        double sum = 0.0;
        int count = 0;
        for (std::size_t i = 0; i < rows.size(); ++i) {
          if (scenario_of_row[i] == s) {
            sum += all_savings[p][i];
            ++count;
          }
        }
        row.push_back(AsciiTable::pct(count > 0 ? sum / count : 0.0));
      }
      summary.add_row(std::move(row));
    }
    std::vector<std::string> weighted = {"weighted average (47/22.1/22.1/8.8)"};
    std::vector<std::string> plain = {"plain average"};
    std::vector<std::string> peak = {"maximum"};
    for (std::size_t p = 0; p < policies.size(); ++p) {
      weighted.push_back(AsciiTable::pct(rmsim::weighted_average_savings(
          scenario_of_row, all_savings[p], weights)));
      double sum = 0.0, mx = -1.0;
      for (const double s : all_savings[p]) {
        sum += s;
        mx = std::max(mx, s);
      }
      plain.push_back(
          AsciiTable::pct(sum / static_cast<double>(all_savings[p].size())));
      peak.push_back(AsciiTable::pct(mx));
    }
    summary.add_row(std::move(weighted));
    summary.add_row(std::move(plain));
    summary.add_row(std::move(peak));
    summary.print();
    std::printf("\n");
  }
  return 0;
}
