// Reproduces paper Fig. 6: energy savings of RM1 / RM2 / RM3 (all with the
// proposed Model3 and full overhead modelling) on six generated workloads
// per scenario, for 4-core and 8-core systems, relative to the idle RM.
// Also prints the per-scenario means and the probability-weighted average
// (weights 47 / 22.1 / 22.1 / 8.8 % as in Section V-A).
//
// Expressed on top of the sweep + figure-report layer: the grid runs
// through SweepRunner (thread-parallel, idle references cached once per
// mix) and every printed aggregate comes from the same build_figure_report
// that produces the CI-gated JSON reports - the ASCII tables and the
// golden-gated numbers cannot drift apart.
//
// Flags: --cores=4,8  --per-scenario=6  --seed=2020  --csv=fig6.csv
//        --json=fig6.json  --no-overheads  --model=1|2|3  --threads=N
//        --db-cache=DIR (snapshot directory: reuse the simulation database
//        across runs, see workload/db_io.hh)
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/csv.hh"
#include "common/str.hh"
#include "rmsim/report.hh"
#include "rmsim/shard.hh"
#include "rmsim/sweep.hh"
#include "workload/db_io.hh"

using namespace qosrm;

namespace {

rm::PerfModelKind model_from(int id) {
  switch (id) {
    case 1:
      return rm::PerfModelKind::Model1;
    case 2:
      return rm::PerfModelKind::Model2;
    default:
      return rm::PerfModelKind::Model3;
  }
}

std::vector<int> parse_core_list(const std::string& spec) {
  std::vector<int> cores;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) cores.push_back(std::stoi(item));
  return cores;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv, {"no-overheads"});
  const std::vector<int> core_counts =
      parse_core_list(args.get("cores", "4,8"));
  const int per_scenario = static_cast<int>(args.get_int("per-scenario", 6));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2020));
  const rm::PerfModelKind model =
      model_from(static_cast<int>(args.get_int("model", 3)));

  rmsim::SweepOptions sweep_options;
  sweep_options.threads = static_cast<int>(args.get_int("threads", 0));
  sweep_options.sim.model_overheads = !args.get_bool("no-overheads", false);

  std::unique_ptr<CsvWriter> csv;
  if (args.has("csv")) {
    csv = std::make_unique<CsvWriter>(
        args.get("csv", "fig6.csv"),
        std::vector<std::string>{"workload", "cores", "scenario", "policy",
                                 "model", "savings", "violation_rate"});
  }

  for (const int cores : core_counts) {
    std::printf("=== Fig. 6 (%d-core workloads, %s, overheads %s) ===\n", cores,
                rm::perf_model_name(model),
                sweep_options.sim.model_overheads ? "on" : "off");

    arch::SystemConfig system;
    system.cores = cores;
    const power::PowerModel power;
    const workload::SimDb db = workload::warm_simdb(
        workload::spec_suite(), system, power, {},
        args.has("db-cache")
            ? workload::db_cache_path(args.get("db-cache", ""), cores)
            : std::string());

    workload::WorkloadGenOptions gen;
    gen.cores = cores;
    gen.per_scenario = per_scenario;
    gen.seed = seed;

    rmsim::SweepGrid grid;
    grid.mixes = generate_workloads(workload::spec_suite(), gen);
    grid.policies = {rm::RmPolicy::Rm1, rm::RmPolicy::Rm2, rm::RmPolicy::Rm3};
    grid.models = {model};
    grid.qos_alphas = {0.0};

    rmsim::SweepRunner runner(db, sweep_options);
    const rmsim::SweepResult result = runner.run(grid);
    const rmsim::FigureReport report = rmsim::build_figure_report(
        result.rows, grid.shape(),
        rmsim::sweep_fingerprint(
            grid, sweep_options.sim,
            workload::simdb_fingerprint(db.suite(), db.system(),
                                        db.phase_options())),
        rmsim::scenario_weights(db.suite()));

    // Per-workload savings grid: one column per policy, straight from the
    // report's per-mix data.
    std::vector<rmsim::SavingsGridRow> rows;
    for (std::size_t mi = 0; mi < report.workloads.size(); ++mi) {
      rmsim::SavingsGridRow row;
      row.workload = report.workloads[mi];
      row.scenario = report.scenarios[mi];
      for (std::size_t pi = 0; pi < grid.policies.size(); ++pi) {
        row.savings.push_back(report.fig6[pi].per_mix_savings[mi]);
      }
      rows.push_back(std::move(row));
    }
    rmsim::savings_grid(rows, {"RM1", "RM2", "RM3"}).print();

    if (csv) {
      for (const rmsim::SweepRow& row : result.rows) {
        csv->add_row({row.workload, std::to_string(cores),
                      rmsim::scenario_label(row.scenario),
                      rm::rm_policy_name(row.policy),
                      rm::perf_model_name(row.model),
                      std::to_string(row.result.savings),
                      std::to_string(row.result.run.violation_rate())});
      }
    }

    // Per-scenario means plus the weighted and plain averages (paper V-A) -
    // all precomputed by the report layer.
    AsciiTable summary({"Aggregate", "RM1", "RM2", "RM3"});
    for (const workload::Scenario s : workload::kAllScenarios) {
      std::vector<std::string> row = {rmsim::scenario_label(s) + " mean"};
      for (std::size_t pi = 0; pi < grid.policies.size(); ++pi) {
        row.push_back(AsciiTable::pct(
            report.fig6[pi]
                .scenario_mean_savings[static_cast<std::size_t>(
                    static_cast<int>(s) - 1)]));
      }
      summary.add_row(std::move(row));
    }
    std::vector<std::string> weighted = {"weighted average (47/22.1/22.1/8.8)"};
    std::vector<std::string> plain = {"plain average"};
    std::vector<std::string> peak = {"maximum"};
    for (std::size_t pi = 0; pi < grid.policies.size(); ++pi) {
      weighted.push_back(AsciiTable::pct(report.fig6[pi].weighted_savings));
      plain.push_back(AsciiTable::pct(report.fig6[pi].mean_savings));
      peak.push_back(AsciiTable::pct(report.fig6[pi].max_savings));
    }
    summary.add_row(std::move(weighted));
    summary.add_row(std::move(plain));
    summary.add_row(std::move(peak));
    summary.print();

    if (args.has("json")) {
      // One report per core count; a multi-count run suffixes the path so
      // the 4-core report is not overwritten by the 8-core one.
      std::string path = args.get("json", "fig6.json");
      if (core_counts.size() > 1) {
        path = format("%s.c%d", path.c_str(), cores);
      }
      std::string error;
      if (!rmsim::write_report_json(report, path, &error)) {
        std::fprintf(stderr, "--json: %s\n", error.c_str());
        // Failed run: publish nothing, not a CSV covering only some cores.
        if (csv) csv->abandon();
        return 1;
      }
      std::printf("wrote figure report to %s\n", path.c_str());
    }
    std::printf("\n");
  }
  if (csv) csv->close();  // surface commit errors instead of swallowing them
  return 0;
}
