// Reproduces paper Fig. 1: the category-mix probability table, the scenario
// partition, and the collective probability where RM3 is more effective.
//
// Probabilities derive from the suite's MEASURED Table II populations (the
// classifier, not the intended labels), so the figure is a genuine product
// of the pipeline.
#include <cstdio>

#include "common/cli.hh"
#include "common/table.hh"
#include "rmsim/experiment.hh"
#include "workload/classify.hh"
#include "workload/workload_gen.hh"

using namespace qosrm;
using workload::Category;

int main(int, char**) {
  arch::SystemConfig system;
  system.cores = 2;
  const power::PowerModel power;
  const workload::SimDb db(workload::spec_suite(), system, power);

  const auto hist = workload::category_histogram(workload::classify_suite(db));
  const workload::MixTable table = workload::compute_mix_table(hist);

  std::printf("=== Fig. 1: workload-mix probabilities and scenarios ===\n\n");
  AsciiTable pop({"Category", "Applications", "Probability"});
  for (int c = 0; c < workload::kNumCategories; ++c) {
    pop.add_row({workload::category_name(static_cast<Category>(c)),
                 std::to_string(table.population[static_cast<std::size_t>(c)]),
                 AsciiTable::pct(table.category_prob[static_cast<std::size_t>(c)])});
  }
  pop.print();

  std::printf("\nPairwise mix probabilities (App1 x App2) and scenario:\n");
  AsciiTable mix({"App1 \\ App2", "CS-PS", "CS-PI", "CI-PS", "CI-PI"});
  for (int a = 0; a < workload::kNumCategories; ++a) {
    std::vector<std::string> row = {
        workload::category_name(static_cast<Category>(a))};
    for (int b = 0; b < workload::kNumCategories; ++b) {
      const double p = table.pair_prob[static_cast<std::size_t>(a)]
                                      [static_cast<std::size_t>(b)];
      const workload::Scenario s =
          workload::scenario_of(static_cast<Category>(a), static_cast<Category>(b));
      row.push_back(AsciiTable::pct(p) + " S" +
                    std::to_string(static_cast<int>(s)));
    }
    mix.add_row(std::move(row));
  }
  mix.print();

  std::printf("\nScenario weights (paper: 47%% / 22.1%% / 22.1%% / 8.8%%):\n");
  AsciiTable weights({"Scenario", "Interpretation", "Weight"});
  const char* meaning[] = {
      "RM3 expected to beat RM2 (CS-PS present, or CI-PS x CS-PI)",
      "RM2 and RM3 comparable (CS-PI with CS-PI/CI-PI)",
      "only RM3 effective (CI-PS with CI-PS/CI-PI)",
      "limited/no savings for every RM (CI-PI x CI-PI)"};
  for (int s = 0; s < 4; ++s) {
    weights.add_row({"Scenario " + std::to_string(s + 1), meaning[s],
                     AsciiTable::pct(table.scenario_weight[static_cast<std::size_t>(s)])});
  }
  weights.print();

  // Paper: "RM3 is more effective in 12 out of 16 mixes with a collective
  // probability of 70%" (scenarios 1 and 3 over ordered pairs).
  const double rm3_better =
      table.scenario_weight[0] + table.scenario_weight[2];
  int rm3_cells = 0;
  for (int a = 0; a < workload::kNumCategories; ++a) {
    for (int b = 0; b < workload::kNumCategories; ++b) {
      const workload::Scenario s =
          workload::scenario_of(static_cast<Category>(a), static_cast<Category>(b));
      rm3_cells +=
          s == workload::Scenario::One || s == workload::Scenario::Three;
    }
  }
  std::printf("\nRM3 more effective: %d of 16 ordered mixes, collective "
              "probability %.0f%% (paper: 12 of 16, 70%%)\n",
              rm3_cells, rm3_better * 100.0);
  return 0;
}
