// Reproduces paper Section III-E: the instruction overhead of executing the
// RM algorithm for 2-, 4- and 8-core systems.
//
// Paper reference: 51K / 73K / 100K instructions for RM3 (vs 18K / 40K /
// 67K for the prior-work RM2), i.e. ~0.1% of a 100M-instruction interval on
// an 8-core system. The library counts optimizer operations per invocation
// and maps them to instructions with the calibrated linear model in
// rm/overheads.hh; this bench also reports the enforcement overheads.
#include <cstdio>

#include "common/cli.hh"
#include "common/table.hh"
#include "rm/overheads.hh"
#include "rmsim/experiment.hh"

using namespace qosrm;

int main(int, char**) {
  std::printf("=== Section III-E: RM overhead scaling ===\n\n");

  AsciiTable table({"Cores", "RM2 ops", "RM2 instr", "RM3 ops", "RM3 instr",
                    "paper RM2", "paper RM3", "interval share (RM3)"});
  const double paper_rm2[] = {18e3, 40e3, 67e3};
  const double paper_rm3[] = {51e3, 73e3, 100e3};

  int idx = 0;
  for (const int cores : {2, 4, 8}) {
    arch::SystemConfig system;
    system.cores = cores;
    const power::PowerModel power;
    const workload::SimDb db(workload::spec_suite(), system, power);
    const rm::OverheadModel overheads({}, power);

    workload::WorkloadGenOptions gen;
    gen.cores = cores;
    gen.per_scenario = 1;
    const auto mixes = generate_workloads(workload::spec_suite(), gen);

    // Average ops per invocation over one scenario-1 workload run.
    std::array<std::uint64_t, 2> total_ops{};
    std::array<std::uint64_t, 2> invocations{};
    const rm::RmPolicy policies[] = {rm::RmPolicy::Rm2, rm::RmPolicy::Rm3};
    const rmsim::IntervalSimulator sim(db);
    for (int p = 0; p < 2; ++p) {
      rm::RmConfig cfg;
      cfg.policy = policies[p];
      cfg.model = rm::PerfModelKind::Model3;
      const rmsim::RunResult r = sim.run(mixes.front(), cfg);
      total_ops[static_cast<std::size_t>(p)] = r.rm_ops;
      invocations[static_cast<std::size_t>(p)] = r.rm_invocations;
    }

    const double ops2 = static_cast<double>(total_ops[0]) /
                        static_cast<double>(invocations[0]);
    const double ops3 = static_cast<double>(total_ops[1]) /
                        static_cast<double>(invocations[1]);
    const double instr2 = overheads.rm_instructions(static_cast<std::uint64_t>(ops2));
    const double instr3 = overheads.rm_instructions(static_cast<std::uint64_t>(ops3));
    const double share = instr3 / 100e6;

    table.add_row({std::to_string(cores), AsciiTable::num(ops2, 0),
                   AsciiTable::num(instr2 / 1e3, 1) + "K",
                   AsciiTable::num(ops3, 0),
                   AsciiTable::num(instr3 / 1e3, 1) + "K",
                   AsciiTable::num(paper_rm2[idx] / 1e3, 0) + "K",
                   AsciiTable::num(paper_rm3[idx] / 1e3, 0) + "K",
                   AsciiTable::pct(share, 3)});
    ++idx;
  }
  table.print();

  std::printf("\nEnforcement overheads (paper constants):\n");
  const power::PowerModel power;
  const rm::OverheadModel overheads({}, power);
  const workload::Setting from{arch::CoreSize::M, arch::VfTable::kBaselineIndex, 8};
  workload::Setting to = from;
  to.f_idx = 12;
  const rm::EnforcementCost dvfs = overheads.transition(from, to);
  to = from;
  to.c = arch::CoreSize::L;
  const rm::EnforcementCost resize = overheads.transition(from, to);
  std::printf("  DVFS switch:  %.1f us, %.1f uJ (paper: 15 us, 3 uJ)\n",
              dvfs.time_s * 1e6, dvfs.energy_j * 1e6);
  std::printf("  core resize:  %.3f us drain (paper: 'a few hundred cycles')\n",
              resize.time_s * 1e6);
  std::printf("  interval at IPC 2, 2 GHz: %.0f ms -> both overheads are\n"
              "  negligible at the 100M-instruction interval size\n",
              100e6 / 2.0 / 2e9 * 1e3);
  return 0;
}
