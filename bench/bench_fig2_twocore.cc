// Reproduces paper Fig. 2: simulation results for two-core workload
// scenarios under perfect modelling assumptions (exact performance/energy
// prediction including the next interval's phase, no overheads).
//
// Paper reference points: Scenario 1 - RM3 ~70% higher savings than RM2;
// Scenario 2 - both comparable (~5%); Scenario 3 - only RM3 (~11%);
// Scenario 4 - all ineffective.
#include <cstdio>

#include "common/cli.hh"
#include "common/csv.hh"
#include "rmsim/experiment.hh"
#include "rmsim/report.hh"
#include "workload/db_io.hh"

using namespace qosrm;

int main(int argc, char** argv) {
  CliArgs args(argc, argv, {"real-models"});
  const bool perfect = !args.get_bool("real-models", false);

  arch::SystemConfig system;
  system.cores = 2;
  const power::PowerModel power;
  const workload::SimDb db = workload::warm_simdb(
      workload::spec_suite(), system, power, {},
      args.has("db-cache")
          ? workload::db_cache_path(args.get("db-cache", ""), system.cores)
          : std::string());

  rmsim::SimOptions sim_options;
  sim_options.model_overheads = !perfect;
  rmsim::ExperimentRunner runner(db, sim_options);

  // One representative two-core workload per scenario (same pairings the
  // motivation section of the paper uses: CS-PS with CI-PS, CS-PI pairs,
  // CI-PS pairs, CI-PI pairs).
  struct Case {
    workload::Scenario scenario;
    const char* app1;
    const char* app2;
  };
  const Case cases[] = {
      {workload::Scenario::One, "sphinx3", "gcc"},      // CS-PI x CS-PS
      {workload::Scenario::Two, "h264ref", "perlbench"},  // CS-PI x CI-PI
      {workload::Scenario::Three, "bwaves", "GemsFDTD"},  // CI-PS x CI-PS
      {workload::Scenario::Four, "povray", "sjeng"},      // CI-PI x CI-PI
  };

  std::printf("=== Fig. 2: two-core scenarios, %s models, overheads %s ===\n\n",
              perfect ? "perfect" : "online", perfect ? "off" : "on");

  std::unique_ptr<CsvWriter> csv;
  if (args.has("csv")) {
    csv = std::make_unique<CsvWriter>(
        args.get("csv", "fig2.csv"),
        std::vector<std::string>{"scenario", "workload", "policy", "savings"});
  }

  std::vector<rmsim::SavingsGridRow> rows;
  for (const Case& c : cases) {
    workload::WorkloadMix mix;
    mix.name = std::string(c.app1) + "+" + c.app2;
    mix.scenario = c.scenario;
    mix.app_ids = {db.suite().index_of(c.app1), db.suite().index_of(c.app2)};

    rmsim::SavingsGridRow row;
    row.workload = mix.name;
    row.scenario = mix.scenario;
    for (const rm::RmPolicy policy :
         {rm::RmPolicy::Rm1, rm::RmPolicy::Rm2, rm::RmPolicy::Rm3}) {
      rm::RmConfig cfg;
      cfg.policy = policy;
      cfg.model =
          perfect ? rm::PerfModelKind::Perfect : rm::PerfModelKind::Model3;
      cfg.energy.perfect = perfect;
      const rmsim::SavingsResult r = runner.run(mix, cfg);
      row.savings.push_back(r.savings);
      if (csv) {
        csv->add_row({rmsim::scenario_label(mix.scenario), mix.name,
                      rm::rm_policy_name(policy), std::to_string(r.savings)});
      }
    }
    rows.push_back(std::move(row));
  }
  rmsim::savings_grid(rows, {"RM1", "RM2", "RM3"}).print();

  const double ratio =
      rows[0].savings[2] / std::max(1e-9, rows[0].savings[1]);
  std::printf("\nScenario 1 RM3/RM2 savings ratio: %.2f (paper: ~1.7)\n", ratio);
  std::printf("Scenario 3 RM3 savings: %.1f%% with RM1/RM2 at %.1f%%/%.1f%% "
              "(paper: 11%% vs ~0)\n",
              rows[2].savings[2] * 100.0, rows[2].savings[0] * 100.0,
              rows[2].savings[1] * 100.0);
  if (csv) csv->close();  // surface commit errors instead of swallowing them
  return 0;
}
