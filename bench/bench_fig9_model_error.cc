// Reproduces paper Fig. 9: energy savings of the proposed RM3 under the
// three online performance models plus the perfect model (exact prediction
// including the next interval's phase), on generated 4-core and 8-core
// workloads.
//
// Paper reference: the proposed Model3 achieves savings closest to the
// perfect bound; Models 1/2 lose savings (or fake them with violations).
//
// Expressed on top of the sweep + figure-report layer: the model axis runs
// through SweepRunner (which pairs the Perfect perf model with ground-truth
// energy - the true oracle) and the oracle gaps come from the report's
// fig9 section, the same numbers the CI-gated JSON reports carry.
//
// Flags: --cores=4,8  --per-scenario=6  --seed=2020  --csv=fig9.csv
//        --json=fig9.json  --threads=N  --db-cache=DIR
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/csv.hh"
#include "common/str.hh"
#include "rmsim/report.hh"
#include "rmsim/shard.hh"
#include "rmsim/sweep.hh"
#include "workload/db_io.hh"

using namespace qosrm;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  std::vector<int> core_counts;
  {
    std::stringstream ss(args.get("cores", "4,8"));
    std::string item;
    while (std::getline(ss, item, ',')) core_counts.push_back(std::stoi(item));
  }
  const int per_scenario = static_cast<int>(args.get_int("per-scenario", 6));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2020));

  rmsim::SweepOptions sweep_options;
  sweep_options.threads = static_cast<int>(args.get_int("threads", 0));

  std::unique_ptr<CsvWriter> csv;
  if (args.has("csv")) {
    csv = std::make_unique<CsvWriter>(
        args.get("csv", "fig9.csv"),
        std::vector<std::string>{"workload", "cores", "scenario", "model",
                                 "savings", "violation_rate"});
  }

  for (const int cores : core_counts) {
    std::printf("=== Fig. 9 (%d-core workloads, RM3 under each model) ===\n",
                cores);
    arch::SystemConfig system;
    system.cores = cores;
    const power::PowerModel power;
    const workload::SimDb db = workload::warm_simdb(
        workload::spec_suite(), system, power, {},
        args.has("db-cache")
            ? workload::db_cache_path(args.get("db-cache", ""), cores)
            : std::string());

    workload::WorkloadGenOptions gen;
    gen.cores = cores;
    gen.per_scenario = per_scenario;
    gen.seed = seed;

    rmsim::SweepGrid grid;
    grid.mixes = generate_workloads(workload::spec_suite(), gen);
    grid.policies = {rm::RmPolicy::Rm3};
    grid.models = {rm::PerfModelKind::Model1, rm::PerfModelKind::Model2,
                   rm::PerfModelKind::Model3, rm::PerfModelKind::Perfect};
    grid.qos_alphas = {0.0};

    rmsim::SweepRunner runner(db, sweep_options);
    const rmsim::SweepResult result = runner.run(grid);
    const rmsim::FigureReport report = rmsim::build_figure_report(
        result.rows, grid.shape(),
        rmsim::sweep_fingerprint(
            grid, sweep_options.sim,
            workload::simdb_fingerprint(db.suite(), db.system(),
                                        db.phase_options())),
        rmsim::scenario_weights(db.suite()));

    // Per-workload savings grid: one column per model (fig6 entries are in
    // model order because the grid has a single policy).
    std::vector<rmsim::SavingsGridRow> rows;
    for (std::size_t mi = 0; mi < report.workloads.size(); ++mi) {
      rmsim::SavingsGridRow row;
      row.workload = report.workloads[mi];
      row.scenario = report.scenarios[mi];
      for (std::size_t ki = 0; ki < grid.models.size(); ++ki) {
        row.savings.push_back(report.fig6[ki].per_mix_savings[mi]);
      }
      rows.push_back(std::move(row));
    }
    rmsim::savings_grid(rows, {"Model1", "Model2", "Model3", "Perfect"}).print();

    if (csv) {
      for (const rmsim::SweepRow& row : result.rows) {
        csv->add_row({row.workload, std::to_string(cores),
                      rmsim::scenario_label(row.scenario),
                      rm::perf_model_name(row.model),
                      std::to_string(row.result.savings),
                      std::to_string(row.result.run.violation_rate())});
      }
    }

    // Mean savings / violation rate per model plus the gap to the perfect
    // oracle - the report's fig9 deltas (Perfect's own gap is zero).
    AsciiTable summary({"Aggregate", "Model1", "Model2", "Model3", "Perfect"});
    std::vector<std::string> mean_row = {"mean savings"};
    std::vector<std::string> vio_row = {"mean violation rate"};
    std::vector<std::string> gap_row = {"gap to perfect"};
    for (std::size_t ki = 0; ki < grid.models.size(); ++ki) {
      mean_row.push_back(AsciiTable::pct(report.fig6[ki].mean_savings));
      vio_row.push_back(AsciiTable::pct(report.fig7[ki].mean_violation_rate));
      if (grid.models[ki] == rm::PerfModelKind::Perfect) {
        gap_row.push_back(AsciiTable::pct(0.0));
      } else {
        // fig9 entries follow the model axis minus the oracle, one policy.
        const std::size_t delta_index = ki;  // Perfect is last on the axis
        gap_row.push_back(AsciiTable::pct(report.fig9[delta_index].mean_gap));
      }
    }
    summary.add_row(std::move(mean_row));
    summary.add_row(std::move(vio_row));
    summary.add_row(std::move(gap_row));
    summary.print();

    if (args.has("json")) {
      std::string path = args.get("json", "fig9.json");
      if (core_counts.size() > 1) {
        path = format("%s.c%d", path.c_str(), cores);
      }
      std::string error;
      if (!rmsim::write_report_json(report, path, &error)) {
        std::fprintf(stderr, "--json: %s\n", error.c_str());
        // Failed run: publish nothing, not a CSV covering only some cores.
        if (csv) csv->abandon();
        return 1;
      }
      std::printf("wrote figure report to %s\n", path.c_str());
    }
    std::printf("\n");
  }
  if (csv) csv->close();  // surface commit errors instead of swallowing them
  return 0;
}
