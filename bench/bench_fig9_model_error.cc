// Reproduces paper Fig. 9: energy savings of the proposed RM3 under the
// three online performance models plus the perfect model (exact prediction
// including the next interval's phase), on generated 4-core and 8-core
// workloads.
//
// Paper reference: the proposed Model3 achieves savings closest to the
// perfect bound; Models 1/2 lose savings (or fake them with violations).
#include <cstdio>
#include <sstream>

#include "common/cli.hh"
#include "common/csv.hh"
#include "rmsim/experiment.hh"
#include "rmsim/report.hh"
#include "workload/db_io.hh"

using namespace qosrm;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  std::vector<int> core_counts;
  {
    std::stringstream ss(args.get("cores", "4,8"));
    std::string item;
    while (std::getline(ss, item, ',')) core_counts.push_back(std::stoi(item));
  }
  const int per_scenario = static_cast<int>(args.get_int("per-scenario", 6));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2020));

  const std::vector<std::pair<rm::PerfModelKind, bool>> variants = {
      {rm::PerfModelKind::Model1, false},
      {rm::PerfModelKind::Model2, false},
      {rm::PerfModelKind::Model3, false},
      {rm::PerfModelKind::Perfect, true},
  };

  std::unique_ptr<CsvWriter> csv;
  if (args.has("csv")) {
    csv = std::make_unique<CsvWriter>(
        args.get("csv", "fig9.csv"),
        std::vector<std::string>{"workload", "cores", "scenario", "model",
                                 "savings", "violation_rate"});
  }

  for (const int cores : core_counts) {
    std::printf("=== Fig. 9 (%d-core workloads, RM3 under each model) ===\n",
                cores);
    arch::SystemConfig system;
    system.cores = cores;
    const power::PowerModel power;
    const workload::SimDb db = workload::warm_simdb(
        workload::spec_suite(), system, power, {},
        args.has("db-cache")
            ? workload::db_cache_path(args.get("db-cache", ""), cores)
            : std::string());
    rmsim::ExperimentRunner runner(db);

    workload::WorkloadGenOptions gen;
    gen.cores = cores;
    gen.per_scenario = per_scenario;
    gen.seed = seed;
    const auto mixes = generate_workloads(workload::spec_suite(), gen);

    std::vector<rmsim::SavingsGridRow> rows;
    std::array<double, 4> totals{};
    std::array<double, 4> violation_rates{};
    for (const auto& mix : mixes) {
      rmsim::SavingsGridRow row;
      row.workload = mix.name;
      row.scenario = mix.scenario;
      for (std::size_t v = 0; v < variants.size(); ++v) {
        rm::RmConfig cfg;
        cfg.policy = rm::RmPolicy::Rm3;
        cfg.model = variants[v].first;
        cfg.energy.perfect = variants[v].second;
        const rmsim::SavingsResult r = runner.run(mix, cfg);
        row.savings.push_back(r.savings);
        totals[v] += r.savings;
        violation_rates[v] += r.run.violation_rate();
        if (csv) {
          csv->add_row({mix.name, std::to_string(cores),
                        rmsim::scenario_label(mix.scenario),
                        rm::perf_model_name(variants[v].first),
                        std::to_string(r.savings),
                        std::to_string(r.run.violation_rate())});
        }
      }
      rows.push_back(std::move(row));
    }
    rmsim::savings_grid(rows, {"Model1", "Model2", "Model3", "Perfect"}).print();

    const auto n = static_cast<double>(mixes.size());
    AsciiTable summary({"Aggregate", "Model1", "Model2", "Model3", "Perfect"});
    std::vector<std::string> mean_row = {"mean savings"};
    std::vector<std::string> vio_row = {"mean violation rate"};
    std::vector<std::string> gap_row = {"gap to perfect"};
    for (std::size_t v = 0; v < variants.size(); ++v) {
      mean_row.push_back(AsciiTable::pct(totals[v] / n));
      vio_row.push_back(AsciiTable::pct(violation_rates[v] / n));
      gap_row.push_back(AsciiTable::pct((totals[3] - totals[v]) / n));
    }
    summary.add_row(std::move(mean_row));
    summary.add_row(std::move(vio_row));
    summary.add_row(std::move(gap_row));
    summary.print();
    std::printf("\n");
  }
  return 0;
}
