// Reproduces paper Fig. 8: the distribution of QoS-violation magnitudes for
// the three performance models, normalized to the maximum bin across models.
//
// Paper reference: Model3 has slightly MORE small (~5%) violations but a far
// smaller total count, with the large-violation tail reduced significantly.
#include <cstdio>

#include "common/cli.hh"
#include "common/csv.hh"
#include "rmsim/qos_eval.hh"
#include "rmsim/report.hh"

using namespace qosrm;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);

  arch::SystemConfig system;
  system.cores = 2;
  const power::PowerModel power;
  const workload::SimDb db(workload::spec_suite(), system, power);

  rmsim::QosEvalOptions options;
  options.current_f_stride = static_cast<int>(args.get_int("f-stride", 2));
  options.histogram_bins = static_cast<int>(args.get_int("bins", 20));
  options.histogram_max = args.get_double("max", 0.4);
  const rmsim::QosEvaluator evaluator(db, options);
  const auto results = evaluator.evaluate_all({rm::PerfModelKind::Model1,
                                               rm::PerfModelKind::Model2,
                                               rm::PerfModelKind::Model3});

  std::printf("=== Fig. 8: distribution of QoS violations (normalized) ===\n\n");
  std::fputs(rmsim::qos_histograms(results).c_str(), stdout);

  // Tail comparison: mass of violations above 10%.
  std::printf("violation mass above 10%% magnitude:\n");
  for (const auto& r : results) {
    double tail = 0.0;
    for (std::size_t b = 0; b < r.histogram.bin_count(); ++b) {
      if (r.histogram.bin_lo(b) >= 0.10) tail += r.histogram.count(b);
    }
    std::printf("  %-7s %.4f\n", rm::perf_model_name(r.model), tail);
  }

  if (args.has("csv")) {
    CsvWriter csv(args.get("csv", "fig8.csv"),
                  {"model", "bin_lo", "bin_hi", "count", "normalized"});
    double global_max = 0.0;
    for (const auto& r : results) {
      global_max = std::max(global_max, r.histogram.max_count());
    }
    for (const auto& r : results) {
      const auto norm = r.histogram.normalized_by(global_max);
      for (std::size_t b = 0; b < r.histogram.bin_count(); ++b) {
        csv.add_row({rm::perf_model_name(r.model),
                     std::to_string(r.histogram.bin_lo(b)),
                     std::to_string(r.histogram.bin_hi(b)),
                     std::to_string(r.histogram.count(b)),
                     std::to_string(norm[b])});
      }
    }
    csv.close();  // surface commit errors instead of swallowing them
  }
  return 0;
}
