// Ablation: accuracy of the proposed MLP-ATD hardware heuristic against the
// oracle leading-miss analysis, and its sensitivity to the quantized
// instruction-index width and ATD set sampling.
//
// The paper (Section III-E) estimates <300 bytes/core for the 10-bit /
// 27-bit design and explicitly leaves the bit-width sensitivity analysis to
// future work - this bench performs it.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/cli.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "workload/phase_stats.hh"
#include "workload/spec_suite.hh"

using namespace qosrm;

namespace {

/// Mean |ATD - oracle| / oracle over all (c, w) for one suite pass with the
/// given MLP-ATD configuration.
struct AccuracyResult {
  double mean_rel_error = 0.0;
  double p95_rel_error = 0.0;
  double storage_bytes = 0.0;
};

AccuracyResult measure(int index_bits, int sample_period) {
  arch::SystemConfig system;
  system.cores = 2;
  workload::PhaseStatsOptions options;
  options.mlp_index_bits = index_bits;
  options.atd_sample_period = sample_period;

  RunningStats rel;
  std::vector<double> errors;
  const workload::SpecSuite& suite = workload::spec_suite();
  for (int a = 0; a < suite.size(); ++a) {
    // First phase of each application is representative enough here.
    const workload::PhaseStats st = characterize_phase(
        suite.app(a).phases[0], system, options, suite.app(a).trace_seed + 1);
    for (int c = 0; c < arch::kNumCoreSizes; ++c) {
      for (int w = 2; w <= 16; w += 2) {
        const double oracle =
            st.lm_true[static_cast<std::size_t>(c)][static_cast<std::size_t>(w - 1)];
        const double atd =
            st.lm_atd[static_cast<std::size_t>(c)][static_cast<std::size_t>(w - 1)];
        if (oracle < 1.0) continue;
        const double err = std::abs(atd - oracle) / oracle;
        rel.add(err);
        errors.push_back(err);
      }
    }
  }
  std::sort(errors.begin(), errors.end());
  AccuracyResult result;
  result.mean_rel_error = rel.mean();
  result.p95_rel_error =
      errors.empty() ? 0.0 : errors[errors.size() * 95 / 100];
  // Storage: 48 counters x (counter + 2 index registers + flags).
  const double per_counter = 27.0 + 2.0 * index_bits + 2.0;
  result.storage_bytes = per_counter * 48.0 / 8.0;
  return result;
}

}  // namespace

int main(int, char**) {
  std::printf("=== Ablation: MLP-ATD accuracy vs oracle ===\n\n");

  std::printf("Sensitivity to the instruction-index width (sampling off):\n");
  AsciiTable bits({"index bits", "mean rel. error", "p95 rel. error",
                   "extension storage"});
  for (const int b : {6, 8, 10, 12, 16}) {
    const AccuracyResult r = measure(b, 1);
    bits.add_row({std::to_string(b), AsciiTable::pct(r.mean_rel_error),
                  AsciiTable::pct(r.p95_rel_error),
                  AsciiTable::num(r.storage_bytes, 0) + " B/core"});
  }
  bits.print();
  std::printf("(paper design point: 10 bits, <300 B/core including registers)\n\n");

  std::printf("Sensitivity to ATD set sampling (10-bit indices):\n");
  AsciiTable sampling({"sample period", "mean rel. error", "p95 rel. error"});
  for (const int p : {1, 2, 4, 8}) {
    const AccuracyResult r = measure(10, p);
    sampling.add_row({"1/" + std::to_string(p),
                      AsciiTable::pct(r.mean_rel_error),
                      AsciiTable::pct(r.p95_rel_error)});
  }
  sampling.print();
  return 0;
}
