// Google-benchmark coverage of the per-interval-boundary hot path: one
// ResourceManager::invoke (local optimization of the boundary core +
// pairwise-reduction global optimization) and one counter-snapshot build.
// These run once per interval boundary, so their cost is the management
// overhead the paper argues must stay negligible (Section IV-D).
//
// Besides ns/op every benchmark reports allocs/op, the number of heap
// allocations per iteration measured through a global operator-new hook:
// the invoke path is required to be allocation-free after warmup (see the
// README performance section). CI runs this binary briefly and uploads the
// JSON so the perf trajectory is tracked across PRs.
//
// The simulation database honours QOSRM_DB_CACHE_DIR (same protocol as the
// slow test suites): set it to restore the characterization from a binary
// snapshot instead of paying the multi-second build per run.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "arch/system_config.hh"
#include "common/simd.hh"
#include "power/power_model.hh"
#include "rm/resource_manager.hh"
#include "rmsim/snapshot.hh"
#include "workload/db_io.hh"
#include "workload/sim_db.hh"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

// Counting operator-new hooks (all variants funnel here). Kept outside any
// namespace so they replace the global versions for the whole binary.
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align), size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace qosrm;

/// One shared database per (core count, bandwidth-share count) - the build
/// is seconds-expensive, and a partitioned-bandwidth table is a genuinely
/// different (wider) evaluation grid with its own cache file.
const workload::SimDb& bench_db(int cores, int bw_shares = 1) {
  static std::map<std::pair<int, int>, std::unique_ptr<workload::SimDb>> dbs;
  const std::pair<int, int> key{cores, bw_shares};
  auto it = dbs.find(key);
  if (it == dbs.end()) {
    arch::SystemConfig system;
    system.cores = cores;
    system.bw = arch::bw_config_for_shares(bw_shares);
    const char* cache_dir = std::getenv("QOSRM_DB_CACHE_DIR");
    const std::string cache_path =
        cache_dir != nullptr
            ? workload::db_cache_path(cache_dir, cores, bw_shares)
            : std::string();
    it = dbs.emplace(key, std::make_unique<workload::SimDb>(workload::warm_simdb(
                              workload::spec_suite(), system,
                              power::PowerModel{}, {}, cache_path)))
             .first;
  }
  return *it->second;
}

/// A representative mix: cache-sensitive, streaming and CPU-bound apps.
std::vector<rm::CounterSnapshot> bench_snapshots(const workload::SimDb& db,
                                                 int cores) {
  static const char* const kApps[] = {"mcf", "libquantum", "bwaves",
                                      "xalancbmk", "omnetpp", "perlbench",
                                      "hmmer", "gobmk"};
  std::vector<rm::CounterSnapshot> snaps;
  const workload::Setting base = workload::baseline_setting(db.system());
  for (int k = 0; k < cores; ++k) {
    snaps.push_back(rmsim::make_snapshot(
        db, db.suite().index_of(kApps[k % 8]), 0, base));
  }
  return snaps;
}

void report_allocs(benchmark::State& state, std::uint64_t before) {
  const std::uint64_t allocs =
      g_allocations.load(std::memory_order_relaxed) - before;
  state.counters["allocs_per_op"] = benchmark::Counter(
      static_cast<double>(allocs), benchmark::Counter::kAvgIterations);
}

/// ResourceManager::invoke at a given (policy, core count, bandwidth-share
/// count). The manager is warmed up with one invocation per core before
/// measurement, so the steady state (every per-core curve cached, workspaces
/// at capacity) is measured. bw_shares=1 is the classic ways-only problem;
/// bw_shares>1 runs the 2-D (ways x shares) DP, which is required to stay
/// allocation-free too and within a small constant factor of the 1-D cost
/// (the share axis is deliberately narrow - see arch::bw_config_for_shares).
void BM_RmInvoke(benchmark::State& state) {
  const auto policy = static_cast<rm::RmPolicy>(state.range(0));
  const int cores = static_cast<int>(state.range(1));
  const int bw_shares = static_cast<int>(state.range(2));
  const workload::SimDb& db = bench_db(cores, bw_shares);
  rm::RmConfig cfg;
  cfg.policy = policy;
  cfg.model = rm::PerfModelKind::Model3;
  rm::ResourceManager manager(cfg, db.system(), db.power());
  const auto snaps = bench_snapshots(db, cores);

  for (int k = 0; k < cores; ++k) benchmark::DoNotOptimize(manager.invoke(k, snaps));

  int core = 0;
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(manager.invoke(core, snaps));
    core = (core + 1) % cores;
  }
  report_allocs(state, before);
}
BENCHMARK(BM_RmInvoke)
    ->ArgsProduct({{static_cast<long>(rm::RmPolicy::Rm1),
                    static_cast<long>(rm::RmPolicy::Rm2),
                    static_cast<long>(rm::RmPolicy::Rm3),
                    static_cast<long>(rm::RmPolicy::Ucp),
                    static_cast<long>(rm::RmPolicy::Fcp),
                    static_cast<long>(rm::RmPolicy::ClassPart)},
                   {2, 4, 8, 16},
                   {1}})
    // The 2-D configurations: 4 cores x 4 bandwidth shares per core.
    ->ArgsProduct({{static_cast<long>(rm::RmPolicy::Rm1),
                    static_cast<long>(rm::RmPolicy::Rm2),
                    static_cast<long>(rm::RmPolicy::Rm3)},
                   {4},
                   {4}})
    ->ArgNames({"policy", "cores", "bw_shares"});

/// Counter-snapshot construction returning a fresh snapshot per call (the
/// pre-workspace simulator pattern; kept for before/after comparison).
void BM_MakeSnapshot(benchmark::State& state) {
  const int cores = static_cast<int>(state.range(0));
  const workload::SimDb& db = bench_db(cores);
  const workload::Setting base = workload::baseline_setting(db.system());
  const int app = db.suite().index_of("mcf");
  rm::CounterSnapshot snap = rmsim::make_snapshot(db, app, 0, base);

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (auto _ : state) {
    snap = rmsim::make_snapshot(db, app, 0, base);
    benchmark::DoNotOptimize(snap);
  }
  report_allocs(state, before);
}
BENCHMARK(BM_MakeSnapshot)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->ArgNames({"cores"});

/// Counter-snapshot refresh as the simulator performs it at every boundary:
/// make_snapshot_into() into per-core reusable storage - allocation-free
/// once the ATD buffers are at capacity.
void BM_MakeSnapshotReuse(benchmark::State& state) {
  const int cores = static_cast<int>(state.range(0));
  const workload::SimDb& db = bench_db(cores);
  const workload::Setting base = workload::baseline_setting(db.system());
  const int app = db.suite().index_of("mcf");
  rm::CounterSnapshot snap;
  rmsim::make_snapshot_into(db, app, 0, base, -1, snap);

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (auto _ : state) {
    rmsim::make_snapshot_into(db, app, 0, base, -1, snap);
    benchmark::DoNotOptimize(snap);
  }
  report_allocs(state, before);
}
BENCHMARK(BM_MakeSnapshotReuse)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->ArgNames({"cores"});

}  // namespace

// Custom main (instead of BENCHMARK_MAIN) so the JSON context records which
// SIMD kernel the optimizer hot path actually dispatched to - without it, a
// perf regression caused by a scalar fallback would be indistinguishable
// from a real one in the uploaded trajectory.
int main(int argc, char** argv) {
  benchmark::AddCustomContext(
      "simd", qosrm::simd::level_name(qosrm::simd::active_level()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
