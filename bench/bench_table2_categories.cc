// Reproduces paper Table II: application categories of the (synthetic)
// SPEC CPU2006 suite under the paper's CS/CI x PS/PI criteria.
//
//   CS: MPKI varies > 20% under +-50% LLC allocation and MPKI(8w) >= 0.2.
//   PS: (MLP_L - MLP_S) > 0.3 * MLP_M at baseline allocation, MLP_L >= 2.
//
// Output: per-application metrics and category, the per-category membership
// lists, and a verdict versus the paper's populations (5/7/7/8).
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/csv.hh"
#include "common/table.hh"
#include "workload/classify.hh"

using namespace qosrm;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  arch::SystemConfig system;
  system.cores = 2;
  const power::PowerModel power;
  const workload::SimDb db(workload::spec_suite(), system, power);

  const auto classifications = workload::classify_suite(db);

  AsciiTable table({"Application", "MPKI@4w", "MPKI@8w", "MPKI@12w", "MLP S",
                    "MLP M", "MLP L", "Category", "Paper"});
  std::map<workload::Category, std::vector<std::string>> members;
  int agreements = 0;
  for (const auto& cls : classifications) {
    const auto& app = db.suite().app(cls.app);
    const workload::Category intended = db.suite().intended_category(cls.app);
    table.add_row({app.name, AsciiTable::num(cls.mpki_lo),
                   AsciiTable::num(cls.mpki_base), AsciiTable::num(cls.mpki_hi),
                   AsciiTable::num(cls.mlp_s), AsciiTable::num(cls.mlp_m),
                   AsciiTable::num(cls.mlp_l),
                   workload::category_name(cls.category()),
                   workload::category_name(intended)});
    members[cls.category()].push_back(app.name);
    agreements += cls.category() == intended;
  }
  table.print();

  std::printf("\nTable II reproduction (paper populations CS-PS:5 CS-PI:7 "
              "CI-PS:7 CI-PI:8):\n");
  for (const auto& [cat, names] : members) {
    std::printf("  %-5s (%2zu):", workload::category_name(cat), names.size());
    for (const auto& n : names) std::printf(" %s", n.c_str());
    std::printf("\n");
  }
  std::printf("\nagreement with paper Table II: %d/27 applications\n", agreements);

  if (args.has("csv")) {
    CsvWriter csv(args.get("csv", "table2.csv"),
                  {"app", "mpki4", "mpki8", "mpki12", "mlp_s", "mlp_m", "mlp_l",
                   "category", "paper_category"});
    for (const auto& cls : classifications) {
      csv.add_row({db.suite().app(cls.app).name, std::to_string(cls.mpki_lo),
                   std::to_string(cls.mpki_base), std::to_string(cls.mpki_hi),
                   std::to_string(cls.mlp_s), std::to_string(cls.mlp_m),
                   std::to_string(cls.mlp_l),
                   workload::category_name(cls.category()),
                   workload::category_name(db.suite().intended_category(cls.app))});
    }
    csv.close();  // surface commit errors instead of swallowing them
  }
  return agreements == 27 ? 0 : 1;
}
