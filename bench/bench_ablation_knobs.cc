// Ablation: which resource knob buys what?
//
// Decomposes RM3's savings by enabling the control knobs one at a time on
// top of LLC partitioning:
//
//   w        - partitioning only (RM1)
//   w + f    - partitioning + per-core DVFS (RM2, prior art)
//   w + c    - partitioning + core resizing, NO DVFS
//   w + f + c - the full proposed RM3
//
// The paper argues DVFS compensation is quadratic while resizing is roughly
// linear; this bench quantifies how much of RM3's advantage comes from the
// resize knob alone versus the interaction of both knobs.
#include <cstdio>

#include "common/cli.hh"
#include "common/csv.hh"
#include "rmsim/experiment.hh"
#include "rmsim/report.hh"

using namespace qosrm;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int cores = static_cast<int>(args.get_int("cores", 4));
  const int per_scenario = static_cast<int>(args.get_int("per-scenario", 3));

  arch::SystemConfig system;
  system.cores = cores;
  const power::PowerModel power;
  const workload::SimDb db(workload::spec_suite(), system, power);
  rmsim::ExperimentRunner runner(db);

  workload::WorkloadGenOptions gen;
  gen.cores = cores;
  gen.per_scenario = per_scenario;
  const auto mixes = generate_workloads(workload::spec_suite(), gen);

  struct Variant {
    const char* name;
    rm::LocalOptOptions knobs;
  };
  const Variant variants[] = {
      {"w", {false, false}},
      {"w+f", {true, false}},
      {"w+c", {false, true}},
      {"w+f+c", {true, true}},
  };

  std::printf("=== Ablation: resource knobs (%d-core, Model3) ===\n\n", cores);

  std::unique_ptr<CsvWriter> csv;
  if (args.has("csv")) {
    csv = std::make_unique<CsvWriter>(
        args.get("csv", "knobs.csv"),
        std::vector<std::string>{"workload", "scenario", "knobs", "savings"});
  }

  std::vector<rmsim::SavingsGridRow> rows;
  std::array<double, 4> per_variant_total{};
  for (const auto& mix : mixes) {
    rmsim::SavingsGridRow row;
    row.workload = mix.name;
    row.scenario = mix.scenario;
    for (std::size_t v = 0; v < 4; ++v) {
      rm::RmConfig cfg;
      cfg.policy = rm::RmPolicy::Rm3;  // active policy; knobs drive the search
      cfg.model = rm::PerfModelKind::Model3;
      cfg.knobs = variants[v].knobs;
      const rmsim::SavingsResult r = runner.run(mix, cfg);
      row.savings.push_back(r.savings);
      per_variant_total[v] += r.savings;
      if (csv) {
        csv->add_row({mix.name, rmsim::scenario_label(mix.scenario),
                      variants[v].name, std::to_string(r.savings)});
      }
    }
    rows.push_back(std::move(row));
  }
  rmsim::savings_grid(rows, {"w", "w+f", "w+c", "w+f+c"}).print();

  const auto n = static_cast<double>(mixes.size());
  std::printf("\nmean savings: w %.1f%%   w+f %.1f%%   w+c %.1f%%   w+f+c %.1f%%\n",
              per_variant_total[0] / n * 100.0, per_variant_total[1] / n * 100.0,
              per_variant_total[2] / n * 100.0, per_variant_total[3] / n * 100.0);
  std::printf("knob synergy (w+f+c vs best single extension): %+.1f%%\n",
              (per_variant_total[3] -
               std::max(per_variant_total[1], per_variant_total[2])) /
                  n * 100.0);
  if (csv) csv->close();  // surface commit errors instead of swallowing them
  return 0;
}
