// Micro-benchmark for the simulation-database build path: cold trace-driven
// characterization vs restore from a binary snapshot (workload/db_io.hh).
// The snapshot load is the prerequisite for sharded multi-process sweeps, so
// this tracks the speedup in the perf trajectory.
//
// Flags: --cores=2  --threads=0  --loads=5  --path=bench_simdb.qosdb
//        --keep (leave the snapshot file behind)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <optional>
#include <string>

#include "common/cli.hh"
#include "workload/db_io.hh"
#include "workload/sim_db.hh"
#include "workload/spec_suite.hh"

using namespace qosrm;
using Clock = std::chrono::steady_clock;

namespace {

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv, {"keep"});
  const int cores = static_cast<int>(args.get_int("cores", 2));
  const int loads = static_cast<int>(args.get_int("loads", 5));
  const std::string path = args.get("path", "bench_simdb.qosdb");

  arch::SystemConfig system;
  system.cores = cores;
  const power::PowerModel power;
  const workload::SpecSuite& suite = workload::spec_suite();
  workload::SimDbOptions options;
  options.threads = static_cast<int>(args.get_int("threads", 0));

  std::printf("=== SimDb build vs snapshot load (%d apps, %d cores) ===\n\n",
              suite.size(), cores);

  const auto t_build = Clock::now();
  const workload::SimDb db(suite, system, power, options);
  const double build_s = secs_since(t_build);
  std::printf("cold characterization: %8.1f ms\n", build_s * 1e3);

  std::string error;
  const auto t_save = Clock::now();
  if (!save_simdb(db, path, &error)) {
    std::fprintf(stderr, "save failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("snapshot save:         %8.1f ms -> %s\n",
              secs_since(t_save) * 1e3, path.c_str());

  double best_load_s = 1e300;
  for (int i = 0; i < loads; ++i) {
    const auto t_load = Clock::now();
    const std::optional<workload::SimDb> loaded =
        load_simdb(suite, system, power, options.phase, path, &error);
    const double load_s = secs_since(t_load);
    if (!loaded.has_value()) {
      std::fprintf(stderr, "load failed: %s\n", error.c_str());
      return 1;
    }
    best_load_s = std::min(best_load_s, load_s);
    std::printf("snapshot load #%d:      %8.1f ms\n", i + 1, load_s * 1e3);
  }

  std::printf("\nspeedup (build / best load): %.0fx\n", build_s / best_load_s);
  if (!args.get_bool("keep", false)) std::remove(path.c_str());
  return 0;
}
