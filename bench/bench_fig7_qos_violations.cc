// Reproduces paper Fig. 7: probability of QoS violation per execution
// interval, plus expected value and standard deviation of the violation
// magnitude (Eq. 6), for the three performance models.
//
// Methodology (paper Section IV-D.2): iterate all phases of all
// applications, all possible current settings and all target settings;
// a case violates if the model predicts QoS holds but ground truth says the
// target is slower than the baseline setting.
//
// Paper reference: Model3 cuts violation probability by 46% vs Model1 and
// 32% vs Model2; expected violation and its std-dev drop by 49% / 26% vs
// Model2.
#include <cstdio>

#include "common/cli.hh"
#include "common/csv.hh"
#include "rmsim/qos_eval.hh"
#include "rmsim/report.hh"
#include "workload/db_io.hh"

using namespace qosrm;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);

  arch::SystemConfig system;
  system.cores = 2;
  const power::PowerModel power;
  const workload::SimDb db = workload::warm_simdb(
      workload::spec_suite(), system, power, {},
      args.has("db-cache")
          ? workload::db_cache_path(args.get("db-cache", ""), system.cores)
          : std::string());

  rmsim::QosEvalOptions options;
  options.current_f_stride = static_cast<int>(args.get_int("f-stride", 2));
  const rmsim::QosEvaluator evaluator(db, options);
  const auto results = evaluator.evaluate_all({rm::PerfModelKind::Model1,
                                               rm::PerfModelKind::Model2,
                                               rm::PerfModelKind::Model3});

  std::printf("=== Fig. 7: QoS-violation statistics per model ===\n\n");
  rmsim::qos_summary(results).print();

  const auto& m1 = results[0];
  const auto& m2 = results[1];
  const auto& m3 = results[2];
  std::printf("\nModel3 vs Model1: violation probability %+.0f%% (paper: -46%%)\n",
              (m3.violation_probability / m1.violation_probability - 1.0) * 100.0);
  std::printf("Model3 vs Model2: violation probability %+.0f%% (paper: -32%%)\n",
              (m3.violation_probability / m2.violation_probability - 1.0) * 100.0);
  std::printf("Model3 vs Model2: expected violation    %+.0f%% (paper: -49%%)\n",
              (m3.expected_violation / m2.expected_violation - 1.0) * 100.0);
  std::printf("Model3 vs Model2: violation std-dev     %+.0f%% (paper: -26%%)\n",
              (m3.violation_stddev / m2.violation_stddev - 1.0) * 100.0);

  if (args.has("csv")) {
    CsvWriter csv(args.get("csv", "fig7.csv"),
                  {"model", "violation_probability", "expected_violation",
                   "violation_stddev"});
    for (const auto& r : results) {
      csv.add_row({rm::perf_model_name(r.model),
                   std::to_string(r.violation_probability),
                   std::to_string(r.expected_violation),
                   std::to_string(r.violation_stddev)});
    }
    csv.close();  // surface commit errors instead of swallowing them
  }
  return 0;
}
