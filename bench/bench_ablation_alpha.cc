// Ablation: QoS relaxation (the paper's alpha parameter, Eq. 3).
//
// The paper fixes alpha = 1 ("no performance degradation"); this bench
// explores the energy-vs-QoS frontier it leaves on the table: with alpha
// slightly above 1, every RM gains slack to throttle deeper. Reported per
// alpha: savings of RM2/RM3 and the realized per-interval slowdown.
#include <cstdio>

#include "common/cli.hh"
#include "common/csv.hh"
#include "rmsim/experiment.hh"
#include "rmsim/report.hh"

using namespace qosrm;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int cores = static_cast<int>(args.get_int("cores", 4));
  const int per_scenario = static_cast<int>(args.get_int("per-scenario", 2));

  arch::SystemConfig system;
  system.cores = cores;
  const power::PowerModel power;
  const workload::SimDb db(workload::spec_suite(), system, power);

  workload::WorkloadGenOptions gen;
  gen.cores = cores;
  gen.per_scenario = per_scenario;
  const auto mixes = generate_workloads(workload::spec_suite(), gen);

  std::printf("=== Ablation: QoS relaxation alpha (Eq. 3), %d-core ===\n\n",
              cores);

  std::unique_ptr<CsvWriter> csv;
  if (args.has("csv")) {
    csv = std::make_unique<CsvWriter>(
        args.get("csv", "alpha.csv"),
        std::vector<std::string>{"alpha", "policy", "mean_savings",
                                 "mean_violation_rate"});
  }

  AsciiTable table({"alpha", "RM2 savings", "RM3 savings",
                    "RM3 violation rate", "RM3 wall-time cost"});
  for (const double alpha : {1.0, 1.02, 1.05, 1.10, 1.20}) {
    rmsim::SimOptions sim_options;
    sim_options.qos_alpha_override = alpha;
    rmsim::ExperimentRunner runner(db, sim_options);

    std::array<double, 2> savings{};
    double violation_rate = 0.0;
    double wall_ratio = 0.0;
    const rm::RmPolicy policies[] = {rm::RmPolicy::Rm2, rm::RmPolicy::Rm3};
    for (const auto& mix : mixes) {
      for (int p = 0; p < 2; ++p) {
        rm::RmConfig cfg;
        cfg.policy = policies[p];
        cfg.model = rm::PerfModelKind::Model3;
        const rmsim::SavingsResult r = runner.run(mix, cfg);
        savings[static_cast<std::size_t>(p)] += r.savings;
        if (p == 1) {
          violation_rate += r.run.violation_rate();
          wall_ratio += r.run.wall_time_s /
                        runner.idle_reference(mix).wall_time_s;
        }
      }
    }
    const auto n = static_cast<double>(mixes.size());
    table.add_row({AsciiTable::num(alpha, 2), AsciiTable::pct(savings[0] / n),
                   AsciiTable::pct(savings[1] / n),
                   AsciiTable::pct(violation_rate / n),
                   AsciiTable::pct(wall_ratio / n - 1.0)});
    if (csv) {
      csv->add_row({std::to_string(alpha), "RM2",
                    std::to_string(savings[0] / n), "0"});
      csv->add_row({std::to_string(alpha), "RM3",
                    std::to_string(savings[1] / n),
                    std::to_string(violation_rate / n)});
    }
  }
  table.print();
  std::printf("\n(alpha = 1.00 is the paper's operating point; the violation\n"
              "rate at alpha > 1 counts intervals slower than alpha x the\n"
              "baseline, i.e. violations of the RELAXED constraint.)\n");
  if (csv) csv->close();  // surface commit errors instead of swallowing them
  return 0;
}
