#!/usr/bin/env python3
"""Docs link lint: fail on broken relative links in the repo's markdown.

Scans README.md, DESIGN.md and docs/*.md for markdown links and inline
reference targets. External links (http/https/mailto) are ignored - CI
must not flake on the outside world. A relative target is resolved
against the containing file's directory (anchors stripped) and must
exist; a missing target is a hard failure listing every offender.

Usage: python3 tools/docs_lint.py [repo_root]
"""

import pathlib
import re
import sys

# [text](target) - excluding images is unnecessary: their targets must
# exist too. Target ends at the first unescaped ')' (no nested parens in
# any of our docs).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

EXTERNAL = ("http://", "https://", "mailto:")


def doc_files(root: pathlib.Path):
    for name in ("README.md", "DESIGN.md"):
        path = root / name
        if path.is_file():
            yield path
    yield from sorted((root / "docs").glob("*.md"))


def check_file(path: pathlib.Path):
    errors = []
    text = path.read_text(encoding="utf-8")
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL):
            continue
        target = target.split("#", 1)[0]
        if not target:  # pure in-page anchor
            continue
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            line = text.count("\n", 0, match.start()) + 1
            errors.append(f"{path}:{line}: broken link -> {match.group(1)}")
    return errors


def main() -> int:
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    errors = []
    checked = 0
    for path in doc_files(root):
        checked += 1
        errors.extend(check_file(path))
    if errors:
        print("\n".join(errors), file=sys.stderr)
        print(f"docs lint: {len(errors)} broken link(s)", file=sys.stderr)
        return 1
    print(f"docs lint: {checked} file(s), all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
