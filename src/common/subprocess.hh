// Minimal fork/exec subprocess helper for CLI drivers that fan work out
// over worker processes (the sharded sweep orchestrator).
//
// Deliberately tiny: spawn an argv, wait for it, terminate it early. No
// pipes or output capture - workers inherit stdout/stderr, so their
// progress and diagnostics stream straight to the operator's terminal.
#ifndef QOSRM_COMMON_SUBPROCESS_HH
#define QOSRM_COMMON_SUBPROCESS_HH

#include <optional>
#include <string>
#include <vector>

#include <sys/types.h>

namespace qosrm {

/// How a child ended. `success()` means a clean exit(0); everything else
/// (non-zero exit, signal, spawn failure) is a failure with a printable
/// description.
struct SubprocessExit {
  bool spawned = false;   ///< false: fork/exec itself failed
  bool exited = false;    ///< true: normal exit (code in exit_code)
  int exit_code = -1;
  int term_signal = 0;    ///< non-zero: killed by this signal

  [[nodiscard]] bool success() const noexcept { return exited && exit_code == 0; }
};

/// "exit code 3" / "killed by signal 9 (Killed)" / "failed to spawn".
[[nodiscard]] std::string describe(const SubprocessExit& exit);

/// One spawned child process.
class Subprocess {
 public:
  Subprocess() = default;

  /// Fork/execs `argv` (argv[0] resolved via PATH). Running state is
  /// queryable via `running()`; a failed spawn is reported by wait().
  static Subprocess spawn(const std::vector<std::string>& argv);

  /// Blocks until the child ends and returns how. Idempotent: a second
  /// call returns the same result without waiting again.
  SubprocessExit wait();

  /// Blocks until ANY still-running child in `children` ends and returns
  /// its index (the child's wait() then returns the cached result without
  /// blocking). nullopt when none is running. Lets a supervisor react to
  /// the FIRST failure regardless of spawn order, instead of waiting
  /// through long-running earlier children.
  static std::optional<std::size_t> wait_any(
      const std::vector<Subprocess*>& children);

  /// Sends SIGTERM (no-op once the child was already reaped - including a
  /// child reaped into the stray-status stash by a foreign wait_any(), whose
  /// pid the kernel may already have recycled).
  void terminate();

  /// True while the child is alive and unreaped. A child whose exit status
  /// sits in the stray-status stash (reaped by a wait_any() that did not
  /// track it) reads as NOT running: the process is gone even though this
  /// object's wait() has not consumed the status yet.
  [[nodiscard]] bool running() const noexcept;
  [[nodiscard]] pid_t pid() const noexcept { return pid_; }

 private:
  pid_t pid_ = -1;
  bool reaped_ = false;
  SubprocessExit exit_{};
};

}  // namespace qosrm

#endif  // QOSRM_COMMON_SUBPROCESS_HH
