// Thread-safe compute-once cache.
//
// Concurrent callers asking for the same key block until the first caller's
// compute() finishes, then all share the one stored value; compute() runs
// exactly once per key no matter how many threads race. Used by the
// experiment layer so parallel policy sweeps materialize each workload's
// idle-RM reference a single time (those runs dominate sweep cost).
#ifndef QOSRM_COMMON_ONCE_CACHE_HH
#define QOSRM_COMMON_ONCE_CACHE_HH

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

namespace qosrm {

template <typename Key, typename Value>
class OnceCache {
 public:
  /// Returns the cached value for `key`, invoking `compute` to produce it if
  /// this is the first request. The returned reference stays valid for the
  /// cache's lifetime (entries are never evicted). If compute throws, the
  /// entry stays unfilled and the next caller retries (std::call_once
  /// semantics).
  template <typename Fn>
  const Value& get_or_compute(const Key& key, Fn&& compute) {
    std::shared_ptr<Entry> entry;
    {
      std::lock_guard<std::mutex> lock(mu_);
      std::shared_ptr<Entry>& slot = entries_[key];
      if (!slot) slot = std::make_shared<Entry>();
      entry = slot;
    }
    std::call_once(entry->once, [&] {
      entry->value = std::forward<Fn>(compute)();
      computed_.fetch_add(1, std::memory_order_relaxed);
    });
    return entry->value;
  }

  /// Number of compute() invocations that ran to completion (== number of
  /// distinct keys materialized so far).
  [[nodiscard]] std::size_t computations() const noexcept {
    return computed_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

 private:
  struct Entry {
    std::once_flag once;
    Value value{};
  };

  mutable std::mutex mu_;
  std::map<Key, std::shared_ptr<Entry>> entries_;
  std::atomic<std::size_t> computed_{0};
};

}  // namespace qosrm

#endif  // QOSRM_COMMON_ONCE_CACHE_HH
