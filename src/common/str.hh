// Small string-formatting helpers (printf-style format into std::string).
#ifndef QOSRM_COMMON_STR_HH
#define QOSRM_COMMON_STR_HH

#include <string>

namespace qosrm {

/// printf-style formatting into a std::string.
[[nodiscard]] std::string format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Left-pads `s` with spaces to at least `width` characters.
[[nodiscard]] std::string pad_left(const std::string& s, std::size_t width);

/// Right-pads `s` with spaces to at least `width` characters.
[[nodiscard]] std::string pad_right(const std::string& s, std::size_t width);

}  // namespace qosrm

#endif  // QOSRM_COMMON_STR_HH
