// Small string-formatting helpers (printf-style format into std::string).
#ifndef QOSRM_COMMON_STR_HH
#define QOSRM_COMMON_STR_HH

#include <string>
#include <vector>

namespace qosrm {

/// printf-style formatting into a std::string.
[[nodiscard]] std::string format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Left-pads `s` with spaces to at least `width` characters.
[[nodiscard]] std::string pad_left(const std::string& s, std::size_t width);

/// Right-pads `s` with spaces to at least `width` characters.
[[nodiscard]] std::string pad_right(const std::string& s, std::size_t width);

/// Splits on commas, stripping spaces. Empty entries are PRESERVED (an empty
/// spec yields one empty entry) so list parsers can reject "--alphas=" and
/// "--alphas=1," instead of silently sweeping a zero-row or shortened grid.
[[nodiscard]] std::vector<std::string> split_csv_list(const std::string& spec);

}  // namespace qosrm

#endif  // QOSRM_COMMON_STR_HH
