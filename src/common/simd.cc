#include "common/simd.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

// Build policy, set by the root CMakeLists from -DQOSRM_SIMD=...:
//   0 = scalar, 1 = avx2 (forced), 2 = auto (runtime detection).
#ifndef QOSRM_SIMD_MODE
#define QOSRM_SIMD_MODE 2
#endif

namespace qosrm::simd {

bool avx2_compiled() noexcept {
#ifdef QOSRM_SIMD_HAVE_AVX2
  return true;
#else
  return false;
#endif
}

bool avx2_supported() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

namespace {

[[noreturn]] void dispatch_fatal(const char* detail) {
  std::fprintf(stderr, "qosrm: SIMD dispatch error: %s\n", detail);
  std::abort();
}

}  // namespace

Level resolve_level(const char* env) {
  const bool avx2_ok = avx2_compiled() && avx2_supported();

  // Build policy first.
  Level level = Level::Scalar;
#if QOSRM_SIMD_MODE == 1
  if (!avx2_compiled()) {
    dispatch_fatal("built with -DQOSRM_SIMD=avx2 but the AVX2 kernels were "
                   "not compiled (non-x86 target?)");
  }
  if (!avx2_supported()) {
    dispatch_fatal("built with -DQOSRM_SIMD=avx2 but this CPU does not "
                   "report AVX2");
  }
  level = Level::Avx2;
#elif QOSRM_SIMD_MODE == 2
  level = avx2_ok ? Level::Avx2 : Level::Scalar;
#endif

  // Runtime override second (a rebuild-free handle for CI and A/B timing).
  if (env == nullptr || *env == '\0' || std::strcmp(env, "auto") == 0) {
    return level;
  }
  if (std::strcmp(env, "scalar") == 0) return Level::Scalar;
  if (std::strcmp(env, "avx2") == 0) {
    if (!avx2_ok) {
      dispatch_fatal("QOSRM_SIMD=avx2 requested but the AVX2 path is not "
                     "available (scalar build or unsupported CPU)");
    }
    return Level::Avx2;
  }
  // A typo'd override must never silently fall back to a different kernel:
  // name the offending value and the accepted set, and die.
  char detail[256];
  std::snprintf(detail, sizeof detail,
                "unrecognized QOSRM_SIMD value \"%s\" (accepted: "
                "auto|avx2|scalar)",
                env);
  dispatch_fatal(detail);
}

Level active_level() noexcept {
  static const Level level = resolve_level(std::getenv("QOSRM_SIMD"));
  return level;
}

const char* level_name(Level level) noexcept {
  return level == Level::Avx2 ? "avx2" : "scalar";
}

}  // namespace qosrm::simd
