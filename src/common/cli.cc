#include "common/cli.hh"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "common/check.hh"
#include "common/str.hh"

namespace qosrm {

std::optional<ShardArg> parse_shard_arg(const std::string& spec) {
  const auto slash = spec.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 == spec.size()) {
    return std::nullopt;
  }
  const auto parse_uint = [](const std::string& s) -> std::optional<std::size_t> {
    if (s.empty() || s.size() > 9) return std::nullopt;  // > 1e9 shards is a typo
    std::size_t value = 0;
    for (const char ch : s) {
      if (ch < '0' || ch > '9') return std::nullopt;
      value = value * 10 + static_cast<std::size_t>(ch - '0');
    }
    return value;
  };
  const auto index = parse_uint(spec.substr(0, slash));
  const auto count = parse_uint(spec.substr(slash + 1));
  if (!index || !count || *count < 1 || *index >= *count) return std::nullopt;
  return ShardArg{*index, *count};
}

CliArgs::CliArgs(int argc, char** argv,
                 std::initializer_list<const char*> boolean_flags) {
  const std::set<std::string> boolean(boolean_flags.begin(), boolean_flags.end());
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (boolean.count(arg) == 0 && i + 1 < argc &&
               std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool CliArgs::has(const std::string& name) const { return values_.count(name) > 0; }

std::vector<std::string> CliArgs::flag_names() const {
  std::vector<std::string> names;
  names.reserve(values_.size());
  for (const auto& [name, value] : values_) names.push_back(name);
  return names;
}

std::string CliArgs::get(const std::string& name, const std::string& fallback) const {
  const auto it = values_.find(name);
  return it != values_.end() ? it->second : fallback;
}

std::int64_t CliArgs::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& value = it->second;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (value.empty() || end != value.c_str() + value.size() || errno == ERANGE) {
    const std::string msg =
        format("bad --%s value '%s' (want a decimal integer)", name.c_str(),
               value.c_str());
    QOSRM_CHECK_MSG(false, msg.c_str());
  }
  return parsed;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& value = it->second;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  // ERANGE on underflow still yields the nearest representable value, so only
  // a true overflow (+-HUGE_VAL) is rejected alongside garbage and emptiness.
  const bool overflow =
      errno == ERANGE && (parsed == HUGE_VAL || parsed == -HUGE_VAL);
  if (value.empty() || end != value.c_str() + value.size() || overflow) {
    const std::string msg = format("bad --%s value '%s' (want a number)",
                                   name.c_str(), value.c_str());
    QOSRM_CHECK_MSG(false, msg.c_str());
  }
  return parsed;
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace qosrm
