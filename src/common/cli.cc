#include "common/cli.hh"

#include <cstdlib>

namespace qosrm {

std::optional<ShardArg> parse_shard_arg(const std::string& spec) {
  const auto slash = spec.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 == spec.size()) {
    return std::nullopt;
  }
  const auto parse_uint = [](const std::string& s) -> std::optional<std::size_t> {
    if (s.empty() || s.size() > 9) return std::nullopt;  // > 1e9 shards is a typo
    std::size_t value = 0;
    for (const char ch : s) {
      if (ch < '0' || ch > '9') return std::nullopt;
      value = value * 10 + static_cast<std::size_t>(ch - '0');
    }
    return value;
  };
  const auto index = parse_uint(spec.substr(0, slash));
  const auto count = parse_uint(spec.substr(slash + 1));
  if (!index || !count || *count < 1 || *index >= *count) return std::nullopt;
  return ShardArg{*index, *count};
}

CliArgs::CliArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool CliArgs::has(const std::string& name) const { return values_.count(name) > 0; }

std::vector<std::string> CliArgs::flag_names() const {
  std::vector<std::string> names;
  names.reserve(values_.size());
  for (const auto& [name, value] : values_) names.push_back(name);
  return names;
}

std::string CliArgs::get(const std::string& name, const std::string& fallback) const {
  const auto it = values_.find(name);
  return it != values_.end() ? it->second : fallback;
}

std::int64_t CliArgs::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = values_.find(name);
  return it != values_.end() ? std::strtoll(it->second.c_str(), nullptr, 10)
                             : fallback;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  return it != values_.end() ? std::strtod(it->second.c_str(), nullptr) : fallback;
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace qosrm
