#include "common/subprocess.hh"

#include <cerrno>
#include <cstring>
#include <utility>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/str.hh"

namespace qosrm {

namespace {

/// Exit statuses reaped by wait_any() for children NOT in its tracked list
/// (e.g. a sibling Subprocess the caller did not pass). waitpid(-1) reaps
/// whatever ends first, so such statuses must be stashed - never discarded -
/// for the owning Subprocess::wait() to find later. Unsynchronized by
/// design: the subprocess helper is a single-threaded orchestrator tool.
std::vector<std::pair<pid_t, int>> g_stray_statuses;

/// Non-consuming stash lookup: running()/terminate() must observe that a
/// child was already reaped without stealing the status its wait() needs.
bool stray_status_pending(pid_t pid) {
  for (const auto& entry : g_stray_statuses) {
    if (entry.first == pid) return true;
  }
  return false;
}

bool take_stray_status(pid_t pid, int* status) {
  for (auto it = g_stray_statuses.begin(); it != g_stray_statuses.end(); ++it) {
    if (it->first == pid) {
      *status = it->second;
      g_stray_statuses.erase(it);
      return true;
    }
  }
  return false;
}

void apply_status(SubprocessExit& exit, int status) {
  exit.spawned = true;
  if (WIFEXITED(status)) {
    exit.exited = true;
    exit.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    exit.term_signal = WTERMSIG(status);
  }
}

}  // namespace

std::string describe(const SubprocessExit& exit) {
  if (!exit.spawned) return "failed to spawn";
  if (exit.exited) return format("exit code %d", exit.exit_code);
  if (exit.term_signal != 0) {
    return format("killed by signal %d (%s)", exit.term_signal,
                  strsignal(exit.term_signal));
  }
  return "unknown exit";
}

Subprocess Subprocess::spawn(const std::vector<std::string>& argv) {
  Subprocess child;
  if (argv.empty()) return child;

  std::vector<char*> c_argv;
  c_argv.reserve(argv.size() + 1);
  for (const std::string& arg : argv) {
    c_argv.push_back(const_cast<char*>(arg.c_str()));
  }
  c_argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) return child;  // fork failed: wait() reports spawned=false
  if (pid == 0) {
    ::execvp(c_argv[0], c_argv.data());
    // exec failed in the child: report via a conventional exit code (127,
    // like the shells) so the parent's wait() sees a clean failure.
    ::_exit(127);
  }
  // The kernel may recycle the pid of an abandoned child whose stashed
  // status was never consumed; drop any such stale entry so this child's
  // wait() can never be answered with a predecessor's exit.
  int stale = 0;
  (void)take_stray_status(pid, &stale);
  child.pid_ = pid;
  return child;
}

SubprocessExit Subprocess::wait() {
  if (reaped_ || pid_ <= 0) return exit_;

  int status = 0;
  if (take_stray_status(pid_, &status)) {
    // A previous wait_any() already reaped this child on our behalf.
    reaped_ = true;
    apply_status(exit_, status);
    return exit_;
  }

  pid_t rc;
  do {
    rc = ::waitpid(pid_, &status, 0);
  } while (rc < 0 && errno == EINTR);
  reaped_ = true;
  if (rc != pid_) return exit_;  // reap failed: spawned=false (unknown fate)

  apply_status(exit_, status);
  return exit_;
}

bool Subprocess::running() const noexcept {
  // The stash check matters: a child reaped by a foreign wait_any() is gone,
  // and the kernel may have recycled its pid for an unrelated process. Until
  // our wait() consumes the stashed status, pid_/reaped_ alone would still
  // claim the child is alive - and terminate() would SIGTERM the recycled pid.
  return pid_ > 0 && !reaped_ && !stray_status_pending(pid_);
}

void Subprocess::terminate() {
  if (running()) ::kill(pid_, SIGTERM);
}

std::optional<std::size_t> Subprocess::wait_any(
    const std::vector<Subprocess*>& children) {
  bool any_running = false;
  for (std::size_t i = 0; i < children.size(); ++i) {
    Subprocess* child = children[i];
    // Raw pid_/reaped_ checks, NOT running(): a stashed child reads as
    // not-running but must still be surfaced from the stash here.
    if (child == nullptr || child->pid_ <= 0 || child->reaped_) continue;
    // An earlier wait_any() on a different list may already have reaped this
    // child; its status is in the stash, no waitpid needed.
    int status = 0;
    if (take_stray_status(child->pid_, &status)) {
      child->reaped_ = true;
      apply_status(child->exit_, status);
      return i;
    }
    any_running = true;
  }
  if (!any_running) return std::nullopt;

  for (;;) {
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, 0);
    if (pid < 0) {
      if (errno == EINTR) continue;
      return std::nullopt;  // ECHILD: nothing left to reap
    }
    for (std::size_t i = 0; i < children.size(); ++i) {
      Subprocess* child = children[i];
      if (child == nullptr || child->reaped_ || child->pid_ != pid) continue;
      child->reaped_ = true;
      apply_status(child->exit_, status);
      return i;
    }
    // Reaped a child that is not in the tracked list. Its status must not be
    // discarded: stash it so the owning Subprocess::wait()/wait_any() call
    // still observes the real exit instead of an "unknown fate".
    g_stray_statuses.emplace_back(pid, status);
  }
}

}  // namespace qosrm
