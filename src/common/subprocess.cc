#include "common/subprocess.hh"

#include <cerrno>
#include <cstring>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/str.hh"

namespace qosrm {

std::string describe(const SubprocessExit& exit) {
  if (!exit.spawned) return "failed to spawn";
  if (exit.exited) return format("exit code %d", exit.exit_code);
  if (exit.term_signal != 0) {
    return format("killed by signal %d (%s)", exit.term_signal,
                  strsignal(exit.term_signal));
  }
  return "unknown exit";
}

Subprocess Subprocess::spawn(const std::vector<std::string>& argv) {
  Subprocess child;
  if (argv.empty()) return child;

  std::vector<char*> c_argv;
  c_argv.reserve(argv.size() + 1);
  for (const std::string& arg : argv) {
    c_argv.push_back(const_cast<char*>(arg.c_str()));
  }
  c_argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) return child;  // fork failed: wait() reports spawned=false
  if (pid == 0) {
    ::execvp(c_argv[0], c_argv.data());
    // exec failed in the child: report via a conventional exit code (127,
    // like the shells) so the parent's wait() sees a clean failure.
    ::_exit(127);
  }
  child.pid_ = pid;
  return child;
}

SubprocessExit Subprocess::wait() {
  if (reaped_ || pid_ <= 0) return exit_;

  int status = 0;
  pid_t rc;
  do {
    rc = ::waitpid(pid_, &status, 0);
  } while (rc < 0 && errno == EINTR);
  reaped_ = true;
  if (rc != pid_) return exit_;  // reap failed: spawned=false (unknown fate)

  exit_.spawned = true;
  if (WIFEXITED(status)) {
    exit_.exited = true;
    exit_.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    exit_.term_signal = WTERMSIG(status);
  }
  return exit_;
}

void Subprocess::terminate() {
  if (running()) ::kill(pid_, SIGTERM);
}

std::optional<std::size_t> Subprocess::wait_any(
    const std::vector<Subprocess*>& children) {
  bool any_running = false;
  for (const Subprocess* child : children) {
    if (child != nullptr && child->running()) {
      any_running = true;
      break;
    }
  }
  if (!any_running) return std::nullopt;

  for (;;) {
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, 0);
    if (pid < 0) {
      if (errno == EINTR) continue;
      return std::nullopt;  // ECHILD: nothing left to reap
    }
    for (std::size_t i = 0; i < children.size(); ++i) {
      Subprocess* child = children[i];
      if (child == nullptr || child->reaped_ || child->pid_ != pid) continue;
      child->reaped_ = true;
      child->exit_.spawned = true;
      if (WIFEXITED(status)) {
        child->exit_.exited = true;
        child->exit_.exit_code = WEXITSTATUS(status);
      } else if (WIFSIGNALED(status)) {
        child->exit_.term_signal = WTERMSIG(status);
      }
      return i;
    }
    // Reaped a child that is not in the list (not ours to track): keep
    // waiting for one of the tracked children.
  }
}

}  // namespace qosrm
