#include "common/table.hh"

#include <algorithm>
#include <cstdio>

namespace qosrm {

AsciiTable::AsciiTable(std::vector<std::string> header) : header_(std::move(header)) {}

AsciiTable::AsciiTable(std::initializer_list<std::string> header)
    : header_(header) {}

void AsciiTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string AsciiTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string AsciiTable::pct(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v * 100.0);
  return buf;
}

std::string AsciiTable::str() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : header_[c];
      line += "| ";
      line += cell;
      line.append(width[c] - cell.size() + 1, ' ');
    }
    line += "|\n";
    return line;
  };

  std::string out = render_row(header_);
  std::string sep;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    sep += "|";
    sep.append(width[c] + 2, '-');
  }
  sep += "|\n";
  out += sep;
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void AsciiTable::print() const { std::fputs(str().c_str(), stdout); }

}  // namespace qosrm
