#include "common/thread_pool.hh"

#include <algorithm>
#include <atomic>

#include "common/check.hh"

namespace qosrm {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  QOSRM_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    QOSRM_CHECK_MSG(!stop_, "submit() after shutdown");
    queue_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t workers = pool.size() + 1;  // pool + calling thread
  const std::size_t chunk = std::max<std::size_t>(1, (n + workers - 1) / workers);

  std::atomic<std::size_t> next{begin};
  auto run_chunks = [&] {
    for (;;) {
      const std::size_t lo = next.fetch_add(chunk);
      if (lo >= end) return;
      const std::size_t hi = std::min(end, lo + chunk);
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }
  };

  for (std::size_t w = 0; w < pool.size(); ++w) pool.submit(run_chunks);
  run_chunks();
  pool.wait_idle();
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (hw <= 1 || end - begin <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  ThreadPool pool(hw - 1);
  parallel_for(pool, begin, end, body);
}

}  // namespace qosrm
