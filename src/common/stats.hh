// Streaming statistics accumulators.
//
// RunningStats   - Welford online mean/variance/min/max for unweighted samples.
// WeightedStats  - weighted mean/variance (frequency weights, e.g. SimPoint
//                  phase weights or selection probabilities).
#ifndef QOSRM_COMMON_STATS_HH
#define QOSRM_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>

namespace qosrm {

/// Welford's online algorithm; numerically stable single-pass moments.
class RunningStats {
 public:
  void add(double x) noexcept;

  /// Merges another accumulator (parallel reduction friendly).
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Population variance (M2/n). Returns 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  /// Sample variance (M2/(n-1)). Returns 0 for fewer than two samples.
  [[nodiscard]] double sample_variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Weighted first and second moments with non-negative frequency weights.
class WeightedStats {
 public:
  void add(double x, double weight) noexcept;
  void merge(const WeightedStats& other) noexcept;

  [[nodiscard]] double total_weight() const noexcept { return w_; }
  [[nodiscard]] double mean() const noexcept { return w_ > 0.0 ? wx_ / w_ : 0.0; }
  /// Weighted population variance E[x^2] - E[x]^2, clamped at zero.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }

 private:
  std::uint64_t n_ = 0;
  double w_ = 0.0;
  double wx_ = 0.0;
  double wxx_ = 0.0;
};

}  // namespace qosrm

#endif  // QOSRM_COMMON_STATS_HH
