// Tiny command-line flag parser shared by bench binaries and examples.
//
// Supports --name=value and --name value forms plus bare --flag booleans.
// Unrecognized arguments are retained (google-benchmark binaries pass their
// own flags through).
#ifndef QOSRM_COMMON_CLI_HH
#define QOSRM_COMMON_CLI_HH

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace qosrm {

/// A parsed `--shard=i/N` argument: this process is shard `index` of
/// `count` (0 <= index < count, count >= 1).
struct ShardArg {
  std::size_t index = 0;
  std::size_t count = 1;
};

/// Parses "i/N" (e.g. "2/8"). nullopt unless both halves are plain
/// non-negative decimal integers with i < N and N >= 1 — a malformed spec
/// must fail loudly, never silently run shard 0.
[[nodiscard]] std::optional<ShardArg> parse_shard_arg(const std::string& spec);

class CliArgs {
 public:
  /// `boolean_flags` declares flags that never take a value from the next
  /// argument: `--resume parts/` then keeps `parts/` as a positional instead
  /// of silently consuming it as the value of `--resume` (the `=` form still
  /// assigns, so `--resume=false` works). Undeclared flags keep the historic
  /// greedy behavior for `--name value`.
  CliArgs(int argc, char** argv,
          std::initializer_list<const char*> boolean_flags = {});

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  /// Numeric accessors parse strictly: a present value that is empty, has
  /// trailing garbage or overflows aborts with a diagnostic naming the flag
  /// (--workers=abc must fail loudly, never silently run with 0 workers).
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Names of every --flag that was passed (sorted). Lets strict binaries
  /// reject typo'd flags instead of silently running with defaults.
  [[nodiscard]] std::vector<std::string> flag_names() const;

  /// Arguments that did not look like --key[=value] flags, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace qosrm

#endif  // QOSRM_COMMON_CLI_HH
