// Work-stealing-free, mutex-based thread pool plus a blocking parallel_for.
//
// The simulation database (src/workload/sim_db) sweeps 27 apps x phases x
// core sizes x LLC allocations; phases are embarrassingly parallel, so the
// pool is used there and in a few bench sweeps. On single-core hosts the
// pool degrades to near-serial execution with negligible overhead.
#ifndef QOSRM_COMMON_THREAD_POOL_HH
#define QOSRM_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace qosrm {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins all workers after draining the queue.
  ~ThreadPool();

  /// Enqueues a task. Tasks must not throw; exceptions escaping a task
  /// terminate the program (by design - simulation tasks report errors
  /// through their captured state).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void wait_idle();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::queue<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Blocking parallel loop over [begin, end): body(i) is invoked exactly once
/// per index, partitioned into contiguous chunks across pool workers plus the
/// calling thread. `body` must be safe to call concurrently for distinct i.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

/// Convenience overload with a transient pool sized for the machine.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

}  // namespace qosrm

#endif  // QOSRM_COMMON_THREAD_POOL_HH
