// Minimal native-endian binary serialization used by snapshot files.
//
// BinaryWriter/BinaryReader wrap a std::ostream/istream with fixed-width
// scalar and vector<double> primitives and keep a running FNV-1a checksum of
// every byte written/read, so a file can end with a self-checksum that
// detects truncation and corruption. Fnv1a64 is also usable standalone to
// fingerprint configuration structs (doubles are hashed by bit pattern, so
// the fingerprint is exact, not tolerance-based).
//
// Files are native-endian; readers verify a byte-order mark in the header
// rather than converting (snapshots are machine-local cache artifacts, not
// interchange files).
#ifndef QOSRM_COMMON_BINARY_IO_HH
#define QOSRM_COMMON_BINARY_IO_HH

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

namespace qosrm {

/// Byte-order mark written into binary headers; a reader on a machine with
/// different endianness sees it permuted and rejects the file.
inline constexpr std::uint32_t kByteOrderMark = 0x01020304u;

/// Running FNV-1a 64-bit hash.
class Fnv1a64 {
 public:
  void add_bytes(const void* data, std::size_t n) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= static_cast<std::uint64_t>(p[i]);
      h_ *= 0x100000001b3ULL;
    }
  }
  void add_u32(std::uint32_t v) noexcept { add_bytes(&v, sizeof v); }
  void add_u64(std::uint64_t v) noexcept { add_bytes(&v, sizeof v); }
  void add_i64(std::int64_t v) noexcept {
    add_u64(static_cast<std::uint64_t>(v));
  }
  /// Hashes the exact bit pattern (distinguishes -0.0 from 0.0 etc.).
  void add_f64(double v) noexcept {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    add_u64(bits);
  }
  void add_string(const std::string& s) noexcept {
    add_u64(s.size());
    add_bytes(s.data(), s.size());
  }

  [[nodiscard]] std::uint64_t digest() const noexcept { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;  // FNV offset basis
};

/// Writes fixed-width values to a stream, checksumming as it goes.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& out) : out_(&out) {}

  void write_u32(std::uint32_t v) { write_raw(&v, sizeof v); }
  void write_u64(std::uint64_t v) { write_raw(&v, sizeof v); }
  void write_f64(double v) { write_raw(&v, sizeof v); }
  void write_string(const std::string& s) {
    write_u64(s.size());
    write_raw(s.data(), s.size());
  }
  void write_f64_vec(const std::vector<double>& v) {
    write_u64(v.size());
    if (!v.empty()) write_raw(v.data(), v.size() * sizeof(double));
  }

  /// Writes `checksum()` WITHOUT folding it into the running hash, so a
  /// reader can recompute the same digest over the preceding bytes.
  void write_trailing_checksum() {
    const std::uint64_t digest = hash_.digest();
    out_->write(reinterpret_cast<const char*>(&digest), sizeof digest);
  }

  [[nodiscard]] std::uint64_t checksum() const noexcept { return hash_.digest(); }
  [[nodiscard]] bool good() const { return out_->good(); }

 private:
  void write_raw(const void* p, std::size_t n) {
    out_->write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
    hash_.add_bytes(p, n);
  }

  std::ostream* out_;
  Fnv1a64 hash_;
};

/// Reads fixed-width values from a stream, checksumming as it goes. All
/// accessors return a fallback value once the stream fails; callers check
/// `ok()` (at least at the end) instead of testing every read.
class BinaryReader {
 public:
  explicit BinaryReader(std::istream& in) : in_(&in) {}

  [[nodiscard]] std::uint32_t read_u32() {
    std::uint32_t v = 0;
    read_raw(&v, sizeof v);
    return v;
  }
  [[nodiscard]] std::uint64_t read_u64() {
    std::uint64_t v = 0;
    read_raw(&v, sizeof v);
    return v;
  }
  [[nodiscard]] double read_f64() {
    double v = 0.0;
    read_raw(&v, sizeof v);
    return v;
  }
  /// Reads a length-prefixed string; fails the stream if the length exceeds
  /// `max_len` (corrupt length fields must not trigger huge allocations).
  [[nodiscard]] std::string read_string(std::uint64_t max_len = 1 << 20) {
    const std::uint64_t n = read_u64();
    if (!ok() || n > max_len) {
      fail();
      return {};
    }
    std::string s(static_cast<std::size_t>(n), '\0');
    if (n > 0) read_raw(s.data(), static_cast<std::size_t>(n));
    return s;
  }
  [[nodiscard]] std::vector<double> read_f64_vec(std::uint64_t max_elems = 1 << 24) {
    const std::uint64_t n = read_u64();
    if (!ok() || n > max_elems) {
      fail();
      return {};
    }
    std::vector<double> v(static_cast<std::size_t>(n));
    if (n > 0) read_raw(v.data(), v.size() * sizeof(double));
    return v;
  }

  /// Reads a trailing checksum and compares it against the digest of all
  /// bytes read so far. False on mismatch or stream failure.
  [[nodiscard]] bool verify_trailing_checksum() {
    const std::uint64_t expected = hash_.digest();
    std::uint64_t stored = 0;
    in_->read(reinterpret_cast<char*>(&stored), sizeof stored);
    return ok() && stored == expected;
  }

  [[nodiscard]] std::uint64_t checksum() const noexcept { return hash_.digest(); }
  [[nodiscard]] bool ok() const { return !failed_ && in_->good(); }
  void fail() noexcept { failed_ = true; }

 private:
  void read_raw(void* p, std::size_t n) {
    in_->read(static_cast<char*>(p), static_cast<std::streamsize>(n));
    if (!in_->good()) {
      failed_ = true;
      std::memset(p, 0, n);
      return;
    }
    hash_.add_bytes(p, n);
  }

  std::istream* in_;
  Fnv1a64 hash_;
  bool failed_ = false;
};

}  // namespace qosrm

#endif  // QOSRM_COMMON_BINARY_IO_HH
