#include "common/file_util.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/str.hh"

namespace qosrm {

std::string atomic_tmp_path(const std::string& path) {
  // PID-unique sibling: concurrent writers to the same target cannot trample
  // each other's temp file, and the rename stays within one filesystem.
  return format("%s.tmp.%ld", path.c_str(), static_cast<long>(::getpid()));
}

bool probe_writable_atomic(const std::string& path, std::string* error) {
  const std::string tmp_path = atomic_tmp_path(path);
  {
    std::ofstream probe(tmp_path, std::ios::binary | std::ios::trunc);
    if (!probe.good()) {
      if (error != nullptr) {
        *error = format("cannot write to %s", path.c_str());
      }
      return false;
    }
  }
  std::remove(tmp_path.c_str());
  return true;
}

bool write_file_atomic(const std::string& path, const std::string& content,
                       std::string* error) {
  const auto fail = [error](std::string message) {
    if (error != nullptr) *error = std::move(message);
    return false;
  };

  // fd-based writer: the rename-into-place trick only guarantees "old file
  // or new file" if the new file's DATA is durable before the rename. An
  // ofstream flush hands the bytes to the page cache, so a crash shortly
  // after the rename could leave a zero-length or partial file at the FINAL
  // path - exactly the truncated-report decoy this module exists to prevent.
  // fsync on the fd forces the data down before the name flips over.
  const std::string tmp_path = atomic_tmp_path(path);
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0666);
  if (fd < 0) {
    return fail(format("cannot open %s for writing: %s", path.c_str(),
                       std::strerror(errno)));
  }
  const auto abort_write = [&](const char* what) {
    const int saved_errno = errno;
    ::close(fd);
    std::remove(tmp_path.c_str());
    return fail(format("%s %s failed: %s", what, path.c_str(),
                       std::strerror(saved_errno)));
  };

  std::size_t written = 0;
  while (written < content.size()) {
    const ssize_t n =
        ::write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return abort_write("write to");
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) return abort_write("fsync of");
  // close() can surface deferred write errors (e.g. NFS, quota); a silent
  // close failure here would publish a file whose content never made it.
  if (::close(fd) != 0) {
    const int saved_errno = errno;
    std::remove(tmp_path.c_str());
    return fail(format("close of %s failed: %s", path.c_str(),
                       std::strerror(saved_errno)));
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    const int saved_errno = errno;
    std::remove(tmp_path.c_str());
    return fail(format("cannot move %s into place: %s", path.c_str(),
                       std::strerror(saved_errno)));
  }
  return true;
}

}  // namespace qosrm
