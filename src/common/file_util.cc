#include "common/file_util.hh"

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <utility>

#include "common/str.hh"

namespace qosrm {

std::string atomic_tmp_path(const std::string& path) {
  // PID-unique sibling: concurrent writers to the same target cannot trample
  // each other's temp file, and the rename stays within one filesystem.
  return format("%s.tmp.%ld", path.c_str(), static_cast<long>(::getpid()));
}

bool probe_writable_atomic(const std::string& path, std::string* error) {
  const std::string tmp_path = atomic_tmp_path(path);
  {
    std::ofstream probe(tmp_path, std::ios::binary | std::ios::trunc);
    if (!probe.good()) {
      if (error != nullptr) {
        *error = format("cannot write to %s", path.c_str());
      }
      return false;
    }
  }
  std::remove(tmp_path.c_str());
  return true;
}

bool write_file_atomic(const std::string& path, const std::string& content,
                       std::string* error) {
  const auto fail = [error](std::string message) {
    if (error != nullptr) *error = std::move(message);
    return false;
  };

  const std::string tmp_path = atomic_tmp_path(path);
  std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
  if (!out.good()) {
    return fail(format("cannot open %s for writing", path.c_str()));
  }
  out.write(content.data(),
            static_cast<std::streamsize>(content.size()));
  out.flush();
  if (!out.good()) {
    out.close();
    std::remove(tmp_path.c_str());
    return fail(format("write to %s failed", path.c_str()));
  }
  out.close();
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return fail(format("cannot move %s into place", path.c_str()));
  }
  return true;
}

}  // namespace qosrm
