// SIMD dispatch for the optimizer hot paths.
//
// The build selects a policy with -DQOSRM_SIMD=auto|avx2|scalar:
//
//   scalar - the AVX2 kernels are not compiled at all; every consumer runs
//            the portable scalar code path.
//   avx2   - the AVX2 kernels are compiled and unconditionally selected;
//            running on a CPU without AVX2 aborts at first use (forced mode
//            is for benchmarking and CI, not for distribution binaries).
//   auto   - (default) the AVX2 kernels are compiled when the target
//            architecture/compiler supports them and selected at runtime
//            iff the CPU reports AVX2; otherwise the scalar path runs.
//
// On top of the build policy the QOSRM_SIMD environment variable can
// restrict the dispatch at runtime without a rebuild: "scalar" forces the
// fallback, "avx2" requires the vector path (hard error when it is not
// available), "auto"/unset keeps the build policy. Every vectorized kernel
// in the tree is pinned bit-identical to its scalar fallback by randomized
// equivalence tests, so the dispatch level never changes a result - only
// the wall time.
#ifndef QOSRM_COMMON_SIMD_HH
#define QOSRM_COMMON_SIMD_HH

namespace qosrm::simd {

enum class Level { Scalar = 0, Avx2 = 1 };

/// True when the AVX2 kernels were compiled into this binary (build policy
/// auto/avx2 on an x86-64 toolchain that supports the target attribute).
[[nodiscard]] bool avx2_compiled() noexcept;

/// True when the running CPU reports AVX2 support.
[[nodiscard]] bool avx2_supported() noexcept;

/// The dispatch level every hot path uses, resolved once per process from
/// the build policy, the CPU and the QOSRM_SIMD environment override.
/// Aborts with a diagnostic when a forced "avx2" cannot be satisfied.
[[nodiscard]] Level active_level() noexcept;

/// Resolution core behind active_level(), parameterized on the override
/// string (what getenv("QOSRM_SIMD") returned; nullptr/"" mean unset).
/// Aborts naming the offending value when the override is not one of
/// auto|avx2|scalar, or when "avx2" is forced but unavailable. Exposed
/// separately because active_level() caches: the death tests exercise the
/// rejection paths through this entry point.
[[nodiscard]] Level resolve_level(const char* env);

/// Lower-case name for logs and bench JSON ("scalar" / "avx2").
[[nodiscard]] const char* level_name(Level level) noexcept;

}  // namespace qosrm::simd

#endif  // QOSRM_COMMON_SIMD_HH
