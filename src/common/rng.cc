#include "common/rng.hh"

#include <cmath>

#include "common/check.hh"

namespace qosrm {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

void Rng::reseed(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // A state of all zeros is invalid for xoshiro; splitmix64 cannot produce
  // four zero outputs in a row, but keep the guard explicit.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_u64(std::uint64_t n) noexcept {
  QOSRM_DCHECK(n > 0);
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  QOSRM_DCHECK(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_u64(span));
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

std::uint64_t Rng::geometric(double p) noexcept {
  QOSRM_DCHECK(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  const double u = uniform();
  // Inverse CDF; u in [0,1) keeps log argument strictly positive.
  return static_cast<std::uint64_t>(std::floor(std::log1p(-u) / std::log1p(-p)));
}

std::size_t Rng::weighted_choice(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (const double w : weights) {
    QOSRM_DCHECK(w >= 0.0);
    total += w;
  }
  QOSRM_DCHECK(total > 0.0);
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  // Floating-point slack: fall back to the last positive weight.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace qosrm
