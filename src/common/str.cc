#include "common/str.hh"

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace qosrm {

std::string format(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed <= 0) {
    va_end(args_copy);
    return {};
  }
  std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
  std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
  va_end(args_copy);
  return std::string(buf.data(), static_cast<std::size_t>(needed));
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

std::vector<std::string> split_csv_list(const std::string& spec) {
  std::vector<std::string> parts;
  std::string cur;
  for (const char ch : spec) {
    if (ch == ',') {
      parts.push_back(cur);
      cur.clear();
    } else if (ch != ' ') {
      cur += ch;
    }
  }
  parts.push_back(cur);
  return parts;
}

}  // namespace qosrm
