// Fixed-width histogram over [lo, hi) with optional weights.
//
// Used to reproduce paper Fig. 8 (distribution of QoS-violation magnitudes):
// counts can be normalized against the maximum bin across several histograms.
#ifndef QOSRM_COMMON_HISTOGRAM_HH
#define QOSRM_COMMON_HISTOGRAM_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace qosrm {

class Histogram {
 public:
  /// Creates `bins` equal-width bins covering [lo, hi). Finite values outside
  /// the range are clamped into the first/last bin so no mass is silently
  /// lost.
  Histogram(double lo, double hi, std::size_t bins);

  /// Adds one sample. A non-finite sample or weight is dropped (see
  /// dropped()): NaN fails both range checks and the float-to-index cast of
  /// a NaN is undefined, and an infinity masquerading as edge-bin mass would
  /// silently skew every quantile.
  void add(double x, double weight = 1.0) noexcept;

  /// Zeroes all counts (and the dropped counter), keeping the bin layout.
  void reset() noexcept;

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t i) const noexcept;
  [[nodiscard]] double bin_center(std::size_t i) const noexcept;
  [[nodiscard]] double count(std::size_t i) const noexcept { return counts_[i]; }
  [[nodiscard]] double total() const noexcept { return total_; }
  /// Samples rejected by add() because the value or weight was not finite.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] double max_count() const noexcept;

  /// Value below which a fraction q (clamped to [0, 1]) of the recorded mass
  /// lies, linearly interpolated within the containing bin. Quantiles are
  /// taken over the KEPT mass only: samples rejected by add() (see dropped())
  /// carry no weight. Boundary semantics, pinned by tests: an empty histogram
  /// returns the range minimum; q=0 returns the lower edge of the first
  /// nonzero bin; q=1 returns the range maximum `hi` (even when the trailing
  /// bins are empty). Mass clamped into the edge bins is attributed to those
  /// bins, so tail quantiles saturate at the range edges.
  [[nodiscard]] double quantile(double q) const noexcept;

  /// Bin counts scaled so the largest equals 1 (all-zero histogram stays zero).
  [[nodiscard]] std::vector<double> normalized() const;

  /// Bin counts scaled by an externally supplied maximum (paper Fig. 8
  /// normalizes all three models against the global maximum).
  [[nodiscard]] std::vector<double> normalized_by(double max_value) const;

  /// Compact single-line ASCII rendering (for logs and bench output).
  [[nodiscard]] std::string ascii(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<double> counts_;
  double total_ = 0.0;
  std::uint64_t dropped_ = 0;
};

}  // namespace qosrm

#endif  // QOSRM_COMMON_HISTOGRAM_HH
