#include "common/csv.hh"

#include <stdexcept>

namespace qosrm {

namespace {
std::string escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : path_(path), out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  write_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& row) { write_row(row); }

void CsvWriter::write_row(const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(row[i]);
  }
  out_ << '\n';
}

}  // namespace qosrm
