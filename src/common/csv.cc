#include "common/csv.hh"

#include <exception>
#include <stdexcept>

#include "common/file_util.hh"

namespace qosrm {

namespace {
std::string escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : path_(path), ctor_uncaught_(std::uncaught_exceptions()) {
  // Fail construction if the location is not writable (same contract as the
  // old stream-as-you-go writer): probe the exact temp sibling the commit
  // will use, without touching the target path itself.
  std::string error;
  if (!probe_writable_atomic(path, &error)) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  append_row(header);
}

void CsvWriter::close() {
  if (closed_) return;
  std::string error;
  if (!write_file_atomic(path_, buffer_, &error)) {
    throw std::runtime_error("CsvWriter: " + error);
  }
  closed_ = true;
}

void CsvWriter::abandon() noexcept {
  closed_ = true;
  buffer_.clear();
}

CsvWriter::~CsvWriter() {
  // Unwinding due to an exception thrown since construction: the run
  // failed, so the partial CSV must not be published.
  if (std::uncaught_exceptions() > ctor_uncaught_) return;
  try {
    close();
  } catch (...) {  // destructor must not throw; use close() to see errors
  }
}

void CsvWriter::add_row(const std::vector<std::string>& row) { append_row(row); }

void CsvWriter::append_row(const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) buffer_ += ',';
    buffer_ += escape(row[i]);
  }
  buffer_ += '\n';
}

}  // namespace qosrm
