#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/check.hh"

namespace qosrm {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::sample_variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void WeightedStats::add(double x, double weight) noexcept {
  QOSRM_DCHECK(weight >= 0.0);
  if (weight == 0.0) return;
  ++n_;
  w_ += weight;
  wx_ += weight * x;
  wxx_ += weight * x * x;
}

void WeightedStats::merge(const WeightedStats& other) noexcept {
  n_ += other.n_;
  w_ += other.w_;
  wx_ += other.wx_;
  wxx_ += other.wxx_;
}

double WeightedStats::variance() const noexcept {
  if (w_ <= 0.0) return 0.0;
  const double m = wx_ / w_;
  return std::max(0.0, wxx_ / w_ - m * m);
}

double WeightedStats::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace qosrm
