// Contract-checking macros used across the library.
//
// QOSRM_CHECK   - always-on invariant check; aborts with a message on failure.
//                 Used for programming errors that must never be silently ignored,
//                 independent of build type (the simulators are cheap enough that
//                 checks are not a bottleneck).
// QOSRM_DCHECK  - debug-only check for hot paths.
#ifndef QOSRM_COMMON_CHECK_HH
#define QOSRM_COMMON_CHECK_HH

#include <cstdio>
#include <cstdlib>

namespace qosrm {

[[noreturn]] inline void check_failed(const char* cond, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "QOSRM_CHECK failed: %s at %s:%d%s%s\n", cond, file, line,
               msg[0] != '\0' ? " - " : "", msg);
  std::abort();
}

}  // namespace qosrm

#define QOSRM_CHECK(cond)                                        \
  do {                                                           \
    if (!(cond)) ::qosrm::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define QOSRM_CHECK_MSG(cond, msg)                                 \
  do {                                                             \
    if (!(cond)) ::qosrm::check_failed(#cond, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define QOSRM_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define QOSRM_DCHECK(cond) QOSRM_CHECK(cond)
#endif

#endif  // QOSRM_COMMON_CHECK_HH
