// CSV writer used by bench binaries to dump machine-readable experiment
// results alongside the human-readable ASCII tables.
#ifndef QOSRM_COMMON_CSV_HH
#define QOSRM_COMMON_CSV_HH

#include <fstream>
#include <string>
#include <vector>

namespace qosrm {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws
  /// std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends one row; cells containing commas/quotes/newlines are quoted.
  void add_row(const std::vector<std::string>& row);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  void write_row(const std::vector<std::string>& row);

  std::string path_;
  std::ofstream out_;
};

}  // namespace qosrm

#endif  // QOSRM_COMMON_CSV_HH
