// CSV writer used by the sweep/report subsystem and the bench binaries to
// dump machine-readable experiment results alongside the human-readable
// ASCII tables.
//
// Rows are buffered and the finished file is committed ATOMICALLY
// (write-to-temp + rename, like the *.qospart/*.qosdb writers): an
// interrupted run never leaves a truncated CSV that a CI diff or golden
// gate could mistake for a complete one. Until close() (or the destructor
// on a non-exception path) commits, the target path is untouched.
#ifndef QOSRM_COMMON_CSV_HH
#define QOSRM_COMMON_CSV_HH

#include <string>
#include <vector>

namespace qosrm {

class CsvWriter {
 public:
  /// Validates that `path`'s directory is writable (by opening the temp
  /// sibling) and buffers the header row. Throws std::runtime_error if the
  /// location cannot be written.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Commits the buffered rows to `path` atomically. Idempotent; throws
  /// std::runtime_error if the write or rename fails (the target file keeps
  /// its previous content).
  void close();

  /// Discards the buffered rows WITHOUT publishing anything; later close()
  /// calls (and the destructor) become no-ops. For error-return paths where
  /// no exception unwinds but a partial file must not be published.
  void abandon() noexcept;

  /// Commits like close() on the normal path, but if the writer is being
  /// destroyed by stack unwinding (an exception is in flight), the partial
  /// result is ABANDONED instead - never published. Errors are swallowed;
  /// call close() to observe them.
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Appends one row; cells containing commas/quotes/newlines are quoted.
  void add_row(const std::vector<std::string>& row);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  void append_row(const std::vector<std::string>& row);

  std::string path_;
  std::string buffer_;
  int ctor_uncaught_;  ///< std::uncaught_exceptions() at construction
  bool closed_ = false;
};

}  // namespace qosrm

#endif  // QOSRM_COMMON_CSV_HH
