// Atomic whole-file writes shared by the CSV/JSON report writers.
//
// Result files are consumed by CI diffs and golden-file gates, so a killed
// or failing writer must never leave a plausible-looking truncated file
// behind. The pattern matches the *.qospart/*.qosdb writers: write to a
// uniquely named sibling, then rename into place (atomic on POSIX).
#ifndef QOSRM_COMMON_FILE_UTIL_HH
#define QOSRM_COMMON_FILE_UTIL_HH

#include <string>

namespace qosrm {

/// The uniquely named sibling every atomic writer in this repo stages into
/// before renaming: "<path>.tmp.<pid>". Shared so probes check exactly the
/// path the later commit will use.
[[nodiscard]] std::string atomic_tmp_path(const std::string& path);

/// Probes that `path` could be atomically replaced: opens (and removes)
/// the temp sibling the commit would use, leaving `path` itself untouched.
/// A pre-existing target file is neither created, truncated nor touched.
bool probe_writable_atomic(const std::string& path, std::string* error);

/// Writes `content` to `path` via a uniquely named sibling temp file that is
/// fsync'ed before the rename, so after a crash the final path holds either
/// the old content or the complete new content - never a truncated file. On
/// failure (including a failing close(), which can surface deferred write
/// errors) the temp file is removed, `path` is left untouched (old content
/// intact) and false + *error (with the errno detail) is returned.
bool write_file_atomic(const std::string& path, const std::string& content,
                       std::string* error);

}  // namespace qosrm

#endif  // QOSRM_COMMON_FILE_UTIL_HH
