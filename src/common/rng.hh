// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (trace synthesis, workload
// generation) draw from Xoshiro256** seeded through SplitMix64, so every
// experiment is reproducible from a single 64-bit seed. The generator
// satisfies the C++ UniformRandomBitGenerator requirements and can be used
// with <random> distributions, but the members below cover all needs of the
// library without libstdc++-version-dependent distribution behaviour.
#ifndef QOSRM_COMMON_RNG_HH
#define QOSRM_COMMON_RNG_HH

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace qosrm {

/// SplitMix64 step; used to expand a single seed into a full state vector.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Xoshiro256** 1.0 (Blackman & Vigna) - fast, high-quality, 256-bit state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept { reseed(seed); }

  /// Re-initializes the state from a single 64-bit seed.
  void reseed(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  /// Next raw 64-bit output.
  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection method).
  [[nodiscard]] std::uint64_t uniform_u64(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli draw with probability p of returning true.
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Geometric draw: number of failures before first success, success
  /// probability p in (0, 1]. Mean (1-p)/p.
  [[nodiscard]] std::uint64_t geometric(double p) noexcept;

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  [[nodiscard]] std::size_t weighted_choice(std::span<const double> weights) noexcept;

  /// Creates an independent stream: mirrors the classic jump-free "fork by
  /// hashing" pattern used by counter-based RNGs (each child seeded from the
  /// parent output). Children are statistically independent for our purposes.
  [[nodiscard]] Rng fork() noexcept { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// Fisher-Yates shuffle using Rng (deterministic across platforms, unlike
/// std::shuffle whose output may vary between standard library versions).
template <typename T>
void shuffle(std::vector<T>& v, Rng& rng) {
  if (v.empty()) return;
  for (std::size_t i = v.size() - 1; i > 0; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.uniform_u64(i + 1));
    using std::swap;
    swap(v[i], v[j]);
  }
}

}  // namespace qosrm

#endif  // QOSRM_COMMON_RNG_HH
