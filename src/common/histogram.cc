#include "common/histogram.hh"

#include <algorithm>
#include <cmath>

#include "common/check.hh"

namespace qosrm {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0.0) {
  QOSRM_CHECK(hi > lo);
  QOSRM_CHECK(bins > 0);
}

void Histogram::add(double x, double weight) noexcept {
  if (!std::isfinite(x) || !std::isfinite(weight)) {
    ++dropped_;
    return;
  }
  std::size_t idx;
  if (x < lo_) {
    idx = 0;
  } else if (x >= hi_) {
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>((x - lo_) / bin_width_);
    idx = std::min(idx, counts_.size() - 1);
  }
  counts_[idx] += weight;
  total_ += weight;
}

void Histogram::reset() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0.0);
  total_ = 0.0;
  dropped_ = 0;
}

double Histogram::quantile(double q) const noexcept {
  if (total_ <= 0.0) return lo_;
  const double qc = std::clamp(q, 0.0, 1.0);
  // Pin the upper boundary explicitly: with exact sums the scan below would
  // return the upper edge of the last NONZERO bin, which for a histogram
  // with empty tail bins is below hi - and with accumulated floating-point
  // error the scan could fall through entirely.
  if (qc >= 1.0) return hi_;
  const double target = qc * total_;
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double c = counts_[i];
    if (c > 0.0 && cum + c >= target) {
      return bin_lo(i) + (target - cum) / c * bin_width_;
    }
    cum += c;
  }
  return hi_;
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + bin_width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const noexcept {
  return lo_ + bin_width_ * static_cast<double>(i + 1);
}

double Histogram::bin_center(std::size_t i) const noexcept {
  return lo_ + bin_width_ * (static_cast<double>(i) + 0.5);
}

double Histogram::max_count() const noexcept {
  double m = 0.0;
  for (const double c : counts_) m = std::max(m, c);
  return m;
}

std::vector<double> Histogram::normalized() const {
  return normalized_by(max_count());
}

std::vector<double> Histogram::normalized_by(double max_value) const {
  std::vector<double> out(counts_.size(), 0.0);
  if (max_value <= 0.0) return out;
  for (std::size_t i = 0; i < counts_.size(); ++i) out[i] = counts_[i] / max_value;
  return out;
}

std::string Histogram::ascii(std::size_t width) const {
  const double m = max_count();
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    char head[64];
    std::snprintf(head, sizeof(head), "[%7.3f,%7.3f) ", bin_lo(i), bin_hi(i));
    out += head;
    const std::size_t bar =
        m > 0.0 ? static_cast<std::size_t>(std::lround(counts_[i] / m *
                                                       static_cast<double>(width)))
                : 0;
    out.append(bar, '#');
    char tail[32];
    std::snprintf(tail, sizeof(tail), " %.4g\n", counts_[i]);
    out += tail;
  }
  return out;
}

}  // namespace qosrm
