// Minimal ASCII table formatter for benchmark/report output.
//
// All paper tables/figures are emitted as aligned ASCII tables (plus CSV via
// common/csv.hh) so bench binaries can be diffed and scraped.
#ifndef QOSRM_COMMON_TABLE_HH
#define QOSRM_COMMON_TABLE_HH

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace qosrm {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);
  AsciiTable(std::initializer_list<std::string> header);

  /// Appends a full row; the row is padded/truncated to the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);
  /// Formats a ratio as a percentage string, e.g. 0.103 -> "10.3%".
  static std::string pct(double v, int precision = 1);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders the table with a separator line under the header.
  [[nodiscard]] std::string str() const;

  /// Renders and writes to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace qosrm

#endif  // QOSRM_COMMON_TABLE_HH
