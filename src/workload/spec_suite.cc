#include "workload/spec_suite.hh"

#include <algorithm>
#include <cmath>

#include "common/check.hh"
#include "common/rng.hh"

namespace qosrm::workload {

namespace {

/// Base behaviour of one application; phases are perturbed variants.
struct AppSpec {
  const char* name;
  Category category;
  double lpki;     ///< LLC accesses per kilo-instruction
  double hot;      ///< reuse mass at recency 0-1 (always hits)
  double sens;     ///< reuse mass in the sensitive band (cache sensitivity)
  double center;   ///< centre of the sensitive band (ways)
  double width;    ///< width of the sensitive band
  double cold;     ///< streaming mass (misses at every allocation)
  double dep;      ///< dependence-chain probability (kills MLP)
  double wf;       ///< dirty-block fraction (writeback traffic)
  double burst;    ///< mean loads per burst (enables MLP)
  double gap;      ///< mean instruction gap inside a burst
  double ilp;      ///< inherent ILP
  double cpi_bp;   ///< branch stall CPI
  double cpi_cc;   ///< private-cache stall CPI
  int phases;      ///< number of SimPoint-like phases
  int intervals;   ///< application length in RM intervals
};

// Calibration notes:
//  * CS needs MPKI(8w) >= 0.2 and >= 20% MPKI swing at +-50% allocation:
//    achieved with a sensitive band centred near 6-10 ways.
//  * PS needs MLP(L)-MLP(S) > 0.3*MLP(M) and MLP(L) >= 2: achieved with
//    bursts of independent loads spanning more than the S-core ROB.
//  * PI via dependence chains (dep >= 0.6) or sparse isolated loads.
//  * CI via streaming (cold-dominant) or tiny LLC footprints (hot-dominant).
constexpr AppSpec kSpecs[] = {
    // --- CS-PS ---------------------------------------------------------------
    {"tonto", Category::CS_PS, 9.0, 0.36, 0.44, 9.0, 2.5, 0.06, 0.05, 0.22, 14, 14,
     3.9, 0.06, 0.15, 4, 36},
    {"mcf", Category::CS_PS, 13.0, 0.26, 0.49, 10.0, 3.0, 0.10, 0.08, 0.30, 16, 11,
     3.5, 0.08, 0.20, 5, 64},
    {"omnetpp", Category::CS_PS, 11.0, 0.30, 0.47, 8.0, 2.5, 0.08, 0.08, 0.28, 14, 13,
     3.7, 0.10, 0.18, 4, 48},
    {"soplex", Category::CS_PS, 12.0, 0.28, 0.49, 7.0, 2.0, 0.08, 0.06, 0.26, 15, 12,
     4.1, 0.05, 0.16, 4, 40},
    {"sphinx3", Category::CS_PS, 10.0, 0.33, 0.47, 9.0, 2.8, 0.05, 0.05, 0.20, 14, 13,
     3.8, 0.07, 0.14, 5, 56},
    // --- CS-PI ---------------------------------------------------------------
    {"bzip2", Category::CS_PI, 8.0, 0.34, 0.46, 7.0, 2.2, 0.05, 0.70, 0.30, 5, 30,
     2.0, 0.09, 0.18, 4, 44},
    {"gcc", Category::CS_PI, 7.5, 0.35, 0.47, 8.0, 2.5, 0.06, 0.75, 0.28, 4, 35,
     1.9, 0.12, 0.20, 5, 52},
    {"gobmk", Category::CS_PI, 6.0, 0.38, 0.45, 6.0, 2.0, 0.05, 0.65, 0.22, 4, 32,
     1.8, 0.14, 0.16, 4, 36},
    {"gromacs", Category::CS_PI, 6.5, 0.37, 0.45, 7.0, 2.2, 0.06, 0.72, 0.18, 5, 30,
     2.2, 0.06, 0.14, 4, 40},
    {"h264ref", Category::CS_PI, 8.0, 0.35, 0.47, 9.0, 2.6, 0.05, 0.68, 0.26, 5, 28,
     2.3, 0.08, 0.15, 4, 48},
    {"hmmer", Category::CS_PI, 7.0, 0.38, 0.47, 7.0, 2.0, 0.04, 0.78, 0.20, 4, 30,
     2.1, 0.05, 0.13, 3, 32},
    {"xalancbmk", Category::CS_PI, 9.0, 0.32, 0.48, 10.0, 2.8, 0.06, 0.70, 0.30, 5,
     26, 2.0, 0.11, 0.19, 5, 60},
    // --- CI-PS ---------------------------------------------------------------
    {"namd", Category::CI_PS, 8.0, 0.38, 0.05, 4.0, 2.0, 0.57, 0.02, 0.18, 12, 16,
     5.5, 0.04, 0.10, 3, 36},
    {"zeusmp", Category::CI_PS, 10.0, 0.35, 0.04, 4.0, 2.0, 0.61, 0.03, 0.30, 12, 14,
     5.2, 0.05, 0.12, 4, 44},
    {"GemsFDTD", Category::CI_PS, 12.0, 0.30, 0.04, 5.0, 2.0, 0.66, 0.02, 0.34, 14,
     12, 5.6, 0.04, 0.12, 4, 52},
    {"bwaves", Category::CI_PS, 13.0, 0.27, 0.03, 4.0, 2.0, 0.70, 0.02, 0.36, 16, 11,
     6.2, 0.03, 0.10, 4, 64},
    {"leslie3d", Category::CI_PS, 11.0, 0.33, 0.05, 5.0, 2.0, 0.62, 0.03, 0.32, 12,
     14, 5.0, 0.05, 0.11, 4, 48},
    {"libquantum", Category::CI_PS, 14.0, 0.24, 0.02, 4.0, 2.0, 0.74, 0.01, 0.25, 16,
     11, 6.5, 0.02, 0.08, 3, 72},
    {"wrf", Category::CI_PS, 9.0, 0.36, 0.05, 5.0, 2.0, 0.59, 0.03, 0.28, 12, 16,
     4.8, 0.06, 0.13, 4, 40},
    // --- CI-PI ---------------------------------------------------------------
    {"cactusADM", Category::CI_PI, 1.0, 0.80, 0.10, 5.0, 2.0, 0.10, 0.30, 0.20, 2,
     60, 1.6, 0.07, 0.12, 3, 44},
    {"dealII", Category::CI_PI, 0.8, 0.85, 0.10, 5.0, 2.0, 0.05, 0.25, 0.18, 2, 60,
     2.0, 0.06, 0.10, 4, 36},
    {"gamess", Category::CI_PI, 0.5, 0.90, 0.06, 4.0, 2.0, 0.04, 0.20, 0.12, 2, 70,
     2.2, 0.05, 0.08, 3, 48},
    {"perlbench", Category::CI_PI, 1.0, 0.85, 0.09, 5.0, 2.0, 0.06, 0.35, 0.22, 2,
     55, 1.8, 0.12, 0.14, 4, 40},
    {"povray", Category::CI_PI, 0.4, 0.92, 0.05, 4.0, 2.0, 0.03, 0.25, 0.12, 2, 70,
     2.0, 0.08, 0.09, 3, 32},
    {"sjeng", Category::CI_PI, 1.1, 0.84, 0.06, 5.0, 2.0, 0.10, 0.40, 0.18, 2, 50,
     1.6, 0.15, 0.13, 4, 36},
    {"astar", Category::CI_PI, 2.5, 0.72, 0.06, 5.0, 2.0, 0.22, 0.75, 0.24, 3, 40,
     1.5, 0.13, 0.16, 4, 44},
    {"lbm", Category::CI_PI, 9.0, 0.30, 0.03, 4.0, 2.0, 0.67, 0.85, 0.45, 6, 25, 2.2,
     0.03, 0.10, 3, 56},
};

constexpr std::size_t kNumApps = std::size(kSpecs);
static_assert(kNumApps == 27, "paper uses 27 of the 29 SPEC CPU2006 apps");

/// Stable per-app seed derived from the suite layout (not from pointer
/// values), so traces are reproducible across runs and platforms.
std::uint64_t app_seed(std::size_t app_idx) {
  std::uint64_t s = 0x5eed5eedULL + 0x9e3779b97f4a7c15ULL * (app_idx + 1);
  return splitmix64(s);
}

PhaseParams make_phase(const AppSpec& spec, int phase_idx, Rng& rng) {
  PhaseParams p;
  p.name = std::string(spec.name) + "/p" + std::to_string(phase_idx);

  // Perturb the base behaviour per phase; clamps keep every phase within the
  // regime that preserves the intended category.
  auto jitter = [&](double base, double rel) {
    return base * rng.uniform(1.0 - rel, 1.0 + rel);
  };
  p.lpki = std::max(0.1, jitter(spec.lpki, 0.18));
  const double center = std::clamp(spec.center + rng.uniform(-1.2, 1.2), 3.0, 12.0);
  const double width = std::max(1.2, jitter(spec.width, 0.2));
  const double hot = std::max(0.0, jitter(spec.hot, 0.1));
  const double sens = std::max(0.0, jitter(spec.sens, 0.15));
  const double cold = std::max(0.0, jitter(spec.cold, 0.15));
  p.reuse = make_stack_profile(hot, sens, center, width, cold);
  p.dep_frac = std::clamp(jitter(std::max(spec.dep, 0.01), 0.15), 0.0, 0.95);
  p.write_frac = std::clamp(jitter(spec.wf, 0.15), 0.0, 0.8);
  p.burst_size = std::max(1.0, jitter(spec.burst, 0.2));
  p.intra_gap = std::max(4.0, jitter(spec.gap, 0.2));
  p.ilp = std::max(1.05, jitter(spec.ilp, 0.08));
  p.cpi_branch = std::max(0.005, jitter(spec.cpi_bp, 0.25));
  p.cpi_cache = std::max(0.01, jitter(spec.cpi_cc, 0.25));
  return p;
}

}  // namespace

const char* category_name(Category c) noexcept {
  switch (c) {
    case Category::CS_PS:
      return "CS-PS";
    case Category::CS_PI:
      return "CS-PI";
    case Category::CI_PS:
      return "CI-PS";
    case Category::CI_PI:
      return "CI-PI";
  }
  return "?";
}

SpecSuite::SpecSuite() {
  apps_.reserve(kNumApps);
  categories_.reserve(kNumApps);
  for (std::size_t i = 0; i < kNumApps; ++i) {
    const AppSpec& spec = kSpecs[i];
    Rng rng(app_seed(i));

    AppProfile app;
    app.name = spec.name;
    app.trace_seed = app_seed(i) ^ 0xabcdef12345ULL;

    std::vector<double> weights;
    for (int ph = 0; ph < spec.phases; ++ph) {
      app.phases.push_back(make_phase(spec, ph, rng));
      weights.push_back(rng.uniform(0.5, 1.5));
    }
    double total = 0.0;
    for (const double w : weights) total += w;
    for (std::size_t ph = 0; ph < weights.size(); ++ph) {
      weights[ph] /= total;
      app.phases[ph].weight = weights[ph];
    }

    app.phase_sequence = make_phase_sequence(spec.phases, weights, spec.intervals,
                                             /*stay=*/0.80, app_seed(i) ^ 0x777ULL);
    apps_.push_back(std::move(app));
    categories_.push_back(spec.category);
  }
}

const AppProfile& SpecSuite::app(int idx) const {
  QOSRM_CHECK(idx >= 0 && idx < size());
  return apps_[static_cast<std::size_t>(idx)];
}

int SpecSuite::index_of(const std::string& name) const {
  for (int i = 0; i < size(); ++i) {
    if (apps_[static_cast<std::size_t>(i)].name == name) return i;
  }
  return -1;
}

Category SpecSuite::intended_category(int idx) const {
  QOSRM_CHECK(idx >= 0 && idx < size());
  return categories_[static_cast<std::size_t>(idx)];
}

std::vector<int> SpecSuite::apps_in_category(Category c) const {
  std::vector<int> out;
  for (int i = 0; i < size(); ++i) {
    if (categories_[static_cast<std::size_t>(i)] == c) out.push_back(i);
  }
  return out;
}

const SpecSuite& spec_suite() {
  static const SpecSuite suite;
  return suite;
}

}  // namespace qosrm::workload
