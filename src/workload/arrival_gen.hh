// Open-loop arrival trace synthesis for the colocation-service mode.
//
// The paper evaluates the resource managers on fixed multiprogrammed mixes;
// the service mode instead drives them with a stream of application arrivals
// so tail behaviour (p95/p99 QoS violation, occupancy) becomes measurable.
// Three canonical arrival patterns are provided, all calibrated so the
// long-run arrival rate equals
//
//   lambda = load * cores / mean_service_time
//
// i.e. `load` is the offered utilization of the core pool:
//   - Poisson:  memoryless inter-arrivals, Exp(lambda).
//   - Bursty:   arrivals cluster into geometric-length bursts with
//               inter-arrival rate `burst_rate_factor * lambda`, separated
//               by exponential idle gaps sized so the mean rate stays lambda.
//   - Diurnal:  non-homogeneous Poisson with sinusoidal rate
//               lambda * (1 + A sin(2 pi t / period)), drawn by thinning;
//               `diurnal_cycles` full cycles span the nominal trace length.
//
// Generation is fully deterministic from the options (single Rng stream,
// no platform-dependent distributions) and allocation-free when the caller
// reuses an ArrivalTrace via generate_arrivals_into.
#ifndef QOSRM_WORKLOAD_ARRIVAL_GEN_HH
#define QOSRM_WORKLOAD_ARRIVAL_GEN_HH

#include <cstdint>
#include <string>
#include <vector>

namespace qosrm::workload {

enum class ArrivalPattern : int { Poisson = 0, Bursty = 1, Diurnal = 2 };

inline constexpr int kNumArrivalPatterns = 3;

/// Short stable name ("poisson", "bursty", "diurnal"); used in CSV/JSON
/// output and accepted by parse_arrival_patterns.
[[nodiscard]] const char* arrival_pattern_name(ArrivalPattern pattern) noexcept;

/// Parses a comma-separated pattern list, e.g. "poisson,bursty". Aborts on
/// unknown names, empty lists and empty entries (a stray comma would
/// otherwise silently shrink the service grid).
[[nodiscard]] std::vector<ArrivalPattern> parse_arrival_patterns(
    const std::string& spec);

struct ArrivalGenOptions {
  ArrivalPattern pattern = ArrivalPattern::Poisson;
  double load = 0.8;   ///< offered utilization of the core pool, > 0
  int cores = 16;      ///< size of the served core pool
  std::size_t count = 5000;  ///< number of arrivals to emit
  std::uint64_t seed = 2020;
  /// Mean busy time one app keeps a core (seconds); calibrates lambda.
  double mean_service_time = 1.0;
  int num_apps = 1;    ///< app ids are drawn uniformly from [0, num_apps)
  int demand_min = 40;   ///< per-arrival demand in intervals, inclusive
  int demand_max = 160;  ///< >= demand_min
  double burst_mean_length = 16.0;  ///< mean arrivals per burst, >= 1
  double burst_rate_factor = 4.0;   ///< in-burst rate multiplier, > 1
  double diurnal_amplitude = 0.8;   ///< in [0, 1]
  double diurnal_cycles = 4.0;      ///< cycles over the nominal trace span
};

struct ArrivalEvent {
  double time_s = 0.0;       ///< absolute arrival time, non-decreasing
  int app = 0;               ///< application id in [0, num_apps)
  int demand_intervals = 0;  ///< work requested, in trace intervals
};

struct ArrivalTrace {
  std::vector<ArrivalEvent> events;
};

/// Synthesizes `options.count` arrivals into `*out`, reusing its capacity
/// (no allocation once the vector has grown to `count`). Aborts on invalid
/// options (non-positive load/cores/count, demand_max < demand_min, ...).
void generate_arrivals_into(const ArrivalGenOptions& options, ArrivalTrace* out);

/// Convenience allocating wrapper around generate_arrivals_into.
[[nodiscard]] ArrivalTrace generate_arrivals(const ArrivalGenOptions& options);

/// Exact FNV-1a fingerprint over every option field (doubles hashed by bit
/// pattern); two option sets with equal fingerprints produce identical
/// traces.
[[nodiscard]] std::uint64_t arrival_gen_fingerprint(
    const ArrivalGenOptions& options) noexcept;

}  // namespace qosrm::workload

#endif  // QOSRM_WORKLOAD_ARRIVAL_GEN_HH
