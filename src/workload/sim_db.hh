// The simulation database (paper Section IV-A).
//
// The paper runs Sniper+McPAT once per (phase, core configuration, VF
// setting, LLC allocation) and stores the results; the RM simulator then
// replays applications against that database. SimDb mirrors that split:
//
//   * characterization - one PhaseStats per (app, phase), produced by the
//     trace-driven cache substrate (the expensive part, parallel build);
//   * materialized evaluation - an EvalTable holding IntervalTiming and
//     IntervalEnergy densely precomputed over the full finite
//     (core size x VF point x way) grid, plus baseline-time/MPKI/MLP
//     aggregates, so every timing()/energy() query is an array lookup.
//
// The characterization is serializable: workload/db_io.hh saves it to a
// versioned binary snapshot and restores it in milliseconds (the table is
// rebuilt deterministically from the restored stats).
#ifndef QOSRM_WORKLOAD_SIM_DB_HH
#define QOSRM_WORKLOAD_SIM_DB_HH

#include <cstdint>
#include <vector>

#include "arch/core_model.hh"
#include "arch/dvfs.hh"
#include "arch/system_config.hh"
#include "power/power_model.hh"
#include "workload/eval_table.hh"
#include "workload/phase_stats.hh"
#include "workload/spec_suite.hh"

namespace qosrm::workload {

struct SimDbOptions {
  PhaseStatsOptions phase{};
  int threads = 0;  ///< build parallelism; 0 = hardware concurrency
};

class SimDb {
 public:
  /// Characterizes every phase of every suite application (parallel build),
  /// then materializes the evaluation table.
  SimDb(const SpecSuite& suite, const arch::SystemConfig& system,
        const power::PowerModel& power, const SimDbOptions& options = {});

  /// Restores a database from an already-computed characterization (snapshot
  /// load path; see workload/db_io.hh). Only the evaluation table is rebuilt.
  SimDb(const SpecSuite& suite, const arch::SystemConfig& system,
        const power::PowerModel& power, const PhaseStatsOptions& phase_options,
        std::vector<std::vector<PhaseStats>> stats);

  [[nodiscard]] const SpecSuite& suite() const noexcept { return *suite_; }
  [[nodiscard]] const arch::SystemConfig& system() const noexcept { return system_; }
  [[nodiscard]] const power::PowerModel& power() const noexcept { return power_; }
  [[nodiscard]] const PhaseStatsOptions& phase_options() const noexcept {
    return phase_opts_;
  }

  [[nodiscard]] const PhaseStats& stats(int app, int phase) const;
  [[nodiscard]] int num_phases(int app) const;

  /// Ground-truth interval timing of (app, phase) at setting s.
  [[nodiscard]] arch::IntervalTiming timing(int app, int phase,
                                            const Setting& s) const {
    return table_.timing(app, phase, s);
  }

  /// Ground-truth interval energy (core + memory; uncore is system-level).
  [[nodiscard]] power::IntervalEnergy energy(int app, int phase,
                                             const Setting& s) const {
    return table_.energy(app, phase, s);
  }

  /// timing(...).total_seconds without the struct copy (SoA lookup).
  [[nodiscard]] double total_seconds(int app, int phase, const Setting& s) const {
    return table_.total_seconds(app, phase, s);
  }

  /// timing(...).mem_seconds without the struct copy (SoA lookup).
  [[nodiscard]] double mem_seconds(int app, int phase, const Setting& s) const {
    return table_.mem_seconds(app, phase, s);
  }

  /// energy(...).core_j() without the struct copy (SoA lookup).
  [[nodiscard]] double core_joules(int app, int phase, const Setting& s) const {
    return table_.core_joules(app, phase, s);
  }

  /// energy(...).total_j() without the struct copy (SoA lookup).
  [[nodiscard]] double total_joules(int app, int phase, const Setting& s) const {
    return table_.total_joules(app, phase, s);
  }

  /// Contiguous w-row of interval wall-clock times at fixed (c, f_idx, b);
  /// element w-1 is timing(app, phase, {c, f_idx, w, b}).total_seconds.
  [[nodiscard]] std::span<const double> total_seconds_row(int app, int phase,
                                                          arch::CoreSize c,
                                                          int f_idx,
                                                          int b = 1) const {
    return table_.total_seconds_row(app, phase, c, f_idx, b);
  }

  /// Contiguous w-row of interval memory stall times at fixed (c, f_idx, b).
  [[nodiscard]] std::span<const double> mem_seconds_row(int app, int phase,
                                                        arch::CoreSize c,
                                                        int f_idx,
                                                        int b = 1) const {
    return table_.mem_seconds_row(app, phase, c, f_idx, b);
  }

  /// Dense memo key of the (app, phase, setting) evaluation cell.
  [[nodiscard]] std::int64_t interval_key(int app, int phase,
                                          const Setting& s) const {
    return table_.interval_key(app, phase, s);
  }

  /// One past the largest interval_key() this database can produce.
  [[nodiscard]] std::int64_t interval_key_space() const noexcept {
    return table_.interval_key_space();
  }

  /// Interval wall-clock time at the baseline setting (the QoS reference).
  [[nodiscard]] double baseline_time(int app, int phase) const {
    return table_.baseline_time(app, phase);
  }

  /// Weighted-average MPKI of an application at allocation w (phase weights).
  [[nodiscard]] double app_mpki(int app, int w) const {
    return table_.app_mpki(app, w);
  }

  /// Weighted-average ground-truth MLP of an application at (c, baseline w).
  [[nodiscard]] double app_mlp(int app, arch::CoreSize c) const {
    return table_.app_mlp(app, c);
  }

 private:
  const SpecSuite* suite_;
  arch::SystemConfig system_;
  power::PowerModel power_;
  PhaseStatsOptions phase_opts_;
  std::vector<std::vector<PhaseStats>> stats_;  // [app][phase]
  EvalTable table_;
};

}  // namespace qosrm::workload

#endif  // QOSRM_WORKLOAD_SIM_DB_HH
