// The simulation database (paper Section IV-A).
//
// The paper runs Sniper+McPAT once per (phase, core configuration, VF
// setting, LLC allocation) and stores the results; the RM simulator then
// replays applications against that database. Here the database holds one
// PhaseStats per (app, phase) - produced by the trace-driven cache substrate
// - and evaluates ground-truth timing/energy for any (c, f, w) on demand
// from the analytical core model, which is equivalent to materializing the
// full cross product but cheaper to store.
#ifndef QOSRM_WORKLOAD_SIM_DB_HH
#define QOSRM_WORKLOAD_SIM_DB_HH

#include <cstdint>
#include <vector>

#include "arch/core_model.hh"
#include "arch/dvfs.hh"
#include "arch/system_config.hh"
#include "power/power_model.hh"
#include "workload/phase_stats.hh"
#include "workload/spec_suite.hh"

namespace qosrm::workload {

/// A concrete resource setting for one core.
struct Setting {
  arch::CoreSize c = arch::kBaselineCoreSize;
  int f_idx = arch::VfTable::kBaselineIndex;
  int w = 8;

  [[nodiscard]] bool operator==(const Setting&) const = default;
};

/// The baseline system setting (M core, 2 GHz, even LLC split).
[[nodiscard]] Setting baseline_setting(const arch::SystemConfig& system);

struct SimDbOptions {
  PhaseStatsOptions phase{};
  int threads = 0;  ///< build parallelism; 0 = hardware concurrency
};

class SimDb {
 public:
  /// Characterizes every phase of every suite application (parallel build).
  SimDb(const SpecSuite& suite, const arch::SystemConfig& system,
        const power::PowerModel& power, const SimDbOptions& options = {});

  [[nodiscard]] const SpecSuite& suite() const noexcept { return *suite_; }
  [[nodiscard]] const arch::SystemConfig& system() const noexcept { return system_; }
  [[nodiscard]] const power::PowerModel& power() const noexcept { return power_; }

  [[nodiscard]] const PhaseStats& stats(int app, int phase) const;
  [[nodiscard]] int num_phases(int app) const;

  /// Ground-truth interval timing of (app, phase) at setting s.
  [[nodiscard]] arch::IntervalTiming timing(int app, int phase,
                                            const Setting& s) const;

  /// Ground-truth interval energy (core + memory; uncore is system-level).
  [[nodiscard]] power::IntervalEnergy energy(int app, int phase,
                                             const Setting& s) const;

  /// Interval wall-clock time at the baseline setting (the QoS reference).
  [[nodiscard]] double baseline_time(int app, int phase) const;

  /// Weighted-average MPKI of an application at allocation w (phase weights).
  [[nodiscard]] double app_mpki(int app, int w) const;

  /// Weighted-average ground-truth MLP of an application at (c, baseline w).
  [[nodiscard]] double app_mlp(int app, arch::CoreSize c) const;

 private:
  const SpecSuite* suite_;
  arch::SystemConfig system_;
  power::PowerModel power_;
  std::vector<std::vector<PhaseStats>> stats_;  // [app][phase]
};

}  // namespace qosrm::workload

#endif  // QOSRM_WORKLOAD_SIM_DB_HH
