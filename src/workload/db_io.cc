#include "workload/db_io.hh"

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <utility>

#include "common/binary_io.hh"
#include "common/str.hh"

namespace qosrm::workload {

namespace {

// "QOSRMDB\0" little-endian.
constexpr std::uint64_t kMagic = 0x0042444D52534F51ULL;

void hash_stack_profile(Fnv1a64& h, const StackProfile& p) {
  for (const double w : p.hit_weight) h.add_f64(w);
  h.add_f64(p.cold_weight);
}

void hash_phase_params(Fnv1a64& h, const PhaseParams& p) {
  h.add_string(p.name);
  h.add_f64(p.weight);
  h.add_f64(p.lpki);
  hash_stack_profile(h, p.reuse);
  h.add_f64(p.dep_frac);
  h.add_f64(p.write_frac);
  h.add_f64(p.burst_size);
  h.add_f64(p.intra_gap);
  h.add_f64(p.ilp);
  h.add_f64(p.cpi_branch);
  h.add_f64(p.cpi_cache);
}

void write_phase_stats(BinaryWriter& w, const PhaseStats& st) {
  w.write_f64_vec(st.misses);
  for (const auto& lm : st.lm_true) w.write_f64_vec(lm);
  for (const auto& lm : st.lm_atd) w.write_f64_vec(lm);
  w.write_f64(st.interval_instructions);
  w.write_f64(st.llc_accesses);
  w.write_f64(st.write_frac);
  w.write_f64(st.scale);
  w.write_f64(st.ilp);
  w.write_f64(st.cpi_branch);
  w.write_f64(st.cpi_cache);
}

[[nodiscard]] PhaseStats read_phase_stats(BinaryReader& r) {
  PhaseStats st;
  st.misses = r.read_f64_vec();
  for (auto& lm : st.lm_true) lm = r.read_f64_vec();
  for (auto& lm : st.lm_atd) lm = r.read_f64_vec();
  st.interval_instructions = r.read_f64();
  st.llc_accesses = r.read_f64();
  st.write_frac = r.read_f64();
  st.scale = r.read_f64();
  st.ilp = r.read_f64();
  st.cpi_branch = r.read_f64();
  st.cpi_cache = r.read_f64();
  return st;
}

bool fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

}  // namespace

std::uint64_t simdb_fingerprint(const SpecSuite& suite,
                                const arch::SystemConfig& system,
                                const PhaseStatsOptions& options) {
  Fnv1a64 h;
  h.add_u32(kSimDbSnapshotVersion);

  h.add_i64(system.cores);
  h.add_i64(system.llc.ways_per_core_baseline);
  h.add_i64(system.llc.min_ways);
  h.add_i64(system.llc.max_ways);
  h.add_i64(system.llc.block_bytes);
  h.add_i64(system.llc.sets);
  h.add_i64(system.llc.atd_sampled_sets);
  h.add_f64(system.interval_instructions);
  h.add_f64(system.mem_latency_s);
  h.add_f64(system.qos_alpha);

  // The bandwidth-partition config is hashed only when non-degenerate: the
  // default unpartitioned system keeps the exact pre-CBP fingerprint (so
  // every existing snapshot, golden report and stamped fingerprint stays
  // valid), while any partitioned grid gets a distinct identity and can
  // never cross-merge with a ways-only one.
  if (!system.bw.degenerate()) {
    h.add_i64(system.bw.shares_per_core_baseline);
    h.add_i64(system.bw.min_shares);
    h.add_i64(system.bw.max_shares);
    h.add_f64(system.bw.contention);
  }

  h.add_i64(options.synth.sets);
  h.add_i64(options.synth.max_ways);
  h.add_f64(options.synth.represented_instructions);
  h.add_i64(options.mlp_index_bits);
  h.add_i64(options.atd_sample_period);
  h.add_f64(options.arrival_dispatch_ipc);
  h.add_f64(options.mem_latency_cycles);
  h.add_i64(options.arrival_ways);

  h.add_i64(suite.size());
  for (int a = 0; a < suite.size(); ++a) {
    const AppProfile& app = suite.app(a);
    h.add_string(app.name);
    h.add_u64(app.trace_seed);
    h.add_i64(app.num_phases());
    for (const PhaseParams& phase : app.phases) hash_phase_params(h, phase);
    h.add_i64(app.length_intervals());
    for (const int p : app.phase_sequence) h.add_i64(p);
  }
  return h.digest();
}

bool save_simdb(const SimDb& db, const std::string& path, std::string* error) {
  // Write to a uniquely named sibling and rename into place: concurrent
  // writers (parallel test binaries, sweep shards) never expose a partial
  // file, and readers only ever see a complete snapshot or none.
  const std::string tmp_path =
      format("%s.tmp.%ld", path.c_str(), static_cast<long>(::getpid()));
  std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
  if (!out.good()) return fail(error, format("cannot open %s for writing", path.c_str()));

  BinaryWriter w(out);
  w.write_u64(kMagic);
  w.write_u32(kSimDbSnapshotVersion);
  w.write_u32(kByteOrderMark);
  w.write_u64(simdb_fingerprint(db.suite(), db.system(), db.phase_options()));

  const int apps = db.suite().size();
  w.write_u32(static_cast<std::uint32_t>(apps));
  for (int a = 0; a < apps; ++a) {
    const int phases = db.num_phases(a);
    w.write_u32(static_cast<std::uint32_t>(phases));
    for (int ph = 0; ph < phases; ++ph) write_phase_stats(w, db.stats(a, ph));
  }
  w.write_trailing_checksum();
  out.flush();
  if (!out.good()) {
    out.close();
    std::remove(tmp_path.c_str());
    return fail(error, format("write to %s failed", path.c_str()));
  }
  out.close();
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return fail(error, format("cannot move snapshot into place at %s", path.c_str()));
  }
  return true;
}

std::optional<SimDb> load_simdb(const SpecSuite& suite,
                                const arch::SystemConfig& system,
                                const power::PowerModel& power,
                                const PhaseStatsOptions& options,
                                const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    fail(error, format("cannot open %s for reading", path.c_str()));
    return std::nullopt;
  }

  BinaryReader r(in);
  const std::uint64_t magic = r.read_u64();
  if (!r.ok() || magic != kMagic) {
    fail(error, format("%s is not a SimDb snapshot (bad magic)", path.c_str()));
    return std::nullopt;
  }
  const std::uint32_t version = r.read_u32();
  if (!r.ok() || version != kSimDbSnapshotVersion) {
    fail(error, format("%s has snapshot version %u, expected %u", path.c_str(),
                       version, kSimDbSnapshotVersion));
    return std::nullopt;
  }
  const std::uint32_t bom = r.read_u32();
  if (!r.ok() || bom != kByteOrderMark) {
    fail(error,
         format("%s was written on a machine with different byte order", path.c_str()));
    return std::nullopt;
  }
  const std::uint64_t stored_fp = r.read_u64();
  const std::uint64_t expected_fp = simdb_fingerprint(suite, system, options);
  if (!r.ok() || stored_fp != expected_fp) {
    fail(error,
         format("%s is stale: snapshot fingerprint %016llx does not match the "
                "current suite/SystemConfig/PhaseStatsOptions (%016llx); "
                "rebuild the snapshot",
                path.c_str(), static_cast<unsigned long long>(stored_fp),
                static_cast<unsigned long long>(expected_fp)));
    return std::nullopt;
  }

  const std::uint32_t apps = r.read_u32();
  if (!r.ok() || static_cast<int>(apps) != suite.size()) {
    fail(error, format("%s is corrupt: app count %u, suite has %d", path.c_str(),
                       apps, suite.size()));
    return std::nullopt;
  }
  std::vector<std::vector<PhaseStats>> stats(apps);
  for (std::uint32_t a = 0; a < apps; ++a) {
    const std::uint32_t phases = r.read_u32();
    if (!r.ok() ||
        static_cast<int>(phases) != suite.app(static_cast<int>(a)).num_phases()) {
      fail(error, format("%s is corrupt: phase count mismatch for app %u",
                         path.c_str(), a));
      return std::nullopt;
    }
    stats[a].reserve(phases);
    for (std::uint32_t ph = 0; ph < phases; ++ph) {
      PhaseStats st = read_phase_stats(r);
      // Shape-check before the stats reach EvalTable/PhaseStats indexing:
      // the trailing checksum only proves the file matches itself, not that
      // an external writer produced well-formed arrays.
      const auto ways = static_cast<std::size_t>(options.synth.max_ways);
      bool well_formed = st.misses.size() == ways;
      for (const auto& lm : st.lm_true) well_formed &= lm.size() == ways;
      for (const auto& lm : st.lm_atd) well_formed &= lm.size() == ways;
      if (!r.ok() || !well_formed) {
        fail(error, format("%s is corrupt: malformed phase arrays for app %u",
                           path.c_str(), a));
        return std::nullopt;
      }
      stats[a].push_back(std::move(st));
    }
  }
  if (!r.ok() || !r.verify_trailing_checksum()) {
    fail(error, format("%s is corrupt (truncated or checksum mismatch)", path.c_str()));
    return std::nullopt;
  }
  if (in.peek() != std::ifstream::traits_type::eof()) {
    fail(error, format("%s is corrupt (trailing bytes after checksum)", path.c_str()));
    return std::nullopt;
  }
  return SimDb(suite, system, power, options, std::move(stats));
}

std::string db_cache_path(const std::string& dir, int cores, int bw_shares) {
  const bool needs_sep = !dir.empty() && dir.back() != '/';
  if (bw_shares > 1) {
    // Partitioned-bandwidth snapshots carry a distinct name so a ways-only
    // cache is never probed (and fingerprint-rejected) for a CBP run.
    return format("%s%ssuite-c%d-b%d%s", dir.c_str(), needs_sep ? "/" : "",
                  cores, bw_shares, kSimDbSnapshotExtension);
  }
  return format("%s%ssuite-c%d%s", dir.c_str(), needs_sep ? "/" : "", cores,
                kSimDbSnapshotExtension);
}

SimDb warm_simdb(const SpecSuite& suite, const arch::SystemConfig& system,
                 const power::PowerModel& power, const SimDbOptions& options,
                 const std::string& path, DbCacheOutcome* outcome) {
  if (!path.empty()) {
    std::string error;
    std::ifstream probe(path, std::ios::binary);
    const bool exists = probe.good();
    probe.close();
    if (exists) {
      std::optional<SimDb> db =
          load_simdb(suite, system, power, options.phase, path, &error);
      if (db.has_value()) {
        if (outcome != nullptr) *outcome = DbCacheOutcome::Loaded;
        return std::move(*db);
      }
      std::fprintf(stderr, "warm_simdb: rejecting snapshot: %s; rebuilding\n",
                   error.c_str());
    }
    SimDb db(suite, system, power, options);
    if (!save_simdb(db, path, &error)) {
      std::fprintf(stderr, "warm_simdb: %s (continuing without cache)\n",
                   error.c_str());
      if (outcome != nullptr) *outcome = DbCacheOutcome::Built;
    } else if (outcome != nullptr) {
      *outcome = DbCacheOutcome::BuiltAndSaved;
    }
    return db;
  }
  if (outcome != nullptr) *outcome = DbCacheOutcome::Built;
  return SimDb(suite, system, power, options);
}

}  // namespace qosrm::workload
