// Application categorization (paper Section IV-C, producing Table II).
//
//   Cache Sensitive (CS):   MPKI varies by more than 20% when the LLC
//                           allocation changes by +-50% from the 8-way
//                           baseline, and baseline MPKI >= 0.2.
//   Parallelism Sensitive (PS): ground-truth MLP grows by more than 30% of
//                           the M-core MLP when resizing S -> L (at baseline
//                           allocation and VF), and MLP on L is >= 2.
#ifndef QOSRM_WORKLOAD_CLASSIFY_HH
#define QOSRM_WORKLOAD_CLASSIFY_HH

#include <vector>

#include "workload/sim_db.hh"
#include "workload/spec_suite.hh"

namespace qosrm::workload {

struct ClassificationCriteria {
  double mpki_min = 0.2;         ///< minimum baseline MPKI to count as CS
  double mpki_variation = 0.20;  ///< relative MPKI swing threshold
  double mlp_variation = 0.30;   ///< (MLP_L - MLP_S) / MLP_M threshold
  double mlp_min_large = 2.0;    ///< minimum MLP on the L core for PS
  int baseline_ways = 8;
};

struct AppClassification {
  int app = -1;
  bool cache_sensitive = false;
  bool parallelism_sensitive = false;
  double mpki_base = 0.0;  ///< MPKI at the baseline allocation
  double mpki_lo = 0.0;    ///< MPKI at -50% allocation (4 ways)
  double mpki_hi = 0.0;    ///< MPKI at +50% allocation (12 ways)
  double mlp_s = 1.0;
  double mlp_m = 1.0;
  double mlp_l = 1.0;

  [[nodiscard]] Category category() const noexcept {
    if (cache_sensitive) {
      return parallelism_sensitive ? Category::CS_PS : Category::CS_PI;
    }
    return parallelism_sensitive ? Category::CI_PS : Category::CI_PI;
  }
};

/// Classifies one application from database ground truth.
[[nodiscard]] AppClassification classify_app(const SimDb& db, int app,
                                             const ClassificationCriteria& crit = {});

/// Classifies the whole suite.
[[nodiscard]] std::vector<AppClassification> classify_suite(
    const SimDb& db, const ClassificationCriteria& crit = {});

/// Number of applications per category.
[[nodiscard]] std::array<int, kNumCategories> category_histogram(
    const std::vector<AppClassification>& cls);

/// Partitioning class of an application for the class-based baseline policy
/// (LFOC / pmctrack-style light / streaming / sensitive taxonomy).
///
///   Light     - barely uses the LLC (baseline MPKI below mpki_min); happy
///               with the minimum allocation.
///   Streaming - high miss rate but a flat MPKI curve (fails the CS swing
///               rule): more ways don't help, so it gets the minimum
///               allocation to stop it polluting the cache.
///   Sensitive - cache sensitive per the Table II swing rule; these apps
///               share the remaining way budget.
enum class PartClass { Light = 0, Streaming = 1, Sensitive = 2 };

[[nodiscard]] const char* part_class_name(PartClass cls) noexcept;

/// Classifies one MPKI curve sample (baseline / -50% / +50% allocations, the
/// same probe points as classify_app) into a partitioning class. Pure in its
/// arguments, so the baseline policy can classify from online ATD counters
/// without a database handle.
[[nodiscard]] PartClass classify_part_class(double mpki_base, double mpki_lo,
                                            double mpki_hi,
                                            const ClassificationCriteria& crit = {});

/// The partitioning class of an already classified application.
[[nodiscard]] PartClass part_class_of(const AppClassification& cls,
                                      const ClassificationCriteria& crit = {});

}  // namespace qosrm::workload

#endif  // QOSRM_WORKLOAD_CLASSIFY_HH
