#include "workload/eval_table.hh"

#include <algorithm>

#include "common/check.hh"

namespace qosrm::workload {

Setting baseline_setting(const arch::SystemConfig& system) {
  Setting s;
  s.c = arch::kBaselineCoreSize;
  s.f_idx = arch::VfTable::kBaselineIndex;
  s.w = system.llc.ways_per_core_baseline;
  s.b = system.bw.shares_per_core_baseline;
  return s;
}

EvalTable::EvalTable(const SpecSuite& suite, const arch::SystemConfig& system,
                     const power::PowerModel& power,
                     const std::vector<std::vector<PhaseStats>>& stats) {
  QOSRM_CHECK(static_cast<int>(stats.size()) == suite.size());
  const Setting base = baseline_setting(system);

  grids_.resize(stats.size());
  aggregates_.resize(stats.size());
  for (int a = 0; a < suite.size(); ++a) {
    const auto& per_app = stats[static_cast<std::size_t>(a)];
    auto& app_grids = grids_[static_cast<std::size_t>(a)];
    app_grids.resize(per_app.size());

    for (std::size_t ph = 0; ph < per_app.size(); ++ph) {
      const PhaseStats& st = per_app[ph];
      PhaseGrid& g = app_grids[ph];
      g.max_ways = st.max_ways();
      g.min_shares = system.bw.min_shares;
      g.num_shares = system.bw.num_allocations();
      QOSRM_CHECK(g.max_ways >= 1);
      QOSRM_CHECK(g.num_shares >= 1);
      const std::size_t cells = static_cast<std::size_t>(arch::kNumCoreSizes) *
                                static_cast<std::size_t>(arch::VfTable::kNumPoints) *
                                static_cast<std::size_t>(g.num_shares) *
                                static_cast<std::size_t>(g.max_ways);
      g.timing.resize(cells);
      g.energy.resize(cells);
      g.total_s.resize(cells);
      g.mem_s.resize(cells);
      g.core_j.resize(cells);
      g.total_j.resize(cells);
      g.key_off = key_space_;
      key_space_ += static_cast<std::int64_t>(cells);

      const arch::IntervalCharacteristics chars = st.characteristics();
      std::size_t idx = 0;
      for (const arch::CoreSize c : arch::kAllCoreSizes) {
        for (int f = 0; f < arch::VfTable::kNumPoints; ++f) {
          for (int bi = 0; bi < g.num_shares; ++bi) {
            // CBP-style bandwidth ground truth: b granted shares inflate
            // (or, above the baseline share, deflate) the effective DRAM
            // latency by the queuing-contention multiplier. The baseline
            // share's multiplier is exactly 1.0, so its cells - the entire
            // grid, in the degenerate single-share default - are
            // bit-identical to the pre-CBP evaluation.
            const double l_eff =
                system.mem_latency_s *
                arch::bw_latency_scale(system.bw, g.min_shares + bi);
            for (int w = 1; w <= g.max_ways; ++w, ++idx) {
              const arch::IntervalTiming t = arch::evaluate_interval(
                  chars, st.memory_truth(c, w, l_eff), c,
                  arch::VfTable::frequency_hz(f));
              g.timing[idx] = t;
              const power::IntervalEnergy e = power.interval_energy(
                  c, arch::VfTable::point(f), t, st.interval_instructions,
                  st.dram_accesses(w));
              g.energy[idx] = e;
              // SoA companions: copies of the struct fields, so every scalar
              // accessor is bit-identical to the struct lookup.
              g.total_s[idx] = t.total_seconds;
              g.mem_s[idx] = t.mem_seconds;
              g.core_j[idx] = e.core_j();
              g.total_j[idx] = e.total_j();
            }
          }
        }
      }
      g.baseline_time_s = g.timing[flat_index(g, base)].total_seconds;
    }

    // Per-app aggregates, accumulated in the same phase order (and with the
    // same arithmetic) as the former per-query loops, for bit-identity.
    AppAggregates& agg = aggregates_[static_cast<std::size_t>(a)];
    const int agg_ways = per_app.empty() ? 1 : per_app.front().max_ways();
    agg.mpki.assign(static_cast<std::size_t>(agg_ways), 0.0);
    for (int w = 1; w <= agg_ways; ++w) {
      double acc = 0.0;
      for (std::size_t ph = 0; ph < per_app.size(); ++ph) {
        const double weight = suite.app(a).phases[ph].weight;
        acc += weight * per_app[ph].mpki(w);
      }
      agg.mpki[static_cast<std::size_t>(w - 1)] = acc;
    }
    const int wb = system.llc.ways_per_core_baseline;
    for (int c_idx = 0; c_idx < arch::kNumCoreSizes; ++c_idx) {
      double acc = 0.0;
      for (std::size_t ph = 0; ph < per_app.size(); ++ph) {
        const double weight = suite.app(a).phases[ph].weight;
        acc += weight * per_app[ph].mlp_true(arch::kAllCoreSizes[c_idx], wb);
      }
      agg.mlp[static_cast<std::size_t>(c_idx)] = acc;
    }
  }
}

const EvalTable::PhaseGrid& EvalTable::grid(int app, int phase) const {
  QOSRM_CHECK(app >= 0 && app < static_cast<int>(grids_.size()));
  const auto& per_app = grids_[static_cast<std::size_t>(app)];
  QOSRM_CHECK(phase >= 0 && phase < static_cast<int>(per_app.size()));
  return per_app[static_cast<std::size_t>(phase)];
}

std::size_t EvalTable::flat_index(const PhaseGrid& g, const Setting& s) {
  // Ways and shares clamp like PhaseStats accessors do; c and f are hard
  // grid bounds.
  const int w = std::clamp(s.w, 1, g.max_ways);
  const int b = std::clamp(s.b, g.min_shares, g.min_shares + g.num_shares - 1);
  QOSRM_CHECK(s.f_idx >= 0 && s.f_idx < arch::VfTable::kNumPoints);
  const auto c_idx = static_cast<std::size_t>(arch::core_size_index(s.c));
  return ((c_idx * static_cast<std::size_t>(arch::VfTable::kNumPoints) +
           static_cast<std::size_t>(s.f_idx)) *
              static_cast<std::size_t>(g.num_shares) +
          static_cast<std::size_t>(b - g.min_shares)) *
             static_cast<std::size_t>(g.max_ways) +
         static_cast<std::size_t>(w - 1);
}

std::size_t EvalTable::row_offset(const PhaseGrid& g, arch::CoreSize c,
                                  int f_idx, int b) {
  QOSRM_CHECK(f_idx >= 0 && f_idx < arch::VfTable::kNumPoints);
  const int bc = std::clamp(b, g.min_shares, g.min_shares + g.num_shares - 1);
  const auto c_idx = static_cast<std::size_t>(arch::core_size_index(c));
  return ((c_idx * static_cast<std::size_t>(arch::VfTable::kNumPoints) +
           static_cast<std::size_t>(f_idx)) *
              static_cast<std::size_t>(g.num_shares) +
          static_cast<std::size_t>(bc - g.min_shares)) *
         static_cast<std::size_t>(g.max_ways);
}

const arch::IntervalTiming& EvalTable::timing(int app, int phase,
                                              const Setting& s) const {
  const PhaseGrid& g = grid(app, phase);
  return g.timing[flat_index(g, s)];
}

double EvalTable::total_seconds(int app, int phase, const Setting& s) const {
  const PhaseGrid& g = grid(app, phase);
  return g.total_s[flat_index(g, s)];
}

double EvalTable::mem_seconds(int app, int phase, const Setting& s) const {
  const PhaseGrid& g = grid(app, phase);
  return g.mem_s[flat_index(g, s)];
}

double EvalTable::core_joules(int app, int phase, const Setting& s) const {
  const PhaseGrid& g = grid(app, phase);
  return g.core_j[flat_index(g, s)];
}

double EvalTable::total_joules(int app, int phase, const Setting& s) const {
  const PhaseGrid& g = grid(app, phase);
  return g.total_j[flat_index(g, s)];
}

std::span<const double> EvalTable::total_seconds_row(int app, int phase,
                                                     arch::CoreSize c,
                                                     int f_idx, int b) const {
  const PhaseGrid& g = grid(app, phase);
  return {g.total_s.data() + row_offset(g, c, f_idx, b),
          static_cast<std::size_t>(g.max_ways)};
}

std::span<const double> EvalTable::mem_seconds_row(int app, int phase,
                                                   arch::CoreSize c,
                                                   int f_idx, int b) const {
  const PhaseGrid& g = grid(app, phase);
  return {g.mem_s.data() + row_offset(g, c, f_idx, b),
          static_cast<std::size_t>(g.max_ways)};
}

std::int64_t EvalTable::interval_key(int app, int phase,
                                     const Setting& s) const {
  const PhaseGrid& g = grid(app, phase);
  return g.key_off + static_cast<std::int64_t>(flat_index(g, s));
}

const power::IntervalEnergy& EvalTable::energy(int app, int phase,
                                               const Setting& s) const {
  const PhaseGrid& g = grid(app, phase);
  return g.energy[flat_index(g, s)];
}

double EvalTable::baseline_time(int app, int phase) const {
  return grid(app, phase).baseline_time_s;
}

double EvalTable::app_mpki(int app, int w) const {
  QOSRM_CHECK(app >= 0 && app < static_cast<int>(aggregates_.size()));
  const auto& mpki = aggregates_[static_cast<std::size_t>(app)].mpki;
  const int clamped = std::clamp(w, 1, static_cast<int>(mpki.size()));
  return mpki[static_cast<std::size_t>(clamped - 1)];
}

double EvalTable::app_mlp(int app, arch::CoreSize c) const {
  QOSRM_CHECK(app >= 0 && app < static_cast<int>(aggregates_.size()));
  return aggregates_[static_cast<std::size_t>(app)]
      .mlp[static_cast<std::size_t>(arch::core_size_index(c))];
}

}  // namespace qosrm::workload
