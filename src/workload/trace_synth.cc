#include "workload/trace_synth.hh"

#include <algorithm>
#include <cmath>

#include "cache/lru_stack.hh"
#include "common/check.hh"
#include "common/rng.hh"

namespace qosrm::workload {

namespace {

/// Draws a strictly positive instruction gap with the given mean
/// (geometric + 1, so consecutive loads never share an index).
std::uint64_t draw_gap(Rng& rng, double mean) {
  if (mean <= 1.0) return 1;
  const double p = 1.0 / mean;
  return 1 + rng.geometric(p);
}

}  // namespace

SynthesizedTrace synthesize_trace(const PhaseParams& phase,
                                  const TraceSynthConfig& config,
                                  std::uint64_t seed) {
  QOSRM_CHECK(config.sets > 0);
  QOSRM_CHECK(config.max_ways > 0);
  QOSRM_CHECK(phase.lpki > 0.0);
  QOSRM_CHECK(phase.burst_size >= 1.0);
  QOSRM_CHECK(phase.reuse.total() > 0.0);

  Rng rng(seed);
  const auto n_target = static_cast<std::size_t>(
      std::max(1.0, phase.lpki * config.represented_instructions / 1000.0));

  // Mean instruction budget per burst so the overall density matches lpki.
  const double mean_gap = 1000.0 / phase.lpki;
  const double intra_gap = std::min(phase.intra_gap, mean_gap);
  // Instructions consumed inside one burst of B loads: (B-1) intra gaps;
  // the remainder of the burst budget becomes the inter-burst gap.
  const double burst_budget = phase.burst_size * mean_gap;
  const double inter_gap =
      std::max(1.0, burst_budget - intra_gap * (phase.burst_size - 1.0));

  // Reuse-position sampling weights: 16 recency positions + cold.
  std::vector<double> weights(17, 0.0);
  for (int r = 0; r < 16; ++r) weights[static_cast<std::size_t>(r)] =
      phase.reuse.hit_weight[static_cast<std::size_t>(r)];
  weights[16] = phase.reuse.cold_weight;

  // Shadow tag directory: realizes a sampled reuse position exactly by
  // re-touching the tag at that position.
  std::vector<cache::LruStack> shadow;
  shadow.reserve(static_cast<std::size_t>(config.sets));
  for (int s = 0; s < config.sets; ++s) shadow.emplace_back(config.max_ways);

  SynthesizedTrace out;
  out.accesses.reserve(n_target);

  std::uint64_t inst = 0;
  std::uint64_t next_tag = 1;  // unique cold tags

  while (out.accesses.size() < n_target) {
    const auto burst_len = static_cast<std::size_t>(std::max<std::int64_t>(
        1, rng.uniform_int(1, 2 * static_cast<std::int64_t>(
                                  std::llround(phase.burst_size)) -
                                  1)));
    for (std::size_t k = 0; k < burst_len && out.accesses.size() < n_target; ++k) {
      inst += draw_gap(rng, k == 0 ? inter_gap : intra_gap);

      cache::LlcAccess a;
      a.inst_index = inst;
      a.set = static_cast<std::uint32_t>(rng.uniform_u64(
          static_cast<std::uint64_t>(config.sets)));
      a.depends_on_prev = k > 0 && rng.bernoulli(phase.dep_frac);

      const std::size_t pick = rng.weighted_choice(weights);
      cache::LruStack& stack = shadow[a.set];
      if (pick >= 16 || static_cast<int>(pick) >= stack.occupancy()) {
        a.tag = next_tag++;  // cold / first touch
      } else {
        a.tag = stack.tag_at(static_cast<int>(pick));
      }
      stack.access(a.tag);
      out.accesses.push_back(a);
    }
  }

  out.represented_instructions =
      std::max(config.represented_instructions, static_cast<double>(inst));
  return out;
}

}  // namespace qosrm::workload
