#include "workload/sim_db.hh"

#include <utility>

#include "common/check.hh"
#include "common/thread_pool.hh"

namespace qosrm::workload {

SimDb::SimDb(const SpecSuite& suite, const arch::SystemConfig& system,
             const power::PowerModel& power, const SimDbOptions& options)
    : suite_(&suite), system_(system), power_(power), phase_opts_(options.phase) {
  stats_.resize(static_cast<std::size_t>(suite.size()));

  // Flatten (app, phase) pairs for the parallel sweep.
  std::vector<std::pair<int, int>> jobs;
  for (int a = 0; a < suite.size(); ++a) {
    const auto n = static_cast<std::size_t>(suite.app(a).num_phases());
    stats_[static_cast<std::size_t>(a)].resize(n);
    for (std::size_t ph = 0; ph < n; ++ph) {
      jobs.emplace_back(a, static_cast<int>(ph));
    }
  }

  const PhaseStatsOptions phase_opts = options.phase;
  auto run_job = [&](std::size_t j) {
    const auto [a, ph] = jobs[j];
    const AppProfile& app = suite.app(a);
    const std::uint64_t seed =
        app.trace_seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(ph + 1);
    stats_[static_cast<std::size_t>(a)][static_cast<std::size_t>(ph)] =
        characterize_phase(app.phases[static_cast<std::size_t>(ph)], system_,
                           phase_opts, seed);
  };

  if (options.threads == 1) {
    for (std::size_t j = 0; j < jobs.size(); ++j) run_job(j);
  } else {
    ThreadPool pool(options.threads == 0
                        ? 0
                        : static_cast<std::size_t>(options.threads));
    parallel_for(pool, 0, jobs.size(), run_job);
  }

  table_ = EvalTable(suite, system_, power_, stats_);
}

SimDb::SimDb(const SpecSuite& suite, const arch::SystemConfig& system,
             const power::PowerModel& power, const PhaseStatsOptions& phase_options,
             std::vector<std::vector<PhaseStats>> stats)
    : suite_(&suite),
      system_(system),
      power_(power),
      phase_opts_(phase_options),
      stats_(std::move(stats)) {
  QOSRM_CHECK(static_cast<int>(stats_.size()) == suite.size());
  for (int a = 0; a < suite.size(); ++a) {
    QOSRM_CHECK(static_cast<int>(stats_[static_cast<std::size_t>(a)].size()) ==
                suite.app(a).num_phases());
  }
  table_ = EvalTable(suite, system_, power_, stats_);
}

const PhaseStats& SimDb::stats(int app, int phase) const {
  QOSRM_CHECK(app >= 0 && app < suite_->size());
  const auto& per_app = stats_[static_cast<std::size_t>(app)];
  QOSRM_CHECK(phase >= 0 && phase < static_cast<int>(per_app.size()));
  return per_app[static_cast<std::size_t>(phase)];
}

int SimDb::num_phases(int app) const {
  QOSRM_CHECK(app >= 0 && app < suite_->size());
  return static_cast<int>(stats_[static_cast<std::size_t>(app)].size());
}

}  // namespace qosrm::workload
