#include "workload/sim_db.hh"

#include <utility>

#include "common/check.hh"
#include "common/thread_pool.hh"

namespace qosrm::workload {

Setting baseline_setting(const arch::SystemConfig& system) {
  Setting s;
  s.c = arch::kBaselineCoreSize;
  s.f_idx = arch::VfTable::kBaselineIndex;
  s.w = system.llc.ways_per_core_baseline;
  return s;
}

SimDb::SimDb(const SpecSuite& suite, const arch::SystemConfig& system,
             const power::PowerModel& power, const SimDbOptions& options)
    : suite_(&suite), system_(system), power_(power) {
  stats_.resize(static_cast<std::size_t>(suite.size()));

  // Flatten (app, phase) pairs for the parallel sweep.
  std::vector<std::pair<int, int>> jobs;
  for (int a = 0; a < suite.size(); ++a) {
    const auto n = static_cast<std::size_t>(suite.app(a).num_phases());
    stats_[static_cast<std::size_t>(a)].resize(n);
    for (std::size_t ph = 0; ph < n; ++ph) {
      jobs.emplace_back(a, static_cast<int>(ph));
    }
  }

  const PhaseStatsOptions phase_opts = options.phase;
  auto run_job = [&](std::size_t j) {
    const auto [a, ph] = jobs[j];
    const AppProfile& app = suite.app(a);
    const std::uint64_t seed =
        app.trace_seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(ph + 1);
    stats_[static_cast<std::size_t>(a)][static_cast<std::size_t>(ph)] =
        characterize_phase(app.phases[static_cast<std::size_t>(ph)], system_,
                           phase_opts, seed);
  };

  if (options.threads == 1) {
    for (std::size_t j = 0; j < jobs.size(); ++j) run_job(j);
  } else {
    ThreadPool pool(options.threads == 0
                        ? 0
                        : static_cast<std::size_t>(options.threads));
    parallel_for(pool, 0, jobs.size(), run_job);
  }
}

const PhaseStats& SimDb::stats(int app, int phase) const {
  QOSRM_CHECK(app >= 0 && app < suite_->size());
  const auto& per_app = stats_[static_cast<std::size_t>(app)];
  QOSRM_CHECK(phase >= 0 && phase < static_cast<int>(per_app.size()));
  return per_app[static_cast<std::size_t>(phase)];
}

int SimDb::num_phases(int app) const {
  QOSRM_CHECK(app >= 0 && app < suite_->size());
  return static_cast<int>(stats_[static_cast<std::size_t>(app)].size());
}

arch::IntervalTiming SimDb::timing(int app, int phase, const Setting& s) const {
  const PhaseStats& st = stats(app, phase);
  return arch::evaluate_interval(st.characteristics(),
                                 st.memory_truth(s.c, s.w, system_.mem_latency_s),
                                 s.c, arch::VfTable::frequency_hz(s.f_idx));
}

power::IntervalEnergy SimDb::energy(int app, int phase, const Setting& s) const {
  const PhaseStats& st = stats(app, phase);
  const arch::IntervalTiming t = timing(app, phase, s);
  // Memory energy covers both fills and writebacks (paper Eq. 5's MA).
  return power_.interval_energy(s.c, arch::VfTable::point(s.f_idx), t,
                                st.interval_instructions, st.dram_accesses(s.w));
}

double SimDb::baseline_time(int app, int phase) const {
  return timing(app, phase, baseline_setting(system_)).total_seconds;
}

double SimDb::app_mpki(int app, int w) const {
  const int phases = num_phases(app);
  double acc = 0.0;
  for (int ph = 0; ph < phases; ++ph) {
    const double weight =
        suite_->app(app).phases[static_cast<std::size_t>(ph)].weight;
    acc += weight * stats(app, ph).mpki(w);
  }
  return acc;
}

double SimDb::app_mlp(int app, arch::CoreSize c) const {
  const int phases = num_phases(app);
  const int w = system_.llc.ways_per_core_baseline;
  double acc = 0.0;
  for (int ph = 0; ph < phases; ++ph) {
    const double weight =
        suite_->app(app).phases[static_cast<std::size_t>(ph)].weight;
    acc += weight * stats(app, ph).mlp_true(c, w);
  }
  return acc;
}

}  // namespace qosrm::workload
