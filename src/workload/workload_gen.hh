// Scenario-driven workload generation (paper Sections II and IV-C).
//
// Two-application category mixes partition into four scenarios (Fig. 1):
//   Scenario 1: RM3 expected to beat RM2     - any mix involving CS-PS, plus
//                                              the CI-PS x CS-PI mix
//   Scenario 2: RM2 and RM3 comparable       - CS-PI with CS-PI or CI-PI
//   Scenario 3: only RM3 effective           - CI-PS with CI-PS or CI-PI
//   Scenario 4: neither RM effective         - CI-PI with CI-PI
//
// Multi-core workloads extend a mix: each core of the first half runs an
// application drawn from the first category, each core of the second half
// from the second category (paper uses Python random.choice; we use a
// deterministic, coverage-encouraging equivalent).
#ifndef QOSRM_WORKLOAD_WORKLOAD_GEN_HH
#define QOSRM_WORKLOAD_WORKLOAD_GEN_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "workload/spec_suite.hh"

namespace qosrm::workload {

enum class Scenario : int { One = 1, Two = 2, Three = 3, Four = 4 };

inline constexpr std::array<Scenario, 4> kAllScenarios = {
    Scenario::One, Scenario::Two, Scenario::Three, Scenario::Four};

/// Scenario of an (unordered) category mix.
[[nodiscard]] Scenario scenario_of(Category a, Category b) noexcept;

/// Fig. 1 derived data: category populations, pairwise mix probabilities and
/// scenario weights (paper: 47 / 22.1 / 22.1 / 8.8 %).
struct MixTable {
  std::array<int, kNumCategories> population{};
  std::array<double, kNumCategories> category_prob{};
  /// pair_prob[a][b] = P(App1 in a) * P(App2 in b) (the paper displays the
  /// upper triangle of this matrix).
  std::array<std::array<double, kNumCategories>, kNumCategories> pair_prob{};
  /// Total probability mass of each scenario over ordered pairs (sums to 1).
  std::array<double, 4> scenario_weight{};
};

/// Builds the mix table from category populations.
[[nodiscard]] MixTable compute_mix_table(const std::array<int, kNumCategories>& population);

/// One multiprogrammed workload.
struct WorkloadMix {
  std::string name;  ///< e.g. "4Core-W7"
  Scenario scenario = Scenario::One;
  std::vector<int> app_ids;  ///< one application per core
};

struct WorkloadGenOptions {
  int cores = 4;
  int per_scenario = 6;  ///< paper: six workloads per scenario
  std::uint64_t seed = 2020;
};

/// Generates per-scenario workload suites, named {cores}Core-W{k} with k
/// running 1..4*per_scenario in scenario order, exactly like the paper's
/// 4Core-W1..W24 grouping. Selection prefers not-yet-used applications of
/// the target category so the suite covers each application at least once
/// where population allows (paper repeats generation until that holds).
[[nodiscard]] std::vector<WorkloadMix> generate_workloads(
    const SpecSuite& suite, const WorkloadGenOptions& options);

/// Scenario-preserving replication of one mix to `factor` times its core
/// count: each category half is repeated `factor` times in place, so an
/// 8/16-core scaled workload keeps the 4-core mix's category composition
/// (and therefore its scenario) exactly. The name gains an "x{factor}"
/// suffix ("4Core-W7" -> "4Core-W7x2"), so scaled mixes can never alias a
/// natively generated suite in sweep fingerprints.
[[nodiscard]] WorkloadMix replicate_mix(const WorkloadMix& mix, int factor);

/// replicate_mix over a whole suite, preserving order. factor == 1 returns
/// the input unchanged (no name suffix).
[[nodiscard]] std::vector<WorkloadMix> replicate_workloads(
    const std::vector<WorkloadMix>& mixes, int factor);

}  // namespace qosrm::workload

#endif  // QOSRM_WORKLOAD_WORKLOAD_GEN_HH
