#include "workload/app_profile.hh"

#include <algorithm>
#include <cmath>

#include "common/check.hh"
#include "common/rng.hh"

namespace qosrm::workload {

double StackProfile::total() const noexcept {
  double t = cold_weight;
  for (const double w : hit_weight) t += w;
  return t;
}

StackProfile make_stack_profile(double hot, double sensitive, double center,
                                double width, double cold) {
  QOSRM_CHECK(hot >= 0.0 && sensitive >= 0.0 && cold >= 0.0);
  QOSRM_CHECK(width > 0.0);
  StackProfile p;
  p.cold_weight = cold;
  // Hot mass split across the two MRU positions.
  p.hit_weight[0] += hot * 0.7;
  p.hit_weight[1] += hot * 0.3;
  // Sensitive mass: Gaussian bump over recency positions 2..15. Accesses in
  // this band hit only when the allocation exceeds their recency position,
  // which is what produces a steep miss curve around `center` ways.
  double bump_total = 0.0;
  std::array<double, 16> bump{};
  for (int r = 2; r < 16; ++r) {
    const double x = (static_cast<double>(r) - center) / width;
    bump[static_cast<std::size_t>(r)] = std::exp(-0.5 * x * x);
    bump_total += bump[static_cast<std::size_t>(r)];
  }
  QOSRM_CHECK(bump_total > 0.0);
  for (int r = 2; r < 16; ++r) {
    p.hit_weight[static_cast<std::size_t>(r)] +=
        sensitive * bump[static_cast<std::size_t>(r)] / bump_total;
  }
  return p;
}

std::vector<int> make_phase_sequence(int num_phases, const std::vector<double>& weights,
                                     int intervals, double stay, std::uint64_t seed) {
  QOSRM_CHECK(num_phases > 0);
  QOSRM_CHECK(static_cast<int>(weights.size()) == num_phases);
  QOSRM_CHECK(intervals > 0);
  QOSRM_CHECK(stay >= 0.0 && stay < 1.0);

  Rng rng(seed);
  std::vector<int> seq;
  seq.reserve(static_cast<std::size_t>(intervals));
  int current = static_cast<int>(rng.weighted_choice(weights));
  for (int i = 0; i < intervals; ++i) {
    seq.push_back(current);
    if (!rng.bernoulli(stay)) {
      current = static_cast<int>(rng.weighted_choice(weights));
    }
  }
  return seq;
}

}  // namespace qosrm::workload
