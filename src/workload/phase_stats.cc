#include "workload/phase_stats.hh"

#include <algorithm>

#include "cache/arrival.hh"
#include "cache/miss_curve.hh"
#include "cache/mlp_atd.hh"
#include "cache/mlp_oracle.hh"
#include "cache/recency.hh"
#include "common/check.hh"

namespace qosrm::workload {

double PhaseStats::mpki(int w) const noexcept {
  if (interval_instructions <= 0.0) return 0.0;
  const int clamped = std::clamp(w, 1, max_ways());
  return misses[static_cast<std::size_t>(clamped - 1)] /
         (interval_instructions / 1000.0);
}

double PhaseStats::mlp_true(arch::CoreSize c, int w) const noexcept {
  const int clamped = std::clamp(w, 1, max_ways());
  const double m = misses[static_cast<std::size_t>(clamped - 1)];
  const double lm = lm_true[static_cast<std::size_t>(arch::core_size_index(c))]
                           [static_cast<std::size_t>(clamped - 1)];
  if (lm <= 0.0) return 1.0;
  return std::max(1.0, m / lm);
}

double PhaseStats::writebacks(int w) const noexcept {
  const int clamped = std::clamp(w, 1, max_ways());
  return misses[static_cast<std::size_t>(clamped - 1)] * write_frac;
}

double PhaseStats::dram_accesses(int w) const noexcept {
  const int clamped = std::clamp(w, 1, max_ways());
  return misses[static_cast<std::size_t>(clamped - 1)] * (1.0 + write_frac);
}

arch::IntervalCharacteristics PhaseStats::characteristics() const noexcept {
  arch::IntervalCharacteristics chars;
  chars.instructions = interval_instructions;
  chars.ilp = ilp;
  chars.cpi_branch = cpi_branch;
  chars.cpi_private_cache = cpi_cache;
  return chars;
}

arch::MemoryBehaviour PhaseStats::memory_truth(arch::CoreSize c, int w,
                                               double mem_latency_s) const noexcept {
  const int clamped = std::clamp(w, 1, max_ways());
  arch::MemoryBehaviour mem;
  mem.llc_misses = misses[static_cast<std::size_t>(clamped - 1)];
  mem.leading_misses = lm_true[static_cast<std::size_t>(arch::core_size_index(c))]
                              [static_cast<std::size_t>(clamped - 1)];
  mem.mem_latency_s = mem_latency_s;
  return mem;
}

PhaseStats characterize_phase(const PhaseParams& phase,
                              const arch::SystemConfig& system,
                              const PhaseStatsOptions& options, std::uint64_t seed) {
  const SynthesizedTrace trace = synthesize_trace(phase, options.synth, seed);
  const auto& accesses = trace.accesses;
  const int max_ways = options.synth.max_ways;

  PhaseStats stats;
  stats.interval_instructions = system.interval_instructions;
  stats.scale = system.interval_instructions / trace.represented_instructions;
  stats.ilp = phase.ilp;
  stats.cpi_branch = phase.cpi_branch;
  stats.cpi_cache = phase.cpi_cache;
  stats.write_frac = phase.write_frac;
  stats.llc_accesses = static_cast<double>(accesses.size()) * stats.scale;

  // 1. Exact program-order recency annotation -> ground-truth miss curve.
  cache::RecencyProfiler profiler(options.synth.sets, max_ways);
  const std::vector<std::uint8_t> recency = profiler.annotate(accesses);
  const cache::MissCurve curve = cache::MissCurve::from_recency(recency, max_ways);
  stats.misses.resize(static_cast<std::size_t>(max_ways));
  for (int w = 1; w <= max_ways; ++w) {
    stats.misses[static_cast<std::size_t>(w - 1)] = curve.misses(w) * stats.scale;
  }

  // 2. Oracle leading misses per core size and allocation (ground truth).
  for (int c_idx = 0; c_idx < arch::kNumCoreSizes; ++c_idx) {
    const arch::CoreSize c = arch::kAllCoreSizes[c_idx];
    std::vector<double> lm =
        cache::MlpOracle::leading_miss_curve(accesses, recency, c, 1, max_ways);
    for (double& v : lm) v *= stats.scale;
    stats.lm_true[static_cast<std::size_t>(c_idx)] = std::move(lm);
  }

  // 3. Hardware estimate: emulate the out-of-order arrival stream at the
  //    baseline configuration and run the MLP-ATD counters over it.
  cache::ArrivalParams arrival;
  arrival.core = arch::kBaselineCoreSize;
  arrival.ways = options.arrival_ways;
  arrival.dispatch_ipc = options.arrival_dispatch_ipc;
  arrival.mem_latency_cycles = options.mem_latency_cycles;
  const std::vector<std::uint32_t> order =
      cache::emulate_arrival_order(accesses, recency, arrival);

  cache::MlpAtdConfig atd_cfg;
  atd_cfg.sets = options.synth.sets;
  atd_cfg.max_ways = max_ways;
  atd_cfg.min_ways = 1;
  atd_cfg.sample_period = options.atd_sample_period;
  atd_cfg.index_bits = options.mlp_index_bits;
  cache::MlpAtd mlp_atd(atd_cfg);
  for (const std::uint32_t pos : order) mlp_atd.observe(accesses[pos]);

  for (int c_idx = 0; c_idx < arch::kNumCoreSizes; ++c_idx) {
    const arch::CoreSize c = arch::kAllCoreSizes[c_idx];
    std::vector<double> lm(static_cast<std::size_t>(max_ways), 0.0);
    for (int w = 1; w <= max_ways; ++w) {
      lm[static_cast<std::size_t>(w - 1)] = mlp_atd.leading_misses(c, w) * stats.scale;
    }
    stats.lm_atd[static_cast<std::size_t>(c_idx)] = std::move(lm);
  }

  return stats;
}

}  // namespace qosrm::workload
