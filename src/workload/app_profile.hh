// Synthetic application model.
//
// The paper evaluates on SPEC CPU2006 SimPoint phases; this library replaces
// them with synthetic applications whose phases are described by a compact
// parameter set controlling exactly the properties the paper's analysis
// depends on:
//
//   * LLC reuse profile  -> cache sensitivity (MPKI as a function of ways)
//   * load burstiness + dependence chains + instruction gaps
//                        -> memory-level parallelism and its growth with ROB
//   * inherent ILP       -> compute-time scaling with issue width
//   * branch / private-cache stall components -> the frequency-scalable
//                          non-memory part of execution time (Eq. 1's T1)
//
// Each application is a weighted set of phases plus a deterministic phase
// sequence (the SimPoint trace of paper Fig. 5).
#ifndef QOSRM_WORKLOAD_APP_PROFILE_HH
#define QOSRM_WORKLOAD_APP_PROFILE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace qosrm::workload {

/// Relative mass of LLC accesses per reuse (recency) position. hit_weight[r]
/// is the share of accesses that re-touch the r-th most recently used block
/// of their set; cold_weight is the share of first-touch (streaming)
/// accesses that miss at every allocation.
struct StackProfile {
  std::array<double, 16> hit_weight{};
  double cold_weight = 0.0;

  [[nodiscard]] double total() const noexcept;
};

/// Builds a profile with three components: `hot` mass at recency 0-1 (always
/// hits), a bump of `sensitive` mass centred at recency `center` with the
/// given `width` (this is what makes an application cache sensitive), and
/// `cold` streaming mass.
[[nodiscard]] StackProfile make_stack_profile(double hot, double sensitive,
                                              double center, double width,
                                              double cold);

/// Parameters of one execution phase.
struct PhaseParams {
  std::string name;
  double weight = 1.0;  ///< SimPoint weight within the application

  // -- LLC access stream ---------------------------------------------------
  double lpki = 4.0;        ///< LLC accesses per kilo-instruction
  StackProfile reuse{};     ///< reuse profile (cache sensitivity)
  double dep_frac = 0.0;    ///< P(load depends on previous load in burst)
  double write_frac = 0.25; ///< fraction of blocks dirtied (writeback traffic)
  double burst_size = 4.0;  ///< mean loads per burst (controls peak MLP)
  double intra_gap = 30.0;  ///< mean instruction gap inside a burst
                            ///< (controls how much ROB a burst spans)

  // -- core-side characteristics -------------------------------------------
  double ilp = 2.0;          ///< inherent instruction-level parallelism
  double cpi_branch = 0.05;  ///< branch-stall cycles per instruction
  double cpi_cache = 0.10;   ///< private-cache stall cycles per instruction
};

/// A complete application: phases, weights and the interval-granular phase
/// sequence driving the RM simulator.
struct AppProfile {
  std::string name;
  std::vector<PhaseParams> phases;
  /// phase_sequence[i] = phase index executed in interval i; the application
  /// finishes after phase_sequence.size() intervals and restarts.
  std::vector<int> phase_sequence;
  std::uint64_t trace_seed = 1;

  [[nodiscard]] int num_phases() const noexcept {
    return static_cast<int>(phases.size());
  }
  [[nodiscard]] int length_intervals() const noexcept {
    return static_cast<int>(phase_sequence.size());
  }
};

/// Builds a Markov-style phase sequence of `intervals` entries over
/// `num_phases` phases: stays in the current phase with probability `stay`,
/// otherwise jumps to a phase drawn by `weights`. Deterministic in `seed`.
[[nodiscard]] std::vector<int> make_phase_sequence(int num_phases,
                                                   const std::vector<double>& weights,
                                                   int intervals, double stay,
                                                   std::uint64_t seed);

}  // namespace qosrm::workload

#endif  // QOSRM_WORKLOAD_APP_PROFILE_HH
