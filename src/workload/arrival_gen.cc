#include "workload/arrival_gen.hh"

#include <cmath>
#include <numbers>

#include "common/binary_io.hh"
#include "common/check.hh"
#include "common/rng.hh"
#include "common/str.hh"

namespace qosrm::workload {
namespace {

/// Exponential draw with the given rate; uniform() < 1 keeps the log finite.
double exp_draw(Rng& rng, double rate) {
  return -std::log(1.0 - rng.uniform()) / rate;
}

void validate(const ArrivalGenOptions& o) {
  QOSRM_CHECK_MSG(std::isfinite(o.load) && o.load > 0.0, "load must be > 0");
  QOSRM_CHECK_MSG(o.cores > 0, "cores must be > 0");
  QOSRM_CHECK_MSG(o.count > 0, "arrival count must be > 0");
  QOSRM_CHECK_MSG(std::isfinite(o.mean_service_time) && o.mean_service_time > 0.0,
                  "mean_service_time must be > 0");
  QOSRM_CHECK_MSG(o.num_apps > 0, "num_apps must be > 0");
  QOSRM_CHECK_MSG(o.demand_min > 0 && o.demand_max >= o.demand_min,
                  "demand range must satisfy 0 < demand_min <= demand_max");
  QOSRM_CHECK_MSG(o.burst_mean_length >= 1.0, "burst_mean_length must be >= 1");
  QOSRM_CHECK_MSG(o.burst_rate_factor > 1.0, "burst_rate_factor must be > 1");
  QOSRM_CHECK_MSG(o.diurnal_amplitude >= 0.0 && o.diurnal_amplitude <= 1.0,
                  "diurnal_amplitude must be in [0, 1]");
  QOSRM_CHECK_MSG(o.diurnal_cycles > 0.0, "diurnal_cycles must be > 0");
}

}  // namespace

const char* arrival_pattern_name(ArrivalPattern pattern) noexcept {
  switch (pattern) {
    case ArrivalPattern::Poisson: return "poisson";
    case ArrivalPattern::Bursty: return "bursty";
    case ArrivalPattern::Diurnal: return "diurnal";
  }
  return "?";
}

std::vector<ArrivalPattern> parse_arrival_patterns(const std::string& spec) {
  std::vector<ArrivalPattern> patterns;
  for (const std::string& name : split_csv_list(spec)) {
    QOSRM_CHECK_MSG(!name.empty(),
                    "empty --arrivals entry (an empty list or stray comma "
                    "would silently sweep a zero-row or shortened grid)");
    if (name == "poisson") {
      patterns.push_back(ArrivalPattern::Poisson);
    } else if (name == "bursty") {
      patterns.push_back(ArrivalPattern::Bursty);
    } else if (name == "diurnal") {
      patterns.push_back(ArrivalPattern::Diurnal);
    } else {
      QOSRM_CHECK_MSG(false, "unknown arrival pattern (want poisson, bursty "
                             "or diurnal)");
    }
  }
  return patterns;
}

void generate_arrivals_into(const ArrivalGenOptions& options, ArrivalTrace* out) {
  validate(options);
  QOSRM_CHECK(out != nullptr);

  const double lambda =
      options.load * static_cast<double>(options.cores) / options.mean_service_time;
  Rng rng(options.seed);

  out->events.clear();
  out->events.reserve(options.count);

  // Diurnal thinning parameters: the nominal trace spans count/lambda
  // seconds, over which `diurnal_cycles` full sine periods fit.
  const double period =
      (static_cast<double>(options.count) / lambda) / options.diurnal_cycles;
  const double peak_rate = lambda * (1.0 + options.diurnal_amplitude);

  // Bursty gap calibration: within a burst arrivals come at factor*lambda;
  // a burst holds Geometric(1/L) + 1 arrivals (mean L). Idle gaps of mean
  // L*(1 - 1/factor)/lambda restore the long-run rate to exactly lambda.
  const double burst_end_p = 1.0 / options.burst_mean_length;
  const double gap_mean = options.burst_mean_length *
                          (1.0 - 1.0 / options.burst_rate_factor) / lambda;

  double t = 0.0;
  while (out->events.size() < options.count) {
    switch (options.pattern) {
      case ArrivalPattern::Poisson:
        t += exp_draw(rng, lambda);
        break;
      case ArrivalPattern::Bursty:
        t += exp_draw(rng, options.burst_rate_factor * lambda);
        break;
      case ArrivalPattern::Diurnal: {
        t += exp_draw(rng, peak_rate);
        const double rate =
            lambda * (1.0 + options.diurnal_amplitude *
                                std::sin(2.0 * std::numbers::pi * t / period));
        if (rng.uniform() * peak_rate >= rate) continue;  // thinned out
        break;
      }
    }
    ArrivalEvent event;
    event.time_s = t;
    event.app = static_cast<int>(rng.uniform_u64(
        static_cast<std::uint64_t>(options.num_apps)));
    event.demand_intervals =
        static_cast<int>(rng.uniform_int(options.demand_min, options.demand_max));
    out->events.push_back(event);
    if (options.pattern == ArrivalPattern::Bursty && rng.bernoulli(burst_end_p)) {
      t += exp_draw(rng, 1.0 / gap_mean);
    }
  }
}

ArrivalTrace generate_arrivals(const ArrivalGenOptions& options) {
  ArrivalTrace trace;
  generate_arrivals_into(options, &trace);
  return trace;
}

std::uint64_t arrival_gen_fingerprint(const ArrivalGenOptions& o) noexcept {
  Fnv1a64 hash;
  hash.add_u32(static_cast<std::uint32_t>(o.pattern));
  hash.add_f64(o.load);
  hash.add_u32(static_cast<std::uint32_t>(o.cores));
  hash.add_u64(o.count);
  hash.add_u64(o.seed);
  hash.add_f64(o.mean_service_time);
  hash.add_u32(static_cast<std::uint32_t>(o.num_apps));
  hash.add_u32(static_cast<std::uint32_t>(o.demand_min));
  hash.add_u32(static_cast<std::uint32_t>(o.demand_max));
  hash.add_f64(o.burst_mean_length);
  hash.add_f64(o.burst_rate_factor);
  hash.add_f64(o.diurnal_amplitude);
  hash.add_f64(o.diurnal_cycles);
  return hash.digest();
}

}  // namespace qosrm::workload
