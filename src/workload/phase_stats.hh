// Per-phase characterization: runs the canonical trace of a phase through
// the cache substrate once and extracts everything the timing/energy models
// and the resource managers need, for every core size and LLC allocation:
//
//   * exact miss curve M(w)                      (RecencyProfiler)
//   * ground-truth leading misses LM_true(c, w)  (MlpOracle)
//   * hardware-estimated LM_atd(c, w)            (MlpAtd over the emulated
//                                                 out-of-order arrival stream)
//
// Counts are scaled from the trace's represented instruction span to the RM
// interval (paper: 100M instructions).
#ifndef QOSRM_WORKLOAD_PHASE_STATS_HH
#define QOSRM_WORKLOAD_PHASE_STATS_HH

#include <array>
#include <cstdint>
#include <vector>

#include "arch/core_config.hh"
#include "arch/core_model.hh"
#include "arch/system_config.hh"
#include "workload/app_profile.hh"
#include "workload/trace_synth.hh"

namespace qosrm::workload {

struct PhaseStats {
  // Interval-scaled counts, indexed by [w-1] for w in [1, max_ways] and by
  // core_size_index for c.
  std::vector<double> misses;                                   ///< M(w)
  std::array<std::vector<double>, arch::kNumCoreSizes> lm_true; ///< LM(c,w)
  std::array<std::vector<double>, arch::kNumCoreSizes> lm_atd;  ///< estimate

  double interval_instructions = 0.0;  ///< instructions per interval
  double llc_accesses = 0.0;           ///< LLC accesses, interval-scaled
  double write_frac = 0.0;             ///< dirty-block share of the phase
  double scale = 1.0;                  ///< interval / represented instructions

  // Core-side characteristics copied from the phase parameters.
  double ilp = 1.0;
  double cpi_branch = 0.0;
  double cpi_cache = 0.0;

  [[nodiscard]] int max_ways() const noexcept {
    return static_cast<int>(misses.size());
  }
  [[nodiscard]] double mpki(int w) const noexcept;

  /// Writebacks per interval at allocation w: in steady state every evicted
  /// dirty block is written back, i.e. write_frac of the fills.
  [[nodiscard]] double writebacks(int w) const noexcept;

  /// DRAM transactions per interval at allocation w (fills + writebacks) -
  /// the MA quantity of paper Eq. 5.
  [[nodiscard]] double dram_accesses(int w) const noexcept;

  /// Ground-truth MLP at (c, w): M(w) / LM_true(c, w), >= 1.
  [[nodiscard]] double mlp_true(arch::CoreSize c, int w) const noexcept;

  /// IntervalCharacteristics view for the ground-truth timing model.
  [[nodiscard]] arch::IntervalCharacteristics characteristics() const noexcept;

  /// MemoryBehaviour at (c, w) using ground-truth leading misses.
  [[nodiscard]] arch::MemoryBehaviour memory_truth(arch::CoreSize c, int w,
                                                   double mem_latency_s) const noexcept;
};

struct PhaseStatsOptions {
  TraceSynthConfig synth{};
  int mlp_index_bits = 10;       ///< MLP-ATD instruction-index width
  int atd_sample_period = 1;     ///< set sampling inside the hardware models
  double arrival_dispatch_ipc = 2.0;
  double mem_latency_cycles = 260.0;  ///< at the 2 GHz baseline
  int arrival_ways = 8;               ///< allocation assumed for the arrival stream
};

/// Characterizes one phase: synthesizes the trace (deterministic in `seed`)
/// and extracts interval-scaled statistics for the given system.
[[nodiscard]] PhaseStats characterize_phase(const PhaseParams& phase,
                                            const arch::SystemConfig& system,
                                            const PhaseStatsOptions& options,
                                            std::uint64_t seed);

}  // namespace qosrm::workload

#endif  // QOSRM_WORKLOAD_PHASE_STATS_HH
