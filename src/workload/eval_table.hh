// Materialized evaluation layer (paper Section IV-A).
//
// The paper runs Sniper+McPAT once per (phase, core configuration, VF
// setting, LLC allocation) and the RM simulator replays applications against
// the stored results. EvalTable is that materialization: at build time it
// densely evaluates the ground-truth analytical models over the full finite
// (core size x VF point x way) grid of every characterized phase - plus the
// baseline-time, MPKI and MLP aggregates the QoS check and the classifier
// ask for on every query - so the hot loops of the interval simulator and
// the QoS evaluator are array lookups instead of repeated
// evaluate_interval/memory_truth calls.
//
// Every stored value is produced by exactly the calls the pre-table SimDb
// made on demand, in the same order, so lookups are bit-identical to direct
// evaluation (tests enforce this over the full grid).
#ifndef QOSRM_WORKLOAD_EVAL_TABLE_HH
#define QOSRM_WORKLOAD_EVAL_TABLE_HH

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "arch/core_config.hh"
#include "arch/core_model.hh"
#include "arch/dvfs.hh"
#include "arch/system_config.hh"
#include "power/power_model.hh"
#include "workload/phase_stats.hh"
#include "workload/spec_suite.hh"

namespace qosrm::workload {

/// A concrete resource setting for one core: the full multi-resource
/// allocation vector (core size, VF point, LLC ways, memory-bandwidth
/// shares). `b` defaults to the degenerate single share, so ways-only code
/// paths and literals keep their pre-CBP meaning.
struct Setting {
  arch::CoreSize c = arch::kBaselineCoreSize;
  int f_idx = arch::VfTable::kBaselineIndex;
  int w = 8;
  int b = 1;  ///< granted memory-bandwidth shares

  [[nodiscard]] bool operator==(const Setting&) const = default;
};

/// The per-core slice of a global resource allocation: the shared-resource
/// pair the global optimizer distributes (ways x bandwidth shares).
struct ResourceAlloc {
  int ways = 0;
  int bw_shares = 1;

  [[nodiscard]] bool operator==(const ResourceAlloc&) const = default;
};

/// The baseline system setting (M core, 2 GHz, even LLC split).
[[nodiscard]] Setting baseline_setting(const arch::SystemConfig& system);

class EvalTable {
 public:
  EvalTable() = default;

  /// Densely evaluates timing/energy for every (app, phase) in `stats` over
  /// the full (core size x VF point x way) grid, and precomputes the
  /// per-phase baseline times and per-app MPKI/MLP aggregates.
  EvalTable(const SpecSuite& suite, const arch::SystemConfig& system,
            const power::PowerModel& power,
            const std::vector<std::vector<PhaseStats>>& stats);

  /// Ground-truth interval timing of (app, phase) at setting s (lookup).
  [[nodiscard]] const arch::IntervalTiming& timing(int app, int phase,
                                                   const Setting& s) const;

  /// Ground-truth interval energy at setting s (lookup).
  [[nodiscard]] const power::IntervalEnergy& energy(int app, int phase,
                                                    const Setting& s) const;

  // --- batched / scalar SoA accessors --------------------------------------
  // The dense grids additionally keep the hot aggregate of each cell
  // (total/memory seconds, core/total joules) in flat structure-of-arrays
  // companions filled from exactly the structs above, so single-field
  // consumers (the interval simulators' start-of-interval accounting, the
  // QoS evaluator's t_act sweep, the perfect model's oracle scans) read one
  // contiguous double instead of copying a multi-field struct per query.
  // Values are bit-identical to the struct fields by construction.

  /// timing(...).total_seconds without the struct copy.
  [[nodiscard]] double total_seconds(int app, int phase, const Setting& s) const;
  /// timing(...).mem_seconds without the struct copy.
  [[nodiscard]] double mem_seconds(int app, int phase, const Setting& s) const;
  /// energy(...).core_j() without the struct copy.
  [[nodiscard]] double core_joules(int app, int phase, const Setting& s) const;
  /// energy(...).total_j() without the struct copy.
  [[nodiscard]] double total_joules(int app, int phase, const Setting& s) const;

  /// Contiguous w-row of interval wall-clock times at fixed (c, f_idx, b):
  /// element w-1 equals timing(app, phase, {c, f_idx, w, b}).total_seconds
  /// for w in [1, row.size()]. The batched form of a per-setting sweep over
  /// w. Rows are bw-major: all w-rows of one (c, f) block sit back to back
  /// in ascending b, so a b-sweep at fixed (c, f) streams contiguously too.
  [[nodiscard]] std::span<const double> total_seconds_row(int app, int phase,
                                                          arch::CoreSize c,
                                                          int f_idx,
                                                          int b = 1) const;
  /// Contiguous w-row of interval memory stall times at fixed (c, f_idx, b).
  [[nodiscard]] std::span<const double> mem_seconds_row(int app, int phase,
                                                        arch::CoreSize c,
                                                        int f_idx,
                                                        int b = 1) const;

  // --- dense interval keys -------------------------------------------------
  // Every (app, phase, setting) cell of this table has a unique dense key in
  // [0, interval_key_space()), suitable for flat-array memoization of
  // per-cell decisions (rm::ResourceManager's interval-outcome memo).
  // Settings whose w clamps to the same grid cell share the key - and, by
  // construction, every stored value.

  /// Dense key of the (app, phase, setting) grid cell.
  [[nodiscard]] std::int64_t interval_key(int app, int phase,
                                          const Setting& s) const;
  /// One past the largest key this table can produce.
  [[nodiscard]] std::int64_t interval_key_space() const noexcept {
    return key_space_;
  }

  /// Interval wall-clock time at the baseline setting (the QoS reference).
  [[nodiscard]] double baseline_time(int app, int phase) const;

  /// Weighted-average MPKI of an application at allocation w (phase weights).
  [[nodiscard]] double app_mpki(int app, int w) const;

  /// Weighted-average ground-truth MLP of an application at (c, baseline w).
  [[nodiscard]] double app_mlp(int app, arch::CoreSize c) const;

  [[nodiscard]] bool empty() const noexcept { return grids_.empty(); }

 private:
  /// Dense per-phase grid, [c][f][b][w-1] flattened row-major (bw-major
  /// w-rows: the w axis stays innermost and contiguous; the share axis sits
  /// directly above it). The share axis covers [min_shares, max_shares] of
  /// the system's BwConfig and has exactly one point in the degenerate
  /// default, where the layout (and every stored byte) is identical to the
  /// pre-CBP [c][f][w-1] grid.
  struct PhaseGrid {
    int max_ways = 0;
    int min_shares = 1;    ///< lowest share the b axis covers
    int num_shares = 1;    ///< extent of the b axis
    double baseline_time_s = 0.0;
    std::int64_t key_off = 0;  ///< cumulative cell offset (interval keys)
    std::vector<arch::IntervalTiming> timing;
    std::vector<power::IntervalEnergy> energy;
    // SoA companions of the structs above (same flat indexing).
    std::vector<double> total_s;
    std::vector<double> mem_s;
    std::vector<double> core_j;
    std::vector<double> total_j;
  };

  struct AppAggregates {
    std::vector<double> mpki;  ///< [w-1]
    std::array<double, arch::kNumCoreSizes> mlp{};
  };

  [[nodiscard]] const PhaseGrid& grid(int app, int phase) const;
  [[nodiscard]] static std::size_t flat_index(const PhaseGrid& g, const Setting& s);
  /// Flat offset of the contiguous w-row at (c, f_idx, b).
  [[nodiscard]] static std::size_t row_offset(const PhaseGrid& g,
                                              arch::CoreSize c, int f_idx,
                                              int b);

  std::vector<std::vector<PhaseGrid>> grids_;  // [app][phase]
  std::vector<AppAggregates> aggregates_;      // [app]
  std::int64_t key_space_ = 0;                 // total cells across all grids
};

}  // namespace qosrm::workload

#endif  // QOSRM_WORKLOAD_EVAL_TABLE_HH
