// Synthetic LLC access-trace generation.
//
// Produces a program-order LlcAccess stream realizing a PhaseParams
// description: bursts of loads with controlled instruction gaps, dependence
// chains, and per-access reuse distances drawn from the phase's stack
// profile. Reuse distances are realized exactly by touching the tag
// currently at the desired recency position of a shadow LRU directory, so
// the measured miss curve matches the requested profile by construction.
#ifndef QOSRM_WORKLOAD_TRACE_SYNTH_HH
#define QOSRM_WORKLOAD_TRACE_SYNTH_HH

#include <cstdint>
#include <vector>

#include "cache/access.hh"
#include "workload/app_profile.hh"

namespace qosrm::workload {

struct TraceSynthConfig {
  int sets = 64;  ///< shadow-directory sets (the trace is a set sample)
  int max_ways = 16;
  /// Instructions the trace stands for; the generator emits roughly
  /// lpki * represented_instructions / 1000 accesses.
  double represented_instructions = 8e6;
};

struct SynthesizedTrace {
  std::vector<cache::LlcAccess> accesses;  ///< program order
  double represented_instructions = 0.0;   ///< actual instruction span
};

/// Generates the canonical trace of `phase`, deterministic in `seed`.
[[nodiscard]] SynthesizedTrace synthesize_trace(const PhaseParams& phase,
                                                const TraceSynthConfig& config,
                                                std::uint64_t seed);

}  // namespace qosrm::workload

#endif  // QOSRM_WORKLOAD_TRACE_SYNTH_HH
