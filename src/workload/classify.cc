#include "workload/classify.hh"

#include <algorithm>
#include <cmath>

#include "common/check.hh"

namespace qosrm::workload {

AppClassification classify_app(const SimDb& db, int app,
                               const ClassificationCriteria& crit) {
  AppClassification cls;
  cls.app = app;

  const int wb = crit.baseline_ways;
  const int w_lo = std::max(1, wb / 2);        // -50% allocation
  const int w_hi = wb + wb / 2;                // +50% allocation
  cls.mpki_base = db.app_mpki(app, wb);
  cls.mpki_lo = db.app_mpki(app, w_lo);
  cls.mpki_hi = db.app_mpki(app, w_hi);

  if (cls.mpki_base >= crit.mpki_min) {
    const double swing = std::max(std::abs(cls.mpki_lo - cls.mpki_base),
                                  std::abs(cls.mpki_hi - cls.mpki_base));
    cls.cache_sensitive = swing > crit.mpki_variation * cls.mpki_base;
  }

  cls.mlp_s = db.app_mlp(app, arch::CoreSize::S);
  cls.mlp_m = db.app_mlp(app, arch::CoreSize::M);
  cls.mlp_l = db.app_mlp(app, arch::CoreSize::L);
  cls.parallelism_sensitive =
      (cls.mlp_l - cls.mlp_s) > crit.mlp_variation * cls.mlp_m &&
      cls.mlp_l >= crit.mlp_min_large;

  return cls;
}

std::vector<AppClassification> classify_suite(const SimDb& db,
                                              const ClassificationCriteria& crit) {
  std::vector<AppClassification> out;
  out.reserve(static_cast<std::size_t>(db.suite().size()));
  for (int a = 0; a < db.suite().size(); ++a) {
    out.push_back(classify_app(db, a, crit));
  }
  return out;
}

const char* part_class_name(PartClass cls) noexcept {
  switch (cls) {
    case PartClass::Light:
      return "light";
    case PartClass::Streaming:
      return "streaming";
    case PartClass::Sensitive:
      return "sensitive";
  }
  return "?";
}

PartClass classify_part_class(double mpki_base, double mpki_lo, double mpki_hi,
                              const ClassificationCriteria& crit) {
  if (mpki_base < crit.mpki_min) return PartClass::Light;
  const double swing = std::max(std::abs(mpki_lo - mpki_base),
                                std::abs(mpki_hi - mpki_base));
  return swing > crit.mpki_variation * mpki_base ? PartClass::Sensitive
                                                 : PartClass::Streaming;
}

PartClass part_class_of(const AppClassification& cls,
                        const ClassificationCriteria& crit) {
  return classify_part_class(cls.mpki_base, cls.mpki_lo, cls.mpki_hi, crit);
}

std::array<int, kNumCategories> category_histogram(
    const std::vector<AppClassification>& cls) {
  std::array<int, kNumCategories> hist{};
  for (const auto& c : cls) {
    ++hist[static_cast<std::size_t>(c.category())];
  }
  return hist;
}

}  // namespace qosrm::workload
