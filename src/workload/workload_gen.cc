#include "workload/workload_gen.hh"

#include <algorithm>

#include "common/check.hh"
#include "common/rng.hh"
#include "common/str.hh"

namespace qosrm::workload {

Scenario scenario_of(Category a, Category b) noexcept {
  const auto has = [&](Category c) { return a == c || b == c; };
  if (has(Category::CS_PS)) return Scenario::One;
  if (has(Category::CI_PS) && has(Category::CS_PI)) return Scenario::One;
  if (has(Category::CS_PI)) return Scenario::Two;  // with CS-PI or CI-PI
  if (has(Category::CI_PS)) return Scenario::Three;  // with CI-PS or CI-PI
  return Scenario::Four;  // CI-PI x CI-PI
}

MixTable compute_mix_table(const std::array<int, kNumCategories>& population) {
  MixTable t;
  t.population = population;
  int total = 0;
  for (const int n : population) total += n;
  QOSRM_CHECK(total > 0);
  for (std::size_t c = 0; c < kNumCategories; ++c) {
    t.category_prob[c] =
        static_cast<double>(population[c]) / static_cast<double>(total);
  }
  for (std::size_t a = 0; a < kNumCategories; ++a) {
    for (std::size_t b = 0; b < kNumCategories; ++b) {
      t.pair_prob[a][b] = t.category_prob[a] * t.category_prob[b];
      const Scenario s =
          scenario_of(static_cast<Category>(a), static_cast<Category>(b));
      t.scenario_weight[static_cast<std::size_t>(static_cast<int>(s) - 1)] +=
          t.pair_prob[a][b];
    }
  }
  return t;
}

namespace {

/// Ordered (first-half category, second-half category) cells per scenario,
/// matching the paper's construction rule for Scenario 1: "the first half
/// can be from any category as long as the second half is selected from
/// CS-PS; additionally, the second half can be CS-PI if the first half is
/// CI-PS."
std::vector<std::pair<Category, Category>> scenario_cells(Scenario s) {
  using enum Category;
  switch (s) {
    case Scenario::One:
      return {{CI_PI, CS_PS}, {CI_PS, CS_PS}, {CS_PI, CS_PS},
              {CS_PS, CS_PS}, {CI_PS, CS_PI}};
    case Scenario::Two:
      return {{CI_PI, CS_PI}, {CS_PI, CS_PI}};
    case Scenario::Three:
      return {{CI_PI, CI_PS}, {CI_PS, CI_PS}};
    case Scenario::Four:
      return {{CI_PI, CI_PI}};
  }
  return {};
}

/// Draws an application of `cat`, preferring the least-used ones so a suite
/// of workloads covers every application where possible.
int draw_app(const SpecSuite& suite, Category cat, std::vector<int>& use_count,
             Rng& rng) {
  const std::vector<int> candidates = suite.apps_in_category(cat);
  QOSRM_CHECK(!candidates.empty());
  int best_use = std::numeric_limits<int>::max();
  for (const int a : candidates) {
    best_use = std::min(best_use, use_count[static_cast<std::size_t>(a)]);
  }
  std::vector<int> least;
  for (const int a : candidates) {
    if (use_count[static_cast<std::size_t>(a)] == best_use) least.push_back(a);
  }
  const int pick = least[rng.uniform_u64(least.size())];
  ++use_count[static_cast<std::size_t>(pick)];
  return pick;
}

}  // namespace

std::vector<WorkloadMix> generate_workloads(const SpecSuite& suite,
                                            const WorkloadGenOptions& options) {
  QOSRM_CHECK(options.cores >= 2 && options.cores % 2 == 0);
  QOSRM_CHECK(options.per_scenario >= 1);

  Rng rng(options.seed);
  std::vector<int> use_count(static_cast<std::size_t>(suite.size()), 0);

  std::vector<WorkloadMix> out;
  out.reserve(static_cast<std::size_t>(options.per_scenario) * 4);
  int index = 1;
  for (const Scenario s : kAllScenarios) {
    const auto cells = scenario_cells(s);
    // Relative cell weights follow the pairwise probabilities of Fig. 1.
    const MixTable table = compute_mix_table(
        {static_cast<int>(suite.apps_in_category(Category::CS_PS).size()),
         static_cast<int>(suite.apps_in_category(Category::CS_PI).size()),
         static_cast<int>(suite.apps_in_category(Category::CI_PS).size()),
         static_cast<int>(suite.apps_in_category(Category::CI_PI).size())});
    std::vector<double> cell_weight;
    for (const auto& [a, b] : cells) {
      cell_weight.push_back(table.pair_prob[static_cast<std::size_t>(a)]
                                           [static_cast<std::size_t>(b)]);
    }

    for (int k = 0; k < options.per_scenario; ++k) {
      const auto& [cat1, cat2] = cells[rng.weighted_choice(cell_weight)];
      WorkloadMix mix;
      mix.scenario = s;
      mix.name = format("%dCore-W%d", options.cores, index++);
      mix.app_ids.reserve(static_cast<std::size_t>(options.cores));
      for (int core = 0; core < options.cores; ++core) {
        const Category cat = core < options.cores / 2 ? cat1 : cat2;
        mix.app_ids.push_back(draw_app(suite, cat, use_count, rng));
      }
      out.push_back(std::move(mix));
    }
  }
  return out;
}

WorkloadMix replicate_mix(const WorkloadMix& mix, int factor) {
  QOSRM_CHECK_MSG(factor >= 1, "replication factor must be >= 1");
  const auto cores = static_cast<int>(mix.app_ids.size());
  QOSRM_CHECK_MSG(cores >= 2 && cores % 2 == 0,
                  "replication needs a two-half (even-core) mix");
  if (factor == 1) return mix;

  WorkloadMix scaled;
  scaled.scenario = mix.scenario;
  scaled.name = format("%sx%d", mix.name.c_str(), factor);
  scaled.app_ids.reserve(mix.app_ids.size() * static_cast<std::size_t>(factor));
  // Repeat each category half contiguously so the scaled mix still has the
  // "first half from category 1, second half from category 2" layout that
  // scenario classification and the generator rely on.
  const int half = cores / 2;
  for (int h = 0; h < 2; ++h) {
    for (int r = 0; r < factor; ++r) {
      for (int i = 0; i < half; ++i) {
        scaled.app_ids.push_back(
            mix.app_ids[static_cast<std::size_t>(h * half + i)]);
      }
    }
  }
  return scaled;
}

std::vector<WorkloadMix> replicate_workloads(
    const std::vector<WorkloadMix>& mixes, int factor) {
  std::vector<WorkloadMix> out;
  out.reserve(mixes.size());
  for (const WorkloadMix& mix : mixes) out.push_back(replicate_mix(mix, factor));
  return out;
}

}  // namespace qosrm::workload
