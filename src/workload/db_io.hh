// Versioned binary snapshots of the simulation database.
//
// A snapshot stores the expensive part of a SimDb - the per-(app, phase)
// characterization - so long sweeps, benches and the slow test suites can
// restore a multi-second build in milliseconds. The materialized evaluation
// table is deterministically rebuilt from the restored stats, so a loaded
// database is bit-identical to a freshly characterized one.
//
// File layout (native-endian, see common/binary_io.hh):
//
//   u64 magic "QOSRMDB\0" | u32 version | u32 byte-order mark
//   u64 fingerprint(suite, SystemConfig, PhaseStatsOptions)
//   payload: per (app, phase) PhaseStats arrays and scalars
//   u64 trailing FNV-1a checksum of everything above
//
// The fingerprint hashes every parameter the characterization depends on
// (exact double bit patterns included), so a snapshot produced under a
// different suite, system configuration or characterization option set is
// REJECTED, never silently reused. The trailing checksum catches truncation
// and bit corruption.
#ifndef QOSRM_WORKLOAD_DB_IO_HH
#define QOSRM_WORKLOAD_DB_IO_HH

#include <cstdint>
#include <optional>
#include <string>

#include "workload/sim_db.hh"

namespace qosrm::workload {

inline constexpr std::uint32_t kSimDbSnapshotVersion = 1;

/// Conventional snapshot file extension (gitignored).
inline constexpr const char* kSimDbSnapshotExtension = ".qosdb";

/// Identity checksum of everything a snapshot must match: the suite's full
/// parameterization, the SystemConfig and the PhaseStatsOptions.
[[nodiscard]] std::uint64_t simdb_fingerprint(const SpecSuite& suite,
                                              const arch::SystemConfig& system,
                                              const PhaseStatsOptions& options);

/// Saves `db`'s characterization to `path`. False + *error on I/O failure
/// (the partial file is removed).
bool save_simdb(const SimDb& db, const std::string& path, std::string* error);

/// Loads a snapshot for exactly (suite, system, options). nullopt + *error
/// when the file is unreadable, not a snapshot, the wrong version, written
/// under a different configuration (fingerprint mismatch), or corrupt.
[[nodiscard]] std::optional<SimDb> load_simdb(const SpecSuite& suite,
                                              const arch::SystemConfig& system,
                                              const power::PowerModel& power,
                                              const PhaseStatsOptions& options,
                                              const std::string& path,
                                              std::string* error);

/// Per-core-count snapshot path under a cache directory (or path prefix):
/// "<dir>/suite-c<cores><.qosdb>"; a partitioned-bandwidth run
/// (bw_shares > 1) gets the distinct "<dir>/suite-c<cores>-b<shares>" name.
[[nodiscard]] std::string db_cache_path(const std::string& dir, int cores,
                                        int bw_shares = 1);

/// How warm_simdb obtained its database.
enum class DbCacheOutcome {
  Built,          ///< no cache path given: plain characterization
  BuiltAndSaved,  ///< cache miss (or stale snapshot): built, snapshot written
  Loaded,         ///< cache hit: restored from the snapshot
};

/// Build-or-load convenience for benches and tests. Empty `path` just
/// characterizes. Otherwise: load on hit; on miss, characterize and save; a
/// stale or corrupt snapshot is rejected with a warning to stderr and
/// rebuilt (overwriting it). CLI drivers that must fail hard on a bad cache
/// file (sweep_main) use load_simdb/save_simdb directly instead.
[[nodiscard]] SimDb warm_simdb(const SpecSuite& suite,
                               const arch::SystemConfig& system,
                               const power::PowerModel& power,
                               const SimDbOptions& options,
                               const std::string& path,
                               DbCacheOutcome* outcome = nullptr);

}  // namespace qosrm::workload

#endif  // QOSRM_WORKLOAD_DB_IO_HH
