// The synthetic stand-in for the paper's SPEC CPU2006 suite.
//
// 27 applications named after the SPEC benchmarks the paper uses (calculix
// and milc are excluded there too). Parameters are calibrated per intended
// category so that the paper's own classification criteria (Section IV-C,
// reproduced in workload/classify.hh) sort them into Table II:
//
//   CS-PS: tonto mcf omnetpp soplex sphinx3
//   CS-PI: bzip2 gcc gobmk gromacs h264ref hmmer xalancbmk
//   CI-PS: namd zeusmp GemsFDTD bwaves leslie3d libquantum wrf
//   CI-PI: cactusADM dealII gamess perlbench povray sjeng astar lbm
//
// Each application has several phases (perturbed variants of its base
// behaviour, standing in for SimPoint regions) plus a deterministic phase
// sequence.
#ifndef QOSRM_WORKLOAD_SPEC_SUITE_HH
#define QOSRM_WORKLOAD_SPEC_SUITE_HH

#include <string>
#include <vector>

#include "workload/app_profile.hh"

namespace qosrm::workload {

/// Application category (paper Section II).
enum class Category { CS_PS = 0, CS_PI = 1, CI_PS = 2, CI_PI = 3 };

inline constexpr int kNumCategories = 4;

[[nodiscard]] const char* category_name(Category c) noexcept;

/// The full 27-application suite, built once (deterministic).
class SpecSuite {
 public:
  SpecSuite();

  [[nodiscard]] const std::vector<AppProfile>& apps() const noexcept { return apps_; }
  [[nodiscard]] int size() const noexcept { return static_cast<int>(apps_.size()); }
  [[nodiscard]] const AppProfile& app(int idx) const;

  /// Index of the application named `name` (-1 if absent).
  [[nodiscard]] int index_of(const std::string& name) const;

  /// The category the suite was calibrated to produce for app `idx` (the
  /// classifier in workload/classify.hh must agree; tests enforce this).
  [[nodiscard]] Category intended_category(int idx) const;

  /// All app indices with the given intended category.
  [[nodiscard]] std::vector<int> apps_in_category(Category c) const;

 private:
  std::vector<AppProfile> apps_;
  std::vector<Category> categories_;
};

/// Shared immutable instance (built on first use; thread-safe).
[[nodiscard]] const SpecSuite& spec_suite();

}  // namespace qosrm::workload

#endif  // QOSRM_WORKLOAD_SPEC_SUITE_HH
