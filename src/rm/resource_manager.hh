// The resource-manager policies evaluated in the paper, plus the classic
// partitioning-only baselines the literature measures against.
//
//   Idle      - keeps the baseline setting (the energy reference).
//   RM1       - LLC partitioning only (fixed VF and core size).
//   RM2       - LLC partitioning coordinated with per-core DVFS (Nejat et
//               al., IPDPS 2019 - the paper's prior-art baseline).
//   RM3       - the proposed scheme: LLC partitioning + DVFS + core resizing.
//   UCP       - utility-based partitioning (Qureshi & Patt, MICRO'06
//               lookahead over the ATD miss curves); baseline VF and size.
//   FCP       - fair partitioning (greedy slowdown equalization against the
//               alpha-relaxed baseline time); baseline VF and size.
//   ClassPart - LFOC-style class-based partitioning (light / streaming /
//               sensitive via workload/classify); baseline VF and size.
//
// The baselines choose only {w_j} (see rm/baseline_policies.hh); they run at
// the same interval boundaries and reuse the same counter snapshots, cache
// validity and op accounting as the RM variants.
//
// Invocation (paper Fig. 3): at a core's interval boundary the RM runs the
// LOCAL optimization for that core from its fresh counters, combines the
// resulting energy curve with the cached curves of the other cores in the
// GLOBAL optimization, and returns the full system setting {w*, f*, c*}.
#ifndef QOSRM_RM_RESOURCE_MANAGER_HH
#define QOSRM_RM_RESOURCE_MANAGER_HH

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "rm/baseline_policies.hh"
#include "rm/global_opt.hh"
#include "rm/local_opt.hh"
#include "rm/overheads.hh"

namespace qosrm::rm {

enum class RmPolicy {
  Idle = 0,
  Rm1 = 1,
  Rm2 = 2,
  Rm3 = 3,
  Ucp = 4,
  Fcp = 5,
  ClassPart = 6,
};

[[nodiscard]] const char* rm_policy_name(RmPolicy policy) noexcept;

/// True for the partitioning-only classics (UCP / FCP / ClassPart), which
/// dispatch to rm/baseline_policies instead of the local/global optimizers.
[[nodiscard]] constexpr bool is_baseline_policy(RmPolicy policy) noexcept {
  return policy == RmPolicy::Ucp || policy == RmPolicy::Fcp ||
         policy == RmPolicy::ClassPart;
}

/// Interval-outcome memoization policy (see ResourceManager). Auto enables
/// the memo from 8 cores up, where repeated (app, phase, setting) boundaries
/// dominate the invocation cost; the memo is bit-transparent at any width
/// (cached outcomes and op charges are exactly what a fresh local
/// optimization would produce), so the mode only affects wall time.
enum class RmMemoMode { Auto = 0, On = 1, Off = 2 };

struct RmConfig {
  RmPolicy policy = RmPolicy::Rm3;
  PerfModelKind model = PerfModelKind::Model3;
  EnergyModelOptions energy{};
  RmMemoMode memo = RmMemoMode::Auto;
  /// Optional knob override for ablation studies (e.g. core resizing
  /// without DVFS); when set it replaces the policy-derived knob set for
  /// any non-idle policy.
  std::optional<LocalOptOptions> knobs{};
};

struct RmDecision {
  std::vector<workload::Setting> settings;  ///< per core
  std::uint64_t ops = 0;  ///< optimizer operations of this invocation
  bool feasible = true;   ///< false -> fell back to the baseline setting
};

/// Reusable scratch of the invocation path: per-core flat energy curves, the
/// global optimizer's reduction buffers and the decision handed back to the
/// caller. Owned by the ResourceManager; every buffer keeps its capacity
/// across boundaries, so steady-state invoke() performs no heap allocation.
struct RmWorkspace {
  std::vector<std::vector<double>> curve_energy;  ///< per-core E*(w), flat
  std::vector<EnergyCurveView> views;             ///< spans over curve_energy
  /// Length-1 zero-energy curve presented for inactive cores: it pins them
  /// to llc.min_ways in the global optimization without contributing energy.
  std::vector<double> idle_energy;
  GlobalOptWorkspace global;
  GlobalOptResult global_result;
  BaselineWorkspace baseline;  ///< UCP / FCP / ClassPart inputs + result
  RmDecision decision;
};

class ResourceManager {
 public:
  ResourceManager(const RmConfig& config, const arch::SystemConfig& system,
                  const power::PowerModel& offline_power);

  /// One RM invocation on behalf of `invoking_core`. `snapshots` holds the
  /// most recent counters of every core (the invoking core's entry must be
  /// fresh). Returns the new system setting. The reference points into the
  /// manager's workspace and stays valid until the next invoke() (copy it to
  /// keep a decision across boundaries).
  [[nodiscard]] const RmDecision& invoke(
      int invoking_core, std::span<const CounterSnapshot> snapshots);

  /// Partial-occupancy variant for the colocation-service mode: `active[k]`
  /// non-zero means core k currently runs an application. Inactive cores are
  /// pinned to the minimum LLC allocation with zero energy contribution,
  /// keep their baseline setting in the decision, and have their cached
  /// curves invalidated (the next app on that core cold-starts). The
  /// invoking core must be active.
  [[nodiscard]] const RmDecision& invoke(
      int invoking_core, std::span<const CounterSnapshot> snapshots,
      std::span<const std::uint8_t> active);

  /// Drops all cached energy curves (e.g. when the workload changes). The
  /// underlying buffers are kept, so the next boundaries stay allocation-free.
  /// The interval-outcome memo survives: its entries are keyed by database
  /// identity and remain valid across workload changes on the same database.
  void reset();

  /// Whether the interval-outcome memo is active for this instance.
  [[nodiscard]] bool memo_enabled() const noexcept { return memo_on_; }

  [[nodiscard]] const RmConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const arch::SystemConfig& system() const noexcept { return system_; }
  [[nodiscard]] const PerfModel& perf_model() const noexcept { return perf_; }
  [[nodiscard]] const OnlineEnergyModel& energy_model() const noexcept {
    return energy_;
  }

 private:
  [[nodiscard]] LocalOptOptions local_options() const noexcept;

  /// Invocation tail for the partitioning-only baselines: refreshes the
  /// invoking core's cached inputs (miss curve, predicted times or class),
  /// runs the policy's partitioner and maps the chosen ways onto baseline
  /// (c, f) settings. Mirrors the RM path's caching and op accounting.
  [[nodiscard]] const RmDecision& invoke_baseline(
      int invoking_core, std::span<const CounterSnapshot> snapshots,
      std::span<const std::uint8_t> active);

  /// Per-core curve cache. `valid` replaces the previous std::optional so
  /// reset() can invalidate without releasing the LocalOptResult storage.
  struct CoreCache {
    bool valid = false;
    LocalOptResult local;
  };

  /// One memoized interval outcome: the local-optimization result of a
  /// (app, phase, setting) evaluation cell plus the op count a fresh run
  /// would have charged (so replays account identically).
  struct MemoEntry {
    LocalOptResult local;
    std::uint64_t ops = 0;
  };

  /// Returns the memo slot for this snapshot, or nullptr when memoization
  /// does not apply (memo off, unkeyed snapshot, or oracle-backed counters
  /// whose outcome depends on more than the key). Lazily (re)sizes the slot
  /// array when a new database is seen.
  [[nodiscard]] std::int32_t* memo_slot(const CounterSnapshot& snap);

  RmConfig cfg_;
  arch::SystemConfig system_;
  PerfModel perf_;
  OnlineEnergyModel energy_;
  LocalOptimizer local_;
  std::vector<CoreCache> cached_;  ///< per-core curves
  // --- interval-outcome memo (flat array over the db's dense key space) ----
  bool memo_on_ = false;
  const workload::SimDb* memo_db_ = nullptr;
  std::vector<std::int32_t> memo_slot_;  ///< key -> entry index, -1 empty
  std::vector<MemoEntry> memo_entries_;  ///< growing entry pool
  /// All-ones mask backing the mask-free invoke() overload. std::uint8_t
  /// (not bool) so a std::span can view the storage.
  std::vector<std::uint8_t> all_active_;
  RmWorkspace ws_;
};

}  // namespace qosrm::rm

#endif  // QOSRM_RM_RESOURCE_MANAGER_HH
