#include "rm/baseline_policies.hh"

#include <limits>

#include "common/check.hh"

namespace qosrm::rm {

namespace {

/// Shared argument validation; returns the way budget left after pinning
/// every core (active or not) at min_ways, which is also where `ways` is
/// initialized.
int start_at_minimum(std::size_t cores, int min_ways, int max_ways,
                     int total_ways, std::span<int> ways) {
  QOSRM_CHECK(ways.size() == cores);
  QOSRM_CHECK(min_ways >= 1 && max_ways >= min_ways);
  QOSRM_CHECK(total_ways >= min_ways * static_cast<int>(cores));
  for (std::size_t j = 0; j < cores; ++j) ways[j] = min_ways;
  return total_ways - min_ways * static_cast<int>(cores);
}

}  // namespace

void ucp_partition(std::span<const double> miss,
                   std::span<const std::uint8_t> active, int min_ways,
                   int max_ways, int total_ways, std::span<int> ways,
                   std::uint64_t* ops) {
  const std::size_t cores = active.size();
  const int n_alloc = max_ways - min_ways + 1;
  QOSRM_CHECK(miss.size() == cores * static_cast<std::size_t>(n_alloc));
  int balance = start_at_minimum(cores, min_ways, max_ways, total_ways, ways);

  std::uint64_t probes = 0;
  while (balance > 0) {
    // Lookahead step: over every active core and block size k, find the
    // maximum marginal utility (misses saved per way). Ties break toward the
    // lowest core index, then the smallest block, so the partition is a pure
    // function of the curves.
    std::size_t best_core = cores;
    int best_k = 0;
    double best_mu = -std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < cores; ++j) {
      if (active[j] == 0) continue;
      const int have = ways[j] - min_ways;
      const int headroom = max_ways - ways[j];
      const double* curve = &miss[j * static_cast<std::size_t>(n_alloc)];
      const int k_max = headroom < balance ? headroom : balance;
      for (int k = 1; k <= k_max; ++k) {
        ++probes;
        const double mu = (curve[have] - curve[have + k]) / static_cast<double>(k);
        if (mu > best_mu) {
          best_mu = mu;
          best_core = j;
          best_k = k;
        }
      }
    }
    if (best_core == cores) break;  // every active core saturated at max_ways
    ways[best_core] += best_k;
    balance -= best_k;
  }
  if (ops != nullptr) *ops += probes;
}

void fcp_partition(std::span<const double> time_s, std::span<const double> t_ref,
                   std::span<const std::uint8_t> active, int min_ways,
                   int max_ways, int total_ways, std::span<int> ways,
                   std::uint64_t* ops) {
  const std::size_t cores = active.size();
  const int n_alloc = max_ways - min_ways + 1;
  QOSRM_CHECK(time_s.size() == cores * static_cast<std::size_t>(n_alloc));
  QOSRM_CHECK(t_ref.size() == cores);
  int balance = start_at_minimum(cores, min_ways, max_ways, total_ways, ways);

  std::uint64_t probes = 0;
  while (balance > 0) {
    // Give one way to the most slowed-down core that still has headroom; the
    // winner's slowdown drops, so repeated rounds equalize the slowdowns.
    std::size_t best_core = cores;
    double best_s = -std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < cores; ++j) {
      if (active[j] == 0 || ways[j] >= max_ways) continue;
      ++probes;
      const double denom = t_ref[j] > 0.0 ? t_ref[j] : 1.0;
      const double s =
          time_s[j * static_cast<std::size_t>(n_alloc) +
                 static_cast<std::size_t>(ways[j] - min_ways)] /
          denom;
      if (s > best_s) {
        best_s = s;
        best_core = j;
      }
    }
    if (best_core == cores) break;  // every active core saturated at max_ways
    ++ways[best_core];
    --balance;
  }
  if (ops != nullptr) *ops += probes;
}

void classpart_partition(std::span<const workload::PartClass> cls,
                         std::span<const std::uint8_t> active, int min_ways,
                         int max_ways, int total_ways, std::span<int> ways,
                         std::uint64_t* ops) {
  const std::size_t cores = active.size();
  QOSRM_CHECK(cls.size() == cores);
  int balance = start_at_minimum(cores, min_ways, max_ways, total_ways, ways);
  std::uint64_t charged = cores;  // one op per class lookup

  // Two passes: the sensitive tier shares the budget round-robin; only once
  // every sensitive core sits at max_ways does the remainder spill over to
  // the light/streaming tier (they gain nothing from extra ways, but unused
  // capacity is free to hand out).
  for (const bool sensitive_tier : {true, false}) {
    bool any_headroom = true;
    while (balance > 0 && any_headroom) {
      any_headroom = false;
      for (std::size_t j = 0; j < cores && balance > 0; ++j) {
        if (active[j] == 0 || ways[j] >= max_ways) continue;
        if ((cls[j] == workload::PartClass::Sensitive) != sensitive_tier) continue;
        ++ways[j];
        --balance;
        ++charged;
        any_headroom = true;
      }
    }
  }
  if (ops != nullptr) *ops += charged;
}

}  // namespace qosrm::rm
