// The hardware-counter snapshot a core hands to the RM at an interval
// boundary (paper Fig. 3, "HW perf. counters" plus the ATD structures).
//
// Everything the online models may use is measured over the PAST interval at
// the CURRENT resource setting; nothing references ground truth of the
// upcoming interval. (The only exception is the optional `oracle` block,
// which exists solely to implement the paper's "perfect model" comparison
// point of Fig. 9.)
#ifndef QOSRM_RM_COUNTERS_HH
#define QOSRM_RM_COUNTERS_HH

#include <array>
#include <cstdint>
#include <vector>

#include "arch/core_config.hh"
#include "power/energy_meter.hh"
#include "workload/sim_db.hh"

namespace qosrm::rm {

/// Oracle handle for the "perfect model": identifies the next interval's
/// phase in the simulation database. Null/absent in any realistic setup.
struct OracleRef {
  const workload::SimDb* db = nullptr;
  int app = -1;
  int phase = -1;

  [[nodiscard]] bool valid() const noexcept { return db != nullptr && app >= 0; }
};

struct CounterSnapshot {
  /// Setting the core ran with during the measured interval.
  workload::Setting current{};

  double instructions = 0.0;    ///< retired instructions
  double total_time_s = 0.0;    ///< measured interval wall time T_i
  double t_width_s = 0.0;       ///< dispatch-width-bound compute time (the
                                ///< part of T_0,i that scales with D; from
                                ///< issue-slot utilization counters)
  double t_ilp_s = 0.0;         ///< dependency-bound compute time (the rest
                                ///< of T_0,i; size-invariant)
  double t_branch_s = 0.0;      ///< branch-stall component T_BP,i
  double t_cache_s = 0.0;       ///< private-cache component T_Cache,i
  double t_mem_s = 0.0;         ///< measured memory stall time T_mem,i
  double llc_accesses = 0.0;    ///< LLC accesses observed
  double llc_misses = 0.0;      ///< misses at the current allocation
  double writebacks = 0.0;      ///< dirty evictions at the current allocation
  double measured_mlp = 1.0;    ///< M_i / LM_i at the current (c, w)

  /// ATD miss estimates per allocation w (index w-1, w in [1, max]).
  std::vector<double> atd_misses;
  /// MLP-ATD leading-miss estimates per (core size, allocation).
  std::array<std::vector<double>, arch::kNumCoreSizes> atd_leading_misses;

  /// RAPL-like dynamic-power sample (paper Eq. 4's P*_CoreDyn, V*).
  power::PowerSample power_sample{};

  OracleRef oracle{};  ///< perfect-model hook (Fig. 9 only)

  /// Dense identity of the evaluation-grid cell these counters were measured
  /// at, stamped by the snapshot producer (rmsim::make_snapshot_into): the
  /// snapshot's contents are a pure function of (db, key), which lets the RM
  /// memoize per-interval local-optimization outcomes. A refresh of the
  /// snapshot restamps all three fields, so a memo keyed by them can never
  /// serve an outcome for counters that are no longer in the snapshot.
  /// memo_key < 0 (hand-built snapshots) disables memoization.
  std::int64_t memo_key = -1;
  std::int64_t memo_space = 0;                 ///< db.interval_key_space()
  const workload::SimDb* memo_db = nullptr;    ///< producing database

  [[nodiscard]] int max_ways() const noexcept {
    return static_cast<int>(atd_misses.size());
  }
  [[nodiscard]] double atd_misses_at(int w) const;
  [[nodiscard]] double atd_leading_at(arch::CoreSize c, int w) const;
  /// The frequency-scalable compute component T_0,i = T_i - T_1,i - T_mem,i
  /// = t_width_s + t_ilp_s (clamped at zero).
  [[nodiscard]] double t0_s() const noexcept;
};

inline double CounterSnapshot::atd_misses_at(int w) const {
  const int clamped = w < 1 ? 1 : (w > max_ways() ? max_ways() : w);
  return atd_misses[static_cast<std::size_t>(clamped - 1)];
}

inline double CounterSnapshot::atd_leading_at(arch::CoreSize c, int w) const {
  const auto& curve =
      atd_leading_misses[static_cast<std::size_t>(arch::core_size_index(c))];
  const int max_w = static_cast<int>(curve.size());
  const int clamped = w < 1 ? 1 : (w > max_w ? max_w : w);
  return curve[static_cast<std::size_t>(clamped - 1)];
}

inline double CounterSnapshot::t0_s() const noexcept {
  const double t0 = t_width_s + t_ilp_s;
  return t0 > 0.0 ? t0 : 0.0;
}

}  // namespace qosrm::rm

#endif  // QOSRM_RM_COUNTERS_HH
