#include "rm/local_opt.hh"

#include <array>

#include "common/check.hh"

namespace qosrm::rm {

const WayChoice& LocalOptResult::at(int w) const {
  QOSRM_CHECK(w >= min_ways && w <= max_ways());
  return choices[static_cast<std::size_t>(w - min_ways)];
}

std::vector<double> LocalOptResult::energy_curve() const {
  std::vector<double> curve;
  curve.reserve(choices.size());
  for (const WayChoice& c : choices) {
    curve.push_back(c.feasible ? c.energy_j : kInfeasibleEnergy);
  }
  return curve;
}

LocalOptResult LocalOptimizer::optimize(const CounterSnapshot& snap,
                                        std::uint64_t* ops) const {
  LocalOptResult result;
  optimize_into(snap, result, ops);
  return result;
}

void LocalOptimizer::optimize_into(const CounterSnapshot& snap,
                                   LocalOptResult& out,
                                   std::uint64_t* ops) const {
  const arch::SystemConfig& sys = perf_->system();
  out.min_ways = sys.llc.min_ways;
  out.choices.assign(static_cast<std::size_t>(sys.llc.num_allocations()),
                     WayChoice{});

  std::uint64_t local_ops = 0;

  // Predicted baseline time, the QoS reference (Eq. 3), computed once.
  const workload::Setting base = workload::baseline_setting(sys);
  const double t_base = perf_->predict_time(snap, base) * sys.qos_alpha;
  ++local_ops;

  // Candidate core sizes in a fixed-capacity buffer (heap-free).
  std::array<arch::CoreSize, arch::kNumCoreSizes> sizes{};
  std::size_t n_sizes = 0;
  if (opt_.allow_resize) {
    sizes = {arch::CoreSize::S, arch::CoreSize::M, arch::CoreSize::L};
    n_sizes = arch::kNumCoreSizes;
  } else {
    sizes[0] = arch::kBaselineCoreSize;
    n_sizes = 1;
  }

  // Hoist the target-invariant terms of Eq. 1 out of the (w, c, f) sweep.
  // For the analytical models the predicted time decomposes as
  //
  //   T(c, f, w) = [T_width * D_i/D(c) + T_inv] * (f_i/f) + T_mem(c, w)
  //
  // with the bracket per size, the frequency ratio per VF point and the
  // memory term per (c, w); each sweep step is then one multiply-add. Every
  // hoisted value is produced by the exact operation sequence predict_time
  // uses, so the sweep is bit-identical to calling the model per setting
  // (the equivalence is pinned by LocalOpt.HoistedSweepMatchesModelCalls).
  // The perfect model resists hoisting - its oracle lookup depends on f -
  // and keeps calling predict_time directly.
  const bool hoisted = perf_->kind() != PerfModelKind::Perfect;
  std::array<double, arch::kNumCoreSizes> core_num{};
  std::array<double, arch::VfTable::kNumPoints> freq_ratio{};
  if (hoisted) {
    const double d_cur =
        static_cast<double>(arch::core_params(snap.current.c).issue_width);
    const double f_cur = arch::VfTable::frequency_hz(snap.current.f_idx);
    const double t_invariant = snap.t_ilp_s + snap.t_branch_s + snap.t_cache_s;
    for (std::size_t si = 0; si < n_sizes; ++si) {
      const double d_tgt =
          static_cast<double>(arch::core_params(sizes[si]).issue_width);
      core_num[si] = snap.t_width_s * d_cur / d_tgt + t_invariant;
    }
    for (int f_idx = 0; f_idx < arch::VfTable::kNumPoints; ++f_idx) {
      freq_ratio[static_cast<std::size_t>(f_idx)] =
          f_cur / arch::VfTable::frequency_hz(f_idx);
    }
  }

  for (int w = sys.llc.min_ways; w <= sys.llc.max_ways; ++w) {
    WayChoice best;
    for (std::size_t si = 0; si < n_sizes; ++si) {
      const arch::CoreSize c = sizes[si];
      // T_mem is frequency-invariant in the analytical models (Eq. 2).
      const double mem_cw =
          hoisted ? perf_->predict_mem_time(snap, {c, 0, w}) : 0.0;
      const auto predict = [&](int f_idx) {
        if (!hoisted) return perf_->predict_time(snap, {c, f_idx, w});
        const double core_time =
            core_num[si] * freq_ratio[static_cast<std::size_t>(f_idx)];
        return core_time + mem_cw;
      };
      // Find f*(c, w): the lowest operating point satisfying QoS. Predicted
      // time is monotone in f, so scan from the bottom of the VF table.
      int f_star = -1;
      double t_star = 0.0;
      if (opt_.allow_dvfs) {
        for (int f_idx = 0; f_idx < arch::VfTable::kNumPoints; ++f_idx) {
          const double t = predict(f_idx);
          ++local_ops;
          if (t <= t_base) {
            f_star = f_idx;
            t_star = t;
            break;
          }
        }
      } else {
        const double t = predict(arch::VfTable::kBaselineIndex);
        ++local_ops;
        if (t <= t_base) {
          f_star = arch::VfTable::kBaselineIndex;
          t_star = t;
        }
      }
      if (f_star < 0) continue;  // no feasible frequency at this (c, w)

      const workload::Setting s{c, f_star, w};
      const double e = energy_->estimate(snap, s, t_star);
      ++local_ops;
      if (e < best.energy_j) {
        best.feasible = true;
        best.setting = s;
        best.predicted_time_s = t_star;
        best.energy_j = e;
      }
    }
    out.choices[static_cast<std::size_t>(w - sys.llc.min_ways)] = best;
  }

  if (ops != nullptr) *ops += local_ops;
}

}  // namespace qosrm::rm
