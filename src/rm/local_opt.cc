#include "rm/local_opt.hh"

#include <algorithm>
#include <array>
#include <span>

#include "common/check.hh"

namespace qosrm::rm {

const WayChoice& LocalOptResult::at(int w, int b) const {
  QOSRM_CHECK(w >= min_ways && w <= max_ways());
  QOSRM_CHECK(b >= min_shares && b <= max_shares());
  return choices[static_cast<std::size_t>(b - min_shares) *
                     static_cast<std::size_t>(num_ways()) +
                 static_cast<std::size_t>(w - min_ways)];
}

std::vector<double> LocalOptResult::energy_curve() const {
  std::vector<double> curve;
  curve.reserve(choices.size());
  for (const WayChoice& c : choices) {
    curve.push_back(c.feasible ? c.energy_j : kInfeasibleEnergy);
  }
  return curve;
}

LocalOptResult LocalOptimizer::optimize(const CounterSnapshot& snap,
                                        std::uint64_t* ops) const {
  LocalOptResult result;
  optimize_into(snap, result, ops);
  return result;
}

void LocalOptimizer::optimize_into(const CounterSnapshot& snap,
                                   LocalOptResult& out,
                                   std::uint64_t* ops) const {
  const arch::SystemConfig& sys = perf_->system();
  out.min_ways = sys.llc.min_ways;
  out.min_shares = sys.bw.min_shares;
  out.num_shares = sys.bw.num_allocations();
  const int n_w = sys.llc.num_allocations();
  out.choices.assign(static_cast<std::size_t>(n_w) *
                         static_cast<std::size_t>(out.num_shares),
                     WayChoice{});

  std::uint64_t local_ops = 0;

  // Predicted baseline time, the QoS reference (Eq. 3), computed once.
  const workload::Setting base = workload::baseline_setting(sys);
  const double t_base = perf_->predict_time(snap, base) * sys.qos_alpha;
  ++local_ops;

  // Candidate core sizes in a fixed-capacity buffer (heap-free).
  std::array<arch::CoreSize, arch::kNumCoreSizes> sizes{};
  std::size_t n_sizes = 0;
  if (opt_.allow_resize) {
    sizes = {arch::CoreSize::S, arch::CoreSize::M, arch::CoreSize::L};
    n_sizes = arch::kNumCoreSizes;
  } else {
    sizes[0] = arch::kBaselineCoreSize;
    n_sizes = 1;
  }

  // Hoist the target-invariant terms of Eq. 1 out of the (w, c, f) sweep.
  // For the analytical models the predicted time decomposes as
  //
  //   T(c, f, w) = [T_width * D_i/D(c) + T_inv] * (f_i/f) + T_mem(c, w)
  //
  // with the bracket per size, the frequency ratio per VF point and the
  // memory term per (c, w); each sweep step is then one multiply-add. Every
  // hoisted value is produced by the exact operation sequence predict_time
  // uses, so the sweep is bit-identical to calling the model per setting
  // (the equivalence is pinned by LocalOpt.HoistedSweepMatchesModelCalls).
  // The perfect model resists hoisting - its oracle lookup depends on f -
  // and keeps calling predict_time directly.
  const bool hoisted = perf_->kind() != PerfModelKind::Perfect;
  std::array<double, arch::kNumCoreSizes> core_num{};
  std::array<double, arch::VfTable::kNumPoints> freq_ratio{};
  if (hoisted) {
    const double d_cur =
        static_cast<double>(arch::core_params(snap.current.c).issue_width);
    const double f_cur = arch::VfTable::frequency_hz(snap.current.f_idx);
    const double t_invariant = snap.t_ilp_s + snap.t_branch_s + snap.t_cache_s;
    for (std::size_t si = 0; si < n_sizes; ++si) {
      const double d_tgt =
          static_cast<double>(arch::core_params(sizes[si]).issue_width);
      core_num[si] = snap.t_width_s * d_cur / d_tgt + t_invariant;
    }
    for (int f_idx = 0; f_idx < arch::VfTable::kNumPoints; ++f_idx) {
      freq_ratio[static_cast<std::size_t>(f_idx)] =
          f_cur / arch::VfTable::frequency_hz(f_idx);
    }
  }

  // The sweep runs size-outer / share / allocation-inner so the per-(c, w)
  // memory term walks each ATD curve contiguously and the perfect model
  // reads whole oracle rows of the evaluation table. out.choices accumulates
  // the per-(w, b) best directly; for a fixed cell the candidates still
  // arrive in ascending size order with the same strict-less tie-breaking,
  // so the outcome (and the op count) is bit-identical to the former
  // allocation-outer sweep in the degenerate single-share config, where the
  // share loop collapses to one iteration.
  const int w_lo = sys.llc.min_ways;
  const int w_hi = sys.llc.max_ways;
  const int b_lo = sys.bw.min_shares;
  const int b_hi = sys.bw.max_shares;
  const auto consider = [&](int w, int b, const workload::Setting& s,
                            double t_star) {
    const double e = energy_->estimate(snap, s, t_star);
    ++local_ops;
    WayChoice& best =
        out.choices[static_cast<std::size_t>(b - b_lo) *
                        static_cast<std::size_t>(n_w) +
                    static_cast<std::size_t>(w - w_lo)];
    if (e < best.energy_j) {
      best.feasible = true;
      best.setting = s;
      best.predicted_time_s = t_star;
      best.energy_j = e;
    }
  };

  for (std::size_t si = 0; si < n_sizes; ++si) {
    const arch::CoreSize c = sizes[si];
    if (hoisted) {
      for (int b = b_lo; b <= b_hi; ++b) {
        for (int w = w_lo; w <= w_hi; ++w) {
          // T_mem is frequency-invariant in the analytical models (Eq. 2);
          // the granted share scales it (CBP term) but never couples to f.
          const double mem_cw = perf_->predict_mem_time(snap, {c, 0, w, b});
          // Find f*(c, w, b): the lowest operating point satisfying QoS.
          // Predicted time is monotone in f, so scan from the bottom.
          int f_star = -1;
          double t_star = 0.0;
          if (opt_.allow_dvfs) {
            for (int f_idx = 0; f_idx < arch::VfTable::kNumPoints; ++f_idx) {
              const double t =
                  core_num[si] * freq_ratio[static_cast<std::size_t>(f_idx)] +
                  mem_cw;
              ++local_ops;
              if (t <= t_base) {
                f_star = f_idx;
                t_star = t;
                break;
              }
            }
          } else {
            constexpr int kBase = arch::VfTable::kBaselineIndex;
            const double t =
                core_num[si] * freq_ratio[static_cast<std::size_t>(kBase)] +
                mem_cw;
            ++local_ops;
            if (t <= t_base) {
              f_star = kBase;
              t_star = t;
            }
          }
          if (f_star < 0) continue;  // no feasible frequency at this cell
          consider(w, b, {c, f_star, w, b}, t_star);
        }
      }
    } else {
      // Perfect model: a prediction is an oracle lookup, so resolve
      // f*(c, w, b) for ALL allocations of one share in one bottom-up pass
      // over the VF table, each step one contiguous total-seconds row of the
      // evaluation grid. A row read at min(w, row length) is exactly the
      // clamped cell predict_time would return, and allocation w is probed
      // at operating point f iff no lower point satisfied QoS - the same
      // lookup set, in a cache-friendly order, charging the same op count.
      QOSRM_CHECK_MSG(snap.oracle.valid(), "perfect model needs an oracle ref");
      const workload::SimDb& odb = *snap.oracle.db;
      const auto n_alloc = static_cast<std::size_t>(n_w);
      for (int b = b_lo; b <= b_hi; ++b) {
        f_star_.assign(n_alloc, -1);
        t_star_.assign(n_alloc, 0.0);
        const auto probe_row = [&](std::span<const double> row, int f_idx) {
          std::size_t resolved = 0;
          for (int w = w_lo; w <= w_hi; ++w) {
            const auto k = static_cast<std::size_t>(w - w_lo);
            if (f_star_[k] >= 0) {
              ++resolved;
              continue;
            }
            const int wc = std::min(w, static_cast<int>(row.size()));
            const double t = row[static_cast<std::size_t>(wc - 1)];
            ++local_ops;
            if (t <= t_base) {
              f_star_[k] = f_idx;
              t_star_[k] = t;
              ++resolved;
            }
          }
          return resolved == n_alloc;
        };
        if (opt_.allow_dvfs) {
          for (int f_idx = 0; f_idx < arch::VfTable::kNumPoints; ++f_idx) {
            const std::span<const double> row = odb.total_seconds_row(
                snap.oracle.app, snap.oracle.phase, c, f_idx, b);
            if (probe_row(row, f_idx)) break;
          }
        } else {
          constexpr int kBase = arch::VfTable::kBaselineIndex;
          probe_row(odb.total_seconds_row(snap.oracle.app, snap.oracle.phase,
                                          c, kBase, b),
                    kBase);
        }
        for (int w = w_lo; w <= w_hi; ++w) {
          const auto k = static_cast<std::size_t>(w - w_lo);
          if (f_star_[k] < 0) continue;
          consider(w, b, {c, f_star_[k], w, b}, t_star_[k]);
        }
      }
    }
  }

  if (ops != nullptr) *ops += local_ops;
}

}  // namespace qosrm::rm
