#include "rm/local_opt.hh"

#include "common/check.hh"

namespace qosrm::rm {

const WayChoice& LocalOptResult::at(int w) const {
  QOSRM_CHECK(w >= min_ways && w <= max_ways());
  return choices[static_cast<std::size_t>(w - min_ways)];
}

std::vector<double> LocalOptResult::energy_curve() const {
  std::vector<double> curve;
  curve.reserve(choices.size());
  for (const WayChoice& c : choices) {
    curve.push_back(c.feasible ? c.energy_j : kInfeasibleEnergy);
  }
  return curve;
}

LocalOptResult LocalOptimizer::optimize(const CounterSnapshot& snap,
                                        std::uint64_t* ops) const {
  const arch::SystemConfig& sys = perf_->system();
  LocalOptResult result;
  result.min_ways = sys.llc.min_ways;
  result.choices.resize(static_cast<std::size_t>(sys.llc.num_allocations()));

  std::uint64_t local_ops = 0;

  // Predicted baseline time, the QoS reference (Eq. 3), computed once.
  const workload::Setting base = workload::baseline_setting(sys);
  const double t_base = perf_->predict_time(snap, base) * sys.qos_alpha;
  ++local_ops;

  const std::vector<arch::CoreSize> sizes =
      opt_.allow_resize
          ? std::vector<arch::CoreSize>{arch::CoreSize::S, arch::CoreSize::M,
                                        arch::CoreSize::L}
          : std::vector<arch::CoreSize>{arch::kBaselineCoreSize};

  for (int w = sys.llc.min_ways; w <= sys.llc.max_ways; ++w) {
    WayChoice best;
    for (const arch::CoreSize c : sizes) {
      // Find f*(c, w): the lowest operating point satisfying QoS. Predicted
      // time is monotone in f, so scan from the bottom of the VF table.
      int f_star = -1;
      double t_star = 0.0;
      if (opt_.allow_dvfs) {
        for (int f_idx = 0; f_idx < arch::VfTable::kNumPoints; ++f_idx) {
          const workload::Setting s{c, f_idx, w};
          const double t = perf_->predict_time(snap, s);
          ++local_ops;
          if (t <= t_base) {
            f_star = f_idx;
            t_star = t;
            break;
          }
        }
      } else {
        const workload::Setting s{c, arch::VfTable::kBaselineIndex, w};
        const double t = perf_->predict_time(snap, s);
        ++local_ops;
        if (t <= t_base) {
          f_star = arch::VfTable::kBaselineIndex;
          t_star = t;
        }
      }
      if (f_star < 0) continue;  // no feasible frequency at this (c, w)

      const workload::Setting s{c, f_star, w};
      const double e = energy_->estimate(snap, s, t_star);
      ++local_ops;
      if (e < best.energy_j) {
        best.feasible = true;
        best.setting = s;
        best.predicted_time_s = t_star;
        best.energy_j = e;
      }
    }
    result.choices[static_cast<std::size_t>(w - sys.llc.min_ways)] = best;
  }

  if (ops != nullptr) *ops += local_ops;
  return result;
}

}  // namespace qosrm::rm
