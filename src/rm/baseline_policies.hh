// Classic partitioning-only baseline policies on the RM policy axis.
//
// These are the comparison points the cache-partitioning literature measures
// against; the paper's RM variants (resource_manager.hh) coordinate more
// knobs, so credible Fig. 6/7 rows need these classics next to them:
//
//   UCP       - utility-based cache partitioning (Qureshi & Patt, MICRO'06):
//               greedy lookahead that repeatedly hands ways to the core with
//               the highest marginal miss reduction per way, read off the
//               per-app ATD miss curves the RM already collects.
//   FCP       - fair cache partitioning: greedy slowdown equalization. Each
//               round the core with the highest predicted slowdown relative
//               to its alpha-relaxed baseline time receives one way.
//   ClassPart - LFOC-style class-based partitioning (pmctrack's light /
//               streaming / sensitive taxonomy via workload/classify): light
//               and streaming apps are pinned near the minimum allocation,
//               cache-sensitive apps share the remaining budget.
//
// All three choose ONLY the partition {w_j}; frequency and core size stay at
// the baseline setting. The functions are pure, deterministic (ties break
// toward the lowest core index) and allocation-free; per-invocation inputs
// live in a BaselineWorkspace owned by the ResourceManager so the zero-alloc
// invariant of the invoke path (gated by bench_rm_invoke) holds for them too.
#ifndef QOSRM_RM_BASELINE_POLICIES_HH
#define QOSRM_RM_BASELINE_POLICIES_HH

#include <cstdint>
#include <span>
#include <vector>

#include "workload/classify.hh"

namespace qosrm::rm {

/// Cached per-core inputs and the resulting allocation of the baseline
/// policies. Buffers keep their capacity across interval boundaries.
struct BaselineWorkspace {
  /// cores x n_alloc ATD miss predictions; row j entry i is core j's
  /// predicted misses at w = min_ways + i.
  std::vector<double> miss;
  /// cores x n_alloc predicted interval times at the baseline (c, f) (FCP).
  std::vector<double> time_s;
  /// Per-core alpha-relaxed baseline time, the FCP slowdown denominator.
  std::vector<double> t_ref;
  /// Per-core partitioning class (ClassPart).
  std::vector<workload::PartClass> cls;
  /// Resulting per-core way allocation.
  std::vector<int> ways;
};

/// Qureshi-style lookahead partitioning. `miss` holds `cores` rows of
/// `max_ways - min_ways + 1` entries as in BaselineWorkspace::miss; rows of
/// inactive cores (active[j] == 0) are ignored and those cores are pinned at
/// `min_ways`. Every core starts at `min_ways`; each round the pending budget
/// goes to the (core, block size) with the maximum marginal utility
/// (miss(w) - miss(w + k)) / k, lowest core index on ties. Writes the
/// partition into `ways` (never exceeding `total_ways` in total; leftover
/// budget stays unallocated once every active core is at `max_ways`). `ops`,
/// when non-null, accumulates one operation per marginal-utility probe - the
/// unit of the RM instruction-overhead model.
void ucp_partition(std::span<const double> miss,
                   std::span<const std::uint8_t> active, int min_ways,
                   int max_ways, int total_ways, std::span<int> ways,
                   std::uint64_t* ops = nullptr);

/// Fair partitioning by greedy slowdown equalization. `time_s` holds `cores`
/// rows of predicted times by allocation (layout as `miss` above) and
/// `t_ref[j]` the alpha-relaxed baseline time; slowdown at w is
/// time_s[j][w - min_ways] / t_ref[j]. Each round the active core with the
/// highest current slowdown (and headroom below `max_ways`) receives one way,
/// lowest core index on ties, which drives the final slowdowns toward
/// equality: on return s_j(w_j) <= s_k(w_k - 1) for every pair of active
/// cores with w_j < max_ways and w_k > min_ways (a core saturated at
/// max_ways may stay more slowed down - no transfer can help it). One op per
/// slowdown comparison.
void fcp_partition(std::span<const double> time_s, std::span<const double> t_ref,
                   std::span<const std::uint8_t> active, int min_ways,
                   int max_ways, int total_ways, std::span<int> ways,
                   std::uint64_t* ops = nullptr);

/// Class-based partitioning: every core starts at `min_ways`; the remaining
/// budget is dealt one way at a time, round-robin by ascending core index,
/// first over cache-sensitive cores below `max_ways`, then (only once every
/// sensitive core is saturated) over the remaining active cores. One op per
/// way handed out plus one per class lookup.
void classpart_partition(std::span<const workload::PartClass> cls,
                         std::span<const std::uint8_t> active, int min_ways,
                         int max_ways, int total_ways, std::span<int> ways,
                         std::uint64_t* ops = nullptr);

}  // namespace qosrm::rm

#endif  // QOSRM_RM_BASELINE_POLICIES_HH
