// Online performance models (paper Eq. 1-3).
//
// All three models share the interval-analytical skeleton of Eq. 1,
//
//   T_i+1(c, f, w) = (T_0,i * D_i/D(c) + T_1,i) * f_i/f + T_mem,i+1(c, w)
//
// and differ only in how they predict the memory stall time:
//
//   Model1 (naive):       T_mem = M(w) * L_mem            - ignores MLP
//   Model2 (prior work):  T_mem = M(w)/MLP_i * L_mem      - constant MLP
//   Model3 (proposed):    T_mem = LM_atd(c, w) * L_mem    - MLP-ATD counters
//   Perfect (Fig. 9):     ground truth of the next interval from the
//                         simulation database
//
// Note on Eq. 1 as printed: the compute term must shrink when the dispatch
// width grows, so the width ratio is implemented as D_i/D(c) (see DESIGN.md).
#ifndef QOSRM_RM_PERF_MODEL_HH
#define QOSRM_RM_PERF_MODEL_HH

#include <memory>

#include "arch/system_config.hh"
#include "rm/counters.hh"

namespace qosrm::rm {

enum class PerfModelKind { Model1 = 1, Model2 = 2, Model3 = 3, Perfect = 0 };

[[nodiscard]] const char* perf_model_name(PerfModelKind kind) noexcept;

class PerfModel {
 public:
  PerfModel(PerfModelKind kind, const arch::SystemConfig& system)
      : kind_(kind), system_(system) {}

  /// Predicted execution time of the upcoming interval at `target`, from the
  /// past-interval counters in `snap`.
  [[nodiscard]] double predict_time(const CounterSnapshot& snap,
                                    const workload::Setting& target) const;

  /// Predicted memory stall time component only.
  [[nodiscard]] double predict_mem_time(const CounterSnapshot& snap,
                                        const workload::Setting& target) const;

  /// QoS check (paper Eq. 3): predicted T(target) <= alpha * predicted
  /// T(baseline setting), both from the same counters.
  [[nodiscard]] bool qos_ok(const CounterSnapshot& snap,
                            const workload::Setting& target) const;

  [[nodiscard]] PerfModelKind kind() const noexcept { return kind_; }
  [[nodiscard]] const arch::SystemConfig& system() const noexcept { return system_; }

 private:
  PerfModelKind kind_;
  arch::SystemConfig system_;
};

}  // namespace qosrm::rm

#endif  // QOSRM_RM_PERF_MODEL_HH
