// Global LLC-way distribution (paper Fig. 3, Section III-A).
//
// Minimizes  Sum_j E_j(w_j)  subject to  Sum_j w_j = A  (the total way
// budget) and per-core bounds, by recursively reducing PAIRS of energy
// curves with a min-plus convolution:
//
//   E_{1+2}(W) = min over w1+w2 = W of E_1(w1) + E_2(w2)
//
// and backtracking the argmins down the reduction tree. The complexity is
// polynomial in the core count (the paper's first stated advantage), and the
// interface between the local and global stages is exactly one energy curve
// per core (the second advantage).
#ifndef QOSRM_RM_GLOBAL_OPT_HH
#define QOSRM_RM_GLOBAL_OPT_HH

#include <cstdint>
#include <span>
#include <vector>

namespace qosrm::rm {

/// Energy as a function of the way allocation for one core: energy[i] is the
/// estimate for w = min_ways + i; infinity marks QoS-infeasible allocations.
struct EnergyCurve {
  int min_ways = 2;
  std::vector<double> energy;

  [[nodiscard]] int max_ways() const noexcept {
    return min_ways + static_cast<int>(energy.size()) - 1;
  }
};

struct GlobalOptResult {
  bool feasible = false;
  double total_energy = 0.0;
  std::vector<int> ways;  ///< chosen allocation per core
};

class GlobalOptimizer {
 public:
  /// Pairwise-reduction optimizer. `ops` (optional) accumulates DP steps for
  /// the RM instruction-overhead model.
  [[nodiscard]] static GlobalOptResult optimize(std::span<const EnergyCurve> curves,
                                                int total_ways,
                                                std::uint64_t* ops = nullptr);

  /// Exhaustive reference implementation (tests only; exponential).
  [[nodiscard]] static GlobalOptResult brute_force(std::span<const EnergyCurve> curves,
                                                   int total_ways);
};

}  // namespace qosrm::rm

#endif  // QOSRM_RM_GLOBAL_OPT_HH
