// Global LLC-way distribution (paper Fig. 3, Section III-A).
//
// Minimizes  Sum_j E_j(w_j)  subject to  Sum_j w_j = A  (the total way
// budget) and per-core bounds, by iteratively reducing PAIRS of energy
// curves with a min-plus convolution:
//
//   E_{1+2}(W) = min over w1+w2 = W of E_1(w1) + E_2(w2)
//
// and backtracking the argmins down the reduction. The complexity is
// polynomial in the core count (the paper's first stated advantage), and the
// interface between the local and global stages is exactly one energy curve
// per core (the second advantage).
//
// The reduction runs over flat, reusable structure-of-arrays buffers
// (GlobalOptWorkspace) so the per-interval-boundary invocation path performs
// no heap allocation once the workspace has warmed up, and the O(n^2 * W)
// feasible-pair inner loop dispatches to an AVX2 kernel where available
// (common/simd.hh; the scalar fallback is pinned bit-identical by the
// randomized equivalence tests). See the README performance section.
#ifndef QOSRM_RM_GLOBAL_OPT_HH
#define QOSRM_RM_GLOBAL_OPT_HH

#include <cstdint>
#include <span>
#include <vector>

#include "common/simd.hh"

namespace qosrm::rm {

/// Energy as a function of the way allocation for one core: energy[i] is the
/// estimate for w = min_ways + i; infinity marks QoS-infeasible allocations.
struct EnergyCurve {
  int min_ways = 2;
  std::vector<double> energy;

  [[nodiscard]] int max_ways() const noexcept {
    return min_ways + static_cast<int>(energy.size()) - 1;
  }
};

/// Non-owning view of one core's energy curve (same indexing convention as
/// EnergyCurve). The allocation-free optimize_into() path takes views so
/// callers can keep the curves in whatever storage they reuse.
struct EnergyCurveView {
  int min_ways = 2;
  std::span<const double> energy;

  [[nodiscard]] int max_ways() const noexcept {
    return min_ways + static_cast<int>(energy.size()) - 1;
  }
};

struct GlobalOptResult {
  bool feasible = false;
  double total_energy = 0.0;
  std::vector<int> ways;  ///< chosen allocation per core (empty if infeasible)
};

/// Reusable scratch of the pairwise reduction in structure-of-arrays layout:
/// per-node metadata lives in parallel flat vectors (index i addresses one
/// reduction node across all of them) and the combined energy rows share one
/// dense pool, so the inner loop streams over contiguous doubles - the
/// layout the vectorized kernel consumes directly.
/// Every container keeps its capacity across calls, so a workspace that has
/// seen a problem shape once makes optimize_into() allocation-free. Not
/// thread-safe; use one workspace per thread.
class GlobalOptWorkspace {
 public:
  GlobalOptWorkspace() = default;

 private:
  friend class GlobalOptimizer;

  // --- node metadata, SoA: entry i describes one reduction node ------------
  // A node covers cores [first_core_[i], last_core_[i]] and total ways
  // [lo_[i], lo_[i] + size_[i]). Leaves view the caller's curve directly
  // (leaf_energy_[i] != nullptr); combined nodes own the pool slice
  // energy_[energy_off_[i], +size). left_[i] < 0 marks a leaf.
  //
  // The forward pass stores VALUES only - no argmin lanes. Backtracking
  // recovers each split by re-scanning the children for the first (ascending
  // wa) feasible pair whose sum equals the node's value bit-for-bit, which
  // is exactly the argmin a strict-less forward sweep would have recorded.
  // That halves the kernel's stores and drops the int32 blend path entirely,
  // at the cost of log2(cores) O(row) scans - executed once per invocation
  // instead of once per cell.
  std::vector<int> lo_;
  std::vector<int> size_;
  std::vector<std::size_t> energy_off_;
  std::vector<const double*> leaf_energy_;
  std::vector<int> first_core_;
  std::vector<int> last_core_;
  std::vector<int> left_;  ///< child node indices; -1 marks a leaf
  std::vector<int> right_;

  // --- dense pool the combine kernels write --------------------------------
  std::vector<double> energy_;

  std::vector<int> level_;  ///< node indices of the current reduction level
  std::vector<int> next_;   ///< node indices of the next reduction level

  /// Per-combine compaction of the right child's feasible entries (parallel
  /// index/value arrays): the scalar kernel iterates these so it only
  /// touches finite energies; the vector kernel runs dense over the child
  /// row instead (an infinite entry can never win a strict-less compare)
  /// and only needs the count for the uniform op accounting.
  std::vector<int> feas_idx_;
  std::vector<double> feas_val_;

  [[nodiscard]] std::size_t num_nodes() const noexcept { return lo_.size(); }
  void clear_nodes();
  /// Appends one node's metadata across the parallel arrays; returns its index.
  int push_node(int lo, int size, std::size_t energy_off,
                const double* leaf_energy, int first_core, int last_core,
                int left, int right);
};

class GlobalOptimizer {
 public:
  /// Pairwise-reduction optimizer over owning curves. Convenience wrapper
  /// around optimize_into() with a throwaway workspace (tests, benches and
  /// one-shot callers). `ops` (optional) accumulates DP steps for the RM
  /// instruction-overhead model; one op is one FEASIBLE-pair DP step, i.e. a
  /// (w_a, w_b) combination whose both entries are finite - infeasible
  /// entries on either side are skipped without charge. The count is
  /// independent of the SIMD dispatch level: a vectorized lane batch charges
  /// exactly the feasible pairs it covers, so the modeled RM overhead (and
  /// the golden CSVs) never depends on the vector width.
  [[nodiscard]] static GlobalOptResult optimize(std::span<const EnergyCurve> curves,
                                                int total_ways,
                                                std::uint64_t* ops = nullptr);

  /// The allocation-free core: runs the reduction inside `ws` and writes the
  /// outcome into `out`, reusing the storage of both. Bit-identical to
  /// optimize() for equal inputs (same reduction order, same tie-breaking)
  /// at every dispatch level. Uses simd::active_level().
  static void optimize_into(std::span<const EnergyCurveView> curves,
                            int total_ways, GlobalOptWorkspace& ws,
                            GlobalOptResult& out, std::uint64_t* ops = nullptr);

  /// Explicit-dispatch variant for the equivalence tests and A/B benches.
  /// Requesting Avx2 when the kernel is unavailable aborts.
  static void optimize_into(std::span<const EnergyCurveView> curves,
                            int total_ways, GlobalOptWorkspace& ws,
                            GlobalOptResult& out, std::uint64_t* ops,
                            simd::Level level);

  /// Exhaustive reference implementation (tests only; exponential).
  [[nodiscard]] static GlobalOptResult brute_force(std::span<const EnergyCurve> curves,
                                                   int total_ways);
};

}  // namespace qosrm::rm

#endif  // QOSRM_RM_GLOBAL_OPT_HH
