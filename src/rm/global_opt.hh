// Global shared-resource distribution (paper Fig. 3, Section III-A,
// generalized to the CBP multi-resource domain, arXiv:2102.11528).
//
// Minimizes  Sum_j E_j(w_j, b_j)  subject to  Sum_j w_j = A  (the total LLC
// way budget),  Sum_j b_j = B  (the total memory-bandwidth share budget) and
// per-core bounds, by iteratively reducing PAIRS of energy surfaces with a
// 2-D min-plus convolution:
//
//   E_{1+2}(W, B) = min over w1+w2 = W, b1+b2 = B of E_1(w1,b1) + E_2(w2,b2)
//
// and backtracking the argmins down the reduction. The complexity is
// polynomial in the core count (the paper's first stated advantage), and the
// interface between the local and global stages is exactly one energy
// surface per core (the second advantage). The ways-only problem is the
// degenerate case where every surface has a single share row: the
// convolution collapses to the paper's 1-D recurrence and the implementation
// performs bit-identically the same operations in the same order (pinned by
// the randomized 1-D-oracle equivalence tests).
//
// The reduction runs over flat, reusable structure-of-arrays buffers
// (GlobalOptWorkspace) so the per-interval-boundary invocation path performs
// no heap allocation once the workspace has warmed up, and the O(n^2 * W)
// feasible-pair inner loop dispatches to an AVX2 kernel where available
// (common/simd.hh; the scalar fallback is pinned bit-identical by the
// randomized equivalence tests). See the README performance section.
#ifndef QOSRM_RM_GLOBAL_OPT_HH
#define QOSRM_RM_GLOBAL_OPT_HH

#include <cstdint>
#include <span>
#include <vector>

#include "common/simd.hh"

namespace qosrm::rm {

/// Energy as a function of the shared-resource allocation for one core: a
/// b-major surface with contiguous w-rows,
/// energy[(b - min_shares) * num_ways() + (w - min_ways)], where infinity
/// marks QoS-infeasible allocations. The `min_shares`/`num_shares` members
/// sit after `energy` so the ubiquitous ways-only positional initializer
/// {min_ways, energy} keeps its meaning: a single share row, i.e. the plain
/// 1-D energy curve.
struct EnergyCurve {
  int min_ways = 2;
  std::vector<double> energy;
  int min_shares = 1;
  int num_shares = 1;

  [[nodiscard]] int num_ways() const noexcept {
    return num_shares > 0 ? static_cast<int>(energy.size()) / num_shares : 0;
  }
  [[nodiscard]] int max_ways() const noexcept { return min_ways + num_ways() - 1; }
  [[nodiscard]] int max_shares() const noexcept {
    return min_shares + num_shares - 1;
  }
};

/// Non-owning view of one core's energy surface (same indexing convention as
/// EnergyCurve). The allocation-free optimize_into() path takes views so
/// callers can keep the surfaces in whatever storage they reuse.
struct EnergyCurveView {
  int min_ways = 2;
  std::span<const double> energy;
  int min_shares = 1;
  int num_shares = 1;

  [[nodiscard]] int num_ways() const noexcept {
    return num_shares > 0 ? static_cast<int>(energy.size()) / num_shares : 0;
  }
  [[nodiscard]] int max_ways() const noexcept { return min_ways + num_ways() - 1; }
  [[nodiscard]] int max_shares() const noexcept {
    return min_shares + num_shares - 1;
  }
};

struct GlobalOptResult {
  bool feasible = false;
  double total_energy = 0.0;
  std::vector<int> ways;    ///< chosen way allocation per core (empty if infeasible)
  std::vector<int> shares;  ///< chosen bandwidth shares per core (ways-sized)
};

/// Reusable scratch of the pairwise reduction in structure-of-arrays layout:
/// per-node metadata lives in parallel flat vectors (index i addresses one
/// reduction node across all of them) and the combined energy rows share one
/// dense pool, so the inner loop streams over contiguous doubles - the
/// layout the vectorized kernel consumes directly.
/// Every container keeps its capacity across calls, so a workspace that has
/// seen a problem shape once makes optimize_into() allocation-free. Not
/// thread-safe; use one workspace per thread.
class GlobalOptWorkspace {
 public:
  GlobalOptWorkspace() = default;

 private:
  friend class GlobalOptimizer;

  // --- node metadata, SoA: entry i describes one reduction node ------------
  // A node covers cores [first_core_[i], last_core_[i]], total ways
  // [lo_[i], lo_[i] + size_[i]) and total bandwidth shares
  // [b_lo_[i], b_lo_[i] + b_size_[i]); its surface is b-major with
  // contiguous w-rows of length size_[i] (flat extent size_ * b_size_).
  // Leaves view the caller's surface directly (leaf_energy_[i] != nullptr);
  // combined nodes own the pool slice energy_[energy_off_[i], +extent).
  // left_[i] < 0 marks a leaf.
  //
  // The forward pass stores VALUES only - no argmin lanes. Backtracking
  // recovers each split by re-scanning the children for the first (ascending
  // wa) feasible pair whose sum equals the node's value bit-for-bit, which
  // is exactly the argmin a strict-less forward sweep would have recorded.
  // That halves the kernel's stores and drops the int32 blend path entirely,
  // at the cost of log2(cores) O(row) scans - executed once per invocation
  // instead of once per cell.
  std::vector<int> lo_;
  std::vector<int> size_;
  std::vector<int> b_lo_;
  std::vector<int> b_size_;
  std::vector<std::size_t> energy_off_;
  std::vector<const double*> leaf_energy_;
  std::vector<int> first_core_;
  std::vector<int> last_core_;
  std::vector<int> left_;  ///< child node indices; -1 marks a leaf
  std::vector<int> right_;

  // --- dense pool the combine kernels write --------------------------------
  std::vector<double> energy_;

  std::vector<int> level_;  ///< node indices of the current reduction level
  std::vector<int> next_;   ///< node indices of the next reduction level

  /// Per-combine compaction of the right child's feasible cells (parallel
  /// contribution-offset/value arrays; a cell's stored offset is its
  /// b-row index times the OUTPUT row length plus its w index, so the
  /// output flat index of any pair is just the two contributions summed):
  /// the scalar kernel iterates these so it only touches finite energies;
  /// the vector kernel runs dense over each child b-row instead (an
  /// infinite entry can never win a strict-less compare), clipped to the
  /// per-row feasible spans below, and only needs the total count for the
  /// uniform op accounting.
  std::vector<int> feas_idx_;
  std::vector<double> feas_val_;
  std::vector<int> feas_row_first_;  ///< per right-child b-row: first feasible
  std::vector<int> feas_row_last_;   ///< w index (-1 for an all-infeasible row)

  [[nodiscard]] std::size_t num_nodes() const noexcept { return lo_.size(); }
  void clear_nodes();
  /// Appends one node's metadata across the parallel arrays; returns its index.
  int push_node(int lo, int size, int b_lo, int b_size, std::size_t energy_off,
                const double* leaf_energy, int first_core, int last_core,
                int left, int right);
};

class GlobalOptimizer {
 public:
  /// Pairwise-reduction optimizer over owning surfaces. Convenience wrapper
  /// around optimize_into() with a throwaway workspace (tests, benches and
  /// one-shot callers). `ops` (optional) accumulates DP steps for the RM
  /// instruction-overhead model; one op is one FEASIBLE-pair DP step, i.e. a
  /// ((w_a, b_a), (w_b, b_b)) cell combination whose both entries are
  /// finite - infeasible entries on either side are skipped without charge.
  /// The count is independent of the SIMD dispatch level: a vectorized lane
  /// batch charges exactly the feasible pairs it covers, so the modeled RM
  /// overhead (and the golden CSVs) never depends on the vector width.
  [[nodiscard]] static GlobalOptResult optimize(std::span<const EnergyCurve> curves,
                                                int total_ways, int total_shares,
                                                std::uint64_t* ops = nullptr);

  /// Ways-only convenience: the share budget defaults to the sum of the
  /// curves' lowest shares, so single-row (degenerate) surfaces - in
  /// particular every pre-CBP curve - optimize exactly as before.
  [[nodiscard]] static GlobalOptResult optimize(std::span<const EnergyCurve> curves,
                                                int total_ways,
                                                std::uint64_t* ops = nullptr);

  /// The allocation-free core: runs the reduction inside `ws` and writes the
  /// outcome into `out`, reusing the storage of both. Bit-identical to
  /// optimize() for equal inputs (same reduction order, same tie-breaking)
  /// at every dispatch level. Uses simd::active_level().
  static void optimize_into(std::span<const EnergyCurveView> curves,
                            int total_ways, int total_shares,
                            GlobalOptWorkspace& ws, GlobalOptResult& out,
                            std::uint64_t* ops = nullptr);

  /// Ways-only convenience (share budget = sum of lowest shares).
  static void optimize_into(std::span<const EnergyCurveView> curves,
                            int total_ways, GlobalOptWorkspace& ws,
                            GlobalOptResult& out, std::uint64_t* ops = nullptr);

  /// Explicit-dispatch variant for the equivalence tests and A/B benches.
  /// Requesting Avx2 when the kernel is unavailable aborts.
  static void optimize_into(std::span<const EnergyCurveView> curves,
                            int total_ways, int total_shares,
                            GlobalOptWorkspace& ws, GlobalOptResult& out,
                            std::uint64_t* ops, simd::Level level);

  /// Ways-only explicit-dispatch convenience.
  static void optimize_into(std::span<const EnergyCurveView> curves,
                            int total_ways, GlobalOptWorkspace& ws,
                            GlobalOptResult& out, std::uint64_t* ops,
                            simd::Level level);

  /// Exhaustive reference implementation (tests only; exponential).
  [[nodiscard]] static GlobalOptResult brute_force(std::span<const EnergyCurve> curves,
                                                   int total_ways,
                                                   int total_shares);

  /// Ways-only exhaustive reference (share budget = sum of lowest shares).
  [[nodiscard]] static GlobalOptResult brute_force(std::span<const EnergyCurve> curves,
                                                   int total_ways);
};

}  // namespace qosrm::rm

#endif  // QOSRM_RM_GLOBAL_OPT_HH
