// Global LLC-way distribution (paper Fig. 3, Section III-A).
//
// Minimizes  Sum_j E_j(w_j)  subject to  Sum_j w_j = A  (the total way
// budget) and per-core bounds, by iteratively reducing PAIRS of energy
// curves with a min-plus convolution:
//
//   E_{1+2}(W) = min over w1+w2 = W of E_1(w1) + E_2(w2)
//
// and backtracking the argmins down the reduction. The complexity is
// polynomial in the core count (the paper's first stated advantage), and the
// interface between the local and global stages is exactly one energy curve
// per core (the second advantage).
//
// The reduction runs over flat, reusable buffers (GlobalOptWorkspace) so the
// per-interval-boundary invocation path performs no heap allocation once the
// workspace has warmed up; see the README performance section.
#ifndef QOSRM_RM_GLOBAL_OPT_HH
#define QOSRM_RM_GLOBAL_OPT_HH

#include <cstdint>
#include <span>
#include <vector>

namespace qosrm::rm {

/// Energy as a function of the way allocation for one core: energy[i] is the
/// estimate for w = min_ways + i; infinity marks QoS-infeasible allocations.
struct EnergyCurve {
  int min_ways = 2;
  std::vector<double> energy;

  [[nodiscard]] int max_ways() const noexcept {
    return min_ways + static_cast<int>(energy.size()) - 1;
  }
};

/// Non-owning view of one core's energy curve (same indexing convention as
/// EnergyCurve). The allocation-free optimize_into() path takes views so
/// callers can keep the curves in whatever storage they reuse.
struct EnergyCurveView {
  int min_ways = 2;
  std::span<const double> energy;

  [[nodiscard]] int max_ways() const noexcept {
    return min_ways + static_cast<int>(energy.size()) - 1;
  }
};

struct GlobalOptResult {
  bool feasible = false;
  double total_energy = 0.0;
  std::vector<int> ways;  ///< chosen allocation per core (empty if infeasible)
};

/// Reusable scratch of the pairwise reduction: flat node metadata plus flat
/// energy/argmin pools, replacing the old per-invocation tree of heap-
/// allocated nodes. Every container keeps its capacity across calls, so a
/// workspace that has seen a problem shape once makes optimize_into()
/// allocation-free. Not thread-safe; use one workspace per thread.
class GlobalOptWorkspace {
 public:
  GlobalOptWorkspace() = default;

 private:
  friend class GlobalOptimizer;

  /// One reduction node covering cores [first_core, last_core] and total
  /// ways [lo, lo + size). Leaves view the caller's curve directly
  /// (leaf_energy != nullptr); combined nodes own the slices
  /// energy_[energy_off, +size) and left_ways_[left_ways_off, +size).
  struct Node {
    int lo = 0;
    int size = 0;
    std::size_t energy_off = 0;
    std::size_t left_ways_off = 0;
    const double* leaf_energy = nullptr;
    int first_core = 0;
    int last_core = 0;
    int left = -1;  ///< child node indices; -1 marks a leaf
    int right = -1;

    [[nodiscard]] int hi() const noexcept { return lo + size - 1; }
  };

  std::vector<Node> nodes_;
  std::vector<double> energy_;
  std::vector<int> left_ways_;
  std::vector<int> level_;  ///< node indices of the current reduction level
  std::vector<int> next_;   ///< node indices of the next reduction level
  /// Per-combine compaction of the right child's feasible entries, so the
  /// O(n^2) inner loop runs branch-free over finite energies only.
  std::vector<int> feas_idx_;
  std::vector<double> feas_val_;
};

class GlobalOptimizer {
 public:
  /// Pairwise-reduction optimizer over owning curves. Convenience wrapper
  /// around optimize_into() with a throwaway workspace (tests, benches and
  /// one-shot callers). `ops` (optional) accumulates DP steps for the RM
  /// instruction-overhead model; one op is one FEASIBLE-pair DP step, i.e. a
  /// (w_a, w_b) combination whose both entries are finite - infeasible
  /// entries on either side are skipped without charge.
  [[nodiscard]] static GlobalOptResult optimize(std::span<const EnergyCurve> curves,
                                                int total_ways,
                                                std::uint64_t* ops = nullptr);

  /// The allocation-free core: runs the reduction inside `ws` and writes the
  /// outcome into `out`, reusing the storage of both. Bit-identical to
  /// optimize() for equal inputs (same reduction order, same tie-breaking).
  static void optimize_into(std::span<const EnergyCurveView> curves,
                            int total_ways, GlobalOptWorkspace& ws,
                            GlobalOptResult& out, std::uint64_t* ops = nullptr);

  /// Exhaustive reference implementation (tests only; exponential).
  [[nodiscard]] static GlobalOptResult brute_force(std::span<const EnergyCurve> curves,
                                                   int total_ways);
};

}  // namespace qosrm::rm

#endif  // QOSRM_RM_GLOBAL_OPT_HH
