#include "rm/global_opt.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hh"

namespace qosrm::rm {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

void GlobalOptimizer::optimize_into(std::span<const EnergyCurveView> curves,
                                    int total_ways, GlobalOptWorkspace& ws,
                                    GlobalOptResult& out, std::uint64_t* ops) {
  QOSRM_CHECK(!curves.empty());
  using Node = GlobalOptWorkspace::Node;

  out.feasible = false;
  out.total_energy = 0.0;
  out.ways.clear();

  // clear() keeps capacity: after one call per problem shape, nothing below
  // allocates.
  ws.nodes_.clear();
  ws.energy_.clear();
  ws.left_ways_.clear();
  ws.level_.clear();
  ws.next_.clear();

  // Leaves view the input curves directly - no copy.
  for (std::size_t i = 0; i < curves.size(); ++i) {
    QOSRM_CHECK(!curves[i].energy.empty());
    Node leaf;
    leaf.lo = curves[i].min_ways;
    leaf.size = static_cast<int>(curves[i].energy.size());
    leaf.leaf_energy = curves[i].energy.data();
    leaf.first_core = static_cast<int>(i);
    leaf.last_core = static_cast<int>(i);
    ws.level_.push_back(static_cast<int>(ws.nodes_.size()));
    ws.nodes_.push_back(leaf);
  }

  // Reduce adjacent pairs until one curve remains.
  std::uint64_t steps = 0;
  while (ws.level_.size() > 1) {
    ws.next_.clear();
    for (std::size_t i = 0; i + 1 < ws.level_.size(); i += 2) {
      const int ai = ws.level_[i];
      const int bi = ws.level_[i + 1];
      // Children by value: the push_back below may relocate nodes_.
      const Node a = ws.nodes_[static_cast<std::size_t>(ai)];
      const Node b = ws.nodes_[static_cast<std::size_t>(bi)];

      Node n;
      n.lo = a.lo + b.lo;
      n.size = a.hi() + b.hi() - n.lo + 1;
      n.energy_off = ws.energy_.size();
      n.left_ways_off = ws.left_ways_.size();
      n.first_core = a.first_core;
      n.last_core = b.last_core;
      n.left = ai;
      n.right = bi;
      ws.energy_.resize(n.energy_off + static_cast<std::size_t>(n.size), kInf);
      ws.left_ways_.resize(n.left_ways_off + static_cast<std::size_t>(n.size), -1);

      // Pointers taken after the resize (which may relocate on warmup).
      const double* ea_arr =
          a.leaf_energy != nullptr ? a.leaf_energy : ws.energy_.data() + a.energy_off;
      const double* eb_arr =
          b.leaf_energy != nullptr ? b.leaf_energy : ws.energy_.data() + b.energy_off;
      double* ne = ws.energy_.data() + n.energy_off;
      int* nlw = ws.left_ways_.data() + n.left_ways_off;

      // Compact the right child's feasible entries once (ascending, so the
      // pair visit order - and thus the first-split tie-breaking - matches
      // the plain double loop); the inner loop then runs branch-free.
      ws.feas_idx_.clear();
      ws.feas_val_.clear();
      for (int ib = 0; ib < b.size; ++ib) {
        const double eb = eb_arr[ib];
        if (std::isinf(eb)) continue;
        ws.feas_idx_.push_back(ib);
        ws.feas_val_.push_back(eb);
      }
      const std::size_t n_feas_b = ws.feas_idx_.size();

      // One op = one feasible-pair DP step, counted uniformly whichever side
      // an infeasible entry is on (accumulated in bulk per feasible row).
      std::uint64_t feas_a = 0;
      for (int ia = 0; ia < a.size; ++ia) {
        const double ea = ea_arr[ia];
        if (std::isinf(ea)) continue;
        ++feas_a;
        // idx = (a.lo + ia) + (b.lo + ib) - n.lo = ia + ib.
        for (std::size_t k = 0; k < n_feas_b; ++k) {
          const double v = ea + ws.feas_val_[k];
          const int idx = ia + ws.feas_idx_[k];
          if (v < ne[idx]) {
            ne[idx] = v;
            nlw[idx] = a.lo + ia;
          }
        }
      }
      steps += feas_a * n_feas_b;

      ws.next_.push_back(static_cast<int>(ws.nodes_.size()));
      ws.nodes_.push_back(n);
    }
    if (ws.level_.size() % 2 == 1) ws.next_.push_back(ws.level_.back());
    std::swap(ws.level_, ws.next_);
  }
  if (ops != nullptr) *ops += steps;

  const Node& root = ws.nodes_[static_cast<std::size_t>(ws.level_.front())];
  if (total_ways < root.lo || total_ways > root.hi()) return;
  const double e =
      root.leaf_energy != nullptr
          ? root.leaf_energy[total_ways - root.lo]
          : ws.energy_[root.energy_off + static_cast<std::size_t>(total_ways - root.lo)];
  if (std::isinf(e)) return;

  out.feasible = true;
  out.total_energy = e;
  out.ways.assign(curves.size(), 0);

  // Backtrack the argmin splits down the reduction (depth is log2(cores), so
  // plain recursion over node indices needs no scratch).
  const auto backtrack = [&ws](auto&& self, int idx, int total,
                               std::vector<int>& ways) -> void {
    const Node& node = ws.nodes_[static_cast<std::size_t>(idx)];
    if (node.left < 0) {  // leaf
      ways[static_cast<std::size_t>(node.first_core)] = total;
      return;
    }
    const int wl = ws.left_ways_[node.left_ways_off +
                                 static_cast<std::size_t>(total - node.lo)];
    QOSRM_CHECK_MSG(wl >= 0, "backtracking through an infeasible entry");
    self(self, node.left, wl, ways);
    self(self, node.right, total - wl, ways);
  };
  backtrack(backtrack, ws.level_.front(), total_ways, out.ways);
}

GlobalOptResult GlobalOptimizer::optimize(std::span<const EnergyCurve> curves,
                                          int total_ways, std::uint64_t* ops) {
  std::vector<EnergyCurveView> views;
  views.reserve(curves.size());
  for (const EnergyCurve& c : curves) {
    views.push_back({c.min_ways, std::span<const double>(c.energy)});
  }
  GlobalOptWorkspace ws;
  GlobalOptResult out;
  optimize_into(views, total_ways, ws, out, ops);
  return out;
}

GlobalOptResult GlobalOptimizer::brute_force(std::span<const EnergyCurve> curves,
                                             int total_ways) {
  QOSRM_CHECK(!curves.empty());
  GlobalOptResult best;
  best.total_energy = kInf;

  std::vector<int> ways(curves.size(), 0);
  // Depth-first enumeration of all allocations summing to total_ways.
  const auto recurse = [&](auto&& self, std::size_t core, int remaining,
                           double energy) -> void {
    const EnergyCurve& curve = curves[core];
    if (core + 1 == curves.size()) {
      if (remaining < curve.min_ways || remaining > curve.max_ways()) return;
      const double e =
          curve.energy[static_cast<std::size_t>(remaining - curve.min_ways)];
      if (std::isinf(e)) return;
      if (energy + e < best.total_energy) {
        ways[core] = remaining;
        best.feasible = true;
        best.total_energy = energy + e;
        best.ways = ways;
      }
      return;
    }
    for (int w = curve.min_ways; w <= curve.max_ways(); ++w) {
      const double e = curve.energy[static_cast<std::size_t>(w - curve.min_ways)];
      if (std::isinf(e)) continue;
      if (remaining - w < 0) break;
      ways[core] = w;
      self(self, core + 1, remaining - w, energy + e);
    }
  };
  recurse(recurse, 0, total_ways, 0.0);
  return best;
}

}  // namespace qosrm::rm
