#include "rm/global_opt.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hh"

#ifdef QOSRM_SIMD_HAVE_AVX2
#include <immintrin.h>
#endif

namespace qosrm::rm {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------------
// Per-row combine kernels. One call folds row ia of the left child into the
// output slice starting at ne (already offset by ia, so index k in the
// kernel addresses output total lo + ia + k): the min-plus update
//
//   ne[k] = min(ne[k], ea + eb[k])
//
// The forward pass keeps values only - the argmin is recovered during
// backtracking by an equality re-scan (see optimize_into), so the kernels
// carry no index lanes. The scalar kernel iterates the compacted feasible
// entries of the right child; the AVX2 kernel runs dense over the full child
// row instead - an infinite eb produces an infinite sum, which can never
// lower the running min, so both kernels leave bitwise-identical energies
// (pinned by the randomized equivalence tests in rm_test_global_opt).

inline void combine_row_scalar(double ea, std::span<const int> feas_idx,
                               std::span<const double> feas_val, double* ne) {
  const std::size_t n = feas_idx.size();
  for (std::size_t k = 0; k < n; ++k) {
    const double v = ea + feas_val[k];
    const int idx = feas_idx[k];
    if (v < ne[idx]) ne[idx] = v;
  }
}

#ifdef QOSRM_SIMD_HAVE_AVX2

__attribute__((target("avx2"))) void combine_row_avx2(double ea,
                                                      const double* eb, int n,
                                                      double* ne) {
  const __m256d vea = _mm256_set1_pd(ea);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_add_pd(vea, _mm256_loadu_pd(eb + i));
    // minpd returns its SECOND operand when the lanes compare equal, so
    // passing the current value second preserves it on ties - the same
    // outcome as the scalar strict-less update.
    _mm256_storeu_pd(ne + i, _mm256_min_pd(v, _mm256_loadu_pd(ne + i)));
  }
  for (; i < n; ++i) {
    const double v = ea + eb[i];
    if (v < ne[i]) ne[i] = v;
  }
}

#endif  // QOSRM_SIMD_HAVE_AVX2

}  // namespace

void GlobalOptWorkspace::clear_nodes() {
  // clear() keeps capacity: after one call per problem shape, nothing in the
  // reduction allocates.
  lo_.clear();
  size_.clear();
  b_lo_.clear();
  b_size_.clear();
  energy_off_.clear();
  leaf_energy_.clear();
  first_core_.clear();
  last_core_.clear();
  left_.clear();
  right_.clear();
  energy_.clear();
  level_.clear();
  next_.clear();
}

int GlobalOptWorkspace::push_node(int lo, int size, int b_lo, int b_size,
                                  std::size_t energy_off,
                                  const double* leaf_energy, int first_core,
                                  int last_core, int left, int right) {
  const int idx = static_cast<int>(num_nodes());
  lo_.push_back(lo);
  size_.push_back(size);
  b_lo_.push_back(b_lo);
  b_size_.push_back(b_size);
  energy_off_.push_back(energy_off);
  leaf_energy_.push_back(leaf_energy);
  first_core_.push_back(first_core);
  last_core_.push_back(last_core);
  left_.push_back(left);
  right_.push_back(right);
  return idx;
}

namespace {

/// Share budget implied by ways-only calls: every core at its lowest share.
/// For single-row (degenerate) surfaces this is the only feasible budget, so
/// the 1-D entry points keep their exact pre-CBP semantics.
[[nodiscard]] int default_total_shares(std::span<const EnergyCurveView> curves) {
  int total = 0;
  for (const EnergyCurveView& c : curves) total += c.min_shares;
  return total;
}

}  // namespace

void GlobalOptimizer::optimize_into(std::span<const EnergyCurveView> curves,
                                    int total_ways, int total_shares,
                                    GlobalOptWorkspace& ws,
                                    GlobalOptResult& out, std::uint64_t* ops) {
  optimize_into(curves, total_ways, total_shares, ws, out, ops,
                simd::active_level());
}

void GlobalOptimizer::optimize_into(std::span<const EnergyCurveView> curves,
                                    int total_ways, GlobalOptWorkspace& ws,
                                    GlobalOptResult& out, std::uint64_t* ops) {
  optimize_into(curves, total_ways, default_total_shares(curves), ws, out, ops,
                simd::active_level());
}

void GlobalOptimizer::optimize_into(std::span<const EnergyCurveView> curves,
                                    int total_ways, GlobalOptWorkspace& ws,
                                    GlobalOptResult& out, std::uint64_t* ops,
                                    simd::Level level) {
  optimize_into(curves, total_ways, default_total_shares(curves), ws, out, ops,
                level);
}

void GlobalOptimizer::optimize_into(std::span<const EnergyCurveView> curves,
                                    int total_ways, int total_shares,
                                    GlobalOptWorkspace& ws,
                                    GlobalOptResult& out, std::uint64_t* ops,
                                    simd::Level level) {
  QOSRM_CHECK(!curves.empty());
  const bool vectorized = level == simd::Level::Avx2;
#ifndef QOSRM_SIMD_HAVE_AVX2
  QOSRM_CHECK_MSG(!vectorized,
                  "AVX2 dispatch requested but the kernel was not compiled");
#endif

  out.feasible = false;
  out.total_energy = 0.0;
  out.ways.clear();
  out.shares.clear();

  ws.clear_nodes();

  // Leaves view the input surfaces directly - no copy.
  for (std::size_t i = 0; i < curves.size(); ++i) {
    QOSRM_CHECK(!curves[i].energy.empty());
    QOSRM_CHECK(curves[i].num_shares >= 1);
    QOSRM_CHECK(static_cast<int>(curves[i].energy.size()) %
                    curves[i].num_shares ==
                0);
    const int core = static_cast<int>(i);
    ws.level_.push_back(ws.push_node(
        curves[i].min_ways, curves[i].num_ways(), curves[i].min_shares,
        curves[i].num_shares, 0, curves[i].energy.data(), core, core, -1, -1));
  }

  // Reduce adjacent pairs until one curve remains.
  std::uint64_t steps = 0;
  while (ws.level_.size() > 1) {
    // The root combine produces a curve that is only ever read at one index
    // (total_ways; see below), so it evaluates just that output cell - an
    // O(a+b) scan instead of the O(a*b) row sweep. The cell is accumulated
    // over the same pairs in the same ia-ascending strict-less order, so its
    // value and argmin are bit-identical to the full sweep's. The charged op
    // count stays the full feasible-pair product: ops are the MODEL of the
    // RM's work (paper Section III-E) and must not depend on which cells an
    // implementation can prove dead, exactly as they must not depend on the
    // SIMD width.
    const bool root_combine = ws.level_.size() == 2;
    ws.next_.clear();
    for (std::size_t i = 0; i + 1 < ws.level_.size(); i += 2) {
      const auto ai = static_cast<std::size_t>(ws.level_[i]);
      const auto bi = static_cast<std::size_t>(ws.level_[i + 1]);
      // Child metadata by value: the push_node below may relocate the SoA
      // metadata arrays.
      const int a_lo = ws.lo_[ai];
      const int a_size = ws.size_[ai];
      const int a_b_lo = ws.b_lo_[ai];
      const int a_b_size = ws.b_size_[ai];
      const std::size_t a_energy_off = ws.energy_off_[ai];
      const double* a_leaf = ws.leaf_energy_[ai];
      const int b_lo = ws.lo_[bi];
      const int b_size = ws.size_[bi];
      const int b_b_lo = ws.b_lo_[bi];
      const int b_b_size = ws.b_size_[bi];
      const std::size_t b_energy_off = ws.energy_off_[bi];
      const double* b_leaf = ws.leaf_energy_[bi];

      const int n_lo = a_lo + b_lo;
      const int n_size = a_size + b_size - 1;
      const int n_b_lo = a_b_lo + b_b_lo;
      const int n_b_size = a_b_size + b_b_size - 1;
      const std::size_t energy_off = ws.energy_.size();
      ws.energy_.resize(energy_off + static_cast<std::size_t>(n_size) *
                                         static_cast<std::size_t>(n_b_size),
                        kInf);

      // Pointers taken after the resize (which may relocate on warmup).
      const double* ea_arr =
          a_leaf != nullptr ? a_leaf : ws.energy_.data() + a_energy_off;
      const double* eb_arr =
          b_leaf != nullptr ? b_leaf : ws.energy_.data() + b_energy_off;
      double* ne = ws.energy_.data() + energy_off;

      // Compact the right child's feasible cells once, in storage order
      // (b-row-major, ascending w - so the pair visit order, and thus the
      // first-split tie-breaking, matches the plain quadruple loop). A
      // cell's stored index is its CONTRIBUTION to the output flat index,
      // ibb * n_size + ib: because n_size = a_size + b_size - 1, the w parts
      // of any (left, right) pair can never carry into the b-row term, so
      // out_flat = left_contribution + right_contribution. The scalar kernel
      // consumes the compacted arrays; the vector kernel runs dense over
      // each child b-row (clipped to its feasible span) and only needs the
      // total count. With a single b-row everything reduces exactly to the
      // 1-D compaction.
      ws.feas_idx_.clear();
      ws.feas_val_.clear();
      ws.feas_row_first_.clear();
      ws.feas_row_last_.clear();
      const bool compact_b = !vectorized && !root_combine;
      std::uint64_t n_feas_b = 0;
      for (int ibb = 0; ibb < b_b_size; ++ibb) {
        const double* eb_row = eb_arr + static_cast<std::size_t>(ibb) *
                                            static_cast<std::size_t>(b_size);
        int row_first = b_size;  // feasible span of this b-row: the dense
        int row_last = -1;       // kernel clips to it (infinite prefix/suffix
                                 // entries can never win a strict-less)
        for (int ib = 0; ib < b_size; ++ib) {
          const double eb = eb_row[ib];
          if (std::isinf(eb)) continue;
          ++n_feas_b;
          row_first = row_first == b_size ? ib : row_first;
          row_last = ib;
          if (compact_b) {
            ws.feas_idx_.push_back(ibb * n_size + ib);
            ws.feas_val_.push_back(eb);
          }
        }
        ws.feas_row_first_.push_back(row_first == b_size ? -1 : row_first);
        ws.feas_row_last_.push_back(row_last);
      }

      // One op = one feasible-pair DP step, counted uniformly whichever side
      // an infeasible entry is on (accumulated in bulk per feasible cell) and
      // independent of how many lanes a kernel call covers.
      std::uint64_t feas_a = 0;
      if (root_combine) {
        // Only the (total_ways, total_shares) cell of the root surface is
        // observable: evaluate it directly (and count the feasible left
        // cells for the op charge). Out-of-range targets leave the surface
        // infinite, which the feasibility check below reports just like the
        // full sweep would.
        const int target_w = total_ways - n_lo;
        const int target_b = total_shares - n_b_lo;
        double best = kInf;
        for (int iba = 0; iba < a_b_size; ++iba) {
          const double* ea_row = ea_arr + static_cast<std::size_t>(iba) *
                                              static_cast<std::size_t>(a_size);
          for (int ia = 0; ia < a_size; ++ia) {
            const double ea = ea_row[ia];
            if (std::isinf(ea)) continue;
            ++feas_a;
            const int ibb = target_b - iba;
            if (ibb < 0 || ibb >= b_b_size) continue;
            const int ib = target_w - ia;
            if (ib < 0 || ib >= b_size) continue;
            const double v =
                ea + eb_arr[static_cast<std::size_t>(ibb) *
                                static_cast<std::size_t>(b_size) +
                            static_cast<std::size_t>(ib)];
            if (v < best) best = v;
          }
        }
        if (target_w >= 0 && target_w < n_size && target_b >= 0 &&
            target_b < n_b_size) {
          ne[static_cast<std::size_t>(target_b) *
                 static_cast<std::size_t>(n_size) +
             static_cast<std::size_t>(target_w)] = best;
        }
      } else if (n_feas_b > 0) {
        for (int iba = 0; iba < a_b_size; ++iba) {
          const double* ea_row = ea_arr + static_cast<std::size_t>(iba) *
                                              static_cast<std::size_t>(a_size);
          for (int ia = 0; ia < a_size; ++ia) {
            const double ea = ea_row[ia];
            if (std::isinf(ea)) continue;
            ++feas_a;
            // Output flat index: left contribution iba * n_size + ia plus
            // the right cell's stored contribution (no w carry, see above).
            const int ca = iba * n_size + ia;
            if (vectorized) {
#ifdef QOSRM_SIMD_HAVE_AVX2
              for (int ibb = 0; ibb < b_b_size; ++ibb) {
                const int row_first =
                    ws.feas_row_first_[static_cast<std::size_t>(ibb)];
                if (row_first < 0) continue;  // all-infeasible b-row
                const int row_last =
                    ws.feas_row_last_[static_cast<std::size_t>(ibb)];
                combine_row_avx2(
                    ea,
                    eb_arr + static_cast<std::size_t>(ibb) *
                                 static_cast<std::size_t>(b_size) +
                        row_first,
                    row_last - row_first + 1,
                    ne + ca + ibb * n_size + row_first);
              }
#endif
            } else {
              combine_row_scalar(ea, ws.feas_idx_, ws.feas_val_, ne + ca);
            }
          }
        }
      }
      steps += feas_a * n_feas_b;

      ws.next_.push_back(ws.push_node(n_lo, n_size, n_b_lo, n_b_size,
                                      energy_off, nullptr, ws.first_core_[ai],
                                      ws.last_core_[bi], static_cast<int>(ai),
                                      static_cast<int>(bi)));
    }
    if (ws.level_.size() % 2 == 1) ws.next_.push_back(ws.level_.back());
    std::swap(ws.level_, ws.next_);
  }
  if (ops != nullptr) *ops += steps;

  const auto root = static_cast<std::size_t>(ws.level_.front());
  const int root_lo = ws.lo_[root];
  const int root_hi = root_lo + ws.size_[root] - 1;
  const int root_b_lo = ws.b_lo_[root];
  const int root_b_hi = root_b_lo + ws.b_size_[root] - 1;
  if (total_ways < root_lo || total_ways > root_hi) return;
  if (total_shares < root_b_lo || total_shares > root_b_hi) return;
  const std::size_t root_cell =
      static_cast<std::size_t>(total_shares - root_b_lo) *
          static_cast<std::size_t>(ws.size_[root]) +
      static_cast<std::size_t>(total_ways - root_lo);
  const double e = ws.leaf_energy_[root] != nullptr
                       ? ws.leaf_energy_[root][root_cell]
                       : ws.energy_[ws.energy_off_[root] + root_cell];
  if (std::isinf(e)) return;

  out.feasible = true;
  out.total_energy = e;
  out.ways.assign(curves.size(), 0);
  out.shares.assign(curves.size(), 0);

  // Backtrack the argmin splits down the reduction (depth is log2(cores), so
  // plain recursion over node indices needs no scratch). The forward pass
  // stores no argmin lanes; each split is recovered here by re-scanning the
  // left child's cells in the same storage order (b-row-major, ascending w -
  // the order the forward kernels visit pairs for any fixed output cell) for
  // the first feasible pair whose sum reproduces the node's value
  // bit-for-bit. The strict-less forward sweep keeps the FIRST pair
  // attaining the final minimum, and the sums are the same IEEE double
  // additions, so the recovered split is identical to a recorded one. Cost:
  // log2(cores) surface scans per invocation - versus an index blend in
  // every kernel step.
  const auto backtrack = [&ws, &out](auto&& self, std::size_t idx, int total_w,
                                     int total_b, double value) -> void {
    if (ws.left_[idx] < 0) {  // leaf
      const auto core = static_cast<std::size_t>(ws.first_core_[idx]);
      out.ways[core] = total_w;
      out.shares[core] = total_b;
      return;
    }
    const auto ai = static_cast<std::size_t>(ws.left_[idx]);
    const auto bi = static_cast<std::size_t>(ws.right_[idx]);
    const double* ea_arr = ws.leaf_energy_[ai] != nullptr
                               ? ws.leaf_energy_[ai]
                               : ws.energy_.data() + ws.energy_off_[ai];
    const double* eb_arr = ws.leaf_energy_[bi] != nullptr
                               ? ws.leaf_energy_[bi]
                               : ws.energy_.data() + ws.energy_off_[bi];
    const int a_size = ws.size_[ai];
    const int b_size = ws.size_[bi];
    const int a_b_size = ws.b_size_[ai];
    const int b_b_size = ws.b_size_[bi];
    const int rel_w = total_w - ws.lo_[idx];
    const int rel_b = total_b - ws.b_lo_[idx];
    int wl = -1;
    int bl = 0;
    double ea_val = 0.0;
    double eb_val = 0.0;
    for (int iba = 0; iba < a_b_size && wl < 0; ++iba) {
      const int ibb = rel_b - iba;
      if (ibb < 0 || ibb >= b_b_size) continue;
      const double* ea_row = ea_arr + static_cast<std::size_t>(iba) *
                                          static_cast<std::size_t>(a_size);
      const double* eb_row = eb_arr + static_cast<std::size_t>(ibb) *
                                          static_cast<std::size_t>(b_size);
      for (int ia = 0; ia < a_size; ++ia) {
        const double ea = ea_row[ia];
        if (std::isinf(ea)) continue;
        const int ib = rel_w - ia;
        if (ib < 0 || ib >= b_size) continue;
        const double eb = eb_row[ib];
        if (ea + eb == value) {
          wl = ws.lo_[ai] + ia;
          bl = ws.b_lo_[ai] + iba;
          ea_val = ea;
          eb_val = eb;
          break;
        }
      }
    }
    QOSRM_CHECK_MSG(wl >= 0, "backtracking through an infeasible entry");
    self(self, ai, wl, bl, ea_val);
    self(self, bi, total_w - wl, total_b - bl, eb_val);
  };
  backtrack(backtrack, root, total_ways, total_shares, e);
}

GlobalOptResult GlobalOptimizer::optimize(std::span<const EnergyCurve> curves,
                                          int total_ways, int total_shares,
                                          std::uint64_t* ops) {
  std::vector<EnergyCurveView> views;
  views.reserve(curves.size());
  for (const EnergyCurve& c : curves) {
    views.push_back({c.min_ways, std::span<const double>(c.energy),
                     c.min_shares, c.num_shares});
  }
  GlobalOptWorkspace ws;
  GlobalOptResult out;
  optimize_into(views, total_ways, total_shares, ws, out, ops);
  return out;
}

GlobalOptResult GlobalOptimizer::optimize(std::span<const EnergyCurve> curves,
                                          int total_ways, std::uint64_t* ops) {
  int total_shares = 0;
  for (const EnergyCurve& c : curves) total_shares += c.min_shares;
  return optimize(curves, total_ways, total_shares, ops);
}

GlobalOptResult GlobalOptimizer::brute_force(std::span<const EnergyCurve> curves,
                                             int total_ways,
                                             int total_shares) {
  QOSRM_CHECK(!curves.empty());
  GlobalOptResult best;
  best.total_energy = kInf;

  std::vector<int> ways(curves.size(), 0);
  std::vector<int> shares(curves.size(), 0);
  // Depth-first enumeration of all allocations summing to the two budgets.
  const auto recurse = [&](auto&& self, std::size_t core, int remaining_w,
                           int remaining_b, double energy) -> void {
    const EnergyCurve& curve = curves[core];
    const int n_w = curve.num_ways();
    const auto cell = [&](int w, int b) {
      return curve.energy[static_cast<std::size_t>(b - curve.min_shares) *
                              static_cast<std::size_t>(n_w) +
                          static_cast<std::size_t>(w - curve.min_ways)];
    };
    if (core + 1 == curves.size()) {
      if (remaining_w < curve.min_ways || remaining_w > curve.max_ways()) return;
      if (remaining_b < curve.min_shares || remaining_b > curve.max_shares()) {
        return;
      }
      const double e = cell(remaining_w, remaining_b);
      if (std::isinf(e)) return;
      if (energy + e < best.total_energy) {
        ways[core] = remaining_w;
        shares[core] = remaining_b;
        best.feasible = true;
        best.total_energy = energy + e;
        best.ways = ways;
        best.shares = shares;
      }
      return;
    }
    for (int b = curve.min_shares; b <= curve.max_shares(); ++b) {
      if (remaining_b - b < 0) break;
      for (int w = curve.min_ways; w <= curve.max_ways(); ++w) {
        const double e = cell(w, b);
        if (std::isinf(e)) continue;
        if (remaining_w - w < 0) break;
        ways[core] = w;
        shares[core] = b;
        self(self, core + 1, remaining_w - w, remaining_b - b, energy + e);
      }
    }
  };
  recurse(recurse, 0, total_ways, total_shares, 0.0);
  return best;
}

GlobalOptResult GlobalOptimizer::brute_force(std::span<const EnergyCurve> curves,
                                             int total_ways) {
  int total_shares = 0;
  for (const EnergyCurve& c : curves) total_shares += c.min_shares;
  return brute_force(curves, total_ways, total_shares);
}

}  // namespace qosrm::rm
