#include "rm/global_opt.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "common/check.hh"

namespace qosrm::rm {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// A node of the reduction tree: a combined curve over [lo, hi] total ways
/// plus, per entry, how many ways went to the left subtree.
struct Node {
  int lo = 0;
  std::vector<double> energy;        // energy[t - lo]
  std::vector<int> left_ways;        // argmin split (leaf: unused)
  int first_core = 0;                // leaves covered: [first_core, last_core]
  int last_core = 0;
  std::unique_ptr<Node> left;
  std::unique_ptr<Node> right;

  [[nodiscard]] int hi() const noexcept {
    return lo + static_cast<int>(energy.size()) - 1;
  }
};

std::unique_ptr<Node> make_leaf(const EnergyCurve& curve, int core) {
  auto node = std::make_unique<Node>();
  node->lo = curve.min_ways;
  node->energy = curve.energy;
  node->first_core = core;
  node->last_core = core;
  return node;
}

std::unique_ptr<Node> combine(std::unique_ptr<Node> a, std::unique_ptr<Node> b,
                              std::uint64_t* ops) {
  auto node = std::make_unique<Node>();
  node->lo = a->lo + b->lo;
  const int hi = a->hi() + b->hi();
  const auto size = static_cast<std::size_t>(hi - node->lo + 1);
  node->energy.assign(size, kInf);
  node->left_ways.assign(size, -1);
  node->first_core = a->first_core;
  node->last_core = b->last_core;

  std::uint64_t steps = 0;
  for (int wa = a->lo; wa <= a->hi(); ++wa) {
    const double ea = a->energy[static_cast<std::size_t>(wa - a->lo)];
    if (std::isinf(ea)) continue;
    for (int wb = b->lo; wb <= b->hi(); ++wb) {
      const double eb = b->energy[static_cast<std::size_t>(wb - b->lo)];
      ++steps;
      if (std::isinf(eb)) continue;
      const std::size_t idx = static_cast<std::size_t>(wa + wb - node->lo);
      if (ea + eb < node->energy[idx]) {
        node->energy[idx] = ea + eb;
        node->left_ways[idx] = wa;
      }
    }
  }
  if (ops != nullptr) *ops += steps;

  node->left = std::move(a);
  node->right = std::move(b);
  return node;
}

void backtrack(const Node& node, int total, std::vector<int>& ways) {
  if (!node.left) {  // leaf
    ways[static_cast<std::size_t>(node.first_core)] = total;
    return;
  }
  const int wl = node.left_ways[static_cast<std::size_t>(total - node.lo)];
  QOSRM_CHECK_MSG(wl >= 0, "backtracking through an infeasible entry");
  backtrack(*node.left, wl, ways);
  backtrack(*node.right, total - wl, ways);
}

}  // namespace

GlobalOptResult GlobalOptimizer::optimize(std::span<const EnergyCurve> curves,
                                          int total_ways, std::uint64_t* ops) {
  QOSRM_CHECK(!curves.empty());

  // Build leaves, then reduce adjacent pairs until one curve remains.
  std::vector<std::unique_ptr<Node>> level;
  level.reserve(curves.size());
  for (std::size_t i = 0; i < curves.size(); ++i) {
    QOSRM_CHECK(!curves[i].energy.empty());
    level.push_back(make_leaf(curves[i], static_cast<int>(i)));
  }
  while (level.size() > 1) {
    std::vector<std::unique_ptr<Node>> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(combine(std::move(level[i]), std::move(level[i + 1]), ops));
    }
    if (level.size() % 2 == 1) next.push_back(std::move(level.back()));
    level = std::move(next);
  }

  const Node& root = *level.front();
  GlobalOptResult result;
  if (total_ways < root.lo || total_ways > root.hi()) return result;
  const double e = root.energy[static_cast<std::size_t>(total_ways - root.lo)];
  if (std::isinf(e)) return result;

  result.feasible = true;
  result.total_energy = e;
  result.ways.assign(curves.size(), 0);
  backtrack(root, total_ways, result.ways);
  return result;
}

GlobalOptResult GlobalOptimizer::brute_force(std::span<const EnergyCurve> curves,
                                             int total_ways) {
  QOSRM_CHECK(!curves.empty());
  GlobalOptResult best;
  best.total_energy = kInf;

  std::vector<int> ways(curves.size(), 0);
  // Depth-first enumeration of all allocations summing to total_ways.
  const auto recurse = [&](auto&& self, std::size_t core, int remaining,
                           double energy) -> void {
    const EnergyCurve& curve = curves[core];
    if (core + 1 == curves.size()) {
      if (remaining < curve.min_ways || remaining > curve.max_ways()) return;
      const double e =
          curve.energy[static_cast<std::size_t>(remaining - curve.min_ways)];
      if (std::isinf(e)) return;
      if (energy + e < best.total_energy) {
        ways[core] = remaining;
        best.feasible = true;
        best.total_energy = energy + e;
        best.ways = ways;
      }
      return;
    }
    for (int w = curve.min_ways; w <= curve.max_ways(); ++w) {
      const double e = curve.energy[static_cast<std::size_t>(w - curve.min_ways)];
      if (std::isinf(e)) continue;
      if (remaining - w < 0) break;
      ways[core] = w;
      self(self, core + 1, remaining - w, energy + e);
    }
  };
  recurse(recurse, 0, total_ways, 0.0);
  return best;
}

}  // namespace qosrm::rm
