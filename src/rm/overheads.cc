#include "rm/overheads.hh"

#include <algorithm>

#include "common/check.hh"

namespace qosrm::rm {

double OverheadModel::rm_instructions(std::uint64_t ops) const noexcept {
  return p_.instr_base + p_.instr_per_op * static_cast<double>(ops);
}

EnforcementCost OverheadModel::rm_execution(std::uint64_t ops,
                                            const workload::Setting& at,
                                            double ipc) const {
  QOSRM_CHECK(ipc > 0.0);
  const double instructions = rm_instructions(ops);
  const arch::OperatingPoint vf = arch::VfTable::point(at.f_idx);
  EnforcementCost cost;
  cost.time_s = instructions / (ipc * vf.freq_hz);
  cost.energy_j =
      power_->core_dynamic_energy(at.c, vf.voltage, instructions, 0.0) +
      power_->core_static_power(at.c, vf.voltage) * cost.time_s;
  return cost;
}

EnforcementCost OverheadModel::transition(const workload::Setting& from,
                                          const workload::Setting& to,
                                          double ipc) const {
  QOSRM_CHECK(ipc > 0.0);
  EnforcementCost cost;
  if (from.f_idx != to.f_idx) {
    cost.time_s += p_.dvfs.time_s;
    cost.energy_j += p_.dvfs.energy_j;
  }
  if (from.c != to.c) {
    // Instruction fetch halts while the pipeline drains: about window/IPC
    // cycles at the old frequency (paper: "a few hundreds of cycles").
    const double drain_cycles =
        static_cast<double>(arch::core_params(from.c).rob) / ipc;
    const arch::OperatingPoint vf = arch::VfTable::point(from.f_idx);
    const double drain_s = drain_cycles / vf.freq_hz;
    cost.time_s += drain_s;
    cost.energy_j += power_->core_static_power(from.c, vf.voltage) * drain_s;
  }
  return cost;
}

}  // namespace qosrm::rm
