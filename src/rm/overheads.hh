// RM overhead models (paper Section III-E).
//
// Three components:
//   1. executing the RM algorithm in software - modelled as instructions
//      proportional to the optimizer's model-evaluation/DP-step count,
//      calibrated against the paper's 51K / 73K / 100K instructions for
//      2/4/8-core systems;
//   2. enforcing a VF change - 15 us / 3 uJ (Samsung Exynos 4210 numbers);
//   3. resizing the core - pipeline drain of about ROB/IPC cycles.
#ifndef QOSRM_RM_OVERHEADS_HH
#define QOSRM_RM_OVERHEADS_HH

#include <cstdint>

#include "arch/core_config.hh"
#include "arch/dvfs.hh"
#include "power/power_model.hh"
#include "workload/sim_db.hh"

namespace qosrm::rm {

struct OverheadParams {
  double instr_base = 31e3;    ///< fixed algorithm cost (bookkeeping, curves)
  double instr_per_op = 19.0;  ///< instructions per optimizer op (calibrated)
  arch::DvfsTransitionCost dvfs{};
};

/// Time/energy cost charged to a core.
struct EnforcementCost {
  double time_s = 0.0;
  double energy_j = 0.0;

  EnforcementCost& operator+=(const EnforcementCost& other) noexcept {
    time_s += other.time_s;
    energy_j += other.energy_j;
    return *this;
  }
};

class OverheadModel {
 public:
  OverheadModel(const OverheadParams& params, const power::PowerModel& power)
      : p_(params), power_(&power) {}

  /// Instruction count of one RM invocation that performed `ops` optimizer
  /// operations.
  [[nodiscard]] double rm_instructions(std::uint64_t ops) const noexcept;

  /// Cost of executing the RM algorithm on the invoking core at its current
  /// setting, assuming it sustains `ipc` on the RM code.
  [[nodiscard]] EnforcementCost rm_execution(std::uint64_t ops,
                                             const workload::Setting& at,
                                             double ipc = 2.0) const;

  /// Cost of switching a core from `from` to `to`: DVFS transition when the
  /// VF point changes, pipeline drain when the size changes. Way-mask
  /// updates are free (a register write).
  [[nodiscard]] EnforcementCost transition(const workload::Setting& from,
                                           const workload::Setting& to,
                                           double ipc = 2.0) const;

  [[nodiscard]] const OverheadParams& params() const noexcept { return p_; }

 private:
  OverheadParams p_;
  const power::PowerModel* power_;
};

}  // namespace qosrm::rm

#endif  // QOSRM_RM_OVERHEADS_HH
