#include "rm/perf_model.hh"

#include <algorithm>

#include "arch/dvfs.hh"
#include "common/check.hh"

namespace qosrm::rm {

const char* perf_model_name(PerfModelKind kind) noexcept {
  switch (kind) {
    case PerfModelKind::Model1:
      return "Model1";
    case PerfModelKind::Model2:
      return "Model2";
    case PerfModelKind::Model3:
      return "Model3";
    case PerfModelKind::Perfect:
      return "Perfect";
  }
  return "?";
}

double PerfModel::predict_mem_time(const CounterSnapshot& snap,
                                   const workload::Setting& target) const {
  // CBP bandwidth term: the counter-based models see the granted
  // memory-bandwidth share as a scaled effective DRAM latency, exactly as
  // the ground truth does (arch::bw_latency_scale). At the baseline share
  // the scale is exactly 1.0, so ways-only predictions are bit-identical.
  const double l_mem =
      system_.mem_latency_s * arch::bw_latency_scale(system_.bw, target.b);
  switch (kind_) {
    case PerfModelKind::Model1:
      // All misses serialize - no MLP notion at all.
      return snap.atd_misses_at(target.w) * l_mem;
    case PerfModelKind::Model2: {
      // MLP measured over the past interval at the current (c, w) assumed
      // constant across every target setting (prior work's assumption).
      const double mlp = std::max(1.0, snap.measured_mlp);
      return snap.atd_misses_at(target.w) / mlp * l_mem;
    }
    case PerfModelKind::Model3:
      // Proposed: leading misses estimated per (core size, allocation).
      return snap.atd_leading_at(target.c, target.w) * l_mem;
    case PerfModelKind::Perfect: {
      QOSRM_CHECK_MSG(snap.oracle.valid(), "perfect model needs an oracle ref");
      return snap.oracle.db->timing(snap.oracle.app, snap.oracle.phase, target)
          .mem_seconds;
    }
  }
  return 0.0;
}

double PerfModel::predict_time(const CounterSnapshot& snap,
                               const workload::Setting& target) const {
  if (kind_ == PerfModelKind::Perfect) {
    QOSRM_CHECK_MSG(snap.oracle.valid(), "perfect model needs an oracle ref");
    return snap.oracle.db->timing(snap.oracle.app, snap.oracle.phase, target)
        .total_seconds;
  }

  const double d_cur =
      static_cast<double>(arch::core_params(snap.current.c).issue_width);
  const double d_tgt = static_cast<double>(arch::core_params(target.c).issue_width);
  const double f_cur = arch::VfTable::frequency_hz(snap.current.f_idx);
  const double f_tgt = arch::VfTable::frequency_hz(target.f_idx);

  // Eq. 1: the dispatch-width-bound compute time scales linearly with the
  // width ratio; the dependency-bound part and the branch/private-cache
  // component are size-invariant; all core time scales with the frequency
  // ratio; memory stall time is frequency-invariant.
  const double t_invariant = snap.t_ilp_s + snap.t_branch_s + snap.t_cache_s;
  const double core_time =
      (snap.t_width_s * d_cur / d_tgt + t_invariant) * (f_cur / f_tgt);
  return core_time + predict_mem_time(snap, target);
}

bool PerfModel::qos_ok(const CounterSnapshot& snap,
                       const workload::Setting& target) const {
  const workload::Setting base = workload::baseline_setting(system_);
  const double t_target = predict_time(snap, target);
  const double t_base = predict_time(snap, base);
  return t_target <= t_base * system_.qos_alpha;
}

}  // namespace qosrm::rm
