// Per-core local optimization (paper Fig. 3, Section III-A/B).
//
// For every possible LLC allocation w the optimizer finds the cheapest
// core-local setting that still satisfies QoS:
//
//   RM1:  fixed (c_b, f_b); w is feasible iff QoS holds at the baseline VF.
//   RM2:  f*(w)  = minimum frequency satisfying QoS at the baseline size.
//   RM3:  (c*, f*)(w) = per size, minimum feasible frequency; among sizes,
//         the one with the lowest estimated energy.
//
// The result is the energy surface E*(w, b) over the shared-resource grid
// (LLC ways x memory-bandwidth shares) handed to the global optimizer, plus
// the argmin settings to enforce once {(w*_j, b*_j)} is chosen. With the
// degenerate single-share bandwidth config the surface has one b-row and is
// exactly the pre-CBP energy curve E*(w).
#ifndef QOSRM_RM_LOCAL_OPT_HH
#define QOSRM_RM_LOCAL_OPT_HH

#include <cstdint>
#include <limits>
#include <vector>

#include "rm/energy_model.hh"
#include "rm/perf_model.hh"

namespace qosrm::rm {

inline constexpr double kInfeasibleEnergy = std::numeric_limits<double>::infinity();

struct LocalOptOptions {
  bool allow_dvfs = true;    ///< false for RM1
  bool allow_resize = true;  ///< false for RM1/RM2
};

/// Best feasible core-local choice for one allocation w.
struct WayChoice {
  bool feasible = false;
  workload::Setting setting{};
  double predicted_time_s = 0.0;
  double energy_j = kInfeasibleEnergy;
};

struct LocalOptResult {
  int min_ways = 2;
  int min_shares = 1;  ///< lowest bandwidth share of the b axis
  int num_shares = 1;  ///< extent of the b axis
  /// The E*(w, b) surface, b-major with contiguous w-rows:
  /// choices[(b - min_shares) * num_ways() + (w - min_ways)]. One b-row (the
  /// pre-CBP curve layout) in the degenerate single-share config.
  std::vector<WayChoice> choices;

  [[nodiscard]] int num_ways() const noexcept {
    return num_shares > 0 ? static_cast<int>(choices.size()) / num_shares : 0;
  }
  [[nodiscard]] int max_ways() const noexcept { return min_ways + num_ways() - 1; }
  [[nodiscard]] int max_shares() const noexcept {
    return min_shares + num_shares - 1;
  }
  [[nodiscard]] const WayChoice& at(int w, int b) const;
  /// Ways-only accessor: the choice at the lowest share (the only share in
  /// the degenerate config).
  [[nodiscard]] const WayChoice& at(int w) const { return at(w, min_shares); }

  /// E*(w, b) for the global optimizer, in the surface's flat layout
  /// (kInfeasibleEnergy where QoS fails).
  [[nodiscard]] std::vector<double> energy_curve() const;
};

class LocalOptimizer {
 public:
  LocalOptimizer(const PerfModel& perf, const OnlineEnergyModel& energy,
                 const LocalOptOptions& options)
      : perf_(&perf), energy_(&energy), opt_(options) {}

  /// Runs the optimization from one core's counters. `ops` (optional)
  /// accumulates the number of model evaluations, the unit of the RM
  /// instruction-overhead model (paper Section III-E).
  [[nodiscard]] LocalOptResult optimize(const CounterSnapshot& snap,
                                        std::uint64_t* ops = nullptr) const;

  /// Allocation-free variant: writes into `out`, reusing its `choices`
  /// storage. The invocation hot path (ResourceManager) calls this with
  /// per-core cached results so steady-state boundaries allocate nothing.
  /// Not thread-safe (reuses internal sweep scratch); use one optimizer per
  /// thread.
  void optimize_into(const CounterSnapshot& snap, LocalOptResult& out,
                     std::uint64_t* ops = nullptr) const;

  [[nodiscard]] const LocalOptOptions& options() const noexcept { return opt_; }

 private:
  const PerfModel* perf_;
  const OnlineEnergyModel* energy_;
  LocalOptOptions opt_;
  /// Perfect-model sweep scratch: f*(w) and T*(w) for the core size being
  /// scanned (batched oracle-row path). Capacity is kept across calls, so
  /// the warm invocation path stays heap-free.
  mutable std::vector<int> f_star_;
  mutable std::vector<double> t_star_;
};

}  // namespace qosrm::rm

#endif  // QOSRM_RM_LOCAL_OPT_HH
