#include "rm/resource_manager.hh"

#include "common/check.hh"

namespace qosrm::rm {

const char* rm_policy_name(RmPolicy policy) noexcept {
  switch (policy) {
    case RmPolicy::Idle:
      return "Idle";
    case RmPolicy::Rm1:
      return "RM1";
    case RmPolicy::Rm2:
      return "RM2";
    case RmPolicy::Rm3:
      return "RM3";
    case RmPolicy::Ucp:
      return "UCP";
    case RmPolicy::Fcp:
      return "FCP";
    case RmPolicy::ClassPart:
      return "ClassPart";
  }
  return "?";
}

ResourceManager::ResourceManager(const RmConfig& config,
                                 const arch::SystemConfig& system,
                                 const power::PowerModel& offline_power)
    : cfg_(config), system_(system), perf_(config.model, system),
      energy_(offline_power, config.energy), local_(perf_, energy_, local_options()),
      cached_(static_cast<std::size_t>(system.cores)),
      all_active_(static_cast<std::size_t>(system.cores), 1) {
  ws_.curve_energy.resize(static_cast<std::size_t>(system.cores));
  ws_.views.reserve(static_cast<std::size_t>(system.cores));
  ws_.idle_energy.assign(1, 0.0);
  // Auto: memoize from 8 cores up, where the per-boundary local work (and
  // the number of boundaries revisiting the same evaluation cell) makes the
  // table pay for its footprint. Below that, the slot array would cost more
  // to materialize than the recomputation it saves.
  memo_on_ = cfg_.memo == RmMemoMode::On ||
             (cfg_.memo == RmMemoMode::Auto && system_.cores >= 8);
  if (is_baseline_policy(cfg_.policy)) {
    // Size the baseline-policy buffers up front so invoke_baseline's
    // resize() calls are no-ops and the steady-state path stays heap-free.
    const std::size_t cores = static_cast<std::size_t>(system_.cores);
    const std::size_t n_alloc =
        static_cast<std::size_t>(system_.llc.num_allocations());
    ws_.baseline.miss.resize(cores * n_alloc);
    ws_.baseline.ways.resize(cores);
    if (cfg_.policy == RmPolicy::Fcp) {
      ws_.baseline.time_s.resize(cores * n_alloc);
      ws_.baseline.t_ref.resize(cores);
    }
    if (cfg_.policy == RmPolicy::ClassPart) {
      ws_.baseline.cls.resize(cores);
    }
  }
}

LocalOptOptions ResourceManager::local_options() const noexcept {
  if (cfg_.knobs.has_value()) return *cfg_.knobs;
  LocalOptOptions opt;
  opt.allow_dvfs = cfg_.policy == RmPolicy::Rm2 || cfg_.policy == RmPolicy::Rm3;
  opt.allow_resize = cfg_.policy == RmPolicy::Rm3;
  return opt;
}

void ResourceManager::reset() {
  for (CoreCache& entry : cached_) entry.valid = false;
}

std::int32_t* ResourceManager::memo_slot(const CounterSnapshot& snap) {
  if (!memo_on_ || snap.memo_key < 0 || snap.oracle.valid()) return nullptr;
  if (snap.memo_db != memo_db_) {
    // First sight of this database: size the slot array to its dense key
    // space and drop entries memoized against any previous one.
    QOSRM_CHECK(snap.memo_key < snap.memo_space);
    memo_slot_.assign(static_cast<std::size_t>(snap.memo_space), -1);
    memo_entries_.clear();
    memo_db_ = snap.memo_db;
  }
  if (snap.memo_key >= static_cast<std::int64_t>(memo_slot_.size())) {
    return nullptr;  // defensively refuse an out-of-range key
  }
  return &memo_slot_[static_cast<std::size_t>(snap.memo_key)];
}

const RmDecision& ResourceManager::invoke(
    int invoking_core, std::span<const CounterSnapshot> snapshots) {
  return invoke(invoking_core, snapshots, all_active_);
}

const RmDecision& ResourceManager::invoke(
    int invoking_core, std::span<const CounterSnapshot> snapshots,
    std::span<const std::uint8_t> active) {
  QOSRM_CHECK(static_cast<int>(snapshots.size()) == system_.cores);
  QOSRM_CHECK(static_cast<int>(active.size()) == system_.cores);
  QOSRM_CHECK(invoking_core >= 0 && invoking_core < system_.cores);
  QOSRM_CHECK_MSG(active[static_cast<std::size_t>(invoking_core)] != 0,
                  "RM invoked on behalf of an inactive core");

  RmDecision& decision = ws_.decision;
  decision.ops = 0;
  decision.feasible = true;
  const workload::Setting base = workload::baseline_setting(system_);
  decision.settings.assign(static_cast<std::size_t>(system_.cores), base);

  if (cfg_.policy == RmPolicy::Idle) return decision;
  if (is_baseline_policy(cfg_.policy)) {
    return invoke_baseline(invoking_core, snapshots, active);
  }

  // Local optimization: fresh curve for the invoking core; active cores
  // never seen before also get one from their latest counters (cold start),
  // matching Fig. 3 where other cores' curves are "already available".
  // Recomputed curves are flattened into the workspace's per-core E*(w)
  // array once; cached cores keep theirs, so no curve is copied on the
  // steady path. Inactive cores drop their cache (their counters describe
  // an app that has departed) and take no part in the local step.
  for (int core = 0; core < system_.cores; ++core) {
    CoreCache& cache = cached_[static_cast<std::size_t>(core)];
    if (active[static_cast<std::size_t>(core)] == 0) {
      cache.valid = false;
      continue;
    }
    const bool fresh = core == invoking_core;
    if (!fresh && cache.valid) continue;
    // Interval-outcome memo: a keyed snapshot's local optimization is a pure
    // function of its evaluation cell, so a previously seen cell replays the
    // stored result - charging exactly the ops a fresh run would have, which
    // keeps the decision (and the modeled RM overhead) bit-identical with
    // the memo on or off.
    const CounterSnapshot& snap = snapshots[static_cast<std::size_t>(core)];
    std::int32_t* slot = memo_slot(snap);
    if (slot != nullptr && *slot >= 0) {
      const MemoEntry& entry = memo_entries_[static_cast<std::size_t>(*slot)];
      cache.local = entry.local;  // vector assign reuses the cache's storage
      if (fresh) decision.ops += entry.ops;
    } else {
      std::uint64_t local_ops = 0;
      local_.optimize_into(snap, cache.local, &local_ops);
      if (fresh) decision.ops += local_ops;
      if (slot != nullptr) {
        *slot = static_cast<std::int32_t>(memo_entries_.size());
        memo_entries_.push_back({cache.local, local_ops});
      }
    }
    cache.valid = true;
    std::vector<double>& energy = ws_.curve_energy[static_cast<std::size_t>(core)];
    energy.resize(cache.local.choices.size());
    for (std::size_t i = 0; i < cache.local.choices.size(); ++i) {
      const WayChoice& c = cache.local.choices[i];
      energy[i] = c.feasible ? c.energy_j : kInfeasibleEnergy;
    }
  }

  ws_.views.clear();
  for (int core = 0; core < system_.cores; ++core) {
    if (active[static_cast<std::size_t>(core)] == 0) {
      // A single-cell zero-energy surface: the global optimizer has exactly
      // one choice for this core (llc.min_ways, bw.min_shares), so idle
      // cores hold the minimum allocation of both resources and the
      // remaining budget goes to the active ones.
      ws_.views.push_back({system_.llc.min_ways,
                           std::span<const double>(ws_.idle_energy),
                           system_.bw.min_shares, 1});
      continue;
    }
    const LocalOptResult& local = cached_[static_cast<std::size_t>(core)].local;
    ws_.views.push_back(
        {local.min_ways,
         std::span<const double>(ws_.curve_energy[static_cast<std::size_t>(core)]),
         local.min_shares, local.num_shares});
  }

  GlobalOptResult& global = ws_.global_result;
  GlobalOptimizer::optimize_into(ws_.views, system_.total_ways(),
                                 system_.total_shares(), ws_.global, global,
                                 &decision.ops);
  if (!global.feasible) {
    // Should not happen (the baseline allocation is always feasible), but
    // fall back to the baseline setting defensively.
    decision.feasible = false;
    return decision;
  }

  for (int core = 0; core < system_.cores; ++core) {
    if (active[static_cast<std::size_t>(core)] == 0) continue;  // baseline
    const LocalOptResult& local = cached_[static_cast<std::size_t>(core)].local;
    const WayChoice& choice =
        local.at(global.ways[static_cast<std::size_t>(core)],
                 global.shares[static_cast<std::size_t>(core)]);
    QOSRM_CHECK_MSG(choice.feasible, "global optimizer chose an infeasible way");
    decision.settings[static_cast<std::size_t>(core)] = choice.setting;
  }
  return decision;
}

const RmDecision& ResourceManager::invoke_baseline(
    int invoking_core, std::span<const CounterSnapshot> snapshots,
    std::span<const std::uint8_t> active) {
  RmDecision& decision = ws_.decision;  // invoke() reset ops/feasible/settings
  BaselineWorkspace& bw = ws_.baseline;
  const arch::LlcConfig& llc = system_.llc;
  const int n_alloc = llc.num_allocations();
  const workload::Setting base = workload::baseline_setting(system_);

  // Input refresh, mirroring the RM path: the invoking core's inputs are
  // recomputed from its fresh counters (and only its recomputation charges
  // ops), active cores without a valid cache cold-start, cached cores keep
  // their rows in the workspace, inactive cores drop their cache.
  for (int core = 0; core < system_.cores; ++core) {
    CoreCache& cache = cached_[static_cast<std::size_t>(core)];
    if (active[static_cast<std::size_t>(core)] == 0) {
      cache.valid = false;
      continue;
    }
    const bool fresh = core == invoking_core;
    if (!fresh && cache.valid) continue;
    const CounterSnapshot& snap = snapshots[static_cast<std::size_t>(core)];
    std::uint64_t refresh_ops = 0;
    double* miss_row =
        &bw.miss[static_cast<std::size_t>(core) * static_cast<std::size_t>(n_alloc)];
    for (int i = 0; i < n_alloc; ++i) {
      miss_row[i] = snap.atd_misses_at(llc.min_ways + i);
    }
    if (cfg_.policy == RmPolicy::Fcp) {
      // Slowdown reference: the alpha-relaxed baseline prediction, exactly
      // the QoS target the local optimizer holds the RM variants to.
      bw.t_ref[static_cast<std::size_t>(core)] =
          perf_.predict_time(snap, base) * system_.qos_alpha;
      ++refresh_ops;
      double* time_row = &bw.time_s[static_cast<std::size_t>(core) *
                                    static_cast<std::size_t>(n_alloc)];
      for (int i = 0; i < n_alloc; ++i) {
        time_row[i] = perf_.predict_time(
            snap, {base.c, base.f_idx, llc.min_ways + i, base.b});
        ++refresh_ops;
      }
    } else if (cfg_.policy == RmPolicy::ClassPart) {
      // Classify from the online ATD curve at the same -50%/base/+50% probe
      // points as the offline Table II classifier.
      const workload::ClassificationCriteria crit{};
      const int wb = crit.baseline_ways;
      const double ki =
          snap.instructions > 0.0 ? 1000.0 / snap.instructions : 0.0;
      bw.cls[static_cast<std::size_t>(core)] = workload::classify_part_class(
          snap.atd_misses_at(wb) * ki,
          snap.atd_misses_at(wb > 1 ? wb / 2 : 1) * ki,
          snap.atd_misses_at(wb + wb / 2) * ki, crit);
      refresh_ops += 3;
    }
    if (fresh) decision.ops += refresh_ops;
    cache.valid = true;
  }

  switch (cfg_.policy) {
    case RmPolicy::Ucp:
      ucp_partition(bw.miss, active, llc.min_ways, llc.max_ways,
                    system_.total_ways(), bw.ways, &decision.ops);
      break;
    case RmPolicy::Fcp:
      fcp_partition(bw.time_s, bw.t_ref, active, llc.min_ways, llc.max_ways,
                    system_.total_ways(), bw.ways, &decision.ops);
      break;
    case RmPolicy::ClassPart:
      classpart_partition(bw.cls, active, llc.min_ways, llc.max_ways,
                          system_.total_ways(), bw.ways, &decision.ops);
      break;
    default:
      QOSRM_CHECK_MSG(false, "invoke_baseline on a non-baseline policy");
  }

  for (int core = 0; core < system_.cores; ++core) {
    if (active[static_cast<std::size_t>(core)] == 0) continue;  // baseline
    // Ways-only baseline policies keep every core at its baseline bandwidth
    // share - they have no notion of the CBP knob.
    decision.settings[static_cast<std::size_t>(core)] = {
        base.c, base.f_idx, bw.ways[static_cast<std::size_t>(core)], base.b};
  }
  return decision;
}

}  // namespace qosrm::rm
