// Online energy model (paper Eq. 4-5).
//
//   E_i+1(c,f,w) = [ P*_CoreDyn(c) * V(f)^2/V*^2 + P_CoreStatic(c,f) ]
//                    * T_i+1(c,f,w)  +  E_mem,i+1(w)
//   E_mem,i+1(w) = (MA_i + DM_i(w)) * e_mem
//
// P*_CoreDyn is the RAPL-like dynamic-power sample of the past interval
// (EnergyMeter); the static power table and the per-size capacitance ratios
// are offline characterization the RM is allowed to know.
//
// Dynamic-term scaling: switching energy is per unit of WORK (C*V^2 per
// instruction), not per unit of time, and the RM interval is a fixed
// instruction count. The default therefore scales the SAMPLED DYNAMIC ENERGY
// by the size and voltage-squared ratios (energy-conserving form, which is
// Eq. 4 with T_i+1 evaluated at the sampled interval's duration). Setting
// `literal_eq4` multiplies the scaled dynamic POWER by the predicted time
// instead - Eq. 4 exactly as printed - which systematically underestimates
// settings that finish the work in fewer cycles (see DESIGN.md).
#ifndef QOSRM_RM_ENERGY_MODEL_HH
#define QOSRM_RM_ENERGY_MODEL_HH

#include "power/power_model.hh"
#include "rm/counters.hh"

namespace qosrm::rm {

struct EnergyModelOptions {
  bool literal_eq4 = false;  ///< use Eq. 4 exactly as printed (no f ratio)
  bool perfect = false;      ///< ground-truth energy via the oracle (Fig. 9)
};

class OnlineEnergyModel {
 public:
  /// `offline` provides the static-power table, the per-size EPI ratios and
  /// the per-access memory energy (all offline-characterizable constants).
  OnlineEnergyModel(const power::PowerModel& offline,
                    const EnergyModelOptions& options = {})
      : offline_(&offline), opt_(options) {}

  /// Estimated energy of the upcoming interval at `target`, given the
  /// model-predicted execution time `predicted_time_s`.
  [[nodiscard]] double estimate(const CounterSnapshot& snap,
                                const workload::Setting& target,
                                double predicted_time_s) const;

  /// Eq. 5's memory term alone.
  [[nodiscard]] double memory_energy(const CounterSnapshot& snap,
                                     int target_ways) const;

  [[nodiscard]] const EnergyModelOptions& options() const noexcept { return opt_; }

 private:
  const power::PowerModel* offline_;
  EnergyModelOptions opt_;
};

}  // namespace qosrm::rm

#endif  // QOSRM_RM_ENERGY_MODEL_HH
