#include "rm/energy_model.hh"

#include <algorithm>

#include "arch/dvfs.hh"
#include "common/check.hh"

namespace qosrm::rm {

double OnlineEnergyModel::memory_energy(const CounterSnapshot& snap,
                                        int target_ways) const {
  // Eq. 5: MA_i memory accesses observed over the past interval (fills plus
  // writebacks), corrected by the ATD-predicted miss difference DM between
  // the target and current allocations. DM scales by the measured
  // writeback-per-miss ratio: fewer fills also mean fewer dirty evictions.
  const double ma = snap.llc_misses + snap.writebacks;
  const double wb_ratio =
      snap.llc_misses > 0.0 ? snap.writebacks / snap.llc_misses : 0.0;
  const double dm =
      snap.atd_misses_at(target_ways) - snap.atd_misses_at(snap.current.w);
  const double accesses = std::max(0.0, ma + dm * (1.0 + wb_ratio));
  return accesses * offline_->params().mem_energy_joule;
}

double OnlineEnergyModel::estimate(const CounterSnapshot& snap,
                                   const workload::Setting& target,
                                   double predicted_time_s) const {
  if (opt_.perfect) {
    QOSRM_CHECK_MSG(snap.oracle.valid(), "perfect energy model needs oracle ref");
    const power::IntervalEnergy e =
        snap.oracle.db->energy(snap.oracle.app, snap.oracle.phase, target);
    return e.total_j();
  }

  const arch::OperatingPoint vf = arch::VfTable::point(target.f_idx);
  const power::PowerSample& sample = snap.power_sample;
  QOSRM_CHECK_MSG(sample.valid, "energy model requires a power sample");

  // Scale the sampled dynamic energy to the target size and VF point. The
  // size ratio comes from offline characterization (paper: dynamic power is
  // sampled per core size; we transfer across sizes with the EPI ratio).
  const double size_ratio = arch::core_params(target.c).epi_scale /
                            arch::core_params(sample.size).epi_scale;
  const double v_ratio = (vf.voltage * vf.voltage) / (sample.voltage * sample.voltage);
  const double e_dyn =
      opt_.literal_eq4
          ? sample.dynamic_power_w * size_ratio * v_ratio * predicted_time_s
          : sample.dynamic_energy_j * size_ratio * v_ratio;

  const double p_static = offline_->core_static_power(target.c, vf.voltage);

  return e_dyn + p_static * predicted_time_s + memory_energy(snap, target.w);
}

}  // namespace qosrm::rm
