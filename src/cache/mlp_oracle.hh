// Ground-truth leading-miss analysis.
//
// Unlike the hardware heuristic (MlpAtd), the oracle sees the trace in
// program order with TRUE dependency flags and unbounded-precision
// instruction indices. A miss is overlapped iff
//   * an earlier leading miss is still outstanding (the load's dispatch
//     distance to it is below the ROB size),
//   * the load is not serialized behind a missing producer (true dependency),
//   * the load/store queue still has room in the current overlap group.
//
// The oracle defines LM(c, w) for the ground-truth timing model
// (arch::evaluate_interval) and is the accuracy reference for the MLP-ATD
// ablation benches.
#ifndef QOSRM_CACHE_MLP_ORACLE_HH
#define QOSRM_CACHE_MLP_ORACLE_HH

#include <cstdint>
#include <span>
#include <vector>

#include "arch/core_config.hh"
#include "cache/access.hh"

namespace qosrm::cache {

class MlpOracle {
 public:
  /// Ground-truth leading-miss count for core size `c` at allocation `w`.
  /// `recency` is the program-order recency annotation of `trace`
  /// (RecencyProfiler); an access misses at w iff recency >= w.
  [[nodiscard]] static double leading_misses(std::span<const LlcAccess> trace,
                                             std::span<const std::uint8_t> recency,
                                             arch::CoreSize c, int w);

  /// Leading misses for every allocation in [min_ways, max_ways] at core
  /// size c; one pass per allocation (groups evolve differently per w).
  [[nodiscard]] static std::vector<double> leading_miss_curve(
      std::span<const LlcAccess> trace, std::span<const std::uint8_t> recency,
      arch::CoreSize c, int min_ways, int max_ways);
};

}  // namespace qosrm::cache

#endif  // QOSRM_CACHE_MLP_ORACLE_HH
