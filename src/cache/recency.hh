// Exact recency profiling of an access stream.
//
// Annotates every access with the LRU recency position it hits in a
// max_ways-associative cache. By the stack-inclusion property the annotation
// determines hit/miss for EVERY allocation w simultaneously:
// access misses in a w-way allocation  <=>  recency >= w (kRecencyMiss = inf).
//
// This is the ground truth against which the (sampled, quantized) hardware
// ATD models are validated.
#ifndef QOSRM_CACHE_RECENCY_HH
#define QOSRM_CACHE_RECENCY_HH

#include <cstdint>
#include <span>
#include <vector>

#include "cache/access.hh"
#include "cache/lru_stack.hh"

namespace qosrm::cache {

class RecencyProfiler {
 public:
  /// `sets` LRU stacks of `max_ways` each.
  RecencyProfiler(int sets, int max_ways);

  /// Processes `trace` in the given order (empty `order` = program order) and
  /// returns the recency position of each access, indexed by trace position.
  [[nodiscard]] std::vector<std::uint8_t> annotate(
      std::span<const LlcAccess> trace, std::span<const std::uint32_t> order = {});

  /// Single-access processing for incremental use.
  std::uint8_t observe(const LlcAccess& access);

  void reset();

  [[nodiscard]] int sets() const noexcept { return static_cast<int>(sets_.size()); }
  [[nodiscard]] int max_ways() const noexcept { return max_ways_; }

 private:
  int max_ways_;
  std::vector<LruStack> sets_;
};

/// True if the annotated access misses under a w-way allocation.
[[nodiscard]] constexpr bool misses_at(std::uint8_t recency, int w) noexcept {
  return recency == kRecencyMiss || static_cast<int>(recency) >= w;
}

}  // namespace qosrm::cache

#endif  // QOSRM_CACHE_RECENCY_HH
