#include "cache/mlp_atd.hh"

#include <algorithm>

#include "common/check.hh"

namespace qosrm::cache {

MlpAtd::MlpAtd(const MlpAtdConfig& config) : cfg_(config) {
  QOSRM_CHECK(cfg_.sets > 0);
  QOSRM_CHECK(cfg_.max_ways > 0 && cfg_.max_ways < kRecencyMiss);
  QOSRM_CHECK(cfg_.min_ways >= 1 && cfg_.min_ways <= cfg_.max_ways);
  QOSRM_CHECK(cfg_.sample_period >= 1);
  QOSRM_CHECK(cfg_.index_bits >= 4 && cfg_.index_bits <= 32);
  const int sampled = (cfg_.sets + cfg_.sample_period - 1) / cfg_.sample_period;
  sampled_sets_.reserve(static_cast<std::size_t>(sampled));
  for (int i = 0; i < sampled; ++i) sampled_sets_.emplace_back(cfg_.max_ways);
  counters_.assign(static_cast<std::size_t>(arch::kNumCoreSizes) *
                       static_cast<std::size_t>(cfg_.num_allocations()),
                   Counter{});
  hit_at_.assign(static_cast<std::size_t>(cfg_.max_ways), 0);
}

void MlpAtd::observe(const LlcAccess& access) {
  QOSRM_DCHECK(access.set < static_cast<std::uint32_t>(cfg_.sets));
  if (access.set % static_cast<std::uint32_t>(cfg_.sample_period) != 0) return;

  const std::uint32_t set_idx =
      access.set / static_cast<std::uint32_t>(cfg_.sample_period);
  const std::uint8_t pos = sampled_sets_[set_idx].access(access.tag);
  if (pos == kRecencyMiss) {
    ++atd_misses_;
  } else {
    ++hit_at_[pos];
  }

  // The instruction index is transmitted quantized: the low index_bits of the
  // dynamic instruction count (paper: 10 bits = a 1024-instruction window,
  // 4x the largest ROB).
  const std::uint32_t q_index =
      static_cast<std::uint32_t>(access.inst_index) & (cfg_.index_window() - 1);

  for (int c_idx = 0; c_idx < arch::kNumCoreSizes; ++c_idx) {
    const int rob = arch::core_params(arch::kAllCoreSizes[c_idx]).rob;
    for (int w = cfg_.min_ways; w <= cfg_.max_ways; ++w) {
      // Predicted to miss at allocation w <=> recency position >= w.
      const bool miss = pos == kRecencyMiss || static_cast<int>(pos) >= w;
      if (!miss) continue;
      update_counter(counter(c_idx, w), rob, q_index);
    }
  }
}

void MlpAtd::update_counter(Counter& ctr, int rob, std::uint32_t q_index) noexcept {
  auto count_lm = [&] {
    if (ctr.lm_count < cfg_.counter_max()) ++ctr.lm_count;
    ctr.last_lm_index = q_index;
    ctr.has_last_lm = true;
    ctr.has_ov = false;
    ctr.last_ov_dist = 0;
  };

  if (!ctr.has_last_lm) {  // first observed miss: leading by definition
    count_lm();
    return;
  }

  // Distance in the quantized index space (wraps modulo the window).
  const std::uint32_t dist =
      (q_index - ctr.last_lm_index) & (cfg_.index_window() - 1);

  if (dist != 0 && dist < static_cast<std::uint32_t>(rob)) {
    if (!ctr.has_ov || dist > ctr.last_ov_dist) {
      // In-order arrival within the ROB window: overlaps the last LM.
      ctr.has_ov = true;
      ctr.last_ov_dist = dist;
    } else {
      // Out-of-order arrival (smaller distance than the previous OV): the
      // load likely waited on data from the last LM -> new leading miss.
      count_lm();
    }
  } else {
    // Outside the ROB window (or aliased to zero): cannot overlap.
    count_lm();
  }
}

double MlpAtd::leading_misses(arch::CoreSize c, int w) const {
  QOSRM_CHECK(w >= cfg_.min_ways && w <= cfg_.max_ways);
  return static_cast<double>(counter(arch::core_size_index(c), w).lm_count) *
         static_cast<double>(cfg_.sample_period);
}

double MlpAtd::total_misses(int w) const {
  QOSRM_CHECK(w >= cfg_.min_ways && w <= cfg_.max_ways);
  // misses(w) = ATD misses + hits at recency positions >= w.
  std::uint64_t m = atd_misses_;
  for (int r = w; r < cfg_.max_ways; ++r) {
    m += hit_at_[static_cast<std::size_t>(r)];
  }
  return static_cast<double>(m) * static_cast<double>(cfg_.sample_period);
}

double MlpAtd::mlp(arch::CoreSize c, int w) const {
  const double lm = leading_misses(c, w);
  if (lm <= 0.0) return 1.0;
  return std::max(1.0, total_misses(w) / lm);
}

void MlpAtd::reset_counters() {
  std::fill(counters_.begin(), counters_.end(), Counter{});
  std::fill(hit_at_.begin(), hit_at_.end(), 0ULL);
  atd_misses_ = 0;
}

std::uint64_t MlpAtd::extension_storage_bits() const noexcept {
  // Per counter: lm_count (counter_bits) + last LM index (index_bits) +
  // last OV distance (index_bits) + 2 presence flags.
  const std::uint64_t per_counter = static_cast<std::uint64_t>(cfg_.counter_bits) +
                                    2ULL * static_cast<std::uint64_t>(cfg_.index_bits) +
                                    2ULL;
  return per_counter * counters_.size();
}

MlpAtd::Counter& MlpAtd::counter(int c_idx, int w) noexcept {
  return counters_[static_cast<std::size_t>(c_idx) *
                       static_cast<std::size_t>(cfg_.num_allocations()) +
                   static_cast<std::size_t>(w - cfg_.min_ways)];
}

const MlpAtd::Counter& MlpAtd::counter(int c_idx, int w) const noexcept {
  return counters_[static_cast<std::size_t>(c_idx) *
                       static_cast<std::size_t>(cfg_.num_allocations()) +
                   static_cast<std::size_t>(w - cfg_.min_ways)];
}

}  // namespace qosrm::cache
