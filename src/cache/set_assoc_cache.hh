// Generic set-associative LRU cache model.
//
// Models the private L1/L2 levels of Table I for trace filtering in examples
// and tests; the shared LLC uses PartitionedLlc instead.
#ifndef QOSRM_CACHE_SET_ASSOC_CACHE_HH
#define QOSRM_CACHE_SET_ASSOC_CACHE_HH

#include <cstdint>
#include <vector>

#include "cache/lru_stack.hh"

namespace qosrm::cache {

struct CacheGeometry {
  int size_bytes = 32 * 1024;
  int ways = 4;
  int block_bytes = 64;

  [[nodiscard]] int sets() const noexcept {
    return size_bytes / (ways * block_bytes);
  }
};

/// Address-indexed LRU cache returning hit/miss per access.
class SetAssocCache {
 public:
  explicit SetAssocCache(const CacheGeometry& geometry);

  /// Accesses byte address `addr`; returns true on hit. Misses allocate.
  bool access(std::uint64_t addr);

  [[nodiscard]] const CacheGeometry& geometry() const noexcept { return geom_; }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] double miss_rate() const noexcept;

  void reset();

 private:
  [[nodiscard]] std::uint32_t set_of(std::uint64_t addr) const noexcept;
  [[nodiscard]] std::uint64_t tag_of(std::uint64_t addr) const noexcept;

  CacheGeometry geom_;
  std::vector<LruStack> sets_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace qosrm::cache

#endif  // QOSRM_CACHE_SET_ASSOC_CACHE_HH
