// Way-partitioned shared last-level cache.
//
// Each core owns a contiguous number of ways in every set, enforced through
// per-core allocation masks (the paper's "LLC partitioning bit-masks", the
// same mechanism Intel CAT exposes). Replacement is restricted to the
// owner's ways, which makes each partition behave as a private w-way LRU
// cache over the shared sets; insertion by one core never evicts another
// core's blocks.
#ifndef QOSRM_CACHE_PARTITIONED_LLC_HH
#define QOSRM_CACHE_PARTITIONED_LLC_HH

#include <cstdint>
#include <vector>

#include "cache/access.hh"
#include "cache/lru_stack.hh"

namespace qosrm::cache {

class PartitionedLlc {
 public:
  /// `sets` cache sets shared by `cores` cores with per-core way allocations
  /// `ways_per_core` (each >= 1).
  PartitionedLlc(int sets, std::vector<int> ways_per_core);

  /// Accesses (set, tag) on behalf of `core`; returns true on hit. Misses
  /// allocate in the core's partition.
  bool access(int core, const LlcAccess& access);

  /// Repartitions: blocks of shrunken partitions beyond the new allocation
  /// are dropped lazily (LRU tail truncation), modelling mask updates that
  /// let stale blocks drain.
  void set_allocation(int core, int ways);

  [[nodiscard]] int allocation(int core) const;
  [[nodiscard]] int cores() const noexcept { return static_cast<int>(alloc_.size()); }
  [[nodiscard]] int sets() const noexcept { return sets_count_; }

  [[nodiscard]] std::uint64_t hits(int core) const;
  [[nodiscard]] std::uint64_t misses(int core) const;
  void reset_counters();

 private:
  [[nodiscard]] LruStack& partition(int core, std::uint32_t set);

  int sets_count_;
  std::vector<int> alloc_;
  // partitions_[core * sets + set]; each stack sized at the max allocation
  // and truncated logically to the current allocation.
  std::vector<LruStack> partitions_;
  std::vector<std::uint64_t> hits_;
  std::vector<std::uint64_t> misses_;
};

}  // namespace qosrm::cache

#endif  // QOSRM_CACHE_PARTITIONED_LLC_HH
