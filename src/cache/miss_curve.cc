#include "cache/miss_curve.hh"

#include <algorithm>

#include "cache/access.hh"
#include "common/check.hh"

namespace qosrm::cache {

MissCurve::MissCurve(std::vector<double> misses_by_ways) : m_(std::move(misses_by_ways)) {
  QOSRM_CHECK(!m_.empty());
}

MissCurve MissCurve::from_recency(std::span<const std::uint8_t> recency, int max_ways) {
  QOSRM_CHECK(max_ways > 0);
  // hits_at[r] = number of accesses hitting recency position r.
  std::vector<double> hits_at(static_cast<std::size_t>(max_ways), 0.0);
  double cold = 0.0;
  for (const std::uint8_t r : recency) {
    if (r == kRecencyMiss || static_cast<int>(r) >= max_ways) {
      cold += 1.0;
    } else {
      hits_at[r] += 1.0;
    }
  }
  return from_hit_counters(hits_at, cold);
}

MissCurve MissCurve::from_hit_counters(std::span<const double> hits, double misses,
                                       double scale) {
  QOSRM_CHECK(!hits.empty());
  QOSRM_CHECK(scale > 0.0);
  std::vector<double> m(hits.size(), 0.0);
  // misses(w) = base misses + hits at recency positions >= w; accumulate the
  // suffix sum from the largest allocation downwards.
  double tail = misses;
  for (std::size_t w = hits.size(); w >= 1; --w) {
    m[w - 1] = tail * scale;
    tail += hits[w - 1];
  }
  return MissCurve(std::move(m));
}

double MissCurve::misses(int w) const noexcept {
  QOSRM_DCHECK(!m_.empty());
  const int clamped = std::clamp(w, 1, max_ways());
  return m_[static_cast<std::size_t>(clamped - 1)];
}

void MissCurve::make_monotone() noexcept {
  for (std::size_t w = m_.size(); w >= 2; --w) {
    m_[w - 2] = std::max(m_[w - 2], m_[w - 1]);
  }
}

}  // namespace qosrm::cache
