#include "cache/lru_stack.hh"

#include "common/check.hh"

namespace qosrm::cache {

LruStack::LruStack(int ways) : ways_(ways) {
  QOSRM_CHECK(ways > 0 && ways < kRecencyMiss);
  stack_.reserve(static_cast<std::size_t>(ways));
}

std::uint8_t LruStack::access(std::uint64_t tag) {
  for (std::size_t i = 0; i < stack_.size(); ++i) {
    if (stack_[i] == tag) {
      // Promote to MRU: rotate [0, i] right by one.
      for (std::size_t j = i; j > 0; --j) stack_[j] = stack_[j - 1];
      stack_[0] = tag;
      return static_cast<std::uint8_t>(i);
    }
  }
  // Miss: insert at MRU, evicting LRU if full.
  if (static_cast<int>(stack_.size()) == ways_) stack_.pop_back();
  stack_.insert(stack_.begin(), tag);
  return kRecencyMiss;
}

std::uint8_t LruStack::position_of(std::uint64_t tag) const noexcept {
  for (std::size_t i = 0; i < stack_.size(); ++i) {
    if (stack_[i] == tag) return static_cast<std::uint8_t>(i);
  }
  return kRecencyMiss;
}

std::uint64_t LruStack::tag_at(int pos) const {
  QOSRM_CHECK(pos >= 0 && pos < occupancy());
  return stack_[static_cast<std::size_t>(pos)];
}

}  // namespace qosrm::cache
