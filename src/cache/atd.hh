// Auxiliary Tag Directory (Qureshi & Patt, MICRO'06) - the hardware
// monitoring structure the paper builds on.
//
// The ATD shadows the main LLC tag array for a (possibly sampled) subset of
// sets at the maximum associativity. Per-recency-position hit counters plus a
// miss counter yield the estimated miss count for ANY way allocation w:
//
//   misses(w) = atd_misses + sum_{r >= w} hits[r]
//
// Counters are finite-width saturating registers (paper Section III-E).
#ifndef QOSRM_CACHE_ATD_HH
#define QOSRM_CACHE_ATD_HH

#include <cstdint>
#include <vector>

#include "cache/access.hh"
#include "cache/lru_stack.hh"
#include "cache/miss_curve.hh"

namespace qosrm::cache {

struct AtdConfig {
  int sets = 4096;        ///< sets of the monitored LLC slice
  int max_ways = 16;      ///< monitored associativity (max allocation)
  int sample_period = 1;  ///< monitor sets where set % period == 0
  int counter_bits = 27;  ///< width of the hit/miss counters

  [[nodiscard]] std::uint64_t counter_max() const noexcept {
    return (counter_bits >= 64) ? ~0ULL : ((1ULL << counter_bits) - 1);
  }
};

class Atd {
 public:
  explicit Atd(const AtdConfig& config);

  /// Observes one LLC access (in LLC arrival order); updates tags/counters if
  /// the access falls into a sampled set. Returns the recency position seen
  /// by the ATD (kRecencyMiss if the set is not sampled or the tag missed).
  std::uint8_t observe(const LlcAccess& access);

  /// Estimated miss counts for all allocations, scaled by the sample period.
  [[nodiscard]] MissCurve miss_curve() const;

  /// Estimated misses at allocation w (scaled by the sample period).
  [[nodiscard]] double estimated_misses(int w) const;

  /// Raw per-recency-position hit counters (unscaled).
  [[nodiscard]] const std::vector<std::uint64_t>& hit_counters() const noexcept {
    return hits_;
  }
  [[nodiscard]] std::uint64_t atd_misses() const noexcept { return misses_; }
  [[nodiscard]] std::uint64_t observed() const noexcept { return observed_; }

  /// Clears counters but keeps tag state (interval boundary behaviour).
  void reset_counters();

  [[nodiscard]] const AtdConfig& config() const noexcept { return cfg_; }

 private:
  void bump(std::uint64_t& counter) noexcept;

  AtdConfig cfg_;
  std::vector<LruStack> sampled_sets_;  // indexed by set / sample_period
  std::vector<std::uint64_t> hits_;     // hits_[r], r in [0, max_ways)
  std::uint64_t misses_ = 0;
  std::uint64_t observed_ = 0;
};

}  // namespace qosrm::cache

#endif  // QOSRM_CACHE_ATD_HH
