// Miss counts as a function of the LLC way allocation, derived from a
// recency annotation (exact) or from ATD counters (estimated).
#ifndef QOSRM_CACHE_MISS_CURVE_HH
#define QOSRM_CACHE_MISS_CURVE_HH

#include <cstdint>
#include <span>
#include <vector>

namespace qosrm::cache {

/// misses(w) for w in [1, max_ways]; monotonically non-increasing in w for
/// LRU (stack-inclusion property). Counts are doubles so they can carry
/// set-sampling scale factors.
class MissCurve {
 public:
  MissCurve() = default;
  explicit MissCurve(std::vector<double> misses_by_ways);

  /// Builds the exact curve from a recency annotation: misses(w) = #accesses
  /// with recency >= w (kRecencyMiss counts for every w).
  [[nodiscard]] static MissCurve from_recency(std::span<const std::uint8_t> recency,
                                              int max_ways);

  /// Builds the curve from per-recency-position hit counters plus a miss
  /// count (the UMON/ATD form), optionally scaled (set sampling).
  [[nodiscard]] static MissCurve from_hit_counters(std::span<const double> hits,
                                                   double misses, double scale = 1.0);

  /// Miss count at allocation w (clamped to [1, max_ways]).
  [[nodiscard]] double misses(int w) const noexcept;

  [[nodiscard]] int max_ways() const noexcept { return static_cast<int>(m_.size()); }
  [[nodiscard]] bool empty() const noexcept { return m_.empty(); }

  /// Enforces monotone non-increase (guards against sampling noise when the
  /// curve comes from a hardware estimate).
  void make_monotone() noexcept;

 private:
  std::vector<double> m_;  // m_[w-1] = misses at w ways
};

}  // namespace qosrm::cache

#endif  // QOSRM_CACHE_MISS_CURVE_HH
