// Out-of-order arrival emulation.
//
// The hardware ATD observes LLC accesses in the order the core ISSUES them,
// not in program order: a load whose address depends on an in-flight miss
// reaches the LLC only after the producer's data returns. The paper's MLP
// heuristic exploits exactly this reordering ("if load instructions arrive
// out of order at the ATD, it is likely due to a data dependency").
//
// This emulator derives the arrival permutation of a program-order trace for
// a concrete core configuration and LLC allocation: each load gets an
// arrival timestamp (dispatch cycle + accumulated dependency-chain delay)
// and the trace is stably sorted by it.
#ifndef QOSRM_CACHE_ARRIVAL_HH
#define QOSRM_CACHE_ARRIVAL_HH

#include <cstdint>
#include <span>
#include <vector>

#include "arch/core_config.hh"
#include "cache/access.hh"

namespace qosrm::cache {

struct ArrivalParams {
  arch::CoreSize core = arch::CoreSize::M;
  int ways = 8;                     ///< LLC allocation, decides who misses
  double dispatch_ipc = 2.0;        ///< average dispatch rate (instr/cycle)
  double mem_latency_cycles = 200;  ///< DRAM latency in core cycles
};

/// Returns the arrival permutation: order[k] = trace position of the k-th
/// access to reach the LLC. `recency` is the program-order annotation used
/// to decide which accesses miss at `params.ways`.
[[nodiscard]] std::vector<std::uint32_t> emulate_arrival_order(
    std::span<const LlcAccess> trace, std::span<const std::uint8_t> recency,
    const ArrivalParams& params);

}  // namespace qosrm::cache

#endif  // QOSRM_CACHE_ARRIVAL_HH
