#include "cache/atd.hh"

#include "common/check.hh"

namespace qosrm::cache {

Atd::Atd(const AtdConfig& config) : cfg_(config) {
  QOSRM_CHECK(cfg_.sets > 0);
  QOSRM_CHECK(cfg_.max_ways > 0 && cfg_.max_ways < kRecencyMiss);
  QOSRM_CHECK(cfg_.sample_period >= 1);
  QOSRM_CHECK(cfg_.counter_bits >= 8 && cfg_.counter_bits <= 64);
  const int sampled = (cfg_.sets + cfg_.sample_period - 1) / cfg_.sample_period;
  sampled_sets_.reserve(static_cast<std::size_t>(sampled));
  for (int i = 0; i < sampled; ++i) sampled_sets_.emplace_back(cfg_.max_ways);
  hits_.assign(static_cast<std::size_t>(cfg_.max_ways), 0);
}

std::uint8_t Atd::observe(const LlcAccess& access) {
  QOSRM_DCHECK(access.set < static_cast<std::uint32_t>(cfg_.sets));
  if (access.set % static_cast<std::uint32_t>(cfg_.sample_period) != 0) {
    return kRecencyMiss;
  }
  ++observed_;
  const std::uint32_t idx = access.set / static_cast<std::uint32_t>(cfg_.sample_period);
  const std::uint8_t pos = sampled_sets_[idx].access(access.tag);
  if (pos == kRecencyMiss) {
    bump(misses_);
  } else {
    bump(hits_[pos]);
  }
  return pos;
}

MissCurve Atd::miss_curve() const {
  std::vector<double> hits(hits_.size(), 0.0);
  for (std::size_t i = 0; i < hits_.size(); ++i) hits[i] = static_cast<double>(hits_[i]);
  return MissCurve::from_hit_counters(hits, static_cast<double>(misses_),
                                      static_cast<double>(cfg_.sample_period));
}

double Atd::estimated_misses(int w) const { return miss_curve().misses(w); }

void Atd::reset_counters() {
  hits_.assign(hits_.size(), 0);
  misses_ = 0;
  observed_ = 0;
}

void Atd::bump(std::uint64_t& counter) noexcept {
  if (counter < cfg_.counter_max()) ++counter;
}

}  // namespace qosrm::cache
