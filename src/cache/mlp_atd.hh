// The paper's proposed ATD extension for online MLP estimation (Fig. 4).
//
// One leading-miss (LM) counter is kept per (core size, LLC allocation)
// pair: 3 core sizes x 16 allocations = 48 counters per core. Every LLC
// access carries a quantized instruction index (paper: 10 bits, window = 4x
// the maximum ROB). For each counter, a miss at allocation w is classified:
//
//   * leading miss (LM)  - begins a new group of overlapping accesses; its
//                          full memory latency stalls the core;
//   * overlapping (OV)   - its latency hides under the current leading miss.
//
// Heuristic (paper Section III-C): a miss is OV iff
//   1. its distance to the last LM is below the ROB size of the core
//      configuration, and
//   2. it does not arrive out of order (distance smaller than the previous
//      OV distance), which indicates a data dependency on the last LM.
//
// The structure embeds its own (possibly sampled) tag directory so the
// miss-at-w predicate is produced exactly the way the hardware would.
#ifndef QOSRM_CACHE_MLP_ATD_HH
#define QOSRM_CACHE_MLP_ATD_HH

#include <cstdint>
#include <vector>

#include "arch/core_config.hh"
#include "cache/access.hh"
#include "cache/lru_stack.hh"

namespace qosrm::cache {

struct MlpAtdConfig {
  int sets = 4096;
  int max_ways = 16;
  int min_ways = 1;       ///< smallest tracked allocation
  int sample_period = 1;  ///< set-sampling period (1 = every set)
  int index_bits = 10;    ///< quantized instruction-index width (paper: 10)
  int counter_bits = 27;  ///< LM counter width (paper: 27)

  [[nodiscard]] std::uint32_t index_window() const noexcept {
    return 1u << index_bits;
  }
  [[nodiscard]] std::uint64_t counter_max() const noexcept {
    return (counter_bits >= 64) ? ~0ULL : ((1ULL << counter_bits) - 1);
  }
  [[nodiscard]] int num_allocations() const noexcept {
    return max_ways - min_ways + 1;
  }
};

class MlpAtd {
 public:
  explicit MlpAtd(const MlpAtdConfig& config);

  /// Observes one LLC access in ATD ARRIVAL order (the order loads reach the
  /// LLC under the currently running configuration). Updates the embedded
  /// tag directory and all (c, w) leading-miss counters.
  void observe(const LlcAccess& access);

  /// Leading-miss count estimated for core size `c` and allocation `w`,
  /// scaled by the set-sampling period.
  [[nodiscard]] double leading_misses(arch::CoreSize c, int w) const;

  /// Total observed misses at allocation w (same tag directory as the LM
  /// counters, scaled) - the companion UMON estimate.
  [[nodiscard]] double total_misses(int w) const;

  /// Estimated MLP = total misses / leading misses (>= 1).
  [[nodiscard]] double mlp(arch::CoreSize c, int w) const;

  /// Clears all counters and per-counter registers; tag state is preserved
  /// (interval boundary behaviour).
  void reset_counters();

  [[nodiscard]] const MlpAtdConfig& config() const noexcept { return cfg_; }

  /// Storage cost of the mechanism in bits (paper Section III-E estimates
  /// < 300 bytes/core): LM counters + last-LM-index + last-OV-distance
  /// registers. Excludes the baseline ATD tag storage.
  [[nodiscard]] std::uint64_t extension_storage_bits() const noexcept;

 private:
  /// Per-(core size, allocation) heuristic state.
  struct Counter {
    std::uint64_t lm_count = 0;
    std::uint32_t last_lm_index = 0;
    std::uint32_t last_ov_dist = 0;
    bool has_last_lm = false;
    bool has_ov = false;
  };

  [[nodiscard]] Counter& counter(int c_idx, int w) noexcept;
  [[nodiscard]] const Counter& counter(int c_idx, int w) const noexcept;
  void update_counter(Counter& ctr, int rob, std::uint32_t q_index) noexcept;

  MlpAtdConfig cfg_;
  std::vector<LruStack> sampled_sets_;
  std::vector<Counter> counters_;        // [core size][allocation]
  std::vector<std::uint64_t> hit_at_;    // recency-position hit counters
  std::uint64_t atd_misses_ = 0;
};

}  // namespace qosrm::cache

#endif  // QOSRM_CACHE_MLP_ATD_HH
