#include "cache/set_assoc_cache.hh"

#include "common/check.hh"

namespace qosrm::cache {

SetAssocCache::SetAssocCache(const CacheGeometry& geometry) : geom_(geometry) {
  QOSRM_CHECK(geom_.size_bytes > 0 && geom_.ways > 0 && geom_.block_bytes > 0);
  const int sets = geom_.sets();
  QOSRM_CHECK_MSG(sets > 0, "cache smaller than one set");
  QOSRM_CHECK_MSG((sets & (sets - 1)) == 0, "set count must be a power of two");
  sets_.reserve(static_cast<std::size_t>(sets));
  for (int i = 0; i < sets; ++i) sets_.emplace_back(geom_.ways);
}

bool SetAssocCache::access(std::uint64_t addr) {
  const std::uint8_t pos = sets_[set_of(addr)].access(tag_of(addr));
  const bool hit = pos != kRecencyMiss;
  hit ? ++hits_ : ++misses_;
  return hit;
}

double SetAssocCache::miss_rate() const noexcept {
  const std::uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0 : static_cast<double>(misses_) / static_cast<double>(total);
}

void SetAssocCache::reset() {
  for (auto& s : sets_) s.clear();
  hits_ = 0;
  misses_ = 0;
}

std::uint32_t SetAssocCache::set_of(std::uint64_t addr) const noexcept {
  const std::uint64_t block = addr / static_cast<std::uint64_t>(geom_.block_bytes);
  return static_cast<std::uint32_t>(block &
                                    static_cast<std::uint64_t>(geom_.sets() - 1));
}

std::uint64_t SetAssocCache::tag_of(std::uint64_t addr) const noexcept {
  const std::uint64_t block = addr / static_cast<std::uint64_t>(geom_.block_bytes);
  return block / static_cast<std::uint64_t>(geom_.sets());
}

}  // namespace qosrm::cache
