#include "cache/mlp_oracle.hh"

#include "cache/recency.hh"
#include "common/check.hh"

namespace qosrm::cache {

double MlpOracle::leading_misses(std::span<const LlcAccess> trace,
                                 std::span<const std::uint8_t> recency,
                                 arch::CoreSize c, int w) {
  QOSRM_CHECK(trace.size() == recency.size());
  const arch::CoreParams& core = arch::core_params(c);
  const std::uint64_t rob = static_cast<std::uint64_t>(core.rob);
  const int lsq = core.lsq;

  double lm = 0.0;
  bool has_last_lm = false;
  std::uint64_t last_lm_index = 0;
  int group_outstanding = 0;   // loads overlapping the current leading miss
  bool prev_load_missed = false;  // did the previous trace load miss at w?

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const LlcAccess& a = trace[i];
    const bool miss = misses_at(recency[i], w);
    if (!miss) {
      // Hits complete quickly; they neither extend nor break overlap groups.
      prev_load_missed = false;
      continue;
    }

    // Serialized behind a missing producer: the address depends on data that
    // is still in flight, so this load cannot overlap the current group.
    const bool serialized = a.depends_on_prev && prev_load_missed;

    const bool within_window =
        has_last_lm && (a.inst_index - last_lm_index) < rob;
    const bool lsq_room = group_outstanding + 1 < lsq;

    if (within_window && !serialized && lsq_room) {
      ++group_outstanding;  // overlapped miss
    } else {
      lm += 1.0;
      has_last_lm = true;
      last_lm_index = a.inst_index;
      group_outstanding = 1;
    }
    prev_load_missed = true;
  }
  return lm;
}

std::vector<double> MlpOracle::leading_miss_curve(std::span<const LlcAccess> trace,
                                                  std::span<const std::uint8_t> recency,
                                                  arch::CoreSize c, int min_ways,
                                                  int max_ways) {
  QOSRM_CHECK(min_ways >= 1 && min_ways <= max_ways);
  std::vector<double> curve;
  curve.reserve(static_cast<std::size_t>(max_ways - min_ways + 1));
  for (int w = min_ways; w <= max_ways; ++w) {
    curve.push_back(leading_misses(trace, recency, c, w));
  }
  return curve;
}

}  // namespace qosrm::cache
