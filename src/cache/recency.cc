#include "cache/recency.hh"

#include "common/check.hh"

namespace qosrm::cache {

RecencyProfiler::RecencyProfiler(int sets, int max_ways) : max_ways_(max_ways) {
  QOSRM_CHECK(sets > 0);
  sets_.reserve(static_cast<std::size_t>(sets));
  for (int i = 0; i < sets; ++i) sets_.emplace_back(max_ways);
}

std::vector<std::uint8_t> RecencyProfiler::annotate(
    std::span<const LlcAccess> trace, std::span<const std::uint32_t> order) {
  std::vector<std::uint8_t> recency(trace.size(), kRecencyMiss);
  if (order.empty()) {
    for (std::size_t i = 0; i < trace.size(); ++i) recency[i] = observe(trace[i]);
  } else {
    QOSRM_CHECK(order.size() == trace.size());
    for (const std::uint32_t pos : order) recency[pos] = observe(trace[pos]);
  }
  return recency;
}

std::uint8_t RecencyProfiler::observe(const LlcAccess& access) {
  QOSRM_DCHECK(access.set < sets_.size());
  return sets_[access.set].access(access.tag);
}

void RecencyProfiler::reset() {
  for (auto& s : sets_) s.clear();
}

}  // namespace qosrm::cache
