// The unit of work for every cache-level model: one LLC access (a load that
// missed the private L1/L2 hierarchy), in program order.
#ifndef QOSRM_CACHE_ACCESS_HH
#define QOSRM_CACHE_ACCESS_HH

#include <cstdint>

namespace qosrm::cache {

/// Recency annotation value for an access that hits no recency position
/// (cold miss or beyond the maximum associativity).
inline constexpr std::uint8_t kRecencyMiss = 0xFF;

/// One LLC access of one application, in program order.
struct LlcAccess {
  /// Cumulative dynamic instruction index of the load (program order).
  std::uint64_t inst_index = 0;
  /// LLC set index.
  std::uint32_t set = 0;
  /// Block tag (unique within the set).
  std::uint64_t tag = 0;
  /// True if this load is data-dependent on the immediately preceding load
  /// in the trace (address computed from its result, e.g. pointer chasing).
  bool depends_on_prev = false;
};

}  // namespace qosrm::cache

#endif  // QOSRM_CACHE_ACCESS_HH
