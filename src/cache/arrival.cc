#include "cache/arrival.hh"

#include <algorithm>
#include <numeric>

#include "cache/recency.hh"
#include "common/check.hh"

namespace qosrm::cache {

std::vector<std::uint32_t> emulate_arrival_order(
    std::span<const LlcAccess> trace, std::span<const std::uint8_t> recency,
    const ArrivalParams& params) {
  QOSRM_CHECK(trace.size() == recency.size());
  QOSRM_CHECK(params.dispatch_ipc > 0.0);

  std::vector<double> arrival(trace.size(), 0.0);
  double chain_delay = 0.0;    // accumulated delay of the current dep chain
  bool prev_missed = false;    // previous load missed -> dependents stall

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const LlcAccess& a = trace[i];
    const double dispatch_cycle =
        static_cast<double>(a.inst_index) / params.dispatch_ipc;
    if (a.depends_on_prev && prev_missed) {
      // Address depends on in-flight data: issue after the producer returns.
      chain_delay += params.mem_latency_cycles;
    } else if (!a.depends_on_prev) {
      chain_delay = 0.0;  // independent load starts a fresh chain
    }
    arrival[i] = dispatch_cycle + chain_delay;
    prev_missed = misses_at(recency[i], params.ways);
  }

  std::vector<std::uint32_t> order(trace.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t x, std::uint32_t y) {
                     return arrival[x] < arrival[y];
                   });
  return order;
}

}  // namespace qosrm::cache
