#include "cache/partitioned_llc.hh"

#include "common/check.hh"

namespace qosrm::cache {

namespace {
constexpr int kMaxPartitionWays = 16;
}

PartitionedLlc::PartitionedLlc(int sets, std::vector<int> ways_per_core)
    : sets_count_(sets), alloc_(std::move(ways_per_core)) {
  QOSRM_CHECK(sets > 0);
  QOSRM_CHECK(!alloc_.empty());
  for (const int w : alloc_) QOSRM_CHECK(w >= 1 && w <= kMaxPartitionWays);
  const std::size_t n =
      static_cast<std::size_t>(sets) * alloc_.size();
  partitions_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) partitions_.emplace_back(kMaxPartitionWays);
  hits_.assign(alloc_.size(), 0);
  misses_.assign(alloc_.size(), 0);
}

bool PartitionedLlc::access(int core, const LlcAccess& access) {
  QOSRM_DCHECK(access.set < static_cast<std::uint32_t>(sets_count_));
  LruStack& stack = partition(core, access.set);
  const std::uint8_t pos = stack.access(access.tag);
  // A block beyond the current allocation is logically evicted: its recency
  // position must be below the owner's way count to hit.
  const bool hit = pos != kRecencyMiss &&
                   static_cast<int>(pos) < alloc_[static_cast<std::size_t>(core)];
  hit ? ++hits_[static_cast<std::size_t>(core)]
      : ++misses_[static_cast<std::size_t>(core)];
  return hit;
}

void PartitionedLlc::set_allocation(int core, int ways) {
  QOSRM_CHECK(core >= 0 && core < cores());
  QOSRM_CHECK(ways >= 1 && ways <= kMaxPartitionWays);
  alloc_[static_cast<std::size_t>(core)] = ways;
}

int PartitionedLlc::allocation(int core) const {
  QOSRM_CHECK(core >= 0 && core < cores());
  return alloc_[static_cast<std::size_t>(core)];
}

std::uint64_t PartitionedLlc::hits(int core) const {
  QOSRM_CHECK(core >= 0 && core < cores());
  return hits_[static_cast<std::size_t>(core)];
}

std::uint64_t PartitionedLlc::misses(int core) const {
  QOSRM_CHECK(core >= 0 && core < cores());
  return misses_[static_cast<std::size_t>(core)];
}

void PartitionedLlc::reset_counters() {
  hits_.assign(hits_.size(), 0);
  misses_.assign(misses_.size(), 0);
}

LruStack& PartitionedLlc::partition(int core, std::uint32_t set) {
  QOSRM_DCHECK(core >= 0 && core < cores());
  return partitions_[static_cast<std::size_t>(core) *
                         static_cast<std::size_t>(sets_count_) +
                     set];
}

}  // namespace qosrm::cache
