// True-LRU recency stack for one cache set.
//
// The stack order gives each resident tag a recency position (0 = MRU).
// Because LRU has the stack-inclusion property, an access that hits position
// r hits in every cache with at least r+1 ways - the foundation for ATD-based
// miss-curve estimation (Qureshi & Patt, MICRO'06).
#ifndef QOSRM_CACHE_LRU_STACK_HH
#define QOSRM_CACHE_LRU_STACK_HH

#include <cstdint>
#include <vector>

#include "cache/access.hh"

namespace qosrm::cache {

class LruStack {
 public:
  /// Creates an empty stack with capacity `ways` (> 0).
  explicit LruStack(int ways);

  /// Looks up `tag`: returns its recency position before the access
  /// (0 = MRU) or kRecencyMiss if absent, then promotes the tag to MRU,
  /// inserting it and evicting the LRU entry if the stack is full.
  std::uint8_t access(std::uint64_t tag);

  /// Lookup without state change; kRecencyMiss if absent.
  [[nodiscard]] std::uint8_t position_of(std::uint64_t tag) const noexcept;

  [[nodiscard]] bool contains(std::uint64_t tag) const noexcept {
    return position_of(tag) != kRecencyMiss;
  }

  /// Resident tag at recency position `pos` (< occupancy()).
  [[nodiscard]] std::uint64_t tag_at(int pos) const;

  [[nodiscard]] int occupancy() const noexcept { return static_cast<int>(stack_.size()); }
  [[nodiscard]] int ways() const noexcept { return ways_; }

  void clear() noexcept { stack_.clear(); }

 private:
  int ways_;
  // MRU at front. Associativities are <= 16 in this library, so a linear
  // vector beats pointer-chasing list/maps on every relevant size.
  std::vector<std::uint64_t> stack_;
};

}  // namespace qosrm::cache

#endif  // QOSRM_CACHE_LRU_STACK_HH
