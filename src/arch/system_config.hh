// Whole-system configuration (paper Table I) shared by the cache models, the
// workload database and the resource managers.
#ifndef QOSRM_ARCH_SYSTEM_CONFIG_HH
#define QOSRM_ARCH_SYSTEM_CONFIG_HH

#include <cstdint>

#include "arch/core_config.hh"
#include "arch/dvfs.hh"

namespace qosrm::arch {

/// LLC way-allocation bounds. The shared LLC provides 8 ways x cores in
/// total (2 MB x cores, 256 KB per way); each core may hold between 2 and 16
/// ways (256 KB - 4 MB), baseline is the even split of 8 ways.
struct LlcConfig {
  int ways_per_core_baseline = 8;
  int min_ways = 2;
  int max_ways = 16;
  int block_bytes = 64;
  int sets = 4096;              ///< 256 KB per way / 64 B blocks
  int atd_sampled_sets = 64;    ///< set-sampling ratio 1/64 in the ATD

  /// Total way budget for an n-core system: Sum_j w_j = 8 n.
  [[nodiscard]] int total_ways(int cores) const noexcept {
    return ways_per_core_baseline * cores;
  }
  [[nodiscard]] int num_allocations() const noexcept {
    return max_ways - min_ways + 1;
  }
};

/// Memory-bandwidth partition bounds (the CBP companion knob,
/// arXiv:2102.11528). The memory controller's bandwidth is divided into
/// `shares_per_core_baseline` shares per core; a core granted fewer shares
/// than its baseline sees its effective DRAM latency inflated by queuing
/// contention, one granted more sees it deflated (bw_latency_scale below).
/// The default single share per core with min == max == 1 is the DEGENERATE
/// case: the share axis has exactly one point, every core always holds its
/// baseline share with scale exactly 1.0, and the whole optimizer stack
/// behaves bit-identically to the ways-only system.
struct BwConfig {
  int shares_per_core_baseline = 1;
  int min_shares = 1;
  int max_shares = 1;
  /// Queuing-contention weight of the effective-latency model: the latency
  /// multiplier at b granted shares is 1 + contention * (b_base/b - 1).
  double contention = 0.5;

  /// Total share budget for an n-core system: Sum_j b_j = baseline * n.
  [[nodiscard]] int total_shares(int cores) const noexcept {
    return shares_per_core_baseline * cores;
  }
  [[nodiscard]] int num_allocations() const noexcept {
    return max_shares - min_shares + 1;
  }
  /// True for the default unpartitioned-bandwidth configuration.
  [[nodiscard]] bool degenerate() const noexcept {
    return shares_per_core_baseline == 1 && min_shares == 1 && max_shares == 1;
  }
};

/// Effective DRAM-latency multiplier at `b` granted shares: exactly 1.0 at
/// the baseline share (b_base/b evaluates to 1.0, so the scale - and every
/// product taken with it - is bit-identical to the unscaled value),
/// hyperbolically rising as the share shrinks, floored at 1 - contention as
/// b grows. `b` clamps to the configured bounds like way lookups clamp to
/// the ATD range.
[[nodiscard]] inline double bw_latency_scale(const BwConfig& bw, int b) noexcept {
  const int clamped =
      b < bw.min_shares ? bw.min_shares : (b > bw.max_shares ? bw.max_shares : b);
  return 1.0 + bw.contention *
                   (static_cast<double>(bw.shares_per_core_baseline) /
                        static_cast<double>(clamped) -
                    1.0);
}

/// Full system description.
struct SystemConfig {
  int cores = 4;
  LlcConfig llc{};
  BwConfig bw{};
  double interval_instructions = 100e6;  ///< RM invocation granularity
  double mem_latency_s = 130e-9;         ///< DRAM base latency
  double qos_alpha = 1.0;                ///< QoS relaxation (paper uses 1)

  [[nodiscard]] int total_ways() const noexcept { return llc.total_ways(cores); }
  [[nodiscard]] int total_shares() const noexcept {
    return bw.total_shares(cores);
  }
};

/// Maps the CLI-facing `--bw-shares=N` knob (baseline shares per core) onto
/// the partition bounds: N == 1 keeps the degenerate single-point axis;
/// N >= 2 spreads +-max(1, N/4) around the fair share. The axis is
/// deliberately NARROW - every share level multiplies the local-optimizer
/// grid and quadratically widens the global DP's feasible-pair space, and
/// the per-interval invoke must stay within a small constant factor of the
/// ways-only cost (pinned by the CI bench budget; see the README).
[[nodiscard]] inline BwConfig bw_config_for_shares(int shares_per_core) noexcept {
  BwConfig bw;
  bw.shares_per_core_baseline = shares_per_core < 1 ? 1 : shares_per_core;
  if (shares_per_core <= 1) {
    bw.min_shares = 1;
    bw.max_shares = 1;
  } else {
    const int delta = shares_per_core / 4 > 0 ? shares_per_core / 4 : 1;
    bw.min_shares =
        shares_per_core - delta > 0 ? shares_per_core - delta : 1;
    bw.max_shares = shares_per_core + delta;
  }
  return bw;
}

}  // namespace qosrm::arch

#endif  // QOSRM_ARCH_SYSTEM_CONFIG_HH
