// Whole-system configuration (paper Table I) shared by the cache models, the
// workload database and the resource managers.
#ifndef QOSRM_ARCH_SYSTEM_CONFIG_HH
#define QOSRM_ARCH_SYSTEM_CONFIG_HH

#include <cstdint>

#include "arch/core_config.hh"
#include "arch/dvfs.hh"

namespace qosrm::arch {

/// LLC way-allocation bounds. The shared LLC provides 8 ways x cores in
/// total (2 MB x cores, 256 KB per way); each core may hold between 2 and 16
/// ways (256 KB - 4 MB), baseline is the even split of 8 ways.
struct LlcConfig {
  int ways_per_core_baseline = 8;
  int min_ways = 2;
  int max_ways = 16;
  int block_bytes = 64;
  int sets = 4096;              ///< 256 KB per way / 64 B blocks
  int atd_sampled_sets = 64;    ///< set-sampling ratio 1/64 in the ATD

  /// Total way budget for an n-core system: Sum_j w_j = 8 n.
  [[nodiscard]] int total_ways(int cores) const noexcept {
    return ways_per_core_baseline * cores;
  }
  [[nodiscard]] int num_allocations() const noexcept {
    return max_ways - min_ways + 1;
  }
};

/// Full system description.
struct SystemConfig {
  int cores = 4;
  LlcConfig llc{};
  double interval_instructions = 100e6;  ///< RM invocation granularity
  double mem_latency_s = 130e-9;         ///< DRAM base latency
  double qos_alpha = 1.0;                ///< QoS relaxation (paper uses 1)

  [[nodiscard]] int total_ways() const noexcept { return llc.total_ways(cores); }
};

}  // namespace qosrm::arch

#endif  // QOSRM_ARCH_SYSTEM_CONFIG_HH
