#include "arch/dvfs.hh"

#include <cmath>

#include "common/check.hh"

namespace qosrm::arch {

OperatingPoint VfTable::point(int idx) noexcept {
  QOSRM_DCHECK(idx >= 0 && idx < kNumPoints);
  return {frequency_hz(idx), voltage(idx)};
}

double VfTable::frequency_hz(int idx) noexcept {
  QOSRM_DCHECK(idx >= 0 && idx < kNumPoints);
  return kMinFreqHz + kStepHz * static_cast<double>(idx);
}

double VfTable::voltage(int idx) noexcept {
  QOSRM_DCHECK(idx >= 0 && idx < kNumPoints);
  const double span_hz = kStepHz * static_cast<double>(kNumPoints - 1);
  const double t = (frequency_hz(idx) - kMinFreqHz) / span_hz;
  return kMinVolt + t * (kMaxVolt - kMinVolt);
}

int VfTable::index_at_least(double freq_hz) noexcept {
  if (freq_hz <= kMinFreqHz) return 0;
  const int idx = static_cast<int>(std::ceil((freq_hz - kMinFreqHz) / kStepHz - 1e-9));
  return idx >= kNumPoints ? kNumPoints - 1 : idx;
}

}  // namespace qosrm::arch
