// Ground-truth interval timing model (the role Sniper's "ROB" core model
// plays in the paper's methodology).
//
// Given the architecture-independent characteristics of an execution interval
// (instruction count, inherent ILP, branch/private-cache stall components)
// and the cache-level ground truth for a specific setting (LLC misses and
// *leading* misses at core size c and allocation w), the model produces the
// interval's wall-clock time decomposed exactly along the lines of paper
// Eq. 1:
//
//   T = T_dispatch(c)/f + (T_BP + T_Cache)/f + LM(c,w) * L_mem
//
// The dispatch component saturates harmonically in min(D(c), ILP): this is
// deliberately *richer* than the RM's analytical assumption of linear
// dispatch-width scaling, so the online models exhibit realistic error.
#ifndef QOSRM_ARCH_CORE_MODEL_HH
#define QOSRM_ARCH_CORE_MODEL_HH

#include "arch/core_config.hh"

namespace qosrm::arch {

/// Architecture-independent description of one interval of execution.
struct IntervalCharacteristics {
  double instructions = 0.0;   ///< retired instructions in the interval
  double ilp = 1.0;            ///< inherent instruction-level parallelism
  double cpi_branch = 0.0;     ///< branch-misprediction stall cycles/instr
  double cpi_private_cache = 0.0;  ///< L1/L2 access stall cycles/instr
};

/// Cache-level ground truth for a specific (c, w) setting.
struct MemoryBehaviour {
  double llc_misses = 0.0;      ///< total LLC misses M(w) in the interval
  double leading_misses = 0.0;  ///< non-overlapped misses LM(c, w)
  double mem_latency_s = 100e-9;  ///< DRAM latency (frequency-independent)
};

/// Cycle/time breakdown of one interval at a concrete (c, f, w).
///
/// Compute cycles decompose into a width-bound part N/D(c), which shrinks
/// linearly with the dispatch width (Eq. 1's "scaled linearly" component),
/// and a dependency-bound part N/ILP, which a wider core cannot remove. The
/// ground truth additionally lets the effective ILP grow mildly with the
/// instruction window (window_ilp_factor) - an effect the online models do
/// not know about, one of the realistic modelling-error sources.
struct IntervalTiming {
  double width_cycles = 0.0;   ///< N / D(c): dispatch-width bound
  double ilp_cycles = 0.0;     ///< N / ILP_eff(c): dependency bound
  double branch_cycles = 0.0;  ///< T_BP cycles, unaffected by core size
  double cache_cycles = 0.0;   ///< T_Cache cycles, unaffected by core size
  double core_seconds = 0.0;   ///< busy_cycles() / f
  double mem_seconds = 0.0;    ///< LM * L_mem, unaffected by f
  double total_seconds = 0.0;  ///< core_seconds + mem_seconds

  [[nodiscard]] double busy_cycles() const noexcept {
    return width_cycles + ilp_cycles + branch_cycles + cache_cycles;
  }
};

/// Second-order window effect: a larger ROB/RS lets the scheduler extract a
/// little more ILP. Unknown to the online models (modelling error).
[[nodiscard]] double window_ilp_factor(CoreSize c) noexcept;

/// Effective sustainable IPC of core size `c` for inherent parallelism `ilp`:
/// harmonic combination 1 / (1/D + 1/ILP_eff), which saturates towards
/// min(D, ILP) and degrades gracefully between the extremes.
[[nodiscard]] double effective_ipc(CoreSize c, double ilp) noexcept;

/// Evaluates the ground-truth interval time at (c, f, w); the w dependence is
/// already folded into `mem` (misses/leading misses are per-(c,w)).
[[nodiscard]] IntervalTiming evaluate_interval(const IntervalCharacteristics& chars,
                                               const MemoryBehaviour& mem,
                                               CoreSize c, double freq_hz) noexcept;

}  // namespace qosrm::arch

#endif  // QOSRM_ARCH_CORE_MODEL_HH
