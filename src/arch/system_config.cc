#include "arch/system_config.hh"

// SystemConfig is a plain aggregate; this translation unit exists so the
// target has a concrete object library even when all members stay inline.
namespace qosrm::arch {}
