// Per-core DVFS operating points (paper Table I).
//
// Core frequency range 1.0 - 3.25 GHz in 0.125 GHz steps (19 points),
// voltage scaling linearly from 0.8 V to 1.25 V. The baseline operating
// point is 2 GHz / 1.0 V. Changing the VF setting costs 15 us and 3 uJ
// (paper Section III-E, numbers from the Samsung Exynos 4210 study).
#ifndef QOSRM_ARCH_DVFS_HH
#define QOSRM_ARCH_DVFS_HH

#include <cstddef>

namespace qosrm::arch {

/// One voltage-frequency pair.
struct OperatingPoint {
  double freq_hz;
  double voltage;
};

/// The discrete VF table shared by all cores.
class VfTable {
 public:
  static constexpr int kNumPoints = 19;
  static constexpr double kMinFreqHz = 1.0e9;
  static constexpr double kStepHz = 0.125e9;
  static constexpr double kMinVolt = 0.80;
  static constexpr double kMaxVolt = 1.25;
  /// Baseline = 2.0 GHz / 1.0 V (index 8).
  static constexpr int kBaselineIndex = 8;

  /// Operating point at table index `idx` in [0, kNumPoints).
  [[nodiscard]] static OperatingPoint point(int idx) noexcept;

  [[nodiscard]] static double frequency_hz(int idx) noexcept;
  [[nodiscard]] static double voltage(int idx) noexcept;

  /// Index of the lowest operating point with frequency >= freq_hz; returns
  /// kNumPoints-1 if freq_hz exceeds the table.
  [[nodiscard]] static int index_at_least(double freq_hz) noexcept;

  [[nodiscard]] static OperatingPoint baseline() noexcept {
    return point(kBaselineIndex);
  }
};

/// DVFS transition overheads (paper Section III-E).
struct DvfsTransitionCost {
  double time_s = 15e-6;
  double energy_j = 3e-6;
};

}  // namespace qosrm::arch

#endif  // QOSRM_ARCH_DVFS_HH
