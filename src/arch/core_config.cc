#include "arch/core_config.hh"

#include "common/check.hh"

namespace qosrm::arch {

namespace {
// Paper Table I plus energy scaling factors. The EPI/leakage scales are
// McPAT-flavoured: upsizing S->M->L grows per-instruction switching energy
// sub-linearly with width (wider structures, but shared front-end/caches) and
// leakage roughly with active area.
constexpr std::array<CoreParams, kNumCoreSizes> kParams = {{
    {CoreSize::S, 2, 64, 16, 10, /*epi_scale=*/0.90, /*leak_scale=*/0.74},
    {CoreSize::M, 4, 128, 64, 32, /*epi_scale=*/1.00, /*leak_scale=*/1.00},
    {CoreSize::L, 8, 256, 128, 64, /*epi_scale=*/1.13, /*leak_scale=*/1.32},
}};
}  // namespace

std::string_view core_size_name(CoreSize c) noexcept {
  switch (c) {
    case CoreSize::S:
      return "S";
    case CoreSize::M:
      return "M";
    case CoreSize::L:
      return "L";
  }
  return "?";
}

const CoreParams& core_params(CoreSize c) noexcept {
  return kParams[static_cast<std::size_t>(c)];
}

int max_rob() noexcept { return kParams.back().rob; }

}  // namespace qosrm::arch
