// Adaptive core configurations (paper Table I).
//
// The core can be resized among three balanced configurations S/M/L by
// deactivating sections of the issue logic, reservation stations, load/store
// queue and reorder buffer. The paper models a 2-, 4- and 8-issue pipeline:
//
//              L     M     S
//   issue      8     4     2
//   ROB      256   128    64
//   RS       128    64    16
//   LSQ       64    32    10
//
// M is the baseline configuration. The relative energy parameters
// (energy-per-instruction and leakage scale) model the "often linear relation
// between core size and energy" the paper relies on: resizing trades a
// roughly linear energy cost against ILP/MLP, whereas DVFS trades a quadratic
// one.
#ifndef QOSRM_ARCH_CORE_CONFIG_HH
#define QOSRM_ARCH_CORE_CONFIG_HH

#include <array>
#include <cstdint>
#include <string_view>

namespace qosrm::arch {

enum class CoreSize : std::uint8_t { S = 0, M = 1, L = 2 };

inline constexpr int kNumCoreSizes = 3;

/// All core sizes in ascending order, for range-for sweeps.
inline constexpr std::array<CoreSize, kNumCoreSizes> kAllCoreSizes = {
    CoreSize::S, CoreSize::M, CoreSize::L};

/// Baseline ("mid-range") configuration used by the idle RM and as the QoS
/// reference setting.
inline constexpr CoreSize kBaselineCoreSize = CoreSize::M;

[[nodiscard]] constexpr int core_size_index(CoreSize c) noexcept {
  return static_cast<int>(c);
}

[[nodiscard]] std::string_view core_size_name(CoreSize c) noexcept;

/// Microarchitectural parameters of one core configuration.
struct CoreParams {
  CoreSize size;
  int issue_width;  ///< dispatch width D(c) used by the analytical model
  int rob;          ///< reorder-buffer entries (MLP window)
  int rs;           ///< reservation stations
  int lsq;          ///< load/store queue entries (bounds outstanding loads)
  double epi_scale;   ///< dynamic energy per instruction relative to M
  double leak_scale;  ///< leakage power relative to M (gated sections off)
};

/// Returns the Table I parameters of configuration `c`.
[[nodiscard]] const CoreParams& core_params(CoreSize c) noexcept;

/// Maximum ROB across configurations; the MLP-ATD instruction-index window is
/// four times this value (paper Section III-C).
[[nodiscard]] int max_rob() noexcept;

}  // namespace qosrm::arch

#endif  // QOSRM_ARCH_CORE_CONFIG_HH
