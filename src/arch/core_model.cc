#include "arch/core_model.hh"

#include "common/check.hh"

namespace qosrm::arch {

double window_ilp_factor(CoreSize c) noexcept {
  switch (c) {
    case CoreSize::S:
      return 0.93;
    case CoreSize::M:
      return 1.00;
    case CoreSize::L:
      return 1.05;
  }
  return 1.0;
}

double effective_ipc(CoreSize c, double ilp) noexcept {
  QOSRM_DCHECK(ilp > 0.0);
  const double d = static_cast<double>(core_params(c).issue_width);
  const double ilp_eff = ilp * window_ilp_factor(c);
  return 1.0 / (1.0 / d + 1.0 / ilp_eff);
}

IntervalTiming evaluate_interval(const IntervalCharacteristics& chars,
                                 const MemoryBehaviour& mem, CoreSize c,
                                 double freq_hz) noexcept {
  QOSRM_DCHECK(freq_hz > 0.0);
  QOSRM_DCHECK(chars.instructions >= 0.0);
  QOSRM_DCHECK(chars.ilp > 0.0);
  QOSRM_DCHECK(mem.leading_misses <= mem.llc_misses + 1e-9);

  IntervalTiming t;
  const double d = static_cast<double>(core_params(c).issue_width);
  t.width_cycles = chars.instructions / d;
  t.ilp_cycles = chars.instructions / (chars.ilp * window_ilp_factor(c));
  t.branch_cycles = chars.instructions * chars.cpi_branch;
  t.cache_cycles = chars.instructions * chars.cpi_private_cache;
  t.core_seconds = t.busy_cycles() / freq_hz;
  t.mem_seconds = mem.leading_misses * mem.mem_latency_s;
  t.total_seconds = t.core_seconds + t.mem_seconds;
  return t;
}

}  // namespace qosrm::arch
