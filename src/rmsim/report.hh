// The figure-report subsystem: turns sweep rows (live runs or merged
// .qospart output) into versioned, byte-stable paper-figure aggregates,
// plus the paper-style ASCII tables the bench binaries print.
//
// A FigureReport carries the three headline result sets of the paper:
//   fig6 - per-scenario and scenario-weighted energy savings vs the idle
//          baseline, one entry per (policy, model, alpha) configuration
//   fig7 - QoS-violation counts and Eq. 6 magnitudes per configuration
//   fig9 - online-model-vs-perfect-oracle savings deltas (present only when
//          the sweep's model axis includes the Perfect oracle)
//
// Every report embeds the sweep fingerprint of the rows it was built from
// (see rmsim/shard.hh), so a report can never be matched against foreign
// rows: report_main refuses part files whose fingerprint differs from
// --fingerprint, and the JSON stamp makes any archived report traceable to
// the exact grid + simulator options + database identity that produced it.
// Writers emit fixed key order and full-precision ("%.17g") doubles, so
// equal rows produce byte-identical files regardless of thread or shard
// count, and commit atomically (tmp + rename) like the .qospart writers.
#ifndef QOSRM_RMSIM_REPORT_HH
#define QOSRM_RMSIM_REPORT_HH

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/table.hh"
#include "rmsim/interval_sim.hh"
#include "rmsim/qos_eval.hh"
#include "rmsim/shard.hh"
#include "rmsim/sweep.hh"

namespace qosrm::rmsim {

inline constexpr std::uint32_t kFigureReportVersion = 1;

/// Fig. 6: energy savings of one (policy, model, alpha) configuration over
/// the mix axis.
struct Fig6Entry {
  rm::RmPolicy policy = rm::RmPolicy::Idle;
  rm::PerfModelKind model = rm::PerfModelKind::Model3;
  double qos_alpha = 0.0;
  double weighted_savings = 0.0;  ///< scenario-weighted (paper Fig. 6 bar)
  double mean_savings = 0.0;      ///< uniform mean over mixes
  double max_savings = 0.0;
  /// Uniform mean per scenario (index = scenario - 1); 0 for a scenario
  /// with no mixes in the grid.
  std::array<double, 4> scenario_mean_savings{};
  std::vector<double> per_mix_savings;  ///< grid mix order
};

/// Fig. 7: QoS-violation statistics of one configuration.
struct Fig7Entry {
  rm::RmPolicy policy = rm::RmPolicy::Idle;
  rm::PerfModelKind model = rm::PerfModelKind::Model3;
  double qos_alpha = 0.0;
  std::uint64_t intervals = 0;       ///< total over all mixes and cores
  std::uint64_t violations = 0;
  double violation_rate = 0.0;       ///< violations / intervals
  double mean_violation_rate = 0.0;  ///< uniform mean of per-mix rates
  double mean_magnitude = 0.0;       ///< mean Eq. 6 magnitude | violation
  double max_magnitude = 0.0;
  std::size_t violating_mixes = 0;   ///< mixes with >= 1 violation
};

/// Fig. 9: one online model vs the Perfect oracle under the same policy and
/// alpha (savings are scenario-weighted like fig6).
struct Fig9Entry {
  rm::RmPolicy policy = rm::RmPolicy::Idle;
  rm::PerfModelKind model = rm::PerfModelKind::Model3;  ///< never Perfect
  double qos_alpha = 0.0;
  double weighted_savings = 0.0;
  double oracle_weighted_savings = 0.0;
  double weighted_gap = 0.0;  ///< oracle - model
  double mean_gap = 0.0;
  double violation_rate = 0.0;         ///< of the online-model configuration
  double oracle_violation_rate = 0.0;  ///< of the oracle configuration
};

struct FigureReport {
  /// Sweep fingerprint of the source rows (see sweep_fingerprint). For an
  /// alpha-filtered report this is still the SOURCE sweep's fingerprint -
  /// the stamp records provenance, not the filtered sub-grid.
  std::uint64_t fingerprint = 0;
  GridShape shape{};
  std::array<double, 4> scenario_weights{};
  std::vector<std::string> workloads;           ///< mix axis, grid order
  std::vector<workload::Scenario> scenarios;    ///< per mix
  /// Configuration axes recovered from the rows (grid order).
  std::vector<rm::RmPolicy> policies;
  std::vector<rm::PerfModelKind> models;
  std::vector<double> qos_alphas;

  std::vector<Fig6Entry> fig6;  ///< grid (alpha-major) configuration order
  std::vector<Fig7Entry> fig7;
  std::vector<Fig9Entry> fig9;  ///< empty when Perfect is not a model axis
};

/// Builds the full report from rows in grid order. `rows.size()` must equal
/// `shape.size()`; aborts otherwise (callers validate their inputs first).
[[nodiscard]] FigureReport build_figure_report(
    const std::vector<SweepRow>& rows, const GridShape& shape,
    std::uint64_t fingerprint, const std::array<double, 4>& weights);

/// Restricts rows to a sub-grid of alpha values (each must appear exactly
/// in the rows' alpha axis; duplicates rejected). The returned rows keep
/// grid order with the requested alpha order; *shape gets the filtered
/// alpha count. nullopt + *error on an unknown or duplicate alpha.
[[nodiscard]] std::optional<std::vector<SweepRow>> filter_rows_to_alphas(
    std::vector<SweepRow> rows, GridShape* shape,
    const std::vector<double>& alphas, std::string* error);

/// The report as a byte-stable JSON document (fixed key order, "%.17g"
/// doubles, "\n" line ends): equal reports serialize to equal bytes.
[[nodiscard]] std::string figure_report_json(const FigureReport& report);

/// Atomic writers (tmp + rename; false + *error on I/O failure, the target
/// file keeps its previous content).
bool write_report_json(const FigureReport& report, const std::string& path,
                       std::string* error);
bool write_fig6_csv(const FigureReport& report, const std::string& path,
                    std::string* error);
bool write_fig7_csv(const FigureReport& report, const std::string& path,
                    std::string* error);
bool write_fig9_csv(const FigureReport& report, const std::string& path,
                    std::string* error);

/// Prints the fig6/fig7/fig9 aggregate tables to stdout.
void print_figure_report(const FigureReport& report);

// Version 2: admission-policy axis (grid "admissions" extent + per-row
// "admission" and "qos_rejected" fields).
inline constexpr std::uint32_t kServiceReportVersion = 2;

/// Service-mode report: one JSON object per grid row with the full streaming
/// tail-metric set (p50/p95/p99 violation, energy per app, decisions/sec,
/// occupancy). Byte-stable like figure_report_json (fixed key order, "%.17g"
/// doubles) and stamped with the service fingerprint + grid shape, so a
/// report can never be matched against foreign rows.
[[nodiscard]] std::string service_report_json(const std::vector<ServiceRow>& rows,
                                              const ServiceGridShape& shape,
                                              std::uint64_t fingerprint);

/// Atomic writer for service_report_json (tmp + rename; false + *error on
/// I/O failure, the target file keeps its previous content).
bool write_service_report_json(const std::vector<ServiceRow>& rows,
                               const ServiceGridShape& shape,
                               std::uint64_t fingerprint,
                               const std::string& path, std::string* error);

inline constexpr std::uint32_t kServiceKneeReportVersion = 1;

/// Default p99 Eq. 6 magnitude above which a load level counts as past the
/// knee (see DESIGN.md, "Knee detection over dense load sweeps").
inline constexpr double kDefaultKneeThreshold = 0.1;

/// First index whose value exceeds `threshold`, or -1 when no value does.
/// Deliberately the FIRST crossing (not the last): on a non-monotone curve
/// - queueing systems can dip after a burst-driven spike - the first
/// crossing is the conservative capacity estimate an operator wants.
[[nodiscard]] int find_knee_index(const std::vector<double>& values,
                                  double threshold);

/// One knee curve: tail-violation metrics vs load for a fixed
/// {pattern, admission, policy, alpha} service configuration.
struct KneeCurve {
  workload::ArrivalPattern pattern = workload::ArrivalPattern::Poisson;
  AdmissionPolicy admission = AdmissionPolicy::Fifo;
  rm::RmPolicy policy = rm::RmPolicy::Rm3;
  rm::PerfModelKind model = rm::PerfModelKind::Model3;
  double qos_alpha = 0.0;
  std::vector<double> loads;           ///< the grid's load axis, grid order
  std::vector<double> p99_violation;   ///< per load (the knee signal)
  std::vector<double> violation_rate;  ///< per load
  std::vector<double> occupancy;       ///< per load
  std::vector<double> rejected_frac;   ///< (rejected / arrivals) per load
  /// find_knee_index(p99_violation, threshold): first load index whose p99
  /// Eq. 6 magnitude exceeds the threshold; -1 when the whole sweep stays
  /// under it (the grid never saturates this configuration).
  int knee_index = -1;
  double knee_load = 0.0;  ///< loads[knee_index], or 0 when knee_index < 0
};

/// The aggregate service report of the dense-load sweep: one KneeCurve per
/// {pattern x admission x policy x alpha} configuration (curve order:
/// pattern-minor, then admission, then policy, alpha-major - the grid's row
/// order with the load axis folded into each curve).
struct ServiceKneeReport {
  std::uint64_t fingerprint = 0;  ///< service fingerprint of the source rows
  ServiceGridShape shape{};
  double knee_threshold = kDefaultKneeThreshold;
  std::vector<KneeCurve> curves;
};

/// Folds service rows (grid order, rows.size() == shape.size(); aborts
/// otherwise) into per-configuration knee curves.
[[nodiscard]] ServiceKneeReport build_service_knee_report(
    const std::vector<ServiceRow>& rows, const ServiceGridShape& shape,
    std::uint64_t fingerprint, double knee_threshold = kDefaultKneeThreshold);

/// The knee report as a byte-stable JSON document (fixed key order, "%.17g"
/// doubles): equal reports serialize to equal bytes.
[[nodiscard]] std::string service_knee_report_json(
    const ServiceKneeReport& report);

/// Atomic writer for service_knee_report_json.
bool write_service_knee_report_json(const ServiceKneeReport& report,
                                    const std::string& path,
                                    std::string* error);

/// Per-pattern knee-curve CSVs, "<prefix><pattern>.csv" (e.g.
/// "knee_poisson.csv"): one row per {admission, policy, alpha, load} with
/// the curve metrics and a knee marker column. Byte-stable and atomic like
/// the figure CSVs. False + *error on the first failing file.
bool write_knee_curve_csvs(const ServiceKneeReport& report,
                           const std::string& prefix, std::string* error);

/// report_main's parsed+validated command line. Kept as a library type so
/// the strict validation (unknown flags, bad --alphas lists, malformed
/// --fingerprint, missing inputs/outputs) is unit-testable without
/// spawning the binary.
struct ReportCliOptions {
  std::vector<std::string> parts;  ///< .qospart inputs, command-line order
  std::string json_path;
  std::string fig6_csv;
  std::string fig7_csv;
  std::string fig9_csv;
  std::vector<double> alphas;  ///< empty = keep the full alpha axis
  std::optional<std::uint64_t> expected_fingerprint;
  bool print = false;
};

/// Parses report_main's flags with the same strictness as sweep_main: any
/// unknown flag, malformed value, missing part input or absent output sink
/// fails with a diagnostic BEFORE any file is opened. False + *error on
/// rejection.
bool parse_report_cli(const CliArgs& args, ReportCliOptions* out,
                      std::string* error);

/// One row of a savings grid (e.g. paper Fig. 6): a workload with the
/// savings of several RM variants side by side.
struct SavingsGridRow {
  std::string workload;
  workload::Scenario scenario = workload::Scenario::One;
  std::vector<double> savings;  ///< one per variant, aligned with headers
};

/// Renders a Fig. 6/9-style grid. `variant_names` label the savings columns.
[[nodiscard]] AsciiTable savings_grid(const std::vector<SavingsGridRow>& rows,
                                      const std::vector<std::string>& variant_names);

/// Renders the Fig. 7 summary for a set of QoS-evaluation results.
[[nodiscard]] AsciiTable qos_summary(const std::vector<QosEvalResult>& results);

/// Renders the Fig. 8 histogram block (counts normalized to the global max).
[[nodiscard]] std::string qos_histograms(const std::vector<QosEvalResult>& results);

/// Human-readable scenario label ("Scenario 1" ...).
[[nodiscard]] std::string scenario_label(workload::Scenario s);

}  // namespace qosrm::rmsim

#endif  // QOSRM_RMSIM_REPORT_HH
