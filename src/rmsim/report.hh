// Report formatting shared by bench binaries: paper-style ASCII tables for
// energy savings grids and QoS evaluations.
#ifndef QOSRM_RMSIM_REPORT_HH
#define QOSRM_RMSIM_REPORT_HH

#include <string>
#include <vector>

#include "common/table.hh"
#include "rmsim/interval_sim.hh"
#include "rmsim/qos_eval.hh"

namespace qosrm::rmsim {

/// One row of a savings grid (e.g. paper Fig. 6): a workload with the
/// savings of several RM variants side by side.
struct SavingsGridRow {
  std::string workload;
  workload::Scenario scenario = workload::Scenario::One;
  std::vector<double> savings;  ///< one per variant, aligned with headers
};

/// Renders a Fig. 6/9-style grid. `variant_names` label the savings columns.
[[nodiscard]] AsciiTable savings_grid(const std::vector<SavingsGridRow>& rows,
                                      const std::vector<std::string>& variant_names);

/// Renders the Fig. 7 summary for a set of QoS-evaluation results.
[[nodiscard]] AsciiTable qos_summary(const std::vector<QosEvalResult>& results);

/// Renders the Fig. 8 histogram block (counts normalized to the global max).
[[nodiscard]] std::string qos_histograms(const std::vector<QosEvalResult>& results);

/// Human-readable scenario label ("Scenario 1" ...).
[[nodiscard]] std::string scenario_label(workload::Scenario s);

}  // namespace qosrm::rmsim

#endif  // QOSRM_RMSIM_REPORT_HH
