#include "rmsim/sweep.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <thread>

#include "common/check.hh"
#include "common/csv.hh"
#include "common/str.hh"
#include "common/thread_pool.hh"

namespace qosrm::rmsim {

SweepRunner::SweepRunner(const workload::SimDb& db, const SweepOptions& options)
    : db_(&db), opt_(options) {}

std::vector<SweepRow> SweepRunner::run_range(const SweepGrid& grid,
                                             std::size_t begin, std::size_t end,
                                             std::size_t* idle_computations) {
  QOSRM_CHECK_MSG(!grid.mixes.empty(), "sweep grid has no workload mixes");
  QOSRM_CHECK_MSG(!grid.policies.empty(), "sweep grid has no policies");
  QOSRM_CHECK_MSG(!grid.models.empty(), "sweep grid has no perf models");
  QOSRM_CHECK_MSG(!grid.qos_alphas.empty(), "sweep grid has no qos alphas");
  QOSRM_CHECK_MSG(begin <= end && end <= grid.size(),
                  "sweep row range out of bounds");

  // One runner per qos_alpha (the alpha lives in the simulator options);
  // each runner's compute-once cache is shared by every worker thread, so
  // idle references are simulated once per (mix, alpha).
  std::vector<std::unique_ptr<ExperimentRunner>> runners;
  runners.reserve(grid.qos_alphas.size());
  for (const double alpha : grid.qos_alphas) {
    SimOptions sim = opt_.sim;
    sim.qos_alpha_override = alpha;
    runners.push_back(std::make_unique<ExperimentRunner>(*db_, sim));
  }

  const std::size_t n_mix = grid.mixes.size();
  const std::size_t n_pol = grid.policies.size();
  const std::size_t n_mod = grid.models.size();

  std::vector<SweepRow> rows(end - begin);

  // Row index decomposes mix-minor / alpha-major; every task writes its own
  // slot, so the result vector is identical for any thread count (and any
  // [begin, end) slicing across worker processes).
  const auto run_point = [&](std::size_t offset) {
    const std::size_t idx = begin + offset;
    std::size_t rest = idx;
    const std::size_t mi = rest % n_mix;
    rest /= n_mix;
    const std::size_t pi = rest % n_pol;
    rest /= n_pol;
    const std::size_t ki = rest % n_mod;
    const std::size_t ai = rest / n_mod;

    const workload::WorkloadMix& mix = grid.mixes[mi];
    SweepRow& row = rows[offset];
    row.workload = mix.name;
    row.scenario = mix.scenario;
    row.policy = grid.policies[pi];
    row.model = grid.models[ki];
    row.qos_alpha = grid.qos_alphas[ai];

    rm::RmConfig config;
    config.policy = row.policy;
    config.model = row.model;
    // The Perfect axis is the paper's Fig. 9 oracle: exact time prediction
    // paired with ground-truth energy (same pairing as bench_fig9). Leaving
    // the energy model online would mislabel "Perfect" rows as a half-oracle.
    config.energy.perfect = row.model == rm::PerfModelKind::Perfect;
    // Per-thread simulation scratch: worker threads run many rows, so the
    // per-run warmup buffers (core state, counter snapshots) are reused for
    // the thread's whole lifetime. Results are independent of the reuse.
    thread_local RunScratch scratch;
    row.result = runners[ai]->run(mix, config, &scratch);
  };

  std::size_t threads = opt_.threads <= 0
                            ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
                            : static_cast<std::size_t>(opt_.threads);
  if (threads <= 1) {
    for (std::size_t i = 0; i < rows.size(); ++i) run_point(i);
  } else {
    ThreadPool pool(threads - 1);  // pool workers + the calling thread
    parallel_for(pool, 0, rows.size(), run_point);
  }

  if (idle_computations != nullptr) {
    *idle_computations = 0;
    for (const auto& runner : runners) {
      *idle_computations += runner->idle_computations();
    }
  }
  return rows;
}

SweepResult SweepRunner::run(const SweepGrid& grid) {
  SweepResult out;
  out.rows = run_range(grid, 0, grid.size(), &out.idle_computations);
  out.aggregates = compute_aggregates(out.rows, grid.shape(),
                                      scenario_weights(db_->suite()));
  return out;
}

std::vector<SweepAggregate> compute_aggregates(
    const std::vector<SweepRow>& rows, const GridShape& shape,
    const std::array<double, 4>& weights) {
  QOSRM_CHECK_MSG(rows.size() == shape.size(),
                  "aggregate row count does not match the grid shape");
  const std::size_t n_mix = shape.mixes;
  const std::size_t n_pol = shape.policies;
  const std::size_t n_mod = shape.models;

  // Aggregates, in row (alpha-major) order. Labels come from the first row
  // of each (policy, model, alpha) block, so no grid is needed.
  std::vector<SweepAggregate> aggregates;
  aggregates.reserve(n_pol * n_mod * shape.alphas);
  std::vector<workload::Scenario> scenarios;
  std::vector<double> savings;
  scenarios.reserve(n_mix);
  savings.reserve(n_mix);
  for (std::size_t ai = 0; ai < shape.alphas; ++ai) {
    for (std::size_t ki = 0; ki < n_mod; ++ki) {
      for (std::size_t pi = 0; pi < n_pol; ++pi) {
        scenarios.clear();
        savings.clear();
        double violation_sum = 0.0;
        for (std::size_t mi = 0; mi < n_mix; ++mi) {
          const std::size_t idx = mi + n_mix * (pi + n_pol * (ki + n_mod * ai));
          const SweepRow& row = rows[idx];
          scenarios.push_back(row.scenario);
          savings.push_back(row.result.savings);
          violation_sum += row.result.run.violation_rate();
        }
        const std::size_t block = n_mix * (pi + n_pol * (ki + n_mod * ai));
        SweepAggregate agg;
        agg.policy = rows[block].policy;
        agg.model = rows[block].model;
        agg.qos_alpha = rows[block].qos_alpha;
        agg.weighted_savings = weighted_average_savings(scenarios, savings, weights);
        double sum = 0.0;
        for (const double s : savings) sum += s;
        agg.mean_savings = sum / static_cast<double>(n_mix);
        agg.mean_violation_rate = violation_sum / static_cast<double>(n_mix);
        aggregates.push_back(agg);
      }
    }
  }
  return aggregates;
}

namespace {

/// Full-precision double formatting so equal results yield byte-identical
/// CSV files.
std::string fmt(double v) { return format("%.17g", v); }

}  // namespace

void write_rows_csv(const SweepResult& result, const std::string& path) {
  CsvWriter csv(path,
                {"workload", "scenario", "policy", "model", "qos_alpha",
                 "savings", "total_energy_j", "uncore_energy_j", "wall_time_s",
                 "intervals", "violations", "violation_rate", "rm_invocations",
                 "rm_ops"});
  for (const SweepRow& row : result.rows) {
    const RunResult& run = row.result.run;
    csv.add_row({row.workload, std::to_string(static_cast<int>(row.scenario)),
                 rm::rm_policy_name(row.policy), rm::perf_model_name(row.model),
                 fmt(row.qos_alpha), fmt(row.result.savings),
                 fmt(run.total_energy_j()), fmt(run.uncore_energy_j),
                 fmt(run.wall_time_s), std::to_string(run.total_intervals()),
                 std::to_string(run.total_violations()),
                 fmt(run.violation_rate()), std::to_string(run.rm_invocations),
                 std::to_string(run.rm_ops)});
  }
  csv.close();  // atomic commit; throws instead of publishing a partial file
}

void write_aggregates_csv(const SweepResult& result, const std::string& path) {
  CsvWriter csv(path, {"policy", "model", "qos_alpha", "weighted_savings",
                       "mean_savings", "mean_violation_rate"});
  for (const SweepAggregate& agg : result.aggregates) {
    csv.add_row({rm::rm_policy_name(agg.policy), rm::perf_model_name(agg.model),
                 fmt(agg.qos_alpha), fmt(agg.weighted_savings),
                 fmt(agg.mean_savings), fmt(agg.mean_violation_rate)});
  }
  csv.close();  // atomic commit; throws instead of publishing a partial file
}

std::vector<rm::RmPolicy> parse_policies(const std::string& spec) {
  std::vector<rm::RmPolicy> out;
  for (const std::string& name : split_csv_list(spec)) {
    QOSRM_CHECK_MSG(!name.empty(),
                    "empty --policies entry (an empty list or stray comma "
                    "would silently sweep a zero-row or shortened grid)");
    if (name == "idle") {
      out.push_back(rm::RmPolicy::Idle);
    } else if (name == "rm1") {
      out.push_back(rm::RmPolicy::Rm1);
    } else if (name == "rm2") {
      out.push_back(rm::RmPolicy::Rm2);
    } else if (name == "rm3") {
      out.push_back(rm::RmPolicy::Rm3);
    } else if (name == "ucp") {
      out.push_back(rm::RmPolicy::Ucp);
    } else if (name == "fcp") {
      out.push_back(rm::RmPolicy::Fcp);
    } else if (name == "classpart") {
      out.push_back(rm::RmPolicy::ClassPart);
    } else {
      QOSRM_CHECK_MSG(
          false, "unknown policy (want idle|rm1|rm2|rm3|ucp|fcp|classpart)");
    }
  }
  return out;
}

std::vector<rm::PerfModelKind> parse_models(const std::string& spec) {
  std::vector<rm::PerfModelKind> out;
  for (const std::string& name : split_csv_list(spec)) {
    QOSRM_CHECK_MSG(!name.empty(),
                    "empty --models entry (an empty list or stray comma "
                    "would silently sweep a zero-row or shortened grid)");
    if (name == "model1" || name == "m1") {
      out.push_back(rm::PerfModelKind::Model1);
    } else if (name == "model2" || name == "m2") {
      out.push_back(rm::PerfModelKind::Model2);
    } else if (name == "model3" || name == "m3") {
      out.push_back(rm::PerfModelKind::Model3);
    } else if (name == "perfect") {
      out.push_back(rm::PerfModelKind::Perfect);
    } else {
      QOSRM_CHECK_MSG(false, "unknown model (want model1|model2|model3|perfect)");
    }
  }
  return out;
}

std::vector<double> parse_alphas(const std::string& spec) {
  std::vector<double> out;
  std::string error;
  const bool ok = try_parse_alphas(spec, &out, &error);
  // Surface try_parse_alphas's specific diagnostic (empty entry vs malformed
  // value), not a generic one.
  QOSRM_CHECK_MSG(ok, error.c_str());
  return out;
}

bool try_parse_alphas(const std::string& spec, std::vector<double>* out,
                      std::string* error) {
  out->clear();
  for (const std::string& part : split_csv_list(spec)) {
    if (part.empty()) {
      if (error != nullptr) {
        *error = "empty --alphas entry (an empty list or stray comma would "
                 "silently sweep a zero-row or shortened grid)";
      }
      return false;
    }
    char* end = nullptr;
    const double value = std::strtod(part.c_str(), &end);
    if (end == part.c_str() || *end != '\0') {
      if (error != nullptr) {
        *error = format("bad --alphas entry '%s' (want comma-separated "
                        "numbers)",
                        part.c_str());
      }
      return false;
    }
    // 0 selects the system default; anything else must be a usable
    // relaxation factor (negative/NaN would silently fall back to the
    // default while mislabeling every CSV row).
    if (!(std::isfinite(value) && value >= 0.0)) {
      if (error != nullptr) {
        *error = format("bad --alphas entry '%s' (want 0 or a positive "
                        "factor)",
                        part.c_str());
      }
      return false;
    }
    out->push_back(value);
  }
  return true;
}

}  // namespace qosrm::rmsim
