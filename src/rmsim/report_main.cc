// report_main - turns sweep part files into versioned, byte-stable figure
// reports (paper Fig. 6 energy savings, Fig. 7 QoS violations, Fig. 9
// model-vs-oracle deltas).
//
//   report_main --json=paper_report.json [--fig6-csv=... --fig7-csv=...
//       --fig9-csv=...] rows.csv.0-of-4.qospart rows.csv.1-of-4.qospart ...
//
// The parts must form exactly one complete sweep (same validation as
// sweep_merge: fingerprint, shape, shard coverage, checksums). The report
// embeds that sweep fingerprint, and --fingerprint=HEX additionally pins
// the expected identity up front - a part from a different sweep is
// rejected before any report work. --alphas=LIST restricts the report to a
// sub-grid of the sweep's alpha axis (each value must be present). Output
// files are byte-stable (equal rows -> equal bytes, regardless of the
// thread or shard count that produced the parts) and written atomically.
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "rmsim/report.hh"
#include "rmsim/shard.hh"
#include "rmsim/sweep.hh"
#include "workload/spec_suite.hh"

namespace {

void print_usage() {
  std::puts(
      "report_main: build Fig. 6/7/9 figure reports from sweep part files\n"
      "  usage: report_main [flags] PART.qospart...\n"
      "  --json=PATH        full figure report as byte-stable JSON\n"
      "  --fig6-csv=PATH    Fig. 6 savings aggregates as CSV\n"
      "  --fig7-csv=PATH    Fig. 7 violation statistics as CSV\n"
      "  --fig9-csv=PATH    Fig. 9 model-vs-oracle deltas as CSV (needs the\n"
      "                     'perfect' model on the sweep's model axis)\n"
      "  --alphas=LIST      restrict the report to these qos alphas (each\n"
      "                     must be on the sweep's alpha axis)\n"
      "  --fingerprint=HEX  require the parts to carry exactly this sweep\n"
      "                     fingerprint (as printed by sweep_merge --list)\n"
      "  --print            print the aggregate tables to stdout\n"
      "at least one of --json/--fig6-csv/--fig7-csv/--fig9-csv/--print is\n"
      "required; a part from a different sweep, a corrupt part or an alpha\n"
      "missing from the grid is a hard error, never a partial report");
}

}  // namespace

int main(int argc, char** argv) {
  namespace rmsim = qosrm::rmsim;
  const qosrm::CliArgs args(argc, argv, {"help", "print"});
  if (args.has("help")) {
    print_usage();
    return 0;
  }

  // Strict validation before any file is opened: a typo'd flag or malformed
  // value must fail loudly, never produce a default-shaped report labeled
  // as if the request had been honored.
  rmsim::ReportCliOptions options;
  std::string error;
  if (!rmsim::parse_report_cli(args, &options, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  // Load + merge. merge_part_files checks --fingerprint per part as it
  // loads, so a foreign part aborts the run before the merge or any report
  // computation happens.
  rmsim::SweepIdentity identity;
  const std::uint64_t* expected =
      options.expected_fingerprint.has_value()
          ? &*options.expected_fingerprint
          : nullptr;
  std::optional<rmsim::SweepResult> merged = rmsim::merge_part_files(
      options.parts, expected, &error, &identity);
  if (!merged.has_value()) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  rmsim::GridShape shape = identity.shape;
  std::optional<std::vector<rmsim::SweepRow>> rows = rmsim::filter_rows_to_alphas(
      std::move(merged->rows), &shape, options.alphas, &error);
  if (!rows.has_value()) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  const rmsim::FigureReport report = rmsim::build_figure_report(
      *rows, shape, identity.fingerprint,
      rmsim::scenario_weights(qosrm::workload::spec_suite()));

  if (!options.fig9_csv.empty() && report.fig9.empty()) {
    std::fprintf(stderr,
                 "--fig9-csv: the sweep's model axis has no 'perfect' oracle "
                 "(run sweep_main with --models=...,perfect)\n");
    return 1;
  }

  const auto write = [&error](bool ok) {
    if (!ok) std::fprintf(stderr, "%s\n", error.c_str());
    return ok;
  };
  if (!options.json_path.empty()) {
    if (!write(rmsim::write_report_json(report, options.json_path, &error))) {
      return 1;
    }
    std::printf("wrote figure report to %s\n", options.json_path.c_str());
  }
  if (!options.fig6_csv.empty()) {
    if (!write(rmsim::write_fig6_csv(report, options.fig6_csv, &error))) return 1;
    std::printf("wrote %zu Fig. 6 aggregates to %s\n", report.fig6.size(),
                options.fig6_csv.c_str());
  }
  if (!options.fig7_csv.empty()) {
    if (!write(rmsim::write_fig7_csv(report, options.fig7_csv, &error))) return 1;
    std::printf("wrote %zu Fig. 7 aggregates to %s\n", report.fig7.size(),
                options.fig7_csv.c_str());
  }
  if (!options.fig9_csv.empty()) {
    if (!write(rmsim::write_fig9_csv(report, options.fig9_csv, &error))) return 1;
    std::printf("wrote %zu Fig. 9 deltas to %s\n", report.fig9.size(),
                options.fig9_csv.c_str());
  }
  if (options.print) rmsim::print_figure_report(report);
  return 0;
}
