// Builds the hardware-counter snapshot a core would hand to the RM after
// executing one interval of a given phase at a given setting, from the
// simulation database (the "HW perf. counters" + ATD boxes of paper Fig. 3).
#ifndef QOSRM_RMSIM_SNAPSHOT_HH
#define QOSRM_RMSIM_SNAPSHOT_HH

#include "rm/counters.hh"
#include "workload/sim_db.hh"

namespace qosrm::rmsim {

/// Snapshot of (app, phase) executed at `current`. If `oracle_phase` >= 0 the
/// oracle block is filled with (db, app, oracle_phase) so the perfect model
/// can look up the upcoming interval (paper Fig. 9).
[[nodiscard]] rm::CounterSnapshot make_snapshot(const workload::SimDb& db, int app,
                                                int phase,
                                                const workload::Setting& current,
                                                int oracle_phase = -1);

/// Allocation-free variant: overwrites every field of `out`, reusing its ATD
/// vector storage. The interval simulator owns one snapshot per core and
/// refreshes it through this at every boundary, so the steady state copies
/// counter values without touching the heap.
void make_snapshot_into(const workload::SimDb& db, int app, int phase,
                        const workload::Setting& current, int oracle_phase,
                        rm::CounterSnapshot& out);

}  // namespace qosrm::rmsim

#endif  // QOSRM_RMSIM_SNAPSHOT_HH
