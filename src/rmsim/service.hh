// Colocation-service mode: an open-loop arrival engine over the interval
// simulator's machinery.
//
// Where the sweep subsystem (rmsim/sweep.hh) runs fixed multiprogrammed
// mixes to completion, the service engine draws a seeded arrival trace
// (workload/arrival_gen.hh) and plays it against a pool of cores: each
// arriving application is admitted to a free core (or queued, or rejected
// when the queue is full), executes a bounded number of trace intervals,
// and departs. The resource manager is re-invoked at every admission,
// departure and interval boundary through the partial-occupancy
// ResourceManager::invoke overload, so partially filled machines
// redistribute LLC ways/VF/core size exactly like the paper's fully loaded
// ones.
//
// Metrics are streamed (common/histogram + RunningStats): per run the
// engine reports tail QoS-violation magnitudes (p50/p95/p99), energy per
// served application, RM decisions per simulated second and pool occupancy.
// The {arrival pattern x load x admission x policy x alpha} grid mirrors the
// sweep's fixed row order, so sharded service runs merge byte-identically
// (rmsim/shard.hh).
//
// Everything is deterministic from the seed: one Rng stream per grid point
// (derived from the base seed and the point's pattern/load, so all policies
// at one (pattern, load) face the SAME arrival trace), no wall-clock, no
// platform-dependent distributions. The steady-state event loop is
// allocation-free (bench/bench_service.cc pins this).
#ifndef QOSRM_RMSIM_SERVICE_HH
#define QOSRM_RMSIM_SERVICE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rmsim/interval_sim.hh"
#include "workload/arrival_gen.hh"

namespace qosrm::rmsim {

/// Admission policy of the service engine - how arrivals that find every
/// core busy are queued, reordered or rejected (see DESIGN.md, "Admission
/// policies and the QoS-aware rejection predicate"):
///
///   Fifo     - arrivals queue in arrival order; only a full queue rejects.
///   Sdf      - smallest-demand-first: the queue releases the entry with the
///              fewest requested intervals (ties: earliest arrival), a
///              shortest-job-first discipline over the declared demand.
///   QosAware - consults the per-app LFOC-style partitioning taxonomy
///              (workload::PartClass) and current pool pressure: a cache-
///              SENSITIVE arrival is rejected outright when the way budget,
///              divided over the sensitive applications already resident or
///              queued, would leave it below the -50% MPKI probe point (the
///              allocation at which its own miss curve predicts an Eq. 6
///              magnitude beyond the alpha-relaxation); the queue releases
///              light apps first, then streaming, then sensitive (ties:
///              smallest demand, then earliest arrival).
///
/// The admission policy NEVER changes the arrival trace: all admission
/// cells of one (pattern, load) grid point face byte-identical arrivals.
enum class AdmissionPolicy : int { Fifo = 0, Sdf = 1, QosAware = 2 };

inline constexpr int kNumAdmissionPolicies = 3;

/// Short stable name ("fifo", "sdf", "qos-aware"); used in CSV/JSON output
/// and accepted by parse_admissions.
[[nodiscard]] const char* admission_policy_name(AdmissionPolicy policy) noexcept;

/// Parses a comma-separated admission-policy list, e.g. "fifo,qos-aware".
/// Aborts on unknown names, empty lists and empty entries (a stray comma
/// would otherwise silently shrink the service grid), like parse_policies.
[[nodiscard]] std::vector<AdmissionPolicy> parse_admissions(
    const std::string& spec);

/// Fixed (per run) service parameters; the swept axes live in ServiceGrid.
struct ServiceConfig {
  std::size_t arrivals = 5000;  ///< arrivals per grid point
  std::uint64_t seed = 2020;
  rm::PerfModelKind model = rm::PerfModelKind::Model3;
  int demand_min = 40;   ///< per-app demand in intervals, inclusive
  int demand_max = 160;  ///< >= demand_min
  /// Arrivals finding every core busy wait here; one more arrival is
  /// rejected (counted, not simulated). Must be >= 1.
  std::size_t queue_capacity = 4096;
  SimOptions sim{};  ///< qos_alpha_override is replaced per grid point
  /// Violation-magnitude histogram layout (quantiles interpolate within
  /// bins, so the bin count bounds the quantile resolution).
  double hist_max_violation = 2.0;
  std::size_t hist_bins = 4096;
};

/// One grid point of the service sweep.
struct ServicePoint {
  workload::ArrivalPattern pattern = workload::ArrivalPattern::Poisson;
  double load = 0.8;
  AdmissionPolicy admission = AdmissionPolicy::Fifo;
  rm::RmPolicy policy = rm::RmPolicy::Rm3;
  double qos_alpha = 0.0;  ///< 0 keeps the database system's qos_alpha
};

/// Axis extents of an expanded service grid (row order: pattern-minor, then
/// load, then admission, then policy, alpha-major) - the service analogue of
/// GridShape.
struct ServiceGridShape {
  std::size_t patterns = 0;
  std::size_t loads = 0;
  std::size_t admissions = 0;
  std::size_t policies = 0;
  std::size_t alphas = 0;

  [[nodiscard]] std::size_t size() const noexcept {
    return patterns * loads * admissions * policies * alphas;
  }
  bool operator==(const ServiceGridShape&) const = default;
};

/// The grid to expand; every (alpha, policy, admission, load, pattern)
/// combination is one service run.
struct ServiceGrid {
  std::vector<workload::ArrivalPattern> patterns = {
      workload::ArrivalPattern::Poisson};
  std::vector<double> loads = {0.8};
  std::vector<AdmissionPolicy> admissions = {AdmissionPolicy::Fifo};
  std::vector<rm::RmPolicy> policies = {rm::RmPolicy::Rm3};
  std::vector<double> qos_alphas = {0.0};

  [[nodiscard]] ServiceGridShape shape() const noexcept {
    return {patterns.size(), loads.size(), admissions.size(), policies.size(),
            qos_alphas.size()};
  }
  [[nodiscard]] std::size_t size() const noexcept { return shape().size(); }

  /// Decomposes flat row index `idx` (pattern-minor, alpha-major).
  [[nodiscard]] ServicePoint point(std::size_t idx) const;
};

/// Streaming tail metrics of one service run.
struct ServiceMetrics {
  std::uint64_t arrivals = 0;
  std::uint64_t served = 0;    ///< applications that ran to completion
  std::uint64_t rejected = 0;  ///< arrivals dropped (queue-full + QoS-aware)
  /// Of `rejected`: arrivals the qos-aware admission policy turned away
  /// because the rejection predicate (see AdmissionPolicy) flagged them as
  /// predicted to blow the alpha-relaxed target. Always 0 for fifo/sdf.
  std::uint64_t qos_rejected = 0;
  std::uint64_t intervals = 0;
  std::uint64_t violations = 0;
  double violation_rate = 0.0;   ///< violations / intervals
  double p50_violation = 0.0;    ///< quantiles of Eq. 6 magnitudes over
  double p95_violation = 0.0;    ///< VIOLATING intervals (0 when none)
  double p99_violation = 0.0;
  double max_violation = 0.0;
  double mean_violation = 0.0;
  double energy_total_j = 0.0;   ///< core+memory+uncore over the whole run
  double uncore_energy_j = 0.0;
  double energy_per_app_j = 0.0; ///< mean core+memory energy per served app
  std::uint64_t rm_invocations = 0;
  std::uint64_t rm_ops = 0;
  double decisions_per_sec = 0.0;  ///< rm_invocations / simulated wall time
  double occupancy = 0.0;          ///< busy core-seconds / (cores * wall)
  double mean_wait_s = 0.0;        ///< queueing delay of admitted apps
  double wall_time_s = 0.0;
};

struct ServiceRow {
  workload::ArrivalPattern pattern = workload::ArrivalPattern::Poisson;
  double load = 0.8;
  AdmissionPolicy admission = AdmissionPolicy::Fifo;
  rm::RmPolicy policy = rm::RmPolicy::Rm3;
  rm::PerfModelKind model = rm::PerfModelKind::Model3;
  double qos_alpha = 0.0;
  ServiceMetrics metrics;
};

struct ServiceResult {
  std::vector<ServiceRow> rows;  ///< grid order, thread-count independent
};

/// Mean baseline interval time over every application and phase-sequence
/// entry of the database - the per-interval service-time scale the arrival
/// generator's load calibration divides by.
[[nodiscard]] double mean_baseline_interval_s(const workload::SimDb& db);

/// One grid point's open-loop engine. Construction synthesizes the arrival
/// trace and builds the resource manager; reset() + step() replay it without
/// touching the heap (the bench pins 0 allocations per steady-state event).
class ServiceEngine {
 public:
  ServiceEngine(const workload::SimDb& db, const ServiceConfig& config,
                const ServicePoint& point);
  ~ServiceEngine();
  ServiceEngine(ServiceEngine&&) noexcept;
  ServiceEngine& operator=(ServiceEngine&&) noexcept;

  /// Rewinds to time zero (same trace, cleared metrics and core states).
  /// Allocation-free once the first pass has grown every buffer.
  void reset();

  /// Processes the next event (arrival, interval completion or departure).
  /// Returns false once the trace is exhausted and every core has drained.
  bool step();

  /// Runs reset() + step() to completion and returns the metrics.
  [[nodiscard]] ServiceMetrics run();

  /// Metrics accumulated so far (final once step() returned false).
  [[nodiscard]] ServiceMetrics metrics() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

struct ServiceOptions {
  int threads = 0;  ///< 0 = hardware concurrency
};

/// Executes rows [begin, end) of the expanded grid in grid row order - the
/// shard-worker primitive. Rows land at fixed slots, so the result is
/// bit-identical for any thread count and any [begin, end) slicing.
[[nodiscard]] std::vector<ServiceRow> run_service_range(
    const workload::SimDb& db, const ServiceGrid& grid,
    const ServiceConfig& config, std::size_t begin, std::size_t end,
    const ServiceOptions& options = {});

/// Expands and executes the whole grid.
[[nodiscard]] ServiceResult run_service(const workload::SimDb& db,
                                        const ServiceGrid& grid,
                                        const ServiceConfig& config,
                                        const ServiceOptions& options = {});

/// Identity of one service sweep: hashes the database fingerprint, every
/// grid axis and every ServiceConfig field. Two processes agree on this iff
/// they produce bit-identical rows for equal row indices.
[[nodiscard]] std::uint64_t service_fingerprint(const ServiceGrid& grid,
                                                const ServiceConfig& config,
                                                std::uint64_t db_fingerprint);

/// One CSV row per grid point (stable columns and %.17g formatting, so equal
/// results produce byte-identical files; atomic tmp+rename commit).
void write_service_csv(const std::vector<ServiceRow>& rows,
                       const std::string& path);

/// Parses comma-separated load levels ("0.5,0.8,1.1"): finite, > 0. Aborts
/// on malformed values, empty lists and empty entries, like parse_alphas.
[[nodiscard]] std::vector<double> parse_loads(const std::string& spec);

}  // namespace qosrm::rmsim

#endif  // QOSRM_RMSIM_SERVICE_HH
