// The multi-core RM simulator (paper Fig. 5 and Section IV-A/IV-D.1).
//
// Each core executes its application interval by interval; per-interval time
// and energy come from the simulation database at the core's current
// setting. The simulator advances to the next global event (the earliest
// interval completion), invokes the RM on that core, applies the decided
// system setting and charges the RM-execution and enforcement overheads.
//
// End-of-run rule (paper IV-D.1): every application restarts until it has
// executed at least the instruction count of the LONGEST application in the
// workload. Per-application core+memory energy is counted up to that bound;
// uncore energy accrues until the last core finishes.
#ifndef QOSRM_RMSIM_INTERVAL_SIM_HH
#define QOSRM_RMSIM_INTERVAL_SIM_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "rm/overheads.hh"
#include "rm/resource_manager.hh"
#include "workload/sim_db.hh"
#include "workload/workload_gen.hh"

namespace qosrm::rmsim {

struct SimOptions {
  bool model_overheads = true;  ///< RM execution + DVFS/resize enforcement
  rm::OverheadParams overheads{};
  /// Tolerance on the actual-vs-baseline QoS comparison (absorbs the
  /// sub-interval enforcement costs - DVFS switches, RM execution - that
  /// even an oracle RM cannot avoid; those are ~0.1% of an interval).
  double qos_epsilon = 2e-3;
  /// QoS relaxation override: when > 0, replaces the database system's
  /// qos_alpha for both the RM's Eq. 3 check and the violation accounting
  /// (paper Section III-C: "the alpha parameter can be used to relax the
  /// QoS constraint"; the paper fixes it to 1).
  double qos_alpha_override = 0.0;
};

/// Per-core outcome of one run.
struct CoreResult {
  int app = -1;
  double counted_energy_j = 0.0;  ///< core+memory energy up to the bound
  double executed_instructions = 0.0;
  double finish_time_s = 0.0;
  std::uint64_t intervals = 0;
  std::uint64_t qos_violations = 0;
  double violation_sum = 0.0;  ///< sum of Eq. 6 magnitudes
  double violation_max = 0.0;
};

struct RunResult {
  std::string workload;
  workload::Scenario scenario = workload::Scenario::One;
  rm::RmPolicy policy = rm::RmPolicy::Idle;
  rm::PerfModelKind model = rm::PerfModelKind::Model3;

  std::vector<CoreResult> cores;
  double uncore_energy_j = 0.0;
  double wall_time_s = 0.0;
  std::uint64_t rm_invocations = 0;
  std::uint64_t rm_ops = 0;

  [[nodiscard]] double total_energy_j() const noexcept;
  [[nodiscard]] std::uint64_t total_intervals() const noexcept;
  [[nodiscard]] std::uint64_t total_violations() const noexcept;
  [[nodiscard]] double violation_rate() const noexcept;
};

/// Observation hook: called after every completed interval with the core id,
/// the setting it ran at, and the interval's time/energy.
struct IntervalObservation {
  int core = 0;
  int app = 0;
  int phase = 0;
  workload::Setting setting{};
  double start_s = 0.0;
  double duration_s = 0.0;
  double energy_j = 0.0;
};
using IntervalObserver = std::function<void(const IntervalObservation&)>;

/// Reusable cross-run scratch for IntervalSimulator::run(): per-core state
/// and counter-snapshot buffers survive between runs, so a worker thread
/// executing many sweep rows pays the warmup allocations once instead of
/// once per row. Opaque and NOT thread-safe - keep one scratch per thread.
class RunScratch {
 public:
  RunScratch();
  ~RunScratch();
  RunScratch(RunScratch&&) noexcept;
  RunScratch& operator=(RunScratch&&) noexcept;

 private:
  friend class IntervalSimulator;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

class IntervalSimulator {
 public:
  IntervalSimulator(const workload::SimDb& db, const SimOptions& options = {});

  /// Runs `mix` under the given RM configuration. `scratch` (optional) makes
  /// repeated runs reuse per-core buffers; results are identical either way.
  [[nodiscard]] RunResult run(const workload::WorkloadMix& mix,
                              const rm::RmConfig& rm_config,
                              const IntervalObserver& observer = {},
                              RunScratch* scratch = nullptr) const;

  [[nodiscard]] const SimOptions& options() const noexcept { return opt_; }

 private:
  const workload::SimDb* db_;
  SimOptions opt_;
};

/// Energy saving of `run` relative to the idle-RM reference:
/// 1 - E_run / E_idle.
[[nodiscard]] double energy_savings(const RunResult& run, const RunResult& idle);

}  // namespace qosrm::rmsim

#endif  // QOSRM_RMSIM_INTERVAL_SIM_HH
