// Sharded sweep execution: deterministic grid partitioning plus the
// self-describing part files that shard workers exchange with the merger.
//
// A big {policy x model x alpha} x workload grid is split into N disjoint,
// gapless, contiguous row ranges (pure arithmetic - every process computes
// the same partition independently). Each worker runs its range and writes
// a part file; the merger validates that the parts belong to the SAME sweep
// (fingerprint), cover the grid exactly once, and pass their checksums, then
// reassembles rows in grid order - so the merged CSV is byte-identical to a
// single-process run.
//
// Part file layout (native-endian, see common/binary_io.hh):
//
//   u64 magic "QOSRMPT\0" | u32 version | u32 byte-order mark
//   u64 sweep fingerprint (db fingerprint + grid + sim options)
//   u64 grid shape (mixes, policies, models, alphas)
//   u64 shard index | u64 shard count | u64 row begin | u64 row end
//   payload: one serialized SweepRow per grid row in [begin, end)
//   u64 trailing FNV-1a checksum of everything above
//
// The fingerprint covers everything that determines row values: the
// simulation database identity (suite, SystemConfig, PhaseStatsOptions),
// the expanded workload mixes, the policy/model/alpha axes and the
// simulator options. Parts from a different sweep are REJECTED, never
// silently merged; a truncated or bit-flipped part fails its checksum.
#ifndef QOSRM_RMSIM_SHARD_HH
#define QOSRM_RMSIM_SHARD_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rmsim/service.hh"
#include "rmsim/sweep.hh"

namespace qosrm::rmsim {

inline constexpr std::uint32_t kSweepPartVersion = 1;

/// Conventional part-file extension (gitignored, like *.qosdb).
inline constexpr const char* kSweepPartExtension = ".qospart";

/// Half-open row range [begin, end) of the expanded grid.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
  bool operator==(const ShardRange&) const = default;
};

/// The range shard `index` of `count` owns: contiguous, and over all
/// indices disjoint, gapless and ordered. The first `total_rows % count`
/// shards take one extra row, so sizes differ by at most one. Pure
/// arithmetic: every process computes the identical partition.
[[nodiscard]] ShardRange shard_range(std::size_t total_rows, std::size_t index,
                                     std::size_t count);

/// All `count` ranges in shard order (shard_range for each index).
[[nodiscard]] std::vector<ShardRange> shard_ranges(std::size_t total_rows,
                                                   std::size_t count);

/// Identity of one sweep: hashes the simulation-database fingerprint (see
/// workload::simdb_fingerprint), the expanded mixes, the policy/model/alpha
/// axes and every SimOptions field. Two processes agree on this value iff
/// they would produce bit-identical rows for equal row indices.
[[nodiscard]] std::uint64_t sweep_fingerprint(const SweepGrid& grid,
                                              const SimOptions& sim,
                                              std::uint64_t db_fingerprint);

/// One shard's output: header metadata plus the rows of its range.
struct SweepPart {
  std::uint64_t fingerprint = 0;
  GridShape shape{};
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  ShardRange range{};
  std::vector<SweepRow> rows;
};

/// "<prefix>.<index>-of-<count>.qospart" - self-describing names so a
/// directory of parts from different shardings can't be cross-merged by
/// accident.
[[nodiscard]] std::string part_path(const std::string& prefix,
                                    std::size_t index, std::size_t count);

/// Saves a part. Writes to a uniquely named sibling and renames into place,
/// so a killed worker never leaves a plausible-looking partial part. False +
/// *error on I/O failure or inconsistent metadata.
bool save_sweep_part(const SweepPart& part, const std::string& path,
                     std::string* error);

/// Loads and fully validates one part: magic/version/byte order, metadata
/// consistency (range matches shard_range(shape.size(), index, count), row
/// count matches the range) and the trailing checksum. nullopt + *error on
/// any mismatch - a truncated or corrupt part is never returned.
[[nodiscard]] std::optional<SweepPart> load_sweep_part(const std::string& path,
                                                       std::string* error);

/// Validates that `parts` are one complete sweep - same fingerprint, shape
/// and shard count everywhere, every shard index present exactly once, and
/// the ranges tiling [0, shape.size()) without gap or overlap - then
/// concatenates the rows in grid order. Parts may arrive in any order.
/// nullopt + *error (naming the offending part/shard) otherwise.
[[nodiscard]] std::optional<std::vector<SweepRow>> merge_sweep_parts(
    std::vector<SweepPart> parts, std::string* error);

/// Identity a merged sweep carries forward into figure reports: the
/// fingerprint the parts agreed on plus the grid shape of their rows.
struct SweepIdentity {
  std::uint64_t fingerprint = 0;
  GridShape shape{};
};

/// Driver-level convenience shared by sweep_main --workers, the sweep_merge
/// CLI and report_main: loads every path, optionally enforces that all
/// parts carry `expected_fingerprint` (pass nullptr to accept any one
/// sweep), merges, and recomputes the aggregates with the global suite's
/// scenario weights - yielding the same SweepResult (minus
/// idle_computations) a single-process SweepRunner::run would have
/// produced. `identity` (optional) receives the merged sweep's fingerprint
/// and shape, which figure reports embed so they can never be matched
/// against foreign rows. nullopt + *error naming the offending part on any
/// validation failure.
[[nodiscard]] std::optional<SweepResult> merge_part_files(
    const std::vector<std::string>& paths,
    const std::uint64_t* expected_fingerprint, std::string* error,
    SweepIdentity* identity = nullptr);

/// Resume support: the shard indices whose part file under `prefix` is
/// missing, unreadable, corrupt, or belongs to a different sweep (wrong
/// fingerprint/shape/count) - i.e. the shards an orchestrator still has to
/// run. A valid matching part is skipped.
[[nodiscard]] std::vector<std::size_t> shards_to_run(const std::string& prefix,
                                                     std::size_t count,
                                                     std::uint64_t fingerprint,
                                                     const GridShape& shape);

// ---------------------------------------------------------------------------
// Service-mode parts: the same shard/part/merge machinery for the colocation
// service's {pattern x load x admission x policy x alpha} grid
// (rmsim/service.hh). The
// layout mirrors the sweep part format under a distinct magic, so the two
// part kinds can never be cross-merged by accident.
// ---------------------------------------------------------------------------

// Version 2: admission-policy axis (grid shape dimension + per-row admission
// and qos_rejected fields). Version-1 parts are rejected, never reinterpreted.
inline constexpr std::uint32_t kServicePartVersion = 2;

/// One shard's output of a service sweep.
struct ServicePart {
  std::uint64_t fingerprint = 0;
  ServiceGridShape shape{};
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  ShardRange range{};
  std::vector<ServiceRow> rows;
};

/// Saves a service part (atomic tmp+rename, like save_sweep_part). False +
/// *error on I/O failure or inconsistent metadata.
bool save_service_part(const ServicePart& part, const std::string& path,
                       std::string* error);

/// Loads and fully validates one service part (magic/version/byte order,
/// metadata consistency, trailing checksum). nullopt + *error on mismatch.
[[nodiscard]] std::optional<ServicePart> load_service_part(
    const std::string& path, std::string* error);

/// Validates that `parts` are one complete service sweep and concatenates
/// the rows in grid order (same rules as merge_sweep_parts). nullopt +
/// *error otherwise.
[[nodiscard]] std::optional<std::vector<ServiceRow>> merge_service_parts(
    std::vector<ServicePart> parts, std::string* error);

/// Identity a merged service sweep carries into its report.
struct ServiceIdentity {
  std::uint64_t fingerprint = 0;
  ServiceGridShape shape{};
};

/// Loads every path, optionally enforces `expected_fingerprint`, merges.
/// `identity` (optional) receives the merged fingerprint and shape. nullopt
/// + *error naming the offending part on any validation failure.
[[nodiscard]] std::optional<std::vector<ServiceRow>> merge_service_part_files(
    const std::vector<std::string>& paths,
    const std::uint64_t* expected_fingerprint, std::string* error,
    ServiceIdentity* identity = nullptr);

/// Resume support for service sweeps: shard indices whose part under
/// `prefix` is missing, unreadable, corrupt or from a different sweep.
[[nodiscard]] std::vector<std::size_t> service_shards_to_run(
    const std::string& prefix, std::size_t count, std::uint64_t fingerprint,
    const ServiceGridShape& shape);

}  // namespace qosrm::rmsim

#endif  // QOSRM_RMSIM_SHARD_HH
