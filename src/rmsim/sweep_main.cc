// sweep_main - CLI driver for the parallel policy-sweep subsystem.
//
// Expands a {policy x model x qos_alpha} x workload grid over a generated
// workload suite, shards the runs across a thread pool, and writes per-run
// rows plus per-configuration aggregates as CSV. Output is byte-identical
// for any --threads value.
//
//   sweep_main --cores=4 --per-scenario=1 --policies=idle,rm1,rm2,rm3
//              --models=model3 --alphas=0 --threads=4
//              --rows-csv=sweep_rows.csv --agg-csv=sweep_agg.csv
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hh"
#include "common/str.hh"
#include "power/power_model.hh"
#include "rmsim/sweep.hh"
#include "workload/db_io.hh"
#include "workload/sim_db.hh"
#include "workload/spec_suite.hh"
#include "workload/workload_gen.hh"

namespace {

void print_usage() {
  std::puts(
      "sweep_main: sweep RM policies over generated workload mixes\n"
      "  --cores=N          cores per workload (default 4)\n"
      "  --per-scenario=N   workload mixes per scenario (default 1; paper: 6)\n"
      "  --seed=N           workload-generation seed (default 2020)\n"
      "  --policies=LIST    comma list of idle|rm1|rm2|rm3 (default all)\n"
      "  --models=LIST      comma list of model1|model2|model3|perfect\n"
      "                     (default model3)\n"
      "  --alphas=LIST      comma list of QoS alphas; 0 = system default\n"
      "                     (default 0)\n"
      "  --threads=N        sweep parallelism; 0 = hardware concurrency\n"
      "  --rows-csv=PATH    per-run CSV output (default sweep_rows.csv)\n"
      "  --agg-csv=PATH     per-configuration CSV output (optional)\n"
      "  --overheads=BOOL   model RM/enforcement overheads (default true)\n"
      "  --db-cache=PATH    simulation-database snapshot: load it when the\n"
      "                     file exists (a stale/corrupt snapshot is an\n"
      "                     error), otherwise characterize and save it; a\n"
      "                     directory selects <dir>/suite-c<cores>.qosdb\n"
      "                     (same layout as the benches)");
}

}  // namespace

int main(int argc, char** argv) {
  using Clock = std::chrono::steady_clock;
  const qosrm::CliArgs args(argc, argv);
  if (args.has("help")) {
    print_usage();
    return 0;
  }

  // Reject unknown flags: a typo'd flag name would otherwise silently run
  // a default sweep labeled as if the request had been honored.
  static const std::set<std::string> kKnownFlags = {
      "cores",    "per-scenario", "seed",    "policies", "models",   "alphas",
      "threads",  "rows-csv",     "agg-csv", "overheads", "db-cache"};
  for (const std::string& flag : args.flag_names()) {
    if (!kKnownFlags.count(flag)) {
      std::fprintf(stderr, "unknown flag --%s (see --help)\n", flag.c_str());
      return 1;
    }
  }
  if (!args.positional().empty()) {
    std::fprintf(stderr,
                 "unexpected argument '%s' (flags take --name=value or "
                 "--name value form; see --help)\n",
                 args.positional().front().c_str());
    return 1;
  }

  namespace workload = qosrm::workload;
  namespace rmsim = qosrm::rmsim;

  const int cores = static_cast<int>(args.get_int("cores", 4));
  const int threads = static_cast<int>(args.get_int("threads", 0));
  const int per_scenario = static_cast<int>(args.get_int("per-scenario", 1));
  if (cores < 1 || threads < 0 || per_scenario < 1) {
    std::fprintf(stderr,
                 "--cores/--per-scenario must be >= 1 and --threads >= 0\n");
    return 1;
  }

  // Parse the grid flags up front: a bad value should fail immediately, not
  // after the multi-second database characterization.
  rmsim::SweepGrid grid;
  grid.policies = rmsim::parse_policies(args.get("policies", "idle,rm1,rm2,rm3"));
  grid.models = rmsim::parse_models(args.get("models", "model3"));
  grid.qos_alphas = rmsim::parse_alphas(args.get("alphas", "0"));
  if (grid.policies.empty() || grid.models.empty() || grid.qos_alphas.empty()) {
    std::fprintf(stderr,
                 "--policies/--models/--alphas must each name at least one "
                 "value (see --help)\n");
    return 1;
  }

  // Probe the output paths too: a bad path should fail here, before the
  // multi-second database build, not after the sweep (append mode: an
  // existing file is left untouched by the probe). Files the probe itself
  // created are removed again on later failure paths, so a failed run does
  // not leave an empty decoy CSV behind.
  const std::string rows_csv = args.get("rows-csv", "sweep_rows.csv");
  const std::string agg_csv = args.get("agg-csv", "");
  std::vector<std::string> probe_created;
  for (const std::string& path : {rows_csv, agg_csv}) {
    if (path.empty()) continue;
    std::error_code ec;
    const bool existed = std::filesystem::exists(path, ec);
    std::ofstream probe(path, std::ios::app);
    if (!probe.good()) {
      std::fprintf(stderr, "cannot write to %s\n", path.c_str());
      return 1;
    }
    if (!existed) probe_created.push_back(path);
  }
  const auto fail_with_cleanup = [&probe_created]() {
    for (const std::string& path : probe_created) std::remove(path.c_str());
    return 1;
  };

  // --db-cache: decide hit/miss now, and on a miss probe writability, so a
  // bad path fails here instead of after the multi-second database build.
  // The probe uses a uniquely named sibling file, never the cache path
  // itself: concurrent shards must not see a transient decoy snapshot, nor
  // have a just-written real one deleted from under them.
  std::string db_cache = args.get("db-cache", "");
  bool db_cache_hit = false;
  if (!db_cache.empty()) {
    // A directory means the shared per-core-count layout the benches and
    // QOSRM_DB_CACHE_DIR use; resolve it the same way.
    std::error_code ec;
    if (std::filesystem::is_directory(db_cache, ec)) {
      db_cache = workload::db_cache_path(db_cache, cores);
    }
    std::ifstream rprobe(db_cache, std::ios::binary);
    db_cache_hit = rprobe.good();
    if (!db_cache_hit) {
      const std::string probe_path =
          db_cache + ".probe." + std::to_string(static_cast<long>(::getpid()));
      std::ofstream wprobe(probe_path, std::ios::trunc);
      if (!wprobe.good()) {
        std::fprintf(stderr, "--db-cache: cannot write to %s\n", db_cache.c_str());
        return fail_with_cleanup();
      }
      wprobe.close();
      std::remove(probe_path.c_str());
    }
  }

  const workload::SpecSuite& suite = workload::spec_suite();
  qosrm::arch::SystemConfig system;
  system.cores = cores;
  const qosrm::power::PowerModel power;

  workload::SimDbOptions db_options;
  db_options.threads = threads;
  const auto t_db = Clock::now();
  std::optional<workload::SimDb> db_storage;
  if (db_cache_hit) {
    std::printf("loading simulation database from %s...\n", db_cache.c_str());
    std::string error;
    db_storage = workload::load_simdb(suite, system, power, db_options.phase,
                                      db_cache, &error);
    if (!db_storage.has_value()) {
      std::fprintf(stderr, "--db-cache: %s\n", error.c_str());
      return fail_with_cleanup();
    }
  } else {
    std::printf("characterizing %d-app suite for %d cores...\n", suite.size(),
                cores);
    db_storage.emplace(suite, system, power, db_options);
    if (!db_cache.empty()) {
      std::string error;
      if (!workload::save_simdb(*db_storage, db_cache, &error)) {
        std::fprintf(stderr, "--db-cache: %s\n", error.c_str());
        return fail_with_cleanup();
      }
      std::printf("saved simulation database snapshot to %s\n", db_cache.c_str());
    }
  }
  const workload::SimDb& db = *db_storage;

  workload::WorkloadGenOptions gen;
  gen.cores = cores;
  gen.per_scenario = per_scenario;
  gen.seed = static_cast<std::uint64_t>(args.get_int("seed", 2020));

  grid.mixes = workload::generate_workloads(suite, gen);

  rmsim::SweepOptions options;
  options.threads = threads;
  options.sim.model_overheads = args.get_bool("overheads", true);

  const unsigned resolved_threads =
      threads > 0 ? static_cast<unsigned>(threads)
                  : std::max(1u, std::thread::hardware_concurrency());
  std::printf("sweeping %zu runs (%zu mixes x %zu policies x %zu models x "
              "%zu alphas) on %u threads...\n",
              grid.size(), grid.mixes.size(), grid.policies.size(),
              grid.models.size(), grid.qos_alphas.size(), resolved_threads);
  const auto t_sweep = Clock::now();
  rmsim::SweepRunner runner(db, options);
  const rmsim::SweepResult result = runner.run(grid);
  const auto t_done = Clock::now();

  rmsim::write_rows_csv(result, rows_csv);
  std::printf("wrote %zu rows to %s\n", result.rows.size(), rows_csv.c_str());
  if (!agg_csv.empty()) {
    rmsim::write_aggregates_csv(result, agg_csv);
    std::printf("wrote %zu aggregates to %s\n", result.aggregates.size(),
                agg_csv.c_str());
  }

  std::printf("\n%-6s %-8s %9s %14s %12s %14s\n", "policy", "model", "alpha",
              "wtd-savings", "mean-savings", "viol-rate");
  for (const rmsim::SweepAggregate& agg : result.aggregates) {
    std::printf("%-6s %-8s %9.4g %13.2f%% %11.2f%% %14.4g\n",
                qosrm::rm::rm_policy_name(agg.policy),
                qosrm::rm::perf_model_name(agg.model), agg.qos_alpha,
                100.0 * agg.weighted_savings, 100.0 * agg.mean_savings,
                agg.mean_violation_rate);
  }

  const auto secs = [](Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
  };
  std::printf("\nidle references simulated: %zu (one per mix x alpha)\n",
              result.idle_computations);
  std::printf("db %s %.2fs, sweep %.2fs\n", db_cache_hit ? "load" : "build",
              secs(t_db, t_sweep), secs(t_sweep, t_done));
  return 0;
}
