// sweep_main - CLI driver for the parallel policy-sweep subsystem.
//
// Expands a {policy x model x qos_alpha} x workload grid over a generated
// workload suite, shards the runs across a thread pool, and writes per-run
// rows plus per-configuration aggregates as CSV. Output is byte-identical
// for any --threads value.
//
//   sweep_main --cores=4 --per-scenario=1 --policies=idle,rm1,rm2,rm3
//              --models=model3 --alphas=0 --threads=4
//              --rows-csv=sweep_rows.csv --agg-csv=sweep_agg.csv
//
// Three execution modes:
//   (default)     run the whole grid in this process
//   --shard=i/N   worker: run only shard i's row range and write a part
//                 file (--part-output) for a later merge
//   --workers=N   orchestrator: fork/exec N shard workers of this binary,
//                 wait, merge their parts and write the same CSVs as a
//                 single-process run (byte-identical)
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hh"
#include "common/file_util.hh"
#include "common/str.hh"
#include "common/subprocess.hh"
#include "power/power_model.hh"
#include "rmsim/cli_flags.hh"
#include "rmsim/report.hh"
#include "rmsim/shard.hh"
#include "rmsim/sweep.hh"
#include "workload/db_io.hh"
#include "workload/sim_db.hh"
#include "workload/spec_suite.hh"
#include "workload/workload_gen.hh"

namespace {

namespace workload = qosrm::workload;
namespace rmsim = qosrm::rmsim;
using Clock = std::chrono::steady_clock;

void print_usage() {
  std::puts(
      "sweep_main: sweep RM policies over generated workload mixes\n"
      "  --cores=N          cores per generated workload (default 4)\n"
      "  --replicate=K      scale every mix to K x its cores by scenario-\n"
      "                     preserving replication (default 1; e.g.\n"
      "                     --cores=4 --replicate=2 sweeps 8-core scaled\n"
      "                     versions of the 4-core paper mixes)\n"
      "  --bw-shares=N      memory-bandwidth shares per core (default 1 =\n"
      "                     unpartitioned bandwidth; N >= 2 adds the CBP\n"
      "                     share axis to the optimizer's knob space)\n"
      "  --per-scenario=N   workload mixes per scenario (default 1; paper: 6)\n"
      "  --seed=N           workload-generation seed (default 2020)\n"
      "  --policies=LIST    comma list of idle|rm1|rm2|rm3|ucp|fcp|classpart\n"
      "                     (default idle,rm1,rm2,rm3)\n"
      "  --models=LIST      comma list of model1|model2|model3|perfect\n"
      "                     (default model3)\n"
      "  --alphas=LIST      comma list of QoS alphas; 0 = system default\n"
      "                     (default 0)\n"
      "  --threads=N        sweep parallelism; 0 = hardware concurrency\n"
      "  --rows-csv=PATH    per-run CSV output (default sweep_rows.csv)\n"
      "  --agg-csv=PATH     per-configuration CSV output (optional)\n"
      "  --report-json=PATH Fig. 6/7/9 figure report (byte-stable JSON,\n"
      "                     stamped with the sweep fingerprint; optional)\n"
      "  --overheads=BOOL   model RM/enforcement overheads (default true)\n"
      "  --db-cache=PATH    simulation-database snapshot: load it when the\n"
      "                     file exists (a stale/corrupt snapshot is an\n"
      "                     error), otherwise characterize and save it; a\n"
      "                     directory selects <dir>/suite-c<cores>.qosdb\n"
      "                     (same layout as the benches)\n"
      "multi-process sharding:\n"
      "  --shard=I/N        worker mode: run only rows of shard I of N and\n"
      "                     write them to --part-output instead of CSV\n"
      "  --part-output=PATH part file this worker writes (requires --shard)\n"
      "  --workers=N        orchestrator mode: fork N --shard workers of\n"
      "                     this binary, merge their parts, write the CSVs\n"
      "  --parts-dir=DIR    where the orchestrator keeps part files\n"
      "                     (default: next to --rows-csv)\n"
      "  --resume           orchestrator: skip shards whose part file is\n"
      "                     already complete and matching; re-run the rest\n"
      "  --keep-parts       orchestrator: keep part files after the merge\n"
      "                     (default: removed on success)");
}

std::string self_exe_path(const char* argv0) {
  // /proc/self/exe survives PATH-relative invocation and cwd changes;
  // argv[0] is the fallback on exotic systems.
  std::error_code ec;
  const std::filesystem::path self =
      std::filesystem::read_symlink("/proc/self/exe", ec);
  return ec ? std::string(argv0) : self.string();
}

/// Everything both the orchestrator and its workers must agree on, parsed
/// and validated once, before any expensive work.
struct SweepSetup {
  int cores = 4;
  int replicate = 1;  ///< scenario-preserving mix scaling factor
  int bw_shares = 1;  ///< baseline memory-bandwidth shares per core
  int threads = 0;
  int per_scenario = 1;
  std::uint64_t seed = 2020;
  std::string policies_spec;
  std::string models_spec;
  std::string alphas_spec;
  bool overheads = true;
  std::string db_cache;  ///< resolved path ("" = no cache)
  rmsim::SweepGrid grid;  ///< mixes filled in later (needs only the suite)

  /// Cores the simulated system actually has (replication scales the
  /// 4-core paper mixes to 8/16-core workloads).
  [[nodiscard]] int total_cores() const noexcept { return cores * replicate; }
};

/// The grid+options fingerprint every process must agree on. Computable
/// without building the database: the db identity is itself a fingerprint
/// of (suite, system, phase options).
std::uint64_t setup_fingerprint(const SweepSetup& setup,
                                const rmsim::SweepOptions& options) {
  qosrm::arch::SystemConfig system;
  system.cores = setup.total_cores();
  system.bw = qosrm::arch::bw_config_for_shares(setup.bw_shares);
  const std::uint64_t db_fp = workload::simdb_fingerprint(
      workload::spec_suite(), system, workload::PhaseStatsOptions{});
  return rmsim::sweep_fingerprint(setup.grid, options.sim, db_fp);
}

void print_aggregates(const std::vector<rmsim::SweepAggregate>& aggregates) {
  std::printf("\n%-6s %-8s %9s %14s %12s %14s\n", "policy", "model", "alpha",
              "wtd-savings", "mean-savings", "viol-rate");
  for (const rmsim::SweepAggregate& agg : aggregates) {
    std::printf("%-6s %-8s %9.4g %13.2f%% %11.2f%% %14.4g\n",
                qosrm::rm::rm_policy_name(agg.policy),
                qosrm::rm::perf_model_name(agg.model), agg.qos_alpha,
                100.0 * agg.weighted_savings, 100.0 * agg.mean_savings,
                agg.mean_violation_rate);
  }
}

double secs(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// --report-json: the figure report of this sweep, stamped with the sweep
/// fingerprint so it can never be matched against foreign rows.
bool write_sweep_report(const rmsim::SweepResult& result,
                        const rmsim::GridShape& shape,
                        std::uint64_t fingerprint, const std::string& path) {
  const rmsim::FigureReport report = rmsim::build_figure_report(
      result.rows, shape, fingerprint,
      rmsim::scenario_weights(workload::spec_suite()));
  std::string error;
  if (!rmsim::write_report_json(report, path, &error)) {
    std::fprintf(stderr, "--report-json: %s\n", error.c_str());
    return false;
  }
  std::printf("wrote figure report to %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const qosrm::CliArgs args(argc, argv, {"help", "resume", "keep-parts"});
  if (args.has("help")) {
    print_usage();
    return 0;
  }

  // Reject unknown flags: a typo'd flag name would otherwise silently run
  // a default sweep labeled as if the request had been honored.
  static const std::set<std::string> kKnownFlags(
      std::begin(rmsim::cli::kSweepMainFlags),
      std::end(rmsim::cli::kSweepMainFlags));
  for (const std::string& flag : args.flag_names()) {
    if (!kKnownFlags.count(flag)) {
      std::fprintf(stderr, "unknown flag --%s (see --help)\n", flag.c_str());
      return 1;
    }
  }
  if (!args.positional().empty()) {
    std::fprintf(stderr,
                 "unexpected argument '%s' (flags take --name=value or "
                 "--name value form; see --help)\n",
                 args.positional().front().c_str());
    return 1;
  }

  // Mode flags first: every invalid --shard/--workers combination must fail
  // here, before the multi-second database build (same fail-before-
  // expensive-work rule as the grid and output-path checks below).
  const bool worker_mode = args.has("shard") || args.has("part-output");
  const bool orchestrate = args.has("workers");
  if (args.has("shard") != args.has("part-output")) {
    std::fprintf(stderr,
                 "--shard and --part-output must be given together (a shard "
                 "worker writes a part file, not CSV)\n");
    return 1;
  }
  if (worker_mode && orchestrate) {
    std::fprintf(stderr,
                 "--shard and --workers are mutually exclusive (a worker "
                 "runs one shard; the orchestrator forks the workers)\n");
    return 1;
  }
  if (worker_mode &&
      (args.has("rows-csv") || args.has("agg-csv") || args.has("report-json"))) {
    std::fprintf(stderr,
                 "--rows-csv/--agg-csv/--report-json do not apply in --shard "
                 "worker mode (the merge step writes the outputs)\n");
    return 1;
  }
  if (!orchestrate &&
      (args.has("resume") || args.has("parts-dir") || args.has("keep-parts"))) {
    std::fprintf(stderr,
                 "--resume/--parts-dir/--keep-parts require --workers\n");
    return 1;
  }
  qosrm::ShardArg shard;
  if (worker_mode) {
    const std::optional<qosrm::ShardArg> parsed =
        qosrm::parse_shard_arg(args.get("shard", ""));
    if (!parsed.has_value()) {
      std::fprintf(stderr,
                   "bad --shard value '%s' (want I/N with 0 <= I < N)\n",
                   args.get("shard", "").c_str());
      return 1;
    }
    shard = *parsed;
  }
  const int workers = static_cast<int>(args.get_int("workers", 0));
  if (orchestrate && workers < 1) {
    std::fprintf(stderr, "--workers must be >= 1\n");
    return 1;
  }

  SweepSetup setup;
  setup.cores = static_cast<int>(args.get_int("cores", 4));
  setup.replicate = static_cast<int>(args.get_int("replicate", 1));
  setup.bw_shares = static_cast<int>(args.get_int("bw-shares", 1));
  setup.threads = static_cast<int>(args.get_int("threads", 0));
  setup.per_scenario = static_cast<int>(args.get_int("per-scenario", 1));
  if (setup.cores < 1 || setup.replicate < 1 || setup.per_scenario < 1 ||
      setup.threads < 0) {
    std::fprintf(stderr,
                 "--cores/--replicate/--per-scenario must be >= 1 and "
                 "--threads >= 0\n");
    return 1;
  }
  if (setup.bw_shares < 1) {
    std::fprintf(stderr, "--bw-shares must be >= 1\n");
    return 1;
  }
  setup.seed = static_cast<std::uint64_t>(args.get_int("seed", 2020));

  // Parse the grid flags up front: a bad value should fail immediately, not
  // after the multi-second database characterization.
  setup.policies_spec = args.get("policies", "idle,rm1,rm2,rm3");
  setup.models_spec = args.get("models", "model3");
  setup.alphas_spec = args.get("alphas", "0");
  setup.grid.policies = rmsim::parse_policies(setup.policies_spec);
  setup.grid.models = rmsim::parse_models(setup.models_spec);
  setup.grid.qos_alphas = rmsim::parse_alphas(setup.alphas_spec);
  if (setup.grid.policies.empty() || setup.grid.models.empty() ||
      setup.grid.qos_alphas.empty()) {
    std::fprintf(stderr,
                 "--policies/--models/--alphas must each name at least one "
                 "value (see --help)\n");
    return 1;
  }
  setup.overheads = args.get_bool("overheads", true);

  rmsim::SweepOptions options;
  options.threads = setup.threads;
  options.sim.model_overheads = setup.overheads;

  // Probe the output paths too: a bad path should fail here, before the
  // multi-second database build, not after the sweep. Each probe touches
  // only the uniquely named temp sibling the later atomic commit will use,
  // NEVER the target itself - an interrupted or failed run must not leave
  // an empty decoy CSV/report, and an existing file stays untouched until
  // its atomic replacement.
  const std::string rows_csv = args.get("rows-csv", "sweep_rows.csv");
  const std::string agg_csv = args.get("agg-csv", "");
  const std::string report_json = args.get("report-json", "");
  const std::string part_output = args.get("part-output", "");
  // Orchestrator part files live next to the rows CSV unless --parts-dir
  // says otherwise; the prefix keeps the sharding self-describing
  // ("<prefix>.<i>-of-<n>.qospart").
  std::string parts_prefix;
  if (orchestrate) {
    const std::string parts_dir = args.get("parts-dir", "");
    if (parts_dir.empty()) {
      parts_prefix = rows_csv;
    } else {
      parts_prefix =
          (std::filesystem::path(parts_dir) /
           std::filesystem::path(rows_csv).filename())
              .string();
    }
  }

  std::vector<std::string> probe_paths;
  if (worker_mode) {
    probe_paths.push_back(part_output);
  } else {
    probe_paths.push_back(rows_csv);
    if (!agg_csv.empty()) probe_paths.push_back(agg_csv);
    if (!report_json.empty()) probe_paths.push_back(report_json);
    if (orchestrate) {
      for (int i = 0; i < workers; ++i) {
        probe_paths.push_back(rmsim::part_path(
            parts_prefix, static_cast<std::size_t>(i),
            static_cast<std::size_t>(workers)));
      }
    }
  }
  for (const std::string& path : probe_paths) {
    std::string probe_error;
    if (!qosrm::probe_writable_atomic(path, &probe_error)) {
      std::fprintf(stderr, "%s\n", probe_error.c_str());
      return 1;
    }
  }

  // --db-cache: decide hit/miss now, and on a miss probe writability, so a
  // bad path fails here instead of after the multi-second database build.
  // The probe uses a uniquely named sibling file, never the cache path
  // itself: concurrent shards must not see a transient decoy snapshot, nor
  // have a just-written real one deleted from under them.
  setup.db_cache = args.get("db-cache", "");
  bool db_cache_hit = false;
  if (!setup.db_cache.empty()) {
    // A directory means the shared per-core-count layout the benches and
    // QOSRM_DB_CACHE_DIR use; resolve it the same way.
    std::error_code ec;
    if (std::filesystem::is_directory(setup.db_cache, ec)) {
      setup.db_cache = workload::db_cache_path(
          setup.db_cache, setup.total_cores(), setup.bw_shares);
    }
    std::ifstream rprobe(setup.db_cache, std::ios::binary);
    db_cache_hit = rprobe.good();
    if (!db_cache_hit) {
      const std::string probe_path = setup.db_cache + ".probe." +
                                     std::to_string(static_cast<long>(::getpid()));
      std::ofstream wprobe(probe_path, std::ios::trunc);
      if (!wprobe.good()) {
        std::fprintf(stderr, "--db-cache: cannot write to %s\n",
                     setup.db_cache.c_str());
        return 1;
      }
      wprobe.close();
      std::remove(probe_path.c_str());
    }
  }

  const workload::SpecSuite& suite = workload::spec_suite();
  qosrm::arch::SystemConfig system;
  system.cores = setup.total_cores();
  system.bw = qosrm::arch::bw_config_for_shares(setup.bw_shares);
  const qosrm::power::PowerModel power;

  workload::SimDbOptions db_options;
  db_options.threads = setup.threads;

  // Expand the workload mixes (cheap: needs only the suite, not the
  // database) - the orchestrator uses them for the fingerprint and shard
  // math without ever building a database itself.
  workload::WorkloadGenOptions gen;
  gen.cores = setup.cores;
  gen.per_scenario = setup.per_scenario;
  gen.seed = setup.seed;
  setup.grid.mixes = workload::replicate_workloads(
      workload::generate_workloads(suite, gen), setup.replicate);

  // ---------------------------------------------------------------------
  // Orchestrator mode: fork shard workers, merge their parts, write CSVs.
  // ---------------------------------------------------------------------
  if (orchestrate) {
    const auto n = static_cast<std::size_t>(workers);
    const std::uint64_t fingerprint = setup_fingerprint(setup, options);
    const rmsim::GridShape shape = setup.grid.shape();

    // Which shards still need to run? Without --resume: all of them
    // (workers atomically overwrite any stale part). Computed BEFORE any
    // database work - it needs only the fingerprint and shape, and a
    // resume where every part is already complete must go straight to the
    // merge without paying a characterization or snapshot load.
    std::vector<std::size_t> pending;
    if (args.get_bool("resume", false)) {
      pending = rmsim::shards_to_run(parts_prefix, n, fingerprint, shape);
      std::printf("resume: %zu of %zu shards already complete\n",
                  n - pending.size(), n);
    } else {
      for (std::size_t i = 0; i < n; ++i) pending.push_back(i);
    }

    // The database must be characterized once, here, not N times by the
    // forked workers. With --db-cache a present-but-stale snapshot is a
    // hard error, matching the single-process contract; without --db-cache
    // the orchestrator builds a temporary snapshot next to the parts and
    // hands it to the workers, then removes it after the run.
    const auto t_db = Clock::now();
    bool temp_db = false;
    const auto cleanup_temp_db = [&]() {
      if (temp_db) std::remove(setup.db_cache.c_str());
    };
    if (!pending.empty()) {
      if (setup.db_cache.empty()) {
        temp_db = true;
        setup.db_cache = parts_prefix + ".shared.qosdb";
        std::remove(setup.db_cache.c_str());  // never trust a stale leftover
        db_cache_hit = false;
      }
      std::string error;
      if (db_cache_hit) {
        if (!workload::load_simdb(suite, system, power, db_options.phase,
                                  setup.db_cache, &error)
                 .has_value()) {
          std::fprintf(stderr, "--db-cache: %s\n", error.c_str());
          return 1;
        }
      } else {
        std::printf("characterizing %d-app suite for %d cores (shared by all "
                    "workers)...\n",
                    suite.size(), setup.total_cores());
        const workload::SimDb db(suite, system, power, db_options);
        if (!workload::save_simdb(db, setup.db_cache, &error)) {
          std::fprintf(stderr, "--db-cache: %s\n", error.c_str());
          cleanup_temp_db();
          return 1;
        }
        std::printf("saved simulation database snapshot to %s\n",
                    setup.db_cache.c_str());
      }
    }

    const unsigned total_threads =
        setup.threads > 0 ? static_cast<unsigned>(setup.threads)
                          : std::max(1u, std::thread::hardware_concurrency());
    const unsigned worker_threads = std::max(1u, total_threads / std::max(
        1u, static_cast<unsigned>(pending.size())));

    std::printf("sweeping %zu runs across %d shard workers (%u threads "
                "each)...\n",
                setup.grid.size(), workers, worker_threads);

    const std::string exe = self_exe_path(argv[0]);
    const auto t_sweep = Clock::now();

    struct Worker {
      std::size_t shard = 0;
      std::vector<std::string> argv;
      qosrm::Subprocess process;
    };
    std::vector<Worker> spawned;
    spawned.reserve(pending.size());
    for (const std::size_t i : pending) {
      Worker worker;
      worker.shard = i;
      worker.argv = {
          exe,
          qosrm::format("--cores=%d", setup.cores),
          qosrm::format("--replicate=%d", setup.replicate),
          qosrm::format("--bw-shares=%d", setup.bw_shares),
          qosrm::format("--per-scenario=%d", setup.per_scenario),
          qosrm::format("--seed=%llu",
                        static_cast<unsigned long long>(setup.seed)),
          "--policies=" + setup.policies_spec,
          "--models=" + setup.models_spec,
          "--alphas=" + setup.alphas_spec,
          qosrm::format("--overheads=%s", setup.overheads ? "true" : "false"),
          qosrm::format("--threads=%u", worker_threads),
          qosrm::format("--shard=%zu/%zu", i, n),
          "--part-output=" + rmsim::part_path(parts_prefix, i, n),
      };
      if (!setup.db_cache.empty()) {
        worker.argv.push_back("--db-cache=" + setup.db_cache);
      }
      worker.process = qosrm::Subprocess::spawn(worker.argv);
      spawned.push_back(std::move(worker));
    }

    // Fail fast: workers are reaped in COMPLETION order (wait_any), so the
    // first failure - whichever shard it strikes - immediately terminates
    // the rest instead of hiding behind long-running earlier shards. The
    // diagnostic names the shard, its fate and its exact command line so
    // the operator can re-run just that shard by hand. Shards we cancelled
    // ourselves get one short line, not a failure diagnostic of their own -
    // the actionable failure must stay visible.
    bool failed = false;
    const auto handle_exit = [&](const Worker& worker,
                                 const qosrm::SubprocessExit& exit) {
      if (exit.success()) return;
      if (failed && exit.term_signal == SIGTERM) {
        std::fprintf(stderr, "shard %zu/%zu cancelled\n", worker.shard, n);
        return;
      }
      if (!failed) {
        failed = true;
        for (Worker& other : spawned) other.process.terminate();
      }
      std::string cmd;
      for (const std::string& arg : worker.argv) {
        if (!cmd.empty()) cmd += ' ';
        cmd += arg;
      }
      std::fprintf(stderr, "shard %zu/%zu failed (%s): %s\n", worker.shard, n,
                   describe(exit).c_str(), cmd.c_str());
    };

    std::vector<qosrm::Subprocess*> processes;
    processes.reserve(spawned.size());
    for (Worker& worker : spawned) {
      processes.push_back(&worker.process);
      // A fork that failed outright never enters wait_any.
      if (!worker.process.running()) handle_exit(worker, worker.process.wait());
    }
    for (;;) {
      const std::optional<std::size_t> done =
          qosrm::Subprocess::wait_any(processes);
      if (!done.has_value()) break;
      handle_exit(spawned[*done], spawned[*done].process.wait());
    }
    if (failed) {
      std::fprintf(stderr,
                   "sweep aborted; completed parts are kept - re-run with "
                   "--resume to redo only the failed shards\n");
      cleanup_temp_db();
      return 1;
    }

    // Merge. Every part must match the fingerprint this orchestrator
    // computed - a worker that somehow ran a different grid is caught here.
    std::vector<std::string> part_files;
    part_files.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      part_files.push_back(rmsim::part_path(parts_prefix, i, n));
    }
    std::string error;
    std::optional<rmsim::SweepResult> merged =
        rmsim::merge_part_files(part_files, &fingerprint, &error);
    if (!merged.has_value()) {
      std::fprintf(stderr, "merge: %s\n", error.c_str());
      cleanup_temp_db();
      return 1;
    }
    const auto t_done = Clock::now();
    const rmsim::SweepResult& result = *merged;
    cleanup_temp_db();

    rmsim::write_rows_csv(result, rows_csv);
    std::printf("wrote %zu rows to %s\n", result.rows.size(), rows_csv.c_str());
    if (!agg_csv.empty()) {
      rmsim::write_aggregates_csv(result, agg_csv);
      std::printf("wrote %zu aggregates to %s\n", result.aggregates.size(),
                  agg_csv.c_str());
    }
    if (!report_json.empty() &&
        !write_sweep_report(result, shape, fingerprint, report_json)) {
      return 1;
    }
    if (!args.get_bool("keep-parts", false)) {
      for (std::size_t i = 0; i < n; ++i) {
        std::remove(rmsim::part_path(parts_prefix, i, n).c_str());
      }
    }

    print_aggregates(result.aggregates);
    std::printf("\ndb prep %.2fs, sweep+merge %.2fs (%d workers)\n",
                secs(t_db, t_sweep), secs(t_sweep, t_done), workers);
    return 0;
  }

  // ---------------------------------------------------------------------
  // Single-process grid execution: the whole grid (default mode) or one
  // shard's row range (--shard worker mode).
  // ---------------------------------------------------------------------
  const auto t_db = Clock::now();
  std::optional<workload::SimDb> db_storage;
  if (db_cache_hit) {
    std::printf("loading simulation database from %s...\n", setup.db_cache.c_str());
    std::string error;
    db_storage = workload::load_simdb(suite, system, power, db_options.phase,
                                      setup.db_cache, &error);
    if (!db_storage.has_value()) {
      std::fprintf(stderr, "--db-cache: %s\n", error.c_str());
      return 1;
    }
  } else {
    std::printf("characterizing %d-app suite for %d cores...\n", suite.size(),
                setup.total_cores());
    db_storage.emplace(suite, system, power, db_options);
    if (!setup.db_cache.empty()) {
      std::string error;
      if (!workload::save_simdb(*db_storage, setup.db_cache, &error)) {
        std::fprintf(stderr, "--db-cache: %s\n", error.c_str());
        return 1;
      }
      std::printf("saved simulation database snapshot to %s\n",
                  setup.db_cache.c_str());
    }
  }
  const workload::SimDb& db = *db_storage;

  const unsigned resolved_threads =
      setup.threads > 0 ? static_cast<unsigned>(setup.threads)
                        : std::max(1u, std::thread::hardware_concurrency());

  if (worker_mode) {
    const std::uint64_t db_fp = workload::simdb_fingerprint(
        db.suite(), db.system(), db.phase_options());
    rmsim::SweepPart part;
    part.fingerprint = rmsim::sweep_fingerprint(setup.grid, options.sim, db_fp);
    part.shape = setup.grid.shape();
    part.shard_index = shard.index;
    part.shard_count = shard.count;
    part.range =
        rmsim::shard_range(setup.grid.size(), shard.index, shard.count);

    std::printf("shard %zu/%zu: sweeping rows [%zu, %zu) of %zu on %u "
                "threads...\n",
                shard.index, shard.count, part.range.begin, part.range.end,
                setup.grid.size(), resolved_threads);
    const auto t_sweep = Clock::now();
    rmsim::SweepRunner runner(db, options);
    std::size_t idle_computations = 0;
    part.rows = runner.run_range(setup.grid, part.range.begin, part.range.end,
                                 &idle_computations);
    const auto t_done = Clock::now();

    std::string error;
    if (!rmsim::save_sweep_part(part, part_output, &error)) {
      std::fprintf(stderr, "--part-output: %s\n", error.c_str());
      return 1;
    }
    std::printf("wrote %zu rows to %s\n", part.rows.size(), part_output.c_str());
    std::printf("idle references simulated: %zu\n", idle_computations);
    std::printf("db %s %.2fs, sweep %.2fs\n", db_cache_hit ? "load" : "build",
                secs(t_db, t_sweep), secs(t_sweep, t_done));
    return 0;
  }

  std::printf("sweeping %zu runs (%zu mixes x %zu policies x %zu models x "
              "%zu alphas) on %u threads...\n",
              setup.grid.size(), setup.grid.mixes.size(),
              setup.grid.policies.size(), setup.grid.models.size(),
              setup.grid.qos_alphas.size(), resolved_threads);
  const auto t_sweep = Clock::now();
  rmsim::SweepRunner runner(db, options);
  const rmsim::SweepResult result = runner.run(setup.grid);
  const auto t_done = Clock::now();

  rmsim::write_rows_csv(result, rows_csv);
  std::printf("wrote %zu rows to %s\n", result.rows.size(), rows_csv.c_str());
  if (!agg_csv.empty()) {
    rmsim::write_aggregates_csv(result, agg_csv);
    std::printf("wrote %zu aggregates to %s\n", result.aggregates.size(),
                agg_csv.c_str());
  }
  if (!report_json.empty() &&
      !write_sweep_report(result, setup.grid.shape(),
                          setup_fingerprint(setup, options), report_json)) {
    return 1;
  }

  print_aggregates(result.aggregates);

  std::printf("\nidle references simulated: %zu (one per mix x alpha)\n",
              result.idle_computations);
  std::printf("db %s %.2fs, sweep %.2fs\n", db_cache_hit ? "load" : "build",
              secs(t_db, t_sweep), secs(t_sweep, t_done));
  return 0;
}
