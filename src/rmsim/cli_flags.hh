// Canonical flag inventories of the four CLI binaries. Each main's strict
// unknown-flag validation builds its known set from the array here, and the
// flag-coverage test (tests/rmsim/test_cli_docs.cc) asserts every entry is
// documented in docs/CLI.md - so adding a flag without documenting it, or
// documenting a flag that does not exist, fails the fast suite.
//
// `--help` is accepted by every binary before validation runs, so it is
// deliberately absent from the per-binary arrays (documented once in
// docs/CLI.md instead).
#ifndef QOSRM_RMSIM_CLI_FLAGS_HH
#define QOSRM_RMSIM_CLI_FLAGS_HH

namespace qosrm::rmsim::cli {

/// sweep_main: the closed 24-mix grid sweep (rmsim/sweep.hh).
inline constexpr const char* kSweepMainFlags[] = {
    "cores",    "replicate", "bw-shares",   "per-scenario", "seed",
    "policies", "models",    "alphas",      "threads",      "rows-csv",
    "agg-csv",  "report-json", "overheads", "db-cache",     "shard",
    "part-output", "workers", "parts-dir",  "resume",       "keep-parts"};

/// service_main: the open-loop colocation service (rmsim/service.hh).
inline constexpr const char* kServiceMainFlags[] = {
    "cores",       "bw-shares",  "arrivals",     "num-arrivals", "load",
    "loads",       "admission",  "policies",     "model",        "alphas",
    "seed",        "demand-min", "demand-max",   "queue-cap",    "threads",
    "rows-csv",    "report-json", "knee-report", "knee-threshold",
    "knee-csv-prefix", "db-cache", "shard",      "part-output",
    "workers",     "parts-dir",  "resume",       "keep-parts"};

/// sweep_merge: part-file merge and inspection (rmsim/shard.hh).
inline constexpr const char* kSweepMergeFlags[] = {"rows-csv", "agg-csv",
                                                  "list"};

/// report_main: figure reports from part files (rmsim/report.hh). "help" is
/// listed here (unlike the others) because report_main routes validation
/// through parse_report_cli, which sees the full flag list.
inline constexpr const char* kReportMainFlags[] = {
    "json", "fig6-csv", "fig7-csv", "fig9-csv",
    "alphas", "fingerprint", "print", "help"};

}  // namespace qosrm::rmsim::cli

#endif  // QOSRM_RMSIM_CLI_FLAGS_HH
