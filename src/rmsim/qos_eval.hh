// QoS-violation evaluation (paper Section IV-D.2, Figures 7 and 8).
//
// Sweeps all phases of all applications, all possible CURRENT settings and
// all possible TARGET settings. A (phase, current, target) case is a
// violation iff
//   1. actual:    T_act(target) >  T_act(baseline)        (ground truth)
//   2. predicted: T_pred(target) <= T_pred(baseline)      (model says OK)
// and the target is selectable by the RM (the paper assumes every current
// setting and every predicted-OK target is equally likely).
//
// Reported per model: the violation probability (violating mass over
// selectable mass), the expected violation magnitude (Eq. 6) and its
// standard deviation, plus the magnitude histogram of Fig. 8.
#ifndef QOSRM_RMSIM_QOS_EVAL_HH
#define QOSRM_RMSIM_QOS_EVAL_HH

#include <vector>

#include "common/histogram.hh"
#include "rm/perf_model.hh"
#include "workload/sim_db.hh"

namespace qosrm::rmsim {

struct QosEvalOptions {
  /// Restrict the current-setting sweep to every n-th VF point (1 = all).
  /// Predictions scale smoothly with f, so coarser sampling changes nothing
  /// qualitatively but speeds up exploratory runs.
  int current_f_stride = 1;
  double histogram_max = 0.5;  ///< Fig. 8 x-axis upper bound (50% violation)
  int histogram_bins = 20;
  double actual_epsilon = 1e-9;  ///< strict ">" comparison guard
};

struct QosEvalResult {
  rm::PerfModelKind model = rm::PerfModelKind::Model3;
  double violation_probability = 0.0;  ///< P(actual worse | predicted OK)
  double expected_violation = 0.0;     ///< E[Eq. 6 | violation]
  double violation_stddev = 0.0;
  double selectable_mass = 0.0;        ///< total weight of predicted-OK cases
  double violating_mass = 0.0;
  Histogram histogram{0.0, 0.5, 20};
};

class QosEvaluator {
 public:
  QosEvaluator(const workload::SimDb& db, const QosEvalOptions& options = {});

  /// Runs the sweep for one model.
  [[nodiscard]] QosEvalResult evaluate(rm::PerfModelKind model) const;

  /// Runs the sweep for several models (shared precomputation).
  [[nodiscard]] std::vector<QosEvalResult> evaluate_all(
      const std::vector<rm::PerfModelKind>& models) const;

 private:
  const workload::SimDb* db_;
  QosEvalOptions opt_;
};

}  // namespace qosrm::rmsim

#endif  // QOSRM_RMSIM_QOS_EVAL_HH
