#include "rmsim/qos_eval.hh"

#include <algorithm>
#include <cmath>
#include <span>

#include "arch/dvfs.hh"
#include "common/check.hh"
#include "common/stats.hh"
#include "rmsim/snapshot.hh"

namespace qosrm::rmsim {

QosEvaluator::QosEvaluator(const workload::SimDb& db, const QosEvalOptions& options)
    : db_(&db), opt_(options) {
  QOSRM_CHECK(opt_.current_f_stride >= 1);
}

QosEvalResult QosEvaluator::evaluate(rm::PerfModelKind model) const {
  return evaluate_all({model}).front();
}

std::vector<QosEvalResult> QosEvaluator::evaluate_all(
    const std::vector<rm::PerfModelKind>& models) const {
  const workload::SimDb& db = *db_;
  const arch::SystemConfig& sys = db.system();
  const workload::Setting base = workload::baseline_setting(sys);

  std::vector<QosEvalResult> results;
  std::vector<WeightedStats> magnitude(models.size());
  for (const rm::PerfModelKind m : models) {
    QosEvalResult r;
    r.model = m;
    r.histogram = Histogram(0.0, opt_.histogram_max,
                            static_cast<std::size_t>(opt_.histogram_bins));
    results.push_back(std::move(r));
  }

  std::vector<rm::PerfModel> perf;
  perf.reserve(models.size());
  for (const rm::PerfModelKind m : models) perf.emplace_back(m, sys);

  // Enumerate all settings once. The model-accuracy sweep covers the
  // (c, f, w) space at the baseline bandwidth share (the only share in the
  // degenerate config): the bandwidth knob enters the models through the
  // same scaled-latency term as the ground truth, so its accuracy is pinned
  // by the baseline row.
  std::vector<workload::Setting> settings;
  for (const arch::CoreSize c : arch::kAllCoreSizes) {
    for (int f = 0; f < arch::VfTable::kNumPoints; ++f) {
      for (int w = sys.llc.min_ways; w <= sys.llc.max_ways; ++w) {
        settings.push_back({c, f, w, base.b});
      }
    }
  }

  const int n_apps = db.suite().size();
  // Reused across the (app, phase, current) sweep; make_snapshot_into keeps
  // the ATD buffer capacity, so the quadratic loop below stays heap-free.
  rm::CounterSnapshot snap;
  for (int app = 0; app < n_apps; ++app) {
    const double app_weight = 1.0 / static_cast<double>(n_apps);
    for (int phase = 0; phase < db.num_phases(app); ++phase) {
      const double phase_weight =
          db.suite().app(app).phases[static_cast<std::size_t>(phase)].weight *
          app_weight;

      // Ground-truth times of this phase at every setting (and baseline).
      // Settings are enumerated (c, f, w)-major above, so each (c, f) block
      // is one contiguous SoA row read.
      std::vector<double> t_act(settings.size());
      std::size_t s = 0;
      for (const arch::CoreSize c : arch::kAllCoreSizes) {
        for (int f = 0; f < arch::VfTable::kNumPoints; ++f) {
          const std::span<const double> row =
              db.total_seconds_row(app, phase, c, f, base.b);
          for (int w = sys.llc.min_ways; w <= sys.llc.max_ways; ++w, ++s) {
            const int wc = std::clamp(w, 1, static_cast<int>(row.size()));
            t_act[s] = row[static_cast<std::size_t>(wc - 1)];
          }
        }
      }
      QOSRM_CHECK(s == settings.size());
      const double t_act_base = db.total_seconds(app, phase, base);

      for (std::size_t cur = 0; cur < settings.size(); ++cur) {
        if (settings[cur].f_idx % opt_.current_f_stride != 0) continue;
        // Counters this phase would produce at the current setting. The
        // perfect model is exact by construction and is evaluated in Fig. 9
        // instead, so the oracle ref is not needed here.
        make_snapshot_into(db, app, phase, settings[cur], -1, snap);

        for (std::size_t m = 0; m < models.size(); ++m) {
          const double t_pred_base =
              perf[m].predict_time(snap, base) * sys.qos_alpha;
          for (std::size_t tgt = 0; tgt < settings.size(); ++tgt) {
            const double t_pred = perf[m].predict_time(snap, settings[tgt]);
            if (t_pred > t_pred_base) continue;  // RM would never select it
            results[m].selectable_mass += phase_weight;
            if (t_act[tgt] > t_act_base * (1.0 + opt_.actual_epsilon)) {
              results[m].violating_mass += phase_weight;
              const double v = (t_act[tgt] - t_act_base) / t_act_base;  // Eq. 6
              magnitude[m].add(v, phase_weight);
              results[m].histogram.add(v, phase_weight);
            }
          }
        }
      }
    }
  }

  for (std::size_t m = 0; m < models.size(); ++m) {
    QosEvalResult& r = results[m];
    r.violation_probability =
        r.selectable_mass > 0.0 ? r.violating_mass / r.selectable_mass : 0.0;
    r.expected_violation = magnitude[m].mean();
    r.violation_stddev = magnitude[m].stddev();
  }
  return results;
}

}  // namespace qosrm::rmsim
