// Parallel policy-sweep subsystem.
//
// Expands a {RmPolicy x PerfModelKind x qos_alpha} x WorkloadMix grid and
// shards the runs across a ThreadPool. Rows land at fixed grid positions, so
// the output is byte-identical regardless of thread count. Each workload's
// idle-RM reference is simulated exactly once per qos_alpha thanks to the
// compute-once cache inside ExperimentRunner (one runner per alpha, shared
// by all worker threads).
#ifndef QOSRM_RMSIM_SWEEP_HH
#define QOSRM_RMSIM_SWEEP_HH

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "rmsim/experiment.hh"

namespace qosrm::rmsim {

/// Extent of an expanded grid along each axis. Together with the grid's row
/// order (alpha-major, mix-minor) this is enough to recompute aggregates
/// from a flat row vector, so mergers of sharded sweeps don't need the grid
/// itself.
struct GridShape {
  std::size_t mixes = 0;
  std::size_t policies = 0;
  std::size_t models = 0;
  std::size_t alphas = 0;

  [[nodiscard]] std::size_t size() const noexcept {
    return mixes * policies * models * alphas;
  }
  bool operator==(const GridShape&) const = default;
};

/// The grid to expand. Every combination of (alpha, model, policy, mix) is
/// one run; the row order is alpha-major, mix-minor.
struct SweepGrid {
  std::vector<workload::WorkloadMix> mixes;
  std::vector<rm::RmPolicy> policies = {rm::RmPolicy::Idle, rm::RmPolicy::Rm1,
                                        rm::RmPolicy::Rm2, rm::RmPolicy::Rm3};
  std::vector<rm::PerfModelKind> models = {rm::PerfModelKind::Model3};
  /// QoS relaxation values; 0.0 keeps the database system's qos_alpha
  /// (see SimOptions::qos_alpha_override).
  std::vector<double> qos_alphas = {0.0};

  [[nodiscard]] GridShape shape() const noexcept {
    return {mixes.size(), policies.size(), models.size(), qos_alphas.size()};
  }
  [[nodiscard]] std::size_t size() const noexcept { return shape().size(); }
};

struct SweepOptions {
  int threads = 0;   ///< sweep parallelism; 0 = hardware concurrency
  SimOptions sim{};  ///< base simulator options (qos_alpha_override is
                     ///< replaced per grid point)
};

/// One grid point's outcome.
struct SweepRow {
  std::string workload;
  workload::Scenario scenario = workload::Scenario::One;
  rm::RmPolicy policy = rm::RmPolicy::Idle;
  rm::PerfModelKind model = rm::PerfModelKind::Model3;
  double qos_alpha = 0.0;
  SavingsResult result;
};

/// Aggregate over all mixes of one (policy, model, alpha) configuration.
struct SweepAggregate {
  rm::RmPolicy policy = rm::RmPolicy::Idle;
  rm::PerfModelKind model = rm::PerfModelKind::Model3;
  double qos_alpha = 0.0;
  double weighted_savings = 0.0;  ///< scenario-weighted (paper Fig. 6 style)
  double mean_savings = 0.0;      ///< uniform mean over mixes
  double mean_violation_rate = 0.0;
};

struct SweepResult {
  /// Grid order (deterministic, independent of thread count).
  std::vector<SweepRow> rows;
  std::vector<SweepAggregate> aggregates;
  /// Idle-reference simulations actually executed; equals
  /// mixes.size() * qos_alphas.size() when nothing was cached beforehand.
  std::size_t idle_computations = 0;
};

class SweepRunner {
 public:
  SweepRunner(const workload::SimDb& db, const SweepOptions& options = {});

  /// Expands and executes the grid on `options.threads` workers.
  [[nodiscard]] SweepResult run(const SweepGrid& grid);

  /// Executes only rows [begin, end) of the expanded grid, in grid row
  /// order - the shard-worker primitive. The returned rows are bit-identical
  /// to the same slice of run().rows for any thread count. `idle_computations`
  /// (optional) receives the number of idle references actually simulated.
  [[nodiscard]] std::vector<SweepRow> run_range(
      const SweepGrid& grid, std::size_t begin, std::size_t end,
      std::size_t* idle_computations = nullptr);

 private:
  const workload::SimDb* db_;
  SweepOptions opt_;
};

/// Recomputes the per-(policy, model, alpha) aggregates from a flat row
/// vector in grid order. The policy/model/alpha labels are taken from the
/// rows themselves, so a merger needs only the rows plus the shape (and the
/// suite's scenario weights). run() uses this same function.
[[nodiscard]] std::vector<SweepAggregate> compute_aggregates(
    const std::vector<SweepRow>& rows, const GridShape& shape,
    const std::array<double, 4>& weights);

/// Writes one CSV row per grid point (stable column set and formatting, so
/// equal results produce byte-identical files). The file is committed
/// atomically (tmp + rename): an interrupted run never leaves a truncated
/// CSV behind.
void write_rows_csv(const SweepResult& result, const std::string& path);

/// Writes one CSV row per (policy, model, alpha) aggregate. Atomic like
/// write_rows_csv.
void write_aggregates_csv(const SweepResult& result, const std::string& path);

/// Parses comma-separated policy names ("idle,rm1,rm2,rm3,ucp,fcp,classpart");
/// aborts on an
/// unknown name, an empty list or an empty CSV entry ("rm1," / ",rm1") -
/// either would silently sweep a zero-row or shortened grid. Used by the
/// sweep CLI and handy for tests.
[[nodiscard]] std::vector<rm::RmPolicy> parse_policies(const std::string& spec);

/// Parses comma-separated model names ("model1,model2,model3,perfect").
/// Same strictness as parse_policies (empty lists/entries abort).
[[nodiscard]] std::vector<rm::PerfModelKind> parse_models(const std::string& spec);

/// Parses comma-separated doubles ("0,1.05,1.1"). Same strictness as
/// parse_policies (empty lists/entries abort).
[[nodiscard]] std::vector<double> parse_alphas(const std::string& spec);

/// Non-aborting form of parse_alphas, for CLIs that report the error
/// themselves (report_main): comma-separated finite values >= 0. False +
/// *error naming the offending entry on any malformed value, empty list or
/// empty CSV entry.
bool try_parse_alphas(const std::string& spec, std::vector<double>* out,
                      std::string* error);

}  // namespace qosrm::rmsim

#endif  // QOSRM_RMSIM_SWEEP_HH
