#include "rmsim/snapshot.hh"

#include "arch/dvfs.hh"
#include "power/energy_meter.hh"

namespace qosrm::rmsim {

void make_snapshot_into(const workload::SimDb& db, int app, int phase,
                        const workload::Setting& current, int oracle_phase,
                        rm::CounterSnapshot& out) {
  const workload::PhaseStats& st = db.stats(app, phase);
  const arch::IntervalTiming timing = db.timing(app, phase, current);
  const double f_hz = arch::VfTable::frequency_hz(current.f_idx);

  out.current = current;
  out.instructions = st.interval_instructions;
  out.total_time_s = timing.total_seconds;
  out.t_width_s = timing.width_cycles / f_hz;
  out.t_ilp_s = timing.ilp_cycles / f_hz;
  out.t_branch_s = timing.branch_cycles / f_hz;
  out.t_cache_s = timing.cache_cycles / f_hz;
  out.t_mem_s = timing.mem_seconds;
  out.llc_accesses = st.llc_accesses;
  out.llc_misses = st.misses[static_cast<std::size_t>(current.w - 1)];
  out.writebacks = st.writebacks(current.w);
  out.measured_mlp = st.mlp_true(current.c, current.w);
  // assign() reuses the capacity of the caller's vectors.
  out.atd_misses.assign(st.misses.begin(), st.misses.end());
  for (std::size_t i = 0; i < out.atd_leading_misses.size(); ++i) {
    out.atd_leading_misses[i].assign(st.lm_atd[i].begin(), st.lm_atd[i].end());
  }

  // RAPL-like dynamic power sample from the measured interval.
  out.power_sample = power::sample_interval(
      db.power(), current.c, arch::VfTable::point(current.f_idx),
      db.core_joules(app, phase, current), timing.total_seconds);

  out.oracle = oracle_phase >= 0 ? rm::OracleRef{&db, app, oracle_phase}
                                 : rm::OracleRef{};

  // Memo identity: every refresh restamps the key, so a stale outcome can
  // never be served for counters the snapshot no longer holds.
  out.memo_key = db.interval_key(app, phase, current);
  out.memo_space = db.interval_key_space();
  out.memo_db = &db;
}

rm::CounterSnapshot make_snapshot(const workload::SimDb& db, int app, int phase,
                                  const workload::Setting& current,
                                  int oracle_phase) {
  rm::CounterSnapshot snap;
  make_snapshot_into(db, app, phase, current, oracle_phase, snap);
  return snap;
}

}  // namespace qosrm::rmsim
