#include "rmsim/snapshot.hh"

#include "arch/dvfs.hh"
#include "power/energy_meter.hh"

namespace qosrm::rmsim {

rm::CounterSnapshot make_snapshot(const workload::SimDb& db, int app, int phase,
                                  const workload::Setting& current,
                                  int oracle_phase) {
  const workload::PhaseStats& st = db.stats(app, phase);
  const arch::IntervalTiming timing = db.timing(app, phase, current);
  const double f_hz = arch::VfTable::frequency_hz(current.f_idx);

  rm::CounterSnapshot snap;
  snap.current = current;
  snap.instructions = st.interval_instructions;
  snap.total_time_s = timing.total_seconds;
  snap.t_width_s = timing.width_cycles / f_hz;
  snap.t_ilp_s = timing.ilp_cycles / f_hz;
  snap.t_branch_s = timing.branch_cycles / f_hz;
  snap.t_cache_s = timing.cache_cycles / f_hz;
  snap.t_mem_s = timing.mem_seconds;
  snap.llc_accesses = st.llc_accesses;
  snap.llc_misses = st.misses[static_cast<std::size_t>(current.w - 1)];
  snap.writebacks = st.writebacks(current.w);
  snap.measured_mlp = st.mlp_true(current.c, current.w);
  snap.atd_misses = st.misses;
  snap.atd_leading_misses = st.lm_atd;

  // RAPL-like dynamic power sample from the measured interval.
  power::EnergyMeter meter(db.power());
  const power::IntervalEnergy e = db.energy(app, phase, current);
  meter.record_interval(current.c, arch::VfTable::point(current.f_idx), e.core_j(),
                        timing.total_seconds);
  snap.power_sample = meter.sample();

  if (oracle_phase >= 0) {
    snap.oracle.db = &db;
    snap.oracle.app = app;
    snap.oracle.phase = oracle_phase;
  }
  return snap;
}

}  // namespace qosrm::rmsim
