// sweep_merge - merges sweep part files written by sweep_main --shard
// workers into the same CSVs a single-process sweep would have produced.
//
//   sweep_merge --rows-csv=sweep_rows.csv [--agg-csv=sweep_agg.csv]
//       rows.0-of-4.qospart rows.1-of-4.qospart ...
//
// The parts must form exactly one complete sweep: same fingerprint (grid,
// simulator options and simulation-database identity), same shape and shard
// count, every shard present once, ranges tiling the grid with no gap or
// overlap, and a valid checksum on every file. Anything else is a hard
// error naming the offending part - a corrupt or foreign part is never
// silently merged. On success the rows CSV is byte-identical to the
// single-process sweep_main output for the same grid.
#include <cstdio>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "rmsim/cli_flags.hh"
#include "rmsim/shard.hh"
#include "rmsim/sweep.hh"

namespace {

void print_usage() {
  std::puts(
      "sweep_merge: merge sweep_main --shard part files into CSV\n"
      "  usage: sweep_merge [flags] PART.qospart...\n"
      "  --rows-csv=PATH    merged per-run CSV output (default sweep_rows.csv)\n"
      "  --agg-csv=PATH     per-configuration CSV output (optional)\n"
      "  --list             print each part's header and exit (no merge)");
}

}  // namespace

int main(int argc, char** argv) {
  namespace rmsim = qosrm::rmsim;
  const qosrm::CliArgs args(argc, argv, {"help", "list"});
  if (args.has("help")) {
    print_usage();
    return 0;
  }

  static const std::set<std::string> kKnownFlags(
      std::begin(rmsim::cli::kSweepMergeFlags),
      std::end(rmsim::cli::kSweepMergeFlags));
  for (const std::string& flag : args.flag_names()) {
    if (!kKnownFlags.count(flag)) {
      std::fprintf(stderr, "unknown flag --%s (see --help)\n", flag.c_str());
      return 1;
    }
  }
  // A bare "--list part.qospart..." swallows the first part path as the
  // flag's value (CliArgs space form); recognize that and put the path back
  // where it belongs instead of silently merging one part short.
  bool list_mode = false;
  std::vector<std::string> part_paths = args.positional();
  if (args.has("list")) {
    const std::string value = args.get("list", "true");
    if (value == "false" || value == "0" || value == "no") {
      list_mode = false;
    } else {
      list_mode = true;
      if (value != "true" && value != "1" && value != "yes") {
        part_paths.insert(part_paths.begin(), value);
      }
    }
  }
  if (part_paths.empty()) {
    std::fprintf(stderr, "no part files given (see --help)\n");
    return 1;
  }

  if (list_mode) {
    for (const std::string& path : part_paths) {
      std::string error;
      const std::optional<rmsim::SweepPart> part =
          rmsim::load_sweep_part(path, &error);
      if (!part.has_value()) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
      }
      std::printf("%s: shard %zu/%zu rows [%zu, %zu) of %zu, fingerprint "
                  "%016llx\n",
                  path.c_str(), part->shard_index, part->shard_count,
                  part->range.begin, part->range.end, part->shape.size(),
                  static_cast<unsigned long long>(part->fingerprint));
    }
    return 0;
  }

  std::string error;
  const std::optional<rmsim::SweepResult> merged =
      rmsim::merge_part_files(part_paths, nullptr, &error);
  if (!merged.has_value()) {
    std::fprintf(stderr, "merge: %s\n", error.c_str());
    return 1;
  }
  const rmsim::SweepResult& result = *merged;

  const std::string rows_csv = args.get("rows-csv", "sweep_rows.csv");
  const std::string agg_csv = args.get("agg-csv", "");
  rmsim::write_rows_csv(result, rows_csv);
  std::printf("merged %zu parts: wrote %zu rows to %s\n", part_paths.size(),
              result.rows.size(), rows_csv.c_str());
  if (!agg_csv.empty()) {
    rmsim::write_aggregates_csv(result, agg_csv);
    std::printf("wrote %zu aggregates to %s\n", result.aggregates.size(),
                agg_csv.c_str());
  }
  return 0;
}
