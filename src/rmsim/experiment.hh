// Experiment harness shared by the benches reproducing Figures 2, 6 and 9:
// runs workload mixes under several RM configurations and reports energy
// savings relative to the idle RM (cached per workload).
#ifndef QOSRM_RMSIM_EXPERIMENT_HH
#define QOSRM_RMSIM_EXPERIMENT_HH

#include <map>
#include <string>
#include <vector>

#include "rmsim/interval_sim.hh"

namespace qosrm::rmsim {

/// One bar of Fig. 6 / Fig. 9: a workload run under a specific RM config.
struct SavingsResult {
  RunResult run;
  double savings = 0.0;  ///< vs the idle RM on the same workload
};

class ExperimentRunner {
 public:
  ExperimentRunner(const workload::SimDb& db, const SimOptions& sim = {});

  /// Runs `mix` under `config` and computes savings vs the idle reference
  /// (computed once per workload and cached).
  [[nodiscard]] SavingsResult run(const workload::WorkloadMix& mix,
                                  const rm::RmConfig& config);

  /// The idle-RM reference run for a workload.
  [[nodiscard]] const RunResult& idle_reference(const workload::WorkloadMix& mix);

  [[nodiscard]] const workload::SimDb& db() const noexcept { return *db_; }

 private:
  const workload::SimDb* db_;
  IntervalSimulator sim_;
  std::map<std::string, RunResult> idle_cache_;
};

/// Scenario weights for averaging (paper: 47 / 22.1 / 22.1 / 8.8 %), derived
/// from the suite's category populations via the Fig. 1 mix table.
[[nodiscard]] std::array<double, 4> scenario_weights(const workload::SpecSuite& suite);

/// Weighted average over per-workload savings: workloads of one scenario are
/// first averaged uniformly, then scenarios combine with `weights`.
[[nodiscard]] double weighted_average_savings(
    const std::vector<workload::Scenario>& scenario_of_row,
    const std::vector<double>& savings, const std::array<double, 4>& weights);

}  // namespace qosrm::rmsim

#endif  // QOSRM_RMSIM_EXPERIMENT_HH
