// Experiment harness shared by the benches reproducing Figures 2, 6 and 9:
// runs workload mixes under several RM configurations and reports energy
// savings relative to the idle RM (cached per workload).
#ifndef QOSRM_RMSIM_EXPERIMENT_HH
#define QOSRM_RMSIM_EXPERIMENT_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/once_cache.hh"
#include "rmsim/interval_sim.hh"

namespace qosrm::rmsim {

/// One bar of Fig. 6 / Fig. 9: a workload run under a specific RM config.
struct SavingsResult {
  RunResult run;
  double savings = 0.0;  ///< vs the idle RM on the same workload
};

/// Thread-safe: run() and idle_reference() may be called concurrently from
/// any number of threads (the sweep subsystem shards a policy grid over one
/// runner). Idle references are materialized through a compute-once cache,
/// so each workload's reference is simulated exactly once per runner.
class ExperimentRunner {
 public:
  ExperimentRunner(const workload::SimDb& db, const SimOptions& sim = {});

  /// Runs `mix` under `config` and computes savings vs the idle reference
  /// (computed once per workload and cached). An Idle-policy config reuses
  /// the reference run itself instead of re-simulating. `scratch` (optional)
  /// lets a worker thread reuse simulation buffers across rows; it must not
  /// be shared between threads.
  [[nodiscard]] SavingsResult run(const workload::WorkloadMix& mix,
                                  const rm::RmConfig& config,
                                  RunScratch* scratch = nullptr);

  /// The idle-RM reference run for a workload.
  [[nodiscard]] const RunResult& idle_reference(const workload::WorkloadMix& mix,
                                                RunScratch* scratch = nullptr);

  /// Number of idle-reference simulations actually executed so far (at most
  /// one per distinct workload, however many threads race on it).
  [[nodiscard]] std::size_t idle_computations() const noexcept {
    return idle_cache_.computations();
  }

  [[nodiscard]] const workload::SimDb& db() const noexcept { return *db_; }

 private:
  const workload::SimDb* db_;
  IntervalSimulator sim_;
  OnceCache<std::string, RunResult> idle_cache_;
};

/// Scenario weights for averaging (paper: 47 / 22.1 / 22.1 / 8.8 %), derived
/// from the suite's category populations via the Fig. 1 mix table.
[[nodiscard]] std::array<double, 4> scenario_weights(const workload::SpecSuite& suite);

/// Weighted average over per-workload savings: workloads of one scenario are
/// first averaged uniformly, then scenarios combine with `weights`.
[[nodiscard]] double weighted_average_savings(
    const std::vector<workload::Scenario>& scenario_of_row,
    const std::vector<double>& savings, const std::array<double, 4>& weights);

}  // namespace qosrm::rmsim

#endif  // QOSRM_RMSIM_EXPERIMENT_HH
