#include "rmsim/report.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <set>

#include "common/check.hh"
#include "common/csv.hh"
#include "common/file_util.hh"
#include "common/str.hh"
#include "rm/perf_model.hh"
#include "rmsim/cli_flags.hh"

namespace qosrm::rmsim {

namespace {

/// Full-precision double formatting so equal reports yield byte-identical
/// files (same convention as the sweep CSV writers).
std::string fmtd(double v) { return format("%.17g", v); }

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += ch;
    }
  }
  return out;
}

std::string config_prefix(rm::RmPolicy policy, rm::PerfModelKind model,
                          double alpha) {
  return format("{\"policy\": \"%s\", \"model\": \"%s\", \"alpha\": %s",
                rm::rm_policy_name(policy), rm::perf_model_name(model),
                fmtd(alpha).c_str());
}

/// Index of the fig6/fig7 entry of configuration (ai, ki, pi): the entries
/// are emitted alpha-major, model, then policy.
std::size_t config_index(const GridShape& shape, std::size_t ai,
                         std::size_t ki, std::size_t pi) {
  return pi + shape.policies * (ki + shape.models * ai);
}

bool write_csv_atomic(const std::string& path,
                      const std::vector<std::string>& header,
                      const std::vector<std::vector<std::string>>& rows,
                      std::string* error) {
  try {
    CsvWriter csv(path, header);
    for (const std::vector<std::string>& row : rows) csv.add_row(row);
    csv.close();
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
  return true;
}

}  // namespace

FigureReport build_figure_report(const std::vector<SweepRow>& rows,
                                 const GridShape& shape,
                                 std::uint64_t fingerprint,
                                 const std::array<double, 4>& weights) {
  QOSRM_CHECK_MSG(shape.size() > 0, "figure report needs a non-empty grid");
  QOSRM_CHECK_MSG(rows.size() == shape.size(),
                  "figure report row count does not match the grid shape");
  const std::size_t n_mix = shape.mixes;
  const std::size_t n_pol = shape.policies;
  const std::size_t n_mod = shape.models;

  FigureReport report;
  report.fingerprint = fingerprint;
  report.shape = shape;
  report.scenario_weights = weights;

  // The axes are recoverable from the rows because the grid order is fixed
  // (alpha-major, mix-minor) - the same invariant compute_aggregates uses.
  for (std::size_t mi = 0; mi < n_mix; ++mi) {
    report.workloads.push_back(rows[mi].workload);
    report.scenarios.push_back(rows[mi].scenario);
  }
  for (std::size_t pi = 0; pi < n_pol; ++pi) {
    report.policies.push_back(rows[n_mix * pi].policy);
  }
  for (std::size_t ki = 0; ki < n_mod; ++ki) {
    report.models.push_back(rows[n_mix * n_pol * ki].model);
  }
  for (std::size_t ai = 0; ai < shape.alphas; ++ai) {
    report.qos_alphas.push_back(rows[n_mix * n_pol * n_mod * ai].qos_alpha);
  }

  std::vector<workload::Scenario> scenarios;
  std::vector<double> savings;
  scenarios.reserve(n_mix);
  savings.reserve(n_mix);
  for (std::size_t ai = 0; ai < shape.alphas; ++ai) {
    for (std::size_t ki = 0; ki < n_mod; ++ki) {
      for (std::size_t pi = 0; pi < n_pol; ++pi) {
        scenarios.clear();
        savings.clear();

        Fig6Entry e6;
        Fig7Entry e7;
        const std::size_t block = n_mix * (pi + n_pol * (ki + n_mod * ai));
        e6.policy = e7.policy = rows[block].policy;
        e6.model = e7.model = rows[block].model;
        e6.qos_alpha = e7.qos_alpha = rows[block].qos_alpha;

        std::array<double, 4> scenario_sum{};
        std::array<std::size_t, 4> scenario_count{};
        double rate_sum = 0.0;
        double magnitude_sum = 0.0;
        e6.max_savings = -std::numeric_limits<double>::infinity();
        for (std::size_t mi = 0; mi < n_mix; ++mi) {
          const SweepRow& row = rows[block + mi];
          const RunResult& run = row.result.run;
          scenarios.push_back(row.scenario);
          savings.push_back(row.result.savings);
          const auto s =
              static_cast<std::size_t>(static_cast<int>(row.scenario) - 1);
          scenario_sum[s] += row.result.savings;
          ++scenario_count[s];
          e6.mean_savings += row.result.savings;
          e6.max_savings = std::max(e6.max_savings, row.result.savings);
          e6.per_mix_savings.push_back(row.result.savings);

          e7.intervals += run.total_intervals();
          const std::uint64_t mix_violations = run.total_violations();
          e7.violations += mix_violations;
          if (mix_violations > 0) ++e7.violating_mixes;
          rate_sum += run.violation_rate();
          for (const CoreResult& core : run.cores) {
            magnitude_sum += core.violation_sum;
            e7.max_magnitude = std::max(e7.max_magnitude, core.violation_max);
          }
        }
        e6.weighted_savings =
            weighted_average_savings(scenarios, savings, weights);
        e6.mean_savings /= static_cast<double>(n_mix);
        for (std::size_t s = 0; s < 4; ++s) {
          e6.scenario_mean_savings[s] =
              scenario_count[s] > 0
                  ? scenario_sum[s] / static_cast<double>(scenario_count[s])
                  : 0.0;
        }
        e7.violation_rate =
            e7.intervals > 0
                ? static_cast<double>(e7.violations) /
                      static_cast<double>(e7.intervals)
                : 0.0;
        e7.mean_violation_rate = rate_sum / static_cast<double>(n_mix);
        e7.mean_magnitude =
            e7.violations > 0
                ? magnitude_sum / static_cast<double>(e7.violations)
                : 0.0;

        report.fig6.push_back(std::move(e6));
        report.fig7.push_back(std::move(e7));
      }
    }
  }

  // Fig. 9 needs the Perfect oracle on the model axis; without it the
  // section stays empty (the JSON still carries the empty array, so a
  // consumer can tell "not applicable" from "file truncated").
  const auto oracle_it = std::find(report.models.begin(), report.models.end(),
                                   rm::PerfModelKind::Perfect);
  if (oracle_it != report.models.end()) {
    const auto ko =
        static_cast<std::size_t>(oracle_it - report.models.begin());
    for (std::size_t ai = 0; ai < shape.alphas; ++ai) {
      for (std::size_t ki = 0; ki < n_mod; ++ki) {
        if (ki == ko) continue;
        for (std::size_t pi = 0; pi < n_pol; ++pi) {
          const Fig6Entry& model6 = report.fig6[config_index(shape, ai, ki, pi)];
          const Fig6Entry& oracle6 = report.fig6[config_index(shape, ai, ko, pi)];
          const Fig7Entry& model7 = report.fig7[config_index(shape, ai, ki, pi)];
          const Fig7Entry& oracle7 = report.fig7[config_index(shape, ai, ko, pi)];
          Fig9Entry e9;
          e9.policy = model6.policy;
          e9.model = model6.model;
          e9.qos_alpha = model6.qos_alpha;
          e9.weighted_savings = model6.weighted_savings;
          e9.oracle_weighted_savings = oracle6.weighted_savings;
          e9.weighted_gap = oracle6.weighted_savings - model6.weighted_savings;
          e9.mean_gap = oracle6.mean_savings - model6.mean_savings;
          e9.violation_rate = model7.violation_rate;
          e9.oracle_violation_rate = oracle7.violation_rate;
          report.fig9.push_back(e9);
        }
      }
    }
  }
  return report;
}

std::optional<std::vector<SweepRow>> filter_rows_to_alphas(
    std::vector<SweepRow> rows, GridShape* shape,
    const std::vector<double>& alphas, std::string* error) {
  const auto fail = [error](std::string message) {
    if (error != nullptr) *error = std::move(message);
    return std::nullopt;
  };
  QOSRM_CHECK_MSG(rows.size() == shape->size(),
                  "alpha filter row count does not match the grid shape");
  if (alphas.empty()) return rows;

  const std::size_t block_size = shape->mixes * shape->policies * shape->models;
  std::vector<double> axis;
  for (std::size_t ai = 0; ai < shape->alphas; ++ai) {
    axis.push_back(rows[block_size * ai].qos_alpha);
  }

  std::vector<std::size_t> selected;
  for (const double alpha : alphas) {
    const auto it = std::find(axis.begin(), axis.end(), alpha);
    if (it == axis.end()) {
      return fail(format("--alphas value %s is not on the sweep's alpha axis",
                         fmtd(alpha).c_str()));
    }
    const auto ai = static_cast<std::size_t>(it - axis.begin());
    if (std::find(selected.begin(), selected.end(), ai) != selected.end()) {
      return fail(format("--alphas value %s given twice", fmtd(alpha).c_str()));
    }
    selected.push_back(ai);
  }

  std::vector<SweepRow> out;
  out.reserve(block_size * selected.size());
  for (const std::size_t ai : selected) {
    for (std::size_t i = 0; i < block_size; ++i) {
      out.push_back(std::move(rows[block_size * ai + i]));
    }
  }
  shape->alphas = selected.size();
  return out;
}

std::string figure_report_json(const FigureReport& r) {
  std::string o;
  o += "{\n";
  o += "  \"schema\": \"qosrm-figure-report\",\n";
  o += format("  \"version\": %u,\n", kFigureReportVersion);
  o += format("  \"fingerprint\": \"%016llx\",\n",
              static_cast<unsigned long long>(r.fingerprint));
  o += format(
      "  \"grid\": {\"mixes\": %zu, \"policies\": %zu, \"models\": %zu, "
      "\"alphas\": %zu},\n",
      r.shape.mixes, r.shape.policies, r.shape.models, r.shape.alphas);

  o += "  \"scenario_weights\": [";
  for (std::size_t s = 0; s < 4; ++s) {
    if (s > 0) o += ", ";
    o += fmtd(r.scenario_weights[s]);
  }
  o += "],\n";

  o += "  \"workloads\": [\n";
  for (std::size_t mi = 0; mi < r.workloads.size(); ++mi) {
    o += format("    {\"name\": \"%s\", \"scenario\": %d}%s\n",
                json_escape(r.workloads[mi]).c_str(),
                static_cast<int>(r.scenarios[mi]),
                mi + 1 < r.workloads.size() ? "," : "");
  }
  o += "  ],\n";

  o += "  \"policies\": [";
  for (std::size_t pi = 0; pi < r.policies.size(); ++pi) {
    if (pi > 0) o += ", ";
    o += format("\"%s\"", rm::rm_policy_name(r.policies[pi]));
  }
  o += "],\n";
  o += "  \"models\": [";
  for (std::size_t ki = 0; ki < r.models.size(); ++ki) {
    if (ki > 0) o += ", ";
    o += format("\"%s\"", rm::perf_model_name(r.models[ki]));
  }
  o += "],\n";
  o += "  \"alphas\": [";
  for (std::size_t ai = 0; ai < r.qos_alphas.size(); ++ai) {
    if (ai > 0) o += ", ";
    o += fmtd(r.qos_alphas[ai]);
  }
  o += "],\n";

  o += "  \"fig6\": [\n";
  for (std::size_t i = 0; i < r.fig6.size(); ++i) {
    const Fig6Entry& e = r.fig6[i];
    o += "    " + config_prefix(e.policy, e.model, e.qos_alpha);
    o += format(", \"weighted_savings\": %s, \"mean_savings\": %s, "
                "\"max_savings\": %s",
                fmtd(e.weighted_savings).c_str(), fmtd(e.mean_savings).c_str(),
                fmtd(e.max_savings).c_str());
    o += ", \"scenario_mean_savings\": [";
    for (std::size_t s = 0; s < 4; ++s) {
      if (s > 0) o += ", ";
      o += fmtd(e.scenario_mean_savings[s]);
    }
    o += "], \"per_mix_savings\": [";
    for (std::size_t mi = 0; mi < e.per_mix_savings.size(); ++mi) {
      if (mi > 0) o += ", ";
      o += fmtd(e.per_mix_savings[mi]);
    }
    o += format("]}%s\n", i + 1 < r.fig6.size() ? "," : "");
  }
  o += "  ],\n";

  o += "  \"fig7\": [\n";
  for (std::size_t i = 0; i < r.fig7.size(); ++i) {
    const Fig7Entry& e = r.fig7[i];
    o += "    " + config_prefix(e.policy, e.model, e.qos_alpha);
    o += format(", \"intervals\": %llu, \"violations\": %llu, "
                "\"violation_rate\": %s, \"mean_violation_rate\": %s, "
                "\"mean_magnitude\": %s, \"max_magnitude\": %s, "
                "\"violating_mixes\": %zu}%s\n",
                static_cast<unsigned long long>(e.intervals),
                static_cast<unsigned long long>(e.violations),
                fmtd(e.violation_rate).c_str(),
                fmtd(e.mean_violation_rate).c_str(),
                fmtd(e.mean_magnitude).c_str(),
                fmtd(e.max_magnitude).c_str(), e.violating_mixes,
                i + 1 < r.fig7.size() ? "," : "");
  }
  o += "  ],\n";

  o += "  \"fig9\": [\n";
  for (std::size_t i = 0; i < r.fig9.size(); ++i) {
    const Fig9Entry& e = r.fig9[i];
    o += "    " + config_prefix(e.policy, e.model, e.qos_alpha);
    o += format(", \"weighted_savings\": %s, \"oracle_weighted_savings\": %s, "
                "\"weighted_gap\": %s, \"mean_gap\": %s, "
                "\"violation_rate\": %s, \"oracle_violation_rate\": %s}%s\n",
                fmtd(e.weighted_savings).c_str(),
                fmtd(e.oracle_weighted_savings).c_str(),
                fmtd(e.weighted_gap).c_str(), fmtd(e.mean_gap).c_str(),
                fmtd(e.violation_rate).c_str(),
                fmtd(e.oracle_violation_rate).c_str(),
                i + 1 < r.fig9.size() ? "," : "");
  }
  o += "  ]\n";
  o += "}\n";
  return o;
}

bool write_report_json(const FigureReport& report, const std::string& path,
                       std::string* error) {
  return write_file_atomic(path, figure_report_json(report), error);
}

std::string service_report_json(const std::vector<ServiceRow>& rows,
                                const ServiceGridShape& shape,
                                std::uint64_t fingerprint) {
  QOSRM_CHECK_MSG(rows.size() == shape.size(),
                  "service report row count does not match the grid shape");
  std::string o;
  o += "{\n";
  o += "  \"schema\": \"qosrm-service-report\",\n";
  o += format("  \"version\": %u,\n", kServiceReportVersion);
  o += format("  \"fingerprint\": \"%016llx\",\n",
              static_cast<unsigned long long>(fingerprint));
  o += format(
      "  \"grid\": {\"patterns\": %zu, \"loads\": %zu, \"admissions\": %zu, "
      "\"policies\": %zu, \"alphas\": %zu},\n",
      shape.patterns, shape.loads, shape.admissions, shape.policies,
      shape.alphas);

  o += "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ServiceRow& row = rows[i];
    const ServiceMetrics& m = row.metrics;
    o += format("    {\"pattern\": \"%s\", \"load\": %s, "
                "\"admission\": \"%s\", \"policy\": \"%s\", "
                "\"model\": \"%s\", \"alpha\": %s",
                workload::arrival_pattern_name(row.pattern),
                fmtd(row.load).c_str(), admission_policy_name(row.admission),
                rm::rm_policy_name(row.policy),
                rm::perf_model_name(row.model), fmtd(row.qos_alpha).c_str());
    o += format(", \"arrivals\": %llu, \"served\": %llu, \"rejected\": %llu, "
                "\"qos_rejected\": %llu, \"intervals\": %llu, "
                "\"violations\": %llu",
                static_cast<unsigned long long>(m.arrivals),
                static_cast<unsigned long long>(m.served),
                static_cast<unsigned long long>(m.rejected),
                static_cast<unsigned long long>(m.qos_rejected),
                static_cast<unsigned long long>(m.intervals),
                static_cast<unsigned long long>(m.violations));
    o += format(", \"violation_rate\": %s, \"p50_violation\": %s, "
                "\"p95_violation\": %s, \"p99_violation\": %s, "
                "\"max_violation\": %s, \"mean_violation\": %s",
                fmtd(m.violation_rate).c_str(), fmtd(m.p50_violation).c_str(),
                fmtd(m.p95_violation).c_str(), fmtd(m.p99_violation).c_str(),
                fmtd(m.max_violation).c_str(), fmtd(m.mean_violation).c_str());
    o += format(", \"energy_total_j\": %s, \"uncore_energy_j\": %s, "
                "\"energy_per_app_j\": %s",
                fmtd(m.energy_total_j).c_str(),
                fmtd(m.uncore_energy_j).c_str(),
                fmtd(m.energy_per_app_j).c_str());
    o += format(", \"rm_invocations\": %llu, \"rm_ops\": %llu, "
                "\"decisions_per_sec\": %s, \"occupancy\": %s, "
                "\"mean_wait_s\": %s, \"wall_time_s\": %s}%s\n",
                static_cast<unsigned long long>(m.rm_invocations),
                static_cast<unsigned long long>(m.rm_ops),
                fmtd(m.decisions_per_sec).c_str(), fmtd(m.occupancy).c_str(),
                fmtd(m.mean_wait_s).c_str(), fmtd(m.wall_time_s).c_str(),
                i + 1 < rows.size() ? "," : "");
  }
  o += "  ]\n";
  o += "}\n";
  return o;
}

bool write_service_report_json(const std::vector<ServiceRow>& rows,
                               const ServiceGridShape& shape,
                               std::uint64_t fingerprint,
                               const std::string& path, std::string* error) {
  return write_file_atomic(path, service_report_json(rows, shape, fingerprint),
                           error);
}

int find_knee_index(const std::vector<double>& values, double threshold) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] > threshold) return static_cast<int>(i);
  }
  return -1;
}

ServiceKneeReport build_service_knee_report(const std::vector<ServiceRow>& rows,
                                            const ServiceGridShape& shape,
                                            std::uint64_t fingerprint,
                                            double knee_threshold) {
  QOSRM_CHECK_MSG(shape.size() > 0, "knee report needs a non-empty grid");
  QOSRM_CHECK_MSG(rows.size() == shape.size(),
                  "knee report row count does not match the grid shape");

  ServiceKneeReport report;
  report.fingerprint = fingerprint;
  report.shape = shape;
  report.knee_threshold = knee_threshold;

  // One curve per (pattern, admission, policy, alpha); the grid's row order
  // with the load axis folded in. Row index of load li on curve
  // (pi, di, oi, ai) mirrors ServiceGrid::point's decomposition.
  const std::size_t n_curves =
      shape.patterns * shape.admissions * shape.policies * shape.alphas;
  report.curves.reserve(n_curves);
  for (std::size_t c = 0; c < n_curves; ++c) {
    std::size_t rest = c;
    const std::size_t pi = rest % shape.patterns;
    rest /= shape.patterns;
    const std::size_t di = rest % shape.admissions;
    rest /= shape.admissions;
    const std::size_t oi = rest % shape.policies;
    const std::size_t ai = rest / shape.policies;

    KneeCurve curve;
    curve.loads.reserve(shape.loads);
    curve.p99_violation.reserve(shape.loads);
    curve.violation_rate.reserve(shape.loads);
    curve.occupancy.reserve(shape.loads);
    curve.rejected_frac.reserve(shape.loads);
    for (std::size_t li = 0; li < shape.loads; ++li) {
      const std::size_t idx =
          pi + shape.patterns *
                   (li + shape.loads *
                             (di + shape.admissions *
                                       (oi + shape.policies * ai)));
      const ServiceRow& row = rows[idx];
      if (li == 0) {
        curve.pattern = row.pattern;
        curve.admission = row.admission;
        curve.policy = row.policy;
        curve.model = row.model;
        curve.qos_alpha = row.qos_alpha;
      }
      const ServiceMetrics& m = row.metrics;
      curve.loads.push_back(row.load);
      curve.p99_violation.push_back(m.p99_violation);
      curve.violation_rate.push_back(m.violation_rate);
      curve.occupancy.push_back(m.occupancy);
      curve.rejected_frac.push_back(
          m.arrivals > 0 ? static_cast<double>(m.rejected) /
                               static_cast<double>(m.arrivals)
                         : 0.0);
    }
    curve.knee_index = find_knee_index(curve.p99_violation, knee_threshold);
    curve.knee_load =
        curve.knee_index >= 0
            ? curve.loads[static_cast<std::size_t>(curve.knee_index)]
            : 0.0;
    report.curves.push_back(std::move(curve));
  }
  return report;
}

std::string service_knee_report_json(const ServiceKneeReport& r) {
  std::string o;
  o += "{\n";
  o += "  \"schema\": \"qosrm-service-knee-report\",\n";
  o += format("  \"version\": %u,\n", kServiceKneeReportVersion);
  o += format("  \"fingerprint\": \"%016llx\",\n",
              static_cast<unsigned long long>(r.fingerprint));
  o += format(
      "  \"grid\": {\"patterns\": %zu, \"loads\": %zu, \"admissions\": %zu, "
      "\"policies\": %zu, \"alphas\": %zu},\n",
      r.shape.patterns, r.shape.loads, r.shape.admissions, r.shape.policies,
      r.shape.alphas);
  o += format("  \"knee_threshold\": %s,\n", fmtd(r.knee_threshold).c_str());

  o += "  \"curves\": [\n";
  for (std::size_t i = 0; i < r.curves.size(); ++i) {
    const KneeCurve& c = r.curves[i];
    o += format("    {\"pattern\": \"%s\", \"admission\": \"%s\", "
                "\"policy\": \"%s\", \"model\": \"%s\", \"alpha\": %s, "
                "\"knee_index\": %d, \"knee_load\": %s, \"points\": [",
                workload::arrival_pattern_name(c.pattern),
                admission_policy_name(c.admission),
                rm::rm_policy_name(c.policy), rm::perf_model_name(c.model),
                fmtd(c.qos_alpha).c_str(), c.knee_index,
                fmtd(c.knee_load).c_str());
    for (std::size_t j = 0; j < c.loads.size(); ++j) {
      o += format("%s{\"load\": %s, \"p99_violation\": %s, "
                  "\"violation_rate\": %s, \"occupancy\": %s, "
                  "\"rejected_frac\": %s}",
                  j > 0 ? ", " : "", fmtd(c.loads[j]).c_str(),
                  fmtd(c.p99_violation[j]).c_str(),
                  fmtd(c.violation_rate[j]).c_str(),
                  fmtd(c.occupancy[j]).c_str(),
                  fmtd(c.rejected_frac[j]).c_str());
    }
    o += format("]}%s\n", i + 1 < r.curves.size() ? "," : "");
  }
  o += "  ]\n";
  o += "}\n";
  return o;
}

bool write_service_knee_report_json(const ServiceKneeReport& report,
                                    const std::string& path,
                                    std::string* error) {
  return write_file_atomic(path, service_knee_report_json(report), error);
}

bool write_knee_curve_csvs(const ServiceKneeReport& report,
                           const std::string& prefix, std::string* error) {
  // Patterns appear in curve order; one CSV per distinct pattern, rows kept
  // in curve order so files are byte-stable for equal reports.
  for (std::size_t pi = 0; pi < report.shape.patterns; ++pi) {
    const workload::ArrivalPattern pattern =
        report.curves[pi].pattern;  // curve order is pattern-minor
    std::vector<std::vector<std::string>> rows;
    for (const KneeCurve& c : report.curves) {
      if (c.pattern != pattern) continue;
      for (std::size_t j = 0; j < c.loads.size(); ++j) {
        rows.push_back(
            {workload::arrival_pattern_name(c.pattern),
             admission_policy_name(c.admission), rm::rm_policy_name(c.policy),
             rm::perf_model_name(c.model), fmtd(c.qos_alpha),
             fmtd(c.loads[j]), fmtd(c.p99_violation[j]),
             fmtd(c.violation_rate[j]), fmtd(c.occupancy[j]),
             fmtd(c.rejected_frac[j]),
             std::to_string(static_cast<int>(j) == c.knee_index ? 1 : 0)});
      }
    }
    const std::string path =
        prefix + workload::arrival_pattern_name(pattern) + ".csv";
    if (!write_csv_atomic(path,
                          {"pattern", "admission", "policy", "model",
                           "qos_alpha", "load", "p99_violation",
                           "violation_rate", "occupancy", "rejected_frac",
                           "is_knee"},
                          rows, error)) {
      return false;
    }
  }
  return true;
}

bool write_fig6_csv(const FigureReport& report, const std::string& path,
                    std::string* error) {
  std::vector<std::vector<std::string>> rows;
  for (const Fig6Entry& e : report.fig6) {
    rows.push_back({rm::rm_policy_name(e.policy), rm::perf_model_name(e.model),
                    fmtd(e.qos_alpha), fmtd(e.weighted_savings),
                    fmtd(e.mean_savings), fmtd(e.max_savings),
                    fmtd(e.scenario_mean_savings[0]),
                    fmtd(e.scenario_mean_savings[1]),
                    fmtd(e.scenario_mean_savings[2]),
                    fmtd(e.scenario_mean_savings[3])});
  }
  return write_csv_atomic(
      path,
      {"policy", "model", "qos_alpha", "weighted_savings", "mean_savings",
       "max_savings", "scenario1_mean", "scenario2_mean", "scenario3_mean",
       "scenario4_mean"},
      rows, error);
}

bool write_fig7_csv(const FigureReport& report, const std::string& path,
                    std::string* error) {
  std::vector<std::vector<std::string>> rows;
  for (const Fig7Entry& e : report.fig7) {
    rows.push_back({rm::rm_policy_name(e.policy), rm::perf_model_name(e.model),
                    fmtd(e.qos_alpha), std::to_string(e.intervals),
                    std::to_string(e.violations), fmtd(e.violation_rate),
                    fmtd(e.mean_violation_rate), fmtd(e.mean_magnitude),
                    fmtd(e.max_magnitude), std::to_string(e.violating_mixes)});
  }
  return write_csv_atomic(
      path,
      {"policy", "model", "qos_alpha", "intervals", "violations",
       "violation_rate", "mean_violation_rate", "mean_magnitude",
       "max_magnitude", "violating_mixes"},
      rows, error);
}

bool write_fig9_csv(const FigureReport& report, const std::string& path,
                    std::string* error) {
  std::vector<std::vector<std::string>> rows;
  for (const Fig9Entry& e : report.fig9) {
    rows.push_back({rm::rm_policy_name(e.policy), rm::perf_model_name(e.model),
                    fmtd(e.qos_alpha), fmtd(e.weighted_savings),
                    fmtd(e.oracle_weighted_savings), fmtd(e.weighted_gap),
                    fmtd(e.mean_gap), fmtd(e.violation_rate),
                    fmtd(e.oracle_violation_rate)});
  }
  return write_csv_atomic(
      path,
      {"policy", "model", "qos_alpha", "weighted_savings",
       "oracle_weighted_savings", "weighted_gap", "mean_gap", "violation_rate",
       "oracle_violation_rate"},
      rows, error);
}

void print_figure_report(const FigureReport& report) {
  std::printf("figure report: fingerprint %016llx, %zu mixes x %zu policies "
              "x %zu models x %zu alphas\n\n",
              static_cast<unsigned long long>(report.fingerprint),
              report.shape.mixes, report.shape.policies, report.shape.models,
              report.shape.alphas);

  AsciiTable fig6({"Policy", "Model", "Alpha", "Weighted", "Mean", "Max",
                   "S1", "S2", "S3", "S4"});
  for (const Fig6Entry& e : report.fig6) {
    fig6.add_row({rm::rm_policy_name(e.policy), rm::perf_model_name(e.model),
                  format("%.4g", e.qos_alpha), AsciiTable::pct(e.weighted_savings),
                  AsciiTable::pct(e.mean_savings), AsciiTable::pct(e.max_savings),
                  AsciiTable::pct(e.scenario_mean_savings[0]),
                  AsciiTable::pct(e.scenario_mean_savings[1]),
                  AsciiTable::pct(e.scenario_mean_savings[2]),
                  AsciiTable::pct(e.scenario_mean_savings[3])});
  }
  std::printf("Fig. 6 - energy savings vs the idle baseline:\n");
  fig6.print();

  AsciiTable fig7({"Policy", "Model", "Alpha", "Violations", "Rate",
                   "Mean magnitude", "Max magnitude", "Violating mixes"});
  for (const Fig7Entry& e : report.fig7) {
    fig7.add_row({rm::rm_policy_name(e.policy), rm::perf_model_name(e.model),
                  format("%.4g", e.qos_alpha), std::to_string(e.violations),
                  AsciiTable::pct(e.violation_rate, 2),
                  AsciiTable::pct(e.mean_magnitude, 2),
                  AsciiTable::pct(e.max_magnitude, 2),
                  std::to_string(e.violating_mixes)});
  }
  std::printf("\nFig. 7 - QoS violations:\n");
  fig7.print();

  if (!report.fig9.empty()) {
    AsciiTable fig9({"Policy", "Model", "Alpha", "Weighted", "Oracle",
                     "Gap", "Viol rate", "Oracle viol"});
    for (const Fig9Entry& e : report.fig9) {
      fig9.add_row({rm::rm_policy_name(e.policy), rm::perf_model_name(e.model),
                    format("%.4g", e.qos_alpha),
                    AsciiTable::pct(e.weighted_savings),
                    AsciiTable::pct(e.oracle_weighted_savings),
                    AsciiTable::pct(e.weighted_gap),
                    AsciiTable::pct(e.violation_rate, 2),
                    AsciiTable::pct(e.oracle_violation_rate, 2)});
    }
    std::printf("\nFig. 9 - online models vs the perfect oracle:\n");
    fig9.print();
  }
}

bool parse_report_cli(const CliArgs& args, ReportCliOptions* out,
                      std::string* error) {
  const auto fail = [error](std::string message) {
    if (error != nullptr) *error = std::move(message);
    return false;
  };

  static const std::set<std::string> kKnownFlags(
      std::begin(cli::kReportMainFlags), std::end(cli::kReportMainFlags));
  for (const std::string& flag : args.flag_names()) {
    if (!kKnownFlags.count(flag)) {
      return fail(format("unknown flag --%s (see --help)", flag.c_str()));
    }
  }

  *out = ReportCliOptions{};
  out->parts = args.positional();

  // A bare "--print part.qospart..." swallows the first part path as the
  // flag's value (CliArgs space form); recognize that and put the path back
  // where it belongs (same quirk handling as sweep_merge --list).
  if (args.has("print")) {
    const std::string value = args.get("print", "true");
    if (value == "false" || value == "0" || value == "no") {
      out->print = false;
    } else {
      out->print = true;
      if (value != "true" && value != "1" && value != "yes") {
        out->parts.insert(out->parts.begin(), value);
      }
    }
  }
  if (out->parts.empty()) return fail("no part files given (see --help)");

  out->json_path = args.get("json", "");
  out->fig6_csv = args.get("fig6-csv", "");
  out->fig7_csv = args.get("fig7-csv", "");
  out->fig9_csv = args.get("fig9-csv", "");
  if (!out->print && out->json_path.empty() && out->fig6_csv.empty() &&
      out->fig7_csv.empty() && out->fig9_csv.empty()) {
    return fail("no output requested (pass --json, --fig6/7/9-csv or "
                "--print; see --help)");
  }

  if (args.has("alphas")) {
    std::string alpha_error;
    // try_parse_alphas rejects empty lists and empty entries itself, so a
    // successful parse always yields at least one value.
    if (!try_parse_alphas(args.get("alphas", ""), &out->alphas, &alpha_error)) {
      return fail(alpha_error);
    }
  }

  if (args.has("fingerprint")) {
    const std::string spec = args.get("fingerprint", "");
    if (spec.empty() || spec.size() > 16 ||
        spec.find_first_not_of("0123456789abcdefABCDEF") != std::string::npos) {
      return fail(format("bad --fingerprint value '%s' (want up to 16 hex "
                         "digits, as printed by sweep_merge --list)",
                         spec.c_str()));
    }
    out->expected_fingerprint =
        std::strtoull(spec.c_str(), nullptr, 16);
  }
  return true;
}

std::string scenario_label(workload::Scenario s) {
  return format("Scenario %d", static_cast<int>(s));
}

AsciiTable savings_grid(const std::vector<SavingsGridRow>& rows,
                        const std::vector<std::string>& variant_names) {
  std::vector<std::string> header = {"Workload", "Scenario"};
  header.insert(header.end(), variant_names.begin(), variant_names.end());
  AsciiTable table(header);
  for (const SavingsGridRow& row : rows) {
    std::vector<std::string> cells = {row.workload, scenario_label(row.scenario)};
    for (const double s : row.savings) cells.push_back(AsciiTable::pct(s));
    table.add_row(std::move(cells));
  }
  return table;
}

AsciiTable qos_summary(const std::vector<QosEvalResult>& results) {
  AsciiTable table({"Model", "P(violation)", "E[violation]", "Stddev",
                    "Selectable mass", "Violating mass"});
  for (const QosEvalResult& r : results) {
    table.add_row({rm::perf_model_name(r.model),
                   AsciiTable::pct(r.violation_probability, 2),
                   AsciiTable::pct(r.expected_violation, 2),
                   AsciiTable::pct(r.violation_stddev, 2),
                   AsciiTable::num(r.selectable_mass, 1),
                   AsciiTable::num(r.violating_mass, 3)});
  }
  return table;
}

std::string qos_histograms(const std::vector<QosEvalResult>& results) {
  // Fig. 8 normalizes every model against the global maximum bin.
  double global_max = 0.0;
  for (const QosEvalResult& r : results) {
    global_max = std::max(global_max, r.histogram.max_count());
  }
  std::string out;
  for (const QosEvalResult& r : results) {
    out += format("%s (bins normalized to global max):\n",
                  rm::perf_model_name(r.model));
    const std::vector<double> norm = r.histogram.normalized_by(global_max);
    for (std::size_t b = 0; b < norm.size(); ++b) {
      const auto bar = static_cast<std::size_t>(std::lround(norm[b] * 50.0));
      out += format("  [%5.1f%%,%5.1f%%) %-50s %.4f\n",
                    r.histogram.bin_lo(b) * 100.0, r.histogram.bin_hi(b) * 100.0,
                    std::string(bar, '#').c_str(), norm[b]);
    }
  }
  return out;
}

}  // namespace qosrm::rmsim
