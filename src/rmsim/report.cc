#include "rmsim/report.hh"

#include <algorithm>
#include <cmath>

#include "common/str.hh"
#include "rm/perf_model.hh"

namespace qosrm::rmsim {

std::string scenario_label(workload::Scenario s) {
  return format("Scenario %d", static_cast<int>(s));
}

AsciiTable savings_grid(const std::vector<SavingsGridRow>& rows,
                        const std::vector<std::string>& variant_names) {
  std::vector<std::string> header = {"Workload", "Scenario"};
  header.insert(header.end(), variant_names.begin(), variant_names.end());
  AsciiTable table(header);
  for (const SavingsGridRow& row : rows) {
    std::vector<std::string> cells = {row.workload, scenario_label(row.scenario)};
    for (const double s : row.savings) cells.push_back(AsciiTable::pct(s));
    table.add_row(std::move(cells));
  }
  return table;
}

AsciiTable qos_summary(const std::vector<QosEvalResult>& results) {
  AsciiTable table({"Model", "P(violation)", "E[violation]", "Stddev",
                    "Selectable mass", "Violating mass"});
  for (const QosEvalResult& r : results) {
    table.add_row({rm::perf_model_name(r.model),
                   AsciiTable::pct(r.violation_probability, 2),
                   AsciiTable::pct(r.expected_violation, 2),
                   AsciiTable::pct(r.violation_stddev, 2),
                   AsciiTable::num(r.selectable_mass, 1),
                   AsciiTable::num(r.violating_mass, 3)});
  }
  return table;
}

std::string qos_histograms(const std::vector<QosEvalResult>& results) {
  // Fig. 8 normalizes every model against the global maximum bin.
  double global_max = 0.0;
  for (const QosEvalResult& r : results) {
    global_max = std::max(global_max, r.histogram.max_count());
  }
  std::string out;
  for (const QosEvalResult& r : results) {
    out += format("%s (bins normalized to global max):\n",
                  rm::perf_model_name(r.model));
    const std::vector<double> norm = r.histogram.normalized_by(global_max);
    for (std::size_t b = 0; b < norm.size(); ++b) {
      const auto bar = static_cast<std::size_t>(std::lround(norm[b] * 50.0));
      out += format("  [%5.1f%%,%5.1f%%) %-50s %.4f\n",
                    r.histogram.bin_lo(b) * 100.0, r.histogram.bin_hi(b) * 100.0,
                    std::string(bar, '#').c_str(), norm[b]);
    }
  }
  return out;
}

}  // namespace qosrm::rmsim
