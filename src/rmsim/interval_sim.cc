#include "rmsim/interval_sim.hh"

#include <algorithm>
#include <limits>
#include <optional>

#include "common/check.hh"
#include "rmsim/snapshot.hh"

namespace qosrm::rmsim {

double RunResult::total_energy_j() const noexcept {
  double e = uncore_energy_j;
  for (const CoreResult& c : cores) e += c.counted_energy_j;
  return e;
}

std::uint64_t RunResult::total_intervals() const noexcept {
  std::uint64_t n = 0;
  for (const CoreResult& c : cores) n += c.intervals;
  return n;
}

std::uint64_t RunResult::total_violations() const noexcept {
  std::uint64_t n = 0;
  for (const CoreResult& c : cores) n += c.qos_violations;
  return n;
}

double RunResult::violation_rate() const noexcept {
  const std::uint64_t n = total_intervals();
  return n == 0 ? 0.0
                : static_cast<double>(total_violations()) / static_cast<double>(n);
}

IntervalSimulator::IntervalSimulator(const workload::SimDb& db,
                                     const SimOptions& options)
    : db_(&db), opt_(options) {}

namespace {

/// Per-core simulation state. An interval is FROZEN when it starts: its
/// phase, setting, duration and energy never change mid-flight. RM decisions
/// reaching a core mid-interval take effect at its next interval start
/// (interval-granularity enforcement, see DESIGN.md).
struct CoreState {
  int app = -1;
  int seq_pos = 0;          ///< sequence position of the RUNNING interval
  double executed = 0.0;    ///< instructions retired before this interval
  workload::Setting setting{};   ///< setting of the running interval
  workload::Setting pending{};   ///< latest RM decision for this core
  rm::EnforcementCost next_overhead{};  ///< charged to the next interval
  bool done = false;

  // Frozen properties of the running interval:
  int phase = 0;
  double start_s = 0.0;
  double end_s = 0.0;
  double energy_j = 0.0;
  double base_time_s = 0.0;  ///< baseline-setting time of the same phase
};

}  // namespace

/// Heap-allocated once per scratch; the vectors inside keep their capacity
/// (including each CounterSnapshot's ATD buffers) across runs.
struct RunScratch::Impl {
  std::vector<CoreState> cores;
  std::vector<rm::CounterSnapshot> snapshots;
};

RunScratch::RunScratch() : impl_(std::make_unique<Impl>()) {}
RunScratch::~RunScratch() = default;
RunScratch::RunScratch(RunScratch&&) noexcept = default;
RunScratch& RunScratch::operator=(RunScratch&&) noexcept = default;

RunResult IntervalSimulator::run(const workload::WorkloadMix& mix,
                                 const rm::RmConfig& rm_config,
                                 const IntervalObserver& observer,
                                 RunScratch* scratch) const {
  const workload::SimDb& db = *db_;
  arch::SystemConfig sys = db.system();
  if (opt_.qos_alpha_override > 0.0) sys.qos_alpha = opt_.qos_alpha_override;
  QOSRM_CHECK(static_cast<int>(mix.app_ids.size()) == sys.cores);

  const workload::Setting base = workload::baseline_setting(sys);
  const bool perfect = rm_config.model == rm::PerfModelKind::Perfect;

  // Instruction bound: the longest application in the mix (paper: 4146B, the
  // longest SPEC app; every application restarts until it has run that much).
  double bound = 0.0;
  for (const int app : mix.app_ids) {
    bound = std::max(bound, static_cast<double>(db.suite().app(app).length_intervals()) *
                                sys.interval_instructions);
  }

  rm::ResourceManager manager(rm_config, sys, db.power());
  rm::OverheadModel overheads(opt_.overheads, db.power());

  RunResult result;
  result.workload = mix.name;
  result.scenario = mix.scenario;
  result.policy = rm_config.policy;
  result.model = rm_config.model;
  result.cores.resize(static_cast<std::size_t>(sys.cores));

  // Fallback scratch, materialized only when the caller brings none (a
  // caller-supplied scratch keeps the run free of even this allocation).
  std::optional<RunScratch> local;
  if (scratch == nullptr) scratch = &local.emplace();
  RunScratch::Impl& scr = *scratch->impl_;

  std::vector<CoreState>& cores = scr.cores;
  std::vector<rm::CounterSnapshot>& snapshots = scr.snapshots;
  cores.assign(static_cast<std::size_t>(sys.cores), CoreState{});
  // resize (not assign) keeps each snapshot's ATD buffers; every field is
  // overwritten by make_snapshot_into before first use.
  snapshots.resize(static_cast<std::size_t>(sys.cores));

  auto phase_at = [&](const CoreState& st, int seq_pos) {
    const auto& seq = db.suite().app(st.app).phase_sequence;
    return seq[static_cast<std::size_t>(seq_pos) % seq.size()];
  };

  /// Freezes the next interval of `st`, adopting the pending setting and
  /// charging any accumulated enforcement/RM overheads.
  auto start_interval = [&](CoreState& st, double now_s) {
    if (!(st.pending == st.setting)) {
      if (opt_.model_overheads) {
        st.next_overhead += overheads.transition(st.setting, st.pending);
      }
      st.setting = st.pending;
    }
    st.phase = phase_at(st, st.seq_pos);
    st.start_s = now_s;
    st.end_s = now_s + db.total_seconds(st.app, st.phase, st.setting) +
               st.next_overhead.time_s;
    st.energy_j = db.total_joules(st.app, st.phase, st.setting) +
                  st.next_overhead.energy_j;
    st.base_time_s = db.baseline_time(st.app, st.phase);
    st.next_overhead = {};
  };

  for (int k = 0; k < sys.cores; ++k) {
    CoreState& st = cores[static_cast<std::size_t>(k)];
    st.app = mix.app_ids[static_cast<std::size_t>(k)];
    st.setting = base;
    st.pending = base;
    result.cores[static_cast<std::size_t>(k)].app = st.app;
    // Cold-start counters: pretend the first phase just ran at the baseline
    // so the RM has something to reason from at the first boundary.
    const int phase0 = phase_at(st, 0);
    make_snapshot_into(db, st.app, phase0, base, perfect ? phase0 : -1,
                       snapshots[static_cast<std::size_t>(k)]);
    start_interval(st, 0.0);
  }

  // Event loop: advance the earliest-completing interval (the "next global
  // event" of paper Fig. 5).
  for (;;) {
    int next_core = -1;
    double best_end = std::numeric_limits<double>::infinity();
    for (int k = 0; k < sys.cores; ++k) {
      const CoreState& st = cores[static_cast<std::size_t>(k)];
      if (!st.done && st.end_s < best_end) {
        best_end = st.end_s;
        next_core = k;
      }
    }
    if (next_core < 0) break;

    CoreState& st = cores[static_cast<std::size_t>(next_core)];
    CoreResult& cr = result.cores[static_cast<std::size_t>(next_core)];

    // --- account the completed interval ------------------------------------
    const double duration = st.end_s - st.start_s;
    st.executed += sys.interval_instructions;
    ++cr.intervals;
    cr.counted_energy_j += st.energy_j;

    // QoS target is the alpha-relaxed baseline time (Eq. 3); the violation
    // magnitude (Eq. 6) is measured against that SAME target, so relaxing
    // alpha shrinks both the violation count and the reported magnitudes.
    const double qos_target_s = st.base_time_s * sys.qos_alpha;
    if (duration > qos_target_s * (1.0 + opt_.qos_epsilon)) {
      ++cr.qos_violations;
      const double violation = (duration - qos_target_s) / qos_target_s;
      cr.violation_sum += violation;
      cr.violation_max = std::max(cr.violation_max, violation);
    }

    if (observer) {
      observer({next_core, st.app, st.phase, st.setting, st.start_s, duration,
                st.energy_j});
    }

    const int finished_phase = st.phase;
    ++st.seq_pos;

    if (st.executed >= bound) {
      st.done = true;
      cr.executed_instructions = st.executed;
      cr.finish_time_s = st.end_s;
      bool all_done = true;
      for (const CoreState& other : cores) all_done &= other.done;
      if (all_done) break;
      continue;
    }

    // --- RM invocation on the boundary core ---------------------------------
    // The idle RM never reconfigures anything; skip the invocation entirely
    // (it is the energy reference, not a managed run).
    if (rm_config.policy == rm::RmPolicy::Idle) {
      start_interval(st, st.end_s);
      continue;
    }
    const int next_phase = phase_at(st, st.seq_pos);
    make_snapshot_into(db, st.app, finished_phase, st.setting,
                       perfect ? next_phase : -1,
                       snapshots[static_cast<std::size_t>(next_core)]);

    const rm::RmDecision& decision = manager.invoke(next_core, snapshots);
    ++result.rm_invocations;
    result.rm_ops += decision.ops;

    if (opt_.model_overheads) {
      st.next_overhead += overheads.rm_execution(decision.ops, st.setting);
    }
    for (int k = 0; k < sys.cores; ++k) {
      if (!cores[static_cast<std::size_t>(k)].done) {
        cores[static_cast<std::size_t>(k)].pending =
            decision.settings[static_cast<std::size_t>(k)];
      }
    }

    start_interval(st, st.end_s);
  }

  double wall = 0.0;
  for (const CoreState& st : cores) wall = std::max(wall, st.end_s);
  result.wall_time_s = wall;
  result.uncore_energy_j = db.power().uncore_power(sys.cores) * wall;
  return result;
}

double energy_savings(const RunResult& run, const RunResult& idle) {
  const double e_idle = idle.total_energy_j();
  QOSRM_CHECK(e_idle > 0.0);
  return 1.0 - run.total_energy_j() / e_idle;
}

}  // namespace qosrm::rmsim
