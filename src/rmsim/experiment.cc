#include "rmsim/experiment.hh"

#include "common/check.hh"
#include "workload/classify.hh"

namespace qosrm::rmsim {

ExperimentRunner::ExperimentRunner(const workload::SimDb& db, const SimOptions& sim)
    : db_(&db), sim_(db, sim) {}

const RunResult& ExperimentRunner::idle_reference(const workload::WorkloadMix& mix,
                                                  RunScratch* scratch) {
  return idle_cache_.get_or_compute(mix.name, [&] {
    rm::RmConfig idle;
    idle.policy = rm::RmPolicy::Idle;
    return sim_.run(mix, idle, {}, scratch);
  });
}

SavingsResult ExperimentRunner::run(const workload::WorkloadMix& mix,
                                    const rm::RmConfig& config,
                                    RunScratch* scratch) {
  SavingsResult result;
  const RunResult& idle = idle_reference(mix, scratch);
  if (config.policy == rm::RmPolicy::Idle) {
    // The idle policy IS the reference run; reuse it rather than simulating
    // the same trajectory twice. Only the reported model tag differs.
    result.run = idle;
    result.run.model = config.model;
    result.savings = 0.0;
    return result;
  }
  result.run = sim_.run(mix, config, {}, scratch);
  result.savings = energy_savings(result.run, idle);
  return result;
}

std::array<double, 4> scenario_weights(const workload::SpecSuite& suite) {
  std::array<int, workload::kNumCategories> population{};
  for (int c = 0; c < workload::kNumCategories; ++c) {
    population[static_cast<std::size_t>(c)] = static_cast<int>(
        suite.apps_in_category(static_cast<workload::Category>(c)).size());
  }
  return workload::compute_mix_table(population).scenario_weight;
}

double weighted_average_savings(
    const std::vector<workload::Scenario>& scenario_of_row,
    const std::vector<double>& savings, const std::array<double, 4>& weights) {
  QOSRM_CHECK(scenario_of_row.size() == savings.size());
  std::array<double, 4> sum{};
  std::array<int, 4> count{};
  for (std::size_t i = 0; i < savings.size(); ++i) {
    const auto s = static_cast<std::size_t>(
        static_cast<int>(scenario_of_row[i]) - 1);
    sum[s] += savings[i];
    ++count[s];
  }
  double total = 0.0;
  double weight_used = 0.0;
  for (std::size_t s = 0; s < 4; ++s) {
    if (count[s] == 0) continue;
    total += weights[s] * sum[s] / static_cast<double>(count[s]);
    weight_used += weights[s];
  }
  return weight_used > 0.0 ? total / weight_used : 0.0;
}

}  // namespace qosrm::rmsim
