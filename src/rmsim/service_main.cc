// service_main - CLI driver for the colocation-service mode.
//
// Draws a seeded open-loop arrival trace (poisson/bursty/diurnal) over a
// pool of cores, admits and evicts applications against the interval
// simulator, and reports streaming tail metrics (p50/p95/p99 QoS-violation
// magnitude, energy per served app, RM decisions/sec, occupancy) per
// {arrival pattern x load x admission x policy x alpha} grid point. Output
// is byte-identical for any --threads value.
//
//   service_main --cores=16 --arrivals=poisson --load=0.8 --policies=rm3
//                --admission=fifo,sdf,qos-aware --alphas=0
//                --num-arrivals=5000 --seed=2020
//                --rows-csv=service_rows.csv --report-json=service.json
//
// A dense --loads sweep plus --knee-report folds the load axis into one
// p99-violation curve per {pattern x admission x policy x alpha} and marks
// the knee: the first load whose p99 Eq. 6 magnitude crosses
// --knee-threshold (rmsim/report.hh, build_service_knee_report).
//
// Three execution modes, mirroring sweep_main:
//   (default)     run the whole grid in this process
//   --shard=i/N   worker: run only shard i's row range and write a part
//                 file (--part-output) for a later merge
//   --workers=N   orchestrator: fork/exec N shard workers of this binary,
//                 wait, merge their parts and write the same outputs as a
//                 single-process run (byte-identical)
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hh"
#include "common/file_util.hh"
#include "common/str.hh"
#include "common/subprocess.hh"
#include "power/power_model.hh"
#include "rmsim/cli_flags.hh"
#include "rmsim/report.hh"
#include "rmsim/service.hh"
#include "rmsim/shard.hh"
#include "rmsim/sweep.hh"
#include "workload/arrival_gen.hh"
#include "workload/db_io.hh"
#include "workload/sim_db.hh"
#include "workload/spec_suite.hh"

namespace {

namespace workload = qosrm::workload;
namespace rmsim = qosrm::rmsim;
using Clock = std::chrono::steady_clock;

void print_usage() {
  std::puts(
      "service_main: open-loop colocation service over the RM simulator\n"
      "  --cores=N          size of the served core pool (default 16)\n"
      "  --bw-shares=N      memory-bandwidth shares per core (default 1 =\n"
      "                     unpartitioned bandwidth; N >= 2 adds the CBP\n"
      "                     share axis to the optimizer's knob space)\n"
      "  --arrivals=LIST    comma list of poisson|bursty|diurnal arrival\n"
      "                     patterns (default poisson)\n"
      "  --num-arrivals=N   arrivals per grid point (default 5000)\n"
      "  --load=LIST        comma list of offered utilizations > 0\n"
      "                     (default 0.8; --loads is an accepted alias)\n"
      "  --admission=LIST   comma list of fifo|sdf|qos-aware admission\n"
      "                     policies (default fifo); every admission cell of\n"
      "                     one (pattern, load) faces the identical trace\n"
      "  --policies=LIST    comma list of idle|rm1|rm2|rm3|ucp|fcp|classpart\n"
      "                     (default idle,rm1,rm2,rm3)\n"
      "  --model=NAME       performance model: model1|model2|model3|perfect\n"
      "                     (exactly one; default model3)\n"
      "  --alphas=LIST      comma list of QoS alphas; 0 = system default\n"
      "                     (default 0)\n"
      "  --seed=N           arrival-trace seed (default 2020)\n"
      "  --demand-min=N     per-app demand lower bound, intervals (default 40)\n"
      "  --demand-max=N     per-app demand upper bound (default 160)\n"
      "  --queue-cap=N      admission-queue capacity (default 4096)\n"
      "  --threads=N        grid parallelism; 0 = hardware concurrency\n"
      "  --rows-csv=PATH    per-run CSV output (default service_rows.csv)\n"
      "  --report-json=PATH tail-metric report (byte-stable JSON, stamped\n"
      "                     with the service fingerprint; optional)\n"
      "  --knee-report=PATH aggregate knee report: folds the load axis into\n"
      "                     one p99-violation curve per {pattern x admission\n"
      "                     x policy x alpha} and marks the first load whose\n"
      "                     p99 crosses the threshold (byte-stable JSON)\n"
      "  --knee-threshold=X p99 Eq. 6 magnitude counting as past the knee\n"
      "                     (> 0; default 0.1; requires --knee-report)\n"
      "  --knee-csv-prefix=P  also write per-pattern knee curves to\n"
      "                     <P><pattern>.csv (requires --knee-report)\n"
      "  --db-cache=PATH    simulation-database snapshot: load it when the\n"
      "                     file exists (a stale/corrupt snapshot is an\n"
      "                     error), otherwise characterize and save it; a\n"
      "                     directory selects <dir>/suite-c<cores>.qosdb\n"
      "                     (same layout as the benches)\n"
      "multi-process sharding:\n"
      "  --shard=I/N        worker mode: run only rows of shard I of N and\n"
      "                     write them to --part-output instead of CSV\n"
      "  --part-output=PATH part file this worker writes (requires --shard)\n"
      "  --workers=N        orchestrator mode: fork N --shard workers of\n"
      "                     this binary, merge their parts, write the CSVs\n"
      "  --parts-dir=DIR    where the orchestrator keeps part files\n"
      "                     (default: next to --rows-csv)\n"
      "  --resume           orchestrator: skip shards whose part file is\n"
      "                     already complete and matching; re-run the rest\n"
      "  --keep-parts       orchestrator: keep part files after the merge\n"
      "                     (default: removed on success)");
}

std::string self_exe_path(const char* argv0) {
  // /proc/self/exe survives PATH-relative invocation and cwd changes;
  // argv[0] is the fallback on exotic systems.
  std::error_code ec;
  const std::filesystem::path self =
      std::filesystem::read_symlink("/proc/self/exe", ec);
  return ec ? std::string(argv0) : self.string();
}

/// Everything both the orchestrator and its workers must agree on, parsed
/// and validated once, before any expensive work.
struct ServiceSetup {
  int cores = 16;
  int bw_shares = 1;  ///< baseline memory-bandwidth shares per core
  int threads = 0;
  std::string arrivals_spec;
  std::string load_spec;
  std::string admissions_spec;
  std::string policies_spec;
  std::string model_spec;
  std::string alphas_spec;
  std::string db_cache;  ///< resolved path ("" = no cache)
  rmsim::ServiceGrid grid;
  rmsim::ServiceConfig config;
};

/// The grid+config fingerprint every process must agree on. Computable
/// without building the database: the db identity is itself a fingerprint
/// of (suite, system, phase options).
std::uint64_t setup_fingerprint(const ServiceSetup& setup) {
  qosrm::arch::SystemConfig system;
  system.cores = setup.cores;
  system.bw = qosrm::arch::bw_config_for_shares(setup.bw_shares);
  const std::uint64_t db_fp = workload::simdb_fingerprint(
      workload::spec_suite(), system, workload::PhaseStatsOptions{});
  return rmsim::service_fingerprint(setup.grid, setup.config, db_fp);
}

void print_rows(const std::vector<rmsim::ServiceRow>& rows) {
  std::printf("\n%-8s %6s %-9s %-6s %9s %9s %9s %12s %10s %10s\n", "pattern",
              "load", "admission", "policy", "alpha", "viol-rate", "p99-viol",
              "energy/app", "rm-dec/s", "occupancy");
  for (const rmsim::ServiceRow& row : rows) {
    std::printf(
        "%-8s %6.3g %-9s %-6s %9.4g %9.4g %9.4g %11.4gJ %10.4g %10.4g\n",
        workload::arrival_pattern_name(row.pattern), row.load,
        rmsim::admission_policy_name(row.admission),
        qosrm::rm::rm_policy_name(row.policy), row.qos_alpha,
        row.metrics.violation_rate, row.metrics.p99_violation,
        row.metrics.energy_per_app_j, row.metrics.decisions_per_sec,
        row.metrics.occupancy);
  }
}

double secs(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// --report-json: the tail-metric report of this run, stamped with the
/// service fingerprint so it can never be matched against foreign rows.
bool write_report(const std::vector<rmsim::ServiceRow>& rows,
                  const rmsim::ServiceGridShape& shape,
                  std::uint64_t fingerprint, const std::string& path) {
  std::string error;
  if (!rmsim::write_service_report_json(rows, shape, fingerprint, path,
                                        &error)) {
    std::fprintf(stderr, "--report-json: %s\n", error.c_str());
    return false;
  }
  std::printf("wrote service report to %s\n", path.c_str());
  return true;
}

/// --knee-report (+ optional --knee-csv-prefix): folds the load axis into
/// per-configuration p99 knee curves and writes the byte-stable outputs.
bool write_knee_outputs(const std::vector<rmsim::ServiceRow>& rows,
                        const rmsim::ServiceGridShape& shape,
                        std::uint64_t fingerprint, const std::string& json_path,
                        double knee_threshold,
                        const std::string& csv_prefix) {
  const rmsim::ServiceKneeReport knee = rmsim::build_service_knee_report(
      rows, shape, fingerprint, knee_threshold);
  std::string error;
  if (!rmsim::write_service_knee_report_json(knee, json_path, &error)) {
    std::fprintf(stderr, "--knee-report: %s\n", error.c_str());
    return false;
  }
  std::size_t detected = 0;
  for (const rmsim::KneeCurve& curve : knee.curves) {
    if (curve.knee_index >= 0) ++detected;
  }
  std::printf("wrote knee report to %s (%zu of %zu curves cross p99 > %g)\n",
              json_path.c_str(), detected, knee.curves.size(), knee_threshold);
  if (!csv_prefix.empty()) {
    if (!rmsim::write_knee_curve_csvs(knee, csv_prefix, &error)) {
      std::fprintf(stderr, "--knee-csv-prefix: %s\n", error.c_str());
      return false;
    }
    std::printf("wrote %zu per-pattern knee-curve CSVs to %s<pattern>.csv\n",
                shape.patterns, csv_prefix.c_str());
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const qosrm::CliArgs args(argc, argv, {"help", "resume", "keep-parts"});
  if (args.has("help")) {
    print_usage();
    return 0;
  }

  // Reject unknown flags: a typo'd flag name would otherwise silently run
  // a default service sweep labeled as if the request had been honored.
  static const std::set<std::string> kKnownFlags(
      std::begin(rmsim::cli::kServiceMainFlags),
      std::end(rmsim::cli::kServiceMainFlags));
  for (const std::string& flag : args.flag_names()) {
    if (!kKnownFlags.count(flag)) {
      std::fprintf(stderr, "unknown flag --%s (see --help)\n", flag.c_str());
      return 1;
    }
  }
  if (!args.positional().empty()) {
    std::fprintf(stderr,
                 "unexpected argument '%s' (flags take --name=value or "
                 "--name value form; see --help)\n",
                 args.positional().front().c_str());
    return 1;
  }

  // Mode flags first: every invalid --shard/--workers combination must fail
  // here, before the multi-second database build (same fail-before-
  // expensive-work rule as the grid and output-path checks below).
  const bool worker_mode = args.has("shard") || args.has("part-output");
  const bool orchestrate = args.has("workers");
  if (args.has("shard") != args.has("part-output")) {
    std::fprintf(stderr,
                 "--shard and --part-output must be given together (a shard "
                 "worker writes a part file, not CSV)\n");
    return 1;
  }
  if (worker_mode && orchestrate) {
    std::fprintf(stderr,
                 "--shard and --workers are mutually exclusive (a worker "
                 "runs one shard; the orchestrator forks the workers)\n");
    return 1;
  }
  if (worker_mode &&
      (args.has("rows-csv") || args.has("report-json") ||
       args.has("knee-report") || args.has("knee-threshold") ||
       args.has("knee-csv-prefix"))) {
    std::fprintf(stderr,
                 "--rows-csv/--report-json/--knee-report/--knee-threshold/"
                 "--knee-csv-prefix do not apply in --shard worker mode (the "
                 "merge step writes the outputs)\n");
    return 1;
  }
  if (!orchestrate &&
      (args.has("resume") || args.has("parts-dir") || args.has("keep-parts"))) {
    std::fprintf(stderr,
                 "--resume/--parts-dir/--keep-parts require --workers\n");
    return 1;
  }
  qosrm::ShardArg shard;
  if (worker_mode) {
    const std::optional<qosrm::ShardArg> parsed =
        qosrm::parse_shard_arg(args.get("shard", ""));
    if (!parsed.has_value()) {
      std::fprintf(stderr,
                   "bad --shard value '%s' (want I/N with 0 <= I < N)\n",
                   args.get("shard", "").c_str());
      return 1;
    }
    shard = *parsed;
  }
  const int workers = static_cast<int>(args.get_int("workers", 0));
  if (orchestrate && workers < 1) {
    std::fprintf(stderr, "--workers must be >= 1\n");
    return 1;
  }

  ServiceSetup setup;
  setup.cores = static_cast<int>(args.get_int("cores", 16));
  setup.bw_shares = static_cast<int>(args.get_int("bw-shares", 1));
  setup.threads = static_cast<int>(args.get_int("threads", 0));
  if (setup.bw_shares < 1) {
    std::fprintf(stderr, "--bw-shares must be >= 1\n");
    return 1;
  }
  const long long num_arrivals = args.get_int("num-arrivals", 5000);
  const int demand_min = static_cast<int>(args.get_int("demand-min", 40));
  const int demand_max = static_cast<int>(args.get_int("demand-max", 160));
  const long long queue_cap = args.get_int("queue-cap", 4096);
  if (setup.cores < 1 || setup.threads < 0 || num_arrivals < 1) {
    std::fprintf(stderr,
                 "--cores/--num-arrivals must be >= 1 and --threads >= 0\n");
    return 1;
  }
  if (demand_min < 1 || demand_max < demand_min) {
    std::fprintf(stderr,
                 "--demand-min must be >= 1 and --demand-max >= "
                 "--demand-min\n");
    return 1;
  }
  if (queue_cap < 1) {
    std::fprintf(stderr, "--queue-cap must be >= 1\n");
    return 1;
  }
  setup.config.arrivals = static_cast<std::size_t>(num_arrivals);
  setup.config.seed = static_cast<std::uint64_t>(args.get_int("seed", 2020));
  setup.config.demand_min = demand_min;
  setup.config.demand_max = demand_max;
  setup.config.queue_capacity = static_cast<std::size_t>(queue_cap);

  // Parse the grid flags up front: a bad value should fail immediately, not
  // after the multi-second database characterization. The list parsers
  // abort with a diagnostic on malformed specs (same contract as sweep_main).
  if (args.has("load") && args.has("loads")) {
    std::fprintf(stderr,
                 "--load and --loads are aliases; give only one of them\n");
    return 1;
  }
  setup.arrivals_spec = args.get("arrivals", "poisson");
  setup.load_spec = args.get("load", args.get("loads", "0.8"));
  setup.admissions_spec = args.get("admission", "fifo");
  setup.policies_spec = args.get("policies", "idle,rm1,rm2,rm3");
  setup.model_spec = args.get("model", "model3");
  setup.alphas_spec = args.get("alphas", "0");
  setup.grid.patterns = workload::parse_arrival_patterns(setup.arrivals_spec);
  setup.grid.loads = rmsim::parse_loads(setup.load_spec);
  setup.grid.admissions = rmsim::parse_admissions(setup.admissions_spec);
  setup.grid.policies = rmsim::parse_policies(setup.policies_spec);
  setup.grid.qos_alphas = rmsim::parse_alphas(setup.alphas_spec);
  const std::vector<qosrm::rm::PerfModelKind> models =
      rmsim::parse_models(setup.model_spec);
  if (models.size() != 1) {
    std::fprintf(stderr,
                 "--model must name exactly one performance model (the "
                 "service grid sweeps patterns/loads/policies/alphas)\n");
    return 1;
  }
  setup.config.model = models.front();

  // Probe the output paths too: a bad path should fail here, before the
  // multi-second database build, not after the run. Each probe touches
  // only the uniquely named temp sibling the later atomic commit will use,
  // NEVER the target itself - an interrupted or failed run must not leave
  // an empty decoy CSV/report, and an existing file stays untouched until
  // its atomic replacement.
  const std::string rows_csv = args.get("rows-csv", "service_rows.csv");
  const std::string report_json = args.get("report-json", "");
  const std::string knee_report = args.get("knee-report", "");
  const std::string knee_csv_prefix = args.get("knee-csv-prefix", "");
  const double knee_threshold =
      args.get_double("knee-threshold", rmsim::kDefaultKneeThreshold);
  if (knee_report.empty() &&
      (args.has("knee-threshold") || !knee_csv_prefix.empty())) {
    std::fprintf(stderr,
                 "--knee-threshold/--knee-csv-prefix require --knee-report\n");
    return 1;
  }
  if (!(knee_threshold > 0.0)) {
    std::fprintf(stderr, "--knee-threshold must be > 0\n");
    return 1;
  }
  const std::string part_output = args.get("part-output", "");
  // Orchestrator part files live next to the rows CSV unless --parts-dir
  // says otherwise; the prefix keeps the sharding self-describing
  // ("<prefix>.<i>-of-<n>.qospart").
  std::string parts_prefix;
  if (orchestrate) {
    const std::string parts_dir = args.get("parts-dir", "");
    if (parts_dir.empty()) {
      parts_prefix = rows_csv;
    } else {
      parts_prefix =
          (std::filesystem::path(parts_dir) /
           std::filesystem::path(rows_csv).filename())
              .string();
    }
  }

  std::vector<std::string> probe_paths;
  if (worker_mode) {
    probe_paths.push_back(part_output);
  } else {
    probe_paths.push_back(rows_csv);
    if (!report_json.empty()) probe_paths.push_back(report_json);
    if (!knee_report.empty()) probe_paths.push_back(knee_report);
    if (!knee_csv_prefix.empty()) {
      for (const workload::ArrivalPattern pattern : setup.grid.patterns) {
        probe_paths.push_back(knee_csv_prefix +
                              workload::arrival_pattern_name(pattern) + ".csv");
      }
    }
    if (orchestrate) {
      for (int i = 0; i < workers; ++i) {
        probe_paths.push_back(rmsim::part_path(
            parts_prefix, static_cast<std::size_t>(i),
            static_cast<std::size_t>(workers)));
      }
    }
  }
  for (const std::string& path : probe_paths) {
    std::string probe_error;
    if (!qosrm::probe_writable_atomic(path, &probe_error)) {
      std::fprintf(stderr, "%s\n", probe_error.c_str());
      return 1;
    }
  }

  // --db-cache: decide hit/miss now, and on a miss probe writability, so a
  // bad path fails here instead of after the multi-second database build.
  // The probe uses a uniquely named sibling file, never the cache path
  // itself: concurrent shards must not see a transient decoy snapshot, nor
  // have a just-written real one deleted from under them.
  setup.db_cache = args.get("db-cache", "");
  bool db_cache_hit = false;
  if (!setup.db_cache.empty()) {
    // A directory means the shared per-core-count layout the benches and
    // QOSRM_DB_CACHE_DIR use; resolve it the same way.
    std::error_code ec;
    if (std::filesystem::is_directory(setup.db_cache, ec)) {
      setup.db_cache = workload::db_cache_path(setup.db_cache, setup.cores,
                                               setup.bw_shares);
    }
    std::ifstream rprobe(setup.db_cache, std::ios::binary);
    db_cache_hit = rprobe.good();
    if (!db_cache_hit) {
      const std::string probe_path = setup.db_cache + ".probe." +
                                     std::to_string(static_cast<long>(::getpid()));
      std::ofstream wprobe(probe_path, std::ios::trunc);
      if (!wprobe.good()) {
        std::fprintf(stderr, "--db-cache: cannot write to %s\n",
                     setup.db_cache.c_str());
        return 1;
      }
      wprobe.close();
      std::remove(probe_path.c_str());
    }
  }

  const workload::SpecSuite& suite = workload::spec_suite();
  qosrm::arch::SystemConfig system;
  system.cores = setup.cores;
  system.bw = qosrm::arch::bw_config_for_shares(setup.bw_shares);
  const qosrm::power::PowerModel power;

  workload::SimDbOptions db_options;
  db_options.threads = setup.threads;

  // ---------------------------------------------------------------------
  // Orchestrator mode: fork shard workers, merge their parts, write CSVs.
  // ---------------------------------------------------------------------
  if (orchestrate) {
    const auto n = static_cast<std::size_t>(workers);
    const std::uint64_t fingerprint = setup_fingerprint(setup);
    const rmsim::ServiceGridShape shape = setup.grid.shape();

    // Which shards still need to run? Without --resume: all of them
    // (workers atomically overwrite any stale part). Computed BEFORE any
    // database work - it needs only the fingerprint and shape, and a
    // resume where every part is already complete must go straight to the
    // merge without paying a characterization or snapshot load.
    std::vector<std::size_t> pending;
    if (args.get_bool("resume", false)) {
      pending =
          rmsim::service_shards_to_run(parts_prefix, n, fingerprint, shape);
      std::printf("resume: %zu of %zu shards already complete\n",
                  n - pending.size(), n);
    } else {
      for (std::size_t i = 0; i < n; ++i) pending.push_back(i);
    }

    // The database must be characterized once, here, not N times by the
    // forked workers. With --db-cache a present-but-stale snapshot is a
    // hard error, matching the single-process contract; without --db-cache
    // the orchestrator builds a temporary snapshot next to the parts and
    // hands it to the workers, then removes it after the run.
    const auto t_db = Clock::now();
    bool temp_db = false;
    const auto cleanup_temp_db = [&]() {
      if (temp_db) std::remove(setup.db_cache.c_str());
    };
    if (!pending.empty()) {
      if (setup.db_cache.empty()) {
        temp_db = true;
        setup.db_cache = parts_prefix + ".shared.qosdb";
        std::remove(setup.db_cache.c_str());  // never trust a stale leftover
        db_cache_hit = false;
      }
      std::string error;
      if (db_cache_hit) {
        if (!workload::load_simdb(suite, system, power, db_options.phase,
                                  setup.db_cache, &error)
                 .has_value()) {
          std::fprintf(stderr, "--db-cache: %s\n", error.c_str());
          return 1;
        }
      } else {
        std::printf("characterizing %d-app suite for %d cores (shared by all "
                    "workers)...\n",
                    suite.size(), setup.cores);
        const workload::SimDb db(suite, system, power, db_options);
        if (!workload::save_simdb(db, setup.db_cache, &error)) {
          std::fprintf(stderr, "--db-cache: %s\n", error.c_str());
          cleanup_temp_db();
          return 1;
        }
        std::printf("saved simulation database snapshot to %s\n",
                    setup.db_cache.c_str());
      }
    }

    const unsigned total_threads =
        setup.threads > 0 ? static_cast<unsigned>(setup.threads)
                          : std::max(1u, std::thread::hardware_concurrency());
    const unsigned worker_threads = std::max(1u, total_threads / std::max(
        1u, static_cast<unsigned>(pending.size())));

    std::printf("serving %zu runs across %d shard workers (%u threads "
                "each)...\n",
                setup.grid.size(), workers, worker_threads);

    const std::string exe = self_exe_path(argv[0]);
    const auto t_run = Clock::now();

    struct Worker {
      std::size_t shard = 0;
      std::vector<std::string> argv;
      qosrm::Subprocess process;
    };
    std::vector<Worker> spawned;
    spawned.reserve(pending.size());
    for (const std::size_t i : pending) {
      Worker worker;
      worker.shard = i;
      worker.argv = {
          exe,
          qosrm::format("--cores=%d", setup.cores),
          qosrm::format("--bw-shares=%d", setup.bw_shares),
          qosrm::format("--num-arrivals=%zu", setup.config.arrivals),
          qosrm::format("--seed=%llu",
                        static_cast<unsigned long long>(setup.config.seed)),
          "--arrivals=" + setup.arrivals_spec,
          "--load=" + setup.load_spec,
          "--admission=" + setup.admissions_spec,
          "--policies=" + setup.policies_spec,
          "--model=" + setup.model_spec,
          "--alphas=" + setup.alphas_spec,
          qosrm::format("--demand-min=%d", setup.config.demand_min),
          qosrm::format("--demand-max=%d", setup.config.demand_max),
          qosrm::format("--queue-cap=%zu", setup.config.queue_capacity),
          qosrm::format("--threads=%u", worker_threads),
          qosrm::format("--shard=%zu/%zu", i, n),
          "--part-output=" + rmsim::part_path(parts_prefix, i, n),
      };
      if (!setup.db_cache.empty()) {
        worker.argv.push_back("--db-cache=" + setup.db_cache);
      }
      worker.process = qosrm::Subprocess::spawn(worker.argv);
      spawned.push_back(std::move(worker));
    }

    // Fail fast: workers are reaped in COMPLETION order (wait_any), so the
    // first failure - whichever shard it strikes - immediately terminates
    // the rest instead of hiding behind long-running earlier shards. The
    // diagnostic names the shard, its fate and its exact command line so
    // the operator can re-run just that shard by hand. Shards we cancelled
    // ourselves get one short line, not a failure diagnostic of their own -
    // the actionable failure must stay visible.
    bool failed = false;
    const auto handle_exit = [&](const Worker& worker,
                                 const qosrm::SubprocessExit& exit) {
      if (exit.success()) return;
      if (failed && exit.term_signal == SIGTERM) {
        std::fprintf(stderr, "shard %zu/%zu cancelled\n", worker.shard, n);
        return;
      }
      if (!failed) {
        failed = true;
        for (Worker& other : spawned) other.process.terminate();
      }
      std::string cmd;
      for (const std::string& arg : worker.argv) {
        if (!cmd.empty()) cmd += ' ';
        cmd += arg;
      }
      std::fprintf(stderr, "shard %zu/%zu failed (%s): %s\n", worker.shard, n,
                   describe(exit).c_str(), cmd.c_str());
    };

    std::vector<qosrm::Subprocess*> processes;
    processes.reserve(spawned.size());
    for (Worker& worker : spawned) {
      processes.push_back(&worker.process);
      // A fork that failed outright never enters wait_any.
      if (!worker.process.running()) handle_exit(worker, worker.process.wait());
    }
    for (;;) {
      const std::optional<std::size_t> done =
          qosrm::Subprocess::wait_any(processes);
      if (!done.has_value()) break;
      handle_exit(spawned[*done], spawned[*done].process.wait());
    }
    if (failed) {
      std::fprintf(stderr,
                   "service run aborted; completed parts are kept - re-run "
                   "with --resume to redo only the failed shards\n");
      cleanup_temp_db();
      return 1;
    }

    // Merge. Every part must match the fingerprint this orchestrator
    // computed - a worker that somehow ran a different grid is caught here.
    std::vector<std::string> part_files;
    part_files.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      part_files.push_back(rmsim::part_path(parts_prefix, i, n));
    }
    std::string error;
    std::optional<std::vector<rmsim::ServiceRow>> merged =
        rmsim::merge_service_part_files(part_files, &fingerprint, &error);
    if (!merged.has_value()) {
      std::fprintf(stderr, "merge: %s\n", error.c_str());
      cleanup_temp_db();
      return 1;
    }
    const auto t_done = Clock::now();
    const std::vector<rmsim::ServiceRow>& rows = *merged;
    cleanup_temp_db();

    rmsim::write_service_csv(rows, rows_csv);
    std::printf("wrote %zu rows to %s\n", rows.size(), rows_csv.c_str());
    if (!report_json.empty() &&
        !write_report(rows, shape, fingerprint, report_json)) {
      return 1;
    }
    if (!knee_report.empty() &&
        !write_knee_outputs(rows, shape, fingerprint, knee_report,
                            knee_threshold, knee_csv_prefix)) {
      return 1;
    }
    if (!args.get_bool("keep-parts", false)) {
      for (std::size_t i = 0; i < n; ++i) {
        std::remove(rmsim::part_path(parts_prefix, i, n).c_str());
      }
    }

    print_rows(rows);
    std::printf("\ndb prep %.2fs, service+merge %.2fs (%d workers)\n",
                secs(t_db, t_run), secs(t_run, t_done), workers);
    return 0;
  }

  // ---------------------------------------------------------------------
  // Single-process grid execution: the whole grid (default mode) or one
  // shard's row range (--shard worker mode).
  // ---------------------------------------------------------------------
  const auto t_db = Clock::now();
  std::optional<workload::SimDb> db_storage;
  if (db_cache_hit) {
    std::printf("loading simulation database from %s...\n",
                setup.db_cache.c_str());
    std::string error;
    db_storage = workload::load_simdb(suite, system, power, db_options.phase,
                                      setup.db_cache, &error);
    if (!db_storage.has_value()) {
      std::fprintf(stderr, "--db-cache: %s\n", error.c_str());
      return 1;
    }
  } else {
    std::printf("characterizing %d-app suite for %d cores...\n", suite.size(),
                setup.cores);
    db_storage.emplace(suite, system, power, db_options);
    if (!setup.db_cache.empty()) {
      std::string error;
      if (!workload::save_simdb(*db_storage, setup.db_cache, &error)) {
        std::fprintf(stderr, "--db-cache: %s\n", error.c_str());
        return 1;
      }
      std::printf("saved simulation database snapshot to %s\n",
                  setup.db_cache.c_str());
    }
  }
  const workload::SimDb& db = *db_storage;

  rmsim::ServiceOptions options;
  options.threads = setup.threads;
  const unsigned resolved_threads =
      setup.threads > 0 ? static_cast<unsigned>(setup.threads)
                        : std::max(1u, std::thread::hardware_concurrency());

  if (worker_mode) {
    const std::uint64_t db_fp = workload::simdb_fingerprint(
        db.suite(), db.system(), db.phase_options());
    rmsim::ServicePart part;
    part.fingerprint =
        rmsim::service_fingerprint(setup.grid, setup.config, db_fp);
    part.shape = setup.grid.shape();
    part.shard_index = shard.index;
    part.shard_count = shard.count;
    part.range =
        rmsim::shard_range(setup.grid.size(), shard.index, shard.count);

    std::printf("shard %zu/%zu: serving rows [%zu, %zu) of %zu on %u "
                "threads...\n",
                shard.index, shard.count, part.range.begin, part.range.end,
                setup.grid.size(), resolved_threads);
    const auto t_run = Clock::now();
    part.rows = rmsim::run_service_range(db, setup.grid, setup.config,
                                         part.range.begin, part.range.end,
                                         options);
    const auto t_done = Clock::now();

    std::string error;
    if (!rmsim::save_service_part(part, part_output, &error)) {
      std::fprintf(stderr, "--part-output: %s\n", error.c_str());
      return 1;
    }
    std::printf("wrote %zu rows to %s\n", part.rows.size(),
                part_output.c_str());
    std::printf("db %s %.2fs, service %.2fs\n", db_cache_hit ? "load" : "build",
                secs(t_db, t_run), secs(t_run, t_done));
    return 0;
  }

  std::printf("serving %zu runs (%zu patterns x %zu loads x %zu admissions x "
              "%zu policies x %zu alphas) on %u threads...\n",
              setup.grid.size(), setup.grid.patterns.size(),
              setup.grid.loads.size(), setup.grid.admissions.size(),
              setup.grid.policies.size(), setup.grid.qos_alphas.size(),
              resolved_threads);
  const auto t_run = Clock::now();
  const rmsim::ServiceResult result =
      rmsim::run_service(db, setup.grid, setup.config, options);
  const auto t_done = Clock::now();

  rmsim::write_service_csv(result.rows, rows_csv);
  std::printf("wrote %zu rows to %s\n", result.rows.size(), rows_csv.c_str());
  if (!report_json.empty() &&
      !write_report(result.rows, setup.grid.shape(), setup_fingerprint(setup),
                    report_json)) {
    return 1;
  }
  if (!knee_report.empty() &&
      !write_knee_outputs(result.rows, setup.grid.shape(),
                          setup_fingerprint(setup), knee_report,
                          knee_threshold, knee_csv_prefix)) {
    return 1;
  }

  print_rows(result.rows);
  std::printf("\ndb %s %.2fs, service %.2fs\n", db_cache_hit ? "load" : "build",
              secs(t_db, t_run), secs(t_run, t_done));
  return 0;
}
