#include "rmsim/service.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <thread>

#include "common/binary_io.hh"
#include "common/check.hh"
#include "common/csv.hh"
#include "common/histogram.hh"
#include "common/stats.hh"
#include "common/str.hh"
#include "common/thread_pool.hh"
#include "rmsim/snapshot.hh"
#include "workload/classify.hh"

namespace qosrm::rmsim {

namespace {

/// Full-precision double formatting so equal results yield byte-identical
/// CSV files (same convention as sweep.cc).
std::string fmt(double v) { return format("%.17g", v); }

/// Per-core service state. Identical interval-freezing semantics to the
/// interval simulator's CoreState (rmsim/interval_sim.cc), extended with
/// occupancy bookkeeping: a core is either idle or runs one admitted
/// application for `remaining` more intervals.
struct ServiceCoreState {
  bool active = false;
  int app = -1;
  int seq_pos = 0;    ///< sequence position of the RUNNING interval
  int remaining = 0;  ///< intervals left including the running one
  double app_energy_j = 0.0;  ///< core+memory energy of the current app
  workload::Setting setting{};  ///< setting of the running interval
  workload::Setting pending{};  ///< latest RM decision for this core
  rm::EnforcementCost next_overhead{};  ///< charged to the next interval

  // Frozen properties of the running interval:
  int phase = 0;
  double start_s = 0.0;
  double end_s = 0.0;
  double energy_j = 0.0;
  double base_time_s = 0.0;  ///< baseline-setting time of the same phase
};

struct QueueEntry {
  double arrival_s = 0.0;
  int app = 0;
  int demand = 0;
};

}  // namespace

const char* admission_policy_name(AdmissionPolicy policy) noexcept {
  switch (policy) {
    case AdmissionPolicy::Fifo:
      return "fifo";
    case AdmissionPolicy::Sdf:
      return "sdf";
    case AdmissionPolicy::QosAware:
      return "qos-aware";
  }
  return "?";
}

std::vector<AdmissionPolicy> parse_admissions(const std::string& spec) {
  std::vector<AdmissionPolicy> out;
  for (const std::string& part : split_csv_list(spec)) {
    QOSRM_CHECK_MSG(!part.empty(),
                    "empty --admission entry (an empty list or stray comma "
                    "would silently shrink the service grid)");
    if (part == "fifo") {
      out.push_back(AdmissionPolicy::Fifo);
    } else if (part == "sdf") {
      out.push_back(AdmissionPolicy::Sdf);
    } else if (part == "qos-aware") {
      out.push_back(AdmissionPolicy::QosAware);
    } else {
      QOSRM_CHECK_MSG(false,
                      "bad --admission entry (want fifo|sdf|qos-aware)");
    }
  }
  return out;
}

ServicePoint ServiceGrid::point(std::size_t idx) const {
  QOSRM_CHECK_MSG(idx < size(), "service grid index out of range");
  std::size_t rest = idx;
  const std::size_t pi = rest % patterns.size();
  rest /= patterns.size();
  const std::size_t li = rest % loads.size();
  rest /= loads.size();
  const std::size_t di = rest % admissions.size();
  rest /= admissions.size();
  const std::size_t oi = rest % policies.size();
  const std::size_t ai = rest / policies.size();
  return {patterns[pi], loads[li], admissions[di], policies[oi],
          qos_alphas[ai]};
}

double mean_baseline_interval_s(const workload::SimDb& db) {
  RunningStats app_means;
  for (int app = 0; app < db.suite().size(); ++app) {
    const auto& seq = db.suite().app(app).phase_sequence;
    RunningStats intervals;
    for (const int phase : seq) intervals.add(db.baseline_time(app, phase));
    app_means.add(intervals.mean());
  }
  QOSRM_CHECK(app_means.mean() > 0.0);
  return app_means.mean();
}

struct ServiceEngine::Impl {
  const workload::SimDb* db;
  ServiceConfig cfg;
  ServicePoint point;
  arch::SystemConfig sys;
  workload::Setting base;
  bool perfect = false;

  rm::ResourceManager manager;
  rm::OverheadModel overheads;
  workload::ArrivalTrace trace;

  /// Per-app LFOC-style partitioning class (light/streaming/sensitive),
  /// precomputed from the database's MPKI probes at construction so the
  /// steady-state admission decisions are array lookups (0 allocs).
  std::vector<workload::PartClass> app_class;
  /// Sensitive apps currently resident on a core or waiting in the queue -
  /// the pool-pressure input of the qos-aware rejection predicate.
  int sensitive_in_system = 0;
  /// Way allocation below which a sensitive app's own miss curve (the -50%
  /// MPKI probe of the Table II swing rule) predicts an Eq. 6 magnitude
  /// beyond the alpha relaxation; see DESIGN.md.
  int min_useful_ways = 0;

  std::vector<ServiceCoreState> cores;
  std::vector<rm::CounterSnapshot> snapshots;
  std::vector<std::uint8_t> active_mask;

  // Fixed-capacity FIFO ring (no allocation while queueing/draining).
  std::vector<QueueEntry> queue;
  std::size_t q_head = 0;
  std::size_t q_size = 0;

  Histogram violation_hist;
  RunningStats violation_stats;
  RunningStats app_energy_stats;
  RunningStats wait_stats;

  std::size_t next_arrival = 0;
  std::uint64_t served = 0;
  std::uint64_t rejected = 0;
  std::uint64_t qos_rejected = 0;
  std::uint64_t intervals = 0;
  std::uint64_t violations = 0;
  std::uint64_t rm_invocations = 0;
  std::uint64_t rm_ops = 0;
  double core_energy_j = 0.0;  ///< core+memory energy over ALL intervals
  double busy_s = 0.0;
  double wall_s = 0.0;

  static arch::SystemConfig system_for(const workload::SimDb& db,
                                       const ServicePoint& point) {
    arch::SystemConfig sys = db.system();
    if (point.qos_alpha > 0.0) sys.qos_alpha = point.qos_alpha;
    return sys;
  }

  static rm::RmConfig rm_config_for(const ServiceConfig& cfg,
                                    const ServicePoint& point) {
    rm::RmConfig config;
    config.policy = point.policy;
    config.model = cfg.model;
    // Same oracle pairing as the sweep: the Perfect axis means exact time
    // prediction AND ground-truth energy.
    config.energy.perfect = cfg.model == rm::PerfModelKind::Perfect;
    return config;
  }

  Impl(const workload::SimDb& database, const ServiceConfig& config,
       const ServicePoint& grid_point)
      : db(&database), cfg(config), point(grid_point),
        sys(system_for(database, grid_point)),
        base(workload::baseline_setting(sys)),
        perfect(config.model == rm::PerfModelKind::Perfect),
        manager(rm_config_for(config, grid_point), sys, database.power()),
        overheads(config.sim.overheads, database.power()),
        violation_hist(0.0, config.hist_max_violation, config.hist_bins) {
    QOSRM_CHECK_MSG(cfg.arrivals > 0, "service run needs at least one arrival");
    QOSRM_CHECK_MSG(cfg.queue_capacity >= 1, "queue capacity must be >= 1");
    QOSRM_CHECK_MSG(cfg.demand_min > 0 && cfg.demand_max >= cfg.demand_min,
                    "demand range must satisfy 0 < demand_min <= demand_max");

    // All (policy, alpha) cells of one (pattern, load) grid point face the
    // SAME arrival trace: the trace seed mixes only the base seed with the
    // pattern and the load, so policies are compared on identical demand.
    Fnv1a64 seed_hash;
    seed_hash.add_u64(cfg.seed);
    seed_hash.add_u32(static_cast<std::uint32_t>(point.pattern));
    seed_hash.add_f64(point.load);

    workload::ArrivalGenOptions gen;
    gen.pattern = point.pattern;
    gen.load = point.load;
    gen.cores = sys.cores;
    gen.count = cfg.arrivals;
    gen.seed = seed_hash.digest();
    gen.mean_service_time =
        mean_baseline_interval_s(*db) *
        0.5 * static_cast<double>(cfg.demand_min + cfg.demand_max);
    gen.num_apps = db->suite().size();
    gen.demand_min = cfg.demand_min;
    gen.demand_max = cfg.demand_max;
    workload::generate_arrivals_into(gen, &trace);

    // Admission taxonomy: the same MPKI probe points as classify_app / the
    // classpart baseline (baseline, -50%, +50% allocations). Computed once,
    // outside the event loop.
    const workload::ClassificationCriteria crit;
    const int wb = crit.baseline_ways;
    const int w_lo = std::max(1, wb / 2);
    const int w_hi = wb + wb / 2;
    app_class.reserve(static_cast<std::size_t>(db->suite().size()));
    for (int a = 0; a < db->suite().size(); ++a) {
      app_class.push_back(workload::classify_part_class(
          db->app_mpki(a, wb), db->app_mpki(a, w_lo), db->app_mpki(a, w_hi),
          crit));
    }
    min_useful_ways = std::max(sys.llc.min_ways, w_lo);

    queue.resize(cfg.queue_capacity);
    reset();
  }

  [[nodiscard]] int phase_at(const ServiceCoreState& st, int seq_pos) const {
    const auto& seq = db->suite().app(st.app).phase_sequence;
    return seq[static_cast<std::size_t>(seq_pos) % seq.size()];
  }

  void reset() {
    cores.assign(static_cast<std::size_t>(sys.cores), ServiceCoreState{});
    // resize (not assign) keeps each snapshot's ATD buffers; every field is
    // overwritten by make_snapshot_into before first use.
    snapshots.resize(static_cast<std::size_t>(sys.cores));
    active_mask.assign(static_cast<std::size_t>(sys.cores), 0);
    q_head = 0;
    q_size = 0;
    violation_hist.reset();
    violation_stats = {};
    app_energy_stats = {};
    wait_stats = {};
    next_arrival = 0;
    served = 0;
    rejected = 0;
    qos_rejected = 0;
    sensitive_in_system = 0;
    intervals = 0;
    violations = 0;
    rm_invocations = 0;
    rm_ops = 0;
    core_energy_j = 0.0;
    busy_s = 0.0;
    wall_s = 0.0;
    manager.reset();
  }

  /// Freezes the next interval of `st` (identical to interval_sim.cc):
  /// adopts the pending setting and charges accumulated overheads.
  void start_interval(ServiceCoreState& st, double now_s) {
    if (!(st.pending == st.setting)) {
      if (cfg.sim.model_overheads) {
        st.next_overhead += overheads.transition(st.setting, st.pending);
      }
      st.setting = st.pending;
    }
    st.phase = phase_at(st, st.seq_pos);
    st.start_s = now_s;
    st.end_s = now_s + db->total_seconds(st.app, st.phase, st.setting) +
               st.next_overhead.time_s;
    st.energy_j = db->total_joules(st.app, st.phase, st.setting) +
                  st.next_overhead.energy_j;
    st.base_time_s = db->baseline_time(st.app, st.phase);
    st.next_overhead = {};
  }

  /// One RM invocation on behalf of active core `k`; distributes the
  /// decision to every active core's pending setting. The idle RM never
  /// reconfigures anything, so it is skipped entirely (energy reference).
  void invoke_rm(int k) {
    if (point.policy == rm::RmPolicy::Idle) return;
    const rm::RmDecision& decision = manager.invoke(k, snapshots, active_mask);
    ++rm_invocations;
    rm_ops += decision.ops;
    ServiceCoreState& st = cores[static_cast<std::size_t>(k)];
    if (cfg.sim.model_overheads) {
      st.next_overhead += overheads.rm_execution(decision.ops, st.setting);
    }
    for (int j = 0; j < sys.cores; ++j) {
      if (active_mask[static_cast<std::size_t>(j)] != 0) {
        cores[static_cast<std::size_t>(j)].pending =
            decision.settings[static_cast<std::size_t>(j)];
      }
    }
  }

  /// Seats (app, demand) on idle core `k` at time `now_s`: cold-start
  /// counters at the baseline setting (like the interval simulator's run
  /// start), then an RM invocation so the machine re-balances immediately.
  void admit(int k, int app, int demand, double arrival_s, double now_s) {
    ServiceCoreState& st = cores[static_cast<std::size_t>(k)];
    st = ServiceCoreState{};
    st.active = true;
    st.app = app;
    st.remaining = demand;
    st.setting = base;
    st.pending = base;
    active_mask[static_cast<std::size_t>(k)] = 1;
    wait_stats.add(now_s - arrival_s);
    if (point.policy != rm::RmPolicy::Idle) {
      const int phase0 = phase_at(st, 0);
      make_snapshot_into(*db, app, phase0, base, perfect ? phase0 : -1,
                         snapshots[static_cast<std::size_t>(k)]);
      invoke_rm(k);
    }
    start_interval(st, now_s);
  }

  [[nodiscard]] bool is_sensitive(int app) const {
    return app_class[static_cast<std::size_t>(app)] ==
           workload::PartClass::Sensitive;
  }

  /// Queue-release priority class of the qos-aware admission policy: light
  /// apps leave first (they barely touch the LLC, so seating them raises
  /// throughput without adding way pressure), then streaming, then
  /// sensitive.
  [[nodiscard]] int class_rank(int app) const {
    return static_cast<int>(app_class[static_cast<std::size_t>(app)]) == 1
               ? 1  // streaming
               : (is_sensitive(app) ? 2 : 0);
  }

  /// The qos-aware rejection predicate (see DESIGN.md): a cache-sensitive
  /// arrival is turned away when the system's way budget, divided over the
  /// sensitive applications already in the system plus this one, would fall
  /// below the -50% MPKI probe point - the allocation at which the Table II
  /// swing rule already certifies a > 20% MPKI inflation, i.e. a predicted
  /// Eq. 6 magnitude beyond the alpha relaxation. Light and streaming apps
  /// are never qos-rejected: extra ways do not help them, so they cannot
  /// blow the target through cache contention.
  [[nodiscard]] bool qos_reject(int app) const {
    if (!is_sensitive(app)) return false;
    const int budget = sys.llc.total_ways(sys.cores);
    return budget / (sensitive_in_system + 1) < min_useful_ways;
  }

  /// Queue offset (in [0, q_size)) the admission policy releases next.
  /// Fifo: the head. Sdf: smallest (demand, arrival time). QosAware:
  /// smallest (class rank, demand, arrival time). The scan order is fixed,
  /// so every tie-break is deterministic.
  [[nodiscard]] std::size_t pick_queue_slot() const {
    if (point.admission == AdmissionPolicy::Fifo || q_size <= 1) return 0;
    std::size_t best = 0;
    for (std::size_t off = 1; off < q_size; ++off) {
      const QueueEntry& e = queue[(q_head + off) % queue.size()];
      const QueueEntry& b = queue[(q_head + best) % queue.size()];
      if (point.admission == AdmissionPolicy::QosAware) {
        const int re = class_rank(e.app);
        const int rb = class_rank(b.app);
        if (re != rb) {
          if (re < rb) best = off;
          continue;
        }
      }
      if (e.demand != b.demand) {
        if (e.demand < b.demand) best = off;
        continue;
      }
      if (e.arrival_s < b.arrival_s) best = off;
    }
    return best;
  }

  /// Removes and returns the entry at queue offset `off`, preserving the
  /// arrival order of everything else (entries in front shift back one
  /// slot). O(off) moves inside the preallocated ring; no allocation.
  QueueEntry dequeue_at(std::size_t off) {
    const std::size_t cap = queue.size();
    const QueueEntry taken = queue[(q_head + off) % cap];
    for (std::size_t i = off; i > 0; --i) {
      queue[(q_head + i) % cap] = queue[(q_head + i - 1) % cap];
    }
    q_head = (q_head + 1) % cap;
    --q_size;
    return taken;
  }

  void on_arrival() {
    const workload::ArrivalEvent& ev = trace.events[next_arrival++];
    wall_s = std::max(wall_s, ev.time_s);
    for (int k = 0; k < sys.cores; ++k) {
      if (!cores[static_cast<std::size_t>(k)].active) {
        if (is_sensitive(ev.app)) ++sensitive_in_system;
        admit(k, ev.app, ev.demand_intervals, ev.time_s, ev.time_s);
        return;
      }
    }
    if (point.admission == AdmissionPolicy::QosAware && qos_reject(ev.app)) {
      ++rejected;
      ++qos_rejected;
      return;
    }
    if (q_size < queue.size()) {
      queue[(q_head + q_size) % queue.size()] = {ev.time_s, ev.app,
                                                 ev.demand_intervals};
      ++q_size;
      if (is_sensitive(ev.app)) ++sensitive_in_system;
    } else {
      ++rejected;
    }
  }

  void on_completion(int k) {
    ServiceCoreState& st = cores[static_cast<std::size_t>(k)];
    const double duration = st.end_s - st.start_s;
    busy_s += duration;
    ++intervals;
    st.app_energy_j += st.energy_j;
    core_energy_j += st.energy_j;
    wall_s = std::max(wall_s, st.end_s);

    // QoS accounting identical to interval_sim.cc: target is the
    // alpha-relaxed baseline time (Eq. 3), the magnitude is Eq. 6 against
    // that same target.
    const double qos_target_s = st.base_time_s * sys.qos_alpha;
    if (duration > qos_target_s * (1.0 + cfg.sim.qos_epsilon)) {
      ++violations;
      const double violation = (duration - qos_target_s) / qos_target_s;
      violation_hist.add(violation);
      violation_stats.add(violation);
    }

    const int finished_phase = st.phase;
    ++st.seq_pos;
    --st.remaining;

    if (st.remaining == 0) {
      // Departure: free the core, seat the longest-waiting queued app on it,
      // or - with an empty queue - let the RM redistribute the freed
      // resources among the cores that remain busy.
      ++served;
      app_energy_stats.add(st.app_energy_j);
      if (is_sensitive(st.app)) --sensitive_in_system;
      st.active = false;
      active_mask[static_cast<std::size_t>(k)] = 0;
      const double now_s = st.end_s;
      if (q_size > 0) {
        const QueueEntry entry = dequeue_at(pick_queue_slot());
        admit(k, entry.app, entry.demand, entry.arrival_s, now_s);
      } else {
        for (int j = 0; j < sys.cores; ++j) {
          if (active_mask[static_cast<std::size_t>(j)] != 0) {
            // Running intervals are frozen; the redistribution reaches each
            // core at its next boundary via the pending setting.
            invoke_rm(j);
            break;
          }
        }
      }
      return;
    }

    // Interval boundary of a resident app: fresh counters, RM invocation,
    // next interval - the Fig. 5 loop of the interval simulator.
    if (point.policy != rm::RmPolicy::Idle) {
      const int next_phase = phase_at(st, st.seq_pos);
      make_snapshot_into(*db, st.app, finished_phase, st.setting,
                         perfect ? next_phase : -1,
                         snapshots[static_cast<std::size_t>(k)]);
      invoke_rm(k);
    }
    start_interval(st, st.end_s);
  }

  bool step() {
    const double arrival_t =
        next_arrival < trace.events.size()
            ? trace.events[next_arrival].time_s
            : std::numeric_limits<double>::infinity();
    int next_core = -1;
    double best_end = std::numeric_limits<double>::infinity();
    for (int k = 0; k < sys.cores; ++k) {
      const ServiceCoreState& st = cores[static_cast<std::size_t>(k)];
      if (st.active && st.end_s < best_end) {
        best_end = st.end_s;
        next_core = k;
      }
    }
    if (next_core < 0 && next_arrival >= trace.events.size()) {
      // Drained. The queue must be empty: entries only exist while every
      // core is busy.
      QOSRM_CHECK(q_size == 0);
      return false;
    }
    // Completions at time t run before an arrival at the same t, so the
    // arrival can be seated on the just-freed core instead of queueing.
    if (next_core >= 0 && best_end <= arrival_t) {
      on_completion(next_core);
    } else {
      on_arrival();
    }
    return true;
  }

  [[nodiscard]] ServiceMetrics metrics() const {
    ServiceMetrics m;
    m.arrivals = next_arrival;
    m.served = served;
    m.rejected = rejected;
    m.qos_rejected = qos_rejected;
    m.intervals = intervals;
    m.violations = violations;
    m.violation_rate =
        intervals > 0
            ? static_cast<double>(violations) / static_cast<double>(intervals)
            : 0.0;
    m.p50_violation = violations > 0 ? violation_hist.quantile(0.50) : 0.0;
    m.p95_violation = violations > 0 ? violation_hist.quantile(0.95) : 0.0;
    m.p99_violation = violations > 0 ? violation_hist.quantile(0.99) : 0.0;
    m.max_violation = violation_stats.max();
    m.mean_violation = violation_stats.mean();
    m.uncore_energy_j = db->power().uncore_power(sys.cores) * wall_s;
    m.energy_total_j = core_energy_j + m.uncore_energy_j;
    m.energy_per_app_j = app_energy_stats.mean();
    m.rm_invocations = rm_invocations;
    m.rm_ops = rm_ops;
    m.decisions_per_sec =
        wall_s > 0.0 ? static_cast<double>(rm_invocations) / wall_s : 0.0;
    m.occupancy = wall_s > 0.0
                      ? busy_s / (static_cast<double>(sys.cores) * wall_s)
                      : 0.0;
    m.mean_wait_s = wait_stats.mean();
    m.wall_time_s = wall_s;
    return m;
  }
};

ServiceEngine::ServiceEngine(const workload::SimDb& db,
                             const ServiceConfig& config,
                             const ServicePoint& point)
    : impl_(std::make_unique<Impl>(db, config, point)) {}

ServiceEngine::~ServiceEngine() = default;
ServiceEngine::ServiceEngine(ServiceEngine&&) noexcept = default;
ServiceEngine& ServiceEngine::operator=(ServiceEngine&&) noexcept = default;

void ServiceEngine::reset() { impl_->reset(); }

bool ServiceEngine::step() { return impl_->step(); }

ServiceMetrics ServiceEngine::run() {
  impl_->reset();
  while (impl_->step()) {
  }
  QOSRM_CHECK_MSG(impl_->served + impl_->rejected == impl_->trace.events.size(),
                  "service drain lost arrivals");
  return impl_->metrics();
}

ServiceMetrics ServiceEngine::metrics() const { return impl_->metrics(); }

std::vector<ServiceRow> run_service_range(const workload::SimDb& db,
                                          const ServiceGrid& grid,
                                          const ServiceConfig& config,
                                          std::size_t begin, std::size_t end,
                                          const ServiceOptions& options) {
  QOSRM_CHECK_MSG(!grid.patterns.empty(), "service grid has no arrival patterns");
  QOSRM_CHECK_MSG(!grid.loads.empty(), "service grid has no load levels");
  QOSRM_CHECK_MSG(!grid.admissions.empty(),
                  "service grid has no admission policies");
  QOSRM_CHECK_MSG(!grid.policies.empty(), "service grid has no policies");
  QOSRM_CHECK_MSG(!grid.qos_alphas.empty(), "service grid has no qos alphas");
  QOSRM_CHECK_MSG(begin <= end && end <= grid.size(),
                  "service row range out of bounds");

  std::vector<ServiceRow> rows(end - begin);

  // Every task writes its own slot, so the result vector is identical for
  // any thread count (and any [begin, end) slicing across processes).
  const auto run_point = [&](std::size_t offset) {
    const ServicePoint point = grid.point(begin + offset);
    ServiceRow& row = rows[offset];
    row.pattern = point.pattern;
    row.load = point.load;
    row.admission = point.admission;
    row.policy = point.policy;
    row.model = config.model;
    row.qos_alpha = point.qos_alpha;
    ServiceEngine engine(db, config, point);
    row.metrics = engine.run();
  };

  std::size_t threads =
      options.threads <= 0
          ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
          : static_cast<std::size_t>(options.threads);
  if (threads <= 1 || rows.size() <= 1) {
    for (std::size_t i = 0; i < rows.size(); ++i) run_point(i);
  } else {
    ThreadPool pool(threads - 1);  // pool workers + the calling thread
    parallel_for(pool, 0, rows.size(), run_point);
  }
  return rows;
}

ServiceResult run_service(const workload::SimDb& db, const ServiceGrid& grid,
                          const ServiceConfig& config,
                          const ServiceOptions& options) {
  ServiceResult result;
  result.rows = run_service_range(db, grid, config, 0, grid.size(), options);
  return result;
}

std::uint64_t service_fingerprint(const ServiceGrid& grid,
                                  const ServiceConfig& config,
                                  std::uint64_t db_fingerprint) {
  Fnv1a64 h;
  h.add_u32(2);  // service fingerprint schema version (2: admission axis)
  h.add_u64(db_fingerprint);

  h.add_u64(grid.patterns.size());
  for (const workload::ArrivalPattern p : grid.patterns) {
    h.add_u32(static_cast<std::uint32_t>(p));
  }
  h.add_u64(grid.loads.size());
  for (const double l : grid.loads) h.add_f64(l);
  h.add_u64(grid.admissions.size());
  for (const AdmissionPolicy a : grid.admissions) {
    h.add_u32(static_cast<std::uint32_t>(a));
  }
  h.add_u64(grid.policies.size());
  for (const rm::RmPolicy p : grid.policies) {
    h.add_u32(static_cast<std::uint32_t>(p));
  }
  h.add_u64(grid.qos_alphas.size());
  for (const double a : grid.qos_alphas) h.add_f64(a);

  h.add_u64(config.arrivals);
  h.add_u64(config.seed);
  h.add_u32(static_cast<std::uint32_t>(config.model));
  h.add_i64(config.demand_min);
  h.add_i64(config.demand_max);
  h.add_u64(config.queue_capacity);
  h.add_u32(config.sim.model_overheads ? 1u : 0u);
  h.add_f64(config.sim.overheads.instr_base);
  h.add_f64(config.sim.overheads.instr_per_op);
  h.add_f64(config.sim.overheads.dvfs.time_s);
  h.add_f64(config.sim.overheads.dvfs.energy_j);
  h.add_f64(config.sim.qos_epsilon);
  h.add_f64(config.hist_max_violation);
  h.add_u64(config.hist_bins);
  return h.digest();
}

void write_service_csv(const std::vector<ServiceRow>& rows,
                       const std::string& path) {
  CsvWriter csv(path,
                {"pattern", "load", "admission", "policy", "model", "qos_alpha",
                 "arrivals", "served", "rejected", "qos_rejected", "intervals",
                 "violations",
                 "violation_rate", "p50_violation", "p95_violation",
                 "p99_violation", "max_violation", "mean_violation",
                 "energy_total_j", "uncore_energy_j", "energy_per_app_j",
                 "rm_invocations", "rm_ops", "decisions_per_sec", "occupancy",
                 "mean_wait_s", "wall_time_s"});
  for (const ServiceRow& row : rows) {
    const ServiceMetrics& m = row.metrics;
    csv.add_row({workload::arrival_pattern_name(row.pattern), fmt(row.load),
                 admission_policy_name(row.admission),
                 rm::rm_policy_name(row.policy), rm::perf_model_name(row.model),
                 fmt(row.qos_alpha), std::to_string(m.arrivals),
                 std::to_string(m.served), std::to_string(m.rejected),
                 std::to_string(m.qos_rejected),
                 std::to_string(m.intervals), std::to_string(m.violations),
                 fmt(m.violation_rate), fmt(m.p50_violation),
                 fmt(m.p95_violation), fmt(m.p99_violation),
                 fmt(m.max_violation), fmt(m.mean_violation),
                 fmt(m.energy_total_j), fmt(m.uncore_energy_j),
                 fmt(m.energy_per_app_j), std::to_string(m.rm_invocations),
                 std::to_string(m.rm_ops), fmt(m.decisions_per_sec),
                 fmt(m.occupancy), fmt(m.mean_wait_s), fmt(m.wall_time_s)});
  }
  csv.close();  // atomic commit; throws instead of publishing a partial file
}

std::vector<double> parse_loads(const std::string& spec) {
  std::vector<double> out;
  for (const std::string& part : split_csv_list(spec)) {
    QOSRM_CHECK_MSG(!part.empty(),
                    "empty --load entry (an empty list or stray comma would "
                    "silently sweep a zero-row or shortened grid)");
    char* end = nullptr;
    const double value = std::strtod(part.c_str(), &end);
    QOSRM_CHECK_MSG(end != nullptr && *end == '\0' && std::isfinite(value) &&
                        value > 0.0,
                    "bad --load entry (want a finite value > 0)");
    out.push_back(value);
  }
  return out;
}

}  // namespace qosrm::rmsim
