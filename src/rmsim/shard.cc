#include "rmsim/shard.hh"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <utility>

#include "common/binary_io.hh"
#include "common/check.hh"
#include "common/file_util.hh"
#include "common/str.hh"
#include "workload/spec_suite.hh"

namespace qosrm::rmsim {

namespace {

// "QOSRMPT\0" little-endian.
constexpr std::uint64_t kMagic = 0x0054504D52534F51ULL;
// "QOSRMSV\0" little-endian - the service-part magic, distinct from the
// sweep magic so the two part kinds can never be cross-merged.
constexpr std::uint64_t kServiceMagic = 0x0056534D52534F51ULL;

bool fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

void write_core(BinaryWriter& w, const CoreResult& core) {
  w.write_u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(core.app)));
  w.write_f64(core.counted_energy_j);
  w.write_f64(core.executed_instructions);
  w.write_f64(core.finish_time_s);
  w.write_u64(core.intervals);
  w.write_u64(core.qos_violations);
  w.write_f64(core.violation_sum);
  w.write_f64(core.violation_max);
}

[[nodiscard]] CoreResult read_core(BinaryReader& r) {
  CoreResult core;
  core.app = static_cast<int>(static_cast<std::int64_t>(r.read_u64()));
  core.counted_energy_j = r.read_f64();
  core.executed_instructions = r.read_f64();
  core.finish_time_s = r.read_f64();
  core.intervals = r.read_u64();
  core.qos_violations = r.read_u64();
  core.violation_sum = r.read_f64();
  core.violation_max = r.read_f64();
  return core;
}

void write_row(BinaryWriter& w, const SweepRow& row) {
  w.write_string(row.workload);
  w.write_u32(static_cast<std::uint32_t>(row.scenario));
  w.write_u32(static_cast<std::uint32_t>(row.policy));
  w.write_u32(static_cast<std::uint32_t>(row.model));
  w.write_f64(row.qos_alpha);
  w.write_f64(row.result.savings);

  const RunResult& run = row.result.run;
  w.write_string(run.workload);
  w.write_u32(static_cast<std::uint32_t>(run.scenario));
  w.write_u32(static_cast<std::uint32_t>(run.policy));
  w.write_u32(static_cast<std::uint32_t>(run.model));
  w.write_u64(run.cores.size());
  for (const CoreResult& core : run.cores) write_core(w, core);
  w.write_f64(run.uncore_energy_j);
  w.write_f64(run.wall_time_s);
  w.write_u64(run.rm_invocations);
  w.write_u64(run.rm_ops);
}

[[nodiscard]] SweepRow read_row(BinaryReader& r) {
  // Enum fields are range-checked before the cast; anything out of range
  // fails the read (the checksum catches random corruption, but a hand-made
  // file must not produce undefined enum values).
  const auto read_scenario = [&r]() {
    const std::uint32_t v = r.read_u32();
    if (v < 1 || v > 4) r.fail();
    return static_cast<workload::Scenario>(v);
  };
  const auto read_policy = [&r]() {
    const std::uint32_t v = r.read_u32();
    if (v > static_cast<std::uint32_t>(rm::RmPolicy::ClassPart)) r.fail();
    return static_cast<rm::RmPolicy>(v);
  };
  const auto read_model = [&r]() {
    const std::uint32_t v = r.read_u32();
    if (v > 3) r.fail();
    return static_cast<rm::PerfModelKind>(v);
  };

  SweepRow row;
  row.workload = r.read_string();
  row.scenario = read_scenario();
  row.policy = read_policy();
  row.model = read_model();
  row.qos_alpha = r.read_f64();
  row.result.savings = r.read_f64();

  RunResult& run = row.result.run;
  run.workload = r.read_string();
  run.scenario = read_scenario();
  run.policy = read_policy();
  run.model = read_model();
  const std::uint64_t n_cores = r.read_u64();
  if (!r.ok() || n_cores > 1024) {  // corrupt count must not allocate wild
    r.fail();
    return row;
  }
  run.cores.reserve(static_cast<std::size_t>(n_cores));
  for (std::uint64_t k = 0; k < n_cores; ++k) run.cores.push_back(read_core(r));
  run.uncore_energy_j = r.read_f64();
  run.wall_time_s = r.read_f64();
  run.rm_invocations = r.read_u64();
  run.rm_ops = r.read_u64();
  return row;
}

void write_service_row(BinaryWriter& w, const ServiceRow& row) {
  w.write_u32(static_cast<std::uint32_t>(row.pattern));
  w.write_f64(row.load);
  w.write_u32(static_cast<std::uint32_t>(row.admission));
  w.write_u32(static_cast<std::uint32_t>(row.policy));
  w.write_u32(static_cast<std::uint32_t>(row.model));
  w.write_f64(row.qos_alpha);

  const ServiceMetrics& m = row.metrics;
  w.write_u64(m.arrivals);
  w.write_u64(m.served);
  w.write_u64(m.rejected);
  w.write_u64(m.qos_rejected);
  w.write_u64(m.intervals);
  w.write_u64(m.violations);
  w.write_f64(m.violation_rate);
  w.write_f64(m.p50_violation);
  w.write_f64(m.p95_violation);
  w.write_f64(m.p99_violation);
  w.write_f64(m.max_violation);
  w.write_f64(m.mean_violation);
  w.write_f64(m.energy_total_j);
  w.write_f64(m.uncore_energy_j);
  w.write_f64(m.energy_per_app_j);
  w.write_u64(m.rm_invocations);
  w.write_u64(m.rm_ops);
  w.write_f64(m.decisions_per_sec);
  w.write_f64(m.occupancy);
  w.write_f64(m.mean_wait_s);
  w.write_f64(m.wall_time_s);
}

[[nodiscard]] ServiceRow read_service_row(BinaryReader& r) {
  // Enum fields are range-checked before the cast, like read_row above.
  ServiceRow row;
  const std::uint32_t pattern = r.read_u32();
  if (pattern > 2) r.fail();
  row.pattern = static_cast<workload::ArrivalPattern>(pattern);
  row.load = r.read_f64();
  const std::uint32_t admission = r.read_u32();
  if (admission >= static_cast<std::uint32_t>(kNumAdmissionPolicies)) r.fail();
  row.admission = static_cast<AdmissionPolicy>(admission);
  const std::uint32_t policy = r.read_u32();
  if (policy > static_cast<std::uint32_t>(rm::RmPolicy::ClassPart)) r.fail();
  row.policy = static_cast<rm::RmPolicy>(policy);
  const std::uint32_t model = r.read_u32();
  if (model > 3) r.fail();
  row.model = static_cast<rm::PerfModelKind>(model);
  row.qos_alpha = r.read_f64();

  ServiceMetrics& m = row.metrics;
  m.arrivals = r.read_u64();
  m.served = r.read_u64();
  m.rejected = r.read_u64();
  m.qos_rejected = r.read_u64();
  m.intervals = r.read_u64();
  m.violations = r.read_u64();
  m.violation_rate = r.read_f64();
  m.p50_violation = r.read_f64();
  m.p95_violation = r.read_f64();
  m.p99_violation = r.read_f64();
  m.max_violation = r.read_f64();
  m.mean_violation = r.read_f64();
  m.energy_total_j = r.read_f64();
  m.uncore_energy_j = r.read_f64();
  m.energy_per_app_j = r.read_f64();
  m.rm_invocations = r.read_u64();
  m.rm_ops = r.read_u64();
  m.decisions_per_sec = r.read_f64();
  m.occupancy = r.read_f64();
  m.mean_wait_s = r.read_f64();
  m.wall_time_s = r.read_f64();
  return row;
}

}  // namespace

ShardRange shard_range(std::size_t total_rows, std::size_t index,
                       std::size_t count) {
  QOSRM_CHECK_MSG(count >= 1, "shard count must be >= 1");
  QOSRM_CHECK_MSG(index < count, "shard index out of range");
  const std::size_t base = total_rows / count;
  const std::size_t extra = total_rows % count;
  // Shards [0, extra) own base+1 rows, the rest own base.
  const std::size_t begin =
      index * base + std::min(index, extra);
  const std::size_t size = base + (index < extra ? 1 : 0);
  return {begin, begin + size};
}

std::vector<ShardRange> shard_ranges(std::size_t total_rows, std::size_t count) {
  std::vector<ShardRange> ranges;
  ranges.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ranges.push_back(shard_range(total_rows, i, count));
  }
  return ranges;
}

std::uint64_t sweep_fingerprint(const SweepGrid& grid, const SimOptions& sim,
                                std::uint64_t db_fingerprint) {
  Fnv1a64 h;
  h.add_u32(kSweepPartVersion);
  h.add_u64(db_fingerprint);

  h.add_u64(grid.mixes.size());
  for (const workload::WorkloadMix& mix : grid.mixes) {
    h.add_string(mix.name);
    h.add_u32(static_cast<std::uint32_t>(mix.scenario));
    h.add_u64(mix.app_ids.size());
    for (const int app : mix.app_ids) h.add_i64(app);
  }
  h.add_u64(grid.policies.size());
  for (const rm::RmPolicy p : grid.policies) {
    h.add_u32(static_cast<std::uint32_t>(p));
  }
  h.add_u64(grid.models.size());
  for (const rm::PerfModelKind m : grid.models) {
    h.add_u32(static_cast<std::uint32_t>(m));
  }
  h.add_u64(grid.qos_alphas.size());
  for (const double a : grid.qos_alphas) h.add_f64(a);

  h.add_u32(sim.model_overheads ? 1u : 0u);
  h.add_f64(sim.overheads.instr_base);
  h.add_f64(sim.overheads.instr_per_op);
  h.add_f64(sim.overheads.dvfs.time_s);
  h.add_f64(sim.overheads.dvfs.energy_j);
  h.add_f64(sim.qos_epsilon);
  h.add_f64(sim.qos_alpha_override);
  return h.digest();
}

std::string part_path(const std::string& prefix, std::size_t index,
                      std::size_t count) {
  return format("%s.%zu-of-%zu%s", prefix.c_str(), index, count,
                kSweepPartExtension);
}

bool save_sweep_part(const SweepPart& part, const std::string& path,
                     std::string* error) {
  if (part.shard_count < 1 || part.shard_index >= part.shard_count ||
      part.range.begin > part.range.end ||
      part.range.end > part.shape.size() ||
      part.range != shard_range(part.shape.size(), part.shard_index,
                                part.shard_count) ||
      part.rows.size() != part.range.size()) {
    return fail(error, "inconsistent sweep part metadata");
  }

  // Write to a uniquely named sibling and rename into place: a killed
  // worker leaves at worst a *.tmp.* orphan, never a partial part file that
  // a resume pass would have to distrust.
  const std::string tmp_path = atomic_tmp_path(path);
  std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
  if (!out.good()) {
    return fail(error, format("cannot open %s for writing", path.c_str()));
  }

  BinaryWriter w(out);
  w.write_u64(kMagic);
  w.write_u32(kSweepPartVersion);
  w.write_u32(kByteOrderMark);
  w.write_u64(part.fingerprint);
  w.write_u64(part.shape.mixes);
  w.write_u64(part.shape.policies);
  w.write_u64(part.shape.models);
  w.write_u64(part.shape.alphas);
  w.write_u64(part.shard_index);
  w.write_u64(part.shard_count);
  w.write_u64(part.range.begin);
  w.write_u64(part.range.end);
  for (const SweepRow& row : part.rows) write_row(w, row);
  w.write_trailing_checksum();
  out.flush();
  if (!out.good()) {
    out.close();
    std::remove(tmp_path.c_str());
    return fail(error, format("write to %s failed", path.c_str()));
  }
  out.close();
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return fail(error, format("cannot move part into place at %s", path.c_str()));
  }
  return true;
}

std::optional<SweepPart> load_sweep_part(const std::string& path,
                                         std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    fail(error, format("cannot open %s for reading", path.c_str()));
    return std::nullopt;
  }

  BinaryReader r(in);
  const std::uint64_t magic = r.read_u64();
  if (!r.ok() || magic != kMagic) {
    fail(error, format("%s is not a sweep part (bad magic)", path.c_str()));
    return std::nullopt;
  }
  const std::uint32_t version = r.read_u32();
  if (!r.ok() || version != kSweepPartVersion) {
    fail(error, format("%s has part version %u, expected %u", path.c_str(),
                       version, kSweepPartVersion));
    return std::nullopt;
  }
  const std::uint32_t bom = r.read_u32();
  if (!r.ok() || bom != kByteOrderMark) {
    fail(error,
         format("%s was written on a machine with different byte order",
                path.c_str()));
    return std::nullopt;
  }

  SweepPart part;
  part.fingerprint = r.read_u64();
  part.shape.mixes = static_cast<std::size_t>(r.read_u64());
  part.shape.policies = static_cast<std::size_t>(r.read_u64());
  part.shape.models = static_cast<std::size_t>(r.read_u64());
  part.shape.alphas = static_cast<std::size_t>(r.read_u64());
  part.shard_index = static_cast<std::size_t>(r.read_u64());
  part.shard_count = static_cast<std::size_t>(r.read_u64());
  part.range.begin = static_cast<std::size_t>(r.read_u64());
  part.range.end = static_cast<std::size_t>(r.read_u64());

  // Metadata sanity before trusting the row count: a corrupt header must
  // not drive a huge allocation, and the axis product must be computed
  // overflow-free before it bounds the range (four 2^20 axes would wrap
  // std::size_t and slip past a naive shape.size() check).
  constexpr std::size_t kMaxAxis = std::size_t{1} << 20;
  constexpr unsigned __int128 kMaxRows = std::size_t{1} << 32;
  const unsigned __int128 total_rows = static_cast<unsigned __int128>(
                                           part.shape.mixes) *
                                       part.shape.policies * part.shape.models *
                                       part.shape.alphas;
  if (!r.ok() || part.shape.mixes == 0 || part.shape.mixes > kMaxAxis ||
      part.shape.policies == 0 || part.shape.policies > kMaxAxis ||
      part.shape.models == 0 || part.shape.models > kMaxAxis ||
      part.shape.alphas == 0 || part.shape.alphas > kMaxAxis ||
      total_rows > kMaxRows ||
      part.shard_count < 1 || part.shard_index >= part.shard_count ||
      part.range !=
          shard_range(part.shape.size(), part.shard_index, part.shard_count)) {
    fail(error, format("%s is corrupt (inconsistent part header)", path.c_str()));
    return std::nullopt;
  }

  // Grow incrementally rather than reserving the claimed row count up
  // front: a lying header then fails on the first short read instead of
  // provoking a giant allocation.
  part.rows.reserve(std::min<std::size_t>(part.range.size(), 4096));
  for (std::size_t i = 0; i < part.range.size(); ++i) {
    part.rows.push_back(read_row(r));
    if (!r.ok()) {
      fail(error, format("%s is corrupt (truncated row data)", path.c_str()));
      return std::nullopt;
    }
  }
  if (!r.verify_trailing_checksum()) {
    fail(error,
         format("%s is corrupt (truncated or checksum mismatch)", path.c_str()));
    return std::nullopt;
  }
  if (in.peek() != std::ifstream::traits_type::eof()) {
    fail(error, format("%s is corrupt (trailing bytes after checksum)",
                       path.c_str()));
    return std::nullopt;
  }
  return part;
}

std::optional<std::vector<SweepRow>> merge_sweep_parts(
    std::vector<SweepPart> parts, std::string* error) {
  if (parts.empty()) {
    fail(error, "no sweep parts to merge");
    return std::nullopt;
  }

  const SweepPart& first = parts.front();
  for (const SweepPart& part : parts) {
    if (part.fingerprint != first.fingerprint) {
      fail(error,
           format("shard %zu/%zu belongs to a different sweep (fingerprint "
                  "%016llx, expected %016llx)",
                  part.shard_index, part.shard_count,
                  static_cast<unsigned long long>(part.fingerprint),
                  static_cast<unsigned long long>(first.fingerprint)));
      return std::nullopt;
    }
    if (!(part.shape == first.shape) || part.shard_count != first.shard_count) {
      fail(error, format("shard %zu has a mismatched grid shape or shard count",
                         part.shard_index));
      return std::nullopt;
    }
  }
  if (parts.size() != first.shard_count) {
    fail(error, format("have %zu parts but the sweep was sharded %zu ways",
                       parts.size(), first.shard_count));
    return std::nullopt;
  }

  std::sort(parts.begin(), parts.end(),
            [](const SweepPart& a, const SweepPart& b) {
              return a.shard_index < b.shard_index;
            });
  const std::size_t total = first.shape.size();
  std::size_t next_row = 0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const SweepPart& part = parts[i];
    if (part.shard_index != i) {
      fail(error, format("shard %zu is missing or duplicated", i));
      return std::nullopt;
    }
    if (part.range.begin != next_row) {
      fail(error, format("shard %zu rows [%zu, %zu) leave a gap or overlap at "
                         "row %zu",
                         i, part.range.begin, part.range.end, next_row));
      return std::nullopt;
    }
    next_row = part.range.end;
  }
  if (next_row != total) {
    fail(error, format("parts cover %zu of %zu grid rows", next_row, total));
    return std::nullopt;
  }

  std::vector<SweepRow> rows;
  rows.reserve(total);
  for (SweepPart& part : parts) {
    for (SweepRow& row : part.rows) rows.push_back(std::move(row));
  }
  return rows;
}

std::optional<SweepResult> merge_part_files(
    const std::vector<std::string>& paths,
    const std::uint64_t* expected_fingerprint, std::string* error,
    SweepIdentity* identity) {
  std::vector<SweepPart> parts;
  parts.reserve(paths.size());
  for (const std::string& path : paths) {
    std::optional<SweepPart> part = load_sweep_part(path, error);
    if (!part.has_value()) return std::nullopt;
    if (expected_fingerprint != nullptr &&
        part->fingerprint != *expected_fingerprint) {
      fail(error,
           format("%s belongs to a different sweep than this command line",
                  path.c_str()));
      return std::nullopt;
    }
    parts.push_back(std::move(*part));
  }
  if (parts.empty()) {
    fail(error, "no sweep parts to merge");
    return std::nullopt;
  }

  const GridShape shape = parts.front().shape;
  if (identity != nullptr) {
    identity->fingerprint = parts.front().fingerprint;
    identity->shape = shape;
  }
  std::optional<std::vector<SweepRow>> rows =
      merge_sweep_parts(std::move(parts), error);
  if (!rows.has_value()) return std::nullopt;

  SweepResult result;
  result.rows = std::move(*rows);
  result.aggregates = compute_aggregates(
      result.rows, shape, scenario_weights(workload::spec_suite()));
  return result;
}

std::vector<std::size_t> shards_to_run(const std::string& prefix,
                                       std::size_t count,
                                       std::uint64_t fingerprint,
                                       const GridShape& shape) {
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < count; ++i) {
    std::string error;
    const std::optional<SweepPart> part =
        load_sweep_part(part_path(prefix, i, count), &error);
    const bool complete = part.has_value() && part->fingerprint == fingerprint &&
                          part->shape == shape && part->shard_index == i &&
                          part->shard_count == count;
    if (!complete) pending.push_back(i);
  }
  return pending;
}

bool save_service_part(const ServicePart& part, const std::string& path,
                       std::string* error) {
  if (part.shard_count < 1 || part.shard_index >= part.shard_count ||
      part.range.begin > part.range.end ||
      part.range.end > part.shape.size() ||
      part.range != shard_range(part.shape.size(), part.shard_index,
                                part.shard_count) ||
      part.rows.size() != part.range.size()) {
    return fail(error, "inconsistent service part metadata");
  }

  const std::string tmp_path = atomic_tmp_path(path);
  std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
  if (!out.good()) {
    return fail(error, format("cannot open %s for writing", path.c_str()));
  }

  BinaryWriter w(out);
  w.write_u64(kServiceMagic);
  w.write_u32(kServicePartVersion);
  w.write_u32(kByteOrderMark);
  w.write_u64(part.fingerprint);
  w.write_u64(part.shape.patterns);
  w.write_u64(part.shape.loads);
  w.write_u64(part.shape.admissions);
  w.write_u64(part.shape.policies);
  w.write_u64(part.shape.alphas);
  w.write_u64(part.shard_index);
  w.write_u64(part.shard_count);
  w.write_u64(part.range.begin);
  w.write_u64(part.range.end);
  for (const ServiceRow& row : part.rows) write_service_row(w, row);
  w.write_trailing_checksum();
  out.flush();
  if (!out.good()) {
    out.close();
    std::remove(tmp_path.c_str());
    return fail(error, format("write to %s failed", path.c_str()));
  }
  out.close();
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return fail(error, format("cannot move part into place at %s", path.c_str()));
  }
  return true;
}

std::optional<ServicePart> load_service_part(const std::string& path,
                                             std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    fail(error, format("cannot open %s for reading", path.c_str()));
    return std::nullopt;
  }

  BinaryReader r(in);
  const std::uint64_t magic = r.read_u64();
  if (!r.ok() || magic != kServiceMagic) {
    fail(error, format("%s is not a service part (bad magic)", path.c_str()));
    return std::nullopt;
  }
  const std::uint32_t version = r.read_u32();
  if (!r.ok() || version != kServicePartVersion) {
    fail(error, format("%s has part version %u, expected %u", path.c_str(),
                       version, kServicePartVersion));
    return std::nullopt;
  }
  const std::uint32_t bom = r.read_u32();
  if (!r.ok() || bom != kByteOrderMark) {
    fail(error,
         format("%s was written on a machine with different byte order",
                path.c_str()));
    return std::nullopt;
  }

  ServicePart part;
  part.fingerprint = r.read_u64();
  part.shape.patterns = static_cast<std::size_t>(r.read_u64());
  part.shape.loads = static_cast<std::size_t>(r.read_u64());
  part.shape.admissions = static_cast<std::size_t>(r.read_u64());
  part.shape.policies = static_cast<std::size_t>(r.read_u64());
  part.shape.alphas = static_cast<std::size_t>(r.read_u64());
  part.shard_index = static_cast<std::size_t>(r.read_u64());
  part.shard_count = static_cast<std::size_t>(r.read_u64());
  part.range.begin = static_cast<std::size_t>(r.read_u64());
  part.range.end = static_cast<std::size_t>(r.read_u64());

  // Same overflow-free shape sanity as the sweep loader: a corrupt header
  // must neither drive a huge allocation nor wrap the axis product.
  constexpr std::size_t kMaxAxis = std::size_t{1} << 20;
  constexpr unsigned __int128 kMaxRows = std::size_t{1} << 32;
  const unsigned __int128 total_rows = static_cast<unsigned __int128>(
                                           part.shape.patterns) *
                                       part.shape.loads *
                                       part.shape.admissions *
                                       part.shape.policies * part.shape.alphas;
  if (!r.ok() || part.shape.patterns == 0 || part.shape.patterns > kMaxAxis ||
      part.shape.loads == 0 || part.shape.loads > kMaxAxis ||
      part.shape.admissions == 0 || part.shape.admissions > kMaxAxis ||
      part.shape.policies == 0 || part.shape.policies > kMaxAxis ||
      part.shape.alphas == 0 || part.shape.alphas > kMaxAxis ||
      total_rows > kMaxRows ||
      part.shard_count < 1 || part.shard_index >= part.shard_count ||
      part.range !=
          shard_range(part.shape.size(), part.shard_index, part.shard_count)) {
    fail(error, format("%s is corrupt (inconsistent part header)", path.c_str()));
    return std::nullopt;
  }

  part.rows.reserve(std::min<std::size_t>(part.range.size(), 4096));
  for (std::size_t i = 0; i < part.range.size(); ++i) {
    part.rows.push_back(read_service_row(r));
    if (!r.ok()) {
      fail(error, format("%s is corrupt (truncated row data)", path.c_str()));
      return std::nullopt;
    }
  }
  if (!r.verify_trailing_checksum()) {
    fail(error,
         format("%s is corrupt (truncated or checksum mismatch)", path.c_str()));
    return std::nullopt;
  }
  if (in.peek() != std::ifstream::traits_type::eof()) {
    fail(error, format("%s is corrupt (trailing bytes after checksum)",
                       path.c_str()));
    return std::nullopt;
  }
  return part;
}

std::optional<std::vector<ServiceRow>> merge_service_parts(
    std::vector<ServicePart> parts, std::string* error) {
  if (parts.empty()) {
    fail(error, "no service parts to merge");
    return std::nullopt;
  }

  const ServicePart& first = parts.front();
  for (const ServicePart& part : parts) {
    if (part.fingerprint != first.fingerprint) {
      fail(error,
           format("shard %zu/%zu belongs to a different service sweep "
                  "(fingerprint %016llx, expected %016llx)",
                  part.shard_index, part.shard_count,
                  static_cast<unsigned long long>(part.fingerprint),
                  static_cast<unsigned long long>(first.fingerprint)));
      return std::nullopt;
    }
    if (!(part.shape == first.shape) || part.shard_count != first.shard_count) {
      fail(error, format("shard %zu has a mismatched grid shape or shard count",
                         part.shard_index));
      return std::nullopt;
    }
  }
  if (parts.size() != first.shard_count) {
    fail(error, format("have %zu parts but the sweep was sharded %zu ways",
                       parts.size(), first.shard_count));
    return std::nullopt;
  }

  std::sort(parts.begin(), parts.end(),
            [](const ServicePart& a, const ServicePart& b) {
              return a.shard_index < b.shard_index;
            });
  const std::size_t total = first.shape.size();
  std::size_t next_row = 0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const ServicePart& part = parts[i];
    if (part.shard_index != i) {
      fail(error, format("shard %zu is missing or duplicated", i));
      return std::nullopt;
    }
    if (part.range.begin != next_row) {
      fail(error, format("shard %zu rows [%zu, %zu) leave a gap or overlap at "
                         "row %zu",
                         i, part.range.begin, part.range.end, next_row));
      return std::nullopt;
    }
    next_row = part.range.end;
  }
  if (next_row != total) {
    fail(error, format("parts cover %zu of %zu grid rows", next_row, total));
    return std::nullopt;
  }

  std::vector<ServiceRow> rows;
  rows.reserve(total);
  for (ServicePart& part : parts) {
    for (ServiceRow& row : part.rows) rows.push_back(row);
  }
  return rows;
}

std::optional<std::vector<ServiceRow>> merge_service_part_files(
    const std::vector<std::string>& paths,
    const std::uint64_t* expected_fingerprint, std::string* error,
    ServiceIdentity* identity) {
  std::vector<ServicePart> parts;
  parts.reserve(paths.size());
  for (const std::string& path : paths) {
    std::optional<ServicePart> part = load_service_part(path, error);
    if (!part.has_value()) return std::nullopt;
    if (expected_fingerprint != nullptr &&
        part->fingerprint != *expected_fingerprint) {
      fail(error,
           format("%s belongs to a different service sweep than this command "
                  "line",
                  path.c_str()));
      return std::nullopt;
    }
    parts.push_back(std::move(*part));
  }
  if (parts.empty()) {
    fail(error, "no service parts to merge");
    return std::nullopt;
  }

  if (identity != nullptr) {
    identity->fingerprint = parts.front().fingerprint;
    identity->shape = parts.front().shape;
  }
  return merge_service_parts(std::move(parts), error);
}

std::vector<std::size_t> service_shards_to_run(const std::string& prefix,
                                               std::size_t count,
                                               std::uint64_t fingerprint,
                                               const ServiceGridShape& shape) {
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < count; ++i) {
    std::string error;
    const std::optional<ServicePart> part =
        load_service_part(part_path(prefix, i, count), &error);
    const bool complete = part.has_value() && part->fingerprint == fingerprint &&
                          part->shape == shape && part->shard_index == i &&
                          part->shard_count == count;
    if (!complete) pending.push_back(i);
  }
  return pending;
}

}  // namespace qosrm::rmsim
