// RAPL-like per-core energy sampling (paper Section III-D).
//
// The paper assumes the RM can measure total core energy over an interval
// and subtract the (offline-characterized) static component to obtain the
// sampled dynamic power P*_CoreDyn at the sampling voltage V*. This class
// models that measurement path so the online energy model (rm/energy_model)
// never touches ground-truth internals directly.
#ifndef QOSRM_POWER_ENERGY_METER_HH
#define QOSRM_POWER_ENERGY_METER_HH

#include "arch/core_config.hh"
#include "arch/dvfs.hh"
#include "power/power_model.hh"

namespace qosrm::power {

/// One dynamic-power sample: P*_CoreDyn at configuration (size, V*, f*),
/// plus the underlying measured quantities (the sampled interval's dynamic
/// ENERGY and duration) so energy-conserving scaling is possible.
struct PowerSample {
  arch::CoreSize size = arch::CoreSize::M;
  double voltage = 1.0;
  double freq_hz = 2e9;
  double dynamic_power_w = 0.0;
  double dynamic_energy_j = 0.0;  ///< P*_CoreDyn * sample duration
  double duration_s = 0.0;        ///< sampled interval duration
  bool valid = false;
};

/// Builds the dynamic-power sample of one measured interval directly - the
/// same arithmetic EnergyMeter::record_interval applies - so hot-path
/// callers (snapshot construction at every interval boundary) need not
/// instantiate a meter.
[[nodiscard]] PowerSample sample_interval(const PowerModel& model,
                                          arch::CoreSize c,
                                          const arch::OperatingPoint& vf,
                                          double core_energy_j,
                                          double duration_s);

class EnergyMeter {
 public:
  explicit EnergyMeter(const PowerModel& model) : model_(&model) {}

  /// Records one measured interval: `core_energy_j` is the total core energy
  /// (dynamic + static) observed over `duration_s` at (c, vf). Updates the
  /// current sample.
  void record_interval(arch::CoreSize c, const arch::OperatingPoint& vf,
                       double core_energy_j, double duration_s);

  [[nodiscard]] const PowerSample& sample() const noexcept { return sample_; }

  /// Offline static-power table lookup, the same characterization the online
  /// energy model uses (paper: "static power ... measured offline").
  [[nodiscard]] double static_power(arch::CoreSize c, double voltage) const noexcept {
    return model_->core_static_power(c, voltage);
  }

 private:
  const PowerModel* model_;
  PowerSample sample_{};
};

}  // namespace qosrm::power

#endif  // QOSRM_POWER_ENERGY_METER_HH
