#include "power/energy_meter.hh"

#include <algorithm>

#include "common/check.hh"

namespace qosrm::power {

void EnergyMeter::record_interval(arch::CoreSize c, const arch::OperatingPoint& vf,
                                  double core_energy_j, double duration_s) {
  QOSRM_CHECK(duration_s > 0.0);
  const double static_j = static_power(c, vf.voltage) * duration_s;
  sample_.size = c;
  sample_.voltage = vf.voltage;
  sample_.freq_hz = vf.freq_hz;
  sample_.dynamic_energy_j = std::max(0.0, core_energy_j - static_j);
  sample_.dynamic_power_w = sample_.dynamic_energy_j / duration_s;
  sample_.duration_s = duration_s;
  sample_.valid = true;
}

}  // namespace qosrm::power
