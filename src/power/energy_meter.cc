#include "power/energy_meter.hh"

#include <algorithm>

#include "common/check.hh"

namespace qosrm::power {

PowerSample sample_interval(const PowerModel& model, arch::CoreSize c,
                            const arch::OperatingPoint& vf, double core_energy_j,
                            double duration_s) {
  QOSRM_CHECK(duration_s > 0.0);
  const double static_j = model.core_static_power(c, vf.voltage) * duration_s;
  PowerSample sample;
  sample.size = c;
  sample.voltage = vf.voltage;
  sample.freq_hz = vf.freq_hz;
  sample.dynamic_energy_j = std::max(0.0, core_energy_j - static_j);
  sample.dynamic_power_w = sample.dynamic_energy_j / duration_s;
  sample.duration_s = duration_s;
  sample.valid = true;
  return sample;
}

void EnergyMeter::record_interval(arch::CoreSize c, const arch::OperatingPoint& vf,
                                  double core_energy_j, double duration_s) {
  sample_ = sample_interval(*model_, c, vf, core_energy_j, duration_s);
}

}  // namespace qosrm::power
