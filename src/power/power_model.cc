#include "power/power_model.hh"

#include "common/check.hh"

namespace qosrm::power {

double PowerModel::core_dynamic_energy(arch::CoreSize c, double v,
                                       double instructions,
                                       double stalled_cycles) const noexcept {
  QOSRM_DCHECK(v > 0.0);
  const double scale = arch::core_params(c).epi_scale * v * v;
  return scale * (p_.epi_joule * instructions + p_.stall_epc_joule * stalled_cycles);
}

double PowerModel::core_static_power(arch::CoreSize c, double v) const noexcept {
  return p_.leak_watt * arch::core_params(c).leak_scale * v;
}

double PowerModel::memory_energy(double accesses) const noexcept {
  return p_.mem_energy_joule * accesses;
}

double PowerModel::uncore_power(int cores) const noexcept {
  QOSRM_DCHECK(cores > 0);
  return p_.uncore_base_watt + p_.uncore_per_core_watt * static_cast<double>(cores);
}

IntervalEnergy PowerModel::interval_energy(arch::CoreSize c,
                                           const arch::OperatingPoint& vf,
                                           const arch::IntervalTiming& timing,
                                           double instructions,
                                           double llc_misses) const noexcept {
  IntervalEnergy e;
  // Cycles spent stalled on memory still toggle the clock tree.
  const double stalled_cycles = timing.mem_seconds * vf.freq_hz;
  e.core_dynamic_j = core_dynamic_energy(c, vf.voltage, instructions, stalled_cycles);
  e.core_static_j = core_static_power(c, vf.voltage) * timing.total_seconds;
  e.memory_j = memory_energy(llc_misses);
  return e;
}

}  // namespace qosrm::power
