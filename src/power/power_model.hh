// McPAT-flavoured power/energy model.
//
// Energy is decomposed the way the paper's Eq. 4-5 expects:
//   * core dynamic  - per-instruction switching energy, quadratic in voltage,
//                     scaled by core size (epi_scale); plus a small clocking
//                     cost for cycles stalled on memory;
//   * core static   - leakage, linear in voltage, scaled by active area
//                     (leak_scale; gated sections of S/M leak nothing);
//   * memory        - per-DRAM-access energy (misses + writebacks);
//   * uncore        - constant power for LLC + NoC, accounted against wall
//                     time at the system level.
//
// The default constants are calibrated so an M core at 2 GHz / 1 V running
// IPC 2 draws ~2 W dynamic + 0.5 W leakage - representative of a mobile-class
// out-of-order core, which is what makes the paper's DVFS-vs-core-size
// trade-offs meaningful.
#ifndef QOSRM_POWER_POWER_MODEL_HH
#define QOSRM_POWER_POWER_MODEL_HH

#include "arch/core_config.hh"
#include "arch/core_model.hh"
#include "arch/dvfs.hh"

namespace qosrm::power {

struct PowerParams {
  double epi_joule = 1.55e-9;       ///< dyn energy/instr, M core @ 1 V
  double stall_epc_joule = 0.12e-9; ///< dyn energy/stalled cycle @ 1 V (clock tree)
  double leak_watt = 0.35;          ///< leakage, M core @ 1 V
  double mem_energy_joule = 26e-9;  ///< DRAM energy per access
  double uncore_base_watt = 0.30;   ///< LLC+NoC constant component
  double uncore_per_core_watt = 0.12;
};

/// Per-interval energy decomposition for one core (uncore excluded; it is a
/// system-level wall-time cost).
struct IntervalEnergy {
  double core_dynamic_j = 0.0;
  double core_static_j = 0.0;
  double memory_j = 0.0;

  [[nodiscard]] double core_j() const noexcept {
    return core_dynamic_j + core_static_j;
  }
  [[nodiscard]] double total_j() const noexcept { return core_j() + memory_j; }
};

class PowerModel {
 public:
  explicit PowerModel(const PowerParams& params = {}) : p_(params) {}

  /// Dynamic energy of retiring `instructions` and spending
  /// `stalled_cycles` clocked-but-stalled at core size `c`, voltage `v`.
  [[nodiscard]] double core_dynamic_energy(arch::CoreSize c, double v,
                                           double instructions,
                                           double stalled_cycles) const noexcept;

  /// Leakage power (W) of core size `c` at voltage `v`.
  [[nodiscard]] double core_static_power(arch::CoreSize c, double v) const noexcept;

  /// DRAM energy for `accesses` memory transactions.
  [[nodiscard]] double memory_energy(double accesses) const noexcept;

  /// Constant uncore (LLC + NoC) power of an n-core system.
  [[nodiscard]] double uncore_power(int cores) const noexcept;

  /// Full ground-truth interval energy at (c, vf) given the interval timing
  /// and the LLC miss count (which equals the DRAM access count here;
  /// writebacks are folded into the per-access energy).
  [[nodiscard]] IntervalEnergy interval_energy(arch::CoreSize c,
                                               const arch::OperatingPoint& vf,
                                               const arch::IntervalTiming& timing,
                                               double instructions,
                                               double llc_misses) const noexcept;

  [[nodiscard]] const PowerParams& params() const noexcept { return p_; }

 private:
  PowerParams p_;
};

}  // namespace qosrm::power

#endif  // QOSRM_POWER_POWER_MODEL_HH
