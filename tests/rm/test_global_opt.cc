#include "rm/global_opt.hh"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>

#include "common/rng.hh"

namespace qosrm::rm {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

EnergyCurve curve(int min_ways, std::vector<double> energy) {
  return {min_ways, std::move(energy)};
}

// ---------------------------------------------------------------------------
// Reference implementation: the pre-workspace reduction over a tree of
// heap-allocated nodes, kept verbatim (minus ops counting) as an equivalence
// oracle for the flat-buffer rewrite. Same pair order, same strict-less
// tie-breaking, same arithmetic - the results must match bit for bit.
struct TreeNode {
  int lo = 0;
  std::vector<double> energy;
  std::vector<int> left_ways;
  int first_core = 0;
  int last_core = 0;
  std::unique_ptr<TreeNode> left;
  std::unique_ptr<TreeNode> right;

  [[nodiscard]] int hi() const noexcept {
    return lo + static_cast<int>(energy.size()) - 1;
  }
};

std::unique_ptr<TreeNode> tree_leaf(const EnergyCurve& curve, int core) {
  auto node = std::make_unique<TreeNode>();
  node->lo = curve.min_ways;
  node->energy = curve.energy;
  node->first_core = core;
  node->last_core = core;
  return node;
}

std::unique_ptr<TreeNode> tree_combine(std::unique_ptr<TreeNode> a,
                                       std::unique_ptr<TreeNode> b) {
  auto node = std::make_unique<TreeNode>();
  node->lo = a->lo + b->lo;
  const int hi = a->hi() + b->hi();
  const auto size = static_cast<std::size_t>(hi - node->lo + 1);
  node->energy.assign(size, kInf);
  node->left_ways.assign(size, -1);
  node->first_core = a->first_core;
  node->last_core = b->last_core;
  for (int wa = a->lo; wa <= a->hi(); ++wa) {
    const double ea = a->energy[static_cast<std::size_t>(wa - a->lo)];
    if (std::isinf(ea)) continue;
    for (int wb = b->lo; wb <= b->hi(); ++wb) {
      const double eb = b->energy[static_cast<std::size_t>(wb - b->lo)];
      if (std::isinf(eb)) continue;
      const std::size_t idx = static_cast<std::size_t>(wa + wb - node->lo);
      if (ea + eb < node->energy[idx]) {
        node->energy[idx] = ea + eb;
        node->left_ways[idx] = wa;
      }
    }
  }
  node->left = std::move(a);
  node->right = std::move(b);
  return node;
}

void tree_backtrack(const TreeNode& node, int total, std::vector<int>& ways) {
  if (!node.left) {
    ways[static_cast<std::size_t>(node.first_core)] = total;
    return;
  }
  const int wl = node.left_ways[static_cast<std::size_t>(total - node.lo)];
  ASSERT_GE(wl, 0);
  tree_backtrack(*node.left, wl, ways);
  tree_backtrack(*node.right, total - wl, ways);
}

GlobalOptResult tree_optimize(std::span<const EnergyCurve> curves,
                              int total_ways) {
  std::vector<std::unique_ptr<TreeNode>> level;
  level.reserve(curves.size());
  for (std::size_t i = 0; i < curves.size(); ++i) {
    level.push_back(tree_leaf(curves[i], static_cast<int>(i)));
  }
  while (level.size() > 1) {
    std::vector<std::unique_ptr<TreeNode>> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(tree_combine(std::move(level[i]), std::move(level[i + 1])));
    }
    if (level.size() % 2 == 1) next.push_back(std::move(level.back()));
    level = std::move(next);
  }
  const TreeNode& root = *level.front();
  GlobalOptResult result;
  if (total_ways < root.lo || total_ways > root.hi()) return result;
  const double e = root.energy[static_cast<std::size_t>(total_ways - root.lo)];
  if (std::isinf(e)) return result;
  result.feasible = true;
  result.total_energy = e;
  result.ways.assign(curves.size(), 0);
  tree_backtrack(root, total_ways, result.ways);
  return result;
}

std::vector<EnergyCurve> random_curves(Rng& rng, int cores) {
  std::vector<EnergyCurve> curves;
  for (int c = 0; c < cores; ++c) {
    EnergyCurve cu;
    cu.min_ways = 1 + static_cast<int>(rng.uniform_u64(3));
    const int len = 3 + static_cast<int>(rng.uniform_u64(13));
    for (int i = 0; i < len; ++i) {
      cu.energy.push_back(rng.bernoulli(0.25) ? kInf : rng.uniform(1.0, 50.0));
    }
    curves.push_back(std::move(cu));
  }
  return curves;
}

std::vector<EnergyCurveView> views_of(const std::vector<EnergyCurve>& curves) {
  std::vector<EnergyCurveView> views;
  for (const EnergyCurve& c : curves) {
    views.push_back({c.min_ways, std::span<const double>(c.energy)});
  }
  return views;
}

TEST(GlobalOpt, SingleCoreTakesWholeBudget) {
  const std::vector<EnergyCurve> curves = {curve(2, {5, 4, 3, 2, 1})};
  const auto r = GlobalOptimizer::optimize(curves, 4);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.ways, (std::vector<int>{4}));
  EXPECT_DOUBLE_EQ(r.total_energy, 3.0);
}

TEST(GlobalOpt, TwoCoreConvolutionPicksMinimum) {
  // Budget 6: (2,4)=9+1=10, (3,3)=5+10=15, (4,2)=1+9=10; ties resolve
  // to the first split found (2,4).
  const std::vector<EnergyCurve> curves = {curve(2, {9, 5, 1}),
                                           curve(2, {9, 10, 1})};
  const auto r = GlobalOptimizer::optimize(curves, 6);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.ways, (std::vector<int>{2, 4}));
  EXPECT_DOUBLE_EQ(r.total_energy, 10.0);
}

TEST(GlobalOpt, InfeasibleEntriesAreSkipped) {
  const std::vector<EnergyCurve> curves = {curve(2, {kInf, 5, 1}),
                                           curve(2, {1, kInf, kInf})};
  // Budget 6: (3,3) and (2,4) hit infinities; only (4,2) = 1 + 1 works.
  const auto r = GlobalOptimizer::optimize(curves, 6);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.ways, (std::vector<int>{4, 2}));
  EXPECT_DOUBLE_EQ(r.total_energy, 2.0);
}

TEST(GlobalOpt, WhollyInfeasibleBudgetReported) {
  const std::vector<EnergyCurve> curves = {curve(2, {kInf, kInf}),
                                           curve(2, {1, 1})};
  EXPECT_FALSE(GlobalOptimizer::optimize(curves, 5).feasible);
}

TEST(GlobalOpt, BudgetOutsideReachIsInfeasible) {
  const std::vector<EnergyCurve> curves = {curve(2, {1, 1}), curve(2, {1, 1})};
  EXPECT_FALSE(GlobalOptimizer::optimize(curves, 3).feasible);  // min is 4
  EXPECT_FALSE(GlobalOptimizer::optimize(curves, 7).feasible);  // max is 6
  EXPECT_TRUE(GlobalOptimizer::optimize(curves, 4).feasible);
  EXPECT_TRUE(GlobalOptimizer::optimize(curves, 6).feasible);
}

TEST(GlobalOpt, AllocationAlwaysSumsToBudget) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<EnergyCurve> curves;
    const int cores = 2 + static_cast<int>(rng.uniform_u64(5));
    for (int c = 0; c < cores; ++c) {
      std::vector<double> e;
      for (int w = 2; w <= 16; ++w) e.push_back(rng.uniform(1.0, 100.0));
      curves.push_back(curve(2, std::move(e)));
    }
    const int budget = 8 * cores;
    const auto r = GlobalOptimizer::optimize(curves, budget);
    ASSERT_TRUE(r.feasible);
    int total = 0;
    for (const int w : r.ways) {
      EXPECT_GE(w, 2);
      EXPECT_LE(w, 16);
      total += w;
    }
    EXPECT_EQ(total, budget);
  }
}

// The pairwise-reduction optimizer must agree with exhaustive search.
class GlobalOptVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(GlobalOptVsBruteForce, MatchesExhaustiveSearch) {
  const int cores = GetParam();
  Rng rng(static_cast<std::uint64_t>(cores) * 7919);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<EnergyCurve> curves;
    for (int c = 0; c < cores; ++c) {
      std::vector<double> e;
      for (int w = 2; w <= 16; ++w) {
        // Sprinkle infeasible entries to stress the backtracking.
        e.push_back(rng.bernoulli(0.15) ? kInf : rng.uniform(1.0, 50.0));
      }
      curves.push_back(curve(2, std::move(e)));
    }
    const int budget = 8 * cores;
    const auto fast = GlobalOptimizer::optimize(curves, budget);
    const auto slow = GlobalOptimizer::brute_force(curves, budget);
    ASSERT_EQ(fast.feasible, slow.feasible) << "trial " << trial;
    if (fast.feasible) {
      EXPECT_NEAR(fast.total_energy, slow.total_energy, 1e-9) << "trial " << trial;
      // Verify the reported allocation really attains the reported energy.
      double check = 0.0;
      for (int c = 0; c < cores; ++c) {
        check += curves[static_cast<std::size_t>(c)]
                     .energy[static_cast<std::size_t>(fast.ways[static_cast<std::size_t>(c)] - 2)];
      }
      EXPECT_NEAR(check, fast.total_energy, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(CoreCounts, GlobalOptVsBruteForce,
                         ::testing::Values(2, 3, 4, 5));

TEST(GlobalOpt, OpsCountGrowsPolynomially) {
  // The paper's first advantage: polynomial complexity in the core count.
  auto ops_for = [](int cores) {
    std::vector<EnergyCurve> curves(
        static_cast<std::size_t>(cores),
        curve(2, std::vector<double>(15, 1.0)));
    std::uint64_t ops = 0;
    (void)GlobalOptimizer::optimize(curves, 8 * cores, &ops);
    return ops;
  };
  const std::uint64_t ops2 = ops_for(2);
  const std::uint64_t ops4 = ops_for(4);
  const std::uint64_t ops8 = ops_for(8);
  EXPECT_LT(ops4, ops2 * 8);
  EXPECT_LT(ops8, ops4 * 8);
  EXPECT_GT(ops4, ops2);
  EXPECT_GT(ops8, ops4);
}

// The flat-buffer reduction must reproduce the old tree reduction EXACTLY
// (feasibility, bitwise total energy, chosen ways), and agree with
// exhaustive search where that is affordable.
TEST(GlobalOptEquivalence, FlatBufferMatchesTreeAndBruteForceOnRandomCurves) {
  Rng rng(20240707);
  for (int trial = 0; trial < 300; ++trial) {
    const int cores = 1 + static_cast<int>(rng.uniform_u64(7));
    const std::vector<EnergyCurve> curves = random_curves(rng, cores);
    int sum_lo = 0;
    int sum_hi = 0;
    for (const EnergyCurve& c : curves) {
      sum_lo += c.min_ways;
      sum_hi += c.max_ways();
    }
    // Budgets straddle the reachable range so infeasible/out-of-range
    // outcomes are exercised too.
    const int budget =
        sum_lo - 1 + static_cast<int>(rng.uniform_u64(
                         static_cast<std::uint64_t>(sum_hi - sum_lo + 3)));

    const GlobalOptResult fast = GlobalOptimizer::optimize(curves, budget);
    const GlobalOptResult tree = tree_optimize(curves, budget);
    ASSERT_EQ(fast.feasible, tree.feasible) << "trial " << trial;
    if (fast.feasible) {
      EXPECT_EQ(fast.total_energy, tree.total_energy) << "trial " << trial;
      EXPECT_EQ(fast.ways, tree.ways) << "trial " << trial;
    }

    if (cores <= 4) {
      const GlobalOptResult slow = GlobalOptimizer::brute_force(curves, budget);
      ASSERT_EQ(fast.feasible, slow.feasible) << "trial " << trial;
      if (fast.feasible) {
        EXPECT_NEAR(fast.total_energy, slow.total_energy, 1e-9)
            << "trial " << trial;
        double attained = 0.0;
        for (int c = 0; c < cores; ++c) {
          const EnergyCurve& cu = curves[static_cast<std::size_t>(c)];
          const int w = fast.ways[static_cast<std::size_t>(c)];
          ASSERT_GE(w, cu.min_ways);
          ASSERT_LE(w, cu.max_ways());
          attained += cu.energy[static_cast<std::size_t>(w - cu.min_ways)];
        }
        EXPECT_NEAR(attained, fast.total_energy, 1e-9) << "trial " << trial;
      }
    }
  }
}

// One workspace driven through many differently-shaped problems must behave
// exactly like a fresh workspace per problem: nothing of a previous
// reduction (node metadata, energies, argmin splits) may leak into the next.
TEST(GlobalOptEquivalence, WorkspaceReuseDoesNotLeakStateBetweenCalls) {
  Rng rng(42);
  GlobalOptWorkspace reused_ws;
  GlobalOptResult reused_out;
  for (int trial = 0; trial < 100; ++trial) {
    const int cores = 1 + static_cast<int>(rng.uniform_u64(6));
    const std::vector<EnergyCurve> curves = random_curves(rng, cores);
    const std::vector<EnergyCurveView> views = views_of(curves);
    int sum_lo = 0;
    int sum_hi = 0;
    for (const EnergyCurve& c : curves) {
      sum_lo += c.min_ways;
      sum_hi += c.max_ways();
    }
    const int budget =
        sum_lo + static_cast<int>(rng.uniform_u64(
                     static_cast<std::uint64_t>(sum_hi - sum_lo + 1)));

    std::uint64_t reused_ops = 0;
    GlobalOptimizer::optimize_into(views, budget, reused_ws, reused_out,
                                   &reused_ops);

    GlobalOptWorkspace fresh_ws;
    GlobalOptResult fresh_out;
    std::uint64_t fresh_ops = 0;
    GlobalOptimizer::optimize_into(views, budget, fresh_ws, fresh_out,
                                   &fresh_ops);

    ASSERT_EQ(reused_out.feasible, fresh_out.feasible) << "trial " << trial;
    EXPECT_EQ(reused_out.total_energy, fresh_out.total_energy)
        << "trial " << trial;
    EXPECT_EQ(reused_out.ways, fresh_out.ways) << "trial " << trial;
    EXPECT_EQ(reused_ops, fresh_ops) << "trial " << trial;
  }
}

// One op is one FEASIBLE-pair DP step. Hand-counted case: curve a has
// feasible entries {w=3, w=4}, b has {w=2, w=4} (2*2 = 4 steps); their
// combination covers feasible totals {5, 6, 7, 8} and c has one feasible
// entry (4*1 = 4 steps) - 8 steps in total.
TEST(GlobalOpt, OpsCountIsOneFeasiblePairPerDpStep) {
  const std::vector<EnergyCurve> curves = {curve(2, {kInf, 5, 1}),
                                           curve(2, {1, kInf, 2}),
                                           curve(2, {2, kInf})};
  std::uint64_t ops = 0;
  const auto r = GlobalOptimizer::optimize(curves, 8, &ops);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(ops, 8u);
}

// An infeasible LEFT entry must be charged exactly like an infeasible RIGHT
// entry (the old implementation skipped the whole inner loop uncounted for
// the former but charged the latter).
TEST(GlobalOpt, OpsCountSymmetricUnderOperandSwap) {
  const EnergyCurve holes = curve(2, {kInf, 5, kInf, 1});
  const EnergyCurve full = curve(2, {1, 2, 3, 4});
  std::uint64_t ops_ab = 0;
  std::uint64_t ops_ba = 0;
  (void)GlobalOptimizer::optimize(std::vector<EnergyCurve>{holes, full}, 8,
                                  &ops_ab);
  (void)GlobalOptimizer::optimize(std::vector<EnergyCurve>{full, holes}, 8,
                                  &ops_ba);
  EXPECT_EQ(ops_ab, ops_ba);
  EXPECT_EQ(ops_ab, 8u);  // 2 feasible entries x 4 feasible entries
}

// ---------------------------------------------------------------------------
// SIMD dispatch equivalence: the AVX2 kernel must reproduce the scalar
// fallback BIT FOR BIT - feasibility, total energy, chosen ways and the op
// count - across core counts, odd way counts, and degenerate feasibility
// shapes. Runs through the explicit-level optimize_into overload; on hosts
// without AVX2 the vector half is skipped (the scalar-vs-tree and
// scalar-vs-brute-force tests above still pin the fallback).

bool avx2_available() {
  return simd::avx2_compiled() && simd::avx2_supported();
}

void expect_levels_bitwise_equal(const std::vector<EnergyCurve>& curves,
                                 int budget, const char* what) {
  const std::vector<EnergyCurveView> views = views_of(curves);

  GlobalOptWorkspace scalar_ws;
  GlobalOptResult scalar_out;
  std::uint64_t scalar_ops = 0;
  GlobalOptimizer::optimize_into(views, budget, scalar_ws, scalar_out,
                                 &scalar_ops, simd::Level::Scalar);

  GlobalOptWorkspace avx2_ws;
  GlobalOptResult avx2_out;
  std::uint64_t avx2_ops = 0;
  GlobalOptimizer::optimize_into(views, budget, avx2_ws, avx2_out, &avx2_ops,
                                 simd::Level::Avx2);

  ASSERT_EQ(scalar_out.feasible, avx2_out.feasible) << what;
  EXPECT_EQ(scalar_out.total_energy, avx2_out.total_energy) << what;
  EXPECT_EQ(scalar_out.ways, avx2_out.ways) << what;
  EXPECT_EQ(scalar_ops, avx2_ops) << what;
}

class GlobalOptSimdEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(GlobalOptSimdEquivalence, RandomCurvesMatchBitwiseAcrossLevels) {
  if (!avx2_available()) GTEST_SKIP() << "AVX2 kernel unavailable";
  const int cores = GetParam();
  Rng rng(static_cast<std::uint64_t>(cores) * 104729 + 7);
  for (int trial = 0; trial < 200; ++trial) {
    const std::vector<EnergyCurve> curves = random_curves(rng, cores);
    int sum_lo = 0;
    int sum_hi = 0;
    for (const EnergyCurve& c : curves) {
      sum_lo += c.min_ways;
      sum_hi += c.max_ways();
    }
    const int budget =
        sum_lo - 1 + static_cast<int>(rng.uniform_u64(
                         static_cast<std::uint64_t>(sum_hi - sum_lo + 3)));
    expect_levels_bitwise_equal(
        curves, budget,
        ("cores=" + std::to_string(cores) + " trial=" + std::to_string(trial))
            .c_str());
  }
}

TEST_P(GlobalOptSimdEquivalence, OddWayCountsMatchBitwiseAcrossLevels) {
  if (!avx2_available()) GTEST_SKIP() << "AVX2 kernel unavailable";
  const int cores = GetParam();
  Rng rng(static_cast<std::uint64_t>(cores) * 31337 + 11);
  // Odd curve lengths leave a 1..3-element scalar tail after every 4-lane
  // chunk - the seam the dense kernel must stitch exactly.
  for (const int len : {3, 5, 7, 9, 13, 15}) {
    std::vector<EnergyCurve> curves;
    for (int c = 0; c < cores; ++c) {
      EnergyCurve cu;
      cu.min_ways = 1 + static_cast<int>(rng.uniform_u64(3));
      for (int i = 0; i < len; ++i) {
        cu.energy.push_back(rng.bernoulli(0.2) ? kInf : rng.uniform(1.0, 50.0));
      }
      curves.push_back(std::move(cu));
    }
    int sum_lo = 0;
    int sum_hi = 0;
    for (const EnergyCurve& c : curves) {
      sum_lo += c.min_ways;
      sum_hi += c.max_ways();
    }
    for (int budget = sum_lo - 1; budget <= sum_hi + 1; ++budget) {
      expect_levels_bitwise_equal(
          curves, budget,
          ("cores=" + std::to_string(cores) + " len=" + std::to_string(len) +
           " budget=" + std::to_string(budget))
              .c_str());
    }
  }
}

TEST_P(GlobalOptSimdEquivalence, DegenerateFeasibilityTailsMatchAcrossLevels) {
  if (!avx2_available()) GTEST_SKIP() << "AVX2 kernel unavailable";
  const int cores = GetParam();

  // All-infeasible: every curve entry is infinite.
  {
    std::vector<EnergyCurve> curves(
        static_cast<std::size_t>(cores),
        curve(2, std::vector<double>(9, kInf)));
    expect_levels_bitwise_equal(curves, 5 * cores, "all-infeasible");
  }

  // One core all-infeasible, the rest feasible: the whole problem is
  // infeasible but the op accounting still covers the feasible combines.
  {
    std::vector<EnergyCurve> curves(
        static_cast<std::size_t>(cores),
        curve(2, std::vector<double>{4.0, 3.0, 2.0, 1.0, 2.0}));
    curves.back() = curve(2, std::vector<double>(5, kInf));
    expect_levels_bitwise_equal(curves, 4 * cores, "one-core-infeasible");
  }

  // Single feasible entry per curve, at the END of the row (the tail lane):
  // exactly one allocation is reachable.
  {
    std::vector<EnergyCurve> curves;
    for (int c = 0; c < cores; ++c) {
      std::vector<double> e(7, kInf);
      e.back() = 1.0 + c;
      curves.push_back(curve(2, std::move(e)));
    }
    expect_levels_bitwise_equal(curves, 8 * cores, "single-feasible-tail");
  }

  // Single feasible entry at the FRONT (lane 0 of the first chunk).
  {
    std::vector<EnergyCurve> curves;
    for (int c = 0; c < cores; ++c) {
      std::vector<double> e(7, kInf);
      e.front() = 1.0 + c;
      curves.push_back(curve(3, std::move(e)));
    }
    expect_levels_bitwise_equal(curves, 3 * cores, "single-feasible-front");
  }
}

INSTANTIATE_TEST_SUITE_P(CoreCounts, GlobalOptSimdEquivalence,
                         ::testing::Values(2, 4, 8, 16));

TEST(GlobalOpt, PrefersFeasibleEvenSplitWhenSymmetric) {
  // Identical strictly convex curves: the even split is optimal.
  std::vector<double> e;
  for (int w = 2; w <= 16; ++w) {
    e.push_back((w - 8.0) * (w - 8.0));
  }
  const std::vector<EnergyCurve> curves = {curve(2, e), curve(2, e),
                                           curve(2, e), curve(2, e)};
  const auto r = GlobalOptimizer::optimize(curves, 32);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.ways, (std::vector<int>{8, 8, 8, 8}));
}

}  // namespace
}  // namespace qosrm::rm
