#include "rm/global_opt.hh"

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.hh"

namespace qosrm::rm {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

EnergyCurve curve(int min_ways, std::vector<double> energy) {
  return {min_ways, std::move(energy)};
}

TEST(GlobalOpt, SingleCoreTakesWholeBudget) {
  const std::vector<EnergyCurve> curves = {curve(2, {5, 4, 3, 2, 1})};
  const auto r = GlobalOptimizer::optimize(curves, 4);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.ways, (std::vector<int>{4}));
  EXPECT_DOUBLE_EQ(r.total_energy, 3.0);
}

TEST(GlobalOpt, TwoCoreConvolutionPicksMinimum) {
  // Budget 6: (2,4)=9+1=10, (3,3)=5+10=15, (4,2)=1+9=10; ties resolve
  // to the first split found (2,4).
  const std::vector<EnergyCurve> curves = {curve(2, {9, 5, 1}),
                                           curve(2, {9, 10, 1})};
  const auto r = GlobalOptimizer::optimize(curves, 6);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.ways, (std::vector<int>{2, 4}));
  EXPECT_DOUBLE_EQ(r.total_energy, 10.0);
}

TEST(GlobalOpt, InfeasibleEntriesAreSkipped) {
  const std::vector<EnergyCurve> curves = {curve(2, {kInf, 5, 1}),
                                           curve(2, {1, kInf, kInf})};
  // Budget 6: (3,3) and (2,4) hit infinities; only (4,2) = 1 + 1 works.
  const auto r = GlobalOptimizer::optimize(curves, 6);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.ways, (std::vector<int>{4, 2}));
  EXPECT_DOUBLE_EQ(r.total_energy, 2.0);
}

TEST(GlobalOpt, WhollyInfeasibleBudgetReported) {
  const std::vector<EnergyCurve> curves = {curve(2, {kInf, kInf}),
                                           curve(2, {1, 1})};
  EXPECT_FALSE(GlobalOptimizer::optimize(curves, 5).feasible);
}

TEST(GlobalOpt, BudgetOutsideReachIsInfeasible) {
  const std::vector<EnergyCurve> curves = {curve(2, {1, 1}), curve(2, {1, 1})};
  EXPECT_FALSE(GlobalOptimizer::optimize(curves, 3).feasible);  // min is 4
  EXPECT_FALSE(GlobalOptimizer::optimize(curves, 7).feasible);  // max is 6
  EXPECT_TRUE(GlobalOptimizer::optimize(curves, 4).feasible);
  EXPECT_TRUE(GlobalOptimizer::optimize(curves, 6).feasible);
}

TEST(GlobalOpt, AllocationAlwaysSumsToBudget) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<EnergyCurve> curves;
    const int cores = 2 + static_cast<int>(rng.uniform_u64(5));
    for (int c = 0; c < cores; ++c) {
      std::vector<double> e;
      for (int w = 2; w <= 16; ++w) e.push_back(rng.uniform(1.0, 100.0));
      curves.push_back(curve(2, std::move(e)));
    }
    const int budget = 8 * cores;
    const auto r = GlobalOptimizer::optimize(curves, budget);
    ASSERT_TRUE(r.feasible);
    int total = 0;
    for (const int w : r.ways) {
      EXPECT_GE(w, 2);
      EXPECT_LE(w, 16);
      total += w;
    }
    EXPECT_EQ(total, budget);
  }
}

// The pairwise-reduction optimizer must agree with exhaustive search.
class GlobalOptVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(GlobalOptVsBruteForce, MatchesExhaustiveSearch) {
  const int cores = GetParam();
  Rng rng(static_cast<std::uint64_t>(cores) * 7919);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<EnergyCurve> curves;
    for (int c = 0; c < cores; ++c) {
      std::vector<double> e;
      for (int w = 2; w <= 16; ++w) {
        // Sprinkle infeasible entries to stress the backtracking.
        e.push_back(rng.bernoulli(0.15) ? kInf : rng.uniform(1.0, 50.0));
      }
      curves.push_back(curve(2, std::move(e)));
    }
    const int budget = 8 * cores;
    const auto fast = GlobalOptimizer::optimize(curves, budget);
    const auto slow = GlobalOptimizer::brute_force(curves, budget);
    ASSERT_EQ(fast.feasible, slow.feasible) << "trial " << trial;
    if (fast.feasible) {
      EXPECT_NEAR(fast.total_energy, slow.total_energy, 1e-9) << "trial " << trial;
      // Verify the reported allocation really attains the reported energy.
      double check = 0.0;
      for (int c = 0; c < cores; ++c) {
        check += curves[static_cast<std::size_t>(c)]
                     .energy[static_cast<std::size_t>(fast.ways[static_cast<std::size_t>(c)] - 2)];
      }
      EXPECT_NEAR(check, fast.total_energy, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(CoreCounts, GlobalOptVsBruteForce,
                         ::testing::Values(2, 3, 4, 5));

TEST(GlobalOpt, OpsCountGrowsPolynomially) {
  // The paper's first advantage: polynomial complexity in the core count.
  auto ops_for = [](int cores) {
    std::vector<EnergyCurve> curves(
        static_cast<std::size_t>(cores),
        curve(2, std::vector<double>(15, 1.0)));
    std::uint64_t ops = 0;
    (void)GlobalOptimizer::optimize(curves, 8 * cores, &ops);
    return ops;
  };
  const std::uint64_t ops2 = ops_for(2);
  const std::uint64_t ops4 = ops_for(4);
  const std::uint64_t ops8 = ops_for(8);
  EXPECT_LT(ops4, ops2 * 8);
  EXPECT_LT(ops8, ops4 * 8);
  EXPECT_GT(ops4, ops2);
  EXPECT_GT(ops8, ops4);
}

TEST(GlobalOpt, PrefersFeasibleEvenSplitWhenSymmetric) {
  // Identical strictly convex curves: the even split is optimal.
  std::vector<double> e;
  for (int w = 2; w <= 16; ++w) {
    e.push_back((w - 8.0) * (w - 8.0));
  }
  const std::vector<EnergyCurve> curves = {curve(2, e), curve(2, e),
                                           curve(2, e), curve(2, e)};
  const auto r = GlobalOptimizer::optimize(curves, 32);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.ways, (std::vector<int>{8, 8, 8, 8}));
}

}  // namespace
}  // namespace qosrm::rm
