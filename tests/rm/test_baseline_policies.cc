// Property tests for the classic partitioning-only baselines
// (rm/baseline_policies.hh): UCP against a brute-force optimum on small way
// counts, FCP's slowdown-equalization invariant, and the deterministic
// class-based allocation.
#include "rm/baseline_policies.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <vector>

namespace qosrm::rm {
namespace {

using workload::PartClass;

/// Random non-increasing convex miss curve over n_alloc allocations:
/// marginal gains are positive and diminishing, the regime where greedy
/// lookahead provably matches the exhaustive optimum.
std::vector<double> convex_curve(std::mt19937& rng, int n_alloc) {
  std::uniform_real_distribution<double> gain(0.0, 10.0);
  std::vector<double> deltas(static_cast<std::size_t>(n_alloc - 1));
  for (double& d : deltas) d = gain(rng);
  std::sort(deltas.begin(), deltas.end(), std::greater<>());  // diminishing
  std::vector<double> curve(static_cast<std::size_t>(n_alloc));
  curve[0] = 100.0 + gain(rng);
  for (int i = 1; i < n_alloc; ++i) {
    curve[static_cast<std::size_t>(i)] =
        curve[static_cast<std::size_t>(i - 1)] -
        deltas[static_cast<std::size_t>(i - 1)];
  }
  return curve;
}

/// Random non-increasing (but not necessarily convex) curve.
std::vector<double> monotone_curve(std::mt19937& rng, int n_alloc) {
  std::uniform_real_distribution<double> gain(0.0, 10.0);
  std::vector<double> curve(static_cast<std::size_t>(n_alloc));
  curve[0] = 100.0 + gain(rng);
  for (int i = 1; i < n_alloc; ++i) {
    curve[static_cast<std::size_t>(i)] =
        curve[static_cast<std::size_t>(i - 1)] - gain(rng);
  }
  return curve;
}

double total_misses(const std::vector<double>& miss,
                    const std::vector<int>& ways, int min_ways, int n_alloc) {
  double total = 0.0;
  for (std::size_t j = 0; j < ways.size(); ++j) {
    total += miss[j * static_cast<std::size_t>(n_alloc) +
                  static_cast<std::size_t>(ways[j] - min_ways)];
  }
  return total;
}

/// Exhaustive minimum total misses over every partition that gives each core
/// between min_ways and max_ways with exactly `total_ways` in total.
double brute_force_min(const std::vector<double>& miss, int cores,
                       int min_ways, int max_ways, int total_ways) {
  const int n_alloc = max_ways - min_ways + 1;
  double best = std::numeric_limits<double>::infinity();
  std::vector<int> ways(static_cast<std::size_t>(cores), min_ways);
  const auto recurse = [&](auto&& self, int core, int left) -> void {
    if (core == cores - 1) {
      if (left < min_ways || left > max_ways) return;
      ways[static_cast<std::size_t>(core)] = left;
      best = std::min(best, total_misses(miss, ways, min_ways, n_alloc));
      return;
    }
    for (int w = min_ways; w <= std::min(max_ways, left); ++w) {
      ways[static_cast<std::size_t>(core)] = w;
      self(self, core + 1, left - w);
    }
  };
  recurse(recurse, 0, total_ways);
  return best;
}

TEST(UcpPartition, MatchesBruteForceOnConvexCurves) {
  std::mt19937 rng(20260808);
  const int cores = 3, min_ways = 1, max_ways = 6;
  const int n_alloc = max_ways - min_ways + 1;
  const std::vector<std::uint8_t> active(static_cast<std::size_t>(cores), 1);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> miss;
    for (int j = 0; j < cores; ++j) {
      const std::vector<double> c = convex_curve(rng, n_alloc);
      miss.insert(miss.end(), c.begin(), c.end());
    }
    const int total_ways = 3 * cores + static_cast<int>(rng() % 7);  // [9, 15]
    std::vector<int> ways(static_cast<std::size_t>(cores), 0);
    ucp_partition(miss, active, min_ways, max_ways, total_ways, ways);
    const double got = total_misses(miss, ways, min_ways, n_alloc);
    const double want =
        brute_force_min(miss, cores, min_ways, max_ways, total_ways);
    EXPECT_NEAR(got, want, 1e-9 * want) << "trial " << trial;
  }
}

TEST(UcpPartition, ValidDeterministicPartitionOnMonotoneCurves) {
  std::mt19937 rng(7);
  const int cores = 4, min_ways = 2, max_ways = 8;
  const int n_alloc = max_ways - min_ways + 1;
  const std::vector<std::uint8_t> active(static_cast<std::size_t>(cores), 1);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> miss;
    for (int j = 0; j < cores; ++j) {
      const std::vector<double> c = monotone_curve(rng, n_alloc);
      miss.insert(miss.end(), c.begin(), c.end());
    }
    const int total_ways = 16;
    std::vector<int> ways(static_cast<std::size_t>(cores), 0);
    std::uint64_t ops = 0;
    ucp_partition(miss, active, min_ways, max_ways, total_ways, ways, &ops);
    EXPECT_EQ(std::accumulate(ways.begin(), ways.end(), 0), total_ways);
    for (const int w : ways) {
      EXPECT_GE(w, min_ways);
      EXPECT_LE(w, max_ways);
    }
    EXPECT_GT(ops, 0u);
    // Pure function of the curves: a replay lands on the same partition.
    std::vector<int> replay(static_cast<std::size_t>(cores), 0);
    ucp_partition(miss, active, min_ways, max_ways, total_ways, replay);
    EXPECT_EQ(ways, replay);
  }
}

TEST(UcpPartition, InactiveCoresPinnedAtMinimum) {
  std::mt19937 rng(11);
  const int cores = 4, min_ways = 2, max_ways = 8, total_ways = 16;
  const int n_alloc = max_ways - min_ways + 1;
  std::vector<double> miss;
  for (int j = 0; j < cores; ++j) {
    const std::vector<double> c = convex_curve(rng, n_alloc);
    miss.insert(miss.end(), c.begin(), c.end());
  }
  const std::vector<std::uint8_t> active = {1, 0, 1, 0};
  std::vector<int> ways(static_cast<std::size_t>(cores), 0);
  ucp_partition(miss, active, min_ways, max_ways, total_ways, ways);
  EXPECT_EQ(ways[1], min_ways);
  EXPECT_EQ(ways[3], min_ways);
  EXPECT_LE(ways[0] + ways[1] + ways[2] + ways[3], total_ways);
}

TEST(FcpPartition, EqualizesSlowdowns) {
  // Greedy fairness invariant: no core may end more slowed down than any
  // other core was just before receiving its last way - otherwise that way
  // should have gone to the former.
  std::mt19937 rng(20200522);
  const int cores = 4, min_ways = 2, max_ways = 10;
  const int n_alloc = max_ways - min_ways + 1;
  const std::vector<std::uint8_t> active(static_cast<std::size_t>(cores), 1);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> time_s;
    std::vector<double> t_ref;
    for (int j = 0; j < cores; ++j) {
      const std::vector<double> c = monotone_curve(rng, n_alloc);
      time_s.insert(time_s.end(), c.begin(), c.end());
      t_ref.push_back(50.0 + static_cast<double>(rng() % 100));
    }
    const int total_ways = 24;
    std::vector<int> ways(static_cast<std::size_t>(cores), 0);
    fcp_partition(time_s, t_ref, active, min_ways, max_ways, total_ways, ways);
    EXPECT_EQ(std::accumulate(ways.begin(), ways.end(), 0), total_ways);
    const auto slowdown = [&](int j, int w) {
      return time_s[static_cast<std::size_t>(j) *
                        static_cast<std::size_t>(n_alloc) +
                    static_cast<std::size_t>(w - min_ways)] /
             t_ref[static_cast<std::size_t>(j)];
    };
    for (int j = 0; j < cores; ++j) {
      // A core saturated at max_ways may stay more slowed down than the
      // rest - no transfer can help it - so the invariant quantifies over
      // cores that still had headroom when every other core won its ways.
      if (ways[static_cast<std::size_t>(j)] >= max_ways) continue;
      for (int k = 0; k < cores; ++k) {
        if (ways[static_cast<std::size_t>(k)] <= min_ways) continue;
        EXPECT_LE(slowdown(j, ways[static_cast<std::size_t>(j)]),
                  slowdown(k, ways[static_cast<std::size_t>(k)] - 1) + 1e-12)
            << "trial " << trial << " j=" << j << " k=" << k;
      }
    }
  }
}

TEST(ClassPartPartition, SensitiveTierSharesTheBudget) {
  const std::vector<PartClass> cls = {PartClass::Sensitive, PartClass::Light,
                                      PartClass::Sensitive,
                                      PartClass::Streaming};
  const std::vector<std::uint8_t> active(4, 1);
  std::vector<int> ways(4, 0);
  // total 32, everyone starts at 2 -> budget 24 split between cores 0 and 2
  // until they saturate at max_ways=10 (16 ways), the remaining 8 spill
  // round-robin over the light/streaming tier.
  classpart_partition(cls, active, 2, 10, 32, ways);
  EXPECT_EQ(ways[0], 10);
  EXPECT_EQ(ways[2], 10);
  EXPECT_EQ(ways[1], 6);
  EXPECT_EQ(ways[3], 6);
}

TEST(ClassPartPartition, LightAndStreamingPinnedWhileSensitiveHasHeadroom) {
  const std::vector<PartClass> cls = {PartClass::Sensitive, PartClass::Light,
                                      PartClass::Streaming,
                                      PartClass::Sensitive};
  const std::vector<std::uint8_t> active(4, 1);
  std::vector<int> ways(4, 0);
  // budget 8 fits inside the sensitive tier; light/streaming stay at min.
  classpart_partition(cls, active, 2, 16, 16, ways);
  EXPECT_EQ(ways[0], 6);
  EXPECT_EQ(ways[3], 6);
  EXPECT_EQ(ways[1], 2);
  EXPECT_EQ(ways[2], 2);
}

TEST(ClassPartPartition, AllStreamingDealsRoundRobin) {
  const std::vector<PartClass> cls(4, PartClass::Streaming);
  const std::vector<std::uint8_t> active(4, 1);
  std::vector<int> ways(4, 0);
  classpart_partition(cls, active, 2, 16, 18, ways);
  // 10 extra ways round-robin by core index: 3 for cores 0-1, 2 for 2-3.
  EXPECT_EQ(ways[0], 5);
  EXPECT_EQ(ways[1], 5);
  EXPECT_EQ(ways[2], 4);
  EXPECT_EQ(ways[3], 4);
}

TEST(ClassifyPartClass, TaxonomyMatchesTableIIRules) {
  using workload::classify_part_class;
  const workload::ClassificationCriteria crit{};
  // Below the MPKI floor -> light, regardless of curve shape.
  EXPECT_EQ(classify_part_class(0.1, 0.5, 0.05, crit), PartClass::Light);
  // High MPKI, flat curve -> streaming.
  EXPECT_EQ(classify_part_class(10.0, 10.5, 9.8, crit), PartClass::Streaming);
  // High MPKI, >20% swing -> sensitive.
  EXPECT_EQ(classify_part_class(10.0, 14.0, 9.0, crit), PartClass::Sensitive);
}

}  // namespace
}  // namespace qosrm::rm
