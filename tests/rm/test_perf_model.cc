#include "rm/perf_model.hh"

#include <gtest/gtest.h>

#include "rmsim/snapshot.hh"
#include "support/shared_db.hh"

namespace qosrm::rm {
namespace {

using workload::Setting;

const workload::SimDb& db() { return qosrm::testing::shared_db(); }

arch::SystemConfig sys() { return db().system(); }

CounterSnapshot baseline_snapshot(const char* app_name = "mcf", int phase = 0) {
  const int app = db().suite().index_of(app_name);
  return rmsim::make_snapshot(db(), app, phase,
                              workload::baseline_setting(sys()), phase);
}

TEST(PerfModel, PredictingCurrentSettingReproducesMeasurement) {
  const CounterSnapshot snap = baseline_snapshot();
  for (const PerfModelKind kind :
       {PerfModelKind::Model2, PerfModelKind::Model3}) {
    const PerfModel model(kind, sys());
    const double t = model.predict_time(snap, snap.current);
    // At the measured setting the analytical skeleton reassembles the
    // measured components; only the memory term differs per model.
    EXPECT_NEAR(t, snap.total_time_s, snap.total_time_s * 0.15)
        << perf_model_name(kind);
  }
}

TEST(PerfModel, Model3ReproducesCurrentTimeClosely) {
  // Model3's only error at the current setting is the ATD-vs-oracle gap.
  const CounterSnapshot snap = baseline_snapshot();
  const PerfModel model(PerfModelKind::Model3, sys());
  const double t = model.predict_time(snap, snap.current);
  EXPECT_NEAR(t, snap.total_time_s, snap.total_time_s * 0.10);
}

TEST(PerfModel, FrequencyScalesCoreTimeOnly) {
  const CounterSnapshot snap = baseline_snapshot();
  const PerfModel model(PerfModelKind::Model3, sys());
  Setting slow = snap.current;
  slow.f_idx = 0;  // 1 GHz, half the baseline frequency
  const double t_mem = model.predict_mem_time(snap, slow);
  const double t_base_core =
      model.predict_time(snap, snap.current) -
      model.predict_mem_time(snap, snap.current);
  const double t_slow_core = model.predict_time(snap, slow) - t_mem;
  EXPECT_NEAR(t_slow_core, 2.0 * t_base_core, t_base_core * 0.01);
  EXPECT_DOUBLE_EQ(t_mem, model.predict_mem_time(snap, snap.current));
}

TEST(PerfModel, Model1IgnoresMlp) {
  const CounterSnapshot snap = baseline_snapshot();
  const PerfModel m1(PerfModelKind::Model1, sys());
  const double t_mem = m1.predict_mem_time(snap, snap.current);
  EXPECT_NEAR(t_mem, snap.atd_misses_at(8) * sys().mem_latency_s, 1e-12);
  // Model1's memory time does not depend on the core size.
  Setting large = snap.current;
  large.c = arch::CoreSize::L;
  EXPECT_DOUBLE_EQ(m1.predict_mem_time(snap, large), t_mem);
}

TEST(PerfModel, Model2DividesByMeasuredMlp) {
  const CounterSnapshot snap = baseline_snapshot();
  const PerfModel m2(PerfModelKind::Model2, sys());
  const double t_mem = m2.predict_mem_time(snap, snap.current);
  EXPECT_NEAR(t_mem,
              snap.atd_misses_at(8) / snap.measured_mlp * sys().mem_latency_s,
              1e-12);
  // Constant-MLP assumption: same division at every core size.
  Setting small = snap.current;
  small.c = arch::CoreSize::S;
  EXPECT_DOUBLE_EQ(m2.predict_mem_time(snap, small), t_mem);
}

TEST(PerfModel, Model3SeesMlpGrowWithCoreSize) {
  // For a parallelism-sensitive app the predicted memory time must shrink
  // when the core grows - the effect Models 1/2 cannot see.
  const CounterSnapshot snap = baseline_snapshot("libquantum");
  const PerfModel m3(PerfModelKind::Model3, sys());
  Setting s = snap.current;
  s.c = arch::CoreSize::S;
  Setting l = snap.current;
  l.c = arch::CoreSize::L;
  EXPECT_GT(m3.predict_mem_time(snap, s), m3.predict_mem_time(snap, l) * 1.2);
}

TEST(PerfModel, BiggerCorePredictedFasterAtSameFrequency) {
  const CounterSnapshot snap = baseline_snapshot("soplex");
  const PerfModel m3(PerfModelKind::Model3, sys());
  Setting l = snap.current;
  l.c = arch::CoreSize::L;
  EXPECT_LT(m3.predict_time(snap, l), m3.predict_time(snap, snap.current));
}

TEST(PerfModel, QosAcceptsBaselineAndRejectsDeepThrottle) {
  const CounterSnapshot snap = baseline_snapshot();
  const PerfModel m3(PerfModelKind::Model3, sys());
  EXPECT_TRUE(m3.qos_ok(snap, workload::baseline_setting(sys())));
  Setting throttled = snap.current;
  throttled.f_idx = 0;
  throttled.w = 2;
  EXPECT_FALSE(m3.qos_ok(snap, throttled));
}

TEST(PerfModel, PerfectModelMatchesGroundTruth) {
  const int app = db().suite().index_of("mcf");
  CounterSnapshot snap = baseline_snapshot("mcf", 1);
  const PerfModel perfect(PerfModelKind::Perfect, sys());
  for (const Setting target :
       {Setting{arch::CoreSize::L, 3, 12}, Setting{arch::CoreSize::S, 10, 4}}) {
    EXPECT_DOUBLE_EQ(perfect.predict_time(snap, target),
                     db().timing(app, 1, target).total_seconds);
  }
}

TEST(PerfModel, PredictionsExtrapolateAcrossCurrentSettings) {
  // Build counters at a NON-baseline setting and predict the baseline; the
  // prediction must be within a modest error of ground truth.
  const int app = db().suite().index_of("sphinx3");
  const Setting current{arch::CoreSize::L, 4, 12};
  const CounterSnapshot snap = rmsim::make_snapshot(db(), app, 0, current);
  const PerfModel m3(PerfModelKind::Model3, sys());
  const double predicted = m3.predict_time(snap, workload::baseline_setting(sys()));
  const double actual = db().baseline_time(app, 0);
  EXPECT_NEAR(predicted, actual, actual * 0.15);
}

TEST(PerfModel, Names) {
  EXPECT_STREQ(perf_model_name(PerfModelKind::Model1), "Model1");
  EXPECT_STREQ(perf_model_name(PerfModelKind::Model2), "Model2");
  EXPECT_STREQ(perf_model_name(PerfModelKind::Model3), "Model3");
  EXPECT_STREQ(perf_model_name(PerfModelKind::Perfect), "Perfect");
}

}  // namespace
}  // namespace qosrm::rm
