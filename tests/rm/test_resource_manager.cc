#include "rm/resource_manager.hh"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "rmsim/snapshot.hh"
#include "support/shared_db.hh"

namespace qosrm::rm {
namespace {

using workload::Setting;

const workload::SimDb& db() { return qosrm::testing::shared_db(); }

std::vector<CounterSnapshot> snapshots_for(const std::vector<const char*>& apps) {
  std::vector<CounterSnapshot> snaps;
  for (const char* name : apps) {
    snaps.push_back(rmsim::make_snapshot(db(), db().suite().index_of(name), 0,
                                         workload::baseline_setting(db().system())));
  }
  return snaps;
}

RmConfig config(RmPolicy policy, PerfModelKind model = PerfModelKind::Model3) {
  RmConfig cfg;
  cfg.policy = policy;
  cfg.model = model;
  return cfg;
}

TEST(ResourceManager, IdleKeepsBaselineEverywhere) {
  ResourceManager manager(config(RmPolicy::Idle), db().system(), db().power());
  const auto snaps = snapshots_for({"mcf", "libquantum"});
  const RmDecision d = manager.invoke(0, snaps);
  const Setting base = workload::baseline_setting(db().system());
  for (const Setting& s : d.settings) EXPECT_TRUE(s == base);
  EXPECT_EQ(d.ops, 0u);
}

TEST(ResourceManager, WayBudgetAlwaysRespected) {
  for (const RmPolicy policy : {RmPolicy::Rm1, RmPolicy::Rm2, RmPolicy::Rm3}) {
    ResourceManager manager(config(policy), db().system(), db().power());
    const auto snaps = snapshots_for({"mcf", "libquantum"});
    const RmDecision d = manager.invoke(0, snaps);
    int total = 0;
    for (const Setting& s : d.settings) total += s.w;
    EXPECT_EQ(total, db().system().total_ways()) << rm_policy_name(policy);
  }
}

TEST(ResourceManager, Rm1NeverTouchesFrequencyOrSize) {
  ResourceManager manager(config(RmPolicy::Rm1), db().system(), db().power());
  const auto snaps = snapshots_for({"mcf", "bwaves"});
  const RmDecision d = manager.invoke(1, snaps);
  for (const Setting& s : d.settings) {
    EXPECT_EQ(s.c, arch::kBaselineCoreSize);
    EXPECT_EQ(s.f_idx, arch::VfTable::kBaselineIndex);
  }
}

TEST(ResourceManager, Rm2AdjustsFrequencyNotSize) {
  ResourceManager manager(config(RmPolicy::Rm2), db().system(), db().power());
  const auto snaps = snapshots_for({"mcf", "libquantum"});
  const RmDecision d = manager.invoke(0, snaps);
  bool any_f_change = false;
  for (const Setting& s : d.settings) {
    EXPECT_EQ(s.c, arch::kBaselineCoreSize);
    any_f_change |= s.f_idx != arch::VfTable::kBaselineIndex;
  }
  EXPECT_TRUE(any_f_change);
}

TEST(ResourceManager, Rm3CanResizeCores) {
  ResourceManager manager(config(RmPolicy::Rm3), db().system(), db().power());
  const auto snaps = snapshots_for({"libquantum", "bwaves"});
  const RmDecision d = manager.invoke(0, snaps);
  bool any_resize = false;
  for (const Setting& s : d.settings) {
    any_resize |= s.c != arch::kBaselineCoreSize;
  }
  EXPECT_TRUE(any_resize);
}

TEST(ResourceManager, CacheSensitiveAppGainsWaysFromInsensitiveOne) {
  ResourceManager manager(config(RmPolicy::Rm3), db().system(), db().power());
  // mcf is cache-sensitive; bwaves is streaming (flat miss curve).
  const auto snaps = snapshots_for({"mcf", "bwaves"});
  const RmDecision d = manager.invoke(0, snaps);
  EXPECT_GT(d.settings[0].w, d.settings[1].w);
}

TEST(ResourceManager, DecisionsSatisfyPredictedQos) {
  ResourceManager manager(config(RmPolicy::Rm3), db().system(), db().power());
  const auto snaps = snapshots_for({"mcf", "xalancbmk"});
  const RmDecision d = manager.invoke(0, snaps);
  const PerfModel& perf = manager.perf_model();
  for (std::size_t k = 0; k < snaps.size(); ++k) {
    EXPECT_TRUE(perf.qos_ok(snaps[k], d.settings[k])) << "core " << k;
  }
}

TEST(ResourceManager, CachedCurvesReusedAcrossInvocations) {
  ResourceManager manager(config(RmPolicy::Rm3), db().system(), db().power());
  const auto snaps = snapshots_for({"mcf", "libquantum"});
  const RmDecision first = manager.invoke(0, snaps);
  // Second invocation on core 1: core 0's cached curve is reused, so total
  // ops are lower than a cold start that computes curves for both cores.
  const RmDecision second = manager.invoke(1, snaps);
  EXPECT_GT(first.ops, 0u);
  EXPECT_GT(second.ops, 0u);
  // Decisions stay consistent (same counters -> same curves -> same split).
  EXPECT_EQ(first.settings[0].w + first.settings[1].w,
            second.settings[0].w + second.settings[1].w);
}

TEST(ResourceManager, ResetForcesCurveRebuild) {
  ResourceManager manager(config(RmPolicy::Rm3), db().system(), db().power());
  const auto snaps = snapshots_for({"mcf", "libquantum"});
  (void)manager.invoke(0, snaps);
  manager.reset();
  const RmDecision d = manager.invoke(0, snaps);
  int total = 0;
  for (const Setting& s : d.settings) total += s.w;
  EXPECT_EQ(total, db().system().total_ways());
}

TEST(ResourceManager, RepeatedInvokeDoesNotLeakWorkspaceState) {
  // Two managers fed the same invocation sequence must agree step by step:
  // the reused workspace (flat curves, DP buffers, decision storage) may not
  // carry anything observable from one boundary to the next.
  ResourceManager a(config(RmPolicy::Rm3), db().system(), db().power());
  ResourceManager b(config(RmPolicy::Rm3), db().system(), db().power());
  const auto snaps1 = snapshots_for({"mcf", "libquantum"});
  const auto snaps2 = snapshots_for({"xalancbmk", "bwaves"});
  const std::vector<std::pair<int, const std::vector<CounterSnapshot>*>> seq = {
      {0, &snaps1}, {1, &snaps1}, {0, &snaps2}, {1, &snaps2}, {0, &snaps1},
      {1, &snaps2}, {0, &snaps1}, {1, &snaps1}};
  for (std::size_t step = 0; step < seq.size(); ++step) {
    const RmDecision da = a.invoke(seq[step].first, *seq[step].second);
    const RmDecision db_ = b.invoke(seq[step].first, *seq[step].second);
    ASSERT_EQ(da.settings.size(), db_.settings.size()) << "step " << step;
    for (std::size_t k = 0; k < da.settings.size(); ++k) {
      EXPECT_TRUE(da.settings[k] == db_.settings[k])
          << "step " << step << " core " << k;
    }
    EXPECT_EQ(da.ops, db_.ops) << "step " << step;
    EXPECT_EQ(da.feasible, db_.feasible) << "step " << step;
  }
}

TEST(ResourceManager, ResetPlusReuseMatchesFreshManager) {
  // A manager that has been through unrelated boundaries and then reset()
  // must decide exactly like a brand-new manager: reset invalidates every
  // cached curve while the workspace buffers are merely reused.
  ResourceManager seasoned(config(RmPolicy::Rm3), db().system(), db().power());
  const auto warmup = snapshots_for({"xalancbmk", "bwaves"});
  (void)seasoned.invoke(0, warmup);
  (void)seasoned.invoke(1, warmup);
  seasoned.reset();

  ResourceManager fresh(config(RmPolicy::Rm3), db().system(), db().power());
  const auto snaps = snapshots_for({"mcf", "libquantum"});
  const RmDecision a = seasoned.invoke(0, snaps);
  const RmDecision b = fresh.invoke(0, snaps);
  ASSERT_EQ(a.settings.size(), b.settings.size());
  for (std::size_t k = 0; k < a.settings.size(); ++k) {
    EXPECT_TRUE(a.settings[k] == b.settings[k]) << "core " << k;
  }
  EXPECT_EQ(a.ops, b.ops);
}

TEST(ResourceManager, PolicyNames) {
  EXPECT_STREQ(rm_policy_name(RmPolicy::Idle), "Idle");
  EXPECT_STREQ(rm_policy_name(RmPolicy::Rm1), "RM1");
  EXPECT_STREQ(rm_policy_name(RmPolicy::Rm2), "RM2");
  EXPECT_STREQ(rm_policy_name(RmPolicy::Rm3), "RM3");
}

}  // namespace
}  // namespace qosrm::rm
