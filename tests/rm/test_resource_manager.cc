#include "rm/resource_manager.hh"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "rmsim/snapshot.hh"
#include "support/shared_db.hh"

namespace qosrm::rm {
namespace {

using workload::Setting;

const workload::SimDb& db() { return qosrm::testing::shared_db(); }

std::vector<CounterSnapshot> snapshots_for(const std::vector<const char*>& apps) {
  std::vector<CounterSnapshot> snaps;
  for (const char* name : apps) {
    snaps.push_back(rmsim::make_snapshot(db(), db().suite().index_of(name), 0,
                                         workload::baseline_setting(db().system())));
  }
  return snaps;
}

RmConfig config(RmPolicy policy, PerfModelKind model = PerfModelKind::Model3) {
  RmConfig cfg;
  cfg.policy = policy;
  cfg.model = model;
  return cfg;
}

TEST(ResourceManager, IdleKeepsBaselineEverywhere) {
  ResourceManager manager(config(RmPolicy::Idle), db().system(), db().power());
  const auto snaps = snapshots_for({"mcf", "libquantum"});
  const RmDecision d = manager.invoke(0, snaps);
  const Setting base = workload::baseline_setting(db().system());
  for (const Setting& s : d.settings) EXPECT_TRUE(s == base);
  EXPECT_EQ(d.ops, 0u);
}

TEST(ResourceManager, WayBudgetAlwaysRespected) {
  for (const RmPolicy policy : {RmPolicy::Rm1, RmPolicy::Rm2, RmPolicy::Rm3}) {
    ResourceManager manager(config(policy), db().system(), db().power());
    const auto snaps = snapshots_for({"mcf", "libquantum"});
    const RmDecision d = manager.invoke(0, snaps);
    int total = 0;
    for (const Setting& s : d.settings) total += s.w;
    EXPECT_EQ(total, db().system().total_ways()) << rm_policy_name(policy);
  }
}

TEST(ResourceManager, Rm1NeverTouchesFrequencyOrSize) {
  ResourceManager manager(config(RmPolicy::Rm1), db().system(), db().power());
  const auto snaps = snapshots_for({"mcf", "bwaves"});
  const RmDecision d = manager.invoke(1, snaps);
  for (const Setting& s : d.settings) {
    EXPECT_EQ(s.c, arch::kBaselineCoreSize);
    EXPECT_EQ(s.f_idx, arch::VfTable::kBaselineIndex);
  }
}

TEST(ResourceManager, Rm2AdjustsFrequencyNotSize) {
  ResourceManager manager(config(RmPolicy::Rm2), db().system(), db().power());
  const auto snaps = snapshots_for({"mcf", "libquantum"});
  const RmDecision d = manager.invoke(0, snaps);
  bool any_f_change = false;
  for (const Setting& s : d.settings) {
    EXPECT_EQ(s.c, arch::kBaselineCoreSize);
    any_f_change |= s.f_idx != arch::VfTable::kBaselineIndex;
  }
  EXPECT_TRUE(any_f_change);
}

TEST(ResourceManager, Rm3CanResizeCores) {
  ResourceManager manager(config(RmPolicy::Rm3), db().system(), db().power());
  const auto snaps = snapshots_for({"libquantum", "bwaves"});
  const RmDecision d = manager.invoke(0, snaps);
  bool any_resize = false;
  for (const Setting& s : d.settings) {
    any_resize |= s.c != arch::kBaselineCoreSize;
  }
  EXPECT_TRUE(any_resize);
}

TEST(ResourceManager, CacheSensitiveAppGainsWaysFromInsensitiveOne) {
  ResourceManager manager(config(RmPolicy::Rm3), db().system(), db().power());
  // mcf is cache-sensitive; bwaves is streaming (flat miss curve).
  const auto snaps = snapshots_for({"mcf", "bwaves"});
  const RmDecision d = manager.invoke(0, snaps);
  EXPECT_GT(d.settings[0].w, d.settings[1].w);
}

TEST(ResourceManager, DecisionsSatisfyPredictedQos) {
  ResourceManager manager(config(RmPolicy::Rm3), db().system(), db().power());
  const auto snaps = snapshots_for({"mcf", "xalancbmk"});
  const RmDecision d = manager.invoke(0, snaps);
  const PerfModel& perf = manager.perf_model();
  for (std::size_t k = 0; k < snaps.size(); ++k) {
    EXPECT_TRUE(perf.qos_ok(snaps[k], d.settings[k])) << "core " << k;
  }
}

TEST(ResourceManager, CachedCurvesReusedAcrossInvocations) {
  ResourceManager manager(config(RmPolicy::Rm3), db().system(), db().power());
  const auto snaps = snapshots_for({"mcf", "libquantum"});
  const RmDecision first = manager.invoke(0, snaps);
  // Second invocation on core 1: core 0's cached curve is reused, so total
  // ops are lower than a cold start that computes curves for both cores.
  const RmDecision second = manager.invoke(1, snaps);
  EXPECT_GT(first.ops, 0u);
  EXPECT_GT(second.ops, 0u);
  // Decisions stay consistent (same counters -> same curves -> same split).
  EXPECT_EQ(first.settings[0].w + first.settings[1].w,
            second.settings[0].w + second.settings[1].w);
}

TEST(ResourceManager, ResetForcesCurveRebuild) {
  ResourceManager manager(config(RmPolicy::Rm3), db().system(), db().power());
  const auto snaps = snapshots_for({"mcf", "libquantum"});
  (void)manager.invoke(0, snaps);
  manager.reset();
  const RmDecision d = manager.invoke(0, snaps);
  int total = 0;
  for (const Setting& s : d.settings) total += s.w;
  EXPECT_EQ(total, db().system().total_ways());
}

TEST(ResourceManager, RepeatedInvokeDoesNotLeakWorkspaceState) {
  // Two managers fed the same invocation sequence must agree step by step:
  // the reused workspace (flat curves, DP buffers, decision storage) may not
  // carry anything observable from one boundary to the next.
  ResourceManager a(config(RmPolicy::Rm3), db().system(), db().power());
  ResourceManager b(config(RmPolicy::Rm3), db().system(), db().power());
  const auto snaps1 = snapshots_for({"mcf", "libquantum"});
  const auto snaps2 = snapshots_for({"xalancbmk", "bwaves"});
  const std::vector<std::pair<int, const std::vector<CounterSnapshot>*>> seq = {
      {0, &snaps1}, {1, &snaps1}, {0, &snaps2}, {1, &snaps2}, {0, &snaps1},
      {1, &snaps2}, {0, &snaps1}, {1, &snaps1}};
  for (std::size_t step = 0; step < seq.size(); ++step) {
    const RmDecision da = a.invoke(seq[step].first, *seq[step].second);
    const RmDecision db_ = b.invoke(seq[step].first, *seq[step].second);
    ASSERT_EQ(da.settings.size(), db_.settings.size()) << "step " << step;
    for (std::size_t k = 0; k < da.settings.size(); ++k) {
      EXPECT_TRUE(da.settings[k] == db_.settings[k])
          << "step " << step << " core " << k;
    }
    EXPECT_EQ(da.ops, db_.ops) << "step " << step;
    EXPECT_EQ(da.feasible, db_.feasible) << "step " << step;
  }
}

TEST(ResourceManager, ResetPlusReuseMatchesFreshManager) {
  // A manager that has been through unrelated boundaries and then reset()
  // must decide exactly like a brand-new manager: reset invalidates every
  // cached curve while the workspace buffers are merely reused.
  ResourceManager seasoned(config(RmPolicy::Rm3), db().system(), db().power());
  const auto warmup = snapshots_for({"xalancbmk", "bwaves"});
  (void)seasoned.invoke(0, warmup);
  (void)seasoned.invoke(1, warmup);
  seasoned.reset();

  ResourceManager fresh(config(RmPolicy::Rm3), db().system(), db().power());
  const auto snaps = snapshots_for({"mcf", "libquantum"});
  const RmDecision a = seasoned.invoke(0, snaps);
  const RmDecision b = fresh.invoke(0, snaps);
  ASSERT_EQ(a.settings.size(), b.settings.size());
  for (std::size_t k = 0; k < a.settings.size(); ++k) {
    EXPECT_TRUE(a.settings[k] == b.settings[k]) << "core " << k;
  }
  EXPECT_EQ(a.ops, b.ops);
}

// ---------------------------------------------------------------------------
// Interval-outcome memo. A keyed snapshot's local optimization is a pure
// function of its (app, phase, setting) evaluation cell, so replaying a
// memoized outcome must be completely transparent: identical settings AND
// identical charged ops, whether the cell is fresh or replayed.

RmConfig memo_config(RmMemoMode memo) {
  RmConfig cfg = config(RmPolicy::Rm3);
  cfg.memo = memo;
  return cfg;
}

TEST(ResourceManagerMemo, AutoModeEnablesFromEightCoresUp) {
  for (const int cores : {2, 4, 8, 16}) {
    arch::SystemConfig system;
    system.cores = cores;
    ResourceManager manager(config(RmPolicy::Rm3), system, db().power());
    EXPECT_EQ(manager.memo_enabled(), cores >= 8) << cores << " cores";
  }
  arch::SystemConfig two;
  two.cores = 2;
  EXPECT_TRUE(ResourceManager(memo_config(RmMemoMode::On), two, db().power())
                  .memo_enabled());
  arch::SystemConfig sixteen;
  sixteen.cores = 16;
  EXPECT_FALSE(ResourceManager(memo_config(RmMemoMode::Off), sixteen,
                               db().power())
                   .memo_enabled());
}

TEST(ResourceManagerMemo, ReplayedOutcomesAreBitIdenticalToRecomputation) {
  ResourceManager memoized(memo_config(RmMemoMode::On), db().system(),
                           db().power());
  ResourceManager plain(memo_config(RmMemoMode::Off), db().system(),
                        db().power());
  ASSERT_TRUE(memoized.memo_enabled());
  ASSERT_FALSE(plain.memo_enabled());

  const auto snaps1 = snapshots_for({"mcf", "libquantum"});
  const auto snaps2 = snapshots_for({"xalancbmk", "bwaves"});
  // Revisits guarantee memo hits (same cells as the first two steps) and a
  // reset() in the middle proves the memo legitimately survives it: the
  // replayed outcome for an unchanged cell is what a recomputation would
  // produce anyway.
  const std::vector<std::pair<int, const std::vector<CounterSnapshot>*>> seq = {
      {0, &snaps1}, {1, &snaps1}, {0, &snaps2}, {1, &snaps2},
      {0, &snaps1}, {1, &snaps2}, {-1, nullptr} /* reset */,
      {0, &snaps1}, {1, &snaps1}, {0, &snaps2}};
  for (std::size_t step = 0; step < seq.size(); ++step) {
    if (seq[step].first < 0) {
      memoized.reset();
      plain.reset();
      continue;
    }
    const RmDecision a = memoized.invoke(seq[step].first, *seq[step].second);
    const RmDecision b = plain.invoke(seq[step].first, *seq[step].second);
    ASSERT_EQ(a.settings.size(), b.settings.size()) << "step " << step;
    for (std::size_t k = 0; k < a.settings.size(); ++k) {
      EXPECT_TRUE(a.settings[k] == b.settings[k])
          << "step " << step << " core " << k;
    }
    EXPECT_EQ(a.ops, b.ops) << "step " << step;
    EXPECT_EQ(a.feasible, b.feasible) << "step " << step;
  }
}

TEST(ResourceManagerMemo, SnapshotRefreshNeverServesStaleOutcome) {
  // The memo key is stamped by make_snapshot_into at refresh time, so
  // re-pointing a snapshot slot at a different evaluation cell (app change on
  // the same core - the service-mode departure/admission pattern) must be
  // picked up immediately, not served from the old cell's memo entry.
  ResourceManager memoized(memo_config(RmMemoMode::On), db().system(),
                           db().power());
  ResourceManager plain(memo_config(RmMemoMode::Off), db().system(),
                        db().power());
  const Setting base = workload::baseline_setting(db().system());

  std::vector<CounterSnapshot> snaps(2);
  const int apps[] = {db().suite().index_of("mcf"),
                      db().suite().index_of("libquantum"),
                      db().suite().index_of("xalancbmk")};
  rmsim::make_snapshot_into(db(), apps[0], 0, base, -1, snaps[0]);
  rmsim::make_snapshot_into(db(), apps[1], 0, base, -1, snaps[1]);

  for (int round = 0; round < 6; ++round) {
    // Rotate core 0 through the apps, refreshing IN PLACE; core 1 keeps its
    // cell so its memo entry is replayed while core 0's key changes.
    rmsim::make_snapshot_into(db(), apps[round % 3], 0, base, -1, snaps[0]);
    const RmDecision a = memoized.invoke(0, snaps);
    const RmDecision b = plain.invoke(0, snaps);
    ASSERT_EQ(a.settings.size(), b.settings.size()) << "round " << round;
    for (std::size_t k = 0; k < a.settings.size(); ++k) {
      EXPECT_TRUE(a.settings[k] == b.settings[k])
          << "round " << round << " core " << k;
    }
    EXPECT_EQ(a.ops, b.ops) << "round " << round;
  }
}

TEST(ResourceManagerMemo, OracleSnapshotsBypassTheMemo) {
  // Oracle-backed snapshots (Perfect model) depend on the oracle phase, not
  // just the evaluation cell, so they must never be memoized. Two managers
  // with the memo on and off must agree on every Perfect-model decision.
  ResourceManager memoized(
      [] {
        RmConfig cfg = config(RmPolicy::Rm3, PerfModelKind::Perfect);
        cfg.memo = RmMemoMode::On;
        return cfg;
      }(),
      db().system(), db().power());
  ResourceManager plain(
      [] {
        RmConfig cfg = config(RmPolicy::Rm3, PerfModelKind::Perfect);
        cfg.memo = RmMemoMode::Off;
        return cfg;
      }(),
      db().system(), db().power());

  const Setting base = workload::baseline_setting(db().system());
  std::vector<CounterSnapshot> snaps(2);
  for (int round = 0; round < 4; ++round) {
    rmsim::make_snapshot_into(db(), db().suite().index_of("mcf"), round % 2,
                              base, (round + 1) % 2, snaps[0]);
    rmsim::make_snapshot_into(db(), db().suite().index_of("libquantum"),
                              round % 2, base, (round + 1) % 2, snaps[1]);
    const RmDecision a = memoized.invoke(round % 2, snaps);
    const RmDecision b = plain.invoke(round % 2, snaps);
    for (std::size_t k = 0; k < a.settings.size(); ++k) {
      EXPECT_TRUE(a.settings[k] == b.settings[k])
          << "round " << round << " core " << k;
    }
    EXPECT_EQ(a.ops, b.ops) << "round " << round;
  }
}

TEST(ResourceManager, PolicyNames) {
  EXPECT_STREQ(rm_policy_name(RmPolicy::Idle), "Idle");
  EXPECT_STREQ(rm_policy_name(RmPolicy::Rm1), "RM1");
  EXPECT_STREQ(rm_policy_name(RmPolicy::Rm2), "RM2");
  EXPECT_STREQ(rm_policy_name(RmPolicy::Rm3), "RM3");
}

}  // namespace
}  // namespace qosrm::rm
