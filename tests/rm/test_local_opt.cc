#include "rm/local_opt.hh"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "rmsim/snapshot.hh"
#include "support/shared_db.hh"

namespace qosrm::rm {
namespace {

using workload::Setting;

const workload::SimDb& db() { return qosrm::testing::shared_db(); }

CounterSnapshot snapshot_of(const char* name) {
  return rmsim::make_snapshot(db(), db().suite().index_of(name), 0,
                              workload::baseline_setting(db().system()));
}

struct Optimizers {
  PerfModel perf{PerfModelKind::Model3, db().system()};
  OnlineEnergyModel energy{db().power()};
};

TEST(LocalOpt, BaselineAllocationAlwaysFeasible) {
  Optimizers o;
  for (const LocalOptOptions opt :
       {LocalOptOptions{false, false}, LocalOptOptions{true, false},
        LocalOptOptions{true, true}}) {
    const LocalOptimizer lo(o.perf, o.energy, opt);
    const auto result = lo.optimize(snapshot_of("mcf"));
    EXPECT_TRUE(result.at(8).feasible);
  }
}

TEST(LocalOpt, Rm1KeepsBaselineCoreAndFrequency) {
  Optimizers o;
  const LocalOptimizer lo(o.perf, o.energy, {false, false});
  const auto result = lo.optimize(snapshot_of("mcf"));
  for (int w = result.min_ways; w <= result.max_ways(); ++w) {
    if (!result.at(w).feasible) continue;
    EXPECT_EQ(result.at(w).setting.c, arch::kBaselineCoreSize);
    EXPECT_EQ(result.at(w).setting.f_idx, arch::VfTable::kBaselineIndex);
    EXPECT_EQ(result.at(w).setting.w, w);
  }
}

TEST(LocalOpt, Rm1InfeasibleBelowBaselineForCacheSensitiveApp) {
  // Without DVFS compensation, taking ways from mcf must violate QoS.
  Optimizers o;
  const LocalOptimizer lo(o.perf, o.energy, {false, false});
  const auto result = lo.optimize(snapshot_of("mcf"));
  EXPECT_FALSE(result.at(2).feasible);
  EXPECT_TRUE(result.at(12).feasible);
}

TEST(LocalOpt, Rm2FindsMinimumFeasibleFrequency) {
  Optimizers o;
  const LocalOptimizer lo(o.perf, o.energy, {true, false});
  const auto result = lo.optimize(snapshot_of("mcf"));
  // f*(w) must be non-increasing in w for a cache-sensitive app: more cache
  // means more slack means lower frequency.
  int prev_f = arch::VfTable::kNumPoints;
  for (int w = result.min_ways; w <= result.max_ways(); ++w) {
    ASSERT_TRUE(result.at(w).feasible) << w;  // DVFS can always compensate
    EXPECT_LE(result.at(w).setting.f_idx, prev_f) << "w=" << w;
    prev_f = result.at(w).setting.f_idx;
    EXPECT_EQ(result.at(w).setting.c, arch::kBaselineCoreSize);
  }
}

TEST(LocalOpt, Rm2QosHoldsAtChosenSettings) {
  Optimizers o;
  const LocalOptimizer lo(o.perf, o.energy, {true, false});
  const CounterSnapshot snap = snapshot_of("xalancbmk");
  const auto result = lo.optimize(snap);
  for (int w = result.min_ways; w <= result.max_ways(); ++w) {
    if (!result.at(w).feasible) continue;
    EXPECT_TRUE(o.perf.qos_ok(snap, result.at(w).setting)) << "w=" << w;
  }
}

TEST(LocalOpt, Rm3DominatesRm2EnergyCurve) {
  // A larger search space can only improve the estimated optimum.
  Optimizers o;
  const CounterSnapshot snap = snapshot_of("libquantum");
  const LocalOptimizer rm2(o.perf, o.energy, {true, false});
  const LocalOptimizer rm3(o.perf, o.energy, {true, true});
  const auto r2 = rm2.optimize(snap);
  const auto r3 = rm3.optimize(snap);
  for (int w = r2.min_ways; w <= r2.max_ways(); ++w) {
    if (!r2.at(w).feasible) continue;
    ASSERT_TRUE(r3.at(w).feasible);
    EXPECT_LE(r3.at(w).energy_j, r2.at(w).energy_j + 1e-12) << "w=" << w;
  }
}

TEST(LocalOpt, Rm3PicksLargeCoreForParallelismSensitiveApp) {
  Optimizers o;
  const LocalOptimizer rm3(o.perf, o.energy, {true, true});
  const auto result = rm3.optimize(snapshot_of("libquantum"));
  // Somewhere in the allocation range the L core must win for a strongly
  // parallelism-sensitive streaming application.
  bool picks_large = false;
  for (int w = result.min_ways; w <= result.max_ways(); ++w) {
    picks_large |= result.at(w).feasible &&
                   result.at(w).setting.c == arch::CoreSize::L;
  }
  EXPECT_TRUE(picks_large);
}

TEST(LocalOpt, Rm3KeepsBaselineForInsensitiveApp) {
  // povray (CI-PI): no resource helps; the optimizer must not find anything
  // materially cheaper than the baseline setting.
  Optimizers o;
  const LocalOptimizer rm3(o.perf, o.energy, {true, true});
  const CounterSnapshot snap = snapshot_of("povray");
  const auto result = rm3.optimize(snap);
  const OnlineEnergyModel& em = o.energy;
  const Setting base = workload::baseline_setting(db().system());
  const double e_base =
      em.estimate(snap, base, o.perf.predict_time(snap, base));
  EXPECT_GT(result.at(8).energy_j, e_base * 0.97);
}

TEST(LocalOpt, EnergyCurveMarksInfeasibleAsInfinity) {
  Optimizers o;
  const LocalOptimizer rm1(o.perf, o.energy, {false, false});
  const auto result = rm1.optimize(snapshot_of("mcf"));
  const auto curve = result.energy_curve();
  ASSERT_EQ(curve.size(), static_cast<std::size_t>(db().system().llc.num_allocations()));
  EXPECT_TRUE(std::isinf(curve[0]));                      // w=2 infeasible
  EXPECT_FALSE(std::isinf(curve[8 - result.min_ways]));   // w=8 feasible
}

TEST(LocalOpt, OpsAccumulateAcrossCalls) {
  Optimizers o;
  const LocalOptimizer rm3(o.perf, o.energy, {true, true});
  std::uint64_t ops = 0;
  (void)rm3.optimize(snapshot_of("mcf"), &ops);
  const std::uint64_t after_one = ops;
  EXPECT_GT(after_one, 0u);
  (void)rm3.optimize(snapshot_of("mcf"), &ops);
  EXPECT_NEAR(static_cast<double>(ops), 2.0 * static_cast<double>(after_one),
              static_cast<double>(after_one) * 0.01);
}

TEST(LocalOpt, Rm3SearchCostsMoreOpsThanRm2) {
  Optimizers o;
  const LocalOptimizer rm2(o.perf, o.energy, {true, false});
  const LocalOptimizer rm3(o.perf, o.energy, {true, true});
  std::uint64_t ops2 = 0, ops3 = 0;
  (void)rm2.optimize(snapshot_of("mcf"), &ops2);
  (void)rm3.optimize(snapshot_of("mcf"), &ops3);
  EXPECT_GT(ops3, ops2);  // three core sizes vs one
}

// The optimizer hoists the target-invariant Eq. 1 terms out of its
// (w, c, f) sweep. This reference loop evaluates the model directly per
// setting - exactly what the pre-hoisting implementation did - and every
// result field must match BITWISE, for every analytical model kind and a
// spread of apps/knob sets.
TEST(LocalOpt, HoistedSweepMatchesModelCalls) {
  const arch::SystemConfig& sys = db().system();
  for (const PerfModelKind kind :
       {PerfModelKind::Model1, PerfModelKind::Model2, PerfModelKind::Model3}) {
    for (const char* app : {"mcf", "libquantum", "bwaves", "xalancbmk"}) {
      for (const LocalOptOptions opt :
           {LocalOptOptions{false, false}, LocalOptOptions{true, false},
            LocalOptOptions{true, true}}) {
        const PerfModel perf(kind, sys);
        const OnlineEnergyModel energy(db().power());
        const LocalOptimizer lo(perf, energy, opt);
        const CounterSnapshot snap = snapshot_of(app);
        const LocalOptResult result = lo.optimize(snap);

        const workload::Setting base = workload::baseline_setting(sys);
        const double t_base = perf.predict_time(snap, base) * sys.qos_alpha;
        const std::vector<arch::CoreSize> sizes =
            opt.allow_resize
                ? std::vector<arch::CoreSize>{arch::CoreSize::S,
                                              arch::CoreSize::M,
                                              arch::CoreSize::L}
                : std::vector<arch::CoreSize>{arch::kBaselineCoreSize};

        for (int w = sys.llc.min_ways; w <= sys.llc.max_ways; ++w) {
          WayChoice expect;
          for (const arch::CoreSize c : sizes) {
            int f_star = -1;
            double t_star = 0.0;
            if (opt.allow_dvfs) {
              for (int f = 0; f < arch::VfTable::kNumPoints; ++f) {
                const double t = perf.predict_time(snap, {c, f, w});
                if (t <= t_base) {
                  f_star = f;
                  t_star = t;
                  break;
                }
              }
            } else {
              const double t =
                  perf.predict_time(snap, {c, arch::VfTable::kBaselineIndex, w});
              if (t <= t_base) {
                f_star = arch::VfTable::kBaselineIndex;
                t_star = t;
              }
            }
            if (f_star < 0) continue;
            const workload::Setting s{c, f_star, w};
            const double e = energy.estimate(snap, s, t_star);
            if (e < expect.energy_j) {
              expect.feasible = true;
              expect.setting = s;
              expect.predicted_time_s = t_star;
              expect.energy_j = e;
            }
          }

          const WayChoice& got = result.at(w);
          const std::string where = std::string(perf_model_name(kind)) + "/" +
                                    app + "/w=" + std::to_string(w);
          ASSERT_EQ(got.feasible, expect.feasible) << where;
          if (!expect.feasible) continue;
          EXPECT_TRUE(got.setting == expect.setting) << where;
          EXPECT_EQ(got.predicted_time_s, expect.predicted_time_s) << where;
          EXPECT_EQ(got.energy_j, expect.energy_j) << where;
        }
      }
    }
  }
}

}  // namespace
}  // namespace qosrm::rm
