#include "rm/energy_model.hh"

#include <gtest/gtest.h>

#include "rm/perf_model.hh"

#include "rmsim/snapshot.hh"
#include "support/shared_db.hh"

namespace qosrm::rm {
namespace {

using workload::Setting;

const workload::SimDb& db() { return qosrm::testing::shared_db(); }

CounterSnapshot snapshot_at(const Setting& s, const char* app_name = "mcf") {
  const int app = db().suite().index_of(app_name);
  return rmsim::make_snapshot(db(), app, 0, s, 0);
}

TEST(EnergyModel, EstimateAtCurrentSettingMatchesMeasurement) {
  const Setting base = workload::baseline_setting(db().system());
  const CounterSnapshot snap = snapshot_at(base);
  const OnlineEnergyModel model(db().power());
  const int app = db().suite().index_of("mcf");
  const double actual = db().energy(app, 0, base).total_j();
  const double estimate = model.estimate(snap, base, snap.total_time_s);
  EXPECT_NEAR(estimate, actual, actual * 0.05);
}

TEST(EnergyModel, MemoryTermFollowsEqFive) {
  const Setting base = workload::baseline_setting(db().system());
  const CounterSnapshot snap = snapshot_at(base);
  const OnlineEnergyModel model(db().power());
  // MA covers fills plus writebacks; DM is the ATD-predicted miss
  // difference between target and current w, scaled by the writeback ratio.
  const double e8 = model.memory_energy(snap, 8);
  const double e14 = model.memory_energy(snap, 14);
  EXPECT_NEAR(e8,
              (snap.llc_misses + snap.writebacks) *
                  db().power().params().mem_energy_joule,
              1e-9);
  const double wb_ratio = snap.writebacks / snap.llc_misses;
  const double dm = snap.atd_misses_at(14) - snap.atd_misses_at(8);
  EXPECT_NEAR(e14 - e8,
              dm * (1.0 + wb_ratio) * db().power().params().mem_energy_joule,
              1e-6);
  EXPECT_LT(e14, e8);  // more cache -> fewer memory accesses
}

TEST(EnergyModel, VoltageScalingQuadratic) {
  const Setting base = workload::baseline_setting(db().system());
  const CounterSnapshot snap = snapshot_at(base);
  const OnlineEnergyModel model(db().power());
  Setting hi = base;
  hi.f_idx = arch::VfTable::kNumPoints - 1;  // 1.25 V
  const double t = snap.total_time_s;
  // Estimate at high voltage must exceed baseline by roughly the dynamic
  // share times (1.25^2 - 1).
  const double e_base = model.estimate(snap, base, t);
  const double e_hi = model.estimate(snap, hi, t);
  EXPECT_GT(e_hi, e_base * 1.15);
}

TEST(EnergyModel, CrossSizeEstimateTracksGroundTruth) {
  // The headline fix: estimating a DIFFERENT core size from an M-core sample
  // must not be systematically biased. Check both directions within 10%.
  const Setting base = workload::baseline_setting(db().system());
  const int app = db().suite().index_of("libquantum");
  const CounterSnapshot snap = rmsim::make_snapshot(db(), app, 0, base, 0);
  const OnlineEnergyModel model(db().power());
  const PerfModel perf(PerfModelKind::Model3, db().system());

  for (const arch::CoreSize c : {arch::CoreSize::S, arch::CoreSize::L}) {
    Setting target = base;
    target.c = c;
    const double t_pred = perf.predict_time(snap, target);
    const double estimate = model.estimate(snap, target, t_pred);
    const double actual = db().energy(app, 0, target).total_j();
    EXPECT_NEAR(estimate, actual, actual * 0.10) << arch::core_size_name(c);
  }
}

TEST(EnergyModel, LiteralEq4UnderestimatesFastSettings) {
  // Documented deviation: the literal power-times-predicted-time form
  // underestimates settings that retire the interval in less time.
  const Setting base = workload::baseline_setting(db().system());
  const int app = db().suite().index_of("soplex");
  const CounterSnapshot snap = rmsim::make_snapshot(db(), app, 0, base, 0);
  EnergyModelOptions literal;
  literal.literal_eq4 = true;
  const OnlineEnergyModel model_literal(db().power(), literal);
  const OnlineEnergyModel model_default(db().power());
  const PerfModel perf(PerfModelKind::Model3, db().system());

  Setting fast = base;
  fast.c = arch::CoreSize::L;  // same f, fewer cycles -> shorter time
  const double t_pred = perf.predict_time(snap, fast);
  EXPECT_LT(model_literal.estimate(snap, fast, t_pred),
            model_default.estimate(snap, fast, t_pred));
}

TEST(EnergyModel, PerfectModeReturnsGroundTruth) {
  const Setting base = workload::baseline_setting(db().system());
  const int app = db().suite().index_of("mcf");
  const CounterSnapshot snap = rmsim::make_snapshot(db(), app, 0, base, 0);
  EnergyModelOptions opt;
  opt.perfect = true;
  const OnlineEnergyModel model(db().power(), opt);
  const Setting target{arch::CoreSize::L, 2, 12};
  EXPECT_DOUBLE_EQ(model.estimate(snap, target, /*predicted_time_s=*/0.0),
                   db().energy(app, 0, target).total_j());
}

TEST(EnergyModel, StaticTermScalesWithPredictedTime) {
  const Setting base = workload::baseline_setting(db().system());
  const CounterSnapshot snap = snapshot_at(base);
  const OnlineEnergyModel model(db().power());
  const double e1 = model.estimate(snap, base, 0.040);
  const double e2 = model.estimate(snap, base, 0.080);
  const double p_static = db().power().core_static_power(base.c, 1.0);
  EXPECT_NEAR(e2 - e1, p_static * 0.040, 1e-9);
}

}  // namespace
}  // namespace qosrm::rm
