#include "rm/overheads.hh"

#include <gtest/gtest.h>

namespace qosrm::rm {
namespace {

using workload::Setting;

power::PowerModel pm;

TEST(Overheads, InstructionCountLinearInOps) {
  const OverheadModel model({}, pm);
  const double i0 = model.rm_instructions(0);
  const double i1000 = model.rm_instructions(1000);
  EXPECT_DOUBLE_EQ(i0, model.params().instr_base);
  EXPECT_DOUBLE_EQ(i1000 - i0, 1000 * model.params().instr_per_op);
}

TEST(Overheads, RmExecutionChargesTimeAndEnergy) {
  const OverheadModel model({}, pm);
  const Setting base{arch::CoreSize::M, arch::VfTable::kBaselineIndex, 8};
  const EnforcementCost cost = model.rm_execution(2000, base, 2.0);
  // instructions / (ipc * f).
  EXPECT_NEAR(cost.time_s, model.rm_instructions(2000) / (2.0 * 2e9), 1e-12);
  EXPECT_GT(cost.energy_j, 0.0);
}

TEST(Overheads, RmExecutionIsTinyVersusInterval) {
  // Paper: ~0.1% of a 100M-instruction interval for an 8-core system.
  const OverheadModel model({}, pm);
  const Setting base{arch::CoreSize::M, arch::VfTable::kBaselineIndex, 8};
  const EnforcementCost cost = model.rm_execution(5000, base, 2.0);
  const double interval_s = 100e6 / 2.0 / 2e9;
  EXPECT_LT(cost.time_s / interval_s, 0.01);
}

TEST(Overheads, DvfsTransitionMatchesPaperConstants) {
  const OverheadModel model({}, pm);
  const Setting from{arch::CoreSize::M, 4, 8};
  Setting to = from;
  to.f_idx = 9;
  const EnforcementCost cost = model.transition(from, to);
  EXPECT_DOUBLE_EQ(cost.time_s, 15e-6);
  EXPECT_DOUBLE_EQ(cost.energy_j, 3e-6);
}

TEST(Overheads, NoChangeNoCost) {
  const OverheadModel model({}, pm);
  const Setting s{arch::CoreSize::M, 4, 8};
  const EnforcementCost cost = model.transition(s, s);
  EXPECT_DOUBLE_EQ(cost.time_s, 0.0);
  EXPECT_DOUBLE_EQ(cost.energy_j, 0.0);
}

TEST(Overheads, WayMaskChangeIsFree) {
  const OverheadModel model({}, pm);
  const Setting from{arch::CoreSize::M, 4, 8};
  Setting to = from;
  to.w = 12;
  const EnforcementCost cost = model.transition(from, to);
  EXPECT_DOUBLE_EQ(cost.time_s, 0.0);
}

TEST(Overheads, ResizeDrainsPipeline) {
  const OverheadModel model({}, pm);
  const Setting from{arch::CoreSize::L, arch::VfTable::kBaselineIndex, 8};
  Setting to = from;
  to.c = arch::CoreSize::M;
  const EnforcementCost cost = model.transition(from, to, 2.0);
  // ROB(L)/IPC cycles at 2 GHz: 256/2/2e9 = 64 ns - "a few hundred cycles".
  EXPECT_NEAR(cost.time_s, 256.0 / 2.0 / 2e9, 1e-12);
  EXPECT_GT(cost.energy_j, 0.0);
}

TEST(Overheads, CombinedTransitionSumsComponents) {
  const OverheadModel model({}, pm);
  const Setting from{arch::CoreSize::M, arch::VfTable::kBaselineIndex, 8};
  const Setting to{arch::CoreSize::L, 12, 12};
  const EnforcementCost cost = model.transition(from, to, 2.0);
  // DVFS switch plus a 128-entry drain at the old 2 GHz operating point.
  EXPECT_NEAR(cost.time_s, 15e-6 + 128.0 / 2.0 / 2e9, 1e-12);
}

TEST(Overheads, AccumulationOperator) {
  EnforcementCost total;
  total += {1e-6, 2e-6};
  total += {3e-6, 4e-6};
  EXPECT_DOUBLE_EQ(total.time_s, 4e-6);
  EXPECT_DOUBLE_EQ(total.energy_j, 6e-6);
}

}  // namespace
}  // namespace qosrm::rm
