// 2-D (ways x bandwidth-shares) generalization of the global optimizer,
// pinned three ways:
//
//   1. DEGENERACY - with every surface a single share row, the 2-D reduction
//      must reproduce the pre-CBP 1-D optimizer bit for bit. The oracle below
//      is the pre-workspace tree reduction kept verbatim (the same oracle the
//      flat-buffer rewrite was pinned against), so any drift in values, tie
//      breaking or pair order fails here.
//   2. CORRECTNESS - on genuinely 2-D random surfaces the reduction must
//      agree with exhaustive search over all (ways, shares) splits.
//   3. DISPATCH - the AVX2 kernel must match the scalar fallback bit for bit
//      on 2-D inputs too (per-row feasible spans, row seams, empty rows).
#include "rm/global_opt.hh"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>

#include "common/rng.hh"

namespace qosrm::rm {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------------
// Verbatim pre-refactor 1-D oracle (heap-allocated tree reduction, strict-less
// tie-breaking, ascending-wa pair order). Deliberately NOT shared with the
// production code or the other test file: it is the frozen reference.
struct TreeNode {
  int lo = 0;
  std::vector<double> energy;
  std::vector<int> left_ways;
  int first_core = 0;
  int last_core = 0;
  std::unique_ptr<TreeNode> left;
  std::unique_ptr<TreeNode> right;

  [[nodiscard]] int hi() const noexcept {
    return lo + static_cast<int>(energy.size()) - 1;
  }
};

std::unique_ptr<TreeNode> tree_leaf(const EnergyCurve& curve, int core) {
  auto node = std::make_unique<TreeNode>();
  node->lo = curve.min_ways;
  node->energy = curve.energy;
  node->first_core = core;
  node->last_core = core;
  return node;
}

std::unique_ptr<TreeNode> tree_combine(std::unique_ptr<TreeNode> a,
                                       std::unique_ptr<TreeNode> b) {
  auto node = std::make_unique<TreeNode>();
  node->lo = a->lo + b->lo;
  const int hi = a->hi() + b->hi();
  const auto size = static_cast<std::size_t>(hi - node->lo + 1);
  node->energy.assign(size, kInf);
  node->left_ways.assign(size, -1);
  node->first_core = a->first_core;
  node->last_core = b->last_core;
  for (int wa = a->lo; wa <= a->hi(); ++wa) {
    const double ea = a->energy[static_cast<std::size_t>(wa - a->lo)];
    if (std::isinf(ea)) continue;
    for (int wb = b->lo; wb <= b->hi(); ++wb) {
      const double eb = b->energy[static_cast<std::size_t>(wb - b->lo)];
      if (std::isinf(eb)) continue;
      const std::size_t idx = static_cast<std::size_t>(wa + wb - node->lo);
      if (ea + eb < node->energy[idx]) {
        node->energy[idx] = ea + eb;
        node->left_ways[idx] = wa;
      }
    }
  }
  node->left = std::move(a);
  node->right = std::move(b);
  return node;
}

void tree_backtrack(const TreeNode& node, int total, std::vector<int>& ways) {
  if (!node.left) {
    ways[static_cast<std::size_t>(node.first_core)] = total;
    return;
  }
  const int wl = node.left_ways[static_cast<std::size_t>(total - node.lo)];
  ASSERT_GE(wl, 0);
  tree_backtrack(*node.left, wl, ways);
  tree_backtrack(*node.right, total - wl, ways);
}

GlobalOptResult tree_optimize(std::span<const EnergyCurve> curves,
                              int total_ways) {
  std::vector<std::unique_ptr<TreeNode>> level;
  level.reserve(curves.size());
  for (std::size_t i = 0; i < curves.size(); ++i) {
    level.push_back(tree_leaf(curves[i], static_cast<int>(i)));
  }
  while (level.size() > 1) {
    std::vector<std::unique_ptr<TreeNode>> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(tree_combine(std::move(level[i]), std::move(level[i + 1])));
    }
    if (level.size() % 2 == 1) next.push_back(std::move(level.back()));
    level = std::move(next);
  }
  const TreeNode& root = *level.front();
  GlobalOptResult result;
  if (total_ways < root.lo || total_ways > root.hi()) return result;
  const double e = root.energy[static_cast<std::size_t>(total_ways - root.lo)];
  if (std::isinf(e)) return result;
  result.feasible = true;
  result.total_energy = e;
  result.ways.assign(curves.size(), 0);
  tree_backtrack(root, total_ways, result.ways);
  return result;
}

// ---------------------------------------------------------------------------
// Generators and helpers.

EnergyCurve random_surface(Rng& rng, int num_ways, int num_shares,
                           double p_inf) {
  EnergyCurve cu;
  cu.min_ways = 1 + static_cast<int>(rng.uniform_u64(3));
  cu.min_shares = 1 + static_cast<int>(rng.uniform_u64(2));
  cu.num_shares = num_shares;
  for (int i = 0; i < num_ways * num_shares; ++i) {
    cu.energy.push_back(rng.bernoulli(p_inf) ? kInf : rng.uniform(1.0, 50.0));
  }
  return cu;
}

std::vector<EnergyCurveView> views_of(const std::vector<EnergyCurve>& curves) {
  std::vector<EnergyCurveView> views;
  for (const EnergyCurve& c : curves) {
    views.push_back({c.min_ways, std::span<const double>(c.energy),
                     c.min_shares, c.num_shares});
  }
  return views;
}

double attained_energy(const std::vector<EnergyCurve>& curves,
                       const GlobalOptResult& r) {
  double total = 0.0;
  for (std::size_t c = 0; c < curves.size(); ++c) {
    const EnergyCurve& cu = curves[c];
    const int w = r.ways[c];
    const int b = r.shares[c];
    EXPECT_GE(w, cu.min_ways);
    EXPECT_LE(w, cu.max_ways());
    EXPECT_GE(b, cu.min_shares);
    EXPECT_LE(b, cu.max_shares());
    total += cu.energy[static_cast<std::size_t>(
        (b - cu.min_shares) * cu.num_ways() + (w - cu.min_ways))];
  }
  return total;
}

bool avx2_available() {
  return simd::avx2_compiled() && simd::avx2_supported();
}

// ---------------------------------------------------------------------------
// 1. Degeneracy: single-share surfaces through the 2-D entry points must be
//    the 1-D optimizer, bit for bit, at every dispatch level.

class GlobalOpt2dDegenerate : public ::testing::TestWithParam<int> {};

TEST_P(GlobalOpt2dDegenerate, SingleShareRowMatchesOneDOracleBitwise) {
  const int cores = GetParam();
  Rng rng(static_cast<std::uint64_t>(cores) * 60013 + 1);
  for (int trial = 0; trial < 150; ++trial) {
    std::vector<EnergyCurve> curves;
    int share_budget = 0;
    for (int c = 0; c < cores; ++c) {
      // Odd lengths stress the per-row vector seams as in the 1-D suite.
      const int len = 3 + static_cast<int>(rng.uniform_u64(13));
      EnergyCurve cu = random_surface(rng, len, /*num_shares=*/1, 0.25);
      share_budget += cu.min_shares;
      curves.push_back(std::move(cu));
    }
    int sum_lo = 0;
    int sum_hi = 0;
    for (const EnergyCurve& c : curves) {
      sum_lo += c.min_ways;
      sum_hi += c.max_ways();
    }
    const int budget =
        sum_lo - 1 + static_cast<int>(rng.uniform_u64(
                         static_cast<std::uint64_t>(sum_hi - sum_lo + 3)));

    const GlobalOptResult oracle = tree_optimize(curves, budget);
    const std::vector<EnergyCurveView> views = views_of(curves);
    for (const simd::Level level : {simd::Level::Scalar, simd::Level::Avx2}) {
      if (level == simd::Level::Avx2 && !avx2_available()) continue;
      GlobalOptWorkspace ws;
      GlobalOptResult out;
      GlobalOptimizer::optimize_into(views, budget, share_budget, ws, out,
                                     nullptr, level);
      const std::string what = "cores=" + std::to_string(cores) +
                               " trial=" + std::to_string(trial) +
                               " level=" + simd::level_name(level);
      ASSERT_EQ(out.feasible, oracle.feasible) << what;
      if (!out.feasible) continue;
      EXPECT_EQ(out.total_energy, oracle.total_energy) << what;
      EXPECT_EQ(out.ways, oracle.ways) << what;
      // Single-row surfaces admit exactly one share split.
      for (std::size_t c = 0; c < curves.size(); ++c) {
        EXPECT_EQ(out.shares[c], curves[c].min_shares) << what;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(CoreCounts, GlobalOpt2dDegenerate,
                         ::testing::Values(2, 4, 8, 16));

// ---------------------------------------------------------------------------
// 2. Correctness: exhaustive search over (ways, shares) splits.

TEST(GlobalOpt2d, TwoCoreSurfaceConvolutionPicksMinimum) {
  // Core 0: 2 ways x 2 shares starting at (w=2, b=1); core 1 likewise.
  // Budgets W=5, B=3 admit (w0,b0,w1,b1) in {(2,1,3,2), (2,2,3,1),
  // (3,1,2,2), (3,2,2,1)}: energies 4+30=34, 20+3=23, 10+40=50, 2+1=3.
  EnergyCurve a;
  a.min_ways = 2;
  a.min_shares = 1;
  a.num_shares = 2;
  a.energy = {4.0, 10.0,   // b=1: w=2,3
              20.0, 2.0};  // b=2: w=2,3
  EnergyCurve b;
  b.min_ways = 2;
  b.min_shares = 1;
  b.num_shares = 2;
  b.energy = {1.0, 3.0,     // b=1: w=2,3
              40.0, 30.0};  // b=2: w=2,3
  const std::vector<EnergyCurve> curves = {a, b};
  const auto r = GlobalOptimizer::optimize(curves, 5, 3);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.total_energy, 3.0);
  EXPECT_EQ(r.ways, (std::vector<int>{3, 2}));
  EXPECT_EQ(r.shares, (std::vector<int>{2, 1}));
}

TEST(GlobalOpt2d, ShareBudgetOutsideReachIsInfeasible) {
  EnergyCurve a;
  a.min_ways = 2;
  a.min_shares = 1;
  a.num_shares = 2;
  a.energy = {1.0, 1.0, 1.0, 1.0};
  const std::vector<EnergyCurve> curves = {a, a};
  EXPECT_TRUE(GlobalOptimizer::optimize(curves, 5, 2).feasible);
  EXPECT_TRUE(GlobalOptimizer::optimize(curves, 5, 4).feasible);
  EXPECT_FALSE(GlobalOptimizer::optimize(curves, 5, 1).feasible);  // min is 2
  EXPECT_FALSE(GlobalOptimizer::optimize(curves, 5, 5).feasible);  // max is 4
}

class GlobalOpt2dVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(GlobalOpt2dVsBruteForce, RandomSurfacesMatchExhaustiveSearch) {
  const int cores = GetParam();
  Rng rng(static_cast<std::uint64_t>(cores) * 15485863 + 3);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<EnergyCurve> curves;
    for (int c = 0; c < cores; ++c) {
      const int num_ways = 3 + static_cast<int>(rng.uniform_u64(4));
      const int num_shares = 1 + static_cast<int>(rng.uniform_u64(3));
      curves.push_back(random_surface(rng, num_ways, num_shares, 0.2));
    }
    int w_lo = 0, w_hi = 0, b_lo = 0, b_hi = 0;
    for (const EnergyCurve& c : curves) {
      w_lo += c.min_ways;
      w_hi += c.max_ways();
      b_lo += c.min_shares;
      b_hi += c.max_shares();
    }
    // Straddle both budget ranges so infeasible outcomes are exercised.
    const int W =
        w_lo - 1 + static_cast<int>(rng.uniform_u64(
                       static_cast<std::uint64_t>(w_hi - w_lo + 3)));
    const int B =
        b_lo - 1 + static_cast<int>(rng.uniform_u64(
                       static_cast<std::uint64_t>(b_hi - b_lo + 3)));

    const auto fast = GlobalOptimizer::optimize(curves, W, B);
    const auto slow = GlobalOptimizer::brute_force(curves, W, B);
    const std::string what = "cores=" + std::to_string(cores) +
                             " trial=" + std::to_string(trial) +
                             " W=" + std::to_string(W) +
                             " B=" + std::to_string(B);
    ASSERT_EQ(fast.feasible, slow.feasible) << what;
    if (!fast.feasible) continue;
    EXPECT_NEAR(fast.total_energy, slow.total_energy, 1e-9) << what;
    // The reported allocation exhausts both budgets and attains the energy.
    int sum_w = 0, sum_b = 0;
    for (std::size_t c = 0; c < curves.size(); ++c) {
      sum_w += fast.ways[c];
      sum_b += fast.shares[c];
    }
    EXPECT_EQ(sum_w, W) << what;
    EXPECT_EQ(sum_b, B) << what;
    EXPECT_NEAR(attained_energy(curves, fast), fast.total_energy, 1e-9) << what;
  }
}

INSTANTIATE_TEST_SUITE_P(CoreCounts, GlobalOpt2dVsBruteForce,
                         ::testing::Values(2, 3, 4));

// ---------------------------------------------------------------------------
// 3. Dispatch: AVX2 vs scalar, bit for bit, on genuinely 2-D surfaces.

class GlobalOpt2dSimdEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(GlobalOpt2dSimdEquivalence, RandomSurfacesMatchBitwiseAcrossLevels) {
  if (!avx2_available()) GTEST_SKIP() << "AVX2 kernel unavailable";
  const int cores = GetParam();
  Rng rng(static_cast<std::uint64_t>(cores) * 2097593 + 13);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<EnergyCurve> curves;
    for (int c = 0; c < cores; ++c) {
      // Odd w-row lengths leave scalar tails inside EVERY b-row; high
      // infeasibility density produces empty rows (feas_row_first_ == -1).
      const int num_ways = 3 + static_cast<int>(rng.uniform_u64(11));
      const int num_shares = 1 + static_cast<int>(rng.uniform_u64(4));
      curves.push_back(random_surface(rng, num_ways, num_shares,
                                      trial % 3 == 0 ? 0.6 : 0.2));
    }
    int w_lo = 0, w_hi = 0, b_lo = 0, b_hi = 0;
    for (const EnergyCurve& c : curves) {
      w_lo += c.min_ways;
      w_hi += c.max_ways();
      b_lo += c.min_shares;
      b_hi += c.max_shares();
    }
    const int W =
        w_lo - 1 + static_cast<int>(rng.uniform_u64(
                       static_cast<std::uint64_t>(w_hi - w_lo + 3)));
    const int B =
        b_lo - 1 + static_cast<int>(rng.uniform_u64(
                       static_cast<std::uint64_t>(b_hi - b_lo + 3)));

    const std::vector<EnergyCurveView> views = views_of(curves);
    GlobalOptWorkspace scalar_ws, avx2_ws;
    GlobalOptResult scalar_out, avx2_out;
    std::uint64_t scalar_ops = 0, avx2_ops = 0;
    GlobalOptimizer::optimize_into(views, W, B, scalar_ws, scalar_out,
                                   &scalar_ops, simd::Level::Scalar);
    GlobalOptimizer::optimize_into(views, W, B, avx2_ws, avx2_out, &avx2_ops,
                                   simd::Level::Avx2);
    const std::string what = "cores=" + std::to_string(cores) +
                             " trial=" + std::to_string(trial);
    ASSERT_EQ(scalar_out.feasible, avx2_out.feasible) << what;
    EXPECT_EQ(scalar_out.total_energy, avx2_out.total_energy) << what;
    EXPECT_EQ(scalar_out.ways, avx2_out.ways) << what;
    EXPECT_EQ(scalar_out.shares, avx2_out.shares) << what;
    EXPECT_EQ(scalar_ops, avx2_ops) << what;
  }
}

INSTANTIATE_TEST_SUITE_P(CoreCounts, GlobalOpt2dSimdEquivalence,
                         ::testing::Values(2, 4, 8, 16));

// ---------------------------------------------------------------------------
// Op accounting on 2-D surfaces: one op is one feasible-pair DP step, now a
// ((w_a, b_a), (w_b, b_b)) cell pair. Hand-counted: a has 3 feasible cells,
// b has 2 - six steps, independent of dispatch level.
TEST(GlobalOpt2d, OpsCountIsOneFeasibleCellPairPerDpStep) {
  EnergyCurve a;
  a.min_ways = 2;
  a.min_shares = 1;
  a.num_shares = 2;
  a.energy = {kInf, 5.0, 1.0, kInf};  // feasible: (w=3,b=1), (w=2,b=2)
  EnergyCurve b;
  b.min_ways = 2;
  b.min_shares = 1;
  b.num_shares = 2;
  b.energy = {2.0, kInf, kInf, 4.0};  // feasible: (w=2,b=1), (w=3,b=2)
  // Plus one single-cell curve: (2+2) combined-feasible totals x 1 = adds 4.
  EnergyCurve c;
  c.min_ways = 1;
  c.energy = {3.0};
  const std::vector<EnergyCurve> curves = {a, b, c};
  std::uint64_t ops = 0;
  const auto r = GlobalOptimizer::optimize(curves, 6, 3, &ops);
  EXPECT_EQ(ops, 2u * 2u + 4u * 1u);
  ASSERT_TRUE(r.feasible);
}

// The ways-only wrapper must be the degenerate 2-D problem: same result,
// same ops, shares pinned at each curve's minimum.
TEST(GlobalOpt2d, WaysOnlyWrapperIsDegenerateTwoD) {
  Rng rng(991);
  for (int trial = 0; trial < 50; ++trial) {
    const int cores = 2 + static_cast<int>(rng.uniform_u64(5));
    std::vector<EnergyCurve> curves;
    int share_budget = 0;
    for (int c = 0; c < cores; ++c) {
      const int len = 3 + static_cast<int>(rng.uniform_u64(9));
      EnergyCurve cu = random_surface(rng, len, 1, 0.2);
      share_budget += cu.min_shares;
      curves.push_back(std::move(cu));
    }
    int sum_lo = 0;
    for (const EnergyCurve& c : curves) sum_lo += c.min_ways;
    const int budget = sum_lo + trial % 5;

    std::uint64_t ops_1d = 0, ops_2d = 0;
    const auto r1 = GlobalOptimizer::optimize(curves, budget, &ops_1d);
    const auto r2 = GlobalOptimizer::optimize(curves, budget, share_budget,
                                              &ops_2d);
    ASSERT_EQ(r1.feasible, r2.feasible) << "trial " << trial;
    EXPECT_EQ(ops_1d, ops_2d) << "trial " << trial;
    if (r1.feasible) {
      EXPECT_EQ(r1.total_energy, r2.total_energy) << "trial " << trial;
      EXPECT_EQ(r1.ways, r2.ways) << "trial " << trial;
      EXPECT_EQ(r1.shares, r2.shares) << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace qosrm::rm
