// QOSRM_SIMD override resolution. active_level() caches its answer in a
// function-local static, so these tests drive resolve_level() directly with
// explicit override strings instead of mutating the environment.
#include "common/simd.hh"

#include <gtest/gtest.h>

namespace qosrm::simd {
namespace {

TEST(SimdResolve, UnsetAndAutoKeepBuildPolicy) {
  const Level policy = resolve_level(nullptr);
  EXPECT_EQ(resolve_level(""), policy);
  EXPECT_EQ(resolve_level("auto"), policy);
}

TEST(SimdResolve, ScalarAlwaysAccepted) {
  EXPECT_EQ(resolve_level("scalar"), Level::Scalar);
}

TEST(SimdResolve, Avx2AcceptedWhenAvailable) {
  if (!(avx2_compiled() && avx2_supported())) {
    GTEST_SKIP() << "AVX2 path not available on this build/CPU";
  }
  EXPECT_EQ(resolve_level("avx2"), Level::Avx2);
}

TEST(SimdResolve, LevelNames) {
  EXPECT_STREQ(level_name(Level::Scalar), "scalar");
  EXPECT_STREQ(level_name(Level::Avx2), "avx2");
}

using SimdResolveDeathTest = ::testing::Test;

TEST(SimdResolveDeathTest, UnknownValueDiesNamingValueAndAcceptedSet) {
  EXPECT_DEATH((void)resolve_level("avx512"),
               "unrecognized QOSRM_SIMD value \"avx512\".*"
               "auto\\|avx2\\|scalar");
}

TEST(SimdResolveDeathTest, CaseMattersAndWhitespaceIsNotTrimmed) {
  EXPECT_DEATH((void)resolve_level("AVX2"), "\"AVX2\"");
  EXPECT_DEATH((void)resolve_level(" scalar"), "\" scalar\"");
}

TEST(SimdResolveDeathTest, ForcedAvx2DiesWhenUnavailable) {
  if (avx2_compiled() && avx2_supported()) {
    GTEST_SKIP() << "AVX2 path available; forced avx2 is legal here";
  }
  EXPECT_DEATH((void)resolve_level("avx2"), "not.*available");
}

}  // namespace
}  // namespace qosrm::simd
