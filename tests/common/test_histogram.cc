#include "common/histogram.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

namespace qosrm {
namespace {

TEST(Histogram, BinsPartitionRange) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_EQ(h.bin_count(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(1), 0.375);
}

TEST(Histogram, AddFallsInCorrectBin) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.1);
  h.add(0.3);
  h.add(0.3);
  h.add(0.9);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(1), 2.0);
  EXPECT_DOUBLE_EQ(h.count(2), 0.0);
  EXPECT_DOUBLE_EQ(h.count(3), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
}

TEST(Histogram, OutOfRangeClampsToEdgeBins) {
  Histogram h(0.0, 1.0, 2);
  h.add(-5.0);
  h.add(2.0);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(1), 1.0);
}

TEST(Histogram, UpperEdgeGoesToLastBin) {
  Histogram h(0.0, 1.0, 4);
  h.add(1.0);  // hi is exclusive; clamps into the last bin
  EXPECT_DOUBLE_EQ(h.count(3), 1.0);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(0.0, 10.0, 2);
  h.add(1.0, 0.25);
  h.add(6.0, 0.75);
  EXPECT_DOUBLE_EQ(h.count(0), 0.25);
  EXPECT_DOUBLE_EQ(h.count(1), 0.75);
  EXPECT_DOUBLE_EQ(h.total(), 1.0);
}

TEST(Histogram, NormalizedPeaksAtOne) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.1);
  h.add(0.1);
  h.add(0.6);
  const std::vector<double> n = h.normalized();
  EXPECT_DOUBLE_EQ(n[0], 1.0);
  EXPECT_DOUBLE_EQ(n[2], 0.5);
}

TEST(Histogram, NormalizedByExternalMax) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.1);
  const std::vector<double> n = h.normalized_by(4.0);
  EXPECT_DOUBLE_EQ(n[0], 0.25);
}

TEST(Histogram, EmptyNormalizedStaysZero) {
  Histogram h(0.0, 1.0, 3);
  for (const double v : h.normalized()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Histogram, AsciiContainsEveryBin) {
  Histogram h(0.0, 1.0, 3);
  h.add(0.5);
  const std::string s = h.ascii();
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 3);
}

TEST(Histogram, NonFiniteSamplesAreDroppedNotBinned) {
  // NaN fails both range checks, and the float->size_t cast of a NaN index
  // is undefined; infinities would silently masquerade as edge-bin mass.
  Histogram h(0.0, 1.0, 4);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.dropped(), 3u);
  EXPECT_DOUBLE_EQ(h.total(), 0.0);
  for (std::size_t i = 0; i < h.bin_count(); ++i) {
    EXPECT_DOUBLE_EQ(h.count(i), 0.0) << i;
  }
}

TEST(Histogram, NonFiniteWeightIsDropped) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.5, std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.dropped(), 1u);
  EXPECT_DOUBLE_EQ(h.total(), 0.0);
  h.add(0.5, 2.0);  // finite samples still land normally
  EXPECT_DOUBLE_EQ(h.total(), 2.0);
}

TEST(Histogram, QuantileInterpolatesWithinBins) {
  Histogram h(0.0, 1.0, 4);  // bin width 0.25
  for (int i = 0; i < 4; ++i) h.add(0.1);   // 4 samples in [0, 0.25)
  for (int i = 0; i < 4; ++i) h.add(0.6);   // 4 samples in [0.5, 0.75)
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.25);  // all of bin 0 = half the mass
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 0.125);  // half of bin 0
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 0.625);  // half of bin 2
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));  // clamped
  EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));   // clamped
}

TEST(Histogram, QuantileOfEmptyHistogramIsRangeMinimum) {
  Histogram h(2.0, 5.0, 3);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
}

// ---- pinned boundary semantics (kept mass; q=0 -> first nonzero bin's lower
// ---- edge; q=1 -> hi), regression tests for the quantile() boundary fix ----

TEST(Histogram, QuantileZeroIsFirstNonzeroBinLowerEdge) {
  Histogram h(0.0, 1.0, 4);  // bin width 0.25
  h.add(0.6);                // bins 0 and 1 stay empty
  h.add(0.9);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.5);  // lower edge of bin 2, not lo
}

TEST(Histogram, QuantileOneIsRangeMaximumDespiteEmptyTailBins) {
  // Pre-fix the scan returned the upper edge of the last NONZERO bin (0.25
  // here), under-reporting the worst case whenever the tail bins are empty.
  Histogram h(0.0, 1.0, 4);
  h.add(0.1);
  h.add(0.2);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.0);
}

TEST(Histogram, QuantilesAreOverKeptMassOnly) {
  // Dropped (non-finite) samples carry no weight: the quantiles of {0.1 x4,
  // 0.6 x4} must not move when NaNs are interleaved.
  Histogram kept(0.0, 1.0, 4);
  Histogram noisy(0.0, 1.0, 4);
  for (int i = 0; i < 4; ++i) {
    kept.add(0.1);
    kept.add(0.6);
    noisy.add(0.1);
    noisy.add(std::numeric_limits<double>::quiet_NaN());
    noisy.add(0.6);
    noisy.add(std::numeric_limits<double>::infinity());
  }
  EXPECT_EQ(noisy.dropped(), 8u);
  for (const double q : {0.0, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    EXPECT_DOUBLE_EQ(noisy.quantile(q), kept.quantile(q)) << q;
  }
}

TEST(Histogram, ResetClearsCountsAndDropped) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.5);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.reset();
  EXPECT_DOUBLE_EQ(h.total(), 0.0);
  EXPECT_EQ(h.dropped(), 0u);
  EXPECT_DOUBLE_EQ(h.count(0), 0.0);
  EXPECT_DOUBLE_EQ(h.count(1), 0.0);
  h.add(0.1);  // layout survives the reset
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
}

}  // namespace
}  // namespace qosrm
