#include "common/histogram.hh"

#include <gtest/gtest.h>

namespace qosrm {
namespace {

TEST(Histogram, BinsPartitionRange) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_EQ(h.bin_count(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(1), 0.375);
}

TEST(Histogram, AddFallsInCorrectBin) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.1);
  h.add(0.3);
  h.add(0.3);
  h.add(0.9);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(1), 2.0);
  EXPECT_DOUBLE_EQ(h.count(2), 0.0);
  EXPECT_DOUBLE_EQ(h.count(3), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
}

TEST(Histogram, OutOfRangeClampsToEdgeBins) {
  Histogram h(0.0, 1.0, 2);
  h.add(-5.0);
  h.add(2.0);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(1), 1.0);
}

TEST(Histogram, UpperEdgeGoesToLastBin) {
  Histogram h(0.0, 1.0, 4);
  h.add(1.0);  // hi is exclusive; clamps into the last bin
  EXPECT_DOUBLE_EQ(h.count(3), 1.0);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(0.0, 10.0, 2);
  h.add(1.0, 0.25);
  h.add(6.0, 0.75);
  EXPECT_DOUBLE_EQ(h.count(0), 0.25);
  EXPECT_DOUBLE_EQ(h.count(1), 0.75);
  EXPECT_DOUBLE_EQ(h.total(), 1.0);
}

TEST(Histogram, NormalizedPeaksAtOne) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.1);
  h.add(0.1);
  h.add(0.6);
  const std::vector<double> n = h.normalized();
  EXPECT_DOUBLE_EQ(n[0], 1.0);
  EXPECT_DOUBLE_EQ(n[2], 0.5);
}

TEST(Histogram, NormalizedByExternalMax) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.1);
  const std::vector<double> n = h.normalized_by(4.0);
  EXPECT_DOUBLE_EQ(n[0], 0.25);
}

TEST(Histogram, EmptyNormalizedStaysZero) {
  Histogram h(0.0, 1.0, 3);
  for (const double v : h.normalized()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Histogram, AsciiContainsEveryBin) {
  Histogram h(0.0, 1.0, 3);
  h.add(0.5);
  const std::string s = h.ascii();
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 3);
}

}  // namespace
}  // namespace qosrm
