#include "common/file_util.hh"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

namespace qosrm {
namespace {

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(FileUtil, AtomicTmpPathIsPidUniqueSibling) {
  const std::string tmp = atomic_tmp_path("/some/dir/file.csv");
  EXPECT_EQ(tmp.rfind("/some/dir/file.csv.tmp.", 0), 0u);
}

TEST(FileUtil, WriteFileAtomicRoundTrips) {
  const std::string path = ::testing::TempDir() + "/file_util_roundtrip.txt";
  std::remove(path.c_str());
  std::string error;
  const std::string content = std::string("line one\nline two\n") +
                              std::string(1, '\0') + "binary tail";
  ASSERT_TRUE(write_file_atomic(path, content, &error)) << error;
  EXPECT_EQ(read_all(path), content);
  // No temp sibling left behind.
  std::ifstream tmp(atomic_tmp_path(path));
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(FileUtil, WriteFileAtomicReplacesExistingContent) {
  const std::string path = ::testing::TempDir() + "/file_util_replace.txt";
  std::string error;
  ASSERT_TRUE(write_file_atomic(path, "old", &error)) << error;
  ASSERT_TRUE(write_file_atomic(path, "new", &error)) << error;
  EXPECT_EQ(read_all(path), "new");
  std::remove(path.c_str());
}

TEST(FileUtil, FailedWriteReportsErrnoDetailAndTouchesNothing) {
  // An unwritable destination must fail with the OS reason in the message
  // (the fd-based writer surfaces errno; the old ofstream writer could only
  // say "cannot open") and must not create anything at the target path.
  const std::string path =
      ::testing::TempDir() + "/no_such_dir_qosrm/report.json";
  std::string error;
  EXPECT_FALSE(write_file_atomic(path, "content", &error));
  EXPECT_NE(error.find(path), std::string::npos) << error;
  EXPECT_NE(error.find(std::strerror(ENOENT)), std::string::npos) << error;
  std::ifstream target(path);
  EXPECT_FALSE(target.good());
}

TEST(FileUtil, ProbeDoesNotTouchTarget) {
  const std::string path = ::testing::TempDir() + "/file_util_probe.txt";
  std::string error;
  ASSERT_TRUE(write_file_atomic(path, "keep me", &error)) << error;
  ASSERT_TRUE(probe_writable_atomic(path, &error)) << error;
  EXPECT_EQ(read_all(path), "keep me");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace qosrm
