#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/csv.hh"
#include "common/str.hh"
#include "common/table.hh"

namespace qosrm {
namespace {

TEST(AsciiTable, AlignsColumns) {
  AsciiTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2"});
  const std::string s = t.str();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
  // Every row has the same width.
  std::stringstream ss(s);
  std::string line;
  std::size_t width = 0;
  while (std::getline(ss, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(AsciiTable, ShortRowsArePadded) {
  AsciiTable t({"a", "b", "c"});
  t.add_row({"only-one"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_NE(t.str().find("only-one"), std::string::npos);
}

TEST(AsciiTable, NumberFormatting) {
  EXPECT_EQ(AsciiTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(AsciiTable::num(2.0, 0), "2");
  EXPECT_EQ(AsciiTable::pct(0.1234, 1), "12.3%");
  EXPECT_EQ(AsciiTable::pct(-0.05, 1), "-5.0%");
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/qosrm_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.add_row({"1", "2"});
    csv.add_row({"x,y", "quote\"inside"});
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "a,b");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "1,2");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "\"x,y\",\"quote\"\"inside\"");
  std::remove(path.c_str());
}

TEST(Csv, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/foo.csv", {"a"}), std::runtime_error);
}

TEST(Csv, TargetUntouchedUntilCloseThenReplacedAtomically) {
  const std::string path = ::testing::TempDir() + "/qosrm_atomic.csv";
  {
    std::ofstream old(path);
    old << "old content\n";
  }
  {
    CsvWriter csv(path, {"a"});
    csv.add_row({"1"});
    // Not committed yet: a reader (or a crash) at this point sees the OLD
    // complete file, never a truncated half-written one.
    std::ifstream in(path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "old content");
    csv.close();
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "a");
  std::remove(path.c_str());
}

TEST(Csv, PartialResultIsAbandonedWhenAnExceptionUnwinds) {
  const std::string path = ::testing::TempDir() + "/qosrm_abandoned.csv";
  std::remove(path.c_str());
  try {
    CsvWriter csv(path, {"a"});
    csv.add_row({"partial"});
    throw std::runtime_error("run failed mid-sweep");
  } catch (const std::runtime_error&) {
  }
  // The failed run published nothing - no decoy CSV, no temp leftovers.
  std::ifstream in(path);
  EXPECT_FALSE(in.good());
  const std::string tmp_prefix = path + ".tmp.";
  for (const auto& entry :
       std::filesystem::directory_iterator(::testing::TempDir())) {
    EXPECT_NE(entry.path().string().rfind(tmp_prefix, 0), 0u)
        << "temp file left behind: " << entry.path();
  }
}

TEST(Csv, AbandonPublishesNothing) {
  const std::string path = ::testing::TempDir() + "/qosrm_abandon_call.csv";
  std::remove(path.c_str());
  {
    CsvWriter csv(path, {"a"});
    csv.add_row({"1"});
    csv.abandon();
    csv.close();  // no-op after abandon
  }
  std::ifstream in(path);
  EXPECT_FALSE(in.good());
}

TEST(Csv, CloseIsIdempotent) {
  const std::string path = ::testing::TempDir() + "/qosrm_idempotent.csv";
  CsvWriter csv(path, {"a"});
  csv.close();
  csv.close();  // second close (and the destructor) must be a no-op
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "a");
  std::remove(path.c_str());
}

TEST(Str, FormatBasic) {
  EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(format("%.2f", 1.005), "1.00");
}

TEST(Str, Padding) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcdef", 4), "abcdef");
}

}  // namespace
}  // namespace qosrm
