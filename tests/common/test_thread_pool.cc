#include "common/thread_pool.hh"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace qosrm {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, SizeReflectsWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, DefaultSizeIsAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, hits.size(),
               [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  parallel_for(pool, 5, 5, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, NonZeroBeginRespected) {
  ThreadPool pool(2);
  std::atomic<std::size_t> sum{0};
  parallel_for(pool, 10, 20, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), std::size_t{145});  // 10+11+...+19
}

TEST(ParallelFor, ConvenienceOverloadWorks) {
  std::vector<std::atomic<int>> hits(64);
  parallel_for(0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ReusablePoolAcrossLoops) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 5; ++round) {
    parallel_for(pool, 0, 50, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 250);
}

}  // namespace
}  // namespace qosrm
