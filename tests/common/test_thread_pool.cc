#include "common/thread_pool.hh"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "common/once_cache.hh"

namespace qosrm {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, SizeReflectsWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, DefaultSizeIsAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, WaitIdleCoversNestedSubmits) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&pool, &done] {
      done.fetch_add(1);
      pool.submit([&pool, &done] {
        done.fetch_add(1);
        pool.submit([&done] { done.fetch_add(1); });
      });
    });
  }
  // wait_idle must not return while nested tasks are still queued or running.
  pool.wait_idle();
  EXPECT_EQ(done.load(), 48);
}

TEST(ThreadPool, ZeroThreadsFallsBackToHardwareConcurrency) {
  ThreadPool pool(0);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  EXPECT_EQ(pool.size(), static_cast<std::size_t>(hw));

  std::atomic<int> counter{0};
  for (int i = 0; i < 64; ++i) pool.submit([&] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 64);
}

TEST(OnceCache, ComputesEachKeyExactlyOnceUnderContention) {
  OnceCache<int, int> cache;
  std::atomic<int> computes{0};
  ThreadPool pool(8);
  // 1000 lookups race over 10 keys; the sleep widens the window in which
  // several threads hold the same not-yet-computed entry.
  parallel_for(pool, 0, 1000, [&](std::size_t i) {
    const int key = static_cast<int>(i % 10);
    const int& value = cache.get_or_compute(key, [&] {
      computes.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      return key * 7;
    });
    EXPECT_EQ(value, key * 7);
  });
  EXPECT_EQ(computes.load(), 10);
  EXPECT_EQ(cache.computations(), 10u);
  EXPECT_EQ(cache.size(), 10u);
}

TEST(OnceCache, KeepsFirstValueAndStableReference) {
  OnceCache<std::string, std::vector<int>> cache;
  const std::vector<int>& first =
      cache.get_or_compute("k", [] { return std::vector<int>{1, 2, 3}; });
  // Grow the cache, then ask again with a different compute fn: the original
  // value and address must survive (callers hold references across inserts).
  for (int i = 0; i < 100; ++i) {
    cache.get_or_compute(std::to_string(i), [&] { return std::vector<int>{i}; });
  }
  const std::vector<int>& again =
      cache.get_or_compute("k", [] { return std::vector<int>{9}; });
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(first, (std::vector<int>{1, 2, 3}));
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, hits.size(),
               [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  parallel_for(pool, 5, 5, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, NonZeroBeginRespected) {
  ThreadPool pool(2);
  std::atomic<std::size_t> sum{0};
  parallel_for(pool, 10, 20, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), std::size_t{145});  // 10+11+...+19
}

TEST(ParallelFor, ConvenienceOverloadWorks) {
  std::vector<std::atomic<int>> hits(64);
  parallel_for(0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ReusablePoolAcrossLoops) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 5; ++round) {
    parallel_for(pool, 0, 50, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 250);
}

}  // namespace
}  // namespace qosrm
