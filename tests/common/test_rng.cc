#include "common/rng.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>
#include <vector>

namespace qosrm {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double lo = 1.0, hi = 0.0, sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(-2.5, 7.5);
    ASSERT_GE(x, -2.5);
    ASSERT_LT(x, 7.5);
  }
}

TEST(Rng, UniformU64Unbiased) {
  Rng rng(11);
  std::array<int, 3> counts{};
  constexpr int kN = 90000;
  for (int i = 0; i < kN; ++i) ++counts[rng.uniform_u64(3)];
  for (const int c : counts) EXPECT_NEAR(c, kN / 3, kN / 60);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, GeometricMeanMatches) {
  Rng rng(19);
  const double p = 0.25;
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(rng.geometric(p));
  EXPECT_NEAR(sum / kN, (1.0 - p) / p, 0.05);
}

TEST(Rng, GeometricWithCertaintyIsZero) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Rng, WeightedChoiceFollowsWeights) {
  Rng rng(29);
  const std::vector<double> w = {1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  constexpr int kN = 80000;
  for (int i = 0; i < kN; ++i) ++counts[rng.weighted_choice(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / kN, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kN, 0.75, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += parent.next() == child.next();
  EXPECT_LT(equal, 5);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  shuffle(v, rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, ShuffleDeterministic) {
  std::vector<int> a = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> b = a;
  Rng r1(41), r2(41);
  shuffle(a, r1);
  shuffle(b, r2);
  EXPECT_EQ(a, b);
}

TEST(Rng, SplitMix64KnownSequenceIsStable) {
  // Regression anchor: the suite's trace seeds derive from splitmix64, so
  // its output must never change across refactors.
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  std::uint64_t state2 = 0;
  EXPECT_EQ(first, splitmix64(state2));
  EXPECT_NE(splitmix64(state), first);
}

}  // namespace
}  // namespace qosrm
