// Tail-quantile stability of Histogram under heavy-tailed input - the exact
// regime the dense-load service sweeps put it in: the p99 of Eq. 6 violation
// magnitudes drives knee detection (rmsim/report.hh), so a histogram-induced
// p99 error larger than one bin width would move knees between runs.
//
// Oracle: the exact quantile BRACKET (the two order statistics around the
// q-mass position). Histogram quantiles interpolate inside one fixed-width
// bin, so the reconstruction must land in the bracket widened by one bin
// width on each side.
#include "common/histogram.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace qosrm {
namespace {

/// Exact quantile bracket: any value in [lo, hi] has exactly a fraction q
/// of the sample mass below it, so a histogram reconstruction is correct
/// when it lands inside the bracket (widened by its bin resolution). A
/// single order statistic would be too strict an oracle: in a heavy tail
/// the two order statistics around p99 can be MANY bins apart, and every
/// value between them is an equally exact 99th percentile.
struct QuantileBracket {
  double lo = 0.0;
  double hi = 0.0;
};

QuantileBracket exact_quantile_bracket(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size());
  const auto idx = static_cast<std::size_t>(pos);
  QuantileBracket bracket;
  bracket.hi = values[std::min(idx, values.size() - 1)];
  bracket.lo = values[idx > 0 ? idx - 1 : 0];
  return bracket;
}

/// Pareto(x_m = scale, alpha) draw via inverse transform: the canonical
/// heavy-tailed distribution (alpha <= 2 has infinite variance).
double pareto(Rng& rng, double scale, double alpha) {
  // uniform() is in [0, 1); 1-u is in (0, 1], so the pow never divides by 0.
  return scale / std::pow(1.0 - rng.uniform(), 1.0 / alpha);
}

TEST(HistogramTails, P99MatchesExactOracleOnParetoData) {
  // Same layout the service engine uses (ServiceConfig defaults): 4096 bins
  // over [0, 2). Pareto tail mass beyond 2 is clamped into the last bin -
  // exactly what happens to outsized violation magnitudes in a service run.
  const double lo = 0.0, hi = 2.0;
  const std::size_t bins = 4096;
  const double bin_width = (hi - lo) / static_cast<double>(bins);

  Rng rng(20200817);
  for (int rep = 0; rep < 5; ++rep) {
    Histogram hist(lo, hi, bins);
    std::vector<double> values;
    values.reserve(20000);
    for (int i = 0; i < 20000; ++i) {
      // Shift to start at 0 like a violation magnitude; alpha = 1.5 gives an
      // infinite-variance tail, the worst realistic case for a fixed grid.
      const double v = pareto(rng, 0.05, 1.5) - 0.05;
      values.push_back(v);
      hist.add(v);
    }
    for (const double q : {0.50, 0.95, 0.99}) {
      SCOPED_TRACE(q);
      const QuantileBracket exact = exact_quantile_bracket(values, q);
      const double approx = hist.quantile(q);
      if (exact.lo >= hi) {
        // The oracle lies beyond the range: the histogram must saturate at
        // the top edge instead of inventing an in-range value.
        EXPECT_GE(approx, hi - bin_width);
        EXPECT_LE(approx, hi);
      } else {
        // In-range quantiles reconstruct into the exact bracket, to within
        // one bin width of resolution.
        EXPECT_GE(approx, exact.lo - bin_width) << "q=" << q;
        EXPECT_LE(approx, std::min(exact.hi, hi) + bin_width) << "q=" << q;
      }
    }
  }
}

TEST(HistogramTails, P99IsStableUnderSampleOrder) {
  // Quantiles must not depend on insertion order - the service engine feeds
  // violations in simulated-time order, which differs between admission
  // policies even on identical traces.
  Rng rng(7);
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) values.push_back(pareto(rng, 0.02, 1.2));

  Histogram forward(0.0, 2.0, 4096);
  for (const double v : values) forward.add(v);
  Histogram backward(0.0, 2.0, 4096);
  for (auto it = values.rbegin(); it != values.rend(); ++it) backward.add(*it);
  shuffle(values, rng);
  Histogram shuffled(0.0, 2.0, 4096);
  for (const double v : values) shuffled.add(v);

  for (const double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
    EXPECT_EQ(forward.quantile(q), backward.quantile(q)) << q;
    EXPECT_EQ(forward.quantile(q), shuffled.quantile(q)) << q;
  }
}

TEST(HistogramTails, BinCountBoundsTheQuantileResolution) {
  // The documented contract (service.hh hist_bins): quantile resolution is
  // the bin width. The reconstruction error must stay within the bin width
  // at EVERY grid, from coarse to the service default.
  Rng rng(42);
  std::vector<double> values;
  for (int i = 0; i < 10000; ++i) values.push_back(pareto(rng, 0.1, 2.5) - 0.1);
  const QuantileBracket exact = exact_quantile_bracket(values, 0.99);
  ASSERT_LT(exact.hi, 2.0);  // stays in range for alpha = 2.5

  for (const std::size_t bins : {64u, 512u, 4096u}) {
    Histogram hist(0.0, 2.0, bins);
    for (const double v : values) hist.add(v);
    const double bin_width = 2.0 / static_cast<double>(bins);
    const double approx = hist.quantile(0.99);
    EXPECT_GE(approx, exact.lo - bin_width) << bins;
    EXPECT_LE(approx, exact.hi + bin_width) << bins;
  }
}

}  // namespace
}  // namespace qosrm
