#include "common/stats.hh"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"

namespace qosrm {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic example set
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SampleVarianceUsesBesselCorrection) {
  RunningStats s;
  for (const double x : {1.0, 2.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.variance(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 1.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(5);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-10, 10);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(b);  // empty rhs: no change
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.merge(a);  // empty lhs: adopt rhs
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(WeightedStats, MatchesUnweightedWhenUniform) {
  RunningStats plain;
  WeightedStats weighted;
  for (const double x : {1.0, 2.0, 3.0, 10.0}) {
    plain.add(x);
    weighted.add(x, 1.0);
  }
  EXPECT_NEAR(weighted.mean(), plain.mean(), 1e-12);
  EXPECT_NEAR(weighted.variance(), plain.variance(), 1e-12);
}

TEST(WeightedStats, WeightsScaleContribution) {
  WeightedStats s;
  s.add(1.0, 3.0);  // same as adding 1.0 three times
  s.add(4.0, 1.0);
  EXPECT_DOUBLE_EQ(s.mean(), (3.0 * 1.0 + 4.0) / 4.0);
}

TEST(WeightedStats, ZeroWeightIgnored) {
  WeightedStats s;
  s.add(100.0, 0.0);
  EXPECT_EQ(s.total_weight(), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(WeightedStats, VarianceNonNegativeUnderRoundoff) {
  WeightedStats s;
  // Nearly identical large values: E[x^2]-E[x]^2 can go slightly negative
  // numerically; the implementation must clamp.
  for (int i = 0; i < 100; ++i) s.add(1e9 + 0.001 * i, 0.1);
  EXPECT_GE(s.variance(), 0.0);
}

TEST(WeightedStats, MergeMatchesCombined) {
  WeightedStats a, b, all;
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0, 1);
    const double w = rng.uniform(0.1, 2.0);
    all.add(x, w);
    (i % 3 == 0 ? a : b).add(x, w);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_NEAR(a.total_weight(), all.total_weight(), 1e-12);
}

}  // namespace
}  // namespace qosrm
