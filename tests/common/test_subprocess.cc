#include "common/subprocess.hh"

#include <gtest/gtest.h>

#include <csignal>
#include <fstream>
#include <string>

#include <unistd.h>

namespace qosrm {
namespace {

TEST(Subprocess, CleanExitIsSuccess) {
  Subprocess child = Subprocess::spawn({"true"});
  const SubprocessExit exit = child.wait();
  EXPECT_TRUE(exit.success());
  EXPECT_TRUE(exit.exited);
  EXPECT_EQ(exit.exit_code, 0);
  EXPECT_EQ(describe(exit), "exit code 0");
}

TEST(Subprocess, NonZeroExitCodeIsReported) {
  Subprocess child = Subprocess::spawn({"sh", "-c", "exit 3"});
  const SubprocessExit exit = child.wait();
  EXPECT_FALSE(exit.success());
  EXPECT_TRUE(exit.exited);
  EXPECT_EQ(exit.exit_code, 3);
  EXPECT_EQ(describe(exit), "exit code 3");
}

TEST(Subprocess, ExecFailureLooksLikeShellCommandNotFound) {
  Subprocess child =
      Subprocess::spawn({"/definitely/not/an/executable/qosrm-xyz"});
  const SubprocessExit exit = child.wait();
  EXPECT_FALSE(exit.success());
  EXPECT_TRUE(exit.exited);
  EXPECT_EQ(exit.exit_code, 127);
}

TEST(Subprocess, SignalDeathIsReported) {
  Subprocess child = Subprocess::spawn({"sh", "-c", "kill -KILL $$"});
  const SubprocessExit exit = child.wait();
  EXPECT_FALSE(exit.success());
  EXPECT_FALSE(exit.exited);
  EXPECT_EQ(exit.term_signal, SIGKILL);
  EXPECT_NE(describe(exit).find("signal 9"), std::string::npos);
}

TEST(Subprocess, TerminateStopsASleepingChild) {
  Subprocess child = Subprocess::spawn({"sleep", "30"});
  ASSERT_TRUE(child.running());
  child.terminate();
  const SubprocessExit exit = child.wait();
  EXPECT_FALSE(exit.success());
  EXPECT_EQ(exit.term_signal, SIGTERM);
}

TEST(Subprocess, WaitIsIdempotent) {
  Subprocess child = Subprocess::spawn({"sh", "-c", "exit 5"});
  EXPECT_EQ(child.wait().exit_code, 5);
  EXPECT_EQ(child.wait().exit_code, 5);  // second wait: cached, no re-reap
  EXPECT_FALSE(child.running());
  child.terminate();  // no-op after reaping, must not signal a reused pid
}

TEST(Subprocess, ChildActuallyRuns) {
  const std::string path = ::testing::TempDir() + "/subprocess_proof.txt";
  std::remove(path.c_str());
  Subprocess child =
      Subprocess::spawn({"sh", "-c", "echo from-child > " + path});
  EXPECT_TRUE(child.wait().success());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "from-child");
  std::remove(path.c_str());
}

TEST(Subprocess, WaitAnyReturnsInCompletionOrderNotSpawnOrder) {
  // Child 0 sleeps; child 1 exits immediately. wait_any must surface child
  // 1 first even though it was spawned second - this is what lets a
  // supervisor fail fast on whichever shard dies first.
  Subprocess slow = Subprocess::spawn({"sleep", "30"});
  Subprocess fast = Subprocess::spawn({"sh", "-c", "exit 9"});
  std::vector<Subprocess*> children = {&slow, &fast};

  const std::optional<std::size_t> first = Subprocess::wait_any(children);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, 1u);
  EXPECT_EQ(fast.wait().exit_code, 9);  // cached, does not block
  EXPECT_TRUE(slow.running());

  slow.terminate();
  const std::optional<std::size_t> second = Subprocess::wait_any(children);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, 0u);
  EXPECT_EQ(slow.wait().term_signal, SIGTERM);

  // Everything reaped: nothing left to wait for.
  EXPECT_FALSE(Subprocess::wait_any(children).has_value());
}

TEST(Subprocess, WaitAnyStashesExitStatusOfUntrackedChild) {
  // wait_any() waits with waitpid(-1), so it can reap a child that is NOT in
  // its tracked list (here: `untracked` exits first while we wait on `slow`).
  // That status must be stashed - not discarded - so the owning wait() still
  // reports the real exit code instead of an unknown fate.
  Subprocess untracked = Subprocess::spawn({"sh", "-c", "exit 7"});
  Subprocess slow = Subprocess::spawn({"sh", "-c", "sleep 0.3"});
  // Let the untracked child become a zombie so wait_any reaps it first.
  usleep(100 * 1000);

  std::vector<Subprocess*> tracked = {&slow};
  const std::optional<std::size_t> done = Subprocess::wait_any(tracked);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(*done, 0u);
  EXPECT_TRUE(slow.wait().success());

  const SubprocessExit exit = untracked.wait();
  EXPECT_TRUE(exit.spawned);
  EXPECT_TRUE(exit.exited);
  EXPECT_EQ(exit.exit_code, 7);
}

TEST(Subprocess, WaitAnyFindsPreviouslyStashedChildWithoutBlocking) {
  // First wait_any() call tracks only `slow` and stashes `other`'s status;
  // a later wait_any() that DOES track `other` must surface it immediately
  // from the stash (waitpid would fail - the pid is already reaped).
  Subprocess other = Subprocess::spawn({"sh", "-c", "exit 11"});
  Subprocess slow = Subprocess::spawn({"sh", "-c", "sleep 0.3"});
  usleep(100 * 1000);

  std::vector<Subprocess*> tracked_slow = {&slow};
  ASSERT_TRUE(Subprocess::wait_any(tracked_slow).has_value());

  std::vector<Subprocess*> tracked_other = {&other};
  const std::optional<std::size_t> done = Subprocess::wait_any(tracked_other);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(*done, 0u);
  EXPECT_EQ(other.wait().exit_code, 11);
}

TEST(Subprocess, StashedChildReadsAsNotRunningAndIsNeverSignalled) {
  // `other` exits and is reaped into the stray stash by a wait_any() that
  // tracks only `slow`. From that moment the process is gone and its pid may
  // be recycled by the kernel: running() must read false and terminate()
  // must not signal (pre-fix both consulted only pid_/reaped_, so
  // terminate() would SIGTERM whatever process now owns the recycled pid).
  Subprocess other = Subprocess::spawn({"sh", "-c", "exit 23"});
  Subprocess slow = Subprocess::spawn({"sh", "-c", "sleep 0.3"});
  usleep(100 * 1000);

  std::vector<Subprocess*> tracked = {&slow};
  ASSERT_TRUE(Subprocess::wait_any(tracked).has_value());
  ASSERT_TRUE(slow.wait().success());

  EXPECT_FALSE(other.running());
  other.terminate();  // must be a no-op, and must not consume the stash
  EXPECT_EQ(other.wait().exit_code, 23);
}

TEST(Subprocess, EmptyArgvFailsToSpawn) {
  Subprocess child = Subprocess::spawn({});
  EXPECT_FALSE(child.running());
  const SubprocessExit exit = child.wait();
  EXPECT_FALSE(exit.spawned);
  EXPECT_FALSE(exit.success());
  EXPECT_EQ(describe(exit), "failed to spawn");
}

}  // namespace
}  // namespace qosrm
