#include "common/cli.hh"

#include <gtest/gtest.h>

#include <vector>

namespace qosrm {
namespace {

CliArgs parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return CliArgs(static_cast<int>(argv.size()),
                 const_cast<char**>(argv.data()));
}

TEST(Cli, EqualsForm) {
  const CliArgs args = parse({"--cores=8", "--seed=42"});
  EXPECT_EQ(args.get_int("cores", 0), 8);
  EXPECT_EQ(args.get_int("seed", 0), 42);
}

TEST(Cli, SpaceForm) {
  const CliArgs args = parse({"--app", "mcf"});
  EXPECT_EQ(args.get("app", ""), "mcf");
}

TEST(Cli, BareFlagIsTrue) {
  const CliArgs args = parse({"--verbose"});
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_TRUE(args.has("verbose"));
}

TEST(Cli, EmptyEqualsValueIsPresentAndEmpty) {
  // "--alphas=" must reach the grid parsers as an EMPTY string, not as the
  // default: the parsers reject empty lists (a silent fallback would run a
  // sweep labeled with values the user never asked for).
  const CliArgs args = parse({"--alphas="});
  EXPECT_TRUE(args.has("alphas"));
  EXPECT_EQ(args.get("alphas", "0"), "");
}

TEST(Cli, TrailingCommaValueSurvivesVerbatim) {
  // The CLI layer does no list parsing; "1," must round-trip untouched so
  // the grid parsers can reject the stray comma.
  const CliArgs args = parse({"--alphas=1,"});
  EXPECT_EQ(args.get("alphas", ""), "1,");
}

TEST(Cli, FallbacksWhenMissing) {
  const CliArgs args = parse({});
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 2.5), 2.5);
  EXPECT_FALSE(args.get_bool("missing", false));
}

TEST(Cli, DoubleParsing) {
  const CliArgs args = parse({"--alpha=1.25"});
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.0), 1.25);
}

TEST(Cli, BoolVariants) {
  EXPECT_TRUE(parse({"--x=true"}).get_bool("x", false));
  EXPECT_TRUE(parse({"--x=1"}).get_bool("x", false));
  EXPECT_TRUE(parse({"--x=yes"}).get_bool("x", false));
  EXPECT_FALSE(parse({"--x=false"}).get_bool("x", true));
}

TEST(Cli, PositionalArgumentsPreserved) {
  const CliArgs args = parse({"input.txt", "--n=3", "output.txt"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.txt");
  EXPECT_EQ(args.positional()[1], "output.txt");
}

TEST(Cli, FlagFollowedByFlagIsNotConsumedAsValue) {
  const CliArgs args = parse({"--a", "--b=2"});
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_EQ(args.get_int("b", 0), 2);
}

TEST(ShardArgParse, AcceptsValidSpecs) {
  const auto shard = parse_shard_arg("2/8");
  ASSERT_TRUE(shard.has_value());
  EXPECT_EQ(shard->index, 2u);
  EXPECT_EQ(shard->count, 8u);

  const auto solo = parse_shard_arg("0/1");
  ASSERT_TRUE(solo.has_value());
  EXPECT_EQ(solo->index, 0u);
  EXPECT_EQ(solo->count, 1u);

  const auto last = parse_shard_arg("127/128");
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->index, 127u);
}

TEST(ShardArgParse, RejectsMalformedSpecs) {
  // A malformed --shard must be a hard error, never silently shard 0: each
  // of these would otherwise drop or duplicate grid rows.
  for (const char* bad :
       {"", "/", "3", "3/", "/4", "4/4", "5/4", "-1/4", "a/4", "3/b", "1/0",
        "0/0", "1.5/4", "2 /8", "2/8/1", "0x2/8", "9999999999/9999999999"}) {
    EXPECT_FALSE(parse_shard_arg(bad).has_value()) << "'" << bad << "'";
  }
}

}  // namespace
}  // namespace qosrm
