#include "common/cli.hh"

#include <gtest/gtest.h>

#include <vector>

namespace qosrm {
namespace {

CliArgs parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return CliArgs(static_cast<int>(argv.size()),
                 const_cast<char**>(argv.data()));
}

TEST(Cli, EqualsForm) {
  const CliArgs args = parse({"--cores=8", "--seed=42"});
  EXPECT_EQ(args.get_int("cores", 0), 8);
  EXPECT_EQ(args.get_int("seed", 0), 42);
}

TEST(Cli, SpaceForm) {
  const CliArgs args = parse({"--app", "mcf"});
  EXPECT_EQ(args.get("app", ""), "mcf");
}

TEST(Cli, BareFlagIsTrue) {
  const CliArgs args = parse({"--verbose"});
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_TRUE(args.has("verbose"));
}

TEST(Cli, FallbacksWhenMissing) {
  const CliArgs args = parse({});
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 2.5), 2.5);
  EXPECT_FALSE(args.get_bool("missing", false));
}

TEST(Cli, DoubleParsing) {
  const CliArgs args = parse({"--alpha=1.25"});
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.0), 1.25);
}

TEST(Cli, BoolVariants) {
  EXPECT_TRUE(parse({"--x=true"}).get_bool("x", false));
  EXPECT_TRUE(parse({"--x=1"}).get_bool("x", false));
  EXPECT_TRUE(parse({"--x=yes"}).get_bool("x", false));
  EXPECT_FALSE(parse({"--x=false"}).get_bool("x", true));
}

TEST(Cli, PositionalArgumentsPreserved) {
  const CliArgs args = parse({"input.txt", "--n=3", "output.txt"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.txt");
  EXPECT_EQ(args.positional()[1], "output.txt");
}

TEST(Cli, FlagFollowedByFlagIsNotConsumedAsValue) {
  const CliArgs args = parse({"--a", "--b=2"});
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_EQ(args.get_int("b", 0), 2);
}

}  // namespace
}  // namespace qosrm
