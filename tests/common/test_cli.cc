#include "common/cli.hh"

#include <gtest/gtest.h>

#include <vector>

namespace qosrm {
namespace {

CliArgs parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return CliArgs(static_cast<int>(argv.size()),
                 const_cast<char**>(argv.data()));
}

CliArgs parse_with_booleans(std::vector<const char*> argv,
                            std::initializer_list<const char*> booleans) {
  argv.insert(argv.begin(), "prog");
  return CliArgs(static_cast<int>(argv.size()),
                 const_cast<char**>(argv.data()), booleans);
}

TEST(Cli, EqualsForm) {
  const CliArgs args = parse({"--cores=8", "--seed=42"});
  EXPECT_EQ(args.get_int("cores", 0), 8);
  EXPECT_EQ(args.get_int("seed", 0), 42);
}

TEST(Cli, SpaceForm) {
  const CliArgs args = parse({"--app", "mcf"});
  EXPECT_EQ(args.get("app", ""), "mcf");
}

TEST(Cli, BareFlagIsTrue) {
  const CliArgs args = parse({"--verbose"});
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_TRUE(args.has("verbose"));
}

TEST(Cli, EmptyEqualsValueIsPresentAndEmpty) {
  // "--alphas=" must reach the grid parsers as an EMPTY string, not as the
  // default: the parsers reject empty lists (a silent fallback would run a
  // sweep labeled with values the user never asked for).
  const CliArgs args = parse({"--alphas="});
  EXPECT_TRUE(args.has("alphas"));
  EXPECT_EQ(args.get("alphas", "0"), "");
}

TEST(Cli, TrailingCommaValueSurvivesVerbatim) {
  // The CLI layer does no list parsing; "1," must round-trip untouched so
  // the grid parsers can reject the stray comma.
  const CliArgs args = parse({"--alphas=1,"});
  EXPECT_EQ(args.get("alphas", ""), "1,");
}

TEST(Cli, FallbacksWhenMissing) {
  const CliArgs args = parse({});
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 2.5), 2.5);
  EXPECT_FALSE(args.get_bool("missing", false));
}

TEST(Cli, DoubleParsing) {
  const CliArgs args = parse({"--alpha=1.25"});
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.0), 1.25);
}

TEST(Cli, BoolVariants) {
  EXPECT_TRUE(parse({"--x=true"}).get_bool("x", false));
  EXPECT_TRUE(parse({"--x=1"}).get_bool("x", false));
  EXPECT_TRUE(parse({"--x=yes"}).get_bool("x", false));
  EXPECT_FALSE(parse({"--x=false"}).get_bool("x", true));
}

TEST(Cli, PositionalArgumentsPreserved) {
  const CliArgs args = parse({"input.txt", "--n=3", "output.txt"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.txt");
  EXPECT_EQ(args.positional()[1], "output.txt");
}

TEST(Cli, FlagFollowedByFlagIsNotConsumedAsValue) {
  const CliArgs args = parse({"--a", "--b=2"});
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_EQ(args.get_int("b", 0), 2);
}

// ---- strict numeric parsing: a malformed value must abort with a message
// ---- naming the flag, never silently parse as 0 (regression: --workers=abc
// ---- used to run with 0 workers, --load=1.5x dropped the suffix) ----------

TEST(CliDeathTest, MalformedIntAborts) {
  EXPECT_DEATH((void)parse({"--workers=abc"}).get_int("workers", 1),
               "bad --workers value 'abc'");
  EXPECT_DEATH((void)parse({"--workers=12abc"}).get_int("workers", 1),
               "bad --workers value '12abc'");
  EXPECT_DEATH((void)parse({"--workers="}).get_int("workers", 1),
               "bad --workers value ''");
  EXPECT_DEATH((void)parse({"--workers=1.5"}).get_int("workers", 1),
               "bad --workers value '1.5'");
  EXPECT_DEATH((void)parse({"--workers=99999999999999999999"})
                   .get_int("workers", 1),
               "bad --workers value");
  // A bare --workers (value "true") is a usage error for a numeric flag.
  EXPECT_DEATH((void)parse({"--workers"}).get_int("workers", 1),
               "bad --workers value 'true'");
}

TEST(CliDeathTest, MalformedDoubleAborts) {
  EXPECT_DEATH((void)parse({"--load=1.5x"}).get_double("load", 0.0),
               "bad --load value '1.5x'");
  EXPECT_DEATH((void)parse({"--load=abc"}).get_double("load", 0.0),
               "bad --load value 'abc'");
  EXPECT_DEATH((void)parse({"--load="}).get_double("load", 0.0),
               "bad --load value ''");
  EXPECT_DEATH((void)parse({"--load=1e999"}).get_double("load", 0.0),
               "bad --load value '1e999'");
}

TEST(Cli, StrictNumericAcceptsValidValues) {
  EXPECT_EQ(parse({"--n=-3"}).get_int("n", 0), -3);
  EXPECT_EQ(parse({"--n=+7"}).get_int("n", 0), 7);
  EXPECT_DOUBLE_EQ(parse({"--x=-2.5e-3"}).get_double("x", 0.0), -2.5e-3);
  EXPECT_DOUBLE_EQ(parse({"--x=.5"}).get_double("x", 0.0), 0.5);
  // Tiny underflowing magnitudes are not errors: strtod returns the nearest
  // representable value.
  EXPECT_NEAR(parse({"--x=1e-320"}).get_double("x", 0.0), 0.0, 1e-300);
}

// ---- declared boolean flags: a value-less flag must not swallow the next
// ---- positional (regression: `--resume parts/` consumed `parts/`) --------

TEST(Cli, DeclaredBooleanDoesNotSwallowPositional) {
  const CliArgs args =
      parse_with_booleans({"--resume", "parts/"}, {"resume"});
  EXPECT_TRUE(args.get_bool("resume", false));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "parts/");
}

TEST(Cli, DeclaredBooleanFollowedByFlag) {
  const CliArgs args =
      parse_with_booleans({"--resume", "--workers=4"}, {"resume"});
  EXPECT_TRUE(args.get_bool("resume", false));
  EXPECT_EQ(args.get_int("workers", 0), 4);
}

TEST(Cli, DeclaredBooleanEqualsFormStillAssigns) {
  const CliArgs args = parse_with_booleans({"--resume=false"}, {"resume"});
  EXPECT_FALSE(args.get_bool("resume", true));
}

TEST(Cli, UndeclaredFlagKeepsGreedyValueConsumption) {
  const CliArgs args = parse_with_booleans({"--app", "mcf"}, {"resume"});
  EXPECT_EQ(args.get("app", ""), "mcf");
  EXPECT_TRUE(args.positional().empty());
}

TEST(ShardArgParse, AcceptsValidSpecs) {
  const auto shard = parse_shard_arg("2/8");
  ASSERT_TRUE(shard.has_value());
  EXPECT_EQ(shard->index, 2u);
  EXPECT_EQ(shard->count, 8u);

  const auto solo = parse_shard_arg("0/1");
  ASSERT_TRUE(solo.has_value());
  EXPECT_EQ(solo->index, 0u);
  EXPECT_EQ(solo->count, 1u);

  const auto last = parse_shard_arg("127/128");
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->index, 127u);
}

TEST(ShardArgParse, RejectsMalformedSpecs) {
  // A malformed --shard must be a hard error, never silently shard 0: each
  // of these would otherwise drop or duplicate grid rows.
  for (const char* bad :
       {"", "/", "3", "3/", "/4", "4/4", "5/4", "-1/4", "a/4", "3/b", "1/0",
        "0/0", "1.5/4", "2 /8", "2/8/1", "0x2/8", "9999999999/9999999999"}) {
    EXPECT_FALSE(parse_shard_arg(bad).has_value()) << "'" << bad << "'";
  }
}

}  // namespace
}  // namespace qosrm
