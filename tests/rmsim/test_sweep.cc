#include "rmsim/sweep.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "support/shared_db.hh"
#include "workload/workload_gen.hh"

namespace qosrm::rmsim {
namespace {

std::vector<workload::WorkloadMix> two_core_mixes(std::size_t count) {
  const workload::SimDb& db = testing::shared_db(2);
  workload::WorkloadGenOptions gen;
  gen.cores = 2;
  gen.per_scenario = 1;
  std::vector<workload::WorkloadMix> mixes =
      workload::generate_workloads(db.suite(), gen);
  EXPECT_GE(mixes.size(), count);
  mixes.resize(count);
  return mixes;
}

SweepGrid small_grid(std::size_t mixes) {
  SweepGrid grid;
  grid.mixes = two_core_mixes(mixes);
  grid.policies = {rm::RmPolicy::Idle, rm::RmPolicy::Rm1, rm::RmPolicy::Rm2,
                   rm::RmPolicy::Rm3};
  grid.models = {rm::PerfModelKind::Model3};
  grid.qos_alphas = {0.0};
  return grid;
}

SweepResult run_sweep(const SweepGrid& grid, int threads) {
  SweepOptions options;
  options.threads = threads;
  SweepRunner runner(testing::shared_db(2), options);
  return runner.run(grid);
}

/// Bit-for-bit comparison of two runs (no tolerances anywhere: the sweep
/// must be exactly deterministic).
void expect_runs_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.scenario, b.scenario);
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.model, b.model);
  EXPECT_EQ(a.uncore_energy_j, b.uncore_energy_j);
  EXPECT_EQ(a.wall_time_s, b.wall_time_s);
  EXPECT_EQ(a.rm_invocations, b.rm_invocations);
  EXPECT_EQ(a.rm_ops, b.rm_ops);
  ASSERT_EQ(a.cores.size(), b.cores.size());
  for (std::size_t k = 0; k < a.cores.size(); ++k) {
    EXPECT_EQ(a.cores[k].app, b.cores[k].app);
    EXPECT_EQ(a.cores[k].counted_energy_j, b.cores[k].counted_energy_j);
    EXPECT_EQ(a.cores[k].executed_instructions, b.cores[k].executed_instructions);
    EXPECT_EQ(a.cores[k].finish_time_s, b.cores[k].finish_time_s);
    EXPECT_EQ(a.cores[k].intervals, b.cores[k].intervals);
    EXPECT_EQ(a.cores[k].qos_violations, b.cores[k].qos_violations);
    EXPECT_EQ(a.cores[k].violation_sum, b.cores[k].violation_sum);
    EXPECT_EQ(a.cores[k].violation_max, b.cores[k].violation_max);
  }
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Sweep, GridSizeAndRowOrder) {
  const SweepGrid grid = small_grid(2);
  EXPECT_EQ(grid.size(), 8u);

  const SweepResult result = run_sweep(grid, 1);
  ASSERT_EQ(result.rows.size(), 8u);
  // Mix-minor, policy next: rows 0,1 are Idle on mix 0,1; rows 2,3 Rm1; ...
  for (std::size_t pi = 0; pi < 4; ++pi) {
    for (std::size_t mi = 0; mi < 2; ++mi) {
      const SweepRow& row = result.rows[2 * pi + mi];
      EXPECT_EQ(row.policy, grid.policies[pi]);
      EXPECT_EQ(row.workload, grid.mixes[mi].name);
    }
  }
}

TEST(Sweep, DeterministicAcrossThreadCounts) {
  const SweepGrid grid = small_grid(2);
  const SweepResult serial = run_sweep(grid, 1);
  const SweepResult parallel = run_sweep(grid, 4);

  ASSERT_EQ(serial.rows.size(), parallel.rows.size());
  for (std::size_t i = 0; i < serial.rows.size(); ++i) {
    EXPECT_EQ(serial.rows[i].workload, parallel.rows[i].workload);
    EXPECT_EQ(serial.rows[i].policy, parallel.rows[i].policy);
    EXPECT_EQ(serial.rows[i].result.savings, parallel.rows[i].result.savings);
    expect_runs_identical(serial.rows[i].result.run, parallel.rows[i].result.run);
  }
  ASSERT_EQ(serial.aggregates.size(), parallel.aggregates.size());
  for (std::size_t i = 0; i < serial.aggregates.size(); ++i) {
    EXPECT_EQ(serial.aggregates[i].weighted_savings,
              parallel.aggregates[i].weighted_savings);
    EXPECT_EQ(serial.aggregates[i].mean_savings,
              parallel.aggregates[i].mean_savings);
    EXPECT_EQ(serial.aggregates[i].mean_violation_rate,
              parallel.aggregates[i].mean_violation_rate);
  }
}

TEST(Sweep, CsvBytesIdenticalAcrossThreadCounts) {
  const SweepGrid grid = small_grid(2);
  const std::string dir = ::testing::TempDir();
  const std::string path1 = dir + "/sweep_rows_t1.csv";
  const std::string path4 = dir + "/sweep_rows_t4.csv";

  write_rows_csv(run_sweep(grid, 1), path1);
  write_rows_csv(run_sweep(grid, 4), path4);

  const std::string bytes1 = slurp(path1);
  EXPECT_FALSE(bytes1.empty());
  EXPECT_EQ(bytes1, slurp(path4));
  std::remove(path1.c_str());
  std::remove(path4.c_str());
}

TEST(Sweep, Rm3RowMatchesDirectExperimentRun) {
  const SweepGrid grid = small_grid(2);
  const SweepResult result = run_sweep(grid, 4);

  ExperimentRunner direct(testing::shared_db(2));
  rm::RmConfig config;
  config.policy = rm::RmPolicy::Rm3;
  config.model = rm::PerfModelKind::Model3;

  for (std::size_t mi = 0; mi < grid.mixes.size(); ++mi) {
    const SavingsResult expected = direct.run(grid.mixes[mi], config);
    const SweepRow& row = result.rows[3 * grid.mixes.size() + mi];  // Rm3 block
    ASSERT_EQ(row.policy, rm::RmPolicy::Rm3);
    EXPECT_EQ(row.result.savings, expected.savings);
    expect_runs_identical(row.result.run, expected.run);
  }
}

TEST(Sweep, IdleReferenceComputedOncePerMixAndAlpha) {
  SweepGrid grid = small_grid(2);
  EXPECT_EQ(run_sweep(grid, 4).idle_computations, grid.mixes.size());

  // A second alpha gets its own simulator options, hence its own references.
  grid.policies = {rm::RmPolicy::Idle, rm::RmPolicy::Rm3};
  grid.qos_alphas = {0.0, 1.1};
  EXPECT_EQ(run_sweep(grid, 4).idle_computations, 2 * grid.mixes.size());
}

TEST(Sweep, IdleRowsHaveExactlyZeroSavings) {
  const SweepResult result = run_sweep(small_grid(2), 4);
  for (const SweepRow& row : result.rows) {
    if (row.policy == rm::RmPolicy::Idle) {
      EXPECT_EQ(row.result.savings, 0.0) << row.workload;
    }
  }
  ASSERT_FALSE(result.aggregates.empty());
  EXPECT_EQ(result.aggregates[0].policy, rm::RmPolicy::Idle);
  EXPECT_EQ(result.aggregates[0].weighted_savings, 0.0);
  EXPECT_EQ(result.aggregates[0].mean_savings, 0.0);
}

TEST(Sweep, BaselinePoliciesProduceRowsDeterministically) {
  // The classic baselines ride the same policy axis as the RM variants:
  // rows appear in grid order and the sweep stays byte-identical across
  // thread counts (the classpart classifier and both greedy partitioners
  // must be pure functions of the snapshots).
  SweepGrid grid;
  grid.mixes = two_core_mixes(2);
  grid.policies = {rm::RmPolicy::Idle, rm::RmPolicy::Ucp, rm::RmPolicy::Fcp,
                   rm::RmPolicy::ClassPart};
  grid.models = {rm::PerfModelKind::Model3};
  grid.qos_alphas = {0.0};

  const SweepResult serial = run_sweep(grid, 1);
  const SweepResult parallel = run_sweep(grid, 4);
  ASSERT_EQ(serial.rows.size(), 8u);
  for (std::size_t pi = 0; pi < 4; ++pi) {
    for (std::size_t mi = 0; mi < 2; ++mi) {
      const SweepRow& row = serial.rows[2 * pi + mi];
      EXPECT_EQ(row.policy, grid.policies[pi]);
      // Partitioning-only baselines run real interval simulations: every row
      // must carry RM work and a full run.
      if (row.policy != rm::RmPolicy::Idle) {
        EXPECT_GT(row.result.run.rm_invocations, 0u);
        EXPECT_GT(row.result.run.rm_ops, 0u);
      }
    }
  }
  ASSERT_EQ(serial.rows.size(), parallel.rows.size());
  for (std::size_t i = 0; i < serial.rows.size(); ++i) {
    EXPECT_EQ(serial.rows[i].result.savings, parallel.rows[i].result.savings);
    expect_runs_identical(serial.rows[i].result.run, parallel.rows[i].result.run);
  }
}

TEST(SweepParse, PoliciesModelsAlphas) {
  const std::vector<rm::RmPolicy> policies =
      parse_policies("idle,rm1,rm2,rm3,ucp,fcp,classpart");
  ASSERT_EQ(policies.size(), 7u);
  EXPECT_EQ(policies[0], rm::RmPolicy::Idle);
  EXPECT_EQ(policies[3], rm::RmPolicy::Rm3);
  EXPECT_EQ(policies[4], rm::RmPolicy::Ucp);
  EXPECT_EQ(policies[5], rm::RmPolicy::Fcp);
  EXPECT_EQ(policies[6], rm::RmPolicy::ClassPart);
  EXPECT_STREQ(rm::rm_policy_name(rm::RmPolicy::Ucp), "UCP");
  EXPECT_STREQ(rm::rm_policy_name(rm::RmPolicy::Fcp), "FCP");
  EXPECT_STREQ(rm::rm_policy_name(rm::RmPolicy::ClassPart), "ClassPart");

  const std::vector<rm::PerfModelKind> models =
      parse_models("model1,m2,model3,perfect");
  ASSERT_EQ(models.size(), 4u);
  EXPECT_EQ(models[0], rm::PerfModelKind::Model1);
  EXPECT_EQ(models[1], rm::PerfModelKind::Model2);
  EXPECT_EQ(models[3], rm::PerfModelKind::Perfect);

  const std::vector<double> alphas = parse_alphas("0, 1.05,1.1");
  ASSERT_EQ(alphas.size(), 3u);
  EXPECT_EQ(alphas[0], 0.0);
  EXPECT_EQ(alphas[1], 1.05);
  EXPECT_EQ(alphas[2], 1.1);
}

TEST(SweepParse, TryParseAlphasRejectsEmptyListsAndEntries) {
  // "--alphas=" and "--alphas=1," used to parse into empty/short lists and
  // silently sweep a zero-row or shortened grid.
  std::vector<double> out;
  std::string error;
  EXPECT_FALSE(try_parse_alphas("", &out, &error));
  EXPECT_NE(error.find("empty"), std::string::npos) << error;
  EXPECT_FALSE(try_parse_alphas("1,", &out, &error));
  EXPECT_FALSE(try_parse_alphas(",1", &out, &error));
  EXPECT_FALSE(try_parse_alphas("1,,2", &out, &error));
  EXPECT_FALSE(try_parse_alphas(" , ", &out, &error));
  // Valid specs still parse after the rejects.
  ASSERT_TRUE(try_parse_alphas("1.05", &out, &error)) << error;
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 1.05);
}

using SweepParseDeathTest = ::testing::Test;

TEST(SweepParseDeathTest, AbortingParsersRejectEmptyListsAndEntries) {
  EXPECT_DEATH((void)parse_policies(""), "empty --policies entry");
  EXPECT_DEATH((void)parse_policies("rm1,"), "empty --policies entry");
  EXPECT_DEATH((void)parse_policies(",rm1"), "empty --policies entry");
  EXPECT_DEATH((void)parse_policies("lru"), "unknown policy");
  EXPECT_DEATH((void)parse_models(""), "empty --models entry");
  EXPECT_DEATH((void)parse_models("model3,,model1"), "empty --models entry");
  EXPECT_DEATH((void)parse_alphas("1,"), "empty --alphas entry");
}

}  // namespace
}  // namespace qosrm::rmsim
