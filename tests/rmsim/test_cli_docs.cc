// Flag-coverage gate for docs/CLI.md: every flag a binary declares in
// rmsim/cli_flags.hh must appear in the CLI reference, so the doc cannot
// silently drift from the binaries. The reverse direction - documenting a
// flag that does not exist - is caught by the binaries' own strict
// unknown-flag validation the moment anyone tries a documented flag, and by
// the doc linking each table to the header it mirrors.
#include "rmsim/cli_flags.hh"

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace qosrm::rmsim {
namespace {

const std::string& cli_doc() {
  static const std::string doc = [] {
    const std::string path = std::string(QOSRM_DOCS_DIR) + "/CLI.md";
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }();
  return doc;
}

template <std::size_t N>
void expect_all_documented(const char* binary, const char* const (&flags)[N]) {
  const std::string& doc = cli_doc();
  for (const char* flag : flags) {
    EXPECT_NE(doc.find("--" + std::string(flag)), std::string::npos)
        << binary << " flag --" << flag
        << " is not documented in docs/CLI.md";
  }
}

TEST(CliDocs, EverySweepMainFlagIsDocumented) {
  expect_all_documented("sweep_main", cli::kSweepMainFlags);
}

TEST(CliDocs, EveryServiceMainFlagIsDocumented) {
  expect_all_documented("service_main", cli::kServiceMainFlags);
}

TEST(CliDocs, EverySweepMergeFlagIsDocumented) {
  expect_all_documented("sweep_merge", cli::kSweepMergeFlags);
}

TEST(CliDocs, EveryReportMainFlagIsDocumented) {
  expect_all_documented("report_main", cli::kReportMainFlags);
}

TEST(CliDocs, HelpIsDocumentedOnce) {
  // --help is accepted by every binary but lives outside the per-binary
  // arrays (see cli_flags.hh); it still must be in the reference.
  EXPECT_NE(cli_doc().find("--help"), std::string::npos);
}

}  // namespace
}  // namespace qosrm::rmsim
