#include "rmsim/experiment.hh"

#include <gtest/gtest.h>

#include "rmsim/report.hh"
#include "support/shared_db.hh"

namespace qosrm::rmsim {
namespace {

const workload::SimDb& db() { return qosrm::testing::shared_db(); }

workload::WorkloadMix mix2(const char* a, const char* b) {
  workload::WorkloadMix mix;
  mix.name = std::string(a) + "+" + b;
  mix.scenario = workload::Scenario::One;
  mix.app_ids = {db().suite().index_of(a), db().suite().index_of(b)};
  return mix;
}

TEST(Experiment, IdleReferenceIsCached) {
  ExperimentRunner runner(db());
  const auto mix = mix2("mcf", "libquantum");
  const RunResult& first = runner.idle_reference(mix);
  const RunResult& second = runner.idle_reference(mix);
  EXPECT_EQ(&first, &second);
}

TEST(Experiment, SavingsConsistentWithRuns) {
  ExperimentRunner runner(db());
  const auto mix = mix2("mcf", "libquantum");
  rm::RmConfig cfg;
  cfg.policy = rm::RmPolicy::Rm3;
  const SavingsResult r = runner.run(mix, cfg);
  const double expected = energy_savings(r.run, runner.idle_reference(mix));
  EXPECT_DOUBLE_EQ(r.savings, expected);
}

TEST(Experiment, ScenarioWeightsMatchPaper) {
  const auto w = scenario_weights(workload::spec_suite());
  EXPECT_NEAR(w[0], 0.470, 0.003);
  EXPECT_NEAR(w[1], 0.221, 0.003);
  EXPECT_NEAR(w[2], 0.221, 0.003);
  EXPECT_NEAR(w[3], 0.088, 0.003);
}

TEST(Experiment, WeightedAverageAggregatesPerScenarioFirst) {
  using workload::Scenario;
  const std::vector<Scenario> scenarios = {Scenario::One, Scenario::One,
                                           Scenario::Four};
  const std::vector<double> savings = {0.10, 0.20, 0.0};
  const std::array<double, 4> weights = {0.5, 0.2, 0.2, 0.1};
  // Scenario 1 mean = 0.15 (weight .5), scenario 4 mean = 0 (weight .1);
  // normalized over used weights (.6): 0.15*.5/.6 = 0.125.
  EXPECT_NEAR(weighted_average_savings(scenarios, savings, weights), 0.125,
              1e-12);
}

TEST(Experiment, WeightedAverageEmptyIsZero) {
  EXPECT_DOUBLE_EQ(weighted_average_savings({}, {}, {0.25, 0.25, 0.25, 0.25}),
                   0.0);
}

TEST(Report, SavingsGridRendersAllVariants) {
  const std::vector<SavingsGridRow> rows = {
      {"4Core-W1", workload::Scenario::One, {0.05, 0.10, 0.15}}};
  const AsciiTable table = savings_grid(rows, {"RM1", "RM2", "RM3"});
  const std::string s = table.str();
  EXPECT_NE(s.find("4Core-W1"), std::string::npos);
  EXPECT_NE(s.find("15.0%"), std::string::npos);
  EXPECT_NE(s.find("Scenario 1"), std::string::npos);
}

TEST(Report, QosSummaryListsModels) {
  QosEvalResult r;
  r.model = rm::PerfModelKind::Model2;
  r.violation_probability = 0.05;
  const std::string s = qos_summary({r}).str();
  EXPECT_NE(s.find("Model2"), std::string::npos);
  EXPECT_NE(s.find("5.00%"), std::string::npos);
}

TEST(Report, HistogramsNormalizedToGlobalMax) {
  QosEvalResult a, b;
  a.model = rm::PerfModelKind::Model1;
  b.model = rm::PerfModelKind::Model3;
  a.histogram.add(0.05, 10.0);
  b.histogram.add(0.05, 5.0);
  const std::string s = qos_histograms({a, b});
  EXPECT_NE(s.find("1.0000"), std::string::npos);  // model1 peak
  EXPECT_NE(s.find("0.5000"), std::string::npos);  // model3 at half
}

}  // namespace
}  // namespace qosrm::rmsim
