// Golden-CSV regression gate: the committed tests/data CSV pins the exact
// numerical output of the 2-core reference sweep (per-scenario=1, seed
// 2020, all policies, Model3, alpha 0 - the same grid CI smoke-runs).
// Future refactors and performance work must reproduce it BYTE for BYTE;
// any intentional result change has to regenerate the golden file in the
// same commit, making result drift visible in review instead of silent.
//
// Regenerate with:
//   ./build/src/sweep_main --cores=2 --per-scenario=1
//       --rows-csv=tests/data/golden_sweep_2core_rows.csv
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "rmsim/sweep.hh"
#include "support/shared_db.hh"
#include "workload/workload_gen.hh"

namespace qosrm::rmsim {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(GoldenCsv, TwoCoreReferenceSweepIsByteIdenticalToCommittedGolden) {
  const workload::SimDb& db = testing::shared_db(2);
  workload::WorkloadGenOptions gen;
  gen.cores = 2;
  gen.per_scenario = 1;
  gen.seed = 2020;

  SweepGrid grid;
  grid.mixes = workload::generate_workloads(db.suite(), gen);
  grid.policies = {rm::RmPolicy::Idle, rm::RmPolicy::Rm1, rm::RmPolicy::Rm2,
                   rm::RmPolicy::Rm3};
  grid.models = {rm::PerfModelKind::Model3};
  grid.qos_alphas = {0.0};

  SweepRunner runner(db, {});
  const SweepResult result = runner.run(grid);

  const std::string actual_path =
      ::testing::TempDir() + "/golden_check_rows.csv";
  write_rows_csv(result, actual_path);
  const std::string actual = slurp(actual_path);
  std::remove(actual_path.c_str());

  const std::string golden_path =
      std::string(QOSRM_TEST_DATA_DIR) + "/golden_sweep_2core_rows.csv";
  const std::string golden = slurp(golden_path);
  ASSERT_FALSE(golden.empty()) << golden_path;

  EXPECT_EQ(actual, golden)
      << "sweep output drifted from " << golden_path
      << "\nIf the change is intentional, regenerate the golden file (see "
         "the header of this test) and justify the numerical diff in the "
         "same commit.";
}

}  // namespace
}  // namespace qosrm::rmsim
