#include "rmsim/qos_eval.hh"

#include <gtest/gtest.h>

#include "support/shared_db.hh"

namespace qosrm::rmsim {
namespace {

const workload::SimDb& db() { return qosrm::testing::shared_db(); }

// The full sweep is expensive; share one coarse evaluation across tests.
const std::vector<QosEvalResult>& results() {
  static const std::vector<QosEvalResult> r = [] {
    QosEvalOptions opt;
    opt.current_f_stride = 6;  // coarse current-frequency sampling
    const QosEvaluator eval(db(), opt);
    return eval.evaluate_all({rm::PerfModelKind::Model1,
                              rm::PerfModelKind::Model2,
                              rm::PerfModelKind::Model3});
  }();
  return r;
}

TEST(QosEval, ProbabilitiesAreProbabilities) {
  for (const QosEvalResult& r : results()) {
    EXPECT_GE(r.violation_probability, 0.0);
    EXPECT_LE(r.violation_probability, 1.0);
    EXPECT_GE(r.selectable_mass, r.violating_mass);
  }
}

TEST(QosEval, EveryModelHasSelectableSettings) {
  for (const QosEvalResult& r : results()) {
    EXPECT_GT(r.selectable_mass, 0.0);
  }
}

TEST(QosEval, Model3BeatsModel1OnViolationProbability) {
  // Paper Fig. 7: the proposed model reduces violation probability by ~46%
  // vs Model1; require a clear reduction.
  EXPECT_LT(results()[2].violation_probability,
            results()[0].violation_probability * 0.85);
}

TEST(QosEval, Model3BeatsModel2OnViolationProbability) {
  // Paper Fig. 7: ~32% reduction vs Model2; require a clear reduction.
  EXPECT_LT(results()[2].violation_probability,
            results()[1].violation_probability * 0.9);
}

TEST(QosEval, Model3ReducesExpectedViolation) {
  // Paper Fig. 7: expected violation magnitude down ~49% vs Model2.
  EXPECT_LT(results()[2].expected_violation,
            results()[1].expected_violation);
}

TEST(QosEval, ViolationMagnitudesWithinHistogramRange) {
  for (const QosEvalResult& r : results()) {
    if (r.violating_mass == 0.0) continue;
    EXPECT_GT(r.expected_violation, 0.0);
    EXPECT_GE(r.histogram.total(), r.violating_mass * 0.999);
  }
}

TEST(QosEval, HistogramTailShorterForModel3) {
  // Fig. 8: the proposed model's large-violation tail shrinks. Compare the
  // mass above 10% violation.
  auto tail_mass = [](const QosEvalResult& r) {
    double mass = 0.0;
    for (std::size_t b = 0; b < r.histogram.bin_count(); ++b) {
      if (r.histogram.bin_lo(b) >= 0.10) mass += r.histogram.count(b);
    }
    return mass;
  };
  EXPECT_LT(tail_mass(results()[2]), tail_mass(results()[1]));
}

TEST(QosEval, SingleModelEvaluationMatchesBatch) {
  QosEvalOptions opt;
  opt.current_f_stride = 6;
  const QosEvaluator eval(db(), opt);
  const QosEvalResult single = eval.evaluate(rm::PerfModelKind::Model2);
  EXPECT_NEAR(single.violation_probability, results()[1].violation_probability,
              1e-12);
  EXPECT_NEAR(single.expected_violation, results()[1].expected_violation, 1e-12);
}

}  // namespace
}  // namespace qosrm::rmsim
