#include "rmsim/snapshot.hh"

#include <gtest/gtest.h>

#include "support/shared_db.hh"

namespace qosrm::rmsim {
namespace {

const workload::SimDb& db() { return qosrm::testing::shared_db(); }

TEST(Snapshot, ComponentsSumToTotalTime) {
  const workload::Setting base = workload::baseline_setting(db().system());
  const rm::CounterSnapshot snap = make_snapshot(db(), 0, 0, base);
  EXPECT_NEAR(snap.t_width_s + snap.t_ilp_s + snap.t_branch_s + snap.t_cache_s +
                  snap.t_mem_s,
              snap.total_time_s, snap.total_time_s * 1e-9);
}

TEST(Snapshot, CurrentSettingRecorded) {
  const workload::Setting s{arch::CoreSize::L, 3, 11};
  const rm::CounterSnapshot snap = make_snapshot(db(), 2, 1, s);
  EXPECT_TRUE(snap.current == s);
}

TEST(Snapshot, AtdCurvesCoverAllAllocations) {
  const workload::Setting base = workload::baseline_setting(db().system());
  const rm::CounterSnapshot snap = make_snapshot(db(), 5, 0, base);
  EXPECT_EQ(snap.max_ways(), 16);
  for (int c = 0; c < arch::kNumCoreSizes; ++c) {
    EXPECT_EQ(snap.atd_leading_misses[static_cast<std::size_t>(c)].size(), 16u);
  }
}

TEST(Snapshot, MissesMatchDbAtCurrentAllocation) {
  const workload::Setting base = workload::baseline_setting(db().system());
  const int app = db().suite().index_of("mcf");
  const rm::CounterSnapshot snap = make_snapshot(db(), app, 0, base);
  EXPECT_DOUBLE_EQ(snap.llc_misses, db().stats(app, 0).misses[7]);
  EXPECT_DOUBLE_EQ(snap.atd_misses_at(8), snap.llc_misses);
}

TEST(Snapshot, PowerSampleValidAndConsistent) {
  const workload::Setting base = workload::baseline_setting(db().system());
  const int app = db().suite().index_of("soplex");
  const rm::CounterSnapshot snap = make_snapshot(db(), app, 0, base);
  ASSERT_TRUE(snap.power_sample.valid);
  EXPECT_EQ(snap.power_sample.size, base.c);
  EXPECT_DOUBLE_EQ(snap.power_sample.freq_hz, 2e9);
  // Sampled dynamic energy = measured core energy minus the static table.
  const double core_j = db().energy(app, 0, base).core_j();
  const double static_j =
      db().power().core_static_power(base.c, 1.0) * snap.total_time_s;
  EXPECT_NEAR(snap.power_sample.dynamic_energy_j, core_j - static_j,
              core_j * 1e-9);
}

TEST(Snapshot, MeasuredMlpMatchesGroundTruth) {
  const workload::Setting base = workload::baseline_setting(db().system());
  const int app = db().suite().index_of("bwaves");
  const rm::CounterSnapshot snap = make_snapshot(db(), app, 0, base);
  EXPECT_DOUBLE_EQ(snap.measured_mlp,
                   db().stats(app, 0).mlp_true(base.c, base.w));
}

TEST(Snapshot, OracleAbsentByDefaultPresentOnRequest) {
  const workload::Setting base = workload::baseline_setting(db().system());
  EXPECT_FALSE(make_snapshot(db(), 0, 0, base).oracle.valid());
  const rm::CounterSnapshot with = make_snapshot(db(), 0, 0, base, 1);
  ASSERT_TRUE(with.oracle.valid());
  EXPECT_EQ(with.oracle.app, 0);
  EXPECT_EQ(with.oracle.phase, 1);
  EXPECT_EQ(with.oracle.db, &db());
}

TEST(Snapshot, TimesScaleWithCurrentFrequency) {
  const int app = db().suite().index_of("povray");
  workload::Setting slow = workload::baseline_setting(db().system());
  slow.f_idx = 0;
  const rm::CounterSnapshot at_base =
      make_snapshot(db(), app, 0, workload::baseline_setting(db().system()));
  const rm::CounterSnapshot at_slow = make_snapshot(db(), app, 0, slow);
  EXPECT_NEAR(at_slow.t_width_s, at_base.t_width_s * 2.0, at_base.t_width_s * 0.01);
  EXPECT_DOUBLE_EQ(at_slow.t_mem_s, at_base.t_mem_s);
}

}  // namespace
}  // namespace qosrm::rmsim
