// Pins the colocation-service steady-state event loop at ZERO heap
// allocations per event: after one warm pass has grown every buffer (queue
// ring, violation histogram, counter snapshots, RM workspaces), reset() +
// step() must never touch the heap again. bench/bench_service.cc measures
// the same property; this test makes it a hard gate that fails the suite,
// not just a counter in a benchmark JSON.
//
// The count is taken through a global operator-new hook, which replaces the
// allocator for this whole binary - the test lives alone in its own test
// executable so gtest's own allocations can be excluded by bracketing only
// the measured loop.
//
// Builds the full simulation database (tests/support/shared_db.hh), so the
// binary carries LABELS slow.
#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "rmsim/service.hh"
#include "support/shared_db.hh"
#include "workload/arrival_gen.hh"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

// Counting operator-new hooks (all variants funnel here). Kept outside any
// namespace so they replace the global versions for the whole binary.
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align), size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace qosrm::rmsim {
namespace {

class ServiceAllocPolicy
    : public ::testing::TestWithParam<std::tuple<rm::RmPolicy, AdmissionPolicy>> {
};

TEST_P(ServiceAllocPolicy, SteadyStateLoopIsAllocationFree) {
  const workload::SimDb& db = qosrm::testing::shared_db(2);

  ServiceConfig config;
  config.arrivals = 256;
  config.seed = 7;
  config.demand_min = 10;
  config.demand_max = 40;
  ServicePoint point;
  point.policy = std::get<0>(GetParam());
  point.admission = std::get<1>(GetParam());
  point.load = 2.0;  // overload: the queue-scan admission paths must engage
  ServiceEngine engine(db, config, point);

  // Warm pass: every buffer grows to its high-water capacity, every RM
  // per-core curve cache fills.
  (void)engine.run();
  engine.reset();

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    if (!engine.step()) engine.reset();
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " heap allocations leaked into the steady-state "
      << "service loop (required: zero per event after warmup)";
}

// The zero-alloc invariant covers the full {RM policy x admission policy}
// plane: the paper's RM3 and each classic partitioning-only baseline (their
// workspace buffers must be pre-warmed just like the optimizer's), each
// under every admission discipline (the sdf/qos-aware queue scans and the
// rejection predicate run inside the steady-state loop).
INSTANTIATE_TEST_SUITE_P(
    AllPolicies, ServiceAllocPolicy,
    ::testing::Combine(::testing::Values(rm::RmPolicy::Rm3, rm::RmPolicy::Ucp,
                                         rm::RmPolicy::Fcp,
                                         rm::RmPolicy::ClassPart),
                       ::testing::Values(AdmissionPolicy::Fifo,
                                         AdmissionPolicy::Sdf,
                                         AdmissionPolicy::QosAware)),
    [](const auto& info) {
      std::string name = rm::rm_policy_name(std::get<0>(info.param));
      name += "_";
      for (const char* p = admission_policy_name(std::get<1>(info.param));
           *p != '\0'; ++p) {
        name += *p == '-' ? '_' : *p;  // gtest names must be alphanumeric
      }
      return name;
    });

TEST(ServiceAlloc, ArrivalRegenerationIsAllocationFree) {
  workload::ArrivalGenOptions options;
  options.count = 2048;
  workload::ArrivalTrace trace;
  workload::generate_arrivals_into(options, &trace);  // grow to capacity

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10; ++i) {
    workload::generate_arrivals_into(options, &trace);
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
}

}  // namespace
}  // namespace qosrm::rmsim
