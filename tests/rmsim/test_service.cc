// Integration tests for the colocation-service engine: metric sanity,
// bit-exact determinism across repeats, thread counts and range slicing,
// service-part save/load/merge, and the queue/rejection edge cases.
//
// Builds the full simulation database (tests/support/shared_db.hh), so the
// whole binary carries LABELS slow.
#include "rmsim/service.hh"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rmsim/report.hh"
#include "rmsim/shard.hh"
#include "support/shared_db.hh"
#include "workload/db_io.hh"

namespace qosrm::rmsim {
namespace {

/// Small but non-trivial run: enough arrivals to exercise queueing,
/// departures and violations at 2 cores in well under a second per point.
ServiceConfig small_config() {
  ServiceConfig config;
  config.arrivals = 300;
  config.seed = 99;
  config.demand_min = 10;
  config.demand_max = 40;
  return config;
}

ServiceGrid small_grid() {
  ServiceGrid grid;
  grid.patterns = {workload::ArrivalPattern::Poisson,
                   workload::ArrivalPattern::Bursty};
  grid.loads = {0.7};
  grid.admissions = {AdmissionPolicy::Fifo, AdmissionPolicy::Sdf,
                     AdmissionPolicy::QosAware};
  grid.policies = {rm::RmPolicy::Idle, rm::RmPolicy::Rm3};
  grid.qos_alphas = {0.0};
  return grid;
}

void expect_rows_equal(const std::vector<ServiceRow>& a,
                       const std::vector<ServiceRow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("row " + std::to_string(i));
    EXPECT_EQ(a[i].pattern, b[i].pattern);
    EXPECT_EQ(a[i].load, b[i].load);
    EXPECT_EQ(a[i].admission, b[i].admission);
    EXPECT_EQ(a[i].policy, b[i].policy);
    EXPECT_EQ(a[i].model, b[i].model);
    EXPECT_EQ(a[i].qos_alpha, b[i].qos_alpha);
    const ServiceMetrics& ma = a[i].metrics;
    const ServiceMetrics& mb = b[i].metrics;
    EXPECT_EQ(ma.arrivals, mb.arrivals);
    EXPECT_EQ(ma.served, mb.served);
    EXPECT_EQ(ma.rejected, mb.rejected);
    EXPECT_EQ(ma.qos_rejected, mb.qos_rejected);
    EXPECT_EQ(ma.intervals, mb.intervals);
    EXPECT_EQ(ma.violations, mb.violations);
    // Bit-exact, not approximate: determinism is the contract under test.
    EXPECT_EQ(ma.violation_rate, mb.violation_rate);
    EXPECT_EQ(ma.p50_violation, mb.p50_violation);
    EXPECT_EQ(ma.p95_violation, mb.p95_violation);
    EXPECT_EQ(ma.p99_violation, mb.p99_violation);
    EXPECT_EQ(ma.max_violation, mb.max_violation);
    EXPECT_EQ(ma.mean_violation, mb.mean_violation);
    EXPECT_EQ(ma.energy_total_j, mb.energy_total_j);
    EXPECT_EQ(ma.uncore_energy_j, mb.uncore_energy_j);
    EXPECT_EQ(ma.energy_per_app_j, mb.energy_per_app_j);
    EXPECT_EQ(ma.rm_invocations, mb.rm_invocations);
    EXPECT_EQ(ma.rm_ops, mb.rm_ops);
    EXPECT_EQ(ma.decisions_per_sec, mb.decisions_per_sec);
    EXPECT_EQ(ma.occupancy, mb.occupancy);
    EXPECT_EQ(ma.mean_wait_s, mb.mean_wait_s);
    EXPECT_EQ(ma.wall_time_s, mb.wall_time_s);
  }
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(Service, MetricsAreSane) {
  const workload::SimDb& db = qosrm::testing::shared_db(2);
  ServicePoint point;
  point.load = 0.7;
  ServiceEngine engine(db, small_config(), point);
  const ServiceMetrics m = engine.run();

  EXPECT_EQ(m.arrivals, small_config().arrivals);
  EXPECT_EQ(m.arrivals, m.served + m.rejected);
  EXPECT_GT(m.served, 0u);
  EXPECT_GT(m.intervals, 0u);
  EXPECT_GT(m.wall_time_s, 0.0);
  EXPECT_GT(m.energy_total_j, 0.0);
  EXPECT_GT(m.uncore_energy_j, 0.0);
  EXPECT_LT(m.uncore_energy_j, m.energy_total_j);
  EXPECT_GT(m.energy_per_app_j, 0.0);
  EXPECT_GT(m.occupancy, 0.0);
  EXPECT_LE(m.occupancy, 1.0);
  EXPECT_GE(m.mean_wait_s, 0.0);
  EXPECT_GT(m.rm_invocations, 0u);
  EXPECT_GT(m.decisions_per_sec, 0.0);
  EXPECT_LE(m.violations, m.intervals);
  if (m.violations > 0) {
    EXPECT_GT(m.p99_violation, 0.0);
    EXPECT_GE(m.p99_violation, m.p50_violation);
    EXPECT_GE(m.max_violation, m.p99_violation);
  }
}

TEST(Service, RunIsRepeatable) {
  const workload::SimDb& db = qosrm::testing::shared_db(2);
  ServicePoint point;
  point.pattern = workload::ArrivalPattern::Bursty;
  ServiceEngine engine(db, small_config(), point);
  const ServiceMetrics first = engine.run();
  const ServiceMetrics second = engine.run();  // reset() + replay
  ServiceEngine other(db, small_config(), point);
  const ServiceMetrics fresh = other.run();

  std::vector<ServiceRow> a(1), b(1), c(1);
  a[0].metrics = first;
  b[0].metrics = second;
  c[0].metrics = fresh;
  expect_rows_equal(a, b);
  expect_rows_equal(a, c);
}

TEST(Service, ThreadCountDoesNotChangeRows) {
  const workload::SimDb& db = qosrm::testing::shared_db(2);
  ServiceOptions serial;
  serial.threads = 1;
  ServiceOptions parallel;
  parallel.threads = 4;
  const ServiceResult a = run_service(db, small_grid(), small_config(), serial);
  const ServiceResult b =
      run_service(db, small_grid(), small_config(), parallel);
  ASSERT_EQ(a.rows.size(), small_grid().size());
  expect_rows_equal(a.rows, b.rows);
}

TEST(Service, RangeSlicingMatchesFullRun) {
  const workload::SimDb& db = qosrm::testing::shared_db(2);
  const ServiceGrid grid = small_grid();
  const ServiceConfig config = small_config();
  const ServiceResult full = run_service(db, grid, config);

  const std::size_t mid = grid.size() / 2;
  std::vector<ServiceRow> sliced = run_service_range(db, grid, config, 0, mid);
  const std::vector<ServiceRow> tail =
      run_service_range(db, grid, config, mid, grid.size());
  sliced.insert(sliced.end(), tail.begin(), tail.end());
  expect_rows_equal(full.rows, sliced);
}

TEST(Service, PartRoundtripAndMerge) {
  const workload::SimDb& db = qosrm::testing::shared_db(2);
  const ServiceGrid grid = small_grid();
  const ServiceConfig config = small_config();
  const std::uint64_t db_fp = workload::simdb_fingerprint(
      db.suite(), db.system(), db.phase_options());
  const std::uint64_t fingerprint = service_fingerprint(grid, config, db_fp);
  const ServiceResult full = run_service(db, grid, config);

  std::vector<std::string> paths;
  for (std::size_t i = 0; i < 2; ++i) {
    ServicePart part;
    part.fingerprint = fingerprint;
    part.shape = grid.shape();
    part.shard_index = i;
    part.shard_count = 2;
    part.range = shard_range(grid.size(), i, 2);
    part.rows = run_service_range(db, grid, config, part.range.begin,
                                  part.range.end);
    paths.push_back(temp_path("service_part_" + std::to_string(i) + ".qospart"));
    std::string error;
    ASSERT_TRUE(save_service_part(part, paths.back(), &error)) << error;

    const std::optional<ServicePart> loaded =
        load_service_part(paths.back(), &error);
    ASSERT_TRUE(loaded.has_value()) << error;
    EXPECT_EQ(loaded->fingerprint, fingerprint);
    EXPECT_EQ(loaded->range, part.range);
    expect_rows_equal(part.rows, loaded->rows);
  }

  std::string error;
  ServiceIdentity identity;
  const std::optional<std::vector<ServiceRow>> merged =
      merge_service_part_files(paths, &fingerprint, &error, &identity);
  ASSERT_TRUE(merged.has_value()) << error;
  EXPECT_EQ(identity.fingerprint, fingerprint);
  EXPECT_TRUE(identity.shape == grid.shape());
  expect_rows_equal(full.rows, *merged);

  // A foreign fingerprint must be rejected, never silently merged.
  const std::uint64_t wrong = fingerprint + 1;
  EXPECT_FALSE(merge_service_part_files(paths, &wrong, &error).has_value());
  EXPECT_NE(error.find("different service sweep"), std::string::npos) << error;

  // The merged rows feed a byte-stable report.
  const std::string json =
      service_report_json(*merged, grid.shape(), fingerprint);
  EXPECT_EQ(json, service_report_json(full.rows, grid.shape(), fingerprint));
  EXPECT_NE(json.find("qosrm-service-report"), std::string::npos);
  EXPECT_NE(json.find("p99_violation"), std::string::npos);

  for (const std::string& path : paths) std::remove(path.c_str());
}

TEST(Service, IdlePolicyNeverInvokesTheRm) {
  const workload::SimDb& db = qosrm::testing::shared_db(2);
  ServicePoint point;
  point.policy = rm::RmPolicy::Idle;
  ServiceEngine engine(db, small_config(), point);
  const ServiceMetrics m = engine.run();
  EXPECT_EQ(m.rm_invocations, 0u);
  EXPECT_EQ(m.rm_ops, 0u);
  EXPECT_EQ(m.decisions_per_sec, 0.0);
  EXPECT_GT(m.served, 0u);
}

TEST(Service, FullQueueRejectsInsteadOfLosingArrivals) {
  const workload::SimDb& db = qosrm::testing::shared_db(2);
  ServiceConfig config = small_config();
  config.queue_capacity = 1;
  ServicePoint point;
  point.load = 4.0;  // heavy overload: the 1-slot queue must overflow
  ServiceEngine engine(db, config, point);
  const ServiceMetrics m = engine.run();
  EXPECT_GT(m.rejected, 0u);
  EXPECT_EQ(m.arrivals, m.served + m.rejected);
}

TEST(Service, FingerprintSeparatesDifferentRuns) {
  const ServiceGrid grid = small_grid();
  const ServiceConfig config = small_config();
  const std::uint64_t fp = service_fingerprint(grid, config, 42);
  EXPECT_EQ(fp, service_fingerprint(grid, config, 42));
  EXPECT_NE(fp, service_fingerprint(grid, config, 43));

  ServiceConfig other = config;
  other.seed = config.seed + 1;
  EXPECT_NE(fp, service_fingerprint(grid, other, 42));
  other = config;
  other.queue_capacity = 7;
  EXPECT_NE(fp, service_fingerprint(grid, other, 42));

  ServiceGrid wider = grid;
  wider.loads.push_back(1.1);
  EXPECT_NE(fp, service_fingerprint(wider, config, 42));

  ServiceGrid more_admissions = grid;
  more_admissions.admissions = {AdmissionPolicy::Fifo};
  EXPECT_NE(fp, service_fingerprint(more_admissions, config, 42));
}

TEST(Service, AdmissionCellsConserveArrivalsOnIdenticalTraces) {
  // All admission policies of one (pattern, load) face byte-identical
  // arrival traces: same arrival count, and arrivals = served + rejected
  // under every policy - an admission policy may turn arrivals away, never
  // lose them.
  const workload::SimDb& db = qosrm::testing::shared_db(2);
  ServiceConfig config = small_config();
  config.queue_capacity = 8;
  for (const AdmissionPolicy admission :
       {AdmissionPolicy::Fifo, AdmissionPolicy::Sdf,
        AdmissionPolicy::QosAware}) {
    SCOPED_TRACE(admission_policy_name(admission));
    ServicePoint point;
    point.load = 3.0;  // overload so the queue and rejection paths engage
    point.admission = admission;
    ServiceEngine engine(db, config, point);
    const ServiceMetrics m = engine.run();
    EXPECT_EQ(m.arrivals, config.arrivals);
    EXPECT_EQ(m.arrivals, m.served + m.rejected);
    EXPECT_LE(m.qos_rejected, m.rejected);
    if (admission != AdmissionPolicy::QosAware) {
      EXPECT_EQ(m.qos_rejected, 0u);  // only qos-aware rejects by predicate
    }
  }
}

TEST(Service, SdfReordersTheQueueUnderOverload) {
  // Under heavy overload smallest-demand-first must release the queue in a
  // different order than FIFO - the fixed-seed runs are deterministic, so a
  // genuine behavioural difference shows up as different mean queueing
  // delay (and equal arrival accounting, per the test above).
  const workload::SimDb& db = qosrm::testing::shared_db(2);
  ServiceConfig config = small_config();
  config.queue_capacity = 64;
  ServicePoint fifo;
  fifo.load = 3.0;
  fifo.admission = AdmissionPolicy::Fifo;
  ServicePoint sdf = fifo;
  sdf.admission = AdmissionPolicy::Sdf;
  const ServiceMetrics m_fifo = ServiceEngine(db, config, fifo).run();
  const ServiceMetrics m_sdf = ServiceEngine(db, config, sdf).run();
  EXPECT_EQ(m_fifo.arrivals, m_sdf.arrivals);
  EXPECT_NE(m_fifo.mean_wait_s, m_sdf.mean_wait_s);
}

TEST(ServiceDeathTest, ParseAdmissionsRejectsBadSpecs) {
  EXPECT_DEATH((void)parse_admissions(""), "empty --admission entry");
  EXPECT_DEATH((void)parse_admissions("fifo,"), "empty --admission entry");
  EXPECT_DEATH((void)parse_admissions("lifo"), "bad --admission entry");
  EXPECT_DEATH((void)parse_admissions("qosaware"), "bad --admission entry");
  const std::vector<AdmissionPolicy> admissions =
      parse_admissions("fifo, sdf,qos-aware");
  ASSERT_EQ(admissions.size(), 3u);
  EXPECT_EQ(admissions[1], AdmissionPolicy::Sdf);
  EXPECT_EQ(admissions[2], AdmissionPolicy::QosAware);
}

TEST(ServiceDeathTest, ParseLoadsRejectsBadSpecs) {
  EXPECT_DEATH((void)parse_loads(""), "empty --load entry");
  EXPECT_DEATH((void)parse_loads("0.8,"), "empty --load entry");
  EXPECT_DEATH((void)parse_loads("0"), "bad --load entry");
  EXPECT_DEATH((void)parse_loads("-1"), "bad --load entry");
  EXPECT_DEATH((void)parse_loads("fast"), "bad --load entry");
  const std::vector<double> loads = parse_loads("0.5, 0.8,1.1");
  ASSERT_EQ(loads.size(), 3u);
  EXPECT_EQ(loads[1], 0.8);
}

}  // namespace
}  // namespace qosrm::rmsim
