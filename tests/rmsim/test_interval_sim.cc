#include "rmsim/interval_sim.hh"

#include <gtest/gtest.h>

#include "support/shared_db.hh"

namespace qosrm::rmsim {
namespace {

const workload::SimDb& db() { return qosrm::testing::shared_db(); }

workload::WorkloadMix mix2(const char* a, const char* b) {
  workload::WorkloadMix mix;
  mix.name = std::string(a) + "+" + b;
  mix.scenario = workload::Scenario::One;
  mix.app_ids = {db().suite().index_of(a), db().suite().index_of(b)};
  return mix;
}

rm::RmConfig cfg(rm::RmPolicy policy,
                 rm::PerfModelKind model = rm::PerfModelKind::Model3) {
  rm::RmConfig c;
  c.policy = policy;
  c.model = model;
  return c;
}

TEST(IntervalSim, RunsToInstructionBound) {
  const IntervalSimulator sim(db());
  const RunResult r = sim.run(mix2("mcf", "libquantum"), cfg(rm::RmPolicy::Idle));
  const double interval = db().system().interval_instructions;
  const double bound =
      std::max(db().suite().app(r.cores[0].app).length_intervals(),
               db().suite().app(r.cores[1].app).length_intervals()) *
      interval;
  for (const CoreResult& c : r.cores) {
    EXPECT_GE(c.executed_instructions, bound);
    EXPECT_EQ(c.executed_instructions,
              static_cast<double>(c.intervals) * interval);
  }
}

TEST(IntervalSim, IdleRmNeverViolatesQos) {
  const IntervalSimulator sim(db());
  const RunResult r = sim.run(mix2("mcf", "xalancbmk"), cfg(rm::RmPolicy::Idle));
  EXPECT_EQ(r.total_violations(), 0u);
  EXPECT_EQ(r.rm_invocations, 0u);
}

TEST(IntervalSim, EnergyAndTimePositive) {
  const IntervalSimulator sim(db());
  const RunResult r = sim.run(mix2("gcc", "namd"), cfg(rm::RmPolicy::Rm3));
  EXPECT_GT(r.total_energy_j(), 0.0);
  EXPECT_GT(r.wall_time_s, 0.0);
  EXPECT_GT(r.uncore_energy_j, 0.0);
  EXPECT_NEAR(r.uncore_energy_j,
              db().power().uncore_power(2) * r.wall_time_s, 1e-9);
}

TEST(IntervalSim, ActiveRmInvokedOncePerBoundary) {
  const IntervalSimulator sim(db());
  const RunResult r = sim.run(mix2("mcf", "libquantum"), cfg(rm::RmPolicy::Rm2));
  // One invocation per completed interval except final ones per core.
  EXPECT_GE(r.rm_invocations, r.total_intervals() - 2 * 2);
  EXPECT_GT(r.rm_ops, 0u);
}

TEST(IntervalSim, DeterministicRuns) {
  const IntervalSimulator sim(db());
  const RunResult a = sim.run(mix2("mcf", "libquantum"), cfg(rm::RmPolicy::Rm3));
  const RunResult b = sim.run(mix2("mcf", "libquantum"), cfg(rm::RmPolicy::Rm3));
  EXPECT_DOUBLE_EQ(a.total_energy_j(), b.total_energy_j());
  EXPECT_EQ(a.total_violations(), b.total_violations());
  EXPECT_DOUBLE_EQ(a.wall_time_s, b.wall_time_s);
}

TEST(IntervalSim, ObserverSeesEveryInterval) {
  const IntervalSimulator sim(db());
  std::uint64_t observed = 0;
  double energy_sum = 0.0;
  const RunResult r =
      sim.run(mix2("povray", "sjeng"), cfg(rm::RmPolicy::Idle),
              [&](const IntervalObservation& obs) {
                ++observed;
                energy_sum += obs.energy_j;
                EXPECT_GE(obs.core, 0);
                EXPECT_LT(obs.core, 2);
                EXPECT_GT(obs.duration_s, 0.0);
              });
  EXPECT_EQ(observed, r.total_intervals());
  double counted = 0.0;
  for (const CoreResult& c : r.cores) counted += c.counted_energy_j;
  EXPECT_NEAR(energy_sum, counted, counted * 1e-9);
}

TEST(IntervalSim, OverheadsIncreaseEnergy) {
  SimOptions with;
  with.model_overheads = true;
  SimOptions without;
  without.model_overheads = false;
  const IntervalSimulator sim_with(db(), with);
  const IntervalSimulator sim_without(db(), without);
  const auto mix = mix2("mcf", "libquantum");
  const RunResult a = sim_with.run(mix, cfg(rm::RmPolicy::Rm3));
  const RunResult b = sim_without.run(mix, cfg(rm::RmPolicy::Rm3));
  EXPECT_GE(a.total_energy_j(), b.total_energy_j());
}

TEST(IntervalSim, ShorterAppRestartsUntilBound) {
  // povray (32 intervals) paired with mcf (64): povray must restart and
  // execute as many intervals as the longer app requires.
  const IntervalSimulator sim(db());
  const RunResult r = sim.run(mix2("povray", "mcf"), cfg(rm::RmPolicy::Idle));
  const int povray = db().suite().index_of("povray");
  ASSERT_EQ(r.cores[0].app, povray);
  EXPECT_GT(r.cores[0].intervals,
            static_cast<std::uint64_t>(
                db().suite().app(povray).length_intervals()));
}

TEST(IntervalSim, SavingsAgainstSelfIsZero) {
  const IntervalSimulator sim(db());
  const RunResult idle = sim.run(mix2("gcc", "wrf"), cfg(rm::RmPolicy::Idle));
  EXPECT_DOUBLE_EQ(energy_savings(idle, idle), 0.0);
}

TEST(IntervalSim, ActiveRmSavesEnergyOnFavourableMix) {
  const IntervalSimulator sim(db());
  const auto mix = mix2("mcf", "libquantum");
  const RunResult idle = sim.run(mix, cfg(rm::RmPolicy::Idle));
  const RunResult rm3 = sim.run(mix, cfg(rm::RmPolicy::Rm3));
  EXPECT_GT(energy_savings(rm3, idle), 0.05);
}

}  // namespace
}  // namespace qosrm::rmsim
