#include "rmsim/interval_sim.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "support/shared_db.hh"

namespace qosrm::rmsim {
namespace {

const workload::SimDb& db() { return qosrm::testing::shared_db(); }

workload::WorkloadMix mix2(const char* a, const char* b) {
  workload::WorkloadMix mix;
  mix.name = std::string(a) + "+" + b;
  mix.scenario = workload::Scenario::One;
  mix.app_ids = {db().suite().index_of(a), db().suite().index_of(b)};
  return mix;
}

rm::RmConfig cfg(rm::RmPolicy policy,
                 rm::PerfModelKind model = rm::PerfModelKind::Model3) {
  rm::RmConfig c;
  c.policy = policy;
  c.model = model;
  return c;
}

TEST(IntervalSim, RunsToInstructionBound) {
  const IntervalSimulator sim(db());
  const RunResult r = sim.run(mix2("mcf", "libquantum"), cfg(rm::RmPolicy::Idle));
  const double interval = db().system().interval_instructions;
  const double bound =
      std::max(db().suite().app(r.cores[0].app).length_intervals(),
               db().suite().app(r.cores[1].app).length_intervals()) *
      interval;
  for (const CoreResult& c : r.cores) {
    EXPECT_GE(c.executed_instructions, bound);
    EXPECT_EQ(c.executed_instructions,
              static_cast<double>(c.intervals) * interval);
  }
}

TEST(IntervalSim, IdleRmNeverViolatesQos) {
  const IntervalSimulator sim(db());
  const RunResult r = sim.run(mix2("mcf", "xalancbmk"), cfg(rm::RmPolicy::Idle));
  EXPECT_EQ(r.total_violations(), 0u);
  EXPECT_EQ(r.rm_invocations, 0u);
}

TEST(IntervalSim, EnergyAndTimePositive) {
  const IntervalSimulator sim(db());
  const RunResult r = sim.run(mix2("gcc", "namd"), cfg(rm::RmPolicy::Rm3));
  EXPECT_GT(r.total_energy_j(), 0.0);
  EXPECT_GT(r.wall_time_s, 0.0);
  EXPECT_GT(r.uncore_energy_j, 0.0);
  EXPECT_NEAR(r.uncore_energy_j,
              db().power().uncore_power(2) * r.wall_time_s, 1e-9);
}

TEST(IntervalSim, ActiveRmInvokedOncePerBoundary) {
  const IntervalSimulator sim(db());
  const RunResult r = sim.run(mix2("mcf", "libquantum"), cfg(rm::RmPolicy::Rm2));
  // One invocation per completed interval except final ones per core.
  EXPECT_GE(r.rm_invocations, r.total_intervals() - 2 * 2);
  EXPECT_GT(r.rm_ops, 0u);
}

TEST(IntervalSim, DeterministicRuns) {
  const IntervalSimulator sim(db());
  const RunResult a = sim.run(mix2("mcf", "libquantum"), cfg(rm::RmPolicy::Rm3));
  const RunResult b = sim.run(mix2("mcf", "libquantum"), cfg(rm::RmPolicy::Rm3));
  EXPECT_DOUBLE_EQ(a.total_energy_j(), b.total_energy_j());
  EXPECT_EQ(a.total_violations(), b.total_violations());
  EXPECT_DOUBLE_EQ(a.wall_time_s, b.wall_time_s);
}

TEST(IntervalSim, ObserverSeesEveryInterval) {
  const IntervalSimulator sim(db());
  std::uint64_t observed = 0;
  double energy_sum = 0.0;
  const RunResult r =
      sim.run(mix2("povray", "sjeng"), cfg(rm::RmPolicy::Idle),
              [&](const IntervalObservation& obs) {
                ++observed;
                energy_sum += obs.energy_j;
                EXPECT_GE(obs.core, 0);
                EXPECT_LT(obs.core, 2);
                EXPECT_GT(obs.duration_s, 0.0);
              });
  EXPECT_EQ(observed, r.total_intervals());
  double counted = 0.0;
  for (const CoreResult& c : r.cores) counted += c.counted_energy_j;
  EXPECT_NEAR(energy_sum, counted, counted * 1e-9);
}

TEST(IntervalSim, OverheadsIncreaseEnergy) {
  SimOptions with;
  with.model_overheads = true;
  SimOptions without;
  without.model_overheads = false;
  const IntervalSimulator sim_with(db(), with);
  const IntervalSimulator sim_without(db(), without);
  const auto mix = mix2("mcf", "libquantum");
  const RunResult a = sim_with.run(mix, cfg(rm::RmPolicy::Rm3));
  const RunResult b = sim_without.run(mix, cfg(rm::RmPolicy::Rm3));
  EXPECT_GE(a.total_energy_j(), b.total_energy_j());
}

TEST(IntervalSim, ShorterAppRestartsUntilBound) {
  // povray (32 intervals) paired with mcf (64): povray must restart and
  // execute as many intervals as the longer app requires.
  const IntervalSimulator sim(db());
  const RunResult r = sim.run(mix2("povray", "mcf"), cfg(rm::RmPolicy::Idle));
  const int povray = db().suite().index_of("povray");
  ASSERT_EQ(r.cores[0].app, povray);
  EXPECT_GT(r.cores[0].intervals,
            static_cast<std::uint64_t>(
                db().suite().app(povray).length_intervals()));
}

/// Violation statistics recomputed from the observer stream against the
/// alpha-relaxed target (Eq. 6 with T_base * alpha as the reference).
struct ViolationTally {
  std::uint64_t count = 0;
  double sum = 0.0;
  double max = 0.0;
};

ViolationTally expected_violations(const RunResult& r, double alpha,
                                   double epsilon,
                                   const std::vector<IntervalObservation>& obs) {
  (void)r;
  ViolationTally t;
  for (const IntervalObservation& o : obs) {
    const double target = db().baseline_time(o.app, o.phase) * alpha;
    if (o.duration_s > target * (1.0 + epsilon)) {
      ++t.count;
      const double v = (o.duration_s - target) / target;
      t.sum += v;
      t.max = std::max(t.max, v);
    }
  }
  return t;
}

// Regression for the alpha-relative accounting fix: with a relaxed QoS
// constraint (alpha = 1.1) BOTH the violation condition and the Eq. 6
// magnitude must be measured against the alpha-relaxed target. The old code
// triggered on the relaxed target but accumulated (T - T_base) / T_base,
// overstating every magnitude by roughly the relaxation factor.
TEST(IntervalSim, ViolationMagnitudeMeasuredAgainstAlphaRelaxedTarget) {
  SimOptions opt;
  opt.qos_alpha_override = 1.1;
  const IntervalSimulator sim(db(), opt);
  std::vector<IntervalObservation> observations;
  // Model1 ignores MLP entirely, so its mispredictions produce violations
  // even under a relaxed constraint.
  const RunResult r =
      sim.run(mix2("mcf", "xalancbmk"), cfg(rm::RmPolicy::Rm3, rm::PerfModelKind::Model1),
              [&](const IntervalObservation& o) { observations.push_back(o); });

  const ViolationTally expect =
      expected_violations(r, 1.1, opt.qos_epsilon, observations);
  ASSERT_GT(expect.count, 0u) << "mix produces no violations at alpha=1.1; "
                                 "the regression test would be vacuous";

  std::uint64_t count = 0;
  double sum = 0.0;
  double max = 0.0;
  for (const CoreResult& c : r.cores) {
    count += c.qos_violations;
    sum += c.violation_sum;
    max = std::max(max, c.violation_max);
  }
  EXPECT_EQ(count, expect.count);
  EXPECT_DOUBLE_EQ(sum, expect.sum);
  EXPECT_DOUBLE_EQ(max, expect.max);

  // The base-relative (buggy) magnitude is strictly larger for every
  // violating interval; equality with the alpha-relative tally pins the fix.
  const ViolationTally base_relative =
      expected_violations(r, 1.0, (1.1 / 1.0) * (1.0 + opt.qos_epsilon) - 1.0,
                          observations);
  EXPECT_GT(base_relative.sum, expect.sum);
}

// At alpha = 1 the relaxed target IS the baseline time, so the fix must not
// move any number: magnitudes still equal the base-relative Eq. 6 values
// (this is why the alpha=1 golden CSV is unaffected by the fix).
TEST(IntervalSim, AlphaOneViolationAccountingUnchanged) {
  SimOptions opt;
  opt.qos_alpha_override = 1.0;
  const IntervalSimulator sim(db(), opt);
  std::vector<IntervalObservation> observations;
  const RunResult r =
      sim.run(mix2("mcf", "xalancbmk"), cfg(rm::RmPolicy::Rm3, rm::PerfModelKind::Model1),
              [&](const IntervalObservation& o) { observations.push_back(o); });
  const ViolationTally expect =
      expected_violations(r, 1.0, opt.qos_epsilon, observations);
  std::uint64_t count = 0;
  double sum = 0.0;
  for (const CoreResult& c : r.cores) {
    count += c.qos_violations;
    sum += c.violation_sum;
  }
  EXPECT_EQ(count, expect.count);
  EXPECT_DOUBLE_EQ(sum, expect.sum);

  // An explicit alpha=1 override and the database default (qos_alpha = 1)
  // must also be indistinguishable.
  const IntervalSimulator sim_default(db());
  const RunResult d = sim_default.run(mix2("mcf", "xalancbmk"),
                                      cfg(rm::RmPolicy::Rm3, rm::PerfModelKind::Model1));
  EXPECT_EQ(d.total_violations(), r.total_violations());
  EXPECT_DOUBLE_EQ(d.total_energy_j(), r.total_energy_j());
}

TEST(IntervalSim, ScratchReuseProducesIdenticalResults) {
  // One RunScratch threaded through several runs (different mixes, policies
  // and core states) must not change a single bit of any result.
  const IntervalSimulator sim(db());
  RunScratch scratch;
  const auto mix_a = mix2("mcf", "libquantum");
  const auto mix_b = mix2("gcc", "namd");
  const RunResult a1 = sim.run(mix_a, cfg(rm::RmPolicy::Rm3), {}, &scratch);
  const RunResult b1 = sim.run(mix_b, cfg(rm::RmPolicy::Rm2), {}, &scratch);
  const RunResult a2 = sim.run(mix_a, cfg(rm::RmPolicy::Rm3));
  const RunResult b2 = sim.run(mix_b, cfg(rm::RmPolicy::Rm2));
  EXPECT_EQ(a1.total_energy_j(), a2.total_energy_j());
  EXPECT_EQ(a1.wall_time_s, a2.wall_time_s);
  EXPECT_EQ(a1.total_violations(), a2.total_violations());
  EXPECT_EQ(a1.rm_ops, a2.rm_ops);
  EXPECT_EQ(b1.total_energy_j(), b2.total_energy_j());
  EXPECT_EQ(b1.wall_time_s, b2.wall_time_s);
  EXPECT_EQ(b1.total_violations(), b2.total_violations());
  EXPECT_EQ(b1.rm_ops, b2.rm_ops);
}

TEST(IntervalSim, SavingsAgainstSelfIsZero) {
  const IntervalSimulator sim(db());
  const RunResult idle = sim.run(mix2("gcc", "wrf"), cfg(rm::RmPolicy::Idle));
  EXPECT_DOUBLE_EQ(energy_savings(idle, idle), 0.0);
}

TEST(IntervalSim, ActiveRmSavesEnergyOnFavourableMix) {
  const IntervalSimulator sim(db());
  const auto mix = mix2("mcf", "libquantum");
  const RunResult idle = sim.run(mix, cfg(rm::RmPolicy::Idle));
  const RunResult rm3 = sim.run(mix, cfg(rm::RmPolicy::Rm3));
  EXPECT_GT(energy_savings(rm3, idle), 0.05);
}

}  // namespace
}  // namespace qosrm::rmsim
