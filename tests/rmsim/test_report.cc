// Figure-report subsystem tests: aggregate math on synthetic rows, JSON
// byte-stability, alpha filtering, atomic writes, and report_main's strict
// CLI validation (unknown flags, bad --alphas lists, malformed
// --fingerprint, fingerprint-mismatched part inputs rejected before any
// report work) - the same conventions sweep_main enforces.
#include "rmsim/report.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "rmsim/shard.hh"
#include "rmsim/sweep.hh"

namespace qosrm::rmsim {
namespace {

CliArgs parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "report_main");
  return CliArgs(static_cast<int>(argv.size()),
                 const_cast<char**>(argv.data()));
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

SweepRow make_row(const std::string& workload, workload::Scenario scenario,
                  rm::RmPolicy policy, rm::PerfModelKind model, double alpha,
                  double savings, std::uint64_t intervals,
                  std::uint64_t violations, double violation_sum,
                  double violation_max) {
  SweepRow row;
  row.workload = workload;
  row.scenario = scenario;
  row.policy = policy;
  row.model = model;
  row.qos_alpha = alpha;
  row.result.savings = savings;
  RunResult& run = row.result.run;
  run.workload = workload;
  run.scenario = scenario;
  run.policy = policy;
  run.model = model;
  CoreResult core;
  core.app = 0;
  core.intervals = intervals;
  core.qos_violations = violations;
  core.violation_sum = violation_sum;
  core.violation_max = violation_max;
  run.cores = {core};
  return row;
}

/// 2 mixes x {Idle, RM3} x {Model3, Perfect} x 2 alphas, in grid order
/// (alpha-major, mix-minor). Savings are synthetic but distinct per cell.
struct SyntheticGrid {
  GridShape shape{2, 2, 2, 2};
  std::vector<SweepRow> rows;
  std::array<double, 4> weights{0.47, 0.221, 0.221, 0.088};

  SyntheticGrid() {
    const std::vector<rm::RmPolicy> policies = {rm::RmPolicy::Idle,
                                                rm::RmPolicy::Rm3};
    const std::vector<rm::PerfModelKind> models = {rm::PerfModelKind::Model3,
                                                   rm::PerfModelKind::Perfect};
    const std::vector<double> alphas = {1.0, 1.1};
    double value = 0.0;
    for (std::size_t ai = 0; ai < alphas.size(); ++ai) {
      for (std::size_t ki = 0; ki < models.size(); ++ki) {
        for (std::size_t pi = 0; pi < policies.size(); ++pi) {
          for (std::size_t mi = 0; mi < 2; ++mi) {
            value += 0.01;
            const auto scenario =
                mi == 0 ? workload::Scenario::One : workload::Scenario::Three;
            rows.push_back(make_row(
                mi == 0 ? "W1" : "W2", scenario, policies[pi], models[ki],
                alphas[ai], value, /*intervals=*/100 + mi,
                /*violations=*/mi == 0 ? 4 : 0,
                /*violation_sum=*/mi == 0 ? 0.2 : 0.0,
                /*violation_max=*/mi == 0 ? 0.09 : 0.0));
          }
        }
      }
    }
  }
};

TEST(FigureReport, Fig6AggregatesMatchTheSharedWeightedAverage) {
  const SyntheticGrid g;
  const FigureReport report =
      build_figure_report(g.rows, g.shape, 0xabcdu, g.weights);

  ASSERT_EQ(report.fig6.size(), 8u);  // 2 policies x 2 models x 2 alphas
  ASSERT_EQ(report.workloads, (std::vector<std::string>{"W1", "W2"}));
  ASSERT_EQ(report.qos_alphas, (std::vector<double>{1.0, 1.1}));
  EXPECT_EQ(report.fingerprint, 0xabcdu);

  // Entry 1 = (alpha 1.0, Model3, RM3): rows 2 and 3 of the synthetic grid.
  const Fig6Entry& e = report.fig6[1];
  EXPECT_EQ(e.policy, rm::RmPolicy::Rm3);
  EXPECT_EQ(e.model, rm::PerfModelKind::Model3);
  EXPECT_DOUBLE_EQ(e.qos_alpha, 1.0);
  const double s1 = g.rows[2].result.savings;
  const double s2 = g.rows[3].result.savings;
  EXPECT_EQ(e.per_mix_savings, (std::vector<double>{s1, s2}));
  EXPECT_DOUBLE_EQ(e.mean_savings, (s1 + s2) / 2.0);
  EXPECT_DOUBLE_EQ(e.max_savings, s2);
  EXPECT_DOUBLE_EQ(e.scenario_mean_savings[0], s1);
  EXPECT_DOUBLE_EQ(e.scenario_mean_savings[2], s2);
  EXPECT_DOUBLE_EQ(e.scenario_mean_savings[1], 0.0);  // no scenario-2 mixes
  EXPECT_DOUBLE_EQ(e.weighted_savings,
                   weighted_average_savings(
                       {workload::Scenario::One, workload::Scenario::Three},
                       {s1, s2}, g.weights));
}

TEST(FigureReport, Fig7CountsViolationsAndMagnitudes) {
  const SyntheticGrid g;
  const FigureReport report =
      build_figure_report(g.rows, g.shape, 1u, g.weights);

  ASSERT_EQ(report.fig7.size(), 8u);
  const Fig7Entry& e = report.fig7[0];  // (alpha 1.0, Model3, Idle)
  EXPECT_EQ(e.intervals, 201u);         // 100 + 101
  EXPECT_EQ(e.violations, 4u);
  EXPECT_DOUBLE_EQ(e.violation_rate, 4.0 / 201.0);
  // Uniform mean of the per-mix rates: (4/100 + 0/101) / 2.
  EXPECT_DOUBLE_EQ(e.mean_violation_rate, (4.0 / 100.0) / 2.0);
  EXPECT_DOUBLE_EQ(e.mean_magnitude, 0.2 / 4.0);
  EXPECT_DOUBLE_EQ(e.max_magnitude, 0.09);
  EXPECT_EQ(e.violating_mixes, 1u);
}

TEST(FigureReport, Fig9ReportsOracleDeltasOnlyWithPerfectAxis) {
  const SyntheticGrid g;
  const FigureReport report =
      build_figure_report(g.rows, g.shape, 1u, g.weights);

  // One delta per (alpha, non-Perfect model, policy).
  ASSERT_EQ(report.fig9.size(), 4u);
  const Fig9Entry& e = report.fig9[1];  // (alpha 1.0, Model3, RM3)
  EXPECT_EQ(e.model, rm::PerfModelKind::Model3);
  EXPECT_EQ(e.policy, rm::RmPolicy::Rm3);
  const Fig6Entry& model6 = report.fig6[1];
  const Fig6Entry& oracle6 = report.fig6[3];
  EXPECT_DOUBLE_EQ(e.weighted_savings, model6.weighted_savings);
  EXPECT_DOUBLE_EQ(e.oracle_weighted_savings, oracle6.weighted_savings);
  EXPECT_DOUBLE_EQ(e.weighted_gap,
                   oracle6.weighted_savings - model6.weighted_savings);

  // Without the Perfect axis the section is empty (Model3-only sub-grid).
  std::vector<SweepRow> model3_only;
  GridShape shape = g.shape;
  shape.models = 1;
  for (const SweepRow& row : g.rows) {
    if (row.model == rm::PerfModelKind::Model3) model3_only.push_back(row);
  }
  const FigureReport no_oracle =
      build_figure_report(model3_only, shape, 1u, g.weights);
  EXPECT_TRUE(no_oracle.fig9.empty());
  EXPECT_EQ(no_oracle.fig6.size(), 4u);
}

TEST(FigureReport, JsonIsByteStableAndStampsTheFingerprint) {
  const SyntheticGrid g;
  const FigureReport a =
      build_figure_report(g.rows, g.shape, 0xdeadbeefcafe0123u, g.weights);
  const FigureReport b =
      build_figure_report(g.rows, g.shape, 0xdeadbeefcafe0123u, g.weights);
  const std::string json = figure_report_json(a);
  EXPECT_EQ(json, figure_report_json(b));
  EXPECT_NE(json.find("\"fingerprint\": \"deadbeefcafe0123\""),
            std::string::npos);
  // A different fingerprint changes the stamp (and nothing silently strips it).
  const FigureReport c = build_figure_report(g.rows, g.shape, 1u, g.weights);
  EXPECT_NE(json, figure_report_json(c));
}

TEST(FigureReport, AlphaFilterSelectsSubGridInRequestOrder) {
  const SyntheticGrid g;
  GridShape shape = g.shape;
  std::string error;
  const auto filtered =
      filter_rows_to_alphas(g.rows, &shape, {1.1, 1.0}, &error);
  ASSERT_TRUE(filtered.has_value()) << error;
  EXPECT_EQ(shape.alphas, 2u);
  ASSERT_EQ(filtered->size(), g.rows.size());
  // Requested order: the 1.1 block now comes first.
  EXPECT_DOUBLE_EQ(filtered->front().qos_alpha, 1.1);
  EXPECT_DOUBLE_EQ(filtered->back().qos_alpha, 1.0);

  shape = g.shape;
  const auto single = filter_rows_to_alphas(g.rows, &shape, {1.1}, &error);
  ASSERT_TRUE(single.has_value()) << error;
  EXPECT_EQ(shape.alphas, 1u);
  EXPECT_EQ(single->size(), g.rows.size() / 2);
  for (const SweepRow& row : *single) EXPECT_DOUBLE_EQ(row.qos_alpha, 1.1);
}

TEST(FigureReport, AlphaFilterRejectsUnknownAndDuplicateValues) {
  const SyntheticGrid g;
  GridShape shape = g.shape;
  std::string error;
  EXPECT_FALSE(
      filter_rows_to_alphas(g.rows, &shape, {1.05}, &error).has_value());
  EXPECT_NE(error.find("not on the sweep's alpha axis"), std::string::npos);

  shape = g.shape;
  EXPECT_FALSE(
      filter_rows_to_alphas(g.rows, &shape, {1.0, 1.0}, &error).has_value());
  EXPECT_NE(error.find("given twice"), std::string::npos);
}

TEST(FigureReport, JsonWriteIsAtomicAndLeavesNoTempFiles) {
  const SyntheticGrid g;
  const FigureReport report =
      build_figure_report(g.rows, g.shape, 7u, g.weights);
  // A private subdirectory: scanning the shared TempDir would race with
  // other test binaries' in-flight temp files under parallel ctest.
  const std::string dir = ::testing::TempDir() + "/report_atomic_check";
  std::filesystem::create_directory(dir);
  const std::string path = dir + "/report_atomic_check.json";

  std::string error;
  ASSERT_TRUE(write_report_json(report, path, &error)) << error;
  EXPECT_EQ(slurp(path), figure_report_json(report));
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().string().find(".tmp."), std::string::npos)
        << "temp file left behind: " << entry.path();
  }
  std::filesystem::remove_all(dir);

  // A failing write reports an error and leaves no target file behind.
  EXPECT_FALSE(write_report_json(
      report, "/nonexistent-dir/report.json", &error));
  EXPECT_FALSE(std::filesystem::exists("/nonexistent-dir/report.json"));
}

TEST(ReportCli, RejectsUnknownFlagsAndMissingInputs) {
  ReportCliOptions options;
  std::string error;

  EXPECT_FALSE(parse_report_cli(parse({"--bogus=1", "--json=r.json", "p.qospart"}),
                                &options, &error));
  EXPECT_NE(error.find("unknown flag --bogus"), std::string::npos);

  EXPECT_FALSE(parse_report_cli(parse({"--json=r.json"}), &options, &error));
  EXPECT_NE(error.find("no part files"), std::string::npos);

  EXPECT_FALSE(parse_report_cli(parse({"p.qospart"}), &options, &error));
  EXPECT_NE(error.find("no output requested"), std::string::npos);
}

TEST(ReportCli, RejectsBadAlphaLists) {
  ReportCliOptions options;
  std::string error;
  EXPECT_FALSE(parse_report_cli(
      parse({"--json=r.json", "--alphas=1.0,zap", "p.qospart"}), &options,
      &error));
  EXPECT_NE(error.find("bad --alphas entry 'zap'"), std::string::npos);

  EXPECT_FALSE(parse_report_cli(
      parse({"--json=r.json", "--alphas=-1", "p.qospart"}), &options, &error));
  EXPECT_NE(error.find("bad --alphas entry '-1'"), std::string::npos);

  EXPECT_FALSE(parse_report_cli(
      parse({"--json=r.json", "--alphas=", "p.qospart"}), &options, &error));
  EXPECT_NE(error.find("empty --alphas entry"), std::string::npos);
}

TEST(ReportCli, RejectsMalformedFingerprints) {
  ReportCliOptions options;
  std::string error;
  for (const char* bad : {"--fingerprint=xyz", "--fingerprint=",
                          "--fingerprint=0123456789abcdef0"}) {
    EXPECT_FALSE(parse_report_cli(parse({"--json=r.json", bad, "p.qospart"}),
                                  &options, &error))
        << bad;
    EXPECT_NE(error.find("bad --fingerprint"), std::string::npos);
  }
}

TEST(ReportCli, ParsesAFullCommandLine) {
  ReportCliOptions options;
  std::string error;
  ASSERT_TRUE(parse_report_cli(
      parse({"--json=r.json", "--fig6-csv=f6.csv", "--fig9-csv=f9.csv",
             "--alphas=1.0,1.1", "--fingerprint=00ff00ff00ff00ff", "a.qospart",
             "b.qospart"}),
      &options, &error))
      << error;
  EXPECT_EQ(options.parts, (std::vector<std::string>{"a.qospart", "b.qospart"}));
  EXPECT_EQ(options.json_path, "r.json");
  EXPECT_EQ(options.fig6_csv, "f6.csv");
  EXPECT_EQ(options.fig9_csv, "f9.csv");
  EXPECT_EQ(options.alphas, (std::vector<double>{1.0, 1.1}));
  ASSERT_TRUE(options.expected_fingerprint.has_value());
  EXPECT_EQ(*options.expected_fingerprint, 0x00ff00ff00ff00ffull);
  EXPECT_FALSE(options.print);

  // Bare --print must not swallow the first part path as its value.
  ASSERT_TRUE(parse_report_cli(parse({"--print", "a.qospart"}), &options,
                               &error))
      << error;
  EXPECT_TRUE(options.print);
  EXPECT_EQ(options.parts, (std::vector<std::string>{"a.qospart"}));
}

TEST(ReportCli, FingerprintMismatchedPartsAreRejectedBeforeAnyWork) {
  // A valid part whose fingerprint differs from the pinned one must be
  // refused by the merge step report_main runs first - no report output can
  // ever mix rows from a foreign sweep.
  SweepPart part;
  part.fingerprint = 0x1111u;
  part.shape = GridShape{2, 1, 1, 1};
  part.shard_index = 0;
  part.shard_count = 1;
  part.range = shard_range(2, 0, 1);
  part.rows = {make_row("W1", workload::Scenario::One, rm::RmPolicy::Idle,
                        rm::PerfModelKind::Model3, 1.0, 0.0, 10, 0, 0.0, 0.0),
               make_row("W2", workload::Scenario::Two, rm::RmPolicy::Idle,
                        rm::PerfModelKind::Model3, 1.0, 0.0, 10, 0, 0.0, 0.0)};

  const std::string path = ::testing::TempDir() + "/foreign.qospart";
  std::string error;
  ASSERT_TRUE(save_sweep_part(part, path, &error)) << error;

  const std::uint64_t expected = 0x2222u;
  EXPECT_FALSE(merge_part_files({path}, &expected, &error).has_value());
  EXPECT_NE(error.find("different sweep"), std::string::npos);

  // The same part merges fine when the pinned fingerprint matches, and the
  // identity out-param carries the stamp the report will embed.
  SweepIdentity identity;
  const std::uint64_t match = 0x1111u;
  ASSERT_TRUE(merge_part_files({path}, &match, &error, &identity).has_value())
      << error;
  EXPECT_EQ(identity.fingerprint, 0x1111u);
  EXPECT_EQ(identity.shape, (GridShape{2, 1, 1, 1}));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace qosrm::rmsim
