// Tests for the extension features beyond the paper's fixed operating
// point: QoS relaxation (alpha), knob-restricted RMs and writeback traffic.
#include <gtest/gtest.h>

#include "rmsim/experiment.hh"
#include "support/shared_db.hh"

namespace qosrm::rmsim {
namespace {

const workload::SimDb& db() { return qosrm::testing::shared_db(); }

workload::WorkloadMix mix2(const char* a, const char* b) {
  workload::WorkloadMix mix;
  mix.name = std::string(a) + "+" + b;
  mix.scenario = workload::Scenario::One;
  mix.app_ids = {db().suite().index_of(a), db().suite().index_of(b)};
  return mix;
}

TEST(QosAlpha, RelaxedConstraintUnlocksMoreSavings) {
  const auto mix = mix2("mcf", "libquantum");
  rm::RmConfig cfg;
  cfg.policy = rm::RmPolicy::Rm3;
  cfg.model = rm::PerfModelKind::Model3;

  SimOptions strict;  // alpha = 1 (paper operating point)
  SimOptions relaxed;
  relaxed.qos_alpha_override = 1.15;

  ExperimentRunner strict_runner(db(), strict);
  ExperimentRunner relaxed_runner(db(), relaxed);
  const double s_strict = strict_runner.run(mix, cfg).savings;
  const double s_relaxed = relaxed_runner.run(mix, cfg).savings;
  EXPECT_GT(s_relaxed, s_strict + 0.01);
}

TEST(QosAlpha, RelaxedRunsSlowerButWithinBound) {
  const auto mix = mix2("mcf", "libquantum");
  rm::RmConfig cfg;
  cfg.policy = rm::RmPolicy::Rm2;
  cfg.model = rm::PerfModelKind::Model3;
  SimOptions relaxed;
  relaxed.qos_alpha_override = 1.10;
  ExperimentRunner runner(db(), relaxed);
  const SavingsResult r = runner.run(mix, cfg);
  const RunResult& idle = runner.idle_reference(mix);
  // Wall time grows under relaxation but stays within ~alpha of the idle run.
  EXPECT_GT(r.run.wall_time_s, idle.wall_time_s * 0.99);
  EXPECT_LT(r.run.wall_time_s, idle.wall_time_s * 1.15);
}

TEST(KnobOverride, ResizeOnlyRmKeepsBaselineFrequency) {
  // w + c without DVFS: the frequency knob must stay untouched. Note that
  // upsizing alone rarely pays off - a bigger core at the baseline VF costs
  // more switching energy with no way to convert the time gain - which is
  // exactly the coordination argument of the paper (see the knob-ablation
  // bench); so no resize activity is required here, only the invariant.
  rm::RmConfig cfg;
  cfg.policy = rm::RmPolicy::Rm3;
  cfg.model = rm::PerfModelKind::Model3;
  cfg.knobs = rm::LocalOptOptions{false, true};  // w + c, no DVFS

  const IntervalSimulator sim(db());
  std::uint64_t observed = 0;
  const RunResult r = sim.run(mix2("bwaves", "libquantum"), cfg,
                              [&](const IntervalObservation& obs) {
                                ++observed;
                                EXPECT_EQ(obs.setting.f_idx,
                                          arch::VfTable::kBaselineIndex);
                              });
  EXPECT_GT(observed, 0u);
  EXPECT_GT(r.total_intervals(), 0u);
}

TEST(KnobOverride, FullKnobsDominateRestrictedOnes) {
  const auto mix = mix2("mcf", "libquantum");
  ExperimentRunner runner(db());
  double best_restricted = -1.0;
  for (const rm::LocalOptOptions knobs :
       {rm::LocalOptOptions{false, false}, rm::LocalOptOptions{true, false},
        rm::LocalOptOptions{false, true}}) {
    rm::RmConfig cfg;
    cfg.policy = rm::RmPolicy::Rm3;
    cfg.knobs = knobs;
    best_restricted = std::max(best_restricted, runner.run(mix, cfg).savings);
  }
  rm::RmConfig full;
  full.policy = rm::RmPolicy::Rm3;
  EXPECT_GT(runner.run(mix, full).savings, best_restricted - 0.01);
}

TEST(Writebacks, CountedInPhaseStats) {
  const workload::PhaseStats& st = db().stats(db().suite().index_of("lbm"), 0);
  EXPECT_GT(st.write_frac, 0.3);  // lbm is write-heavy
  EXPECT_NEAR(st.writebacks(8), st.misses[7] * st.write_frac, 1e-9);
  EXPECT_NEAR(st.dram_accesses(8), st.misses[7] * (1.0 + st.write_frac), 1e-9);
}

TEST(Writebacks, RaiseMemoryEnergy) {
  // Energy with writebacks must exceed the fills-only cost.
  const int lbm = db().suite().index_of("lbm");
  const workload::Setting base = workload::baseline_setting(db().system());
  const power::IntervalEnergy e = db().energy(lbm, 0, base);
  const workload::PhaseStats& st = db().stats(lbm, 0);
  const double fills_only =
      st.misses[7] * db().power().params().mem_energy_joule;
  EXPECT_GT(e.memory_j, fills_only * 1.2);
}

TEST(Writebacks, FewerWaysMeanMoreWritebackTraffic) {
  const workload::PhaseStats& st = db().stats(db().suite().index_of("mcf"), 0);
  EXPECT_GE(st.writebacks(4), st.writebacks(12));
}

}  // namespace
}  // namespace qosrm::rmsim
