// End-to-end sharded-sweep equivalence on the real simulation database:
// worker row ranges must be bit-identical to the corresponding slice of a
// single-process run, and a save/load/merge cycle over N parts must
// reproduce the single-process CSV byte for byte. This is the in-process
// half of the guarantee; CI runs the same check across actual worker
// processes (sweep_main --workers).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "rmsim/shard.hh"
#include "rmsim/sweep.hh"
#include "support/shared_db.hh"
#include "workload/db_io.hh"
#include "workload/workload_gen.hh"

namespace qosrm::rmsim {
namespace {

SweepGrid two_core_grid() {
  const workload::SimDb& db = testing::shared_db(2);
  workload::WorkloadGenOptions gen;
  gen.cores = 2;
  gen.per_scenario = 1;
  SweepGrid grid;
  grid.mixes = workload::generate_workloads(db.suite(), gen);
  grid.policies = {rm::RmPolicy::Idle, rm::RmPolicy::Rm1, rm::RmPolicy::Rm2,
                   rm::RmPolicy::Rm3};
  grid.models = {rm::PerfModelKind::Model3};
  grid.qos_alphas = {0.0};
  return grid;
}

std::uint64_t grid_fingerprint(const SweepGrid& grid) {
  const workload::SimDb& db = testing::shared_db(2);
  return sweep_fingerprint(
      grid, SimOptions{},
      workload::simdb_fingerprint(db.suite(), db.system(), db.phase_options()));
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(ShardE2E, RunRangeMatchesFullRunSlice) {
  const SweepGrid grid = two_core_grid();
  SweepRunner runner(testing::shared_db(2), {});
  const SweepResult full = runner.run(grid);

  for (const ShardRange& range : shard_ranges(grid.size(), 3)) {
    const std::vector<SweepRow> slice =
        runner.run_range(grid, range.begin, range.end);
    ASSERT_EQ(slice.size(), range.size());
    for (std::size_t i = 0; i < slice.size(); ++i) {
      const SweepRow& a = slice[i];
      const SweepRow& b = full.rows[range.begin + i];
      EXPECT_EQ(a.workload, b.workload);
      EXPECT_EQ(a.policy, b.policy);
      EXPECT_EQ(a.qos_alpha, b.qos_alpha);
      // Bit-identical outcomes, not approximately equal ones.
      EXPECT_EQ(a.result.savings, b.result.savings);
      EXPECT_EQ(a.result.run.uncore_energy_j, b.result.run.uncore_energy_j);
      EXPECT_EQ(a.result.run.wall_time_s, b.result.run.wall_time_s);
      EXPECT_EQ(a.result.run.total_energy_j(), b.result.run.total_energy_j());
      EXPECT_EQ(a.result.run.total_violations(),
                b.result.run.total_violations());
    }
  }
}

TEST(ShardE2E, FourShardSaveLoadMergeReproducesCsvByteForByte) {
  const SweepGrid grid = two_core_grid();
  SweepRunner runner(testing::shared_db(2), {});
  const SweepResult full = runner.run(grid);

  const std::string dir = ::testing::TempDir();
  const std::string single_csv = dir + "/shard_e2e_single.csv";
  write_rows_csv(full, single_csv);

  // Worker side: each shard runs its own range and writes a real part file.
  const std::uint64_t fp = grid_fingerprint(grid);
  const std::string prefix = dir + "/shard_e2e_rows.csv";
  constexpr std::size_t kShards = 4;
  for (std::size_t i = 0; i < kShards; ++i) {
    SweepPart part;
    part.fingerprint = fp;
    part.shape = grid.shape();
    part.shard_index = i;
    part.shard_count = kShards;
    part.range = shard_range(grid.size(), i, kShards);
    part.rows = runner.run_range(grid, part.range.begin, part.range.end);
    std::string error;
    ASSERT_TRUE(
        save_sweep_part(part, part_path(prefix, i, kShards), &error))
        << error;
  }

  // Merger side: load from disk, merge, write the same CSVs.
  std::vector<SweepPart> parts;
  for (std::size_t i = 0; i < kShards; ++i) {
    std::string error;
    std::optional<SweepPart> part =
        load_sweep_part(part_path(prefix, i, kShards), &error);
    ASSERT_TRUE(part.has_value()) << error;
    EXPECT_EQ(part->fingerprint, fp);
    parts.push_back(std::move(*part));
  }
  std::string error;
  std::optional<std::vector<SweepRow>> merged_rows =
      merge_sweep_parts(std::move(parts), &error);
  ASSERT_TRUE(merged_rows.has_value()) << error;

  SweepResult merged;
  merged.rows = std::move(*merged_rows);
  merged.aggregates = compute_aggregates(
      merged.rows, grid.shape(),
      scenario_weights(testing::shared_db(2).suite()));
  const std::string merged_csv = dir + "/shard_e2e_merged.csv";
  write_rows_csv(merged, merged_csv);

  const std::string single_bytes = slurp(single_csv);
  EXPECT_FALSE(single_bytes.empty());
  EXPECT_EQ(single_bytes, slurp(merged_csv));

  // The recomputed aggregates are bit-identical to the in-process ones too.
  ASSERT_EQ(merged.aggregates.size(), full.aggregates.size());
  for (std::size_t i = 0; i < full.aggregates.size(); ++i) {
    EXPECT_EQ(merged.aggregates[i].policy, full.aggregates[i].policy);
    EXPECT_EQ(merged.aggregates[i].weighted_savings,
              full.aggregates[i].weighted_savings);
    EXPECT_EQ(merged.aggregates[i].mean_savings,
              full.aggregates[i].mean_savings);
    EXPECT_EQ(merged.aggregates[i].mean_violation_rate,
              full.aggregates[i].mean_violation_rate);
  }

  std::remove(single_csv.c_str());
  std::remove(merged_csv.c_str());
  for (std::size_t i = 0; i < kShards; ++i) {
    std::remove(part_path(prefix, i, kShards).c_str());
  }
}

TEST(ShardE2E, FingerprintSeparatesDifferentSweeps) {
  const SweepGrid grid = two_core_grid();
  const std::uint64_t fp = grid_fingerprint(grid);

  SweepGrid other = grid;
  other.qos_alphas = {1.1};
  EXPECT_NE(grid_fingerprint(other), fp);

  other = grid;
  other.policies = {rm::RmPolicy::Rm3};
  EXPECT_NE(grid_fingerprint(other), fp);

  other = grid;
  other.mixes.pop_back();
  EXPECT_NE(grid_fingerprint(other), fp);

  SimOptions no_overheads;
  no_overheads.model_overheads = false;
  const workload::SimDb& db = testing::shared_db(2);
  const std::uint64_t db_fp = workload::simdb_fingerprint(
      db.suite(), db.system(), db.phase_options());
  EXPECT_NE(sweep_fingerprint(grid, no_overheads, db_fp), fp);
  EXPECT_NE(sweep_fingerprint(grid, SimOptions{}, db_fp ^ 1), fp);
}

}  // namespace
}  // namespace qosrm::rmsim
