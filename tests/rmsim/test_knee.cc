// Knee detection and the aggregate service knee report, on hand-built
// curves and synthetic service rows - no simulation database needed, so
// this binary stays in the fast suite.
#include "rmsim/report.hh"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rmsim/service.hh"

namespace qosrm::rmsim {
namespace {

TEST(KneeDetection, MonotoneCurveCrossesOnce) {
  // The textbook saturation curve: flat, then takes off. The knee is the
  // FIRST load past the threshold.
  const std::vector<double> p99 = {0.0, 0.01, 0.02, 0.08, 0.35, 0.9};
  EXPECT_EQ(find_knee_index(p99, 0.1), 4);
  EXPECT_EQ(find_knee_index(p99, 0.05), 3);
  EXPECT_EQ(find_knee_index(p99, 0.005), 1);
}

TEST(KneeDetection, NonMonotoneCurveReportsFirstCrossing) {
  // A burst-driven spike that settles back down and takes off later: the
  // conservative (first) crossing wins, not the final one.
  const std::vector<double> p99 = {0.02, 0.2, 0.05, 0.04, 0.3, 0.8};
  EXPECT_EQ(find_knee_index(p99, 0.1), 1);
  // Threshold above the early spike: the knee moves to the late take-off.
  EXPECT_EQ(find_knee_index(p99, 0.25), 4);
}

TEST(KneeDetection, FlatCurveHasNoKnee) {
  const std::vector<double> p99 = {0.0, 0.0, 0.01, 0.02};
  EXPECT_EQ(find_knee_index(p99, 0.1), -1);
  EXPECT_EQ(find_knee_index({}, 0.1), -1);
}

TEST(KneeDetection, ThresholdIsExclusive) {
  // Exactly AT the threshold is not past it - "crosses" means strictly
  // greater, so a curve that plateaus at the threshold has no knee.
  const std::vector<double> p99 = {0.1, 0.1, 0.1};
  EXPECT_EQ(find_knee_index(p99, 0.1), -1);
  EXPECT_EQ(find_knee_index({0.1, 0.1000001}, 0.1), 1);
}

/// Synthetic grid-order rows: p99 rises with load, scaled per admission so
/// different curves knee at different loads.
std::vector<ServiceRow> synthetic_rows(const ServiceGridShape& shape,
                                       const std::vector<double>& loads) {
  std::vector<ServiceRow> rows(shape.size());
  for (std::size_t idx = 0; idx < rows.size(); ++idx) {
    std::size_t rest = idx;
    const std::size_t pi = rest % shape.patterns;
    rest /= shape.patterns;
    const std::size_t li = rest % shape.loads;
    rest /= shape.loads;
    const std::size_t di = rest % shape.admissions;
    rest /= shape.admissions;
    const std::size_t oi = rest % shape.policies;
    const std::size_t ai = rest / shape.policies;

    ServiceRow& row = rows[idx];
    row.pattern = static_cast<workload::ArrivalPattern>(pi);
    row.load = loads[li];
    row.admission = static_cast<AdmissionPolicy>(di);
    row.policy = rm::RmPolicy::Rm3;
    row.qos_alpha = 1.0 + 0.05 * static_cast<double>(ai);
    ServiceMetrics& m = row.metrics;
    m.arrivals = 100;
    m.served = 90;
    m.rejected = 10;
    // Admission 0 knees earliest, each further admission a load step later.
    m.p99_violation =
        0.05 * static_cast<double>(li) - 0.1 * static_cast<double>(di + oi);
    if (m.p99_violation < 0.0) m.p99_violation = 0.0;
    m.violation_rate = m.p99_violation / 2.0;
    m.occupancy = 0.5;
  }
  return rows;
}

TEST(KneeReport, CurvesFoldTheLoadAxisInGridOrder) {
  ServiceGridShape shape;
  shape.patterns = 2;
  shape.loads = 5;
  shape.admissions = 2;
  shape.policies = 1;
  shape.alphas = 1;
  const std::vector<double> loads = {0.6, 0.8, 1.0, 1.2, 1.4};
  const std::vector<ServiceRow> rows = synthetic_rows(shape, loads);

  const ServiceKneeReport report =
      build_service_knee_report(rows, shape, 0xabcdULL, 0.1);
  ASSERT_EQ(report.curves.size(),
            shape.patterns * shape.admissions * shape.policies * shape.alphas);
  EXPECT_EQ(report.knee_threshold, 0.1);
  EXPECT_EQ(report.fingerprint, 0xabcdULL);

  for (const KneeCurve& curve : report.curves) {
    ASSERT_EQ(curve.loads.size(), shape.loads);
    EXPECT_EQ(curve.loads, loads);
    // rejected_frac folds the arrival accounting into the curve.
    for (const double f : curve.rejected_frac) EXPECT_EQ(f, 0.1);
    // The synthetic p99 rises 0.05 per load step: admission 0 curves cross
    // 0.1 at load index 3 (p99 = 0.15), admission 1 two steps later at
    // index... p99(li) = max(0, 0.05*li - 0.1*di), so di=1 never exceeds
    // 0.1 on this 5-load grid.
    const int expected =
        curve.admission == AdmissionPolicy::Fifo ? 3 : -1;
    EXPECT_EQ(curve.knee_index, expected)
        << admission_policy_name(curve.admission);
    if (expected >= 0) {
      EXPECT_EQ(curve.knee_load, loads[static_cast<std::size_t>(expected)]);
    } else {
      EXPECT_EQ(curve.knee_load, 0.0);
    }
  }

  // Curve order is pattern-minor, then admission: curve i pattern alternates.
  EXPECT_EQ(report.curves[0].pattern, workload::ArrivalPattern::Poisson);
  EXPECT_EQ(report.curves[1].pattern, workload::ArrivalPattern::Bursty);
  EXPECT_EQ(report.curves[0].admission, AdmissionPolicy::Fifo);
  EXPECT_EQ(report.curves[2].admission, AdmissionPolicy::Sdf);
}

TEST(KneeReport, JsonIsByteStableAndSelfDescribing) {
  ServiceGridShape shape;
  shape.patterns = 1;
  shape.loads = 4;
  shape.admissions = 3;
  shape.policies = 1;
  shape.alphas = 1;
  const std::vector<double> loads = {0.5, 1.0, 1.5, 2.0};
  const std::vector<ServiceRow> rows = synthetic_rows(shape, loads);

  const ServiceKneeReport report =
      build_service_knee_report(rows, shape, 0x1234ULL);
  const std::string json = service_knee_report_json(report);
  EXPECT_EQ(json, service_knee_report_json(
                      build_service_knee_report(rows, shape, 0x1234ULL)));
  EXPECT_NE(json.find("\"schema\": \"qosrm-service-knee-report\""),
            std::string::npos);
  EXPECT_NE(json.find("\"fingerprint\": \"0000000000001234\""),
            std::string::npos);
  EXPECT_NE(json.find("\"admissions\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"knee_threshold\": "), std::string::npos);
  EXPECT_NE(json.find("\"qos-aware\""), std::string::npos);
  // One curve object per {pattern x admission x policy x alpha}.
  std::size_t curves = 0, at = 0;
  while ((at = json.find("\"knee_index\"", at)) != std::string::npos) {
    ++curves;
    ++at;
  }
  EXPECT_EQ(curves, 3u);
}

TEST(KneeReport, PerPatternCsvsCarryTheKneeMarker) {
  ServiceGridShape shape;
  shape.patterns = 2;
  shape.loads = 5;
  shape.admissions = 1;
  shape.policies = 1;
  shape.alphas = 1;
  const std::vector<double> loads = {0.6, 0.8, 1.0, 1.2, 1.4};
  const std::vector<ServiceRow> rows = synthetic_rows(shape, loads);
  const ServiceKneeReport report =
      build_service_knee_report(rows, shape, 7, 0.1);

  const std::string prefix = ::testing::TempDir() + "/knee_test_";
  std::string error;
  ASSERT_TRUE(write_knee_curve_csvs(report, prefix, &error)) << error;

  for (const char* pattern : {"poisson", "bursty"}) {
    const std::string path = prefix + pattern + ".csv";
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string csv = buffer.str();
    EXPECT_NE(csv.find("pattern,admission,policy,model,qos_alpha,load,"
                       "p99_violation,violation_rate,occupancy,"
                       "rejected_frac,is_knee"),
              std::string::npos);
    // Exactly one knee marker per curve on this monotone synthetic grid.
    std::size_t knees = 0, at = 0;
    while ((at = csv.find(",1\n", at)) != std::string::npos) {
      ++knees;
      ++at;
    }
    EXPECT_EQ(knees, 1u) << csv;
    std::remove(path.c_str());
  }
}

TEST(KneeReportDeathTest, RowCountMustMatchShape) {
  ServiceGridShape shape;
  shape.patterns = 1;
  shape.loads = 2;
  shape.admissions = 1;
  shape.policies = 1;
  shape.alphas = 1;
  const std::vector<ServiceRow> rows(3);
  EXPECT_DEATH((void)build_service_knee_report(rows, shape, 0),
               "row count does not match");
}

}  // namespace
}  // namespace qosrm::rmsim
