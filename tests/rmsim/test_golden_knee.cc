// Golden gate for the aggregate service knee report: the committed
// tests/data/golden_service_knee_report.json pins the exact knee curves of
// the 4-core admission sweep (poisson+bursty, 6 loads, all three admission
// policies, RM3, alpha 0, seed 2020, knee threshold 0.095 - the same grid
// CI's service-knee-smoke step runs through the CLI). Future refactors must
// reproduce it BYTE for BYTE; an intentional result change regenerates the
// golden in the same commit so drift is visible in review.
//
// Regenerate with:
//   ./build/src/service_main --cores=4 --num-arrivals=400 \
//       --arrivals=poisson,bursty --loads=0.6,0.9,1.2,1.5,1.8,2.1 \
//       --admission=fifo,sdf,qos-aware --policies=rm3 --alphas=0 \
//       --seed=2020 --knee-threshold=0.095 \
//       --knee-report=tests/data/golden_service_knee_report.json
//
// Builds the full simulation database (tests/support/shared_db.hh), so the
// binary carries LABELS slow.
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "arch/system_config.hh"
#include "rmsim/report.hh"
#include "rmsim/service.hh"
#include "support/shared_db.hh"
#include "workload/db_io.hh"
#include "workload/spec_suite.hh"

namespace qosrm::rmsim {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// The golden configuration: mirrors the CLI invocation in the header
/// comment (and CI's service-knee-smoke step) exactly.
ServiceGrid golden_grid() {
  ServiceGrid grid;
  grid.patterns = {workload::ArrivalPattern::Poisson,
                   workload::ArrivalPattern::Bursty};
  grid.loads = {0.6, 0.9, 1.2, 1.5, 1.8, 2.1};
  grid.admissions = {AdmissionPolicy::Fifo, AdmissionPolicy::Sdf,
                     AdmissionPolicy::QosAware};
  grid.policies = {rm::RmPolicy::Rm3};
  grid.qos_alphas = {0.0};
  return grid;
}

ServiceConfig golden_config() {
  ServiceConfig config;
  config.arrivals = 400;
  config.seed = 2020;
  return config;
}

std::uint64_t golden_fingerprint() {
  arch::SystemConfig system;
  system.cores = 4;
  return service_fingerprint(
      golden_grid(), golden_config(),
      workload::simdb_fingerprint(workload::spec_suite(), system,
                                  workload::PhaseStatsOptions{}));
}

TEST(GoldenKnee, FourCoreAdmissionSweepMatchesCommittedGolden) {
  const workload::SimDb& db = testing::shared_db(4);
  const ServiceGrid grid = golden_grid();
  const ServiceConfig config = golden_config();

  const ServiceResult result = run_service(db, grid, config);
  const ServiceKneeReport report = build_service_knee_report(
      result.rows, grid.shape(), golden_fingerprint(), 0.095);

  // The acceptance bar: a detected knee on EVERY {pattern x admission}
  // curve at 4 cores.
  for (const KneeCurve& curve : report.curves) {
    EXPECT_GE(curve.knee_index, 0)
        << workload::arrival_pattern_name(curve.pattern) << "/"
        << admission_policy_name(curve.admission) << " has no knee";
  }

  const std::string golden_path =
      std::string(QOSRM_TEST_DATA_DIR) + "/golden_service_knee_report.json";
  const std::string golden = slurp(golden_path);
  ASSERT_FALSE(golden.empty()) << golden_path;

  EXPECT_EQ(service_knee_report_json(report), golden)
      << "knee report drifted from " << golden_path
      << "\nIf the change is intentional, regenerate the golden file (see "
         "the header of this test) and justify the numerical diff in the "
         "same commit.";
}

TEST(GoldenKnee, ShardSlicingCannotMoveAKnee) {
  // The knee report must be a pure function of the grid rows: rows computed
  // as two disjoint shard ranges must reproduce the whole-grid report byte
  // for byte (the CLI equivalent is --workers=N vs --threads=1).
  const workload::SimDb& db = testing::shared_db(4);
  const ServiceGrid grid = golden_grid();
  const ServiceConfig config = golden_config();
  const std::size_t total = grid.size();
  const std::size_t split = total / 2;

  std::vector<ServiceRow> rows =
      run_service_range(db, grid, config, 0, split);
  const std::vector<ServiceRow> tail =
      run_service_range(db, grid, config, split, total);
  rows.insert(rows.end(), tail.begin(), tail.end());

  const ServiceKneeReport report = build_service_knee_report(
      rows, grid.shape(), golden_fingerprint(), 0.095);
  const std::string golden_path =
      std::string(QOSRM_TEST_DATA_DIR) + "/golden_service_knee_report.json";
  EXPECT_EQ(service_knee_report_json(report), slurp(golden_path));
}

/// Paper-plus pool scale: the ROADMAP's open item asks for the service
/// engine at 32- and 64-core pools. A full golden there would dominate the
/// slow suite, so this pins the structural invariants instead: arrival
/// conservation per cell, a sane occupancy, and byte-identical reruns.
class ServicePoolScale : public ::testing::TestWithParam<int> {};

TEST_P(ServicePoolScale, BigPoolServiceRunIsConservedAndDeterministic) {
  const int cores = GetParam();
  const workload::SimDb& db = testing::shared_db(cores);

  ServiceGrid grid;
  grid.loads = {1.2};
  grid.admissions = {AdmissionPolicy::Fifo, AdmissionPolicy::Sdf,
                     AdmissionPolicy::QosAware};
  ServiceConfig config;
  config.arrivals = 256;
  config.seed = 2020;

  const ServiceResult result = run_service(db, grid, config);
  ASSERT_EQ(result.rows.size(), grid.size());
  for (const ServiceRow& row : result.rows) {
    const ServiceMetrics& m = row.metrics;
    EXPECT_EQ(m.arrivals, config.arrivals);
    EXPECT_EQ(m.arrivals, m.served + m.rejected);
    EXPECT_GT(m.occupancy, 0.0);
    EXPECT_LE(m.occupancy, 1.0);
  }

  // Determinism at scale: a rerun reproduces every row bit for bit (the
  // same property the goldens pin at 4 cores, without committing a golden
  // per pool size).
  const ServiceResult rerun = run_service(db, grid, config);
  for (std::size_t i = 0; i < result.rows.size(); ++i) {
    EXPECT_EQ(result.rows[i].metrics.p99_violation,
              rerun.rows[i].metrics.p99_violation);
    EXPECT_EQ(result.rows[i].metrics.energy_total_j,
              rerun.rows[i].metrics.energy_total_j);
    EXPECT_EQ(result.rows[i].metrics.served, rerun.rows[i].metrics.served);
  }
}

INSTANTIATE_TEST_SUITE_P(PaperPlusPools, ServicePoolScale,
                         ::testing::Values(32, 64),
                         ::testing::PrintToStringParamName());

}  // namespace
}  // namespace qosrm::rmsim
