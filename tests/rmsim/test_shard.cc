#include "rmsim/shard.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.hh"

namespace qosrm::rmsim {
namespace {

// ---------------------------------------------------------------------------
// Partition properties (pure arithmetic - no database, fast suite).
// ---------------------------------------------------------------------------

TEST(ShardRangeTest, ExactPartitionSmallCases) {
  EXPECT_EQ(shard_range(10, 0, 1), (ShardRange{0, 10}));
  EXPECT_EQ(shard_range(10, 0, 2), (ShardRange{0, 5}));
  EXPECT_EQ(shard_range(10, 1, 2), (ShardRange{5, 10}));
  // 10 = 3 + 3 + 2 + 2: remainder rows go to the first shards.
  EXPECT_EQ(shard_range(10, 0, 4), (ShardRange{0, 3}));
  EXPECT_EQ(shard_range(10, 1, 4), (ShardRange{3, 6}));
  EXPECT_EQ(shard_range(10, 2, 4), (ShardRange{6, 8}));
  EXPECT_EQ(shard_range(10, 3, 4), (ShardRange{8, 10}));
  // More shards than rows: trailing shards get empty ranges.
  EXPECT_EQ(shard_range(2, 0, 4).size(), 1u);
  EXPECT_EQ(shard_range(2, 1, 4).size(), 1u);
  EXPECT_EQ(shard_range(2, 2, 4).size(), 0u);
  EXPECT_EQ(shard_range(2, 3, 4).size(), 0u);
  EXPECT_EQ(shard_range(0, 0, 3).size(), 0u);
}

TEST(ShardRangeTest, RandomizedPartitionIsDisjointGaplessOrdered) {
  Rng rng(20260728);
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t total = static_cast<std::size_t>(rng.uniform_u64(10000));
    const std::size_t count =
        1 + static_cast<std::size_t>(rng.uniform_u64(64));

    const std::vector<ShardRange> ranges = shard_ranges(total, count);
    ASSERT_EQ(ranges.size(), count);

    // Gapless + disjoint + ordered: consecutive ranges tile [0, total).
    std::size_t next = 0;
    std::size_t min_size = total, max_size = 0;
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_LE(ranges[i].begin, ranges[i].end);
      EXPECT_EQ(ranges[i].begin, next) << "gap/overlap at shard " << i;
      next = ranges[i].end;
      min_size = std::min(min_size, ranges[i].size());
      max_size = std::max(max_size, ranges[i].size());
      // The vector form must agree with the single-shard form (workers
      // compute their range independently of the orchestrator).
      EXPECT_EQ(ranges[i], shard_range(total, i, count));
    }
    EXPECT_EQ(next, total);
    // Balanced: sizes differ by at most one row.
    EXPECT_LE(max_size - min_size, 1u);
  }
}

TEST(ShardRangeTest, StableAcrossCalls) {
  for (int rep = 0; rep < 3; ++rep) {
    EXPECT_EQ(shard_ranges(12345, 17), shard_ranges(12345, 17));
  }
}

// ---------------------------------------------------------------------------
// Part file round-trip and corruption rejection (synthetic rows - no
// database needed, so this stays in the fast suite).
// ---------------------------------------------------------------------------

SweepRow synthetic_row(std::size_t idx) {
  SweepRow row;
  row.workload = "2Core-W" + std::to_string(idx % 7);
  row.scenario = static_cast<workload::Scenario>(1 + idx % 4);
  row.policy = static_cast<rm::RmPolicy>(idx % 4);
  row.model = static_cast<rm::PerfModelKind>(idx % 4);
  row.qos_alpha = 1.0 + 0.05 * static_cast<double>(idx % 3);
  row.result.savings = 0.0625 * static_cast<double>(idx) - 1.0;

  RunResult& run = row.result.run;
  run.workload = row.workload;
  run.scenario = row.scenario;
  run.policy = row.policy;
  run.model = row.model;
  for (int k = 0; k < 2; ++k) {
    CoreResult core;
    core.app = static_cast<int>(idx) + k;
    core.counted_energy_j = 1.5e-3 * static_cast<double>(idx + 1) + k;
    core.executed_instructions = 1e9 + static_cast<double>(idx * 31 + k);
    core.finish_time_s = 0.25 + 0.001 * static_cast<double>(idx);
    core.intervals = 100 + idx;
    core.qos_violations = idx % 5;
    core.violation_sum = 1e-4 * static_cast<double>(idx);
    core.violation_max = 2e-4 * static_cast<double>(idx);
    run.cores.push_back(core);
  }
  run.uncore_energy_j = 3.25e-2 + static_cast<double>(idx);
  run.wall_time_s = 0.5 + 0.01 * static_cast<double>(idx);
  run.rm_invocations = 10 * idx;
  run.rm_ops = 1000 * idx + 7;
  return row;
}

/// A consistent synthetic part for shard `index` of `count` over an
/// 8x2x1x1 grid (16 rows).
SweepPart synthetic_part(std::size_t index, std::size_t count,
                         std::uint64_t fingerprint = 0xfeedfacecafebeefULL) {
  SweepPart part;
  part.fingerprint = fingerprint;
  part.shape = GridShape{8, 2, 1, 1};
  part.shard_index = index;
  part.shard_count = count;
  part.range = shard_range(part.shape.size(), index, count);
  for (std::size_t r = part.range.begin; r < part.range.end; ++r) {
    part.rows.push_back(synthetic_row(r));
  }
  return part;
}

void expect_rows_equal(const SweepRow& a, const SweepRow& b) {
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.scenario, b.scenario);
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.model, b.model);
  EXPECT_EQ(a.qos_alpha, b.qos_alpha);
  EXPECT_EQ(a.result.savings, b.result.savings);
  const RunResult& ra = a.result.run;
  const RunResult& rb = b.result.run;
  EXPECT_EQ(ra.workload, rb.workload);
  EXPECT_EQ(ra.scenario, rb.scenario);
  EXPECT_EQ(ra.policy, rb.policy);
  EXPECT_EQ(ra.model, rb.model);
  EXPECT_EQ(ra.uncore_energy_j, rb.uncore_energy_j);
  EXPECT_EQ(ra.wall_time_s, rb.wall_time_s);
  EXPECT_EQ(ra.rm_invocations, rb.rm_invocations);
  EXPECT_EQ(ra.rm_ops, rb.rm_ops);
  ASSERT_EQ(ra.cores.size(), rb.cores.size());
  for (std::size_t k = 0; k < ra.cores.size(); ++k) {
    EXPECT_EQ(ra.cores[k].app, rb.cores[k].app);
    EXPECT_EQ(ra.cores[k].counted_energy_j, rb.cores[k].counted_energy_j);
    EXPECT_EQ(ra.cores[k].executed_instructions,
              rb.cores[k].executed_instructions);
    EXPECT_EQ(ra.cores[k].finish_time_s, rb.cores[k].finish_time_s);
    EXPECT_EQ(ra.cores[k].intervals, rb.cores[k].intervals);
    EXPECT_EQ(ra.cores[k].qos_violations, rb.cores[k].qos_violations);
    EXPECT_EQ(ra.cores[k].violation_sum, rb.cores[k].violation_sum);
    EXPECT_EQ(ra.cores[k].violation_max, rb.cores[k].violation_max);
  }
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

TEST(SweepPartTest, RoundTripIsBitIdentical) {
  const SweepPart part = synthetic_part(1, 3);
  const std::string path = temp_path("roundtrip.qospart");
  std::string error;
  ASSERT_TRUE(save_sweep_part(part, path, &error)) << error;

  const std::optional<SweepPart> loaded = load_sweep_part(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->fingerprint, part.fingerprint);
  EXPECT_EQ(loaded->shape, part.shape);
  EXPECT_EQ(loaded->shard_index, part.shard_index);
  EXPECT_EQ(loaded->shard_count, part.shard_count);
  EXPECT_EQ(loaded->range, part.range);
  ASSERT_EQ(loaded->rows.size(), part.rows.size());
  for (std::size_t i = 0; i < part.rows.size(); ++i) {
    expect_rows_equal(loaded->rows[i], part.rows[i]);
  }
  std::remove(path.c_str());
}

TEST(SweepPartTest, PartitioningBaselinePoliciesSurviveRoundTrip) {
  // Regression: the deserializer range-checked policy values against the
  // pre-baseline enum (<= Rm3), so any part holding Ucp/Fcp/ClassPart rows
  // was rejected at merge time as "corrupt (truncated row data)".
  SweepPart part = synthetic_part(0, 2);
  ASSERT_GE(part.rows.size(), 3u);
  const rm::RmPolicy extended[] = {rm::RmPolicy::Ucp, rm::RmPolicy::Fcp,
                                   rm::RmPolicy::ClassPart};
  for (std::size_t i = 0; i < 3; ++i) {
    part.rows[i].policy = extended[i];
    part.rows[i].result.run.policy = extended[i];
  }
  const std::string path = temp_path("baseline_policies.qospart");
  std::string error;
  ASSERT_TRUE(save_sweep_part(part, path, &error)) << error;
  const std::optional<SweepPart> loaded = load_sweep_part(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ASSERT_EQ(loaded->rows.size(), part.rows.size());
  for (std::size_t i = 0; i < part.rows.size(); ++i) {
    expect_rows_equal(loaded->rows[i], part.rows[i]);
  }
  std::remove(path.c_str());
}

TEST(ServicePartTest, PartitioningBaselinePoliciesSurviveRoundTrip) {
  // Same regression as above for the service-part reader.
  ServicePart part;
  part.fingerprint = 0x5e41f1ce00000001ULL;
  part.shape = ServiceGridShape{1, 1, 1, 3, 1};
  part.shard_index = 0;
  part.shard_count = 1;
  part.range = ShardRange{0, 3};
  const rm::RmPolicy extended[] = {rm::RmPolicy::Ucp, rm::RmPolicy::Fcp,
                                   rm::RmPolicy::ClassPart};
  for (const rm::RmPolicy p : extended) {
    ServiceRow row;
    row.policy = p;
    row.qos_alpha = 1.05;
    row.metrics.arrivals = 11;
    row.metrics.served = 10;
    part.rows.push_back(row);
  }
  const std::string path = temp_path("baseline_policies_service.qospart");
  std::string error;
  ASSERT_TRUE(save_service_part(part, path, &error)) << error;
  const std::optional<ServicePart> loaded = load_service_part(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ASSERT_EQ(loaded->rows.size(), part.rows.size());
  for (std::size_t i = 0; i < part.rows.size(); ++i) {
    EXPECT_EQ(loaded->rows[i].policy, part.rows[i].policy);
    EXPECT_EQ(loaded->rows[i].metrics.arrivals, part.rows[i].metrics.arrivals);
  }
  std::remove(path.c_str());
}

TEST(SweepPartTest, SaveRejectsInconsistentMetadata) {
  std::string error;
  const std::string path = temp_path("bad_meta.qospart");

  SweepPart wrong_range = synthetic_part(0, 2);
  wrong_range.range.end += 1;  // no longer shard_range(total, 0, 2)
  EXPECT_FALSE(save_sweep_part(wrong_range, path, &error));

  SweepPart wrong_rows = synthetic_part(0, 2);
  wrong_rows.rows.pop_back();
  EXPECT_FALSE(save_sweep_part(wrong_rows, path, &error));

  SweepPart bad_index = synthetic_part(0, 2);
  bad_index.shard_index = 2;
  EXPECT_FALSE(save_sweep_part(bad_index, path, &error));
}

TEST(SweepPartTest, TruncationIsRejectedAtEveryLength) {
  const SweepPart part = synthetic_part(0, 2);
  const std::string path = temp_path("trunc.qospart");
  std::string error;
  ASSERT_TRUE(save_sweep_part(part, path, &error)) << error;
  const std::string bytes = slurp(path);
  ASSERT_GT(bytes.size(), 64u);

  // A part cut anywhere - header, row payload or inside the trailing
  // checksum - must never load (this is the crash-mid-write scenario).
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{7}, std::size_t{24}, std::size_t{63},
        bytes.size() / 2, bytes.size() - 9, bytes.size() - 1}) {
    spit(path, bytes.substr(0, keep));
    EXPECT_FALSE(load_sweep_part(path, &error).has_value())
        << "truncated to " << keep << " bytes";
  }
  std::remove(path.c_str());
}

TEST(SweepPartTest, BitFlipAndTrailingGarbageAreRejected) {
  const SweepPart part = synthetic_part(1, 2);
  const std::string path = temp_path("corrupt.qospart");
  std::string error;
  ASSERT_TRUE(save_sweep_part(part, path, &error)) << error;
  const std::string bytes = slurp(path);

  // Flip one bit in the row payload: the checksum must catch it.
  std::string flipped = bytes;
  flipped[flipped.size() / 2] =
      static_cast<char>(flipped[flipped.size() / 2] ^ 0x10);
  spit(path, flipped);
  EXPECT_FALSE(load_sweep_part(path, &error).has_value());

  // Appended bytes after the checksum are also rejected.
  spit(path, bytes + "xx");
  EXPECT_FALSE(load_sweep_part(path, &error).has_value());

  // And the pristine bytes still load (the guard is the content, not luck).
  spit(path, bytes);
  EXPECT_TRUE(load_sweep_part(path, &error).has_value()) << error;
  std::remove(path.c_str());
}

TEST(SweepPartTest, NonPartFileIsRejected) {
  const std::string path = temp_path("not_a_part.qospart");
  spit(path, "workload,policy,savings\nfoo,rm3,0.07\n");
  std::string error;
  EXPECT_FALSE(load_sweep_part(path, &error).has_value());
  EXPECT_NE(error.find("not a sweep part"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(SweepPartTest, PartPathIsSelfDescribing) {
  EXPECT_EQ(part_path("out/rows.csv", 2, 8), "out/rows.csv.2-of-8.qospart");
}

// ---------------------------------------------------------------------------
// Merge validation.
// ---------------------------------------------------------------------------

TEST(MergePartsTest, MergesOutOfOrderPartsIntoGridOrder) {
  std::vector<SweepPart> parts = {synthetic_part(2, 3), synthetic_part(0, 3),
                                  synthetic_part(1, 3)};
  std::string error;
  const std::optional<std::vector<SweepRow>> rows =
      merge_sweep_parts(std::move(parts), &error);
  ASSERT_TRUE(rows.has_value()) << error;
  ASSERT_EQ(rows->size(), 16u);
  for (std::size_t i = 0; i < rows->size(); ++i) {
    expect_rows_equal((*rows)[i], synthetic_row(i));
  }
}

TEST(MergePartsTest, SingleShardMergesToo) {
  std::string error;
  const auto rows = merge_sweep_parts({synthetic_part(0, 1)}, &error);
  ASSERT_TRUE(rows.has_value()) << error;
  EXPECT_EQ(rows->size(), 16u);
}

TEST(MergePartsTest, RejectsMissingShard) {
  std::string error;
  EXPECT_FALSE(merge_sweep_parts({synthetic_part(0, 3), synthetic_part(2, 3)},
                                 &error)
                   .has_value());
  EXPECT_NE(error.find("3 ways"), std::string::npos) << error;
}

TEST(MergePartsTest, RejectsDuplicateShard) {
  std::string error;
  EXPECT_FALSE(merge_sweep_parts({synthetic_part(0, 3), synthetic_part(1, 3),
                                  synthetic_part(1, 3)},
                                 &error)
                   .has_value());
}

TEST(MergePartsTest, RejectsForeignFingerprint) {
  std::string error;
  EXPECT_FALSE(merge_sweep_parts({synthetic_part(0, 2),
                                  synthetic_part(1, 2, 0x1111111111111111ULL)},
                                 &error)
                   .has_value());
  EXPECT_NE(error.find("different sweep"), std::string::npos) << error;
}

TEST(MergePartsTest, RejectsMismatchedShardCount) {
  std::string error;
  EXPECT_FALSE(merge_sweep_parts({synthetic_part(0, 2), synthetic_part(1, 3),
                                  synthetic_part(2, 3)},
                                 &error)
                   .has_value());
}

TEST(MergePartsTest, RejectsEmptyInput) {
  std::string error;
  EXPECT_FALSE(merge_sweep_parts({}, &error).has_value());
}

// ---------------------------------------------------------------------------
// Resume: which shards still need running.
// ---------------------------------------------------------------------------

TEST(ShardsToRunTest, CorruptPartIsReRunAloneAndValidOnesSkipped) {
  const std::string prefix = temp_path("resume_rows.csv");
  const std::uint64_t fp = 0xfeedfacecafebeefULL;
  const GridShape shape{8, 2, 1, 1};
  std::string error;
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(save_sweep_part(synthetic_part(i, 4), part_path(prefix, i, 4),
                                &error))
        << error;
  }

  // All parts valid: nothing to run.
  EXPECT_TRUE(shards_to_run(prefix, 4, fp, shape).empty());

  // Truncate shard 2 (the mid-write crash): exactly shard 2 is re-run.
  const std::string victim = part_path(prefix, 2, 4);
  const std::string bytes = slurp(victim);
  spit(victim, bytes.substr(0, bytes.size() - 11));
  EXPECT_EQ(shards_to_run(prefix, 4, fp, shape),
            (std::vector<std::size_t>{2}));

  // Delete shard 0 as well: both pending, still not the valid ones.
  std::remove(part_path(prefix, 0, 4).c_str());
  EXPECT_EQ(shards_to_run(prefix, 4, fp, shape),
            (std::vector<std::size_t>{0, 2}));

  // A part from a different sweep (wrong fingerprint) is also re-run.
  EXPECT_EQ(shards_to_run(prefix, 4, 0x2222222222222222ULL, shape),
            (std::vector<std::size_t>{0, 1, 2, 3}));

  // And a different grid shape never reuses these parts.
  EXPECT_EQ(shards_to_run(prefix, 4, fp, GridShape{4, 4, 1, 1}),
            (std::vector<std::size_t>{0, 1, 2, 3}));

  for (std::size_t i = 0; i < 4; ++i) {
    std::remove(part_path(prefix, i, 4).c_str());
  }
}

TEST(ShardsToRunTest, AllMissingMeansAllPending) {
  EXPECT_EQ(shards_to_run(temp_path("nonexistent_prefix"), 3, 1,
                          GridShape{3, 1, 1, 1}),
            (std::vector<std::size_t>{0, 1, 2}));
}

}  // namespace
}  // namespace qosrm::rmsim
